module bioperf5

go 1.22
