package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bioperf5/internal/fault"
	"bioperf5/internal/harness"
	"bioperf5/internal/kernels"
	"bioperf5/internal/sched"
	"bioperf5/internal/telemetry"
)

func TestParseVariant(t *testing.T) {
	for v := kernels.Branchy; v < kernels.NumVariants; v++ {
		got, err := parseVariant(v.String())
		if err != nil || got != v {
			t.Errorf("parseVariant(%q) = %v, %v", v.String(), got, err)
		}
	}
	if _, err := parseVariant("turbo"); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestParseConfig(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	cfg, rest, err := parseConfig(fs, []string{"-scale", "3", "-seeds", "4, 5,6"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scale != 3 {
		t.Errorf("scale = %d", cfg.Scale)
	}
	if len(cfg.Seeds) != 3 || cfg.Seeds[0] != 4 || cfg.Seeds[2] != 6 {
		t.Errorf("seeds = %v", cfg.Seeds)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %v", rest)
	}

	bad := []struct {
		seeds, wantIn string
	}{
		{"x", `bad seed "x"`},
		{"1,-2", `bad seed "-2"`},
		{"3,4,3", `bad seed "3"`},
	}
	for _, tc := range bad {
		fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
		_, _, err := parseConfig(fs2, []string{"-seeds", tc.seeds})
		if err == nil {
			t.Errorf("seeds %q accepted", tc.seeds)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantIn) {
			t.Errorf("seeds %q: error %q does not name the offending value %q",
				tc.seeds, err, tc.wantIn)
		}
	}
}

func TestParseVariantAliases(t *testing.T) {
	for alias, want := range map[string]kernels.Variant{
		"base": kernels.Branchy, "Baseline": kernels.Branchy,
		"isel": kernels.HandISel, "combo": kernels.Combination,
	} {
		got, err := parseVariant(alias)
		if err != nil || got != want {
			t.Errorf("parseVariant(%q) = %v, %v; want %v", alias, got, err, want)
		}
	}
}

func TestCommandsSmoke(t *testing.T) {
	if err := cmdList(); err != nil {
		t.Errorf("list: %v", err)
	}
	if err := cmdVariants(); err != nil {
		t.Errorf("variants: %v", err)
	}
	if err := cmdDisasm([]string{"Clustalw", "hand max"}); err != nil {
		t.Errorf("disasm: %v", err)
	}
	if err := cmdDisasm([]string{"Clustalw"}); err == nil {
		t.Error("disasm without variant accepted")
	}
	if err := cmdRun(nil); err == nil {
		t.Error("run without id accepted")
	}
	if err := cmdRun([]string{"nope"}); err == nil {
		t.Error("run with unknown id accepted")
	}
	if err := cmdProfile([]string{"Fasta"}); err != nil {
		t.Errorf("profile: %v", err)
	}
	if err := cmdProfile(nil); err == nil {
		t.Error("profile without app accepted")
	}
	if err := cmdTrace([]string{"Hmmer"}); err == nil {
		t.Error("trace without variant accepted")
	}
	if err := cmdTrace([]string{"Nope", "base"}); err == nil {
		t.Error("trace with unknown app accepted")
	}
	if err := cmdStats([]string{"Nope"}); err == nil {
		t.Error("stats with unknown app accepted")
	}
}

func TestParseIntList(t *testing.T) {
	got, err := parseIntList("fxus", "2, 3,4", false)
	if err != nil || len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Errorf("parseIntList = %v, %v", got, err)
	}
	got, err = parseIntList("btac", "off,8", true)
	if err != nil || len(got) != 2 || got[0] != 0 || got[1] != 8 {
		t.Errorf("parseIntList with off = %v, %v", got, err)
	}
	if _, err := parseIntList("fxus", "off,2", false); err == nil {
		t.Error("'off' accepted where not allowed")
	}
	if _, err := parseIntList("fxus", "2,x", false); err == nil {
		t.Error("non-numeric value accepted")
	}
}

// TestCmdSweepSmoke runs a tiny sweep through the CLI path end to end.
func TestCmdSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	args := []string{"-fxus", "2", "-btac", "off", "-variants", "original",
		"-apps", "Fasta", "-cache-dir", t.TempDir()}
	if err := cmdSweep(args); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if err := cmdSweep([]string{"-fxus", "nope"}); err == nil {
		t.Error("bad -fxus accepted")
	}
	if err := cmdSweep([]string{"-apps", "NoSuchApp"}); err == nil {
		t.Error("unknown app accepted")
	}
}

// TestStatsFor exercises the registry-backed stats path: the simulator
// counters, stall buckets and the profiler breakdown must land in one
// snapshot.
func TestStatsFor(t *testing.T) {
	rep, err := statsFor("Fasta", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap := rep.Snapshot
	cycles, ok := snap.Counters["cpu.Cycles"]
	if !ok || cycles == 0 {
		t.Errorf("snapshot missing cpu.Cycles: %v", snap.Counters)
	}
	var stallSum uint64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "cpu.stall.") {
			stallSum += v
		}
	}
	if stallSum != cycles {
		t.Errorf("stall buckets sum to %d, cycles %d", stallSum, cycles)
	}
	if _, ok := snap.Gauges["cpu.rate.ipc"]; !ok {
		t.Error("snapshot missing cpu.rate.ipc")
	}
	if len(snap.Labeled["profile.calls"]) == 0 {
		t.Error("snapshot missing profiler breakdown (profile.calls)")
	}
	// The scheduler publishes into the same registry, so the fault and
	// retry counter family is part of the stats surface.
	if got := snap.Counters["sched.jobs.submitted"]; got != 1 {
		t.Errorf("sched.jobs.submitted = %d, want 1", got)
	}
	for _, name := range []string{"sched.jobs.retries", "sched.faults.injected"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("snapshot missing %s", name)
		}
	}
}

func TestCmdSweepFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"negative retries", []string{"-retries", "-1"}},
		{"negative cell timeout", []string{"-cell-timeout", "-1s"}},
		{"resume and cache-dir conflict", []string{"-resume", "a", "-cache-dir", "b"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := cmdSweep(tc.args); err == nil {
				t.Errorf("%v accepted", tc.args)
			}
		})
	}
}

func TestCmdSweepRejectsBadFaultSpec(t *testing.T) {
	t.Setenv(fault.EnvVar, "panic=2")
	if err := cmdSweep([]string{"-apps", "Fasta"}); err == nil {
		t.Error("out-of-range fault rate accepted")
	}
	t.Setenv(fault.EnvVar, "bogus=1")
	if err := cmdSweep([]string{"-apps", "Fasta"}); err == nil {
		t.Error("unknown fault key accepted")
	}
}

// TestCmdSweepResumeRoundTrip runs the same sweep twice against one
// -resume directory: the second run must leave the journal and
// manifest in place and do no simulation work.
func TestCmdSweepResumeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	args := []string{"-fxus", "2", "-btac", "off", "-variants", "original",
		"-apps", "Fasta", "-resume", dir}
	for run := 0; run < 2; run++ {
		if err := cmdSweep(args); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
	}
	for _, name := range []string{"journal.jsonl", "manifest.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s missing after resume: %v", name, err)
		}
	}
	j, err := sched.OpenJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() == 0 {
		t.Error("journal recorded no completed cells")
	}
	var m harness.SweepManifest
	b, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	// The second run's manifest is the one on disk: all cells resumed.
	if m.Scheduler.Computed != 0 || m.Scheduler.Resumed == 0 {
		t.Errorf("resumed run scheduler stats = %+v", m.Scheduler)
	}
	if m.Degraded != 0 {
		t.Errorf("degraded = %d", m.Degraded)
	}
}

// TestCmdSweepSpansAndProfiles drives the observability flags end to
// end: -spans must leave a loadable spans.jsonl + a Chrome trace-event
// trace.json behind, -cpuprofile/-memprofile must write pprof files,
// and `bioperf5 spans` must aggregate the recorded log.
func TestCmdSweepSpansAndProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	spansDir := filepath.Join(dir, "spans")
	args := []string{"-fxus", "2", "-btac", "off", "-variants", "original",
		"-apps", "Fasta", "-cache-dir", filepath.Join(dir, "cache"),
		"-spans", spansDir,
		"-cpuprofile", filepath.Join(dir, "cpu.pprof"),
		"-memprofile", filepath.Join(dir, "mem.pprof")}
	if err := cmdSweep(args); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, name := range []string{"cpu.pprof", "mem.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil || fi.Size() == 0 {
			t.Errorf("%s: %v (size %d)", name, err, fi.Size())
		}
	}

	// The span log loads, covers the lifecycle taxonomy, and nests
	// under a single sweep root.
	f, err := os.Open(filepath.Join(spansDir, "spans.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	spans, err := telemetry.ReadSpansJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	roots := 0
	for _, d := range spans {
		names[d.Name]++
		if d.Parent == 0 {
			roots++
		}
	}
	for _, want := range []string{telemetry.StageSweep, telemetry.StageQueue,
		telemetry.StageExecute, telemetry.StageCapture} {
		if names[want] == 0 {
			t.Errorf("no %q span in the exported log (have %v)", want, names)
		}
	}
	if names[telemetry.StageSweep] != 1 || roots != 1 {
		t.Errorf("want exactly one sweep root span, got %d (%d roots)",
			names[telemetry.StageSweep], roots)
	}

	// The Chrome trace-event export is valid JSON with one event per
	// span — the Perfetto-loadable artifact.
	b, err := os.ReadFile(filepath.Join(spansDir, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace.json not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(spans) {
		t.Errorf("trace.json has %d events for %d spans", len(doc.TraceEvents), len(spans))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Name == "" {
			t.Fatalf("malformed trace event: %+v", ev)
		}
	}

	// The spans subcommand aggregates the log (and re-exports Chrome).
	chrome2 := filepath.Join(dir, "trace2.json")
	if err := cmdSpans([]string{"-chrome", chrome2, filepath.Join(spansDir, "spans.jsonl")}); err != nil {
		t.Fatalf("spans: %v", err)
	}
	if fi, err := os.Stat(chrome2); err != nil || fi.Size() == 0 {
		t.Errorf("spans -chrome wrote nothing: %v", err)
	}
	if err := cmdSpans([]string{"-json", filepath.Join(spansDir, "spans.jsonl")}); err != nil {
		t.Fatalf("spans -json: %v", err)
	}
}

// TestCmdSpansValidation covers the failure modes of the spans report.
func TestCmdSpansValidation(t *testing.T) {
	if err := cmdSpans(nil); err == nil {
		t.Error("spans without a file accepted")
	}
	if err := cmdSpans([]string{filepath.Join(t.TempDir(), "absent.jsonl")}); err == nil {
		t.Error("spans with a missing file accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdSpans([]string{empty}); err == nil {
		t.Error("empty span log accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"id\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdSpans([]string{bad}); err == nil {
		t.Error("nameless span accepted")
	}
}

// TestAggregateSpans pins the aggregation: totals, means, maxima, and
// the descending sort.
func TestAggregateSpans(t *testing.T) {
	spans := []telemetry.SpanData{
		{ID: 1, Name: "a", DurNS: 100},
		{ID: 2, Name: "a", DurNS: 300},
		{ID: 3, Name: "b", DurNS: 1000},
	}
	got := aggregateSpans(spans)
	if len(got) != 2 || got[0].Stage != "b" || got[1].Stage != "a" {
		t.Fatalf("order: %+v", got)
	}
	a := got[1]
	if a.Count != 2 || a.TotalNS != 400 || a.MeanNS != 200 || a.MaxNS != 300 {
		t.Errorf("a stats: %+v", a)
	}
}

// TestSweepElapsedLine checks both renderings of the closing summary.
func TestSweepElapsedLine(t *testing.T) {
	m := &harness.SweepManifest{ElapsedMS: 1500}
	if got := sweepElapsedLine(m); got != "elapsed: 1.5s wall" {
		t.Errorf("bare line = %q", got)
	}
	m.Profile = &harness.SweepProfile{
		Aggregate: telemetry.StageCost{CaptureNS: 3_000_000_000, ReplayNS: 1_000_000_000},
	}
	m.Profile.Stages = m.Profile.Aggregate.Stages()
	got := sweepElapsedLine(m)
	for _, want := range []string{"1.5s wall", "4s attributed", "trace.capture", "75%"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary %q missing %q", got, want)
		}
	}
}
