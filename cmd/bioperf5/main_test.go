package main

import (
	"flag"
	"testing"

	"bioperf5/internal/kernels"
)

func TestParseVariant(t *testing.T) {
	for v := kernels.Branchy; v < kernels.NumVariants; v++ {
		got, err := parseVariant(v.String())
		if err != nil || got != v {
			t.Errorf("parseVariant(%q) = %v, %v", v.String(), got, err)
		}
	}
	if _, err := parseVariant("turbo"); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestParseConfig(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	cfg, rest, err := parseConfig(fs, []string{"-scale", "3", "-seeds", "4, 5,6"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scale != 3 {
		t.Errorf("scale = %d", cfg.Scale)
	}
	if len(cfg.Seeds) != 3 || cfg.Seeds[0] != 4 || cfg.Seeds[2] != 6 {
		t.Errorf("seeds = %v", cfg.Seeds)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %v", rest)
	}

	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	if _, _, err := parseConfig(fs2, []string{"-seeds", "x"}); err == nil {
		t.Error("bad seed accepted")
	}
}

func TestCommandsSmoke(t *testing.T) {
	if err := cmdList(); err != nil {
		t.Errorf("list: %v", err)
	}
	if err := cmdVariants(); err != nil {
		t.Errorf("variants: %v", err)
	}
	if err := cmdDisasm([]string{"Clustalw", "hand max"}); err != nil {
		t.Errorf("disasm: %v", err)
	}
	if err := cmdDisasm([]string{"Clustalw"}); err == nil {
		t.Error("disasm without variant accepted")
	}
	if err := cmdRun(nil); err == nil {
		t.Error("run without id accepted")
	}
	if err := cmdRun([]string{"nope"}); err == nil {
		t.Error("run with unknown id accepted")
	}
	if err := cmdProfile([]string{"Fasta"}); err != nil {
		t.Errorf("profile: %v", err)
	}
	if err := cmdProfile(nil); err == nil {
		t.Error("profile without app accepted")
	}
}
