// Command bioperf5 regenerates the paper's tables and figures and
// exposes the underlying tools: the application profiler (Figure 1) and
// the kernel compiler/disassembler.
//
// Usage:
//
//	bioperf5 list
//	bioperf5 run <experiment>|all [-scale N] [-seeds a,b,c]
//	bioperf5 profile <Blast|Clustalw|Fasta|Hmmer> [-scale N]
//	bioperf5 disasm <Blast|Clustalw|Fasta|Hmmer> <variant>
//	bioperf5 variants
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bioperf5/internal/harness"
	"bioperf5/internal/kernels"
	"bioperf5/internal/perf"
	"bioperf5/internal/workload"
)

func usage() {
	fmt.Fprintf(os.Stderr, `bioperf5: POWER5 bioinformatics workload study reproduction

commands:
  list                     list the experiments (one per paper table/figure)
  run <id>|all             regenerate a table/figure (-scale N, -seeds a,b,c)
  profile <application>    gprof-style function breakout (-scale N)
  disasm <application> <variant>
                           show the compiled DP kernel for a predication variant
  variants                 list predication variants
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "disasm":
		err = cmdDisasm(os.Args[2:])
	case "variants":
		err = cmdVariants()
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bioperf5:", err)
		os.Exit(1)
	}
}

func cmdList() error {
	for _, e := range harness.Registry() {
		fmt.Printf("%-8s %s\n", e.ID, e.Title)
	}
	return nil
}

func parseConfig(fs *flag.FlagSet, args []string) (harness.Config, []string, error) {
	scale := fs.Int("scale", 1, "workload scale factor")
	seeds := fs.String("seeds", "1,2,3", "comma-separated input seeds")
	if err := fs.Parse(args); err != nil {
		return harness.Config{}, nil, err
	}
	cfg := harness.Config{Scale: *scale}
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return cfg, nil, fmt.Errorf("bad seed %q", s)
		}
		cfg.Seeds = append(cfg.Seeds, v)
	}
	return cfg, fs.Args(), nil
}

func cmdRun(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("run: missing experiment id (try `bioperf5 list`)")
	}
	id := args[0]
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	cfg, _, err := parseConfig(fs, args[1:])
	if err != nil {
		return err
	}
	var exps []*harness.Experiment
	if id == "all" {
		exps = harness.Registry()
	} else {
		e, err := harness.ByID(id)
		if err != nil {
			return err
		}
		exps = []*harness.Experiment{e}
	}
	for _, e := range exps {
		tab, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(tab.Render())
	}
	return nil
}

func cmdProfile(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("profile: missing application (one of %v)", workload.Apps())
	}
	app := args[0]
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	scale := fs.Int("scale", 1, "workload scale factor")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	res, err := workload.Run(app, *scale, 1)
	if err != nil {
		return err
	}
	fmt.Println(res.Summary)
	p := perf.New()
	for _, e := range res.Breakdown {
		p.Add(e.Name, e.Time, e.Calls)
	}
	fmt.Print(p.Format())
	return nil
}

func parseVariant(name string) (kernels.Variant, error) {
	for v := kernels.Branchy; v < kernels.NumVariants; v++ {
		if v.String() == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown variant %q (try `bioperf5 variants`)", name)
}

func cmdDisasm(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("disasm: need <application> <variant>")
	}
	k, err := kernels.ByApp(args[0])
	if err != nil {
		return err
	}
	v, err := parseVariant(args[1])
	if err != nil {
		return err
	}
	prog, st, err := k.Compile(v)
	if err != nil {
		return err
	}
	fmt.Printf("%s / %s: %d instructions, %d spill slots, %d hammocks converted\n\n",
		k.Name, v, prog.Len(), st.SpillSlots, st.HammocksConverted)
	fmt.Print(prog.Disasm())
	return nil
}

func cmdVariants() error {
	for v := kernels.Branchy; v < kernels.NumVariants; v++ {
		fmt.Println(v.String())
	}
	return nil
}
