// Command bioperf5 regenerates the paper's tables and figures and
// exposes the underlying tools: the application profiler (Figure 1) and
// the kernel compiler/disassembler.
//
// Usage:
//
//	bioperf5 list
//	bioperf5 run <experiment>|all [-scale N] [-seeds a,b,c] [-trace P] [-json]
//	bioperf5 sweep [-fxus 2,3,4] [-btac off,8] [-variants v,...] [-apps a,...]
//	               [-workers N|host1:port,host2:port] [-cache-dir DIR] [-trace P]
//	               [-grid] [-json] [-spans DIR] [-cpuprofile FILE] [-memprofile FILE]
//	bioperf5 serve [-addr HOST:PORT] [-workers N] [-cache-dir DIR] [-trace P]
//	               [-cache-upstream URL] [-max-inflight N] [-request-timeout DUR]
//	               [-drain-timeout DUR] [-pprof] [-spans DIR]
//	bioperf5 fsck <dir> [<dir>...]
//	bioperf5 version [-json]
//	bioperf5 spans <spans.jsonl> [-json] [-chrome FILE]
//	bioperf5 trace <Blast|Clustalw|Fasta|Hmmer> <variant> [-scale N] [-seed N]
//	bioperf5 stats [application] [-scale N] [-seed N] [-json]
//	bioperf5 profile <Blast|Clustalw|Fasta|Hmmer> [-scale N]
//	bioperf5 disasm <Blast|Clustalw|Fasta|Hmmer> <variant>
//	bioperf5 variants
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bioperf5/internal/branch"
	"bioperf5/internal/cluster"
	"bioperf5/internal/core"
	"bioperf5/internal/cpu"
	"bioperf5/internal/fault"
	"bioperf5/internal/fsck"
	"bioperf5/internal/harness"
	"bioperf5/internal/kernels"
	"bioperf5/internal/perf"
	"bioperf5/internal/sched"
	"bioperf5/internal/server"
	"bioperf5/internal/telemetry"
	"bioperf5/internal/workload"
)

func usage() {
	fmt.Fprintf(os.Stderr, `bioperf5: POWER5 bioinformatics workload study reproduction

commands:
  list                     list the experiments (one per paper table/figure)
  run <id>|all             regenerate a table/figure (-scale N, -seeds a,b,c;
                           -trace auto|capture|replay|off selects the trace
                           policy — the numbers are identical under every
                           policy; -json emits the machine-readable report)
  sweep                    full-factorial design-space sweep over FXU count x
                           BTAC sizing x direction predictor x predication
                           variant x application, run on the parallel
                           cache-aware fault-tolerant scheduler
                           (-fxus 2,3,4; -btac off,8;
                           -predictors 'tournament;tage:tables=4,hist=2..64'
                           semicolon-separated predictor specs;
                           -variants original,combination;
                           -apps all; -scale N; -seeds a,b,c;
                           -workers N local pool size, or a comma-separated
                           list of 'bioperf5 serve' URLs to shard the sweep
                           across remote workers — the merged manifest is
                           byte-identical to a single-node run;
                           -cache-dir DIR persists results across runs;
                           -retries N per-cell retry budget; -cell-timeout DUR
                           per-cell deadline; -resume DIR keeps cache + journal +
                           manifest under DIR and resumes a killed sweep;
                           -grid prints every point; -json emits the manifest;
                           -trace off disables capture-once/replay-many;
                           -spans DIR records a span per lifecycle stage and
                           writes spans.jsonl + trace.json (Perfetto-loadable)
                           under DIR; -cpuprofile/-memprofile FILE write
                           pprof profiles of the sweep;
                           BIOPERF5_FAULTS=spec injects deterministic faults)
  serve                    expose the engine as an HTTP/JSON service:
                           POST /v1/cells runs one cell, POST /v1/cells:batch
                           streams a batch as JSONL, GET /v1/experiments/{id}
                           serves a paper experiment byte-identical to
                           'run <id> -json', plus /healthz /readyz /metrics
                           (-addr HOST:PORT; -workers N; -cache-dir DIR;
                           -cache-upstream URL shares results and traces with
                           a hub server via GET/PUT /v1/cache and /v1/traces;
                           -trace P default trace policy for cells without a
                           "trace" field; -retries N; -cell-timeout DUR;
                           -max-inflight N
                           admission bound; -request-timeout DUR default
                           per-request deadline; -drain-timeout DUR graceful
                           SIGTERM drain budget; -pprof mounts net/http/pprof
                           under /debug/pprof/; -spans DIR records a span
                           per request and writes spans.jsonl + trace.json
                           under DIR at shutdown)
  branches <application>   per-static-branch predictability profile: every
                           conditional-branch site with execution/mispredict
                           counts, BTAC wrong-target attribution, and a
                           taxonomy class (biased, loop-exit, history, hard);
                           per-site counts sum exactly to the aggregate
                           counters (-variant V; -fxus N; -btac N;
                           -predictor SPEC; -scale N; -seeds a,b,c; -json)
  predictors               list the registered direction-predictor kinds as
                           canonical spec strings
  trace <application> <variant>
                           emit a per-instruction pipeline event trace as
                           JSONL (-scale N, -seed N, -cap N ring capacity)
  stats [application]      telemetry snapshot of a baseline run: counters,
                           CPI stall stack, cache/BTAC/profile metrics
                           (-scale N, -seed N, -json)
  profile <application>    gprof-style function breakout (-scale N)
  spans <spans.jsonl>      aggregate a recorded span log into a per-stage
                           profile: count, total, mean, max, share
                           (-json; -chrome FILE converts the log to a
                           Chrome trace-event file)
  fsck <dir> [<dir>...]    scrub sweep state directories (result cache,
                           trace store, resume dir): verify every
                           checksum, move corrupt files into a
                           quarantine/ sidecar (never delete), repair
                           torn journal tails, print a JSON report and
                           exit nonzero when damage was found; re-running
                           the sweep with -resume then recomputes only
                           the quarantined cells
  disasm <application> <variant>
                           show the compiled DP kernel for a predication variant
  variants                 list predication variants
  version                  print the binary's build identity and wire schema
                           (-json; GET /v1/version serves the same document)

experiment ids accept short aliases: t1, t2, f1..f6.
`)
	os.Exit(2)
}

// simLimit bounds a single traced or snapshotted kernel invocation.
const simLimit = 500_000_000

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "branches":
		err = cmdBranches(os.Args[2:])
	case "predictors":
		err = cmdPredictors()
	case "serve":
		err = cmdServe(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "spans":
		err = cmdSpans(os.Args[2:])
	case "fsck":
		err = cmdFsck(os.Args[2:])
	case "disasm":
		err = cmdDisasm(os.Args[2:])
	case "variants":
		err = cmdVariants()
	case "version":
		err = cmdVersion(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bioperf5:", err)
		os.Exit(1)
	}
}

func cmdList() error {
	for _, e := range harness.Registry() {
		fmt.Printf("%-8s %s\n", e.ID, e.Title)
	}
	return nil
}

func parseConfig(fs *flag.FlagSet, args []string) (harness.Config, []string, error) {
	scale := fs.Int("scale", 1, "workload scale factor")
	seeds := fs.String("seeds", "1,2,3", "comma-separated input seeds")
	tracePolicy := fs.String("trace", "", "trace policy: auto (default; capture each functional run once, replay per timing config), capture, replay, or off (coupled execution)")
	if err := fs.Parse(args); err != nil {
		return harness.Config{}, nil, err
	}
	trace, err := core.ParseTracePolicy(*tracePolicy)
	if err != nil {
		return harness.Config{}, nil, fmt.Errorf("-trace: %w", err)
	}
	cfg := harness.Config{Scale: *scale, Trace: trace}
	seen := make(map[int64]bool)
	for _, s := range strings.Split(*seeds, ",") {
		s = strings.TrimSpace(s)
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return cfg, nil, fmt.Errorf("bad seed %q: %w", s, err)
		}
		if v < 0 {
			return cfg, nil, fmt.Errorf("bad seed %q: seeds must be non-negative", s)
		}
		if seen[v] {
			return cfg, nil, fmt.Errorf("bad seed %q: duplicate seed", s)
		}
		seen[v] = true
		cfg.Seeds = append(cfg.Seeds, v)
	}
	return cfg, fs.Args(), nil
}

func cmdRun(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("run: missing experiment id (try `bioperf5 list`)")
	}
	id := args[0]
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the machine-readable report as JSON")
	cfg, _, err := parseConfig(fs, args[1:])
	if err != nil {
		return err
	}
	var exps []*harness.Experiment
	if id == "all" {
		exps = harness.Registry()
	} else {
		e, err := harness.ByID(id)
		if err != nil {
			return err
		}
		exps = []*harness.Experiment{e}
	}
	if *jsonOut {
		var reps []*harness.Report
		for _, e := range exps {
			rep, err := harness.RunReport(e, cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			reps = append(reps, rep)
		}
		if len(reps) == 1 {
			return reps[0].WriteJSON(os.Stdout)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(reps)
	}
	for _, e := range exps {
		tab, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(tab.Render())
	}
	return nil
}

// parseIntList parses a comma-separated list of ints, mapping the
// word "off" to zero (used by -btac).
func parseIntList(flagName, s string, allowOff bool) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if allowOff && strings.EqualFold(part, "off") {
			out = append(out, 0)
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("-%s: bad value %q", flagName, part)
		}
		out = append(out, v)
	}
	return out, nil
}

// parsePredictorsFlag splits a -predictors value into predictor specs.
// Specs are separated by ';' (their parameter lists contain commas); a
// value without parameters may use commas instead ("gshare,tage").
// Every spec is validated up front so a typo fails with the registered
// kinds listed instead of deep inside the sweep.
func parsePredictorsFlag(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	sep := ";"
	if !strings.Contains(s, ";") && !strings.Contains(s, ":") {
		sep = ","
	}
	var out []string
	for _, part := range strings.Split(s, sep) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if _, err := branch.ParseSpec(part); err != nil {
			return nil, fmt.Errorf("-predictors: %w", err)
		}
		out = append(out, part)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-predictors: no specs in %q", s)
	}
	return out, nil
}

// cmdPredictors lists every registered direction-predictor kind as its
// canonical all-defaults spec string.
func cmdPredictors() error {
	for _, spec := range branch.Registered() {
		fmt.Println(spec)
	}
	return nil
}

// cmdBranches profiles one application's static branches: run the
// coupled simulation with the per-PC profiler attached and print every
// conditional-branch site with its counts and taxonomy class.
func cmdBranches(args []string) error {
	if len(args) < 1 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("branches: missing application (one of %s)",
			strings.Join(workload.Apps(), ", "))
	}
	app := args[0]
	fs := flag.NewFlagSet("branches", flag.ContinueOnError)
	variantFlag := fs.String("variant", "original", "predication variant (see `bioperf5 variants`)")
	fxusFlag := fs.Int("fxus", 0, "fixed-point unit count (0 = the POWER5 baseline)")
	btacFlag := fs.Int("btac", 0, "BTAC entry count (0 = no BTAC)")
	predFlag := fs.String("predictor", "", "direction-predictor spec (empty = the POWER5-like tournament; see `bioperf5 predictors`)")
	scale := fs.Int("scale", 1, "workload scale factor")
	seedsFlag := fs.String("seeds", "1,2,3", "comma-separated input seeds")
	jsonOut := fs.Bool("json", false, "emit the machine-readable report as JSON")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	v, err := parseVariant(*variantFlag)
	if err != nil {
		return err
	}
	if _, err := branch.ParseSpec(*predFlag); err != nil {
		return fmt.Errorf("-predictor: %w", err)
	}
	if *btacFlag < 0 {
		return fmt.Errorf("-btac: must be >= 0, got %d", *btacFlag)
	}
	fxus := *fxusFlag
	if fxus == 0 {
		fxus = core.Baseline().CPU.NumFXU
	}
	if fxus < 1 {
		return fmt.Errorf("-fxus: must be >= 1, got %d", *fxusFlag)
	}
	cfg := harness.Config{Scale: *scale}
	seen := make(map[int64]bool)
	for _, s := range strings.Split(*seedsFlag, ",") {
		s = strings.TrimSpace(s)
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("bad seed %q: want a non-negative integer", s)
		}
		if seen[n] {
			return fmt.Errorf("duplicate seed %d", n)
		}
		seen[n] = true
		cfg.Seeds = append(cfg.Seeds, n)
	}
	rep, err := harness.RunBranches(cfg, app, harness.SetupFor(v, fxus, *btacFlag, *predFlag))
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Println(rep.Table().Render())
	return nil
}

// cmdSweep runs a full-factorial design-space sweep on the parallel
// scheduler and prints the best configuration per application plus the
// scheduler's cache statistics.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fxusFlag := fs.String("fxus", "2,3,4", "comma-separated fixed-point unit counts")
	btacFlag := fs.String("btac", "off,8", "comma-separated BTAC entry counts ('off' = none)")
	predictorsFlag := fs.String("predictors", "", "semicolon-separated direction-predictor specs, e.g. 'tournament;tage:tables=4,hist=2..64' (empty = the POWER5-like default; see `bioperf5 predictors`)")
	variantsFlag := fs.String("variants", "original,combination", "comma-separated predication variants")
	appsFlag := fs.String("apps", "all", "comma-separated applications, or 'all'")
	workersFlag := fs.String("workers", "", "local worker pool size (default GOMAXPROCS), or a comma-separated list of remote `bioperf5 serve` URLs to run the sweep distributed")
	cacheDir := fs.String("cache-dir", "", "content-addressed on-disk result cache directory")
	retries := fs.Int("retries", 2, "per-cell retry budget for transient failures (with remote workers: the per-dispatch HTTP retry budget)")
	cellTimeout := fs.Duration("cell-timeout", 0, "per-cell simulation deadline, e.g. 30s (0 = none)")
	resume := fs.String("resume", "", "sweep state directory (disk cache + completion journal + manifest); re-running against it resumes only unfinished cells")
	grid := fs.Bool("grid", false, "print every grid point, not just the best per application")
	jsonOut := fs.Bool("json", false, "emit the JSON manifest instead of the summary table")
	spansDir := fs.String("spans", "", "record a span per lifecycle stage and write spans.jsonl + trace.json (Perfetto-loadable) under DIR")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the sweep to FILE")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile (taken after the sweep) to FILE")
	cfg, _, err := parseConfig(fs, args)
	if err != nil {
		return err
	}
	if *retries < 0 {
		return fmt.Errorf("-retries: must be >= 0, got %d", *retries)
	}
	if *cellTimeout < 0 {
		return fmt.Errorf("-cell-timeout: must be >= 0, got %v", *cellTimeout)
	}
	pool, hosts, err := parseWorkersFlag(*workersFlag)
	if err != nil {
		return err
	}
	if len(hosts) > 0 && *cacheDir != "" {
		return fmt.Errorf("sweep: -cache-dir is local-engine state; with remote -workers run `serve -cache-dir` on a hub and point the workers at it with -cache-upstream")
	}
	dir := *cacheDir
	var journal *sched.Journal
	var cjournal *cluster.Journal
	if *resume != "" {
		if *cacheDir != "" {
			return fmt.Errorf("-resume and -cache-dir are mutually exclusive: -resume DIR already keeps the result cache (plus journal.jsonl and manifest.json) under DIR")
		}
		if len(hosts) > 0 {
			// The coordinator has no local cache, so its journal carries
			// full results; the manifest still lands at DIR/manifest.json.
			cjournal, err = cluster.OpenJournal(filepath.Join(*resume, "journal.jsonl"))
			if err != nil {
				return fmt.Errorf("-resume: %w", err)
			}
			defer cjournal.Close()
		} else {
			dir = *resume
			journal, err = sched.OpenJournal(filepath.Join(*resume, "journal.jsonl"))
			if err != nil {
				return fmt.Errorf("-resume: %w", err)
			}
			defer journal.Close()
		}
	}
	injector, err := fault.FromEnv()
	if err != nil {
		return err
	}
	var clusterHTTP *http.Client
	if injector != nil {
		if len(hosts) > 0 {
			// Distributed mode: the local engine does not exist, so the
			// engine-site faults are meaningless here — but the network
			// sites target exactly this coordinator→worker transport.
			plan, perr := fault.PlanFromEnv()
			if perr != nil {
				return perr
			}
			injector = nil
			if plan.HasNetworkFaults() {
				clusterHTTP = &http.Client{Transport: &fault.ChaosTransport{Plan: plan}}
				fmt.Fprintf(os.Stderr, "bioperf5: network chaos enabled on the coordinator transport (%s=%s)\n",
					fault.EnvVar, os.Getenv(fault.EnvVar))
			}
			if plan.HasLocalFaults() {
				fmt.Fprintf(os.Stderr, "bioperf5: %s engine-site faults target the local engine; ignored with remote -workers (set them on the workers instead)\n", fault.EnvVar)
			}
		} else {
			fmt.Fprintf(os.Stderr, "bioperf5: fault injection enabled (%s=%s)\n",
				fault.EnvVar, os.Getenv(fault.EnvVar))
		}
	}
	fxus, err := parseIntList("fxus", *fxusFlag, false)
	if err != nil {
		return err
	}
	btac, err := parseIntList("btac", *btacFlag, true)
	if err != nil {
		return err
	}
	predictors, err := parsePredictorsFlag(*predictorsFlag)
	if err != nil {
		return err
	}
	var variants []kernels.Variant
	for _, name := range strings.Split(*variantsFlag, ",") {
		v, err := parseVariant(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		variants = append(variants, v)
	}
	apps := workload.Apps()
	if *appsFlag != "all" {
		apps = nil
		for _, a := range strings.Split(*appsFlag, ",") {
			apps = append(apps, strings.TrimSpace(a))
		}
	}
	// SIGINT/SIGTERM cancel pending cells instead of killing the
	// process: the sweep degrades, the journal and cache keep what
	// finished, and -resume picks up the rest.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg.Context = ctx
	var reg *telemetry.Registry
	if len(hosts) > 0 {
		// Distributed mode: no local engine — the coordinator owns its
		// own registry for the cluster.* counters and span histograms.
		reg = telemetry.NewRegistry()
	} else {
		eng := sched.New(sched.Options{
			Workers:     pool,
			CacheDir:    dir,
			Retries:     *retries,
			CellTimeout: *cellTimeout,
			Injector:    injector,
			Journal:     journal,
		})
		defer eng.Drain(context.Background())
		cfg.Engine = eng
		reg = eng.Registry()
	}
	var tracer *telemetry.Tracer
	if *spansDir != "" {
		// The registry hookup puts span.<stage>.us histograms in the
		// manifest's scheduler snapshot path for free.
		tracer = telemetry.NewTracer(0, reg)
		cfg.Context = telemetry.WithTracer(ctx, tracer)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	spec := harness.SweepSpec{
		FXUs:        fxus,
		BTACEntries: btac,
		Predictors:  predictors,
		Variants:    variants,
		Apps:        apps,
		Config:      cfg,
	}
	var m *harness.SweepManifest
	if len(hosts) > 0 {
		m, err = cluster.Run(cluster.Options{
			Workers:  hosts,
			Spec:     spec,
			Retries:  *retries,
			Journal:  cjournal,
			Registry: reg,
			HTTP:     clusterHTTP,
		})
	} else {
		m, err = harness.RunSweep(spec)
	}
	if err != nil {
		return err
	}
	if *resume != "" {
		_, msp := telemetry.StartSpan(cfg.Context, telemetry.StageManifest)
		werr := m.WriteJSONFile(filepath.Join(*resume, "manifest.json"))
		msp.End()
		if werr != nil {
			return fmt.Errorf("write manifest: %w", werr)
		}
	}
	if *memprofile != "" {
		if err := writeHeapProfile(*memprofile); err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
	}
	if tracer != nil {
		if err := writeSpanFiles(*spansDir, tracer); err != nil {
			return fmt.Errorf("-spans: %w", err)
		}
		fmt.Fprintf(os.Stderr, "bioperf5: wrote %d spans to %s (spans.jsonl + trace.json)\n",
			tracer.Len(), *spansDir)
		if n := tracer.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "bioperf5: span capacity reached, dropped %d spans\n", n)
		}
	}
	if *jsonOut {
		if err := m.WriteJSON(os.Stdout); err != nil {
			return err
		}
		return sweepDegradedSummary(m)
	}
	if *grid {
		fmt.Println(m.Grid().Render())
	}
	fmt.Println(m.Summary().Render())
	if tbl := m.ProfileTable(); tbl != nil {
		fmt.Println(tbl.Render())
	}
	if cs := m.Cluster; cs != nil {
		printClusterSummary(cs)
	} else {
		st := m.Scheduler
		poolDesc := fmt.Sprintf("%d workers", st.Workers)
		if st.Workers == 1 {
			poolDesc = "1 worker"
		}
		fmt.Printf("scheduler: %d jobs on %s, %d simulated, cache hit rate %.0f%% (%d in-memory, %d disk)\n",
			st.Submitted, poolDesc, st.Computed, 100*st.HitRate(), st.MemoryHits, st.DiskHits)
		if st.DiskCorrupt > 0 {
			fmt.Printf("scheduler: %d corrupted disk cache entries detected and recomputed\n", st.DiskCorrupt)
		}
		if st.Retries > 0 || st.Timeouts > 0 || st.Injected > 0 {
			fmt.Printf("scheduler: %d retries, %d cell timeouts, %d injected faults\n",
				st.Retries, st.Timeouts, st.Injected)
		}
		if st.Resumed > 0 {
			fmt.Printf("scheduler: resumed — %d completed cells skipped via the journal and cache\n", st.Resumed)
		}
	}
	fmt.Println(sweepElapsedLine(m))
	return sweepDegradedSummary(m)
}

// printClusterSummary renders the distributed fabric's closing lines:
// how the fleet behaved, and what fraction of cells were served
// without fresh simulation (worker trace/cache hits plus cells
// replayed from the coordinator journal).
func printClusterSummary(cs *harness.ClusterStats) {
	fmt.Printf("cluster: %d cells on %d workers — %d completed, %d failed, %d resumed from journal\n",
		cs.Cells, cs.Workers, cs.Completed, cs.FailedCells, cs.Resumed)
	fmt.Printf("cluster: %d dispatches in %d batches (%d stolen, %d re-dispatched, %d duplicate results dropped, %d HTTP retries)\n",
		cs.Dispatched, cs.Batches, cs.Stolen, cs.Redispatched, cs.Duplicates, cs.Retries)
	if cs.Cells > 0 {
		fmt.Printf("cluster: cache hit rate %.0f%% (%d trace/cache-served + %d journal-resumed of %d cells)\n",
			100*float64(cs.CacheHits+cs.Resumed)/float64(cs.Cells),
			cs.CacheHits, cs.Resumed, cs.Cells)
	}
	if cs.WorkersLost > 0 {
		fmt.Printf("cluster: %d worker(s) lost mid-sweep; their shards were redistributed\n", cs.WorkersLost)
	}
}

// parseWorkersFlag reads -workers as either a local pool size ("8") or
// a comma-separated list of remote worker URLs ("host:8077,host2:8077").
func parseWorkersFlag(s string) (pool int, hosts []string, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil, nil
	}
	if n, aerr := strconv.Atoi(s); aerr == nil {
		if n < 0 {
			return 0, nil, fmt.Errorf("-workers: pool size must be >= 0, got %d", n)
		}
		return n, nil, nil
	}
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			hosts = append(hosts, part)
		}
	}
	if len(hosts) == 0 {
		return 0, nil, fmt.Errorf("-workers: want a pool size or a comma-separated worker list, got %q", s)
	}
	return 0, hosts, nil
}

// sweepElapsedLine renders the closing wall-clock summary.  When the
// manifest carries a stage profile it also says where that time went:
// total attributed across workers (which exceeds wall time whenever
// the sweep ran in parallel) and the dominant stage with its share.
func sweepElapsedLine(m *harness.SweepManifest) string {
	wall := time.Duration(m.ElapsedMS) * time.Millisecond
	p := m.Profile
	if p == nil || p.Aggregate.IsZero() || len(p.Stages) == 0 || p.Stages[0].NS == 0 {
		return fmt.Sprintf("elapsed: %s wall", wall)
	}
	var attributed int64
	for _, s := range p.Stages {
		attributed += s.NS
	}
	dom := p.Stages[0]
	return fmt.Sprintf("elapsed: %s wall; %s attributed across workers; dominant stage: %s (%s, %.0f%%)",
		wall, time.Duration(attributed).Round(time.Millisecond),
		dom.Name, time.Duration(dom.NS).Round(time.Millisecond),
		100*float64(dom.NS)/float64(attributed))
}

// writeHeapProfile snapshots the heap into path, after a GC so the
// profile reflects live objects rather than garbage.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// writeSpanFiles exports a tracer's spans under dir in both formats:
// spans.jsonl (the loadable log `bioperf5 spans` reads) and trace.json
// (Chrome trace-event, for Perfetto / chrome://tracing).
func writeSpanFiles(dir string, tr *telemetry.Tracer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(dir, "spans.jsonl"))
	if err != nil {
		return err
	}
	if err := tr.WriteJSONL(jf); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	cf, err := os.Create(filepath.Join(dir, "trace.json"))
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(cf); err != nil {
		cf.Close()
		return err
	}
	return cf.Close()
}

// sweepDegradedSummary reports degraded cells on stderr and returns a
// nonzero-exit error when the manifest is partial, so scripted sweeps
// cannot mistake a degraded run for a complete one.
func sweepDegradedSummary(m *harness.SweepManifest) error {
	if m.Degraded == 0 {
		return nil
	}
	fmt.Fprintf(os.Stderr, "bioperf5: %d of %d cells degraded:\n", m.Degraded, len(m.Points))
	for _, p := range m.DegradedPoints() {
		btac := strconv.Itoa(p.BTACEntries)
		if p.BTACEntries == 0 {
			btac = "off"
		}
		fmt.Fprintf(os.Stderr, "  %s/%s FXUs=%d BTAC=%s: %s (%s)\n",
			p.App, p.Variant, p.FXUs, btac, p.Status, p.Error)
	}
	return fmt.Errorf("sweep: %d of %d cells degraded (re-run with -resume to retry them)",
		m.Degraded, len(m.Points))
}

// cmdFsck scrubs one or more sweep state directories with the store
// integrity scrubber, prints the JSON report, and exits nonzero when
// damage was found — so cron jobs and CI can gate on a clean tree.
func cmdFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("fsck: need at least one state directory (a -cache-dir or -resume dir)")
	}
	rep, err := fsck.Run(fsck.Options{Dirs: fs.Args()})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if rep.Damaged > 0 {
		return fmt.Errorf("fsck: %d damaged file(s) — %d quarantined, %d repaired (re-run the sweep with -resume to recompute)",
			rep.Damaged, rep.Quarantined, rep.Repaired)
	}
	return nil
}

// cmdServe exposes the simulation engine as an HTTP/JSON service and
// runs it until SIGINT/SIGTERM, then drains gracefully: readiness
// flips to 503, in-flight cells finish, the listener shuts down, and
// the engine's workers are drained — all inside the -drain-timeout
// budget.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cacheDir := fs.String("cache-dir", "", "content-addressed on-disk result cache directory")
	retries := fs.Int("retries", 2, "per-cell retry budget for transient failures")
	cellTimeout := fs.Duration("cell-timeout", 0, "per-cell simulation deadline, e.g. 30s (0 = none)")
	cacheUpstream := fs.String("cache-upstream", "", "base URL of a shared cache hub; result-cache and trace misses probe its /v1/cache and /v1/traces endpoints and fresh entries are pushed back")
	maxInflight := fs.Int("max-inflight", 0, "admission bound on in-flight cells (0 = 4x GOMAXPROCS)")
	reqTimeout := fs.Duration("request-timeout", 2*time.Minute, "default per-request deadline; clients override with ?timeout= (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful drain budget after SIGTERM")
	tracePolicy := fs.String("trace", "", "default trace policy for cells without a \"trace\" field: auto (default), capture, replay, or off")
	enablePprof := fs.Bool("pprof", false, "mount the net/http/pprof diagnostics handlers under /debug/pprof/")
	spansDir := fs.String("spans", "", "record a span per request and write spans.jsonl + trace.json under DIR at shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	defaultTrace, err := core.ParseTracePolicy(*tracePolicy)
	if err != nil {
		return fmt.Errorf("-trace: %w", err)
	}
	if *retries < 0 {
		return fmt.Errorf("-retries: must be >= 0, got %d", *retries)
	}
	if *cellTimeout < 0 || *reqTimeout < 0 || *drainTimeout <= 0 {
		return fmt.Errorf("-cell-timeout and -request-timeout must be >= 0 and -drain-timeout > 0")
	}
	injector, err := fault.FromEnv()
	if err != nil {
		return err
	}
	// The network fault sites apply to this worker's upstream hub
	// traffic (shared result cache and trace tier), not just to the
	// coordinator: a chaos plan set on a worker exercises the tiers'
	// verify-and-degrade paths over a hostile wire.
	var cacheTransport http.RoundTripper
	if injector != nil && *cacheUpstream != "" {
		if plan, perr := fault.PlanFromEnv(); perr == nil && plan != nil && plan.HasNetworkFaults() {
			cacheTransport = &fault.ChaosTransport{Plan: plan}
			fmt.Fprintf(os.Stderr, "bioperf5: network chaos enabled on the cache-upstream transport (%s=%s)\n",
				fault.EnvVar, os.Getenv(fault.EnvVar))
		}
	}
	eng := sched.New(sched.Options{
		Workers:        *workers,
		CacheDir:       *cacheDir,
		CacheUpstream:  *cacheUpstream,
		CacheTransport: cacheTransport,
		Retries:        *retries,
		CellTimeout:    *cellTimeout,
		Injector:       injector,
	})
	var tracer *telemetry.Tracer
	if *spansDir != "" {
		tracer = telemetry.NewTracer(0, eng.Registry())
	}
	srv := server.New(server.Options{
		Engine:         eng,
		MaxInflight:    *maxInflight,
		DefaultTimeout: *reqTimeout,
		DefaultTrace:   defaultTrace,
		Tracer:         tracer,
		EnablePprof:    *enablePprof,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		err := httpSrv.ListenAndServe()
		if err == http.ErrServerClosed {
			err = nil
		}
		errc <- err
	}()
	fmt.Fprintf(os.Stderr, "bioperf5: serving on http://%s\n", *addr)
	select {
	case err := <-errc:
		eng.Drain(context.Background())
		return err // the listener died before any signal
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "bioperf5: draining (in-flight requests finish; new requests get 503)")
	srv.StartDrain()
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := eng.Drain(sctx); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if err := <-errc; err != nil {
		return err
	}
	if tracer != nil {
		if err := writeSpanFiles(*spansDir, tracer); err != nil {
			return fmt.Errorf("-spans: %w", err)
		}
		fmt.Fprintf(os.Stderr, "bioperf5: wrote %d spans to %s (spans.jsonl + trace.json)\n",
			tracer.Len(), *spansDir)
	}
	fmt.Fprintln(os.Stderr, "bioperf5: drained cleanly")
	return nil
}

// cmdTrace runs one kernel invocation with the pipeline event trace
// attached and streams the per-instruction lifecycle records as JSONL.
func cmdTrace(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("trace: need <application> <variant>")
	}
	k, err := kernels.ByApp(args[0])
	if err != nil {
		return err
	}
	v, err := parseVariant(args[1])
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	scale := fs.Int("scale", 1, "workload scale factor")
	seed := fs.Int64("seed", 1, "input seed")
	capacity := fs.Int("cap", telemetry.DefaultTraceCapacity, "trace ring capacity (events)")
	if err := fs.Parse(args[2:]); err != nil {
		return err
	}
	run, err := k.NewRun(*seed, *scale)
	if err != nil {
		return err
	}
	buf := telemetry.NewTraceBuffer(*capacity)
	if _, err := kernels.SimulateObserved(k, v, run, cpu.POWER5Baseline(), simLimit,
		kernels.Observer{Trace: buf}); err != nil {
		return err
	}
	if n := buf.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "bioperf5: trace ring full, dropped %d oldest events (raise -cap)\n", n)
	}
	return buf.WriteJSONL(os.Stdout)
}

// statsReport is the JSON shape of one application's stats snapshot.
type statsReport struct {
	App      string             `json:"app"`
	Variant  string             `json:"variant"`
	Snapshot telemetry.Snapshot `json:"snapshot"`
}

// statsFor runs app's kernel on the POWER5 baseline with a telemetry
// registry attached, folds the application profiler into the same
// registry, and returns the combined snapshot.  The same cell is also
// run once through a single-worker scheduler publishing into the same
// registry, so the sched.* counters — including the fault and retry
// counters, live when BIOPERF5_FAULTS is set — appear in the snapshot.
func statsFor(app string, scale int, seed int64) (statsReport, error) {
	k, err := kernels.ByApp(app)
	if err != nil {
		return statsReport{}, err
	}
	run, err := k.NewRun(seed, scale)
	if err != nil {
		return statsReport{}, err
	}
	reg := telemetry.NewRegistry()
	if _, err := kernels.SimulateObserved(k, kernels.Branchy, run, cpu.POWER5Baseline(),
		simLimit, kernels.Observer{Registry: reg}); err != nil {
		return statsReport{}, err
	}
	injector, err := fault.FromEnv()
	if err != nil {
		return statsReport{}, err
	}
	eng := sched.New(sched.Options{Workers: 1, Registry: reg, Retries: 2, Injector: injector})
	_, schedErr := eng.Run(context.Background(), sched.Job{
		App: app, Variant: kernels.Branchy, CPU: cpu.POWER5Baseline(),
		Seed: seed, Scale: scale,
	})
	eng.Close()
	if schedErr != nil {
		return statsReport{}, schedErr
	}
	res, err := workload.Run(app, scale, seed)
	if err != nil {
		return statsReport{}, err
	}
	p := perf.New()
	for _, e := range res.Breakdown {
		p.Add(e.Name, e.Time, e.Calls)
	}
	p.PublishTo(reg)
	return statsReport{App: app, Variant: kernels.Branchy.String(), Snapshot: reg.Snapshot(8)}, nil
}

// cmdStats prints the telemetry snapshot of a baseline run — the CPU
// counters and CPI stall stack, cache and BTAC metrics, and the
// function-level profile, all drawn from one registry.
func cmdStats(args []string) error {
	apps := workload.Apps()
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		apps = []string{args[0]}
		args = args[1:]
	}
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	scale := fs.Int("scale", 1, "workload scale factor")
	seed := fs.Int64("seed", 1, "input seed")
	jsonOut := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var reports []statsReport
	for _, app := range apps {
		rep, err := statsFor(app, *scale, *seed)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	for _, rep := range reports {
		fmt.Printf("== %s (%s, POWER5 baseline) ==\n", rep.App, rep.Variant)
		fmt.Println(rep.Snapshot.Format())
	}
	return nil
}

func cmdProfile(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("profile: missing application (one of %v)", workload.Apps())
	}
	app := args[0]
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	scale := fs.Int("scale", 1, "workload scale factor")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	res, err := workload.Run(app, *scale, 1)
	if err != nil {
		return err
	}
	fmt.Println(res.Summary)
	p := perf.New()
	for _, e := range res.Breakdown {
		p.Add(e.Name, e.Time, e.Calls)
	}
	fmt.Print(p.Format())
	return nil
}

// spanStat is one stage row of the aggregated spans report.
type spanStat struct {
	Stage   string `json:"stage"`
	Count   int    `json:"count"`
	TotalNS int64  `json:"total_ns"`
	MeanNS  int64  `json:"mean_ns"`
	MaxNS   int64  `json:"max_ns"`
}

// aggregateSpans folds a span log into per-stage statistics, sorted by
// total time descending.
func aggregateSpans(spans []telemetry.SpanData) []spanStat {
	byName := map[string]*spanStat{}
	for _, d := range spans {
		st := byName[d.Name]
		if st == nil {
			st = &spanStat{Stage: d.Name}
			byName[d.Name] = st
		}
		st.Count++
		st.TotalNS += d.DurNS
		if d.DurNS > st.MaxNS {
			st.MaxNS = d.DurNS
		}
	}
	out := make([]spanStat, 0, len(byName))
	for _, st := range byName {
		st.MeanNS = st.TotalNS / int64(st.Count)
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNS != out[j].TotalNS {
			return out[i].TotalNS > out[j].TotalNS
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// cmdSpans aggregates a recorded span log (sweep -spans / serve -spans)
// into a per-stage profile, and optionally converts it to a Chrome
// trace-event file for Perfetto.
func cmdSpans(args []string) error {
	fs := flag.NewFlagSet("spans", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the aggregated profile as JSON")
	chromeOut := fs.String("chrome", "", "also convert the span log to a Chrome trace-event file at FILE")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("spans: need exactly one spans.jsonl file (written by sweep -spans or serve -spans)")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := telemetry.ReadSpansJSONL(f)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("spans: %s holds no spans", fs.Arg(0))
	}
	if *chromeOut != "" {
		cf, err := os.Create(*chromeOut)
		if err != nil {
			return err
		}
		if err := telemetry.WriteChromeTraceData(cf, spans); err != nil {
			cf.Close()
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bioperf5: wrote Chrome trace-event file %s (%d events)\n",
			*chromeOut, len(spans))
	}
	stats := aggregateSpans(spans)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(stats)
	}
	fmt.Printf("%d spans, %d stages\n", len(spans), len(stats))
	fmt.Printf("%-16s %8s %12s %12s %12s\n", "stage", "count", "total", "mean", "max")
	for _, st := range stats {
		fmt.Printf("%-16s %8d %12s %12s %12s\n", st.Stage, st.Count,
			time.Duration(st.TotalNS).Round(time.Microsecond),
			time.Duration(st.MeanNS).Round(time.Microsecond),
			time.Duration(st.MaxNS).Round(time.Microsecond))
	}
	fmt.Println("\nnote: stages nest (sched.execute contains capture/replay/cache), so totals overlap")
	return nil
}

func parseVariant(name string) (kernels.Variant, error) {
	v, err := kernels.VariantByName(name)
	if err != nil {
		return 0, fmt.Errorf("unknown variant %q (try `bioperf5 variants`)", name)
	}
	return v, nil
}

func cmdDisasm(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("disasm: need <application> <variant>")
	}
	k, err := kernels.ByApp(args[0])
	if err != nil {
		return err
	}
	v, err := parseVariant(args[1])
	if err != nil {
		return err
	}
	prog, st, err := k.Compile(v)
	if err != nil {
		return err
	}
	fmt.Printf("%s / %s: %d instructions, %d spill slots, %d hammocks converted\n\n",
		k.Name, v, prog.Len(), st.SpillSlots, st.HammocksConverted)
	fmt.Print(prog.Disasm())
	return nil
}

func cmdVariants() error {
	for v := kernels.Branchy; v < kernels.NumVariants; v++ {
		fmt.Println(v.String())
	}
	return nil
}

// cmdVersion prints the binary's build identity and wire schema — the
// same document GET /v1/version serves, which the cluster coordinator
// handshakes on before dispatching work.
func cmdVersion(args []string) error {
	fs := flag.NewFlagSet("version", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit JSON (the exact GET /v1/version body)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	v := server.BuildVersion()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
	fmt.Printf("bioperf5 %s\n", v.Version)
	fmt.Printf("schema:   %s\n", v.Schema)
	if v.GoVersion != "" {
		fmt.Printf("go:       %s\n", v.GoVersion)
	}
	if v.Revision != "" {
		dirty := ""
		if v.Modified {
			dirty = " (modified)"
		}
		fmt.Printf("revision: %s%s\n", v.Revision, dirty)
	}
	return nil
}
