// End-to-end regeneration test: every experiment in the registry must
// run, render, and (CI runs this as its own step) produce a valid
// machine-readable report whose stall stacks respect the cycle
// invariant.
package bioperf5

import (
	"bytes"
	"encoding/json"
	"testing"

	"bioperf5/internal/harness"
)

func TestExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every table and figure")
	}
	cfg := harness.Quick()
	for _, e := range harness.Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			rep, err := harness.RunReport(e, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != e.ID || len(rep.Columns) == 0 || len(rep.Rows) == 0 {
				t.Fatalf("incomplete report: %+v", rep)
			}
			tab, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if tab.Render() == "" {
				t.Fatal("empty render")
			}
			var buf bytes.Buffer
			if err := rep.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			if !json.Valid(buf.Bytes()) {
				t.Fatalf("invalid JSON report:\n%s", buf.String())
			}
			for _, ks := range rep.Kernels {
				if got, want := ks.Aggregate.Stalls.Total(), ks.Aggregate.Counters.Cycles; got != want {
					t.Errorf("%s: stall stack %d != cycles %d", ks.App, got, want)
				}
			}
		})
	}
}
