// Hmmsearch is the hmmpfam workload: build profile HMMs from protein
// families (the hmmbuild step), then scan a query against the model
// database with both Viterbi and Forward scoring.
package main

import (
	"fmt"
	"log"

	"bioperf5/internal/bio/clustal"
	"bioperf5/internal/bio/hmm"
	"bioperf5/internal/bio/seq"
)

func main() {
	g := seq.NewGenerator(seq.Protein, 99)

	// Build a miniature Pfam: four families, one model each.
	db := &hmm.Pfam{}
	var families [][]*seq.Seq
	names := []string{"kinase_like", "zn_finger", "helix_bundle", "beta_prop"}
	for _, name := range names {
		fam := g.Family(name, 6, 90, 0.85)
		families = append(families, fam)

		msa, err := clustal.Align(fam, clustal.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		model, err := hmm.BuildFromMSA(name, msa.MSA)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("built %-14s M=%d from %d sequences (%d columns)\n",
			name, model.M, len(fam), msa.MSA.Columns())
		db.Models = append(db.Models, model)
	}

	// The query is a fresh homolog of the second family.
	query := g.Mutate(families[1][0], "query_protein", 0.8, 0.02)
	fmt.Printf("\nscanning %s (%d aa) against %d models\n\n",
		query.ID, query.Len(), len(db.Models))

	vit, err := db.Search(query, hmm.UseViterbi)
	if err != nil {
		log.Fatal(err)
	}
	fwd, err := db.Search(query, hmm.UseForward)
	if err != nil {
		log.Fatal(err)
	}
	fwdBits := map[string]float64{}
	for _, h := range fwd {
		fwdBits[h.Model] = h.Bits
	}

	fmt.Printf("%-14s %12s %12s\n", "model", "viterbi bits", "forward bits")
	for _, h := range vit {
		fmt.Printf("%-14s %12.1f %12.1f\n", h.Model, h.Bits, fwdBits[h.Model])
	}
	fmt.Printf("\ntop hit: %s (true family: %s)\n", vit[0].Model, names[1])
}
