// Isasim shows the simulator stack standalone: hand-assemble a small
// PPC-subset program with a data-dependent branch, run it on the
// POWER5 timing model under several configurations, and print the
// hardware counters — the same instruments the paper reads.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bioperf5/internal/cpu"
	"bioperf5/internal/isa"
	"bioperf5/internal/machine"
	"bioperf5/internal/mem"
)

// buildProgram assembles: sum of max(x[i], y[i]) over n pairs, using a
// compare-and-branch max — the hostile pattern from the paper.
func buildProgram(useMax bool) *isa.Program {
	a := isa.NewAsm()
	a.Label("main") // r3 = x ptr, r4 = y ptr, r5 = n
	a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R5})
	a.Li(isa.R6, 0) // byte offset
	a.Li(isa.R7, 0) // sum
	a.Label("loop")
	a.Emit(isa.Instruction{Op: isa.OpLdx, RT: isa.R8, RA: isa.R3, RB: isa.R6})
	a.Emit(isa.Instruction{Op: isa.OpLdx, RT: isa.R9, RA: isa.R4, RB: isa.R6})
	if useMax {
		a.Emit(isa.Instruction{Op: isa.OpMax, RT: isa.R8, RA: isa.R8, RB: isa.R9})
	} else {
		a.Emit(isa.Instruction{Op: isa.OpCmpd, CRF: isa.CR0, RA: isa.R8, RB: isa.R9})
		a.Branch(isa.Instruction{Op: isa.OpBc, CRF: isa.CR0, Bit: isa.CRGT, Want: true}, "keep")
		a.Mr(isa.R8, isa.R9)
		a.Label("keep")
	}
	a.Emit(isa.Instruction{Op: isa.OpAdd, RT: isa.R7, RA: isa.R7, RB: isa.R8})
	a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R6, RA: isa.R6, Imm: 8})
	a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
	a.Mr(isa.R3, isa.R7)
	a.Ret()
	p, err := a.Finish()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func run(name string, prog *isa.Program, cfg cpu.Config) {
	const n = 20000
	m := mem.New()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		m.WriteInt(0x10000+uint64(8*i), 8, rng.Int63n(1000))
		m.WriteInt(0x50000+uint64(8*i), 8, rng.Int63n(1000))
	}
	mach := machine.New(prog, m)
	mach.Reset()
	if err := mach.SetPC("main"); err != nil {
		log.Fatal(err)
	}
	mach.SetReg(isa.SP, 0x7FF0000)
	mach.SetReg(isa.R3, 0x10000)
	mach.SetReg(isa.R4, 0x50000)
	mach.SetReg(isa.R5, n)

	model := cpu.MustNew(cfg)
	ctr, err := model.Run(mach, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-26s %9d cycles  IPC %.2f  branches %6d  mispredicts %5d  taken-bubbles %6d\n",
		name, ctr.Cycles, ctr.IPC(), ctr.Branches, ctr.DirMispredicts, ctr.TakenBubbles)
}

func main() {
	fmt.Println("sum of max(x[i], y[i]) over 20k random pairs — the paper's pattern in miniature")
	fmt.Println()

	branchy := buildProgram(false)
	maxed := buildProgram(true)

	base := cpu.POWER5Baseline()
	run("branchy, stock POWER5", branchy, base)

	withBTAC := base
	withBTAC.UseBTAC = true
	run("branchy + BTAC", branchy, withBTAC)

	ext := base
	ext.Extensions = true
	run("max instruction", maxed, ext)

	all := withBTAC
	all.Extensions = true
	all.NumFXU = 4
	run("max + BTAC + 4 FXUs", maxed, all)

	fmt.Println("\n(disassembly of the branchy loop)")
	fmt.Print(branchy.Disasm())
}
