// Pairalign is the ssearch/blastp workload as a user would run it:
// a query searched against a protein database, reported with E-values,
// and the best hit shown as a full alignment.
package main

import (
	"fmt"
	"log"
	"os"

	"bioperf5/internal/bio/align"
	"bioperf5/internal/bio/blast"
	"bioperf5/internal/bio/seq"
)

func main() {
	g := seq.NewGenerator(seq.Protein, 1234)
	query := g.Random("Q9XYZ1", 240)
	db := g.Database("UP", 80, 120, 450, query, 4)

	fmt.Printf("query %s (%d aa) vs %d database sequences\n\n",
		query.ID, query.Len(), len(db))

	params := blast.DefaultParams()
	idx, err := blast.NewIndex(db, params)
	if err != nil {
		log.Fatal(err)
	}
	hits, err := blast.Search(query, idx, params)
	if err != nil {
		log.Fatal(err)
	}
	if len(hits) == 0 {
		fmt.Println("no hits below the E-value cutoff")
		return
	}

	fmt.Printf("%-14s %8s %8s %12s\n", "subject", "score", "bits", "E-value")
	for _, h := range hits {
		fmt.Printf("%-14s %8d %8.1f %12.2g\n", h.Subject.ID, h.Score, h.Bits, h.EValue)
	}

	// Full Smith-Waterman alignment of the top hit.
	top := hits[0]
	res, err := align.Local(query, top.Subject, params.Matrix, params.Gap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbest alignment:")
	fmt.Print(res.Format(60))

	// Round-trip the database through FASTA to show the I/O layer.
	if err := seq.WriteFASTA(os.Stdout, []*seq.Seq{query}); err != nil {
		log.Fatal(err)
	}
}
