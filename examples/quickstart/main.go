// Quickstart: align two protein sequences with the library, then run
// the same Smith-Waterman computation through the POWER5 simulator on a
// stock core and on the paper's improved core (max instruction + BTAC +
// 4 FXUs) and compare.
package main

import (
	"fmt"
	"log"

	"bioperf5/internal/bio/align"
	"bioperf5/internal/bio/score"
	"bioperf5/internal/bio/seq"
	"bioperf5/internal/core"
	"bioperf5/internal/kernels"
)

func main() {
	// 1. Pairwise alignment with the bio library.
	a := seq.MustSeq("sensor_A", "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQ", seq.Protein)
	b := seq.MustSeq("sensor_B", "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQ", seq.Protein)
	g := seq.NewGenerator(seq.Protein, 7)
	b = g.Mutate(b, "sensor_B", 0.7, 0.05) // derive a homolog

	res, err := align.Local(a, b, score.BLOSUM62, score.DefaultProteinGap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Smith-Waterman local alignment ===")
	fmt.Print(res.Format(60))

	// 2. The same kernel on the simulated POWER5.
	k, err := kernels.ByApp("Fasta")
	if err != nil {
		log.Fatal(err)
	}
	seeds := []int64{1}
	base, err := core.RunKernel(k, core.Baseline(), seeds, 1)
	if err != nil {
		log.Fatal(err)
	}
	improved, err := core.RunKernel(k,
		core.Baseline().WithVariant(kernels.Combination).WithBTAC().WithFXUs(4),
		seeds, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== dropgsw kernel on the simulated POWER5 ===")
	fmt.Printf("baseline:  %8d cycles  IPC %.2f  mispredicts %d\n",
		base.Cycles, base.IPC(), base.DirMispredicts)
	fmt.Printf("improved:  %8d cycles  IPC %.2f  mispredicts %d\n",
		improved.Cycles, improved.IPC(), improved.DirMispredicts)
	fmt.Printf("speedup:   %.2fx (the paper's max+BTAC+FXU combination)\n",
		float64(base.Cycles)/float64(improved.Cycles))
}
