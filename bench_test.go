// Benchmarks: one per table and figure of the paper (regenerating the
// artifact under the Go benchmark harness and reporting the headline
// quantity as a custom metric), plus the ablation studies DESIGN.md
// calls out (BTAC geometry, direction-predictor choice, taken-branch
// penalty).
//
// Run with: go test -bench=. -benchmem
package bioperf5

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"bioperf5/internal/branch"
	"bioperf5/internal/core"
	"bioperf5/internal/cpu"
	"bioperf5/internal/harness"
	"bioperf5/internal/kernels"
	"bioperf5/internal/sched"
	"bioperf5/internal/server"
	"bioperf5/internal/trace"
	"bioperf5/internal/workload"
)

// benchCfg is the single-seed configuration used by the benchmark
// harness so each iteration stays around a second.
func benchCfg() harness.Config { return harness.Quick() }

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig1FunctionBreakout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, app := range workload.Apps() {
			res, err := workload.Run(app, 1, 1)
			if err != nil {
				b.Fatal(err)
			}
			if _, share := res.DominantFunction(); share <= 0 {
				b.Fatal("empty profile")
			}
		}
	}
}

// benchFig4 runs the Fig 4 experiment through a scheduler engine of the
// given pool size with caching off, so the benchmark measures raw
// simulation throughput rather than cache hits.
func benchFig4(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		eng := sched.New(sched.Options{Workers: workers, DisableCache: true})
		cfg := benchCfg()
		cfg.Engine = eng
		tab, err := harness.Fig4(cfg)
		eng.Close()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig4Serial vs BenchmarkFig4Parallel quantify the speedup the
// worker pool buys on one experiment: serial pins one worker, parallel
// uses GOMAXPROCS.
func BenchmarkFig4Serial(b *testing.B)   { benchFig4(b, 1) }
func BenchmarkFig4Parallel(b *testing.B) { benchFig4(b, 0) }

func BenchmarkTable1HardwareCounters(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkFig2ClustalwPhases(b *testing.B)     { runExperiment(b, "fig2") }
func BenchmarkFig3Predication(b *testing.B)        { runExperiment(b, "fig3") }
func BenchmarkTable2BranchStats(b *testing.B)      { runExperiment(b, "table2") }
func BenchmarkFig4BTAC(b *testing.B)               { runExperiment(b, "fig4") }
func BenchmarkFig5FXU(b *testing.B)                { runExperiment(b, "fig5") }
func BenchmarkFig6Combined(b *testing.B)           { runExperiment(b, "fig6") }

// BenchmarkKernelSimulation measures simulator throughput per kernel
// and variant, reporting simulated IPC and host MIPS.
func BenchmarkKernelSimulation(b *testing.B) {
	for _, k := range kernels.All() {
		for _, v := range []kernels.Variant{kernels.Branchy, kernels.HandMax, kernels.Combination} {
			k, v := k, v
			b.Run(k.App+"/"+v.String(), func(b *testing.B) {
				var instr, cycles uint64
				for i := 0; i < b.N; i++ {
					run, err := k.NewRun(1, 1)
					if err != nil {
						b.Fatal(err)
					}
					ctr, err := kernels.Simulate(k, v, run, cpu.POWER5Baseline(), 1<<30)
					if err != nil {
						b.Fatal(err)
					}
					instr += ctr.Instructions
					cycles += ctr.Cycles
				}
				b.ReportMetric(float64(instr)/float64(cycles), "sim-IPC")
				b.ReportMetric(float64(instr)/b.Elapsed().Seconds()/1e6, "sim-MIPS")
			})
		}
	}
}

// BenchmarkAblationBTACSize sweeps the BTAC entry count around the
// paper's 8-entry choice.
func BenchmarkAblationBTACSize(b *testing.B) {
	k, err := kernels.ByApp("Clustalw")
	if err != nil {
		b.Fatal(err)
	}
	for _, entries := range []int{2, 4, 8, 16, 64} {
		entries := entries
		b.Run(strconv.Itoa(entries), func(b *testing.B) {
			cfg := cpu.POWER5Baseline()
			cfg.UseBTAC = true
			cfg.BTAC = branch.BTACConfig{Entries: entries, Threshold: 1, MaxScore: 3}
			s := core.Setup{Name: "btac", Variant: kernels.Branchy, CPU: cfg}
			var bubbles, taken uint64
			var ipc float64
			for i := 0; i < b.N; i++ {
				ctr, err := core.RunKernel(k, s, []int64{1}, 1)
				if err != nil {
					b.Fatal(err)
				}
				bubbles += ctr.TakenBubbles
				taken += ctr.TakenBranches
				ipc = ctr.IPC()
			}
			b.ReportMetric(ipc, "sim-IPC")
			b.ReportMetric(100*float64(bubbles)/float64(taken), "bubble%")
		})
	}
}

// BenchmarkAblationBTACThreshold sweeps the confidence threshold the
// score-based BTAC requires before predicting.
func BenchmarkAblationBTACThreshold(b *testing.B) {
	k, err := kernels.ByApp("Blast")
	if err != nil {
		b.Fatal(err)
	}
	for _, thr := range []int{1, 2, 3} {
		thr := thr
		b.Run(strconv.Itoa(thr), func(b *testing.B) {
			cfg := cpu.POWER5Baseline()
			cfg.UseBTAC = true
			cfg.BTAC = branch.BTACConfig{Entries: 8, Threshold: thr, MaxScore: 3}
			s := core.Setup{Name: "btac", Variant: kernels.Branchy, CPU: cfg}
			var ipc, mis float64
			for i := 0; i < b.N; i++ {
				ctr, err := core.RunKernel(k, s, []int64{1}, 1)
				if err != nil {
					b.Fatal(err)
				}
				ipc = ctr.IPC()
				mis = 100 * ctr.BTACMispredictRate()
			}
			b.ReportMetric(ipc, "sim-IPC")
			b.ReportMetric(mis, "btac-mispred%")
		})
	}
}

// BenchmarkAblationPredictor compares direction predictors under the
// DP-kernel branch stream.
func BenchmarkAblationPredictor(b *testing.B) {
	k, err := kernels.ByApp("Fasta")
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"static-taken", "bimodal", "gshare", "tournament"} {
		name := name
		b.Run(name, func(b *testing.B) {
			cfg := cpu.POWER5Baseline()
			cfg.Predictor = name
			s := core.Setup{Name: name, Variant: kernels.Branchy, CPU: cfg}
			var ipc, mr float64
			for i := 0; i < b.N; i++ {
				ctr, err := core.RunKernel(k, s, []int64{1}, 1)
				if err != nil {
					b.Fatal(err)
				}
				ipc = ctr.IPC()
				mr = 100 * ctr.BranchMispredictRate()
			}
			b.ReportMetric(ipc, "sim-IPC")
			b.ReportMetric(mr, "mispred%")
		})
	}
}

// BenchmarkAblationTakenPenalty sweeps the taken-branch fetch bubble
// (0 = ideal front end, 2 = POWER5, 3 = POWER5 with SMT).
func BenchmarkAblationTakenPenalty(b *testing.B) {
	k, err := kernels.ByApp("Clustalw")
	if err != nil {
		b.Fatal(err)
	}
	for _, pen := range []int{0, 2, 3} {
		pen := pen
		b.Run(strconv.Itoa(pen), func(b *testing.B) {
			cfg := cpu.POWER5Baseline()
			cfg.TakenBranchPenalty = pen
			s := core.Setup{Name: "pen", Variant: kernels.Branchy, CPU: cfg}
			var ipc float64
			for i := 0; i < b.N; i++ {
				ctr, err := core.RunKernel(k, s, []int64{1}, 1)
				if err != nil {
					b.Fatal(err)
				}
				ipc = ctr.IPC()
			}
			b.ReportMetric(ipc, "sim-IPC")
		})
	}
}

// benchServeCell measures the HTTP serving layer end to end — decode,
// canonicalize, admission, engine round trip, encode — by POSTing the
// same cell repeatedly at an httptest server.
func benchServeCell(b *testing.B, opts sched.Options) {
	b.Helper()
	eng := sched.New(opts)
	defer eng.Close()
	srv := httptest.NewServer(server.New(server.Options{Engine: eng}))
	defer srv.Close()
	body, err := json.Marshal(map[string]any{
		"app": "Clustalw", "variant": "combination", "fxus": 3, "btac_entries": 8,
		"scale": 1, "seeds": []int64{1},
	})
	if err != nil {
		b.Fatal(err)
	}
	post := func() {
		resp, err := http.Post(srv.URL+"/v1/cells", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		var out server.CellResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if out.Stats.Aggregate.Counters.Cycles == 0 {
			b.Fatal("empty cell result")
		}
	}
	post() // prime: first request pays compile + (when enabled) cache fill
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
}

// BenchmarkServeCellCached is the steady-state serving cost: every
// request after the first is a memoization hit, so this measures the
// HTTP + canonicalization + cache-lookup overhead per request.
func BenchmarkServeCellCached(b *testing.B) {
	benchServeCell(b, sched.Options{})
}

// BenchmarkServeCellCold disables the cache so every request simulates;
// the gap to BenchmarkServeCellCached is the win coalescing/memoization
// buys the serving path.
func BenchmarkServeCellCold(b *testing.B) {
	benchServeCell(b, sched.Options{DisableCache: true})
}

// benchSweepTrace runs the FXU x BTAC timing factorial — six
// configurations of one (kernel, variant, seed, scale) cell — under a
// trace policy, with a fresh store per iteration so every iteration
// pays the full capture cost exactly once (auto) or never captures at
// all (off: six coupled functional+timing runs).
func benchSweepTrace(b *testing.B, policy core.TracePolicy) {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		store := trace.NewStore(trace.StoreOptions{})
		for _, fxus := range []int{2, 3, 4} {
			for _, entries := range []int{0, 8} {
				cfg := cpu.POWER5Baseline()
				cfg.NumFXU = fxus
				cfg.UseBTAC = entries > 0
				resp, err := core.Simulate(core.Request{
					App: "Fasta", Variant: kernels.Branchy, Seeds: []int64{1},
					Scale: 1, CPU: cfg, Trace: policy, Traces: store,
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles += resp.Aggregate.Counters.Cycles
			}
		}
	}
	if cycles == 0 {
		b.Fatal("factorial simulated nothing")
	}
}

// BenchmarkSweepTraceOff is the capture-per-cell baseline: every cell
// of the factorial runs the coupled functional+timing path.
func BenchmarkSweepTraceOff(b *testing.B) { benchSweepTrace(b, core.TraceOff) }

// BenchmarkSweepTraceReplay is the capture-once/replay-many path: one
// functional capture, six decoupled replays.  The CI benchmark gate
// (scripts/bench_trace.sh) requires this to beat BenchmarkSweepTraceOff.
func BenchmarkSweepTraceReplay(b *testing.B) { benchSweepTrace(b, core.TraceAuto) }

// BenchmarkAblationIfConvertArmLimit sweeps the if-converter's arm-size
// budget on the Blast kernel (whose convertible hammocks include the
// multi-assignment tracking group).
func BenchmarkAblationIfConvertArmLimit(b *testing.B) {
	k, err := kernels.ByApp("Blast")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		prog, st, err := k.Compile(kernels.CompISel)
		if err != nil {
			b.Fatal(err)
		}
		if st.HammocksConverted == 0 {
			b.Fatal("nothing converted")
		}
		_ = prog
	}
}
