package machine

import (
	"testing"
	"testing/quick"

	"bioperf5/internal/isa"
	"bioperf5/internal/mem"
)

func assemble(t *testing.T, build func(a *isa.Asm)) *Machine {
	t.Helper()
	a := isa.NewAsm()
	build(a)
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return New(p, mem.New())
}

func call(t *testing.T, m *Machine, label string, args ...uint64) uint64 {
	t.Helper()
	v, err := m.Call(label, 1_000_000, args...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	m := assemble(t, func(a *isa.Asm) {
		a.Label("f") // r3 = (r3+r4)*2 - 5
		a.Emit(isa.Instruction{Op: isa.OpAdd, RT: isa.R3, RA: isa.R3, RB: isa.R4})
		a.Emit(isa.Instruction{Op: isa.OpMulli, RT: isa.R3, RA: isa.R3, Imm: 2})
		a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R3, RA: isa.R3, Imm: -5})
		a.Ret()
	})
	if got := call(t, m, "f", 10, 7); got != 29 {
		t.Errorf("got %d, want 29", got)
	}
}

func TestSignedOps(t *testing.T) {
	m := assemble(t, func(a *isa.Asm) {
		a.Label("neg")
		a.Emit(isa.Instruction{Op: isa.OpNeg, RT: isa.R3, RA: isa.R3})
		a.Ret()
		a.Label("subf") // r3 = r4 - r3
		a.Emit(isa.Instruction{Op: isa.OpSubf, RT: isa.R3, RA: isa.R3, RB: isa.R4})
		a.Ret()
		a.Label("divd")
		a.Emit(isa.Instruction{Op: isa.OpDivd, RT: isa.R3, RA: isa.R3, RB: isa.R4})
		a.Ret()
		a.Label("srad")
		a.Emit(isa.Instruction{Op: isa.OpSrad, RT: isa.R3, RA: isa.R3, RB: isa.R4})
		a.Ret()
	})
	if got := int64(call(t, m, "neg", 5)); got != -5 {
		t.Errorf("neg 5 = %d", got)
	}
	if got := int64(call(t, m, "subf", 3, 10)); got != 7 {
		t.Errorf("subf = %d, want 7", got)
	}
	if got := int64(call(t, m, "divd", uint64(^uint64(0)-13), 7)); got != -2 {
		t.Errorf("-14/7 = %d, want -2", got)
	}
	if got := int64(call(t, m, "divd", 5, 0)); got != 0 {
		t.Errorf("div by zero = %d, want 0", got)
	}
	if got := int64(call(t, m, "srad", uint64(^uint64(0)-15), 2)); got != -4 {
		t.Errorf("-16>>2 = %d, want -4", got)
	}
}

func TestShifts(t *testing.T) {
	m := assemble(t, func(a *isa.Asm) {
		a.Label("sld")
		a.Emit(isa.Instruction{Op: isa.OpSld, RT: isa.R3, RA: isa.R3, RB: isa.R4})
		a.Ret()
		a.Label("srd")
		a.Emit(isa.Instruction{Op: isa.OpSrd, RT: isa.R3, RA: isa.R3, RB: isa.R4})
		a.Ret()
	})
	if got := call(t, m, "sld", 1, 63); got != 1<<63 {
		t.Errorf("1<<63 = %#x", got)
	}
	if got := call(t, m, "sld", 1, 64); got != 0 {
		t.Errorf("shift-by-64 = %d, want 0", got)
	}
	if got := call(t, m, "srd", 1<<63, 63); got != 1 {
		t.Errorf("srd = %d, want 1", got)
	}
}

func TestExtends(t *testing.T) {
	m := assemble(t, func(a *isa.Asm) {
		a.Label("extsb")
		a.Emit(isa.Instruction{Op: isa.OpExtsb, RT: isa.R3, RA: isa.R3})
		a.Ret()
		a.Label("extsh")
		a.Emit(isa.Instruction{Op: isa.OpExtsh, RT: isa.R3, RA: isa.R3})
		a.Ret()
		a.Label("extsw")
		a.Emit(isa.Instruction{Op: isa.OpExtsw, RT: isa.R3, RA: isa.R3})
		a.Ret()
	})
	if got := int64(call(t, m, "extsb", 0xFF)); got != -1 {
		t.Errorf("extsb 0xFF = %d", got)
	}
	if got := int64(call(t, m, "extsh", 0x8000)); got != -32768 {
		t.Errorf("extsh 0x8000 = %d", got)
	}
	if got := int64(call(t, m, "extsw", 0x80000000)); got != -(1 << 31) {
		t.Errorf("extsw = %d", got)
	}
}

func TestMaxInstruction(t *testing.T) {
	m := assemble(t, func(a *isa.Asm) {
		a.Label("max")
		a.Emit(isa.Instruction{Op: isa.OpMax, RT: isa.R3, RA: isa.R3, RB: isa.R4})
		a.Ret()
	})
	cases := []struct{ a, b, want int64 }{
		{1, 2, 2}, {2, 1, 2}, {-5, -3, -3}, {-3, -5, -3}, {7, 7, 7}, {-1, 0, 0},
	}
	for _, c := range cases {
		if got := int64(call(t, m, "max", uint64(c.a), uint64(c.b))); got != c.want {
			t.Errorf("max(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestQuickMaxMatchesGo(t *testing.T) {
	m := assemble(t, func(a *isa.Asm) {
		a.Label("max")
		a.Emit(isa.Instruction{Op: isa.OpMax, RT: isa.R3, RA: isa.R3, RB: isa.R4})
		a.Ret()
	})
	f := func(x, y int64) bool {
		want := x
		if y > x {
			want = y
		}
		got, err := m.Call("max", 100, uint64(x), uint64(y))
		return err == nil && int64(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIselInstruction(t *testing.T) {
	// r3 = (r3 > r4) ? r3 : r4 — the compare+isel idiom from the paper.
	m := assemble(t, func(a *isa.Asm) {
		a.Label("maxsel")
		a.Emit(isa.Instruction{Op: isa.OpCmpd, CRF: isa.CR0, RA: isa.R3, RB: isa.R4})
		a.Emit(isa.Instruction{Op: isa.OpIsel, RT: isa.R3, RA: isa.R3, RB: isa.R4,
			CRF: isa.CR0, Bit: isa.CRGT})
		a.Ret()
	})
	f := func(x, y int64) bool {
		want := x
		if y > x {
			want = y
		}
		got, err := m.Call("maxsel", 100, uint64(x), uint64(y))
		return err == nil && int64(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConditionalBranches(t *testing.T) {
	// abs(r3) via compare-and-branch.
	m := assemble(t, func(a *isa.Asm) {
		a.Label("abs")
		a.Emit(isa.Instruction{Op: isa.OpCmpdi, CRF: isa.CR0, RA: isa.R3, Imm: 0})
		a.Branch(isa.Instruction{Op: isa.OpBc, CRF: isa.CR0, Bit: isa.CRLT, Want: false}, "done")
		a.Emit(isa.Instruction{Op: isa.OpNeg, RT: isa.R3, RA: isa.R3})
		a.Label("done")
		a.Ret()
	})
	for _, v := range []int64{5, -5, 0, -(1 << 40)} {
		want := v
		if want < 0 {
			want = -want
		}
		if got := int64(call(t, m, "abs", uint64(v))); got != want {
			t.Errorf("abs(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestBdnzLoop(t *testing.T) {
	// sum 1..n using the count register.
	m := assemble(t, func(a *isa.Asm) {
		a.Label("sum")
		a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R3})
		a.Li(isa.R4, 0) // acc
		a.Li(isa.R5, 0) // i
		a.Label("loop")
		a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R5, RA: isa.R5, Imm: 1})
		a.Emit(isa.Instruction{Op: isa.OpAdd, RT: isa.R4, RA: isa.R4, RB: isa.R5})
		a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
		a.Mr(isa.R3, isa.R4)
		a.Ret()
	})
	if got := call(t, m, "sum", 10); got != 55 {
		t.Errorf("sum(10) = %d, want 55", got)
	}
	if got := call(t, m, "sum", 1); got != 1 {
		t.Errorf("sum(1) = %d, want 1", got)
	}
}

func TestCallAndReturn(t *testing.T) {
	// main calls double twice via bl/mtlr conventions.
	m := assemble(t, func(a *isa.Asm) {
		a.Label("main")
		a.Emit(isa.Instruction{Op: isa.OpMflr, RT: isa.R30})
		a.Branch(isa.Instruction{Op: isa.OpB, Imm: 1}, "double")
		a.Branch(isa.Instruction{Op: isa.OpB, Imm: 1}, "double")
		a.Emit(isa.Instruction{Op: isa.OpMtlr, RA: isa.R30})
		a.Ret()
		a.Label("double")
		a.Emit(isa.Instruction{Op: isa.OpAdd, RT: isa.R3, RA: isa.R3, RB: isa.R3})
		a.Ret()
	})
	if got := call(t, m, "main", 3); got != 12 {
		t.Errorf("main(3) = %d, want 12", got)
	}
}

func TestLoadsAndStores(t *testing.T) {
	m := assemble(t, func(a *isa.Asm) {
		a.Label("f")
		// store r4 as word at 0(r3), reload sign-extended, add 8-bit load at 4(r3)
		a.Emit(isa.Instruction{Op: isa.OpStw, RT: isa.R4, RA: isa.R3, Imm: 0})
		a.Emit(isa.Instruction{Op: isa.OpLwa, RT: isa.R5, RA: isa.R3, Imm: 0})
		a.Emit(isa.Instruction{Op: isa.OpStb, RT: isa.R5, RA: isa.R3, Imm: 4})
		a.Emit(isa.Instruction{Op: isa.OpLbz, RT: isa.R6, RA: isa.R3, Imm: 4})
		a.Emit(isa.Instruction{Op: isa.OpAdd, RT: isa.R3, RA: isa.R5, RB: isa.R6})
		a.Ret()
	})
	// r4 = -2: lwa gives -2, stb stores 0xFE, lbz gives 254; sum = 252.
	if got := int64(call(t, m, "f", 0x1000, uint64(^uint64(0)-1))); got != 252 {
		t.Errorf("got %d, want 252", got)
	}
}

func TestIndexedAccess(t *testing.T) {
	m := assemble(t, func(a *isa.Asm) {
		a.Label("f")
		a.Emit(isa.Instruction{Op: isa.OpStdx, RT: isa.R5, RA: isa.R3, RB: isa.R4})
		a.Emit(isa.Instruction{Op: isa.OpLdx, RT: isa.R3, RA: isa.R3, RB: isa.R4})
		a.Ret()
	})
	if got := call(t, m, "f", 0x2000, 24, 0xDEADBEEF); got != 0xDEADBEEF {
		t.Errorf("got %#x", got)
	}
}

func TestDynInstRecords(t *testing.T) {
	m := assemble(t, func(a *isa.Asm) {
		a.Label("f")
		a.Emit(isa.Instruction{Op: isa.OpCmpdi, CRF: isa.CR0, RA: isa.R3, Imm: 0})
		a.Branch(isa.Instruction{Op: isa.OpBc, CRF: isa.CR0, Bit: isa.CRGT, Want: true}, "pos")
		a.Li(isa.R3, 0)
		a.Ret()
		a.Label("pos")
		a.Emit(isa.Instruction{Op: isa.OpStd, RT: isa.R3, RA: isa.R3, Imm: 0})
		a.Ret()
	})
	m.Reset()
	if err := m.SetPC("f"); err != nil {
		t.Fatal(err)
	}
	m.SetReg(isa.R3, 0x3000)

	d1, err := m.Step() // cmpdi
	if err != nil {
		t.Fatal(err)
	}
	if d1.Ins.Op != isa.OpCmpdi || d1.Next != 1 {
		t.Errorf("step1 = %+v", d1)
	}
	d2, err := m.Step() // bc, should be taken
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Taken || d2.Next != m.Prog.Symbols["pos"] {
		t.Errorf("branch record = %+v", d2)
	}
	d3, err := m.Step() // std
	if err != nil {
		t.Fatal(err)
	}
	if d3.EA != 0x3000 || d3.Size != 8 {
		t.Errorf("store record = %+v", d3)
	}
	d4, err := m.Step() // blr
	if err != nil {
		t.Fatal(err)
	}
	if !d4.Taken || !m.Halted() {
		t.Errorf("final blr: %+v halted=%v", d4, m.Halted())
	}
	if _, err := m.Step(); err == nil {
		t.Error("step after halt should error")
	}
}

func TestRunLimit(t *testing.T) {
	m := assemble(t, func(a *isa.Asm) {
		a.Label("spin")
		a.Branch(isa.Instruction{Op: isa.OpB}, "spin")
	})
	m.Reset()
	if err := m.SetPC("spin"); err != nil {
		t.Fatal(err)
	}
	n, err := m.Run(100)
	if err != ErrLimit {
		t.Errorf("err = %v, want ErrLimit", err)
	}
	if n != 100 {
		t.Errorf("steps = %d, want 100", n)
	}
}

func TestCallUnknownLabel(t *testing.T) {
	m := assemble(t, func(a *isa.Asm) {
		a.Label("f")
		a.Ret()
	})
	if _, err := m.Call("missing", 10); err == nil {
		t.Error("expected error for unknown entry label")
	}
}

func TestLi64Materialization(t *testing.T) {
	vals := []int64{0, 1, -1, 0x7FFF, -0x8000, 0x8000, 123456789,
		-123456789, 0x7FFF8000, -0x7FFF8000, 1 << 40, -(1 << 40),
		0x7FFFFFFFFFFFFFFF, -0x8000000000000000, 0x123456789ABCDEF0}
	for _, v := range vals {
		a := isa.NewAsm()
		a.Label("f")
		a.Li64(isa.R3, v)
		a.Ret()
		p, err := a.Finish()
		if err != nil {
			t.Fatalf("li64 %d: %v", v, err)
		}
		m := New(p, mem.New())
		got, err := m.Call("f", 1000)
		if err != nil {
			t.Fatalf("li64 %d: %v", v, err)
		}
		if int64(got) != v {
			t.Errorf("li64(%#x) materialized %#x", v, got)
		}
	}
}

func TestQuickLi64(t *testing.T) {
	f := func(v int64) bool {
		a := isa.NewAsm()
		a.Label("f")
		a.Li64(isa.R3, v)
		a.Ret()
		p, err := a.Finish()
		if err != nil {
			return false
		}
		m := New(p, mem.New())
		got, err := m.Call("f", 1000)
		return err == nil && int64(got) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
