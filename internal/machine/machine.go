// Package machine implements the functional (architectural) simulator
// for the isa subset: it executes programs instruction by instruction,
// maintaining registers, condition fields and big-endian memory, and
// emits a dynamic instruction record per step.  The cycle-approximate
// POWER5 timing model in package cpu consumes that record stream
// (trace-driven simulation), so functional correctness and timing are
// cleanly separated — the same split SystemSim-style full-system
// simulators use between their functional and performance models.
package machine

import (
	"errors"
	"fmt"

	"bioperf5/internal/isa"
	"bioperf5/internal/mem"
)

// haltLR is the sentinel link-register value that terminates execution
// when returned to via blr.
const haltLR = ^uint64(0)

// ErrLimit is returned by Run when the step budget is exhausted before
// the program halts.
var ErrLimit = errors.New("machine: step limit exceeded")

// DynInst is one dynamically executed instruction — the unit of the
// trace consumed by the timing model.
type DynInst struct {
	Index int              // static instruction index (the PC)
	Ins   *isa.Instruction // decoded instruction (points into the program)
	Taken bool             // branches: whether the branch was taken
	Next  int              // index of the next instruction executed
	EA    uint64           // loads/stores: effective address
	Size  int              // loads/stores: access size in bytes
}

// Machine is the architectural state of one hardware thread.
type Machine struct {
	Prog *isa.Program
	Mem  *mem.Memory

	regs [isa.NumRegs]uint64
	pc   int
	halt bool

	steps uint64
}

// New returns a machine ready to execute prog with the given memory.
// The link register is initialized to the halt sentinel so a top-level
// blr ends execution.
func New(prog *isa.Program, memory *mem.Memory) *Machine {
	m := &Machine{Prog: prog, Mem: memory}
	m.regs[isa.LR] = haltLR
	return m
}

// Reset rewinds architectural state (memory is left untouched).
func (m *Machine) Reset() {
	m.regs = [isa.NumRegs]uint64{}
	m.regs[isa.LR] = haltLR
	m.pc = 0
	m.halt = false
	m.steps = 0
}

// SetPC positions execution at the instruction index of label.
func (m *Machine) SetPC(label string) error {
	idx, ok := m.Prog.Symbols[label]
	if !ok {
		return fmt.Errorf("machine: undefined entry label %q", label)
	}
	m.pc = idx
	return nil
}

// Reg returns the value of r.
func (m *Machine) Reg(r isa.Reg) uint64 { return m.regs[r] }

// SetReg sets r to v (used to pass arguments in r3..r10 per the ABI).
func (m *Machine) SetReg(r isa.Reg, v uint64) { m.regs[r] = v }

// Halted reports whether the program has returned to the halt sentinel.
func (m *Machine) Halted() bool { return m.halt }

// Steps returns the number of instructions executed so far.
func (m *Machine) Steps() uint64 { return m.steps }

// PC returns the current instruction index.
func (m *Machine) PC() int { return m.pc }

func (m *Machine) crBit(crf isa.Reg, bit isa.CRBit) bool {
	return m.regs[crf]&(1<<bit) != 0
}

func (m *Machine) setCmp(crf isa.Reg, lt, gt bool) {
	var v uint64
	switch {
	case lt:
		v = 1 << isa.CRLT
	case gt:
		v = 1 << isa.CRGT
	default:
		v = 1 << isa.CREQ
	}
	m.regs[crf] = v
}

// Step executes one instruction and returns its dynamic record.
// Calling Step on a halted machine returns an error.
func (m *Machine) Step() (DynInst, error) {
	if m.halt {
		return DynInst{}, errors.New("machine: step on halted machine")
	}
	if m.pc < 0 || m.pc >= len(m.Prog.Code) {
		return DynInst{}, fmt.Errorf("machine: pc %d out of program bounds", m.pc)
	}
	ins := &m.Prog.Code[m.pc]
	d := DynInst{Index: m.pc, Ins: ins}
	next := m.pc + 1
	r := &m.regs

	switch ins.Op {
	case isa.OpAdd:
		r[ins.RT] = r[ins.RA] + r[ins.RB]
	case isa.OpAddi:
		base := uint64(0)
		if ins.RA != isa.R0 {
			base = r[ins.RA]
		}
		r[ins.RT] = base + uint64(ins.Imm)
	case isa.OpAddis:
		base := uint64(0)
		if ins.RA != isa.R0 {
			base = r[ins.RA]
		}
		r[ins.RT] = base + uint64(ins.Imm<<16)
	case isa.OpSubf:
		r[ins.RT] = r[ins.RB] - r[ins.RA]
	case isa.OpNeg:
		r[ins.RT] = -r[ins.RA]
	case isa.OpMulld:
		r[ins.RT] = r[ins.RA] * r[ins.RB]
	case isa.OpMulli:
		r[ins.RT] = r[ins.RA] * uint64(ins.Imm)
	case isa.OpDivd:
		if r[ins.RB] == 0 {
			r[ins.RT] = 0
		} else {
			r[ins.RT] = uint64(int64(r[ins.RA]) / int64(r[ins.RB]))
		}
	case isa.OpAnd:
		r[ins.RT] = r[ins.RA] & r[ins.RB]
	case isa.OpAndi:
		r[ins.RT] = r[ins.RA] & uint64(ins.Imm)
	case isa.OpOr:
		r[ins.RT] = r[ins.RA] | r[ins.RB]
	case isa.OpOri:
		r[ins.RT] = r[ins.RA] | uint64(ins.Imm)
	case isa.OpXor:
		r[ins.RT] = r[ins.RA] ^ r[ins.RB]
	case isa.OpXori:
		r[ins.RT] = r[ins.RA] ^ uint64(ins.Imm)
	case isa.OpSld:
		if sh := r[ins.RB] & 127; sh >= 64 {
			r[ins.RT] = 0
		} else {
			r[ins.RT] = r[ins.RA] << sh
		}
	case isa.OpSrd:
		if sh := r[ins.RB] & 127; sh >= 64 {
			r[ins.RT] = 0
		} else {
			r[ins.RT] = r[ins.RA] >> sh
		}
	case isa.OpSrad:
		sh := r[ins.RB] & 127
		if sh >= 64 {
			sh = 63
		}
		r[ins.RT] = uint64(int64(r[ins.RA]) >> sh)
	case isa.OpSldi:
		r[ins.RT] = r[ins.RA] << uint(ins.Imm)
	case isa.OpSrdi:
		r[ins.RT] = r[ins.RA] >> uint(ins.Imm)
	case isa.OpSradi:
		r[ins.RT] = uint64(int64(r[ins.RA]) >> uint(ins.Imm))
	case isa.OpExtsb:
		r[ins.RT] = uint64(int64(int8(r[ins.RA])))
	case isa.OpExtsh:
		r[ins.RT] = uint64(int64(int16(r[ins.RA])))
	case isa.OpExtsw:
		r[ins.RT] = uint64(int64(int32(r[ins.RA])))

	case isa.OpMax:
		a, b := int64(r[ins.RA]), int64(r[ins.RB])
		if a >= b {
			r[ins.RT] = uint64(a)
		} else {
			r[ins.RT] = uint64(b)
		}
	case isa.OpIsel:
		if m.crBit(ins.CRF, ins.Bit) {
			r[ins.RT] = r[ins.RA]
		} else {
			r[ins.RT] = r[ins.RB]
		}

	case isa.OpCmpd:
		a, b := int64(r[ins.RA]), int64(r[ins.RB])
		m.setCmp(ins.CRF, a < b, a > b)
	case isa.OpCmpdi:
		a := int64(r[ins.RA])
		m.setCmp(ins.CRF, a < ins.Imm, a > ins.Imm)
	case isa.OpCmpld:
		a, b := r[ins.RA], r[ins.RB]
		m.setCmp(ins.CRF, a < b, a > b)
	case isa.OpCmpldi:
		a, b := r[ins.RA], uint64(ins.Imm)
		m.setCmp(ins.CRF, a < b, a > b)

	case isa.OpB:
		if ins.ImmLK() {
			r[isa.LR] = uint64(m.pc + 1)
		}
		d.Taken = true
		next = ins.Target
	case isa.OpBc:
		if m.crBit(ins.CRF, ins.Bit) == ins.Want {
			d.Taken = true
			next = ins.Target
		}
	case isa.OpBdnz:
		r[isa.CTR]--
		if r[isa.CTR] != 0 {
			d.Taken = true
			next = ins.Target
		}
	case isa.OpBlr:
		d.Taken = true
		if r[isa.LR] == haltLR {
			m.halt = true
			next = m.pc // no successor; Next is meaningless after halt
		} else {
			next = int(r[isa.LR])
		}

	case isa.OpLbz, isa.OpLbzx:
		d.EA, d.Size = m.ea(ins), 1
		r[ins.RT] = m.Mem.ReadUint(d.EA, 1)
	case isa.OpLhz, isa.OpLhzx:
		d.EA, d.Size = m.ea(ins), 2
		r[ins.RT] = m.Mem.ReadUint(d.EA, 2)
	case isa.OpLha, isa.OpLhax:
		d.EA, d.Size = m.ea(ins), 2
		r[ins.RT] = uint64(m.Mem.ReadInt(d.EA, 2))
	case isa.OpLwz, isa.OpLwzx:
		d.EA, d.Size = m.ea(ins), 4
		r[ins.RT] = m.Mem.ReadUint(d.EA, 4)
	case isa.OpLwa, isa.OpLwax:
		d.EA, d.Size = m.ea(ins), 4
		r[ins.RT] = uint64(m.Mem.ReadInt(d.EA, 4))
	case isa.OpLd, isa.OpLdx:
		d.EA, d.Size = m.ea(ins), 8
		r[ins.RT] = m.Mem.ReadUint(d.EA, 8)

	case isa.OpStb, isa.OpStbx:
		d.EA, d.Size = m.ea(ins), 1
		m.Mem.WriteUint(d.EA, 1, r[ins.RT])
	case isa.OpSth, isa.OpSthx:
		d.EA, d.Size = m.ea(ins), 2
		m.Mem.WriteUint(d.EA, 2, r[ins.RT])
	case isa.OpStw, isa.OpStwx:
		d.EA, d.Size = m.ea(ins), 4
		m.Mem.WriteUint(d.EA, 4, r[ins.RT])
	case isa.OpStd, isa.OpStdx:
		d.EA, d.Size = m.ea(ins), 8
		m.Mem.WriteUint(d.EA, 8, r[ins.RT])

	case isa.OpMtlr:
		r[isa.LR] = r[ins.RA]
	case isa.OpMflr:
		r[ins.RT] = r[isa.LR]
	case isa.OpMtctr:
		r[isa.CTR] = r[ins.RA]
	case isa.OpMfctr:
		r[ins.RT] = r[isa.CTR]
	case isa.OpNop:
		// nothing
	default:
		return DynInst{}, fmt.Errorf("machine: unimplemented op %s at %d", ins.Op, m.pc)
	}

	d.Next = next
	m.pc = next
	m.steps++
	return d, nil
}

// ea computes the effective address of a load or store.
func (m *Machine) ea(ins *isa.Instruction) uint64 {
	base := m.regs[ins.RA]
	switch ins.Op {
	case isa.OpLbzx, isa.OpLhzx, isa.OpLhax, isa.OpLwzx, isa.OpLwax,
		isa.OpLdx, isa.OpStbx, isa.OpSthx, isa.OpStwx, isa.OpStdx:
		return base + m.regs[ins.RB]
	}
	return base + uint64(ins.Imm)
}

// Run executes until the program halts or limit instructions have been
// executed; it reports the number of instructions executed.
func (m *Machine) Run(limit uint64) (uint64, error) {
	var n uint64
	for !m.halt {
		if n >= limit {
			return n, ErrLimit
		}
		if _, err := m.Step(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Call is a convenience that resets the machine, loads up to 8 integer
// arguments into r3..r10 (the PowerPC ELF ABI argument registers), runs
// the function at label, and returns the value left in r3.
func (m *Machine) Call(label string, limit uint64, args ...uint64) (uint64, error) {
	if len(args) > 8 {
		return 0, fmt.Errorf("machine: too many arguments (%d)", len(args))
	}
	m.Reset()
	if err := m.SetPC(label); err != nil {
		return 0, err
	}
	// A small stack high in memory; kernels are leaf functions and use
	// only a few spill slots.
	m.regs[isa.SP] = 0x7FFF0000
	for i, a := range args {
		m.regs[isa.R3+isa.Reg(i)] = a
	}
	if _, err := m.Run(limit); err != nil {
		return 0, err
	}
	return m.regs[isa.R3], nil
}
