package sched

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"

	"bioperf5/internal/cpu"
)

// diskStore is the content-addressed on-disk result cache: one JSON
// file per job, named by the job's content hash.  Every entry embeds
// the full canonical key plus a checksum of the result payload, so a
// load verifies three things before trusting a file: it parses, its
// key hashes back to the filename, and its result matches the stored
// checksum.  Anything else is treated as corruption and recomputed.
type diskStore struct {
	dir string
}

// diskEntry is the file format.
type diskEntry struct {
	Key    Key        `json:"key"`
	SHA256 string     `json:"sha256"` // hex SHA-256 of the canonical result JSON
	Result cpu.Report `json:"result"`
}

func (d *diskStore) path(hash string) string {
	return filepath.Join(d.dir, hash+".json")
}

func resultSum(rep cpu.Report) (string, error) {
	b, err := json.Marshal(rep)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// load returns the cached result for hash.  ok reports a verified hit;
// corrupt reports that a file existed but failed verification (the
// caller recomputes and overwrites it).  A missing file is neither.
func (d *diskStore) load(hash string, want Key) (rep cpu.Report, ok, corrupt bool) {
	b, err := os.ReadFile(d.path(hash))
	if err != nil {
		return cpu.Report{}, false, false
	}
	var e diskEntry
	if err := json.Unmarshal(b, &e); err != nil {
		return cpu.Report{}, false, true
	}
	// The stored key must hash back to the address it was filed under
	// and match the key we are looking up.
	kb, err := json.Marshal(e.Key)
	if err != nil {
		return cpu.Report{}, false, true
	}
	sum := sha256.Sum256(kb)
	if hex.EncodeToString(sum[:]) != hash || e.Key != want {
		return cpu.Report{}, false, true
	}
	got, err := resultSum(e.Result)
	if err != nil || got != e.SHA256 {
		return cpu.Report{}, false, true
	}
	return e.Result, true, false
}

// store persists one result.  The write goes through a temp file and a
// rename so a crash never leaves a half-written entry at the final
// address (it would be detected as corrupt anyway, but this keeps
// concurrent readers from ever seeing it).
func (d *diskStore) store(hash string, key Key, rep cpu.Report) error {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return err
	}
	sum, err := resultSum(rep)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(diskEntry{Key: key, SHA256: sum, Result: rep}, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, hash+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), d.path(hash))
}
