package sched

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"bioperf5/internal/cpu"
)

// diskStore is the content-addressed on-disk result cache: one JSON
// file per job, named by the job's content hash.  Every entry embeds
// the full canonical key plus a checksum of the result payload, so a
// load verifies three things before trusting a file: it parses, its
// key hashes back to the filename, and its result matches the stored
// checksum.  Anything else is treated as corruption and recomputed.
type diskStore struct {
	dir string
}

// diskEntry is the file format.
type diskEntry struct {
	Key    Key        `json:"key"`
	SHA256 string     `json:"sha256"` // hex SHA-256 of the canonical result JSON
	Result cpu.Report `json:"result"`
}

func (d *diskStore) path(hash string) string {
	return filepath.Join(d.dir, hash+".json")
}

func resultSum(rep cpu.Report) (string, error) {
	b, err := json.Marshal(rep)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// encodeEntry serializes one cache entry in the self-verifying format
// shared by the disk tier and the /v1/cache wire protocol.
func encodeEntry(key Key, rep cpu.Report) ([]byte, error) {
	sum, err := resultSum(rep)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(diskEntry{Key: key, SHA256: sum, Result: rep}, "", "  ")
}

// decodeEntry parses and verifies an entry against the content hash it
// was addressed by: it must parse, its embedded key must hash back to
// the address, and the result must match the stored checksum.  Nothing
// read from disk or the network is trusted past this gate.
func decodeEntry(b []byte, hash string) (diskEntry, error) {
	var e diskEntry
	if err := json.Unmarshal(b, &e); err != nil {
		return e, fmt.Errorf("sched: cache entry: %w", err)
	}
	kb, err := json.Marshal(e.Key)
	if err != nil {
		return e, fmt.Errorf("sched: cache entry: %w", err)
	}
	sum := sha256.Sum256(kb)
	if hex.EncodeToString(sum[:]) != hash {
		return e, fmt.Errorf("sched: cache entry key does not hash to its address %s", hash)
	}
	got, err := resultSum(e.Result)
	if err != nil || got != e.SHA256 {
		return e, fmt.Errorf("sched: cache entry result checksum mismatch")
	}
	return e, nil
}

// VerifyEntry checks that b is a well-formed result-cache entry whose
// key hashes to hash and whose result matches its embedded checksum —
// the integrity gate `bioperf5 fsck` runs over a cache directory
// without needing an engine.
func VerifyEntry(b []byte, hash string) error {
	_, err := decodeEntry(b, hash)
	return err
}

// load returns the cached result for hash.  ok reports a verified hit;
// corrupt reports that a file existed but failed verification (the
// caller recomputes and overwrites it).  A missing file is neither.
func (d *diskStore) load(hash string, want Key) (rep cpu.Report, ok, corrupt bool) {
	b, err := os.ReadFile(d.path(hash))
	if err != nil {
		return cpu.Report{}, false, false
	}
	e, err := decodeEntry(b, hash)
	if err != nil || e.Key != want {
		return cpu.Report{}, false, true
	}
	return e.Result, true, false
}

// loadRaw returns the verified encoded bytes of the entry at hash —
// the form the /v1/cache endpoint serves.
func (d *diskStore) loadRaw(hash string) ([]byte, bool) {
	b, err := os.ReadFile(d.path(hash))
	if err != nil {
		return nil, false
	}
	if _, err := decodeEntry(b, hash); err != nil {
		return nil, false
	}
	return b, true
}

// store persists one result.  The write goes through a temp file, an
// fsync and a rename so a crash never leaves a truncated entry at the
// final address: either the old state survives or the complete new
// entry does (a torn file would be detected as corrupt anyway, but
// this keeps concurrent readers — and post-crash resumes — from ever
// seeing one).
func (d *diskStore) store(hash string, key Key, rep cpu.Report) error {
	b, err := encodeEntry(key, rep)
	if err != nil {
		return err
	}
	return d.storeRaw(hash, b)
}

// storeRaw atomically persists pre-encoded entry bytes at hash.  The
// caller has already verified them (store just built them; the cache
// endpoint ran decodeEntry).
func (d *diskStore) storeRaw(hash string, b []byte) error {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, hash+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	// Flush the payload before the rename publishes it, so the entry
	// can never be durable-by-name but empty-by-content after a crash.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), d.path(hash)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	d.syncDir()
	return nil
}

// syncDir fsyncs the cache directory so the rename itself survives a
// crash.  Best-effort: some filesystems reject directory fsync, and a
// lost rename only costs a recompute.
func (d *diskStore) syncDir() {
	if dir, err := os.Open(d.dir); err == nil {
		dir.Sync()
		dir.Close()
	}
}

// mangle truncates a stored entry in place, simulating a torn write or
// bit rot landing at the final address.  Only the fault injector calls
// it; the next load must detect the damage and recompute.
func (d *diskStore) mangle(hash string) {
	p := d.path(hash)
	if fi, err := os.Stat(p); err == nil && fi.Size() > 1 {
		os.Truncate(p, fi.Size()/2)
	}
}
