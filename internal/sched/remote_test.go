package sched

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"bioperf5/internal/cpu"
)

// mapHub is a minimal in-memory /v1/cache peer: the dumb-blob contract
// the real server implements, without the import cycle.
func mapHub(t *testing.T) (*httptest.Server, *sync.Map) {
	t.Helper()
	var store sync.Map
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		if b, ok := store.Load(r.PathValue("key")); ok {
			w.Write(b.([]byte))
			return
		}
		http.Error(w, "miss", http.StatusNotFound)
	})
	mux.HandleFunc("PUT /v1/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		store.Store(r.PathValue("key"), b)
		w.WriteHeader(http.StatusNoContent)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &store
}

// upstreamEngine is diskEngine plus a shared remote tier.
func upstreamEngine(t *testing.T, dir, upstream string, compute func(Job) (cpu.Report, error)) *Engine {
	t.Helper()
	e := New(Options{Workers: 1, CacheDir: dir, CacheUpstream: upstream})
	e.compute = func(_ context.Context, j Job) (JobResult, error) {
		rep, err := compute(j)
		return JobResult{Report: rep}, err
	}
	t.Cleanup(e.Close)
	return e
}

// TestRemoteCacheShared is the fleet story: node A computes and pushes;
// node B, with a cold local disk, is served by the hub without
// simulating, and writes through so a third process on B's disk never
// repeats the round trip.
func TestRemoteCacheShared(t *testing.T) {
	hub, store := mapHub(t)

	eA := upstreamEngine(t, t.TempDir(), hub.URL, func(Job) (cpu.Report, error) { return wantReport(), nil })
	if _, err := eA.Run(context.Background(), baseJob()); err != nil {
		t.Fatal(err)
	}
	if st := eA.Stats(); st.Computed != 1 || st.RemotePuts != 1 {
		t.Fatalf("node A stats = %+v, want 1 compute pushed upstream", st)
	}
	if _, ok := store.Load(baseJob().Hash()); !ok {
		t.Fatal("push left nothing on the hub")
	}

	dirB := t.TempDir()
	eB := upstreamEngine(t, dirB, hub.URL, func(Job) (cpu.Report, error) {
		return cpu.Report{}, errors.New("should have been a remote hit")
	})
	rep, err := eB.Run(context.Background(), baseJob())
	if err != nil {
		t.Fatal(err)
	}
	if rep != wantReport() {
		t.Errorf("remote hit returned %+v", rep)
	}
	if st := eB.Stats(); st.RemoteHits != 1 || st.Computed != 0 || st.DiskWrites != 1 {
		t.Errorf("node B stats = %+v, want a remote hit written through to disk", st)
	}

	// Same node, third process, hub gone: the write-through serves it.
	hub.Close()
	eC := diskEngine(t, dirB, func(Job) (cpu.Report, error) {
		return cpu.Report{}, errors.New("should have been a disk hit")
	})
	if _, err := eC.Run(context.Background(), baseJob()); err != nil {
		t.Fatal(err)
	}
	if st := eC.Stats(); st.DiskHits != 1 {
		t.Errorf("write-through did not stick: %+v", st)
	}
}

// TestRemoteCacheCorruptRejected: a lying upstream costs a recompute,
// never a wrong result.
func TestRemoteCacheCorruptRejected(t *testing.T) {
	hub, store := mapHub(t)
	store.Store(baseJob().Hash(), []byte("not a cache entry"))
	var computes atomic.Int64
	e := upstreamEngine(t, t.TempDir(), hub.URL, func(Job) (cpu.Report, error) {
		computes.Add(1)
		return wantReport(), nil
	})
	rep, err := e.Run(context.Background(), baseJob())
	if err != nil || rep != wantReport() {
		t.Fatalf("run = %+v, %v", rep, err)
	}
	if computes.Load() != 1 {
		t.Errorf("corrupt upstream entry served without recompute")
	}
	if st := e.Stats(); st.RemoteHits != 0 || st.RemoteErrs == 0 {
		t.Errorf("stats = %+v, want the bad entry counted as a remote error", st)
	}
}

// TestRemoteCacheKeyMismatchRejected: a valid entry parked at the wrong
// address must not satisfy the job that address names.
func TestRemoteCacheKeyMismatchRejected(t *testing.T) {
	hub, store := mapHub(t)
	other := baseJob()
	other.Seed = 99
	b, err := encodeEntry(baseJob().Key(), wantReport())
	if err != nil {
		t.Fatal(err)
	}
	store.Store(other.Hash(), b)
	var computes atomic.Int64
	e := upstreamEngine(t, t.TempDir(), hub.URL, func(Job) (cpu.Report, error) {
		computes.Add(1)
		return cpu.Report{Counters: cpu.Counters{Cycles: 9}}, nil
	})
	rep, err := e.Run(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 1 || rep.Counters.Cycles != 9 {
		t.Errorf("mismatched key served from upstream: %+v (computes=%d)", rep, computes.Load())
	}
}

// TestRemoteCacheUnreachableDegrades: a dead hub slows nothing down
// semantically — the engine computes locally and counts the failures.
func TestRemoteCacheUnreachableDegrades(t *testing.T) {
	e := upstreamEngine(t, t.TempDir(), "http://127.0.0.1:1", func(Job) (cpu.Report, error) {
		return wantReport(), nil
	})
	rep, err := e.Run(context.Background(), baseJob())
	if err != nil || rep != wantReport() {
		t.Fatalf("run = %+v, %v", rep, err)
	}
	if st := e.Stats(); st.Computed != 1 || st.RemoteErrs == 0 {
		t.Errorf("stats = %+v, want a local compute with remote errors counted", st)
	}
}
