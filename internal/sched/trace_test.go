package sched

import (
	"context"
	"testing"

	"bioperf5/internal/core"
	"bioperf5/internal/trace"
)

// TestEngineTraceCaptureOnceAcrossTimingConfigs is the scheduler-level
// capture-once contract: the FXU x BTAC factorial over one
// (app, variant, seed, scale) submits six distinct jobs — six cache
// misses for the result cache — but the engine's trace store runs
// exactly one functional capture; the other five replay it.
func TestEngineTraceCaptureOnceAcrossTimingConfigs(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	var hits, misses int
	for _, fxus := range []int{2, 3, 4} {
		for _, entries := range []int{0, 8} {
			j := baseJob()
			j.CPU.NumFXU = fxus
			j.CPU.UseBTAC = entries > 0
			f := e.Submit(context.Background(), j)
			if _, err := f.Wait(); err != nil {
				t.Fatal(err)
			}
			if f.TraceHit() {
				hits++
			} else {
				misses++
			}
		}
	}
	if misses != 1 || hits != 5 {
		t.Errorf("trace hits/misses = %d/%d, want 5/1", hits, misses)
	}
	st := e.TraceStore().Stats()
	if st.Captures != 1 {
		t.Errorf("trace store ran %d captures, want 1", st.Captures)
	}
	if st.MemoryHits != 5 {
		t.Errorf("trace store memory hits = %d, want 5", st.MemoryHits)
	}
	// The six jobs were six distinct cells for the result cache.
	if es := e.Stats(); es.Computed != 6 {
		t.Errorf("engine computed %d cells, want 6", es.Computed)
	}
}

// TestEngineTraceOffBypassesStore: jobs carrying the off policy never
// touch the trace store and never report a hit.
func TestEngineTraceOffBypassesStore(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	j := baseJob()
	j.Trace = core.TraceOff
	f := e.Submit(context.Background(), j)
	if _, err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	if f.TraceHit() {
		t.Error("off-policy job reported a trace hit")
	}
	if st := e.TraceStore().Stats(); st.Captures != 0 || st.Entries != 0 {
		t.Errorf("off-policy job touched the trace store: %+v", st)
	}
}

// TestEngineTracePolicyExcludedFromIdentity: the trace policy is an
// execution strategy, not part of the cell's identity — the same cell
// under different policies shares one cache entry and one result.
func TestEngineTracePolicyExcludedFromIdentity(t *testing.T) {
	off := baseJob()
	off.Trace = core.TraceOff
	auto := baseJob()
	auto.Trace = core.TraceAuto
	if off.Key() != auto.Key() || off.Hash() != auto.Hash() {
		t.Fatal("trace policy moved the job identity")
	}
	e := New(Options{Workers: 1})
	defer e.Close()
	r1, err := e.Run(context.Background(), off)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(context.Background(), auto)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("policies diverge through the engine")
	}
	if st := e.Stats(); st.Computed != 1 || st.MemoryHits != 1 {
		t.Errorf("stats = %+v, want one compute and one memory hit", st)
	}
}

// TestEngineInjectedTraceStoreShared: an injected store is used as-is,
// so separate engines (or a test harness) can share warm traces.
func TestEngineInjectedTraceStoreShared(t *testing.T) {
	store := trace.NewStore(trace.StoreOptions{})
	e1 := New(Options{Workers: 1, Traces: store})
	if e1.TraceStore() != store {
		t.Fatal("injected store not used")
	}
	if _, err := e1.Run(context.Background(), baseJob()); err != nil {
		t.Fatal(err)
	}
	e1.Close()
	if store.Stats().Captures != 1 {
		t.Fatalf("store stats = %+v", store.Stats())
	}
	// A second engine over the warm store replays instead of capturing.
	e2 := New(Options{Workers: 1, Traces: store})
	defer e2.Close()
	f := e2.Submit(context.Background(), baseJob())
	rep, err := f.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !f.TraceHit() {
		t.Error("warm store not hit by the second engine")
	}
	if store.Stats().Captures != 1 {
		t.Errorf("second engine recaptured: %+v", store.Stats())
	}
	if rep.Counters.Instructions == 0 || rep.Stalls.Total() != rep.Counters.Cycles {
		t.Errorf("implausible replayed report: %+v", rep)
	}
}

// TestEngineTraceReplayMatchesCoupled cross-checks the full scheduler
// path: a job run with tracing (capture + replay) equals the same job
// run coupled.
func TestEngineTraceReplayMatchesCoupled(t *testing.T) {
	e := New(Options{Workers: 1, DisableCache: true})
	defer e.Close()
	j := baseJob()
	j.CPU.UseBTAC = true
	traced, err := e.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	j.Trace = core.TraceOff
	coupled, err := e.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if traced != coupled {
		t.Errorf("traced run diverges from coupled run\n traced:  %+v\n coupled: %+v",
			traced.Counters, coupled.Counters)
	}
}
