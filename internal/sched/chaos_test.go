// Chaos suite: a real sweep under randomized (but seeded) injected
// faults must converge to the exact manifest a fault-free run
// produces, and a follow-up run over the same cache + journal must
// resume rather than recompute.  It lives in package sched_test so it
// can drive the harness on top of the engine.
package sched_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"bioperf5/internal/fault"
	"bioperf5/internal/harness"
	"bioperf5/internal/kernels"
	"bioperf5/internal/sched"
)

// chaosSpec is the two-app slice of the design space the suite sweeps.
func chaosSpec(eng *sched.Engine) harness.SweepSpec {
	return harness.SweepSpec{
		FXUs:        []int{2, 4},
		BTACEntries: []int{0, 8},
		Variants:    []kernels.Variant{kernels.Branchy},
		Apps:        []string{"Clustalw", "Fasta"},
		Config:      harness.Config{Scale: 1, Seeds: []int64{1}, Engine: eng},
	}
}

// canonical serializes a manifest with its environment fields zeroed:
// elapsed time and the whole scheduler stats block (retry and fault
// counters necessarily differ between a chaotic and a clean run; the
// science — points, stats, best — must not).
func canonical(t *testing.T, m *harness.SweepManifest) []byte {
	t.Helper()
	clone := *m
	clone.ElapsedMS = 0
	clone.Scheduler = sched.Stats{}
	clone.Profile = nil
	b, err := json.MarshalIndent(&clone, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestChaosSweepMatchesFaultFree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}

	// Fault-free reference.
	clean := sched.New(sched.Options{Workers: 2})
	want, err := harness.RunSweep(chaosSpec(clean))
	clean.Close()
	if err != nil {
		t.Fatalf("fault-free sweep: %v", err)
	}

	// Chaotic run: every fault kind armed, one injection per (site,
	// cell) budgeted, so a retry budget of 3 always reaches a clean
	// attempt.  The injected hang outlasts the cell deadline, so it is
	// the watchdog that recovers it.
	dir := t.TempDir()
	journal, err := sched.OpenJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{
		Seed:      42,
		PanicRate: 0.25, ErrorRate: 0.25, HangRate: 0.15, CancelRate: 0.25,
		CorruptRate:      0.5,
		TraceCorruptRate: 0.5,
		HangDelay:        30 * time.Second,
		Times:            1,
	}
	// The deadline is generous so real cells never trip it, even under
	// the race detector; only the injected hangs (which sleep, not
	// spin) do.
	chaotic := sched.New(sched.Options{
		Workers: 2, CacheDir: dir, Journal: journal,
		Retries: 3, RetryBackoff: time.Millisecond,
		CellTimeout: 5 * time.Second,
		Injector:    plan,
	})
	got, err := harness.RunSweep(chaosSpec(chaotic))
	st := chaotic.Stats()
	traceFaults := chaotic.Registry().Counter("trace.faults.injected").Value()
	chaotic.Close()
	if err != nil {
		t.Fatalf("chaotic sweep: %v", err)
	}
	if st.Injected == 0 {
		t.Fatal("fault plan injected nothing; the chaos run proved nothing")
	}
	if traceFaults == 0 {
		t.Error("the SiteTrace rate tore no trace-store writes; the trace heal path went unexercised")
	}
	if st.Retries == 0 {
		t.Error("injected faults caused no retries")
	}
	if got.Degraded != 0 {
		t.Errorf("degraded cells under chaos: %d\n%+v", got.Degraded, got.DegradedPoints())
	}
	if w, g := canonical(t, want), canonical(t, got); !bytes.Equal(w, g) {
		t.Errorf("chaotic manifest diverges from fault-free run:\n--- clean ---\n%s\n--- chaos ---\n%s", w, g)
	}
	journal.Close()

	// Resume: a fresh engine over the same cache + journal re-simulates
	// only what the chaos run corrupted on disk; everything else is a
	// resumed journal hit.
	journal2, err := sched.OpenJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer journal2.Close()
	resumed := sched.New(sched.Options{Workers: 2, CacheDir: dir, Journal: journal2})
	again, err := harness.RunSweep(chaosSpec(resumed))
	rst := resumed.Stats()
	resumed.Close()
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	if w, g := canonical(t, want), canonical(t, again); !bytes.Equal(w, g) {
		t.Error("resumed manifest diverges from fault-free run")
	}
	if rst.Computed != rst.DiskCorrupt {
		t.Errorf("resume recomputed %d cells but only %d were corrupt", rst.Computed, rst.DiskCorrupt)
	}
	if total := rst.Resumed + rst.DiskCorrupt; total != uint64(journal2.Len()) {
		t.Errorf("resumed %d + corrupt %d != %d journaled cells", rst.Resumed, rst.DiskCorrupt, journal2.Len())
	}
}
