package sched

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"bioperf5/internal/cpu"
	"bioperf5/internal/kernels"
)

func baseJob() Job {
	return Job{App: "Clustalw", Variant: kernels.Branchy, CPU: cpu.POWER5Baseline(), Seed: 1, Scale: 1}
}

func TestJobHashCanonical(t *testing.T) {
	j := baseJob()
	if j.Hash() != baseJob().Hash() {
		t.Fatal("equal jobs hash differently")
	}
	// Scale is normalized: 0 and 1 are the same cell.
	j0 := baseJob()
	j0.Scale = 0
	if j0.Hash() != baseJob().Hash() {
		t.Error("scale 0 and scale 1 should share a cache entry")
	}
	// Every dimension of the design space must move the hash.
	mutations := map[string]func(*Job){
		"app":     func(j *Job) { j.App = "Fasta" },
		"variant": func(j *Job) { j.Variant = kernels.Combination },
		"seed":    func(j *Job) { j.Seed = 2 },
		"scale":   func(j *Job) { j.Scale = 2 },
		"fxus":    func(j *Job) { j.CPU.NumFXU = 4 },
		"btac":    func(j *Job) { j.CPU.UseBTAC = true },
		"btac-geometry": func(j *Job) {
			j.CPU.UseBTAC = true
			j.CPU.BTAC.Entries = 16
		},
		"predictor": func(j *Job) { j.CPU.Predictor = "gshare" },
	}
	seen := map[string]string{baseJob().Hash(): "base"}
	for name, mutate := range mutations {
		j := baseJob()
		mutate(&j)
		h := j.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[h] = name
	}
}

// TestJobHashCoalescesPredictorSpellings pins the cache-coalescing
// property of predictor specs: every spelling of the same predictor is
// canonicalized before hashing, so equivalent cells share one cache
// entry across sweep, serve and cluster.
func TestJobHashCoalescesPredictorSpellings(t *testing.T) {
	withPred := func(spec string) Job {
		j := baseJob()
		j.CPU.Predictor = spec
		return j
	}
	equivalent := [][]string{
		{"", "tournament", "tournament:bits=12,hist=11", " Tournament : hist=11 , bits=12 "},
		{"gshare", "gshare:bits=12", "gshare:hist=11,bits=12", "gshare:bits=12,hist=11"},
		{"tage", "tage:tables=4,bits=10,tag=8,hist=2..64", "tage:hist=2..64"},
		{"perceptron", "perceptron:weights=256,hist=24"},
	}
	hashes := map[string]string{}
	for _, group := range equivalent {
		want := withPred(group[0]).Hash()
		for _, spec := range group[1:] {
			if got := withPred(spec).Hash(); got != want {
				t.Errorf("spellings %q and %q hash differently", group[0], spec)
			}
		}
		if prev, dup := hashes[want]; dup {
			t.Errorf("distinct predictors %q and %q collide", prev, group[0])
		}
		hashes[want] = group[0]
	}
	// Parameter changes move the hash.
	if withPred("gshare:bits=14").Hash() == withPred("gshare").Hash() {
		t.Error("gshare:bits=14 should not share a cache entry with the default gshare")
	}
	// Unparseable specs still key deterministically (verbatim).
	bad := withPred("no-such-predictor")
	if bad.Hash() != bad.Hash() {
		t.Error("unparseable spec hash is not deterministic")
	}
}

// stubEngine builds an engine whose compute function is replaced, so
// scheduler mechanics can be tested without real simulations.
func stubEngine(t *testing.T, o Options, compute func(Job) (cpu.Report, error)) *Engine {
	t.Helper()
	e := New(o)
	e.compute = func(_ context.Context, j Job) (JobResult, error) {
		rep, err := compute(j)
		return JobResult{Report: rep}, err
	}
	t.Cleanup(e.Close)
	return e
}

func TestEngineDedupComputesOnce(t *testing.T) {
	var computes atomic.Int64
	e := stubEngine(t, Options{Workers: 4}, func(j Job) (cpu.Report, error) {
		computes.Add(1)
		return cpu.Report{Counters: cpu.Counters{Cycles: 7, Instructions: 3}}, nil
	})
	const n = 16
	var wg sync.WaitGroup
	reps := make([]cpu.Report, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			reps[i], errs[i] = e.Run(context.Background(), baseJob())
		}()
	}
	wg.Wait()
	for i := range reps {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if reps[i].Counters.Cycles != 7 {
			t.Fatalf("job %d: wrong result %+v", i, reps[i])
		}
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("computed %d times, want 1", got)
	}
	st := e.Stats()
	if st.Submitted != n || st.Computed != 1 || st.MemoryHits != n-1 {
		t.Errorf("stats = %+v", st)
	}
	if hr := st.HitRate(); hr < 0.9 {
		t.Errorf("hit rate %.2f, want ~%.2f", hr, float64(n-1)/n)
	}
}

func TestEngineDisableCacheComputesEveryTime(t *testing.T) {
	var computes atomic.Int64
	e := stubEngine(t, Options{Workers: 2, DisableCache: true}, func(j Job) (cpu.Report, error) {
		computes.Add(1)
		return cpu.Report{}, nil
	})
	for i := 0; i < 3; i++ {
		if _, err := e.Run(context.Background(), baseJob()); err != nil {
			t.Fatal(err)
		}
	}
	if got := computes.Load(); got != 3 {
		t.Errorf("computed %d times, want 3", got)
	}
}

func TestEnginePanicRecovery(t *testing.T) {
	e := stubEngine(t, Options{Workers: 2}, func(j Job) (cpu.Report, error) {
		if j.Seed == 13 {
			panic("unlucky seed")
		}
		return cpu.Report{Counters: cpu.Counters{Cycles: 1}}, nil
	})
	bad := baseJob()
	bad.Seed = 13
	if _, err := e.Run(context.Background(), bad); err == nil ||
		!strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not surfaced as error: %v", err)
	}
	// The pool survives and still runs other jobs.
	if _, err := e.Run(context.Background(), baseJob()); err != nil {
		t.Fatalf("engine dead after panic: %v", err)
	}
	if st := e.Stats(); st.Panics != 1 || st.Failed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineCancelledContext(t *testing.T) {
	var computes atomic.Int64
	e := stubEngine(t, Options{Workers: 1}, func(j Job) (cpu.Report, error) {
		computes.Add(1)
		return cpu.Report{}, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx, baseJob()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if computes.Load() != 0 {
		t.Error("cancelled job was simulated")
	}
	// A live context retries the same cell: the failure was not cached.
	if _, err := e.Run(context.Background(), baseJob()); err != nil {
		t.Fatalf("cancellation was memoized: %v", err)
	}
	if computes.Load() != 1 {
		t.Errorf("computed %d times, want 1", computes.Load())
	}
}

func TestEngineFailureNotMemoized(t *testing.T) {
	var calls atomic.Int64
	e := stubEngine(t, Options{Workers: 1}, func(j Job) (cpu.Report, error) {
		if calls.Add(1) == 1 {
			return cpu.Report{}, errors.New("transient")
		}
		return cpu.Report{Counters: cpu.Counters{Cycles: 2}}, nil
	})
	if _, err := e.Run(context.Background(), baseJob()); err == nil {
		t.Fatal("first run should fail")
	}
	rep, err := e.Run(context.Background(), baseJob())
	if err != nil || rep.Counters.Cycles != 2 {
		t.Fatalf("retry = %+v, %v", rep, err)
	}
}

func TestEngineSubmitAfterClose(t *testing.T) {
	e := New(Options{Workers: 1})
	e.Close()
	if _, err := e.Run(context.Background(), baseJob()); err == nil {
		t.Fatal("submit after close succeeded")
	}
	e.Close() // double close is a no-op
}

func TestEngineUnknownAppFails(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	j := baseJob()
	j.App = "NoSuchApp"
	if _, err := e.Run(context.Background(), j); err == nil {
		t.Fatal("unknown application accepted")
	}
}

// TestEngineRealCell runs one real simulation through the engine and
// cross-checks the result against the serial core path.
func TestEngineRealCell(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	j := baseJob()
	got, err := e.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := j.run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.Report
	if got != want {
		t.Errorf("scheduled cell = %+v, serial cell = %+v", got, want)
	}
	if got.Counters.Instructions == 0 || got.Stalls.Total() != got.Counters.Cycles {
		t.Errorf("implausible report: %+v", got)
	}
}
