package sched

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bioperf5/internal/cpu"
	"bioperf5/internal/fault"
)

// fastRetry makes retry tests quick: a 1ms backoff base.
const fastRetry = time.Millisecond

func TestEngineRetriesTransientFailure(t *testing.T) {
	var calls atomic.Int64
	e := stubEngine(t, Options{Workers: 1, Retries: 2, RetryBackoff: fastRetry},
		func(j Job) (cpu.Report, error) {
			if calls.Add(1) < 3 {
				return cpu.Report{}, errors.New("flaky")
			}
			return cpu.Report{Counters: cpu.Counters{Cycles: 5}}, nil
		})
	rep, err := e.Run(context.Background(), baseJob())
	if err != nil || rep.Counters.Cycles != 5 {
		t.Fatalf("run = %+v, %v", rep, err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("compute called %d times, want 3", got)
	}
	if st := e.Stats(); st.Retries != 2 || st.Failed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	e := stubEngine(t, Options{Workers: 1, Retries: 1, RetryBackoff: fastRetry},
		func(j Job) (cpu.Report, error) {
			calls.Add(1)
			return cpu.Report{}, errors.New("always broken")
		})
	_, err := e.Run(context.Background(), baseJob())
	if err == nil || !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("err = %v, want an attempts-exhausted error", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("compute called %d times, want 2", got)
	}
	if st := e.Stats(); st.Retries != 1 || st.Failed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEnginePanicRetried(t *testing.T) {
	var calls atomic.Int64
	e := stubEngine(t, Options{Workers: 1, Retries: 1, RetryBackoff: fastRetry},
		func(j Job) (cpu.Report, error) {
			if calls.Add(1) == 1 {
				panic("transient panic")
			}
			return cpu.Report{Counters: cpu.Counters{Cycles: 9}}, nil
		})
	rep, err := e.Run(context.Background(), baseJob())
	if err != nil || rep.Counters.Cycles != 9 {
		t.Fatalf("run = %+v, %v", rep, err)
	}
	if st := e.Stats(); st.Panics != 1 || st.Retries != 1 || st.Failed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEnginePermanentErrorNotRetried(t *testing.T) {
	// An unknown application is a permanent error: the retry budget
	// must not be spent on it.
	e := New(Options{Workers: 1, Retries: 3, RetryBackoff: fastRetry})
	defer e.Close()
	j := baseJob()
	j.App = "NoSuchApp"
	if _, err := e.Run(context.Background(), j); err == nil {
		t.Fatal("unknown application accepted")
	}
	if st := e.Stats(); st.Retries != 0 || st.Failed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineCellTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	e := stubEngine(t, Options{Workers: 1, CellTimeout: 20 * time.Millisecond},
		func(j Job) (cpu.Report, error) {
			if j.Seed == 1 { // the hanging cell
				<-block
				return cpu.Report{}, nil
			}
			return cpu.Report{Counters: cpu.Counters{Cycles: 3}}, nil
		})
	_, err := e.Run(context.Background(), baseJob())
	if !errors.Is(err, ErrCellTimeout) {
		t.Fatalf("err = %v, want ErrCellTimeout", err)
	}
	if st := e.Stats(); st.Timeouts != 1 || st.Failed != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The worker survives: a fast job still runs.
	fast := baseJob()
	fast.Seed = 2
	if rep, err := e.Run(context.Background(), fast); err != nil || rep.Counters.Cycles != 3 {
		t.Fatalf("engine wedged after timeout: %+v, %v", rep, err)
	}
}

func TestEngineTimeoutThenRetrySucceeds(t *testing.T) {
	var calls atomic.Int64
	e := stubEngine(t, Options{
		Workers: 1, Retries: 1, RetryBackoff: fastRetry,
		CellTimeout: 30 * time.Millisecond,
	}, func(j Job) (cpu.Report, error) {
		if calls.Add(1) == 1 {
			time.Sleep(300 * time.Millisecond) // transient hang
		}
		return cpu.Report{Counters: cpu.Counters{Cycles: 4}}, nil
	})
	rep, err := e.Run(context.Background(), baseJob())
	if err != nil || rep.Counters.Cycles != 4 {
		t.Fatalf("run = %+v, %v", rep, err)
	}
	if st := e.Stats(); st.Timeouts != 1 || st.Retries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestEngineSubmitUnblocksOnCancel is the regression test for Submit
// parked on a full bounded queue: cancelling the submission context
// must unblock it, fail the future, and leave the cell computable by a
// later submission.
func TestEngineSubmitUnblocksOnCancel(t *testing.T) {
	block := make(chan struct{})
	unblock := sync.OnceFunc(func() { close(block) })
	started := make(chan struct{}, 16)
	e := stubEngine(t, Options{Workers: 1, QueueDepth: 1},
		func(j Job) (cpu.Report, error) {
			started <- struct{}{}
			<-block
			return cpu.Report{Counters: cpu.Counters{Cycles: 1}}, nil
		})
	defer unblock() // let the pool drain before Cleanup closes the engine

	j1 := baseJob()
	e.Submit(context.Background(), j1) // occupies the worker
	<-started                          // worker is now blocked inside compute
	j2 := baseJob()
	j2.Seed = 2
	e.Submit(context.Background(), j2) // fills the queue (depth 1)

	j3 := baseJob()
	j3.Seed = 3
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(30*time.Millisecond, cancel)
	doneBy := time.Now().Add(10 * time.Second)
	f := e.Submit(ctx, j3) // blocks on the full queue until the cancel
	if time.Now().After(doneBy) {
		t.Fatal("Submit did not return promptly after cancellation")
	}
	if _, err := f.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("future err = %v, want context.Canceled", err)
	}

	// The withdrawn cell is not poisoned: once the pool drains, a fresh
	// submission computes it.
	unblock()
	rep, err := e.Run(context.Background(), j3)
	if err != nil || rep.Counters.Cycles != 1 {
		t.Fatalf("resubmit after cancelled Submit = %+v, %v", rep, err)
	}
}

func TestEngineInjectedErrorRetried(t *testing.T) {
	var calls atomic.Int64
	e := stubEngine(t, Options{
		Workers: 1, Retries: 1, RetryBackoff: fastRetry,
		Injector: &fault.Plan{ErrorRate: 1}, // inject once (Times defaults to 1)
	}, func(j Job) (cpu.Report, error) {
		calls.Add(1)
		return cpu.Report{Counters: cpu.Counters{Cycles: 6}}, nil
	})
	rep, err := e.Run(context.Background(), baseJob())
	if err != nil || rep.Counters.Cycles != 6 {
		t.Fatalf("run = %+v, %v", rep, err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("compute called %d times, want 1 (attempt 0 consumed by the injected fault)", got)
	}
	if st := e.Stats(); st.Injected != 1 || st.Retries != 1 || st.Failed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineInjectedPanicAndCancelRetried(t *testing.T) {
	for _, tc := range []struct {
		name string
		plan *fault.Plan
	}{
		{"panic", &fault.Plan{PanicRate: 1}},
		{"cancel", &fault.Plan{CancelRate: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := stubEngine(t, Options{
				Workers: 1, Retries: 1, RetryBackoff: fastRetry, Injector: tc.plan,
			}, func(j Job) (cpu.Report, error) {
				return cpu.Report{Counters: cpu.Counters{Cycles: 8}}, nil
			})
			rep, err := e.Run(context.Background(), baseJob())
			if err != nil || rep.Counters.Cycles != 8 {
				t.Fatalf("run = %+v, %v", rep, err)
			}
			if st := e.Stats(); st.Injected != 1 || st.Retries != 1 {
				t.Errorf("stats = %+v", st)
			}
		})
	}
}

func TestEngineInjectedHangTripsWatchdog(t *testing.T) {
	e := stubEngine(t, Options{
		Workers: 1, Retries: 1, RetryBackoff: fastRetry,
		CellTimeout: 20 * time.Millisecond,
		Injector:    &fault.Plan{HangRate: 1, HangDelay: 2 * time.Second},
	}, func(j Job) (cpu.Report, error) {
		return cpu.Report{Counters: cpu.Counters{Cycles: 2}}, nil
	})
	rep, err := e.Run(context.Background(), baseJob())
	if err != nil || rep.Counters.Cycles != 2 {
		t.Fatalf("run = %+v, %v", rep, err)
	}
	if st := e.Stats(); st.Injected != 1 || st.Timeouts != 1 || st.Retries != 1 {
		t.Errorf("stats = %+v", st)
	}
}
