package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"bioperf5/internal/cpu"
	"bioperf5/internal/telemetry"
)

// Options configures an Engine.  The zero value is usable: GOMAXPROCS
// workers, a queue of 4x that depth, in-memory caching on, no disk
// store.
type Options struct {
	// Workers is the pool size; values < 1 mean GOMAXPROCS.
	Workers int
	// QueueDepth bounds the job queue; Submit blocks (backpressure)
	// once the queue is full.  Values < 1 mean 4x Workers.
	QueueDepth int
	// DisableCache turns off both memoization and in-flight
	// deduplication: every Submit simulates.  Benchmarks use it to
	// measure raw scheduling throughput.
	DisableCache bool
	// CacheDir, when non-empty, adds a content-addressed on-disk store
	// under that directory so results survive across processes.
	// Entries are checksummed; corrupted files are recomputed, never
	// trusted.
	CacheDir string
	// Registry receives the engine's telemetry (sched.* metrics).  Nil
	// gets a private registry, readable via Engine.Registry.
	Registry *telemetry.Registry
}

// Engine is a parallel, cache-aware job executor.  All methods are
// safe for concurrent use.
type Engine struct {
	opts Options
	reg  *telemetry.Registry
	disk *diskStore

	// compute executes one job; tests substitute a stub.
	compute func(Job) (cpu.Report, error)

	queue chan *task
	wg    sync.WaitGroup

	mu       sync.Mutex
	inflight map[string]*Future // content hash -> single flight (nil when DisableCache)
	closed   bool

	// telemetry handles, resolved once
	mSubmitted, mComputed, mFailed, mPanics    *telemetry.Counter
	mMemHits, mDiskHits, mDiskWrites, mCorrupt *telemetry.Counter
	gWorkers, gQueuePeak                       *telemetry.Gauge
	hQueueWait                                 *telemetry.Histogram
}

// task is one queued unit: the job, its future, and the submission
// context (cancellation and deadline are honoured up to the moment the
// simulation starts).
type task struct {
	job      Job
	hash     string
	fut      *Future
	ctx      context.Context
	enqueued time.Time
}

// Future is the pending result of a submitted job.
type Future struct {
	done chan struct{}
	rep  cpu.Report
	err  error
}

// Wait blocks until the job completes and returns its result.  Waiting
// more than once is allowed and returns the same values.
func (f *Future) Wait() (cpu.Report, error) {
	<-f.done
	return f.rep, f.err
}

func (f *Future) complete(rep cpu.Report, err error) {
	f.rep, f.err = rep, err
	close(f.done)
}

func resolved(rep cpu.Report, err error) *Future {
	f := &Future{done: make(chan struct{})}
	f.complete(rep, err)
	return f
}

// New starts an engine.  Close releases its workers.
func New(o Options) *Engine {
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 4 * o.Workers
	}
	reg := o.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	e := &Engine{
		opts:  o,
		reg:   reg,
		queue: make(chan *task, o.QueueDepth),

		mSubmitted:  reg.Counter("sched.jobs.submitted"),
		mComputed:   reg.Counter("sched.jobs.computed"),
		mFailed:     reg.Counter("sched.jobs.failed"),
		mPanics:     reg.Counter("sched.jobs.panics"),
		mMemHits:    reg.Counter("sched.cache.memory.hits"),
		mDiskHits:   reg.Counter("sched.cache.disk.hits"),
		mDiskWrites: reg.Counter("sched.cache.disk.writes"),
		mCorrupt:    reg.Counter("sched.cache.disk.corrupt"),
		gWorkers:    reg.Gauge("sched.workers"),
		gQueuePeak:  reg.Gauge("sched.queue.peak"),
		hQueueWait:  reg.Histogram("sched.queue.wait_us", nil),
	}
	e.compute = func(j Job) (cpu.Report, error) { return j.run() }
	if !o.DisableCache {
		e.inflight = make(map[string]*Future)
	}
	if o.CacheDir != "" {
		e.disk = &diskStore{dir: o.CacheDir}
	}
	e.gWorkers.Set(float64(o.Workers))
	for i := 0; i < o.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Registry returns the registry the engine publishes into.
func (e *Engine) Registry() *telemetry.Registry { return e.reg }

// Close stops accepting jobs and waits for queued work to drain.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.queue)
	e.wg.Wait()
}

// Submit schedules a job and returns its future.  Identical jobs
// (equal content hashes) share one computation and one cache entry;
// only the first submission enqueues work.  Submit blocks when the
// bounded queue is full.  The context covers queue wait: a job whose
// context is cancelled or past its deadline before a worker picks it
// up fails with the context's error instead of simulating.
func (e *Engine) Submit(ctx context.Context, j Job) *Future {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mSubmitted.Add(1)
	hash := j.Hash()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return resolved(cpu.Report{}, fmt.Errorf("sched: engine closed"))
	}
	if e.inflight != nil {
		if f, ok := e.inflight[hash]; ok {
			e.mu.Unlock()
			e.mMemHits.Add(1)
			return f
		}
	}
	f := &Future{done: make(chan struct{})}
	if e.inflight != nil {
		e.inflight[hash] = f
	}
	e.mu.Unlock()

	t := &task{job: j, hash: hash, fut: f, ctx: ctx, enqueued: time.Now()}
	e.queue <- t
	if depth := float64(len(e.queue)); depth > e.gQueuePeak.Value() {
		e.gQueuePeak.Set(depth)
	}
	return f
}

// Run is Submit + Wait.
func (e *Engine) Run(ctx context.Context, j Job) (cpu.Report, error) {
	return e.Submit(ctx, j).Wait()
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for t := range e.queue {
		e.hQueueWait.Observe(uint64(time.Since(t.enqueued) / time.Microsecond))
		rep, err := e.execute(t)
		if err != nil {
			e.mFailed.Add(1)
			// Don't memoize failures (a cancelled context would
			// otherwise poison the cell for later submissions).
			e.mu.Lock()
			if e.inflight != nil && e.inflight[t.hash] == t.fut {
				delete(e.inflight, t.hash)
			}
			e.mu.Unlock()
		}
		t.fut.complete(rep, err)
	}
}

// execute resolves one task: context check, disk cache probe, then the
// simulation itself under panic recovery, then disk write-back.
func (e *Engine) execute(t *task) (rep cpu.Report, err error) {
	if cerr := t.ctx.Err(); cerr != nil {
		return cpu.Report{}, fmt.Errorf("sched: job %s/%s seed %d: %w",
			t.job.App, t.job.Variant, t.job.Seed, cerr)
	}
	if e.disk != nil {
		if cached, ok, corrupt := e.disk.load(t.hash, t.job.Key()); ok {
			e.mDiskHits.Add(1)
			return cached, nil
		} else if corrupt {
			e.mCorrupt.Add(1)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			e.mPanics.Add(1)
			err = fmt.Errorf("sched: job %s/%s seed %d panicked: %v",
				t.job.App, t.job.Variant, t.job.Seed, r)
		}
	}()
	e.mComputed.Add(1)
	rep, err = e.compute(t.job)
	if err == nil && e.disk != nil {
		if werr := e.disk.store(t.hash, t.job.Key(), rep); werr == nil {
			e.mDiskWrites.Add(1)
		}
		// A failed write is not a job failure: the result is sound,
		// only the cross-process cache misses next time.
	}
	return rep, err
}

// Stats is a point-in-time view of the engine's counters.
type Stats struct {
	Submitted   uint64 `json:"submitted"`    // jobs submitted
	Computed    uint64 `json:"computed"`     // jobs actually simulated
	MemoryHits  uint64 `json:"memory_hits"`  // submits resolved by the in-memory cache
	DiskHits    uint64 `json:"disk_hits"`    // jobs resolved by the on-disk store
	DiskWrites  uint64 `json:"disk_writes"`  // results persisted to disk
	DiskCorrupt uint64 `json:"disk_corrupt"` // corrupted disk entries detected and recomputed
	Failed      uint64 `json:"failed"`       // jobs that returned an error
	Panics      uint64 `json:"panics"`       // jobs recovered from a panic
	Workers     int    `json:"workers"`      // pool size
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Submitted:   e.mSubmitted.Value(),
		Computed:    e.mComputed.Value(),
		MemoryHits:  e.mMemHits.Value(),
		DiskHits:    e.mDiskHits.Value(),
		DiskWrites:  e.mDiskWrites.Value(),
		DiskCorrupt: e.mCorrupt.Value(),
		Failed:      e.mFailed.Value(),
		Panics:      e.mPanics.Value(),
		Workers:     e.opts.Workers,
	}
}

// HitRate is the fraction of submitted jobs that needed no simulation
// (served from the in-memory or on-disk cache).  A repeated sweep
// reports 1.0.
func (s Stats) HitRate() float64 {
	if s.Submitted == 0 {
		return 0
	}
	return 1 - float64(s.Computed)/float64(s.Submitted)
}
