package sched

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"bioperf5/internal/cpu"
	"bioperf5/internal/fault"
	"bioperf5/internal/telemetry"
	"bioperf5/internal/trace"
)

// Options configures an Engine.  The zero value is usable: GOMAXPROCS
// workers, a queue of 4x that depth, in-memory caching on, no disk
// store.
type Options struct {
	// Workers is the pool size; values < 1 mean GOMAXPROCS.
	Workers int
	// QueueDepth bounds the job queue; Submit blocks (backpressure)
	// once the queue is full.  Values < 1 mean 4x Workers.
	QueueDepth int
	// DisableCache turns off both memoization and in-flight
	// deduplication: every Submit simulates.  Benchmarks use it to
	// measure raw scheduling throughput.
	DisableCache bool
	// CacheDir, when non-empty, adds a content-addressed on-disk store
	// under that directory so results survive across processes.
	// Entries are checksummed; corrupted files are recomputed, never
	// trusted.
	CacheDir string
	// CacheUpstream, when non-empty, is the base URL of a peer bioperf5
	// server (e.g. "http://hub:8077") whose /v1/cache and /v1/traces
	// endpoints act as a shared remote tier: probed after a local disk
	// miss, pushed to after a local compute or capture.  Strictly
	// best-effort — any upstream failure degrades to a miss — and every
	// fetched entry is re-verified against its content address before
	// use.
	CacheUpstream string
	// CacheTransport, when non-nil, overrides the HTTP transport used
	// by the remote cache and trace tiers — the chaos suite plugs its
	// deterministic fault injector in here.
	CacheTransport http.RoundTripper
	// Registry receives the engine's telemetry (sched.* metrics).  Nil
	// gets a private registry, readable via Engine.Registry.
	Registry *telemetry.Registry

	// Retries is the per-job retry budget: a job failing with a
	// retryable error (panic, transient error, cell timeout, injected
	// fault) is re-executed up to Retries more times.  0 disables
	// retries; permanent errors (an unknown application, a dead
	// submission context) are never retried.
	Retries int
	// RetryBackoff is the delay before the first retry; it doubles
	// every attempt, capped at 64x.  Values <= 0 mean 5ms.  The
	// schedule is deliberately jitter-free so runs reproduce exactly.
	RetryBackoff time.Duration
	// CellTimeout bounds one simulation attempt.  An attempt exceeding
	// it fails that cell with ErrCellTimeout (retryable) instead of
	// wedging the worker; 0 means no deadline.  The abandoned attempt's
	// goroutine is left to finish in the background — the simulator has
	// no preemption points — so its result is discarded, never stored.
	CellTimeout time.Duration
	// Injector, when non-nil, is consulted at the job-execute and
	// disk-store points and the decided faults are injected — the
	// chaos-testing hook behind the BIOPERF5_FAULTS CLI spec.
	Injector fault.Injector
	// Journal, when non-nil, records each completed cell hash to an
	// fsync'd append-only WAL, enabling crash-safe sweep resume: cells
	// already journaled and cached are skipped (and counted under
	// sched.journal.resumed) when the sweep re-runs after a kill.
	Journal *Journal

	// Traces, when non-nil, is the trace store jobs capture into and
	// replay from; tests inject a pre-warmed store through it.  Nil
	// builds an engine-owned store: in-memory with the TraceBudget
	// byte budget, backed by CacheDir/traces when CacheDir is set, and
	// publishing trace.* metrics into the engine's registry.
	Traces *trace.Store
	// TraceBudget bounds the engine-owned trace store's in-memory tier
	// in bytes; values <= 0 mean trace.DefaultBudget.  Ignored when
	// Traces is supplied.
	TraceBudget int64
}

// ErrCellTimeout marks a simulation attempt that exceeded
// Options.CellTimeout.  It is retryable: a transient hang clears on
// retry, and a deterministic one exhausts the budget and degrades the
// cell rather than the process.
var ErrCellTimeout = errors.New("cell deadline exceeded")

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (p permanentError) Error() string { return p.err.Error() }
func (p permanentError) Unwrap() error { return p.err }

// retryable reports whether a failed attempt is worth repeating.
func retryable(err error) bool {
	var p permanentError
	return !errors.As(err, &p)
}

// Engine is a parallel, cache-aware job executor.  All methods are
// safe for concurrent use.
type Engine struct {
	opts   Options
	reg    *telemetry.Registry
	disk   *diskStore
	remote *remoteCache
	traces *trace.Store

	// compute executes one job under the task's context (which carries
	// the caller's tracer), reporting the result, whether an existing
	// trace or cached result served it, and the per-stage cost
	// breakdown; tests substitute a stub.
	compute func(context.Context, Job) (JobResult, error)

	queue chan *task
	wg    sync.WaitGroup

	mu       sync.Mutex
	inflight map[string]*Future // content hash -> single flight (nil when DisableCache)
	closed   bool

	// telemetry handles, resolved once
	mSubmitted, mComputed, mFailed, mPanics    *telemetry.Counter
	mMemHits, mDiskHits, mDiskWrites, mCorrupt *telemetry.Counter
	mRetries, mTimeouts, mInjected             *telemetry.Counter
	mJournal, mResumed                         *telemetry.Counter
	gWorkers, gQueuePeak                       *telemetry.Gauge
	hQueueWait                                 *telemetry.Histogram
}

// task is one queued unit: the job, its future, and the submission
// context (cancellation and deadline are honoured up to the moment the
// simulation starts).
type task struct {
	job      Job
	hash     string
	fut      *Future
	ctx      context.Context
	enqueued time.Time
}

// Future is the pending result of a submitted job.
type Future struct {
	done chan struct{}
	res  JobResult
	err  error
}

// Wait blocks until the job completes and returns its result.  Waiting
// more than once is allowed and returns the same values.
func (f *Future) Wait() (cpu.Report, error) {
	<-f.done
	return f.res.Report, f.err
}

// TraceHit blocks until the job completes and reports whether it was
// served without a fresh functional capture: a trace replay hit, a
// disk-cached result, or coalescing onto another submission's
// computation.
func (f *Future) TraceHit() bool {
	<-f.done
	return f.res.TraceHit
}

// Cost blocks until the job completes and returns its per-stage time
// breakdown (queue wait, compile, capture, replay, cache I/O,
// journal).  A coalesced submission reports the cost of the
// computation it joined.
func (f *Future) Cost() telemetry.StageCost {
	<-f.done
	return f.res.Cost
}

func (f *Future) complete(res JobResult, err error) {
	f.res, f.err = res, err
	close(f.done)
}

func resolved(err error) *Future {
	f := &Future{done: make(chan struct{})}
	f.complete(JobResult{}, err)
	return f
}

// New starts an engine.  Close releases its workers.
func New(o Options) *Engine {
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 4 * o.Workers
	}
	reg := o.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	e := &Engine{
		opts:  o,
		reg:   reg,
		queue: make(chan *task, o.QueueDepth),

		mSubmitted:  reg.Counter("sched.jobs.submitted"),
		mComputed:   reg.Counter("sched.jobs.computed"),
		mFailed:     reg.Counter("sched.jobs.failed"),
		mPanics:     reg.Counter("sched.jobs.panics"),
		mMemHits:    reg.Counter("sched.cache.memory.hits"),
		mDiskHits:   reg.Counter("sched.cache.disk.hits"),
		mDiskWrites: reg.Counter("sched.cache.disk.writes"),
		mCorrupt:    reg.Counter("sched.cache.disk.corrupt"),
		mRetries:    reg.Counter("sched.jobs.retries"),
		mTimeouts:   reg.Counter("sched.jobs.timeouts"),
		mInjected:   reg.Counter("sched.faults.injected"),
		mJournal:    reg.Counter("sched.journal.appends"),
		mResumed:    reg.Counter("sched.journal.resumed"),
		gWorkers:    reg.Gauge("sched.workers"),
		gQueuePeak:  reg.Gauge("sched.queue.peak"),
		hQueueWait:  reg.Histogram("sched.queue.wait_us", nil),
	}
	e.traces = o.Traces
	if e.traces == nil {
		topts := trace.StoreOptions{Budget: o.TraceBudget, Registry: reg, Injector: o.Injector}
		if o.CacheDir != "" {
			topts.Dir = filepath.Join(o.CacheDir, "traces")
		}
		if o.CacheUpstream != "" {
			topts.Upstream = o.CacheUpstream
			topts.Transport = o.CacheTransport
		}
		e.traces = trace.NewStore(topts)
	}
	if o.CacheUpstream != "" {
		e.remote = newRemoteCache(o.CacheUpstream, o.CacheTransport, reg)
	}
	e.compute = func(ctx context.Context, j Job) (JobResult, error) { return j.run(ctx, e.traces) }
	if !o.DisableCache {
		e.inflight = make(map[string]*Future)
	}
	if o.CacheDir != "" {
		e.disk = &diskStore{dir: o.CacheDir}
	}
	e.gWorkers.Set(float64(o.Workers))
	for i := 0; i < o.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Registry returns the registry the engine publishes into.
func (e *Engine) Registry() *telemetry.Registry { return e.reg }

// TraceStore returns the trace store the engine's jobs capture into
// and replay from.
func (e *Engine) TraceStore() *trace.Store { return e.traces }

// Close stops accepting jobs and waits for queued work to drain.
func (e *Engine) Close() {
	e.Drain(context.Background())
}

// Drain is the engine's single shutdown entry point: it stops intake
// (later Submits fail fast with "engine closed"), waits for every
// queued and in-flight job to finish, and flushes the disk cache
// directory so persisted results survive the process.  Both `sweep`
// and `serve` shut down through it.  Drain is idempotent and safe to
// call concurrently with Close.  If ctx expires first, Drain returns
// the context's error; the workers keep finishing in the background
// and a later Drain call can wait for them again.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.queue)
	}
	e.mu.Unlock()
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if e.disk != nil {
			e.disk.syncDir()
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("sched: drain: %w", ctx.Err())
	}
}

// Submit schedules a job and returns its future.  Identical jobs
// (equal content hashes) share one computation and one cache entry;
// only the first submission enqueues work.  Submit blocks when the
// bounded queue is full.  The context covers queue wait: a job whose
// context is cancelled or past its deadline before a worker picks it
// up fails with the context's error instead of simulating.
func (e *Engine) Submit(ctx context.Context, j Job) *Future {
	f, _ := e.SubmitTracked(ctx, j)
	return f
}

// SubmitTracked is Submit plus a coalescing report: the second return
// is true when the submission was served by the in-memory layer — it
// joined an in-flight computation of the same cell or hit the memoized
// result — without enqueuing any new work.  The server's batch and
// cell endpoints use it to count `server.cells.coalesced`.
func (e *Engine) SubmitTracked(ctx context.Context, j Job) (*Future, bool) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mSubmitted.Add(1)
	hash := j.Hash()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return resolved(fmt.Errorf("sched: engine closed")), false
	}
	if e.inflight != nil {
		if f, ok := e.inflight[hash]; ok {
			e.mu.Unlock()
			e.mMemHits.Add(1)
			return f, true
		}
	}
	f := &Future{done: make(chan struct{})}
	if e.inflight != nil {
		e.inflight[hash] = f
	}
	e.mu.Unlock()

	t := &task{job: j, hash: hash, fut: f, ctx: ctx, enqueued: time.Now()}
	select {
	case e.queue <- t:
	case <-ctx.Done():
		// Blocked on a full queue and the caller gave up: withdraw the
		// single-flight registration (the cell was never enqueued, so a
		// later submission must be free to compute it) and fail the
		// future with the context's error.
		e.mu.Lock()
		if e.inflight != nil && e.inflight[hash] == f {
			delete(e.inflight, hash)
		}
		e.mu.Unlock()
		e.mFailed.Add(1)
		f.complete(JobResult{}, fmt.Errorf("sched: job %s/%s seed %d: %w",
			j.App, j.Variant, j.Seed, ctx.Err()))
		return f, false
	}
	if depth := float64(len(e.queue)); depth > e.gQueuePeak.Value() {
		e.gQueuePeak.Set(depth)
	}
	return f, false
}

// Run is Submit + Wait.
func (e *Engine) Run(ctx context.Context, j Job) (cpu.Report, error) {
	return e.Submit(ctx, j).Wait()
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for t := range e.queue {
		wait := time.Since(t.enqueued)
		e.hQueueWait.Observe(uint64(wait / time.Microsecond))
		// The queue span is retroactive (its duration was only
		// measurable at dequeue) and a sibling of the execute span:
		// both attach under whatever the submitter's current span was.
		telemetry.TracerFrom(t.ctx).Record(t.ctx, telemetry.StageQueue, t.enqueued, wait)
		ctx, sp := telemetry.StartSpan(t.ctx, telemetry.StageExecute)
		sp.Attr("app", t.job.App)
		sp.Attr("variant", t.job.Variant.String())
		sp.AttrInt("seed", t.job.Seed)
		res, err := e.execute(ctx, t)
		sp.AttrBool("trace_hit", res.TraceHit)
		sp.End()
		res.Cost.QueueNS = wait.Nanoseconds()
		res.Cost.TotalNS = time.Since(t.enqueued).Nanoseconds()
		if err != nil {
			e.mFailed.Add(1)
			// Don't memoize failures (a cancelled context would
			// otherwise poison the cell for later submissions).
			e.mu.Lock()
			if e.inflight != nil && e.inflight[t.hash] == t.fut {
				delete(e.inflight, t.hash)
			}
			e.mu.Unlock()
		}
		t.fut.complete(res, err)
	}
}

// describe names the task's cell for error messages.
func (t *task) describe() string {
	return fmt.Sprintf("%s/%s seed %d", t.job.App, t.job.Variant, t.job.Seed)
}

// execute resolves one task: context check, disk cache probe, then up
// to 1+Retries simulation attempts — each under panic recovery and the
// cell-deadline watchdog — then disk write-back and journaling.  The
// context carries the worker's execute span; the returned cost has its
// cache/journal stages filled in (queue and total are the worker's).
func (e *Engine) execute(ctx context.Context, t *task) (JobResult, error) {
	if cerr := t.ctx.Err(); cerr != nil {
		return JobResult{}, fmt.Errorf("sched: job %s: %w", t.describe(), cerr)
	}
	var cost telemetry.StageCost
	if e.disk != nil || e.remote != nil {
		probeStart := time.Now()
		_, sp := telemetry.StartSpan(ctx, telemetry.StageCacheRead)
		var (
			cached      cpu.Report
			ok, corrupt bool
		)
		if e.disk != nil {
			cached, ok, corrupt = e.disk.load(t.hash, t.job.Key())
		}
		remoteHit := false
		if !ok && e.remote != nil {
			// Local miss: ask the shared remote tier before simulating.
			// The submission context bounds the round trip so a
			// cancelled sweep never hangs on an upstream.
			if rep, rok := e.remote.load(t.ctx, t.hash, t.job.Key()); rok {
				cached, ok, remoteHit = rep, true, true
			}
		}
		sp.AttrBool("hit", ok)
		sp.End()
		cost.CacheNS += time.Since(probeStart).Nanoseconds()
		if ok {
			if remoteHit {
				// Write through to the local disk tier so the next
				// process on this node does not repeat the round trip.
				if e.disk != nil {
					if err := e.disk.store(t.hash, t.job.Key(), cached); err == nil {
						e.mDiskWrites.Add(1)
					}
				}
			} else {
				e.mDiskHits.Add(1)
			}
			cost.JournalNS += e.journalFinish(ctx, t.hash, true)
			// A cache-served result needed no fresh capture either.
			return JobResult{Report: cached, TraceHit: true, Cost: cost}, nil
		} else if corrupt {
			e.mCorrupt.Add(1)
		}
	}
	var err error
	for attempt := 0; ; attempt++ {
		var res JobResult
		res, err = e.attempt(ctx, t, attempt)
		if err == nil {
			res.Cost.Add(cost)
			res.Cost.CacheNS += e.persist(ctx, t, res.Report, attempt)
			res.Cost.JournalNS += e.journalFinish(ctx, t.hash, false)
			return res, nil
		}
		if attempt >= e.opts.Retries || !retryable(err) || t.ctx.Err() != nil {
			break
		}
		e.mRetries.Add(1)
		if !e.backoff(t.ctx, attempt) {
			break
		}
	}
	if e.opts.Retries > 0 && retryable(err) {
		err = fmt.Errorf("sched: job %s: giving up after %d attempts: %w",
			t.describe(), e.opts.Retries+1, err)
	}
	return JobResult{Cost: cost}, err
}

// attempt runs one simulation try in its own goroutine so the worker
// can enforce the cell deadline and honour cancellation mid-run.  An
// abandoned attempt keeps running in the background; its result lands
// in a buffered channel and is discarded.
func (e *Engine) attempt(ctx context.Context, t *task, attempt int) (JobResult, error) {
	type outcome struct {
		res JobResult
		err error
	}
	actx, sp := telemetry.StartSpan(ctx, telemetry.StageAttempt)
	sp.AttrInt("attempt", int64(attempt))
	defer sp.End()
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				e.mPanics.Add(1)
				done <- outcome{err: fmt.Errorf("sched: job %s panicked: %v", t.describe(), r)}
			}
		}()
		if inj := e.opts.Injector; inj != nil {
			switch d := inj.Decide(fault.SiteExecute, t.hash, attempt); d.Kind {
			case fault.Panic:
				e.mInjected.Add(1)
				panic("injected fault")
			case fault.Error:
				e.mInjected.Add(1)
				done <- outcome{err: fmt.Errorf("sched: job %s: injected transient error", t.describe())}
				return
			case fault.Cancel:
				e.mInjected.Add(1)
				done <- outcome{err: fmt.Errorf("sched: job %s: injected cancellation: %w",
					t.describe(), context.Canceled)}
				return
			case fault.Hang:
				e.mInjected.Add(1)
				time.Sleep(d.Delay)
			}
		}
		e.mComputed.Add(1)
		res, err := e.compute(actx, t.job)
		done <- outcome{res: res, err: err}
	}()
	var expired <-chan time.Time
	if e.opts.CellTimeout > 0 {
		timer := time.NewTimer(e.opts.CellTimeout)
		defer timer.Stop()
		expired = timer.C
	}
	select {
	case o := <-done:
		return o.res, o.err
	case <-expired:
		e.mTimeouts.Add(1)
		return JobResult{}, fmt.Errorf("sched: job %s: %w (budget %v)",
			t.describe(), ErrCellTimeout, e.opts.CellTimeout)
	case <-t.ctx.Done():
		return JobResult{}, permanentError{fmt.Errorf("sched: job %s: %w",
			t.describe(), t.ctx.Err())}
	}
}

// backoff sleeps the deterministic capped-exponential delay before the
// next attempt; it returns false if the submission context died first.
func (e *Engine) backoff(ctx context.Context, attempt int) bool {
	base := e.opts.RetryBackoff
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	d := 64 * base
	if attempt < 6 {
		d = base << uint(attempt)
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// persist writes one computed result to the disk store, applying an
// injected corruption afterwards when the fault plan says so (the
// in-process future still holds the sound result; the damage is only
// visible to a later process, which must detect and heal it).  It
// returns the nanoseconds spent on the write-back.
func (e *Engine) persist(ctx context.Context, t *task, rep cpu.Report, attempt int) int64 {
	if e.disk == nil && e.remote == nil {
		return 0
	}
	start := time.Now()
	_, sp := telemetry.StartSpan(ctx, telemetry.StageCacheWr)
	defer sp.End()
	if e.remote != nil {
		// Share the fresh result with the fleet, best-effort: a failed
		// push only costs the peers a recompute.
		e.remote.store(t.ctx, t.hash, t.job.Key(), rep)
	}
	if e.disk == nil {
		return time.Since(start).Nanoseconds()
	}
	if err := e.disk.store(t.hash, t.job.Key(), rep); err != nil {
		// A failed write is not a job failure: the result is sound,
		// only the cross-process cache misses next time.
		return time.Since(start).Nanoseconds()
	}
	e.mDiskWrites.Add(1)
	if inj := e.opts.Injector; inj != nil {
		if d := inj.Decide(fault.SiteStore, t.hash, attempt); d.Kind == fault.Corrupt {
			e.mInjected.Add(1)
			e.disk.mangle(t.hash)
		}
	}
	return time.Since(start).Nanoseconds()
}

// journalFinish records a completed cell in the WAL, returning the
// nanoseconds the fsync'd append took.  A disk hit whose hash was
// journaled by an earlier process counts as a resumed cell.
func (e *Engine) journalFinish(ctx context.Context, hash string, fromDisk bool) int64 {
	j := e.opts.Journal
	if j == nil {
		return 0
	}
	start := time.Now()
	_, sp := telemetry.StartSpan(ctx, telemetry.StageJournal)
	defer sp.End()
	if j.Done(hash) {
		if fromDisk {
			e.mResumed.Add(1)
		}
		return time.Since(start).Nanoseconds()
	}
	if err := j.Record(hash); err == nil {
		e.mJournal.Add(1)
	}
	return time.Since(start).Nanoseconds()
}

// Stats is a point-in-time view of the engine's counters.
type Stats struct {
	Submitted   uint64 `json:"submitted"`       // jobs submitted
	Computed    uint64 `json:"computed"`        // jobs actually simulated
	MemoryHits  uint64 `json:"memory_hits"`     // submits resolved by the in-memory cache
	DiskHits    uint64 `json:"disk_hits"`       // jobs resolved by the on-disk store
	DiskWrites  uint64 `json:"disk_writes"`     // results persisted to disk
	DiskCorrupt uint64 `json:"disk_corrupt"`    // corrupted disk entries detected and recomputed
	Failed      uint64 `json:"failed"`          // jobs that returned an error
	Panics      uint64 `json:"panics"`          // attempts recovered from a panic
	Retries     uint64 `json:"retries"`         // attempts repeated after a retryable failure
	Timeouts    uint64 `json:"timeouts"`        // attempts killed by the cell-deadline watchdog
	Injected    uint64 `json:"injected_faults"` // faults injected by Options.Injector
	Journaled   uint64 `json:"journal_appends"` // completed cells appended to the WAL
	Resumed     uint64 `json:"journal_resumed"` // journaled cells skipped via the disk cache
	RemoteHits  uint64 `json:"remote_hits"`     // jobs resolved by the shared remote cache tier
	RemotePuts  uint64 `json:"remote_puts"`     // results pushed to the remote tier
	RemoteErrs  uint64 `json:"remote_errors"`   // remote-tier round trips that failed (degraded to miss)
	Workers     int    `json:"workers"`         // pool size
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	var rh, rp, re uint64
	if e.remote != nil {
		rh, rp, re = e.remote.mHits.Value(), e.remote.mPuts.Value(), e.remote.mErrors.Value()
	}
	return Stats{
		RemoteHits: rh,
		RemotePuts: rp,
		RemoteErrs: re,
		Submitted:   e.mSubmitted.Value(),
		Computed:    e.mComputed.Value(),
		MemoryHits:  e.mMemHits.Value(),
		DiskHits:    e.mDiskHits.Value(),
		DiskWrites:  e.mDiskWrites.Value(),
		DiskCorrupt: e.mCorrupt.Value(),
		Failed:      e.mFailed.Value(),
		Panics:      e.mPanics.Value(),
		Retries:     e.mRetries.Value(),
		Timeouts:    e.mTimeouts.Value(),
		Injected:    e.mInjected.Value(),
		Journaled:   e.mJournal.Value(),
		Resumed:     e.mResumed.Value(),
		Workers:     e.opts.Workers,
	}
}

// HitRate is the fraction of submitted jobs that needed no simulation
// (served from the in-memory or on-disk cache).  A repeated sweep
// reports 1.0.
func (s Stats) HitRate() float64 {
	if s.Submitted == 0 {
		return 0
	}
	return 1 - float64(s.Computed)/float64(s.Submitted)
}
