package sched

import (
	"context"
	"runtime"
	"testing"
	"time"

	"bioperf5/internal/cpu"
)

// TestDrainGoroutineLeak is the shutdown gate: an engine that has run
// work and been drained must leave no goroutines behind.  The count is
// taken before New and re-checked (with settling retries — the runtime
// needs a moment to reap exited goroutines) after Drain.
func TestDrainGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	e := New(Options{Workers: 8})
	e.compute = func(context.Context, Job) (JobResult, error) {
		return JobResult{Report: cpu.Report{Counters: cpu.Counters{Cycles: 2, Instructions: 1}}}, nil
	}
	for seed := int64(0); seed < 32; seed++ {
		j := Job{App: "Fasta", CPU: cpu.POWER5Baseline(), Seed: seed, Scale: 1}
		if _, err := e.Run(context.Background(), j); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked by drained engine: before=%d after=%d", before, after)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDrainIdempotent checks Drain can be called repeatedly — also
// interleaved with Close — and that Submit after Drain fails fast
// instead of deadlocking on a closed queue.
func TestDrainIdempotent(t *testing.T) {
	e := New(Options{Workers: 2})
	e.compute = func(context.Context, Job) (JobResult, error) { return JobResult{}, nil }
	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("first Drain: %v", err)
	}
	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
	e.Close()
	_, err := e.Run(context.Background(), Job{App: "Fasta", Seed: 1})
	if err == nil {
		t.Fatal("Submit after Drain succeeded")
	}
}

// TestDrainHonoursContext: a Drain whose context is already dead must
// return promptly with the context error while work is still in
// flight, and a later unbounded Drain must still complete.
func TestDrainHonoursContext(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	e := New(Options{Workers: 1})
	e.compute = func(context.Context, Job) (JobResult, error) {
		started <- struct{}{}
		<-release
		return JobResult{}, nil
	}
	fut := e.Submit(context.Background(), Job{App: "Fasta", Seed: 1})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.Drain(ctx); err == nil {
		t.Fatal("Drain with dead context returned nil while a job was in flight")
	}
	close(release)
	if _, err := fut.Wait(); err != nil {
		t.Fatalf("in-flight job after failed drain: %v", err)
	}
	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("final Drain: %v", err)
	}
}
