package sched

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Journal is the sweep's crash-safe completion record: an append-only
// JSONL write-ahead log, one record per completed cell hash, fsync'd
// after every append.  It lives next to the disk cache; the cache holds
// the results, the journal is the durable statement of which cells are
// done.  After a crash, re-running the same sweep against the same
// directory consults the journal (via the engine's telemetry) and the
// cache, re-simulating only unfinished cells.
//
// The load path tolerates a torn tail — a record cut short by the very
// crash the journal exists to survive — by ignoring any line that does
// not parse.  A missing trailing newline is repaired before the next
// append so the torn bytes can never run into a fresh record.
type Journal struct {
	mu          sync.Mutex
	f           *os.File
	done        map[string]bool
	needNewline bool // file ends mid-line (torn tail); prepend '\n' on next append
}

// journalRecord is one JSONL line.
type journalRecord struct {
	Hash   string `json:"hash"`
	Status string `json:"status"`
}

// OpenJournal opens (creating if necessary) the journal at path and
// replays its records.
func OpenJournal(path string) (*Journal, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("sched: journal: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sched: journal: %w", err)
	}
	j := &Journal{f: f, done: make(map[string]bool)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Hash == "" {
			continue // torn or foreign line: ignore, never trust
		}
		j.done[rec.Hash] = true
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("sched: journal: %w", err)
	}
	// Detect a torn tail: a non-empty file whose last byte is not '\n'.
	if end, err := f.Seek(0, 2); err == nil && end > 0 {
		buf := make([]byte, 1)
		if _, err := f.ReadAt(buf, end-1); err == nil && buf[0] != '\n' {
			j.needNewline = true
		}
	}
	return j, nil
}

// Done reports whether hash has been recorded as completed.
func (j *Journal) Done(hash string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done[hash]
}

// Len returns the number of completed cells on record.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Record appends one completed cell hash and fsyncs.  Recording an
// already-journaled hash is a no-op, so replays stay idempotent.
func (j *Journal) Record(hash string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done[hash] {
		return nil
	}
	b, err := json.Marshal(journalRecord{Hash: hash, Status: "ok"})
	if err != nil {
		return fmt.Errorf("sched: journal: %w", err)
	}
	if j.needNewline {
		b = append([]byte{'\n'}, b...)
	}
	b = append(b, '\n')
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("sched: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sched: journal: %w", err)
	}
	j.needNewline = false
	j.done[hash] = true
	return nil
}

// Close releases the underlying file.  The journal must not be used
// afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
