package sched

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"bioperf5/internal/cpu"
	"bioperf5/internal/telemetry"
)

// Remote result-cache tier.  With Options.CacheUpstream set, the
// engine probes a peer's /v1/cache endpoint after a local disk miss
// and pushes freshly computed results back, so one node's simulation
// is every node's cache hit.  The tier is strictly best-effort: every
// failure mode — unreachable upstream, HTTP error, corrupt body —
// degrades to a miss and the engine computes locally.  Entries travel
// in the same self-verifying format the disk tier stores, and are
// re-verified on arrival; a lying upstream can cost a recompute, never
// a wrong result.

// remoteCacheTimeout bounds one upstream round trip.  A slow upstream
// must never cost more than a fraction of the simulation it might
// save.
const remoteCacheTimeout = 10 * time.Second

// maxRemoteEntryBytes bounds an upstream response body; entries are
// small JSON documents.
const maxRemoteEntryBytes = 4 << 20

type remoteCache struct {
	base string // upstream base URL, no trailing slash
	hc   *http.Client

	mHits, mMisses, mErrors, mPuts *telemetry.Counter
}

func newRemoteCache(base string, transport http.RoundTripper, reg *telemetry.Registry) *remoteCache {
	return &remoteCache{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: remoteCacheTimeout, Transport: transport},

		mHits:   reg.Counter("sched.cache.remote.hits"),
		mMisses: reg.Counter("sched.cache.remote.misses"),
		mErrors: reg.Counter("sched.cache.remote.errors"),
		mPuts:   reg.Counter("sched.cache.remote.puts"),
	}
}

func (r *remoteCache) url(hash string) string {
	return r.base + "/v1/cache/" + hash
}

// load probes the upstream for hash.  Anything but a verified entry
// matching want is a miss (counted as an error when the upstream
// misbehaved rather than simply not having it).
func (r *remoteCache) load(ctx context.Context, hash string, want Key) (cpu.Report, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url(hash), nil)
	if err != nil {
		r.mErrors.Add(1)
		return cpu.Report{}, false
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		r.mErrors.Add(1)
		return cpu.Report{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		r.mMisses.Add(1)
		return cpu.Report{}, false
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		r.mErrors.Add(1)
		return cpu.Report{}, false
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteEntryBytes))
	if err != nil {
		r.mErrors.Add(1)
		return cpu.Report{}, false
	}
	e, err := decodeEntry(b, hash)
	if err != nil || e.Key != want {
		r.mErrors.Add(1)
		return cpu.Report{}, false
	}
	r.mHits.Add(1)
	return e.Result, true
}

// store pushes one computed result upstream, best-effort.
func (r *remoteCache) store(ctx context.Context, hash string, key Key, rep cpu.Report) {
	b, err := encodeEntry(key, rep)
	if err != nil {
		r.mErrors.Add(1)
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, r.url(hash), bytes.NewReader(b))
	if err != nil {
		r.mErrors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.hc.Do(req)
	if err != nil {
		r.mErrors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		r.mErrors.Add(1)
		return
	}
	r.mPuts.Add(1)
}

// CacheEntry returns the verified encoded bytes of the local
// disk-cached result addressed by hash — the body GET /v1/cache/{key}
// serves.  False when the engine has no disk tier or no such entry.
func (e *Engine) CacheEntry(hash string) ([]byte, bool) {
	if e.disk == nil {
		return nil, false
	}
	return e.disk.loadRaw(hash)
}

// InstallCacheEntry verifies body as a cache entry addressed by hash
// and persists it to the local disk tier — the write path behind
// PUT /v1/cache/{key}.
func (e *Engine) InstallCacheEntry(hash string, body []byte) error {
	if e.disk == nil {
		return fmt.Errorf("sched: no cache directory configured")
	}
	if _, err := decodeEntry(body, hash); err != nil {
		return err
	}
	if err := e.disk.storeRaw(hash, body); err != nil {
		return err
	}
	e.mDiskWrites.Add(1)
	return nil
}
