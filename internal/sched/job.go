// Package sched turns the harness into a parallel, cache-aware
// execution engine for design-space exploration.  The unit of work is
// a Job — one (kernel, variant, core config, seed) simulation cell —
// identified by a canonical content hash.  An Engine executes jobs on
// a bounded worker pool and memoizes results in a content-addressed
// in-memory cache (optionally backed by an on-disk store), so repeated
// cells — the shared baseline column across Figures 4-6, or re-runs
// with overlapping configurations — are computed exactly once.
//
// Jobs are pure: core.RunCell touches no state outside its own run,
// which is what makes results bit-identical regardless of worker
// count (enforced by the harness sweep determinism test).
package sched

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"bioperf5/internal/branch"
	"bioperf5/internal/core"
	"bioperf5/internal/cpu"
	"bioperf5/internal/kernels"
	"bioperf5/internal/telemetry"
	"bioperf5/internal/trace"
)

// Job is one self-describing simulation cell: which application kernel
// to run, how to compile it, the core to run it on, and the input.
type Job struct {
	App     string          // application name (Blast, Clustalw, Fasta, Hmmer)
	Variant kernels.Variant // predication variant the kernel is compiled under
	CPU     cpu.Config      // microarchitecture configuration
	Seed    int64           // input seed
	Scale   int             // workload scale factor (values < 1 mean 1)

	// Trace selects the trace policy for this cell (zero value: auto).
	// It is execution strategy, not identity: results are bit-identical
	// under every policy, so it is deliberately excluded from Key and
	// Hash — cached results are shared across policies and manifests do
	// not change when tracing is toggled.
	Trace core.TracePolicy `json:"-"`
}

// keySchema versions the canonical key encoding; bump it whenever the
// meaning of an existing cpu.Config field changes so stale on-disk
// cache entries stop matching instead of being silently reused.
// Schema 2 canonicalizes the predictor spec inside the key, so every
// spelling of a predictor addresses one cache entry.
const keySchema = 2

// Key is the canonical, JSON-serializable identity of a Job.  Two jobs
// with equal keys compute the same result.
type Key struct {
	Schema  int        `json:"schema"`
	App     string     `json:"app"`
	Variant string     `json:"variant"`
	Seed    int64      `json:"seed"`
	Scale   int        `json:"scale"`
	CPU     cpu.Config `json:"cpu"`
}

// Key returns the job's canonical identity.  Scale is normalized the
// way kernel NewRun hooks normalize it, so scale 0 and scale 1 address
// the same cache entry; the predictor spec is canonicalized so
// equivalent spellings ("gshare", "gshare:bits=12,hist=11") coalesce.
// An unparseable spec is kept verbatim — it still keys deterministically
// and fails with its real error at execution time.
func (j Job) Key() Key {
	scale := j.Scale
	if scale < 1 {
		scale = 1
	}
	cfg := j.CPU
	cfg.Predictor = branch.CanonicalOrRaw(cfg.Predictor)
	return Key{
		Schema:  keySchema,
		App:     j.App,
		Variant: j.Variant.String(),
		Seed:    j.Seed,
		Scale:   scale,
		CPU:     cfg,
	}
}

// Hash returns the job's content hash: the hex SHA-256 of the
// canonical JSON encoding of its Key.  It addresses both the in-memory
// and the on-disk cache.
func (j Job) Hash() string {
	b, err := json.Marshal(j.Key())
	if err != nil {
		// Key is a fixed struct of marshalable fields; this cannot
		// happen short of memory corruption.
		panic(fmt.Sprintf("sched: marshal key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// JobResult is the outcome of executing one job: the report, whether
// an existing trace (or cached result) served it without a fresh
// functional capture, and the per-stage time breakdown.
type JobResult struct {
	Report   cpu.Report
	TraceHit bool
	Cost     telemetry.StageCost
}

// run executes the job through core.Simulate under the job's trace
// policy.  The context carries the caller's tracer so the simulation
// stages span under the worker's execute span.  It is the default
// compute function of an Engine (tests substitute a stub).
func (j Job) run(ctx context.Context, traces *trace.Store) (JobResult, error) {
	if _, err := kernels.ByApp(j.App); err != nil {
		// A job naming an unknown application can never succeed; mark
		// it permanent so the retry loop does not burn its budget on it.
		return JobResult{}, permanentError{err}
	}
	resp, err := core.Simulate(core.Request{
		App:     j.App,
		Variant: j.Variant,
		Seeds:   []int64{j.Seed},
		Scale:   j.Scale,
		CPU:     j.CPU,
		Context: ctx,
		Trace:   j.Trace,
		Traces:  traces,
	})
	if err != nil {
		return JobResult{}, err
	}
	return JobResult{Report: resp.Aggregate, TraceHit: resp.TraceHits > 0, Cost: resp.Cost}, nil
}
