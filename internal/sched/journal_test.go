package sched

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"bioperf5/internal/cpu"
)

func openTestJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j := openTestJournal(t, path)
	if j.Len() != 0 {
		t.Fatalf("fresh journal Len = %d", j.Len())
	}
	for _, h := range []string{"aaa", "bbb"} {
		if err := j.Record(h); err != nil {
			t.Fatalf("Record(%s): %v", h, err)
		}
	}
	if err := j.Record("aaa"); err != nil { // idempotent
		t.Fatalf("re-Record: %v", err)
	}
	if j.Len() != 2 || !j.Done("aaa") || !j.Done("bbb") || j.Done("ccc") {
		t.Errorf("journal state wrong: len=%d", j.Len())
	}
	j.Close()

	// Reopen replays the records.
	j2 := openTestJournal(t, path)
	if j2.Len() != 2 || !j2.Done("aaa") || !j2.Done("bbb") {
		t.Errorf("replayed state wrong: len=%d", j2.Len())
	}
	// The file stays one record per line.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(b), "\n"); got != 2 {
		t.Errorf("journal has %d lines, want 2:\n%s", got, b)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	// One intact record followed by a record cut mid-write, no newline —
	// the state a SIGKILL during an append leaves behind.
	torn := `{"hash":"good","status":"ok"}` + "\n" + `{"hash":"tor`
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	j := openTestJournal(t, path)
	if !j.Done("good") || j.Len() != 1 {
		t.Fatalf("intact record lost: len=%d", j.Len())
	}
	if err := j.Record("next"); err != nil {
		t.Fatalf("Record after torn tail: %v", err)
	}
	j.Close()

	// The repaired file must replay both complete records, and the torn
	// fragment must sit on its own line, fused with nothing.
	j2 := openTestJournal(t, path)
	if j2.Len() != 2 || !j2.Done("good") || !j2.Done("next") {
		t.Errorf("replay after repair: len=%d", j2.Len())
	}
	b, _ := os.ReadFile(path)
	for _, line := range strings.Split(strings.TrimSuffix(string(b), "\n"), "\n") {
		if strings.Contains(line, "tor") && strings.Contains(line, "next") {
			t.Errorf("torn fragment fused with a fresh record: %q", line)
		}
	}
}

func TestEngineJournalRecordsAndResumes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")

	var computes atomic.Int64
	run := func(j *Journal) *Engine {
		return stubEngine(t, Options{Workers: 1, CacheDir: dir, Journal: j},
			func(job Job) (cpu.Report, error) {
				computes.Add(1)
				return cpu.Report{Counters: cpu.Counters{Cycles: 11}}, nil
			})
	}

	j1 := openTestJournal(t, path)
	e1 := run(j1)
	a, b := baseJob(), baseJob()
	b.Seed = 2
	for _, job := range []Job{a, b} {
		if _, err := e1.Run(context.Background(), job); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	if st := e1.Stats(); st.Journaled != 2 || st.Resumed != 0 {
		t.Errorf("first engine stats = %+v", st)
	}
	if computes.Load() != 2 {
		t.Fatalf("computes = %d, want 2", computes.Load())
	}
	j1.Close()

	// A fresh engine over the same directory + journal resumes: both
	// cells come from the disk cache and count as resumed, not computed.
	j2 := openTestJournal(t, path)
	e2 := run(j2)
	for _, job := range []Job{a, b} {
		rep, err := e2.Run(context.Background(), job)
		if err != nil || rep.Counters.Cycles != 11 {
			t.Fatalf("resumed run = %+v, %v", rep, err)
		}
	}
	if st := e2.Stats(); st.Resumed != 2 || st.Computed != 0 || st.Journaled != 0 {
		t.Errorf("resumed engine stats = %+v", st)
	}
	if computes.Load() != 2 {
		t.Errorf("computes = %d after resume, want still 2", computes.Load())
	}
}
