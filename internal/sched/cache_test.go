package sched

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"bioperf5/internal/cpu"
	"bioperf5/internal/fault"
)

func wantReport() cpu.Report {
	return cpu.Report{Counters: cpu.Counters{Cycles: 1234, Instructions: 567}}
}

// diskEngine is a stub engine over a shared cache directory.
func diskEngine(t *testing.T, dir string, compute func(Job) (cpu.Report, error)) *Engine {
	t.Helper()
	e := New(Options{Workers: 1, CacheDir: dir})
	e.compute = func(_ context.Context, j Job) (JobResult, error) {
		rep, err := compute(j)
		return JobResult{Report: rep}, err
	}
	t.Cleanup(e.Close)
	return e
}

func cacheFile(t *testing.T, dir string) string {
	t.Helper()
	p := filepath.Join(dir, baseJob().Hash()+".json")
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("cache entry not written: %v", err)
	}
	return p
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// First process: computes and persists.
	e1 := diskEngine(t, dir, func(Job) (cpu.Report, error) { return wantReport(), nil })
	if _, err := e1.Run(context.Background(), baseJob()); err != nil {
		t.Fatal(err)
	}
	if st := e1.Stats(); st.DiskWrites != 1 {
		t.Fatalf("stats after first run = %+v", st)
	}
	cacheFile(t, dir)

	// Second process: must not simulate at all.
	e2 := diskEngine(t, dir, func(Job) (cpu.Report, error) {
		return cpu.Report{}, errors.New("should have been a disk hit")
	})
	rep, err := e2.Run(context.Background(), baseJob())
	if err != nil {
		t.Fatal(err)
	}
	if rep != wantReport() {
		t.Errorf("disk hit returned %+v", rep)
	}
	if st := e2.Stats(); st.DiskHits != 1 || st.Computed != 0 {
		t.Errorf("stats after disk hit = %+v", st)
	}
}

// corrupt flips the stored cycle count inside an entry, leaving it
// valid JSON — exactly the kind of silent bit damage the checksum must
// catch.
func corruptEntry(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangled := bytes.Replace(b, []byte(`"Cycles": 1234`), []byte(`"Cycles": 4321`), 1)
	if bytes.Equal(mangled, b) {
		t.Fatalf("corruption target not found in entry:\n%s", b)
	}
	if err := os.WriteFile(path, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDiskCacheCorruptionRecomputed(t *testing.T) {
	dir := t.TempDir()
	e1 := diskEngine(t, dir, func(Job) (cpu.Report, error) { return wantReport(), nil })
	if _, err := e1.Run(context.Background(), baseJob()); err != nil {
		t.Fatal(err)
	}
	corruptEntry(t, cacheFile(t, dir))

	// A corrupted entry must be detected and recomputed, never trusted.
	var computes atomic.Int64
	e2 := diskEngine(t, dir, func(Job) (cpu.Report, error) {
		computes.Add(1)
		return wantReport(), nil
	})
	rep, err := e2.Run(context.Background(), baseJob())
	if err != nil {
		t.Fatal(err)
	}
	if rep != wantReport() {
		t.Errorf("recompute returned %+v", rep)
	}
	if computes.Load() != 1 {
		t.Errorf("corrupted entry served without recompute (computes=%d)", computes.Load())
	}
	if st := e2.Stats(); st.DiskCorrupt != 1 || st.DiskHits != 0 || st.DiskWrites != 1 {
		t.Errorf("stats = %+v", st)
	}

	// The recompute heals the entry: a third engine disk-hits again.
	e3 := diskEngine(t, dir, func(Job) (cpu.Report, error) {
		return cpu.Report{}, errors.New("should have been a disk hit")
	})
	if _, err := e3.Run(context.Background(), baseJob()); err != nil {
		t.Fatal(err)
	}
	if st := e3.Stats(); st.DiskHits != 1 || st.DiskCorrupt != 0 {
		t.Errorf("stats after heal = %+v", st)
	}
}

func TestDiskCacheGarbageFileRecomputed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, baseJob().Hash()+".json")
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := diskEngine(t, dir, func(Job) (cpu.Report, error) { return wantReport(), nil })
	rep, err := e.Run(context.Background(), baseJob())
	if err != nil || rep != wantReport() {
		t.Fatalf("run over garbage entry = %+v, %v", rep, err)
	}
	if st := e.Stats(); st.DiskCorrupt != 1 || st.Computed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDiskCacheKeyMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	e1 := diskEngine(t, dir, func(Job) (cpu.Report, error) { return wantReport(), nil })
	if _, err := e1.Run(context.Background(), baseJob()); err != nil {
		t.Fatal(err)
	}
	// File renamed to another job's address: the embedded key no longer
	// hashes to the filename, so it must not satisfy that job.
	other := baseJob()
	other.Seed = 99
	src := cacheFile(t, dir)
	dst := filepath.Join(dir, other.Hash()+".json")
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int64
	e2 := diskEngine(t, dir, func(Job) (cpu.Report, error) {
		computes.Add(1)
		return cpu.Report{Counters: cpu.Counters{Cycles: 9}}, nil
	})
	rep, err := e2.Run(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 1 || rep.Counters.Cycles != 9 {
		t.Errorf("mismatched key served from disk: %+v (computes=%d)", rep, computes.Load())
	}
}

// TestDiskCacheInjectedTornWriteHealed drives the store-site fault
// injector: the first engine's persist is deliberately torn mid-file,
// and a later engine must detect the damage, recompute, and heal the
// entry rather than trust it.
func TestDiskCacheInjectedTornWriteHealed(t *testing.T) {
	dir := t.TempDir()
	e1 := New(Options{Workers: 1, CacheDir: dir, Injector: &fault.Plan{CorruptRate: 1}})
	e1.compute = func(context.Context, Job) (JobResult, error) { return JobResult{Report: wantReport()}, nil }
	t.Cleanup(e1.Close)
	if _, err := e1.Run(context.Background(), baseJob()); err != nil {
		t.Fatal(err)
	}
	if st := e1.Stats(); st.Injected != 1 || st.DiskWrites != 1 {
		t.Fatalf("stats after injected torn write = %+v", st)
	}

	// The torn entry is on disk and shorter than a valid one.
	b, err := os.ReadFile(cacheFile(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int64
	e2 := diskEngine(t, dir, func(Job) (cpu.Report, error) {
		computes.Add(1)
		return wantReport(), nil
	})
	rep, err := e2.Run(context.Background(), baseJob())
	if err != nil || rep != wantReport() {
		t.Fatalf("run over torn entry = %+v, %v", rep, err)
	}
	if computes.Load() != 1 {
		t.Errorf("torn entry served without recompute (computes=%d)", computes.Load())
	}
	if st := e2.Stats(); st.DiskCorrupt != 1 || st.DiskHits != 0 {
		t.Errorf("stats = %+v", st)
	}
	healed, err := os.ReadFile(cacheFile(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(healed) <= len(b) {
		t.Errorf("entry not healed: %d bytes before, %d after", len(b), len(healed))
	}

	// Atomic writes never leave temp files behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) != ".json" {
			t.Errorf("stray file in cache dir: %s", ent.Name())
		}
	}
}
