package sched

import (
	"context"
	"sync"
	"testing"

	"bioperf5/internal/cpu"
	"bioperf5/internal/kernels"
)

// TestSchedStressRace hammers one engine with a small real sweep —
// every application under two variants, with duplicate submissions
// from several goroutines — so `go test -race` (CI's race job) can
// catch shared mutable state anywhere under kernels, core or cpu.
// Determinism is asserted too: every duplicate must observe the exact
// counter set of its first computation.
func TestSchedStressRace(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e := New(Options{Workers: 4})
	defer e.Close()

	var jobs []Job
	for _, k := range kernels.All() {
		for _, v := range []kernels.Variant{kernels.Branchy, kernels.Combination} {
			jobs = append(jobs, Job{App: k.App, Variant: v, CPU: cpu.POWER5Baseline(), Seed: 1, Scale: 1})
		}
	}

	const dup = 3
	results := make([][]cpu.Report, len(jobs))
	for i := range results {
		results[i] = make([]cpu.Report, dup)
	}
	var wg sync.WaitGroup
	for d := 0; d < dup; d++ {
		for i, j := range jobs {
			d, i, j := d, i, j
			wg.Add(1)
			go func() {
				defer wg.Done()
				rep, err := e.Run(context.Background(), j)
				if err != nil {
					t.Errorf("%s/%s: %v", j.App, j.Variant, err)
					return
				}
				results[i][d] = rep
			}()
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, j := range jobs {
		for d := 1; d < dup; d++ {
			if results[i][d] != results[i][0] {
				t.Errorf("%s/%s: duplicate %d diverged", j.App, j.Variant, d)
			}
		}
	}
	if st := e.Stats(); st.Computed != uint64(len(jobs)) {
		t.Errorf("computed %d cells, want %d (stats %+v)", st.Computed, len(jobs), st)
	}
}
