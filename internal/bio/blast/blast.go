// Package blast implements a blastp-style protein similarity search:
// neighbourhood word seeding, two-hit diagonal filtering, ungapped
// X-drop extension, gapped X-drop extension (the SEMI_G_ALIGN_EX
// computation Figure 1 shows taking >40% of Blast's time), and
// Karlin-Altschul E-value statistics.
package blast

import (
	"fmt"
	"math"
	"sort"

	"bioperf5/internal/bio/align"
	"bioperf5/internal/bio/score"
	"bioperf5/internal/bio/seq"
)

// Params are the search parameters, defaulting to blastp-like values.
type Params struct {
	Matrix *score.Matrix
	Gap    score.Gap

	WordLen       int // seed word length (blastp: 3)
	Threshold     int // neighbourhood word score threshold T (blastp: 11)
	TwoHitWindow  int // max diagonal distance between paired hits (A=40)
	XDropUngapped int // ungapped extension drop-off
	XDropGapped   int // gapped extension drop-off
	GappedTrigger int // ungapped score needed to trigger gapped extension
	EValueCutoff  float64
	KA            score.KarlinAltschul

	// Phase, when non-nil, brackets the extension phases for the
	// Figure 1 function-breakout profiler: it is called with a phase
	// name and returns the stop function.
	Phase func(name string) func()
}

// DefaultParams returns blastp-like defaults over BLOSUM62.
func DefaultParams() Params {
	return Params{
		Matrix:        score.BLOSUM62,
		Gap:           score.DefaultProteinGap,
		WordLen:       3,
		Threshold:     11,
		TwoHitWindow:  40,
		XDropUngapped: 16,
		XDropGapped:   38,
		GappedTrigger: 22,
		EValueCutoff:  10,
		KA:            score.Blosum62Gapped11_1,
	}
}

func (p Params) phase(name string) func() {
	if p.Phase == nil {
		return func() {}
	}
	return p.Phase(name)
}

// Validate rejects unusable parameter sets.
func (p Params) Validate() error {
	if p.Matrix == nil {
		return fmt.Errorf("blast: no matrix")
	}
	if p.WordLen < 2 || p.WordLen > 5 {
		return fmt.Errorf("blast: word length %d out of range", p.WordLen)
	}
	if p.TwoHitWindow < p.WordLen {
		return fmt.Errorf("blast: two-hit window %d below word length", p.TwoHitWindow)
	}
	return p.Gap.Validate()
}

// Index is the word index over a sequence database.
type Index struct {
	DB     []*seq.Seq
	params Params
	// words[w] lists (sequence, offset) pairs for exact word w.
	words map[int][]posting
	// dbLen is the total residue count (the n of E = K*m*n*e^{-λS}).
	dbLen int
}

type posting struct {
	seq int
	off int32
}

func wordKey(code []byte, size int) int {
	k := 0
	for _, c := range code {
		k = k*size + int(c)
	}
	return k
}

// NewIndex builds the word index for db.
func NewIndex(db []*seq.Seq, p Params) (*Index, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	idx := &Index{DB: db, params: p, words: make(map[int][]posting)}
	size := p.Matrix.Alpha.Size()
	for si, s := range db {
		if s.Alpha != p.Matrix.Alpha {
			return nil, fmt.Errorf("blast: sequence %s alphabet mismatch", s.ID)
		}
		idx.dbLen += s.Len()
		for off := 0; off+p.WordLen <= s.Len(); off++ {
			w := wordKey(s.Code[off:off+p.WordLen], size)
			idx.words[w] = append(idx.words[w], posting{seq: si, off: int32(off)})
		}
	}
	return idx, nil
}

// neighborhood returns, for every database word within score threshold
// of some query word, the query offsets it seeds — BLAST's T-neighbour
// expansion.
func neighborhood(q *seq.Seq, p Params) map[int][]int32 {
	size := p.Matrix.Alpha.Size()
	out := make(map[int][]int32)
	w := p.WordLen
	var expand func(qword []byte, prefixKey, prefixScore, depth int, qoff int32)
	// maxTail[d] is the best achievable score for the remaining d
	// positions, for pruning.
	maxRes := p.Matrix.MaxScore()
	expand = func(qword []byte, prefixKey, prefixScore, depth int, qoff int32) {
		if depth == w {
			if prefixScore >= p.Threshold {
				out[prefixKey] = append(out[prefixKey], qoff)
			}
			return
		}
		rem := (w - depth - 1) * maxRes
		row := p.Matrix.Row(qword[depth])
		for d := 0; d < size; d++ {
			s := prefixScore + int(row[d])
			if s+rem < p.Threshold {
				continue
			}
			expand(qword, prefixKey*size+d, s, depth+1, qoff)
		}
	}
	for off := 0; off+w <= q.Len(); off++ {
		expand(q.Code[off:off+w], 0, 0, 0, int32(off))
	}
	return out
}

// Hit is one database sequence's best gapped alignment.
type Hit struct {
	Subject       *seq.Seq
	UngappedScore int
	Score         int // best gapped score
	Bits          float64
	EValue        float64
}

// Search runs the blastp pipeline for query against the index.
func Search(query *seq.Seq, idx *Index, p Params) ([]Hit, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if query.Alpha != p.Matrix.Alpha {
		return nil, fmt.Errorf("blast: query alphabet mismatch")
	}
	if query.Len() < p.WordLen {
		return nil, fmt.Errorf("blast: query shorter than word length")
	}
	neigh := neighborhood(query, p)
	size := p.Matrix.Alpha.Size()

	var hits []Hit
	for si, subject := range idx.DB {
		best := searchOne(query, subject, neigh, p, size)
		if best == nil {
			continue
		}
		e := evalue(best.Score, query.Len(), idx.dbLen, p.KA)
		if e > p.EValueCutoff {
			continue
		}
		best.Subject = idx.DB[si]
		best.EValue = e
		best.Bits = bitScore(best.Score, p.KA)
		hits = append(hits, *best)
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Subject.ID < hits[j].Subject.ID
	})
	return hits, nil
}

// searchOne scans one subject for two-hit seeds and extends them.
func searchOne(query, subject *seq.Seq, neigh map[int][]int32, p Params, size int) *Hit {
	w := p.WordLen
	// lastHit[d] = subject offset of the last unextended hit on
	// diagonal d (offset by query length so d >= 0).
	diagBase := query.Len()
	lastHit := make([]int32, query.Len()+subject.Len()+1)
	extended := make([]int32, len(lastHit))
	for i := range lastHit {
		lastHit[i] = -1
		extended[i] = -1
	}
	var best *Hit
	for joff := 0; joff+w <= subject.Len(); joff++ {
		wkey := wordKey(subject.Code[joff:joff+w], size)
		for _, qoff := range neigh[wkey] {
			d := diagBase + joff - int(qoff)
			if extended[d] >= int32(joff) {
				continue // inside an already-extended region
			}
			prev := lastHit[d]
			if prev >= 0 && int(prev)+w > joff {
				continue // overlaps the previous hit: keep the older one
			}
			lastHit[d] = int32(joff)
			if prev < 0 || joff-int(prev) > p.TwoHitWindow {
				continue // no usable partner hit yet
			}
			// Two-hit trigger: ungapped extension around this hit.
			stopU := p.phase("UngappedExtend")
			sc, loA, hiA := align.XDropUngapped(query, subject, int(qoff), joff, w, p.Matrix, p.XDropUngapped)
			stopU()
			extended[d] = int32(hiA + (joff - int(qoff)))
			if sc < p.GappedTrigger {
				continue
			}
			// Gapped extension from the HSP midpoint (SEMI_G_ALIGN_EX
			// twice: forward, and backward on reversed sequences).
			mid := (loA + hiA) / 2
			if mid >= query.Len() {
				mid = query.Len() - 1
			}
			jmid := mid + (joff - int(qoff))
			if jmid >= subject.Len() {
				continue
			}
			stopG := p.phase("SemiGappedAlignEx")
			anchor := p.Matrix.Score(query.Code[mid], subject.Code[jmid])
			fwd := align.XDropGapped(query, subject, mid+1, jmid+1, p.Matrix, p.Gap, p.XDropGapped)
			bwd := align.XDropGapped(align.Reversed(query), align.Reversed(subject),
				query.Len()-mid, subject.Len()-jmid, p.Matrix, p.Gap, p.XDropGapped)
			stopG()
			total := anchor + fwd + bwd
			if best == nil || total > best.Score {
				best = &Hit{UngappedScore: sc, Score: total}
			}
		}
	}
	return best
}

func evalue(s, m, n int, ka score.KarlinAltschul) float64 {
	return ka.K * float64(m) * float64(n) * math.Exp(-ka.Lambda*float64(s))
}

func bitScore(s int, ka score.KarlinAltschul) float64 {
	return (ka.Lambda*float64(s) - math.Log(ka.K)) / math.Ln2
}
