package blast

import (
	"testing"

	"bioperf5/internal/bio/seq"
)

// TestTwoHitRequiresPairedSeeds plants a single short exact word (one
// seed hit, no partner on the diagonal) and verifies it does not
// trigger an extension, while a long shared segment (many word hits on
// one diagonal) does.
func TestTwoHitRequiresPairedSeeds(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 33)
	query := g.Random("q", 120)
	p := DefaultParams()

	// Subject A: only query[10:13] (one word) embedded in random noise.
	noise := g.Random("n", 120)
	codeA := append([]byte{}, noise.Code...)
	copy(codeA[40:], query.Code[10:13])
	subjA := &seq.Seq{ID: "single", Code: codeA, Alpha: seq.Protein}

	// Subject B: a 40-residue segment of the query (many diagonal hits).
	codeB := append([]byte{}, noise.Code[:30]...)
	codeB = append(codeB, query.Code[20:60]...)
	codeB = append(codeB, noise.Code[30:60]...)
	subjB := &seq.Seq{ID: "segment", Code: codeB, Alpha: seq.Protein}

	neigh := neighborhood(query, p)
	size := seq.Protein.Size()
	if hit := searchOne(query, subjA, neigh, p, size); hit != nil {
		// One isolated word almost never gets a diagonal partner, but
		// the random noise can rarely supply one; only fail when the
		// hit is strong.
		if hit.Score > p.GappedTrigger*2 {
			t.Errorf("single isolated seed produced a strong hit: %+v", hit)
		}
	}
	hitB := searchOne(query, subjB, neigh, p, size)
	if hitB == nil {
		t.Fatal("40-residue shared segment produced no hit")
	}
	// The shared segment scores near its self-score.
	self := 0
	for _, c := range query.Code[20:60] {
		self += p.Matrix.Score(c, c)
	}
	if hitB.Score < self/2 {
		t.Errorf("segment hit scored %d, self-score %d", hitB.Score, self)
	}
}

// TestTwoHitWindowLimit verifies that seeds farther apart than the
// window on the same diagonal do not pair.
func TestTwoHitWindowLimit(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 34)
	query := g.Random("q", 200)
	p := DefaultParams()
	p.TwoHitWindow = 10

	// Two exact words from the query on the same diagonal, 50 apart —
	// beyond the narrowed window.
	noise := g.Random("n", 200)
	code := append([]byte{}, noise.Code...)
	copy(code[20:], query.Code[20:23])
	copy(code[70:], query.Code[70:73])
	subj := &seq.Seq{ID: "far", Code: code, Alpha: seq.Protein}

	neigh := neighborhood(query, p)
	hit := searchOne(query, subj, neigh, p, seq.Protein.Size())
	if hit != nil && hit.Score > p.GappedTrigger*2 {
		t.Errorf("seeds beyond the two-hit window paired: %+v", hit)
	}
	// Widen the window: now they pair and trigger an extension attempt.
	p.TwoHitWindow = 60
	neigh = neighborhood(query, p)
	_ = searchOne(query, subj, neigh, p, seq.Protein.Size())
	// (The extension may still score below the trigger over noise; the
	// assertion above is the essential one.)
}
