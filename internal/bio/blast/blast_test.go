package blast

import (
	"math"
	"strings"
	"testing"

	"bioperf5/internal/bio/align"
	"bioperf5/internal/bio/score"
	"bioperf5/internal/bio/seq"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.WordLen = 1
	if err := p.Validate(); err == nil {
		t.Error("word length 1 accepted")
	}
	p = DefaultParams()
	p.TwoHitWindow = 1
	if err := p.Validate(); err == nil {
		t.Error("window below word length accepted")
	}
	p = DefaultParams()
	p.Matrix = nil
	if err := p.Validate(); err == nil {
		t.Error("nil matrix accepted")
	}
}

func TestWordKeyBijective(t *testing.T) {
	size := seq.Protein.Size()
	seen := map[int]bool{}
	words := [][]byte{{0, 0, 0}, {0, 0, 1}, {1, 0, 0}, {19, 19, 19}, {5, 10, 15}}
	for _, w := range words {
		k := wordKey(w, size)
		if seen[k] {
			t.Errorf("collision for %v", w)
		}
		seen[k] = true
	}
}

func TestNeighborhoodContainsExactWords(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 1)
	q := g.Random("q", 50)
	p := DefaultParams()
	neigh := neighborhood(q, p)
	size := seq.Protein.Size()
	for off := 0; off+p.WordLen <= q.Len(); off++ {
		w := q.Code[off : off+p.WordLen]
		self := 0
		for _, c := range w {
			self += p.Matrix.Score(c, c)
		}
		if self < p.Threshold {
			continue // a rare low-self-score word may legitimately miss
		}
		found := false
		for _, qo := range neigh[wordKey(w, size)] {
			if qo == int32(off) {
				found = true
			}
		}
		if !found {
			t.Errorf("exact word at %d missing from its own neighbourhood", off)
		}
	}
}

func TestNeighborhoodThresholdMonotone(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 2)
	q := g.Random("q", 30)
	loose := DefaultParams()
	loose.Threshold = 9
	tight := DefaultParams()
	tight.Threshold = 13
	nl := neighborhood(q, loose)
	nt := neighborhood(q, tight)
	sizeOf := func(m map[int][]int32) int {
		n := 0
		for _, v := range m {
			n += len(v)
		}
		return n
	}
	if sizeOf(nl) <= sizeOf(nt) {
		t.Errorf("loose threshold neighbourhood (%d) not larger than tight (%d)",
			sizeOf(nl), sizeOf(nt))
	}
	// Every tight entry must appear in the loose set.
	for w, offs := range nt {
		lo := map[int32]bool{}
		for _, o := range nl[w] {
			lo[o] = true
		}
		for _, o := range offs {
			if !lo[o] {
				t.Fatalf("tight neighbourhood has %d@%d missing from loose", w, o)
			}
		}
	}
}

func searchHelper(t *testing.T, seed int64, planted int) ([]Hit, *seq.Seq) {
	t.Helper()
	g := seq.NewGenerator(seq.Protein, seed)
	query := g.Random("query", 200)
	db := g.Database("db", 60, 80, 300, query, planted)
	idx, err := NewIndex(db, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	hits, err := Search(query, idx, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return hits, query
}

func TestSearchFindsPlantedHomologs(t *testing.T) {
	hits, _ := searchHelper(t, 3, 3)
	if len(hits) == 0 {
		t.Fatal("no hits for planted homologs")
	}
	homs := 0
	for _, h := range hits {
		if strings.Contains(h.Subject.ID, "_hom") {
			homs++
		}
	}
	if homs == 0 {
		t.Error("planted homologs not among hits")
	}
	// The top hit should be a homolog, with a strong E-value.
	if !strings.Contains(hits[0].Subject.ID, "_hom") {
		t.Errorf("top hit %s is not a planted homolog", hits[0].Subject.ID)
	}
	if hits[0].EValue > 1e-5 {
		t.Errorf("top hit E-value %g is weak", hits[0].EValue)
	}
}

func TestSearchCleanDatabaseMostlyQuiet(t *testing.T) {
	hits, _ := searchHelper(t, 4, 0)
	for _, h := range hits {
		if h.EValue < 1e-4 {
			t.Errorf("random database produced a confident hit %s (E=%g)",
				h.Subject.ID, h.EValue)
		}
	}
}

func TestHitsSortedByScore(t *testing.T) {
	hits, _ := searchHelper(t, 5, 3)
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatal("hits not sorted by decreasing score")
		}
	}
}

func TestGappedScoreAtLeastTriggeringUngapped(t *testing.T) {
	hits, _ := searchHelper(t, 6, 3)
	for _, h := range hits {
		if h.Score < h.UngappedScore-5 {
			t.Errorf("%s: gapped %d far below ungapped %d",
				h.Subject.ID, h.Score, h.UngappedScore)
		}
	}
}

func TestGappedScoreConsistentWithSmithWaterman(t *testing.T) {
	// The gapped X-drop score cannot exceed the full Smith-Waterman
	// optimum and should be close to it for strong homologs.
	g := seq.NewGenerator(seq.Protein, 7)
	query := g.Random("q", 150)
	hom := g.Mutate(query, "hom", 0.65, 0.02)
	p := DefaultParams()
	idx, err := NewIndex([]*seq.Seq{hom}, p)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := Search(query, idx, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("expected a hit on the homolog, got %d", len(hits))
	}
	sw, err := align.LocalScore(query, hom, p.Matrix, p.Gap)
	if err != nil {
		t.Fatal(err)
	}
	if hits[0].Score > sw {
		t.Errorf("blast score %d exceeds Smith-Waterman optimum %d", hits[0].Score, sw)
	}
	if float64(hits[0].Score) < 0.8*float64(sw) {
		t.Errorf("blast score %d far below Smith-Waterman %d", hits[0].Score, sw)
	}
}

func TestEValueMath(t *testing.T) {
	ka := score.Blosum62Gapped11_1
	e100 := evalue(100, 200, 100000, ka)
	e200 := evalue(200, 200, 100000, ka)
	if e200 >= e100 {
		t.Error("E-value not decreasing in score")
	}
	big := evalue(100, 200, 1000000, ka)
	if big <= e100 {
		t.Error("E-value not increasing in database size")
	}
	b := bitScore(100, ka)
	want := (ka.Lambda*100 - math.Log(ka.K)) / math.Ln2
	if math.Abs(b-want) > 1e-9 {
		t.Errorf("bit score = %f, want %f", b, want)
	}
}

func TestSearchErrors(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 8)
	idx, err := NewIndex(g.Database("db", 5, 50, 60, nil, 0), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	d := seq.MustSeq("dna", "ACGT", seq.DNA)
	if _, err := Search(d, idx, DefaultParams()); err == nil {
		t.Error("alphabet mismatch accepted")
	}
	tiny := seq.MustSeq("tiny", "AC", seq.Protein)
	if _, err := Search(tiny, idx, DefaultParams()); err == nil {
		t.Error("query shorter than word accepted")
	}
	if _, err := NewIndex([]*seq.Seq{d}, DefaultParams()); err == nil {
		t.Error("index accepted DNA sequence under protein matrix")
	}
}

func TestIndexCoverage(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 9)
	db := []*seq.Seq{g.Random("a", 100), g.Random("b", 50)}
	idx, err := NewIndex(db, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if idx.dbLen != 150 {
		t.Errorf("dbLen = %d", idx.dbLen)
	}
	total := 0
	for _, ps := range idx.words {
		total += len(ps)
	}
	want := (100 - 2) + (50 - 2) // words per sequence
	if total != want {
		t.Errorf("indexed %d words, want %d", total, want)
	}
}
