// Package align implements pairwise sequence alignment with affine gap
// penalties: Needleman-Wunsch global alignment, Smith-Waterman local
// alignment in Gotoh's formulation (the Fasta ssearch `dropgsw` kernel
// the paper profiles), linear-memory score-only variants (the form the
// DP kernels take on the simulator), semi-global scoring, banded
// alignment and BLAST-style X-drop gapped extension.
package align

import (
	"fmt"
	"strings"

	"bioperf5/internal/bio/score"
	"bioperf5/internal/bio/seq"
)

// negInf is a safely-addable minus infinity for DP initialization.
const negInf = int(-1) << 40

// OpKind is one edit operation kind in a traceback.
type OpKind uint8

// Edit operations: match/mismatch consumes both sequences, Delete
// consumes A only (gap in B), Insert consumes B only (gap in A).
const (
	OpMatch OpKind = iota
	OpDelete
	OpInsert
)

// EditOp is a run of identical edit operations.
type EditOp struct {
	Kind OpKind
	N    int
}

// Result is an alignment with its traceback.
type Result struct {
	A, B   *seq.Seq
	Score  int
	StartA int // offset of the aligned region in A
	StartB int
	EndA   int // one past the last aligned residue of A
	EndB   int
	Ops    []EditOp
}

func validate(a, b *seq.Seq, m *score.Matrix, gap score.Gap) error {
	if a.Alpha != m.Alpha || b.Alpha != m.Alpha {
		return fmt.Errorf("align: sequence/matrix alphabet mismatch")
	}
	return gap.Validate()
}

// dpTables holds the Gotoh matrices for traceback variants.
type dpTables struct {
	n, m    int
	h, e, f []int
}

func newTables(n, m int) *dpTables {
	size := (n + 1) * (m + 1)
	return &dpTables{n: n, m: m,
		h: make([]int, size), e: make([]int, size), f: make([]int, size)}
}

func (t *dpTables) idx(i, j int) int { return i*(t.m+1) + j }

// Global computes the optimal Needleman-Wunsch global alignment with
// affine gaps and full traceback.
func Global(a, b *seq.Seq, mat *score.Matrix, gap score.Gap) (*Result, error) {
	if err := validate(a, b, mat, gap); err != nil {
		return nil, err
	}
	n, m := a.Len(), b.Len()
	t := newTables(n, m)
	open := gap.Open + gap.Extend
	ext := gap.Extend

	t.h[t.idx(0, 0)] = 0
	for i := 1; i <= n; i++ {
		t.h[t.idx(i, 0)] = -(gap.Open + i*ext)
		t.e[t.idx(i, 0)] = negInf
		t.f[t.idx(i, 0)] = t.h[t.idx(i, 0)]
	}
	for j := 1; j <= m; j++ {
		t.h[t.idx(0, j)] = -(gap.Open + j*ext)
		t.e[t.idx(0, j)] = t.h[t.idx(0, j)]
		t.f[t.idx(0, j)] = negInf
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			ij := t.idx(i, j)
			up, left, diag := t.idx(i-1, j), t.idx(i, j-1), t.idx(i-1, j-1)
			// E: gap in A (consume B).
			e := t.e[left] - ext
			if v := t.h[left] - open; v > e {
				e = v
			}
			// F: gap in B (consume A).
			f := t.f[up] - ext
			if v := t.h[up] - open; v > f {
				f = v
			}
			g := t.h[diag] + mat.Score(a.Code[i-1], b.Code[j-1])
			h := g
			if e > h {
				h = e
			}
			if f > h {
				h = f
			}
			t.e[ij], t.f[ij], t.h[ij] = e, f, h
		}
	}
	ops := tracebackGlobal(t, a, b, mat, gap)
	return &Result{A: a, B: b, Score: t.h[t.idx(n, m)],
		StartA: 0, StartB: 0, EndA: n, EndB: m, Ops: ops}, nil
}

func tracebackGlobal(t *dpTables, a, b *seq.Seq, mat *score.Matrix, gap score.Gap) []EditOp {
	open := gap.Open + gap.Extend
	var rev []OpKind
	i, j := t.n, t.m
	// state 0 = H, 1 = E (gap in A), 2 = F (gap in B)
	state := 0
	for i > 0 || j > 0 {
		switch state {
		case 0:
			ij := t.idx(i, j)
			switch {
			case i > 0 && j > 0 && t.h[ij] == t.h[t.idx(i-1, j-1)]+mat.Score(a.Code[i-1], b.Code[j-1]):
				rev = append(rev, OpMatch)
				i--
				j--
			case j > 0 && t.h[ij] == t.e[ij]:
				state = 1
			case i > 0 && t.h[ij] == t.f[ij]:
				state = 2
			case j > 0: // boundary rows
				rev = append(rev, OpInsert)
				j--
			default:
				rev = append(rev, OpDelete)
				i--
			}
		case 1:
			ij := t.idx(i, j)
			left := t.idx(i, j-1)
			rev = append(rev, OpInsert)
			if t.e[ij] == t.h[left]-open {
				state = 0
			}
			j--
		case 2:
			ij := t.idx(i, j)
			up := t.idx(i-1, j)
			rev = append(rev, OpDelete)
			if t.f[ij] == t.h[up]-open {
				state = 0
			}
			i--
		}
	}
	return runLength(reverseOps(rev))
}

// Local computes the optimal Smith-Waterman local alignment (Gotoh
// affine gaps) with traceback — the dropgsw computation.
func Local(a, b *seq.Seq, mat *score.Matrix, gap score.Gap) (*Result, error) {
	if err := validate(a, b, mat, gap); err != nil {
		return nil, err
	}
	n, m := a.Len(), b.Len()
	t := newTables(n, m)
	open := gap.Open + gap.Extend
	ext := gap.Extend
	for i := 0; i <= n; i++ {
		t.e[t.idx(i, 0)] = negInf
		t.f[t.idx(i, 0)] = negInf
	}
	for j := 0; j <= m; j++ {
		t.e[t.idx(0, j)] = negInf
		t.f[t.idx(0, j)] = negInf
	}
	best, bi, bj := 0, 0, 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			ij := t.idx(i, j)
			up, left, diag := t.idx(i-1, j), t.idx(i, j-1), t.idx(i-1, j-1)
			e := t.e[left] - ext
			if v := t.h[left] - open; v > e {
				e = v
			}
			f := t.f[up] - ext
			if v := t.h[up] - open; v > f {
				f = v
			}
			h := t.h[diag] + mat.Score(a.Code[i-1], b.Code[j-1])
			if e > h {
				h = e
			}
			if f > h {
				h = f
			}
			if h < 0 {
				h = 0
			}
			t.e[ij], t.f[ij], t.h[ij] = e, f, h
			if h > best {
				best, bi, bj = h, i, j
			}
		}
	}
	res := &Result{A: a, B: b, Score: best, EndA: bi, EndB: bj}
	res.Ops, res.StartA, res.StartB = tracebackLocal(t, a, b, mat, gap, bi, bj)
	return res, nil
}

func tracebackLocal(t *dpTables, a, b *seq.Seq, mat *score.Matrix, gap score.Gap, bi, bj int) ([]EditOp, int, int) {
	open := gap.Open + gap.Extend
	var rev []OpKind
	i, j := bi, bj
	state := 0
	for i > 0 && j > 0 {
		ij := t.idx(i, j)
		if state == 0 && t.h[ij] == 0 {
			break
		}
		switch state {
		case 0:
			switch {
			case t.h[ij] == t.h[t.idx(i-1, j-1)]+mat.Score(a.Code[i-1], b.Code[j-1]):
				rev = append(rev, OpMatch)
				i--
				j--
			case t.h[ij] == t.e[ij]:
				state = 1
			default:
				state = 2
			}
		case 1:
			left := t.idx(i, j-1)
			rev = append(rev, OpInsert)
			if t.e[ij] == t.h[left]-open {
				state = 0
			}
			j--
		case 2:
			up := t.idx(i-1, j)
			rev = append(rev, OpDelete)
			if t.f[ij] == t.h[up]-open {
				state = 0
			}
			i--
		}
	}
	return runLength(reverseOps(rev)), i, j
}

func reverseOps(rev []OpKind) []OpKind {
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

func runLength(ops []OpKind) []EditOp {
	var out []EditOp
	for _, op := range ops {
		if len(out) > 0 && out[len(out)-1].Kind == op {
			out[len(out)-1].N++
		} else {
			out = append(out, EditOp{Kind: op, N: 1})
		}
	}
	return out
}

// Identity returns matched-identical residues over aligned columns.
func (r *Result) Identity() float64 {
	ai, bi := r.StartA, r.StartB
	cols, same := 0, 0
	for _, op := range r.Ops {
		for k := 0; k < op.N; k++ {
			cols++
			switch op.Kind {
			case OpMatch:
				if r.A.Code[ai] == r.B.Code[bi] {
					same++
				}
				ai++
				bi++
			case OpDelete:
				ai++
			case OpInsert:
				bi++
			}
		}
	}
	if cols == 0 {
		return 0
	}
	return float64(same) / float64(cols)
}

// Format renders the alignment in a blast-like three-line layout.
func (r *Result) Format(width int) string {
	if width <= 0 {
		width = 60
	}
	var la, lm, lb []byte
	ai, bi := r.StartA, r.StartB
	for _, op := range r.Ops {
		for k := 0; k < op.N; k++ {
			switch op.Kind {
			case OpMatch:
				ca := r.A.Alpha.Letter(r.A.Code[ai])
				cb := r.B.Alpha.Letter(r.B.Code[bi])
				la = append(la, ca)
				lb = append(lb, cb)
				if ca == cb {
					lm = append(lm, '|')
				} else {
					lm = append(lm, ' ')
				}
				ai++
				bi++
			case OpDelete:
				la = append(la, r.A.Alpha.Letter(r.A.Code[ai]))
				lb = append(lb, '-')
				lm = append(lm, ' ')
				ai++
			case OpInsert:
				la = append(la, '-')
				lb = append(lb, r.B.Alpha.Letter(r.B.Code[bi]))
				lm = append(lm, ' ')
				bi++
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s vs %s  score=%d  identity=%.1f%%\n",
		r.A.ID, r.B.ID, r.Score, 100*r.Identity())
	for off := 0; off < len(la); off += width {
		hi := off + width
		if hi > len(la) {
			hi = len(la)
		}
		fmt.Fprintf(&sb, "A: %s\n   %s\nB: %s\n", la[off:hi], lm[off:hi], lb[off:hi])
	}
	return sb.String()
}

// AlignedLength returns the number of alignment columns.
func (r *Result) AlignedLength() int {
	n := 0
	for _, op := range r.Ops {
		n += op.N
	}
	return n
}
