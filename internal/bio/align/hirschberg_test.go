package align

import (
	"testing"

	"bioperf5/internal/bio/score"
	"bioperf5/internal/bio/seq"
)

// checkMM verifies Myers-Miller against the quadratic-space Global on
// one pair: same optimal score, and a structurally valid traceback.
func checkMM(t *testing.T, a, b *seq.Seq, mat *score.Matrix, gap score.Gap) {
	t.Helper()
	full, err := Global(a, b, mat, gap)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := MyersMiller(a, b, mat, gap)
	if err != nil {
		t.Fatal(err)
	}
	if lin.Score != full.Score {
		t.Errorf("%s vs %s: Myers-Miller score %d != Global %d",
			a.ID, b.ID, lin.Score, full.Score)
	}
	// The traceback must consume both sequences exactly.
	if got := rescore(t, lin, mat, gap); got != lin.Score {
		t.Errorf("%s vs %s: ops rescore to %d, header %d", a.ID, b.ID, got, lin.Score)
	}
}

func TestMyersMillerMatchesGlobalRandomPairs(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 17)
	for trial := 0; trial < 25; trial++ {
		n := 1 + trial*3
		m := 1 + (trial*7)%60
		a := g.Random("a", n)
		b := g.Random("b", m)
		checkMM(t, a, b, score.BLOSUM62, score.DefaultProteinGap)
	}
}

func TestMyersMillerMatchesGlobalHomologs(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 18)
	for trial := 0; trial < 10; trial++ {
		a := g.Random("a", 80)
		b := g.Mutate(a, "b", 0.7, 0.05)
		checkMM(t, a, b, score.BLOSUM62, score.ClustalWGap)
		checkMM(t, a, b, score.BLOSUM50, score.Gap{Open: 10, Extend: 2})
	}
}

func TestMyersMillerDegenerateShapes(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 19)
	long := g.Random("long", 40)
	one := g.Random("one", 1)
	two := g.Random("two", 2)
	cases := [][2]*seq.Seq{
		{one, one}, {one, long}, {long, one},
		{two, long}, {long, two}, {two, two},
	}
	for _, c := range cases {
		checkMM(t, c[0], c[1], score.BLOSUM62, score.DefaultProteinGap)
	}
}

func TestMyersMillerIdentical(t *testing.T) {
	s := seq.MustSeq("s", "ACDEFGHIKLMNPQRSTVWYACDEFGHIKL", seq.Protein)
	lin, err := MyersMiller(s, s, score.BLOSUM62, score.DefaultProteinGap)
	if err != nil {
		t.Fatal(err)
	}
	if len(lin.Ops) != 1 || lin.Ops[0].Kind != OpMatch || lin.Ops[0].N != s.Len() {
		t.Errorf("self alignment ops = %+v", lin.Ops)
	}
}

func TestMyersMillerLongGapMerging(t *testing.T) {
	// A long deletion spanning many divide boundaries must still be
	// charged a single gap open (the type-2 crossing logic).
	g := seq.NewGenerator(seq.Protein, 20)
	b := g.Random("b", 30)
	mid := g.Random("gapfill", 40)
	a := &seq.Seq{ID: "a", Alpha: seq.Protein,
		Code: append(append(append([]byte{}, b.Code[:15]...), mid.Code...), b.Code[15:]...)}
	checkMM(t, a, b, score.BLOSUM62, score.DefaultProteinGap)
}

func TestMyersMillerRejectsAlphabetMismatch(t *testing.T) {
	p := seq.MustSeq("p", "ACDE", seq.Protein)
	d := seq.MustSeq("d", "ACGT", seq.DNA)
	if _, err := MyersMiller(p, d, score.BLOSUM62, score.DefaultProteinGap); err == nil {
		t.Error("alphabet mismatch accepted")
	}
}
