package align

import (
	"bioperf5/internal/bio/score"
	"bioperf5/internal/bio/seq"
)

// X-drop extension, the algorithmic core of BLAST: from a seed hit the
// alignment is extended while the running score stays within X of the
// best seen, so the DP explores only a self-limiting band around the
// optimum.  The gapped form is the SEMI_G_ALIGN_EX computation the
// paper finds Blast spending >40% of its time in.

// XDropUngapped extends a w-long seed at a[ai:]≈b[bi:] in both
// directions without gaps.  It returns the total segment score and the
// extended segment boundaries [loA, hiA) in a.
func XDropUngapped(a, b *seq.Seq, ai, bi, w int, mat *score.Matrix, x int) (sc, loA, hiA int) {
	// Seed score.
	s := 0
	for k := 0; k < w; k++ {
		s += mat.Score(a.Code[ai+k], b.Code[bi+k])
	}
	// Right extension.
	best := s
	cur := s
	endA := ai + w
	i, j := ai+w, bi+w
	for i < a.Len() && j < b.Len() {
		cur += mat.Score(a.Code[i], b.Code[j])
		i++
		j++
		if cur > best {
			best = cur
			endA = i
		}
		if cur < best-x {
			break
		}
	}
	// Left extension.
	cur = best
	total := best
	startA := ai
	i, j = ai-1, bi-1
	for i >= 0 && j >= 0 {
		cur += mat.Score(a.Code[i], b.Code[j])
		if cur > total {
			total = cur
			startA = i
		}
		if cur < total-x {
			break
		}
		i--
		j--
	}
	return total, startA, endA
}

// XDropGapped extends a gapped alignment forward from (si, sj): it
// aligns a[si:] against b[sj:] with affine gaps, abandoning any DP cell
// whose score falls more than x below the best score seen, and returns
// the best score reached (>= 0: extension can stop at the seed).  The
// backward direction is obtained by calling it on reversed sequences.
func XDropGapped(a, b *seq.Seq, si, sj int, mat *score.Matrix, gap score.Gap, x int) int {
	n := a.Len() - si
	m := b.Len() - sj
	if n <= 0 || m <= 0 {
		return 0
	}
	open := gap.Open + gap.Extend
	ext := gap.Extend

	h := make([]int, m+1)
	e := make([]int, m+1)
	// Row 0: gaps in a.
	h[0] = 0
	best := 0
	lo, hi := 0, 0
	for j := 1; j <= m; j++ {
		v := -(gap.Open + j*ext)
		if v < best-x {
			break
		}
		h[j] = v
		e[j] = v
		hi = j
	}
	for j := hi + 1; j <= m; j++ {
		h[j] = negInf
		e[j] = negInf
	}

	for i := 1; i <= n && lo <= hi; i++ {
		diag := negInf
		if lo == 0 {
			diag = h[0]
			if v := -(gap.Open + i*ext); v >= best-x {
				h[0] = v
			} else {
				h[0] = negInf
				lo = 1
			}
		} else if lo >= 1 {
			diag = h[lo-1]
			if lo-1 >= 0 {
				h[lo-1] = negInf
			}
		}
		f := negInf
		newLo, newHi := -1, lo-1
		row := mat.Row(a.Code[si+i-1])
		limJ := hi + 1
		if limJ > m {
			limJ = m
		}
		for j := maxInt(lo, 1); j <= limJ; j++ {
			ev := e[j] - ext
			if v := h[j] - open; v > ev {
				ev = v
			}
			fv := f - ext
			if v := h[j-1] - open; v > fv {
				fv = v
			}
			hv := negInf
			if diag > negInf {
				hv = diag + int(row[b.Code[sj+j-1]])
			}
			if ev > hv {
				hv = ev
			}
			if fv > hv {
				hv = fv
			}
			diag = h[j]
			if hv < best-x {
				hv = negInf
				ev = negInf
				fv = negInf
			} else {
				if newLo < 0 {
					newLo = j
				}
				newHi = j
				if hv > best {
					best = hv
				}
			}
			h[j], e[j], f = hv, ev, fv
		}
		if newLo < 0 {
			break // the whole row dropped: extension finished
		}
		lo = newLo
		hi = newHi + 1 // the band can grow one cell right per row
	}
	return best
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Reversed returns a copy of s with residue order reversed (for
// leftward X-drop extensions).
func Reversed(s *seq.Seq) *seq.Seq {
	code := make([]byte, len(s.Code))
	for i, c := range s.Code {
		code[len(code)-1-i] = c
	}
	return &seq.Seq{ID: s.ID + "_rev", Code: code, Alpha: s.Alpha}
}
