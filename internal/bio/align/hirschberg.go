package align

import (
	"bioperf5/internal/bio/score"
	"bioperf5/internal/bio/seq"
)

// MyersMiller computes the optimal global alignment with affine gaps in
// linear space using the Myers-Miller (1988) divide-and-conquer — the
// algorithm ClustalW's diff()/forward_pass/reverse_pass implement.  It
// produces the same score as Global but needs O(min(n,m)) working
// memory instead of O(n*m), which is what makes ClustalW able to align
// long sequences at all.
func MyersMiller(a, b *seq.Seq, mat *score.Matrix, gap score.Gap) (*Result, error) {
	if err := validate(a, b, mat, gap); err != nil {
		return nil, err
	}
	mm := &mmState{mat: mat, g: gap.Open, h: gap.Extend}
	var ops []OpKind
	mm.diff(a.Code, b.Code, mm.g, mm.g, &ops)
	res := &Result{A: a, B: b, StartA: 0, StartB: 0, EndA: a.Len(), EndB: b.Len(),
		Ops: runLength(ops)}
	res.Score = scoreOps(res, mat, gap)
	return res, nil
}

// scoreOps evaluates an alignment's standard affine-gap score.
func scoreOps(r *Result, mat *score.Matrix, gap score.Gap) int {
	ai, bi := r.StartA, r.StartB
	total := 0
	for _, op := range r.Ops {
		switch op.Kind {
		case OpMatch:
			for k := 0; k < op.N; k++ {
				total += mat.Score(r.A.Code[ai], r.B.Code[bi])
				ai++
				bi++
			}
		case OpDelete:
			total -= gap.Open + op.N*gap.Extend
			ai += op.N
		case OpInsert:
			total -= gap.Open + op.N*gap.Extend
			bi += op.N
		}
	}
	return total
}

type mmState struct {
	mat  *score.Matrix
	g, h int // gap open / extend (positive costs)
}

// gapFull is the cost of a fresh gap of length k.
func (m *mmState) gapFull(k int) int {
	if k <= 0 {
		return 0
	}
	return m.g + m.h*k
}

// diff emits the optimal edit script for aligning A against B, where tb
// and te are the open costs of a deletion gap (gap in B) touching the
// top and bottom boundaries — zero when the parent already opened that
// gap across the split.
func (m *mmState) diff(A, B []byte, tb, te int, ops *[]OpKind) {
	N, M := len(A), len(B)
	switch {
	case M == 0:
		for i := 0; i < N; i++ {
			*ops = append(*ops, OpDelete)
		}
		return
	case N == 0:
		for j := 0; j < M; j++ {
			*ops = append(*ops, OpInsert)
		}
		return
	case N == 1:
		m.base1(A[0], B, tb, te, ops)
		return
	}

	mid := N / 2
	// Forward pass over rows 1..mid.
	cc, dd := m.forward(A[:mid], B, tb)
	// Reverse pass over rows mid+1..N (reversed).
	rr, ss := m.reverse(A[mid:], B, te)

	// Midpoint: best column j and crossing type.
	bestJ, bestType := 0, 1
	best := cc[0] + rr[0]
	for j := 0; j <= M; j++ {
		if v := cc[j] + rr[j]; v > best {
			best, bestJ, bestType = v, j, 1
		}
		if v := dd[j] + ss[j] + m.g; v > best {
			best, bestJ, bestType = v, j, 2
		}
	}

	if bestType == 1 {
		m.diff(A[:mid], B[:bestJ], tb, m.g, ops)
		m.diff(A[mid:], B[bestJ:], m.g, te, ops)
		return
	}
	// Type 2: a deletion gap crosses the split, consuming A[mid-1] and
	// A[mid]; the sub-problems see an already-open gap at the shared
	// boundary.
	m.diff(A[:mid-1], B[:bestJ], tb, 0, ops)
	*ops = append(*ops, OpDelete, OpDelete)
	m.diff(A[mid+1:], B[bestJ:], 0, te, ops)
}

// base1 aligns the single residue x against B optimally.
func (m *mmState) base1(x byte, B []byte, tb, te int, ops *[]OpKind) {
	M := len(B)
	// Option 1: delete x (open cost is the cheaper boundary) and insert
	// all of B.
	bestScore := -(min(tb, te) + m.h) - m.gapFull(M)
	bestJ := -1
	// Option 2: match x against B[j].
	row := m.mat.Row(x)
	for j := 0; j < M; j++ {
		v := -m.gapFull(j) + int(row[B[j]]) - m.gapFull(M-1-j)
		if v > bestScore {
			bestScore, bestJ = v, j
		}
	}
	if bestJ < 0 {
		*ops = append(*ops, OpDelete)
		for j := 0; j < M; j++ {
			*ops = append(*ops, OpInsert)
		}
		return
	}
	for j := 0; j < bestJ; j++ {
		*ops = append(*ops, OpInsert)
	}
	*ops = append(*ops, OpMatch)
	for j := bestJ + 1; j < M; j++ {
		*ops = append(*ops, OpInsert)
	}
}

// forward computes CC[j] (best score of aligning A against B[:j]) and
// DD[j] (best score ending in an open deletion at the bottom row), with
// tb as the open cost of deletions starting at the top row — ClustalW's
// forward_pass inside diff().
func (m *mmState) forward(A, B []byte, tb int) (cc, dd []int) {
	N, M := len(A), len(B)
	cc = make([]int, M+1)
	dd = make([]int, M+1)
	for j := 1; j <= M; j++ {
		cc[j] = -m.gapFull(j)
		dd[j] = negInf
	}
	dd[0] = negInf
	for i := 1; i <= N; i++ {
		open := m.g
		if i == 1 {
			open = tb
		}
		diag := cc[0]
		cc[0] = -(tb + m.h*i) // pure deletion down the left edge
		e := negInf           // insertion state in this row
		for j := 1; j <= M; j++ {
			// Deletion (gap in B): extend dd[j] or open from cc[j].
			d := dd[j] - m.h
			if v := cc[j] - open - m.h; v > d {
				d = v
			}
			// Insertion (gap in A): extend e or open from cc[j-1].
			e -= m.h
			if v := cc[j-1] - m.g - m.h; v > e {
				e = v
			}
			c := diag + m.mat.Score(A[i-1], B[j-1])
			if d > c {
				c = d
			}
			if e > c {
				c = e
			}
			diag = cc[j]
			cc[j] = c
			dd[j] = d
		}
	}
	// dd[0]: pure deletion of all of A, which is itself an open
	// deletion state at the bottom row.
	dd[0] = -(tb + m.h*N)
	return cc, dd
}

// reverse is forward on the reversed problem: RR[j] aligns A (the
// bottom half) against B[j:], SS[j] additionally ends in an open
// deletion at the top (the split boundary), with te the open cost of
// deletions touching the bottom boundary.
func (m *mmState) reverse(A, B []byte, te int) (rr, ss []int) {
	ar := reverseBytes(A)
	br := reverseBytes(B)
	cc, dd := m.forward(ar, br, te)
	M := len(B)
	rr = make([]int, M+1)
	ss = make([]int, M+1)
	for j := 0; j <= M; j++ {
		rr[j] = cc[M-j]
		ss[j] = dd[M-j]
	}
	return rr, ss
}

func reverseBytes(b []byte) []byte {
	out := make([]byte, len(b))
	for i := range b {
		out[len(b)-1-i] = b[i]
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
