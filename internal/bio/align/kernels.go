package align

import (
	"bioperf5/internal/bio/score"
	"bioperf5/internal/bio/seq"
)

// This file holds the linear-memory, score-only forms of the DP
// recurrences — the exact loops the paper's applications spend their
// time in (dropgsw for ssearch, forward_pass for clustalw), and the
// reference semantics the simulated kernels (package kernels) are
// validated against.

// LocalScore computes the Smith-Waterman Gotoh local alignment score
// using two rolling rows — the dropgsw kernel.
func LocalScore(a, b *seq.Seq, mat *score.Matrix, gap score.Gap) (int, error) {
	if err := validate(a, b, mat, gap); err != nil {
		return 0, err
	}
	n, m := a.Len(), b.Len()
	open := gap.Open + gap.Extend
	ext := gap.Extend
	h := make([]int, m+1) // H of previous row, updated in place
	e := make([]int, m+1) // E of current column positions
	for j := range e {
		e[j] = negInf
	}
	best := 0
	for i := 1; i <= n; i++ {
		f := negInf
		diag := h[0] // H[i-1][0] = 0 for local
		row := mat.Row(a.Code[i-1])
		for j := 1; j <= m; j++ {
			// max statements below are the hard-to-predict branches of
			// Section III when compiled naively.
			ev := e[j] - ext
			if v := h[j] - open; v > ev {
				ev = v
			}
			fv := f - ext
			if v := h[j-1] - open; v > fv {
				fv = v
			}
			hv := diag + int(row[b.Code[j-1]])
			if ev > hv {
				hv = ev
			}
			if fv > hv {
				hv = fv
			}
			if hv < 0 {
				hv = 0
			}
			diag = h[j]
			h[j], e[j], f = hv, ev, fv
			if hv > best {
				best = hv
			}
		}
	}
	return best, nil
}

// GlobalScore computes the Needleman-Wunsch Gotoh global score with two
// rolling rows — ClustalW's forward_pass recurrence.
func GlobalScore(a, b *seq.Seq, mat *score.Matrix, gap score.Gap) (int, error) {
	if err := validate(a, b, mat, gap); err != nil {
		return 0, err
	}
	n, m := a.Len(), b.Len()
	open := gap.Open + gap.Extend
	ext := gap.Extend
	h := make([]int, m+1)
	e := make([]int, m+1)
	for j := 1; j <= m; j++ {
		h[j] = -(gap.Open + j*ext)
		e[j] = h[j]
	}
	for i := 1; i <= n; i++ {
		diag := h[0]
		h[0] = -(gap.Open + i*ext)
		f := h[0]
		row := mat.Row(a.Code[i-1])
		for j := 1; j <= m; j++ {
			ev := e[j] - ext
			if v := h[j] - open; v > ev {
				ev = v
			}
			fv := f - ext
			if v := h[j-1] - open; v > fv {
				fv = v
			}
			hv := diag + int(row[b.Code[j-1]])
			if ev > hv {
				hv = ev
			}
			if fv > hv {
				hv = fv
			}
			diag = h[j]
			h[j], e[j], f = hv, ev, fv
		}
	}
	return h[m], nil
}

// SemiGlobalScore scores an alignment global in a but free at b's ends
// (used by hmm-like scans and by tests as an invariant cross-check).
func SemiGlobalScore(a, b *seq.Seq, mat *score.Matrix, gap score.Gap) (int, error) {
	if err := validate(a, b, mat, gap); err != nil {
		return 0, err
	}
	n, m := a.Len(), b.Len()
	open := gap.Open + gap.Extend
	ext := gap.Extend
	h := make([]int, m+1)
	e := make([]int, m+1)
	for j := range e {
		e[j] = negInf
	}
	for i := 1; i <= n; i++ {
		diag := h[0]
		h[0] = -(gap.Open + i*ext)
		f := negInf
		row := mat.Row(a.Code[i-1])
		for j := 1; j <= m; j++ {
			ev := e[j] - ext
			if v := h[j] - open; v > ev {
				ev = v
			}
			fv := f - ext
			if v := h[j-1] - open; v > fv {
				fv = v
			}
			hv := diag + int(row[b.Code[j-1]])
			if ev > hv {
				hv = ev
			}
			if fv > hv {
				hv = fv
			}
			diag = h[j]
			h[j], e[j], f = hv, ev, fv
		}
	}
	best := negInf
	for j := 0; j <= m; j++ {
		if h[j] > best {
			best = h[j]
		}
	}
	return best, nil
}

// BandedGlobalScore is GlobalScore restricted to |i-j| <= band; BLAST's
// gapped phase uses banded DP around the seed diagonal.
func BandedGlobalScore(a, b *seq.Seq, mat *score.Matrix, gap score.Gap, band int) (int, error) {
	if err := validate(a, b, mat, gap); err != nil {
		return 0, err
	}
	if band < 1 {
		band = 1
	}
	n, m := a.Len(), b.Len()
	if d := n - m; d < 0 {
		if -d > band {
			band = -d
		}
	} else if d > band {
		band = d
	}
	open := gap.Open + gap.Extend
	ext := gap.Extend
	h := make([]int, m+1)
	e := make([]int, m+1)
	prevH := make([]int, m+1)
	for j := 0; j <= m; j++ {
		e[j] = negInf
		if j <= band {
			h[j] = -(gap.Open + j*ext)
			if j == 0 {
				h[0] = 0
			}
		} else {
			h[j] = negInf
		}
	}
	for i := 1; i <= n; i++ {
		copy(prevH, h)
		lo := i - band
		if lo < 1 {
			lo = 1
		}
		hi := i + band
		if hi > m {
			hi = m
		}
		if lo > 1 {
			h[lo-1] = negInf
		}
		if i <= band {
			h[0] = -(gap.Open + i*ext)
		} else {
			h[0] = negInf
		}
		f := negInf
		row := mat.Row(a.Code[i-1])
		for j := lo; j <= hi; j++ {
			ev := negInf
			if prevH[j] != negInf || e[j] != negInf {
				ev = e[j] - ext
				if v := prevH[j] - open; v > ev {
					ev = v
				}
			}
			fv := negInf
			if f != negInf || h[j-1] != negInf {
				fv = f - ext
				if v := h[j-1] - open; v > fv {
					fv = v
				}
			}
			hv := negInf
			if prevH[j-1] != negInf {
				hv = prevH[j-1] + int(row[b.Code[j-1]])
			}
			if ev > hv {
				hv = ev
			}
			if fv > hv {
				hv = fv
			}
			h[j], e[j], f = hv, ev, fv
		}
		if hi < m {
			h[hi+1] = negInf
		}
	}
	return h[m], nil
}
