package align

import (
	"math/rand"
	"strings"
	"testing"

	"bioperf5/internal/bio/score"
	"bioperf5/internal/bio/seq"
)

var (
	b62 = score.BLOSUM62
	g11 = score.DefaultProteinGap
)

// rescore recomputes an alignment's score from its traceback,
// independently of the DP that produced it.
func rescore(t *testing.T, r *Result, mat *score.Matrix, gap score.Gap) int {
	t.Helper()
	ai, bi := r.StartA, r.StartB
	total := 0
	for _, op := range r.Ops {
		switch op.Kind {
		case OpMatch:
			for k := 0; k < op.N; k++ {
				total += mat.Score(r.A.Code[ai], r.B.Code[bi])
				ai++
				bi++
			}
		case OpDelete:
			total -= gap.Open + op.N*gap.Extend
			ai += op.N
		case OpInsert:
			total -= gap.Open + op.N*gap.Extend
			bi += op.N
		}
	}
	if ai != r.EndA || bi != r.EndB {
		t.Fatalf("traceback consumes to (%d,%d), header says (%d,%d)", ai, bi, r.EndA, r.EndB)
	}
	return total
}

func randSeqs(t *testing.T, seed int64, n, m int) (*seq.Seq, *seq.Seq) {
	t.Helper()
	g := seq.NewGenerator(seq.Protein, seed)
	a := g.Random("a", n)
	b := g.Mutate(a, "b", 0.6, 0.05)
	for b.Len() < m {
		b = g.Random("b", m)
	}
	return a, b.Sub(0, m)
}

func TestGlobalIdenticalSequences(t *testing.T) {
	s := seq.MustSeq("s", "ACDEFGHIKLMNPQRSTVWY", seq.Protein)
	r, err := Global(s, s, b62, g11)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, c := range s.Code {
		want += b62.Score(c, c)
	}
	if r.Score != want {
		t.Errorf("self-alignment score = %d, want %d", r.Score, want)
	}
	if len(r.Ops) != 1 || r.Ops[0].Kind != OpMatch || r.Ops[0].N != s.Len() {
		t.Errorf("self-alignment ops = %+v", r.Ops)
	}
	if r.Identity() != 1.0 {
		t.Errorf("identity = %f", r.Identity())
	}
}

func TestGlobalKnownSmallCase(t *testing.T) {
	// A vs AA: one residue must gap. Score = s(A,A) - (open + 1*ext).
	a := seq.MustSeq("a", "A", seq.Protein)
	b := seq.MustSeq("b", "AA", seq.Protein)
	r, err := Global(a, b, b62, g11)
	if err != nil {
		t.Fatal(err)
	}
	want := b62.Score(0, 0) - (g11.Open + g11.Extend)
	if r.Score != want {
		t.Errorf("score = %d, want %d", r.Score, want)
	}
}

func TestGlobalEqualsRollingScore(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		a, b := randSeqs(t, seed, 40+int(seed), 35)
		full, err := Global(a, b, b62, g11)
		if err != nil {
			t.Fatal(err)
		}
		rolling, err := GlobalScore(a, b, b62, g11)
		if err != nil {
			t.Fatal(err)
		}
		if full.Score != rolling {
			t.Errorf("seed %d: full %d != rolling %d", seed, full.Score, rolling)
		}
		if got := rescore(t, full, b62, g11); got != full.Score {
			t.Errorf("seed %d: traceback rescores to %d, header %d", seed, got, full.Score)
		}
	}
}

func TestLocalEqualsRollingScore(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		a, b := randSeqs(t, 100+seed, 50, 45)
		full, err := Local(a, b, b62, g11)
		if err != nil {
			t.Fatal(err)
		}
		rolling, err := LocalScore(a, b, b62, g11)
		if err != nil {
			t.Fatal(err)
		}
		if full.Score != rolling {
			t.Errorf("seed %d: full %d != rolling %d", seed, full.Score, rolling)
		}
		if got := rescore(t, full, b62, g11); got != full.Score {
			t.Errorf("seed %d: local traceback rescores to %d, header %d", seed, got, full.Score)
		}
	}
}

func TestScoreSymmetry(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		a, b := randSeqs(t, 200+seed, 30, 33)
		sab, err := LocalScore(a, b, b62, g11)
		if err != nil {
			t.Fatal(err)
		}
		sba, err := LocalScore(b, a, b62, g11)
		if err != nil {
			t.Fatal(err)
		}
		if sab != sba {
			t.Errorf("seed %d: local score asymmetric: %d vs %d", seed, sab, sba)
		}
		gab, _ := GlobalScore(a, b, b62, g11)
		gba, _ := GlobalScore(b, a, b62, g11)
		if gab != gba {
			t.Errorf("seed %d: global score asymmetric: %d vs %d", seed, gab, gba)
		}
	}
}

func TestLocalNonNegativeAndAtLeastGlobal(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		a, b := randSeqs(t, 300+seed, 25, 40)
		l, err := LocalScore(a, b, b62, g11)
		if err != nil {
			t.Fatal(err)
		}
		g, err := GlobalScore(a, b, b62, g11)
		if err != nil {
			t.Fatal(err)
		}
		if l < 0 {
			t.Errorf("local score %d < 0", l)
		}
		if l < g {
			t.Errorf("local %d < global %d: local may drop poor prefixes/suffixes", l, g)
		}
	}
}

func TestLocalFindsPlantedMotif(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 77)
	motif := g.Random("motif", 25)
	left := g.Random("l", 40)
	right := g.Random("r", 40)
	host := &seq.Seq{ID: "host", Alpha: seq.Protein,
		Code: append(append(append([]byte{}, left.Code...), motif.Code...), right.Code...)}
	r, err := Local(motif, host, b62, g11)
	if err != nil {
		t.Fatal(err)
	}
	self := 0
	for _, c := range motif.Code {
		self += b62.Score(c, c)
	}
	if r.Score < self {
		t.Errorf("planted motif scored %d, self-score %d", r.Score, self)
	}
	if r.StartB != left.Len() || r.EndB != left.Len()+motif.Len() {
		t.Errorf("motif located at [%d,%d), planted at [%d,%d)",
			r.StartB, r.EndB, left.Len(), left.Len()+motif.Len())
	}
}

func TestSemiGlobalBetweenLocalAndGlobal(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		a, b := randSeqs(t, 400+seed, 20, 50)
		l, _ := LocalScore(a, b, b62, g11)
		sg, err := SemiGlobalScore(a, b, b62, g11)
		if err != nil {
			t.Fatal(err)
		}
		g, _ := GlobalScore(a, b, b62, g11)
		if sg > l {
			t.Errorf("seed %d: semiglobal %d > local %d", seed, sg, l)
		}
		if sg < g {
			t.Errorf("seed %d: semiglobal %d < global %d", seed, sg, g)
		}
	}
}

func TestBandedWideBandEqualsGlobal(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		a, b := randSeqs(t, 500+seed, 30, 28)
		g, _ := GlobalScore(a, b, b62, g11)
		wide, err := BandedGlobalScore(a, b, b62, g11, 100)
		if err != nil {
			t.Fatal(err)
		}
		if wide != g {
			t.Errorf("seed %d: wide band %d != global %d", seed, wide, g)
		}
	}
}

func TestBandedNarrowBandIsLowerBound(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		a, b := randSeqs(t, 600+seed, 40, 40)
		g, _ := GlobalScore(a, b, b62, g11)
		narrow, err := BandedGlobalScore(a, b, b62, g11, 2)
		if err != nil {
			t.Fatal(err)
		}
		if narrow > g {
			t.Errorf("seed %d: banded %d exceeds global optimum %d", seed, narrow, g)
		}
	}
}

func TestXDropUngappedExtendsPlantedSegment(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 42)
	shared := g.Random("shared", 30)
	a := &seq.Seq{ID: "a", Alpha: seq.Protein,
		Code: append(append([]byte{}, g.Random("al", 20).Code...), shared.Code...)}
	a.Code = append(a.Code, g.Random("ar", 20).Code...)
	b := &seq.Seq{ID: "b", Alpha: seq.Protein,
		Code: append(append([]byte{}, g.Random("bl", 10).Code...), shared.Code...)}
	b.Code = append(b.Code, g.Random("br", 15).Code...)

	// Seed in the middle of the shared segment (word length 3).
	ai, bi := 20+12, 10+12
	sc, loA, hiA := XDropUngapped(a, b, ai, bi, 3, b62, 15)
	selfScore := 0
	for _, c := range shared.Code {
		selfScore += b62.Score(c, c)
	}
	if sc < selfScore {
		t.Errorf("extension score %d below shared self-score %d", sc, selfScore)
	}
	if loA > 20 || hiA < 20+30 {
		t.Errorf("extension [%d,%d) does not cover planted [20,50)", loA, hiA)
	}
}

// xdropReference computes, by unrestricted DP, the best score over all
// alignments of prefixes of a[si:] and b[sj:] anchored at the seed —
// what XDropGapped approximates with pruning.
func xdropReference(a, b *seq.Seq, si, sj int, mat *score.Matrix, gap score.Gap) int {
	n, m := a.Len()-si, b.Len()-sj
	open := gap.Open + gap.Extend
	ext := gap.Extend
	h := make([][]int, n+1)
	e := make([][]int, n+1)
	f := make([][]int, n+1)
	for i := range h {
		h[i] = make([]int, m+1)
		e[i] = make([]int, m+1)
		f[i] = make([]int, m+1)
	}
	best := 0
	for i := 0; i <= n; i++ {
		for j := 0; j <= m; j++ {
			if i == 0 && j == 0 {
				e[0][0], f[0][0] = negInf, negInf
				continue
			}
			ev, fv, hv := negInf, negInf, negInf
			if j > 0 {
				ev = e[i][j-1] - ext
				if v := h[i][j-1] - open; v > ev {
					ev = v
				}
			}
			if i > 0 {
				fv = f[i-1][j] - ext
				if v := h[i-1][j] - open; v > fv {
					fv = v
				}
			}
			if i > 0 && j > 0 {
				hv = h[i-1][j-1] + mat.Score(a.Code[si+i-1], b.Code[sj+j-1])
			}
			if ev > hv {
				hv = ev
			}
			if fv > hv {
				hv = fv
			}
			e[i][j], f[i][j], h[i][j] = ev, fv, hv
			if hv > best {
				best = hv
			}
		}
	}
	return best
}

func TestXDropGappedGenerousXMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := seq.NewGenerator(seq.Protein, 700+seed)
		a := g.Random("a", 30)
		b := g.Mutate(a, "b", 0.7, 0.05)
		got := XDropGapped(a, b, 0, 0, b62, g11, 10000)
		want := xdropReference(a, b, 0, 0, b62, g11)
		if got != want {
			t.Errorf("seed %d: xdrop %d != reference %d", seed, got, want)
		}
	}
}

func TestXDropGappedTightXIsLowerBound(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := seq.NewGenerator(seq.Protein, 800+seed)
		a := g.Random("a", 60)
		b := g.Mutate(a, "b", 0.6, 0.05)
		tight := XDropGapped(a, b, 0, 0, b62, g11, 12)
		ref := xdropReference(a, b, 0, 0, b62, g11)
		if tight > ref {
			t.Errorf("seed %d: pruned score %d exceeds reference %d", seed, tight, ref)
		}
		if tight < 0 {
			t.Errorf("seed %d: xdrop returned negative %d", seed, tight)
		}
	}
}

func TestXDropGappedEmptyRemainder(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 1)
	a := g.Random("a", 5)
	b := g.Random("b", 5)
	if got := XDropGapped(a, b, 5, 0, b62, g11, 20); got != 0 {
		t.Errorf("empty a remainder: %d, want 0", got)
	}
	if got := XDropGapped(a, b, 0, 5, b62, g11, 20); got != 0 {
		t.Errorf("empty b remainder: %d, want 0", got)
	}
}

func TestReversed(t *testing.T) {
	s := seq.MustSeq("s", "ACDEF", seq.Protein)
	r := Reversed(s)
	if r.Letters() != "FEDCA" {
		t.Errorf("reversed = %q", r.Letters())
	}
	if s.Letters() != "ACDEF" {
		t.Error("Reversed mutated its input")
	}
}

func TestFormatOutput(t *testing.T) {
	a := seq.MustSeq("qry", "ACDEFGHIK", seq.Protein)
	g := seq.NewGenerator(seq.Protein, 3)
	b := g.Mutate(a, "sbj", 0.8, 0.1)
	r, err := Global(a, b, b62, g11)
	if err != nil {
		t.Fatal(err)
	}
	text := r.Format(60)
	if !strings.Contains(text, "qry") || !strings.Contains(text, "score=") {
		t.Errorf("format output missing header:\n%s", text)
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) < 4 {
		t.Errorf("format produced %d lines", len(lines))
	}
}

func TestAlphabetMismatchRejected(t *testing.T) {
	p := seq.MustSeq("p", "ACDE", seq.Protein)
	d := seq.MustSeq("d", "ACGT", seq.DNA)
	if _, err := Global(p, d, b62, g11); err == nil {
		t.Error("alphabet mismatch accepted")
	}
	if _, err := LocalScore(p, d, b62, g11); err == nil {
		t.Error("alphabet mismatch accepted by LocalScore")
	}
}

func TestMutatedPairScoresAboveRandomPair(t *testing.T) {
	// The statistical backbone of every experiment: homologs score
	// higher than unrelated sequences of the same length.
	g := seq.NewGenerator(seq.Protein, 55)
	a := g.Random("a", 150)
	hom := g.Mutate(a, "hom", 0.6, 0.02)
	unrel := g.Random("u", hom.Len())
	sHom, _ := LocalScore(a, hom, b62, g11)
	sUnrel, _ := LocalScore(a, unrel, b62, g11)
	if sHom <= sUnrel*2 {
		t.Errorf("homolog score %d not clearly above unrelated %d", sHom, sUnrel)
	}
}

func TestAlignedLengthAndRuns(t *testing.T) {
	r := &Result{Ops: []EditOp{{OpMatch, 5}, {OpInsert, 2}, {OpMatch, 3}}}
	if r.AlignedLength() != 10 {
		t.Errorf("aligned length = %d", r.AlignedLength())
	}
}

func TestRunLengthEncoding(t *testing.T) {
	ops := runLength([]OpKind{OpMatch, OpMatch, OpDelete, OpMatch, OpMatch, OpMatch})
	want := []EditOp{{OpMatch, 2}, {OpDelete, 1}, {OpMatch, 3}}
	if len(ops) != len(want) {
		t.Fatalf("runs = %+v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("run %d = %+v, want %+v", i, ops[i], want[i])
		}
	}
}

func TestGlobalRandomizedTracebackInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := seq.NewGenerator(seq.Protein, 99)
	for trial := 0; trial < 20; trial++ {
		a := g.Random("a", 1+rng.Intn(30))
		b := g.Random("b", 1+rng.Intn(30))
		r, err := Global(a, b, b62, g11)
		if err != nil {
			t.Fatal(err)
		}
		if got := rescore(t, r, b62, g11); got != r.Score {
			t.Fatalf("trial %d: rescore %d != %d\n%s", trial, got, r.Score, r.Format(60))
		}
	}
}
