// Package seq provides biological sequences: alphabets, FASTA I/O and
// the synthetic sequence generators that stand in for the BioPerf
// class-C input datasets (GenBank/Swiss-Prot extracts) which are not
// redistributable here.  Branch behaviour of the DP kernels depends on
// the statistics of residue matches, not on biological meaning, so
// sequences drawn from realistic residue frequencies with homologs
// derived by controlled mutation exercise the same code paths.
package seq

import (
	"fmt"
	"math/rand"
	"strings"
)

// Alphabet maps residue letters to dense codes.
type Alphabet struct {
	name    string
	letters string
	index   [256]int8 // -1 when not in the alphabet
}

// NewAlphabet builds an alphabet from its letter set.
func NewAlphabet(name, letters string) *Alphabet {
	a := &Alphabet{name: name, letters: letters}
	for i := range a.index {
		a.index[i] = -1
	}
	for i := 0; i < len(letters); i++ {
		a.index[letters[i]] = int8(i)
		lower := letters[i] | 0x20
		a.index[lower] = int8(i)
	}
	return a
}

// Protein is the 20-letter amino-acid alphabet in the residue order
// shared with package score's substitution matrices.
var Protein = NewAlphabet("protein", "ARNDCQEGHILKMFPSTWYV")

// DNA is the 4-letter nucleotide alphabet.
var DNA = NewAlphabet("dna", "ACGT")

// Name returns the alphabet's name.
func (a *Alphabet) Name() string { return a.name }

// Size returns the number of letters.
func (a *Alphabet) Size() int { return len(a.letters) }

// Letter returns the letter for code c.
func (a *Alphabet) Letter(c byte) byte { return a.letters[c] }

// Code returns the dense code of letter l, or -1 if not in the alphabet.
func (a *Alphabet) Code(l byte) int8 { return a.index[l] }

// Seq is one named biological sequence stored as dense codes.
type Seq struct {
	ID    string
	Desc  string
	Code  []byte // dense alphabet codes, not letters
	Alpha *Alphabet
}

// NewSeq encodes letters into a sequence, rejecting unknown residues.
func NewSeq(id string, letters string, a *Alphabet) (*Seq, error) {
	code := make([]byte, 0, len(letters))
	for i := 0; i < len(letters); i++ {
		l := letters[i]
		if l == '\n' || l == '\r' || l == ' ' || l == '\t' {
			continue
		}
		c := a.Code(l)
		if c < 0 {
			return nil, fmt.Errorf("seq %s: residue %q not in %s alphabet", id, l, a.Name())
		}
		code = append(code, byte(c))
	}
	return &Seq{ID: id, Code: code, Alpha: a}, nil
}

// MustSeq is NewSeq for literals in tests and examples.
func MustSeq(id, letters string, a *Alphabet) *Seq {
	s, err := NewSeq(id, letters, a)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the sequence length.
func (s *Seq) Len() int { return len(s.Code) }

// Letters decodes the sequence back to residue letters.
func (s *Seq) Letters() string {
	var b strings.Builder
	b.Grow(len(s.Code))
	for _, c := range s.Code {
		b.WriteByte(s.Alpha.Letter(c))
	}
	return b.String()
}

// Sub returns the subsequence [lo, hi) sharing the underlying storage.
func (s *Seq) Sub(lo, hi int) *Seq {
	return &Seq{ID: s.ID, Desc: s.Desc, Code: s.Code[lo:hi], Alpha: s.Alpha}
}

// robinsonFreqs are the Robinson & Robinson (1991) amino-acid
// background frequencies in the Protein alphabet's residue order
// (A R N D C Q E G H I L K M F P S T W Y V), scaled to sum to 1.
var robinsonFreqs = []float64{
	0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295, 0.07377,
	0.02199, 0.05142, 0.09019, 0.05744, 0.02243, 0.03856, 0.05203, 0.07120,
	0.05841, 0.01330, 0.03216, 0.06441,
}

// Generator produces synthetic sequences and homolog families with a
// deterministic seed.
type Generator struct {
	rng   *rand.Rand
	alpha *Alphabet
	cum   []float64 // cumulative residue distribution
}

// NewGenerator returns a generator over alphabet a.  Protein sequences
// use Robinson-Robinson frequencies; other alphabets are uniform.
func NewGenerator(a *Alphabet, seed int64) *Generator {
	g := &Generator{rng: rand.New(rand.NewSource(seed)), alpha: a}
	freqs := make([]float64, a.Size())
	if a == Protein {
		copy(freqs, robinsonFreqs)
	} else {
		for i := range freqs {
			freqs[i] = 1 / float64(a.Size())
		}
	}
	g.cum = make([]float64, len(freqs))
	sum := 0.0
	for i, f := range freqs {
		sum += f
		g.cum[i] = sum
	}
	g.cum[len(g.cum)-1] = 1.0
	return g
}

func (g *Generator) residue() byte {
	u := g.rng.Float64()
	for i, c := range g.cum {
		if u <= c {
			return byte(i)
		}
	}
	return byte(len(g.cum) - 1)
}

// Random returns a fresh random sequence of length n.
func (g *Generator) Random(id string, n int) *Seq {
	code := make([]byte, n)
	for i := range code {
		code[i] = g.residue()
	}
	return &Seq{ID: id, Code: code, Alpha: g.alpha}
}

// Mutate derives a homolog of s at approximately the given identity:
// each residue is substituted with probability 1-identity, and short
// indels are introduced at indelRate per residue (geometric length,
// mean 2).  This models the related query/subject pairs that make DP
// kernels' compare streams value-dependent.
func (g *Generator) Mutate(s *Seq, id string, identity, indelRate float64) *Seq {
	out := make([]byte, 0, s.Len()+8)
	for _, c := range s.Code {
		if g.rng.Float64() < indelRate {
			if g.rng.Intn(2) == 0 {
				// Insertion burst.
				for {
					out = append(out, g.residue())
					if g.rng.Float64() < 0.5 {
						break
					}
				}
			} else {
				// Deletion: skip this residue.
				continue
			}
		}
		if g.rng.Float64() < identity {
			out = append(out, c)
		} else {
			out = append(out, g.residue())
		}
	}
	if len(out) == 0 {
		out = append(out, g.residue())
	}
	return &Seq{ID: id, Code: out, Alpha: g.alpha}
}

// Family generates n homologous sequences around a random ancestor of
// the given length — the shape of a Pfam seed alignment's members or a
// ClustalW input set.
func (g *Generator) Family(prefix string, n, length int, identity float64) []*Seq {
	ancestor := g.Random(prefix+"_anc", length)
	out := make([]*Seq, n)
	for i := range out {
		out[i] = g.Mutate(ancestor, fmt.Sprintf("%s%02d", prefix, i), identity, 0.01)
	}
	return out
}

// Database generates a search database of nseq sequences with lengths
// uniform in [minLen, maxLen], optionally salting in mutated copies of
// query (planted homologs) so similarity searches have true positives.
func (g *Generator) Database(prefix string, nseq, minLen, maxLen int, query *Seq, planted int) []*Seq {
	out := make([]*Seq, 0, nseq)
	for i := 0; i < nseq; i++ {
		n := minLen
		if maxLen > minLen {
			n += g.rng.Intn(maxLen - minLen)
		}
		out = append(out, g.Random(fmt.Sprintf("%s%04d", prefix, i), n))
	}
	for i := 0; i < planted && query != nil; i++ {
		h := g.Mutate(query, fmt.Sprintf("%s_hom%02d", prefix, i), 0.6, 0.02)
		out[g.rng.Intn(len(out))] = h
	}
	return out
}
