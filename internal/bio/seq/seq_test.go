package seq

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAlphabetCoding(t *testing.T) {
	if Protein.Size() != 20 || DNA.Size() != 4 {
		t.Fatalf("alphabet sizes: protein=%d dna=%d", Protein.Size(), DNA.Size())
	}
	if Protein.Code('A') != 0 || Protein.Code('V') != 19 {
		t.Errorf("protein codes: A=%d V=%d", Protein.Code('A'), Protein.Code('V'))
	}
	if Protein.Code('a') != 0 {
		t.Error("lowercase not accepted")
	}
	if Protein.Code('Z') != -1 || Protein.Code('*') != -1 {
		t.Error("non-residues accepted")
	}
	for i := 0; i < DNA.Size(); i++ {
		if DNA.Code(DNA.Letter(byte(i))) != int8(i) {
			t.Errorf("dna letter/code round trip broken at %d", i)
		}
	}
}

func TestNewSeq(t *testing.T) {
	s, err := NewSeq("q", "ACDEF", Protein)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 || s.Letters() != "ACDEF" {
		t.Errorf("round trip: len=%d letters=%q", s.Len(), s.Letters())
	}
	if _, err := NewSeq("bad", "ACDEX!", Protein); err == nil {
		t.Error("invalid residue accepted")
	}
	// Whitespace is skipped.
	s2, err := NewSeq("ws", "AC D\nEF", Protein)
	if err != nil || s2.Letters() != "ACDEF" {
		t.Errorf("whitespace handling: %q, %v", s2.Letters(), err)
	}
}

func TestSub(t *testing.T) {
	s := MustSeq("q", "ACDEFGHIK", Protein)
	sub := s.Sub(2, 5)
	if sub.Letters() != "DEF" {
		t.Errorf("Sub = %q, want DEF", sub.Letters())
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(Protein, 42).Random("x", 100)
	b := NewGenerator(Protein, 42).Random("x", 100)
	if a.Letters() != b.Letters() {
		t.Error("same seed produced different sequences")
	}
	c := NewGenerator(Protein, 43).Random("x", 100)
	if a.Letters() == c.Letters() {
		t.Error("different seeds produced identical sequences")
	}
}

func TestGeneratorResidueFrequencies(t *testing.T) {
	g := NewGenerator(Protein, 7)
	const n = 200000
	s := g.Random("big", n)
	var counts [20]int
	for _, c := range s.Code {
		counts[c]++
	}
	// Leucine (index 10) is the most common residue at ~9%; Trp (17)
	// the rarest at ~1.3%.  Allow generous tolerance.
	lFrac := float64(counts[10]) / n
	wFrac := float64(counts[17]) / n
	if math.Abs(lFrac-0.090) > 0.01 {
		t.Errorf("Leu fraction = %.3f, want about 0.090", lFrac)
	}
	if math.Abs(wFrac-0.0133) > 0.005 {
		t.Errorf("Trp fraction = %.4f, want about 0.0133", wFrac)
	}
}

func TestMutateIdentity(t *testing.T) {
	g := NewGenerator(Protein, 5)
	anc := g.Random("anc", 2000)
	hom := g.Mutate(anc, "hom", 0.7, 0) // no indels: alignable position-wise
	if hom.Len() != anc.Len() {
		t.Fatalf("no-indel mutation changed length: %d vs %d", hom.Len(), anc.Len())
	}
	same := 0
	for i := range anc.Code {
		if anc.Code[i] == hom.Code[i] {
			same++
		}
	}
	frac := float64(same) / float64(anc.Len())
	// identity parameter 0.7 plus chance matches among substitutions.
	if frac < 0.68 || frac > 0.80 {
		t.Errorf("observed identity %.3f, want about 0.70-0.75", frac)
	}
}

func TestMutateIndels(t *testing.T) {
	g := NewGenerator(Protein, 6)
	anc := g.Random("anc", 1000)
	hom := g.Mutate(anc, "hom", 0.9, 0.05)
	if hom.Len() == anc.Len() {
		t.Log("note: indel mutation preserved length (possible but unlikely)")
	}
	if hom.Len() < anc.Len()/2 || hom.Len() > anc.Len()*2 {
		t.Errorf("mutated length %d wildly off ancestor %d", hom.Len(), anc.Len())
	}
}

func TestFamily(t *testing.T) {
	g := NewGenerator(Protein, 8)
	fam := g.Family("fam", 6, 120, 0.8)
	if len(fam) != 6 {
		t.Fatalf("family size = %d", len(fam))
	}
	ids := map[string]bool{}
	for _, s := range fam {
		if s.Len() < 60 || s.Len() > 240 {
			t.Errorf("family member length %d implausible for ancestor 120", s.Len())
		}
		if ids[s.ID] {
			t.Errorf("duplicate id %s", s.ID)
		}
		ids[s.ID] = true
	}
}

func TestDatabasePlantsHomologs(t *testing.T) {
	g := NewGenerator(Protein, 9)
	q := g.Random("query", 200)
	db := g.Database("db", 50, 100, 300, q, 3)
	if len(db) != 50 {
		t.Fatalf("db size = %d", len(db))
	}
	planted := 0
	for _, s := range db {
		if strings.Contains(s.ID, "_hom") {
			planted++
		}
	}
	if planted == 0 || planted > 3 {
		t.Errorf("planted homologs = %d, want 1..3", planted)
	}
}

func TestFASTARoundTrip(t *testing.T) {
	g := NewGenerator(Protein, 10)
	in := []*Seq{g.Random("s1", 70), g.Random("s2", 61), g.Random("s3", 1)}
	in[0].Desc = "first sequence"
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFASTA(&buf, Protein)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || out[i].Letters() != in[i].Letters() {
			t.Errorf("record %d mismatch", i)
		}
	}
	if out[0].Desc != "first sequence" {
		t.Errorf("desc = %q", out[0].Desc)
	}
}

func TestQuickFASTARoundTrip(t *testing.T) {
	g := NewGenerator(Protein, 11)
	f := func(n uint16) bool {
		s := g.Random("q", int(n%500)+1)
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, []*Seq{s}); err != nil {
			return false
		}
		out, err := ReadFASTA(&buf, Protein)
		return err == nil && len(out) == 1 && out[0].Letters() == s.Letters()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFASTAErrors(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ACDEF\n"), Protein); err == nil {
		t.Error("data before header accepted")
	}
	if _, err := ReadFASTA(strings.NewReader(">ok\nACDEZ*\n"), Protein); err == nil {
		t.Error("invalid residue accepted")
	}
	if _, err := ReadFASTA(strings.NewReader("> \nACD\n"), Protein); err == nil {
		t.Error("empty id accepted")
	}
	out, err := ReadFASTA(strings.NewReader(""), Protein)
	if err != nil || len(out) != 0 {
		t.Errorf("empty input: %v, %d records", err, len(out))
	}
}

func TestFASTAMultilineAndBlankLines(t *testing.T) {
	in := ">a desc here\nACD\n\nEFG\n>b\nKLM\n"
	out, err := ReadFASTA(strings.NewReader(in), Protein)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Letters() != "ACDEFG" || out[1].Letters() != "KLM" {
		t.Errorf("parsed %d records: %+v", len(out), out)
	}
}
