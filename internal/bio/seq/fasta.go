package seq

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadFASTA parses FASTA-format records from r using alphabet a.
func ReadFASTA(r io.Reader, a *Alphabet) ([]*Seq, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out []*Seq
	var id, desc string
	var body strings.Builder
	flush := func() error {
		if id == "" {
			return nil
		}
		s, err := NewSeq(id, body.String(), a)
		if err != nil {
			return err
		}
		s.Desc = desc
		out = append(out, s)
		body.Reset()
		return nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, ">"):
			if err := flush(); err != nil {
				return nil, err
			}
			header := strings.TrimPrefix(line, ">")
			fields := strings.SplitN(header, " ", 2)
			id = fields[0]
			if id == "" {
				return nil, fmt.Errorf("fasta: line %d: empty sequence id", lineNo)
			}
			desc = ""
			if len(fields) == 2 {
				desc = fields[1]
			}
		case id == "":
			return nil, fmt.Errorf("fasta: line %d: sequence data before any header", lineNo)
		default:
			body.WriteString(line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFASTA renders sequences in FASTA format with 60-column wrapping.
func WriteFASTA(w io.Writer, seqs []*Seq) error {
	for _, s := range seqs {
		header := ">" + s.ID
		if s.Desc != "" {
			header += " " + s.Desc
		}
		if _, err := fmt.Fprintln(w, header); err != nil {
			return err
		}
		letters := s.Letters()
		for len(letters) > 0 {
			n := 60
			if n > len(letters) {
				n = len(letters)
			}
			if _, err := fmt.Fprintln(w, letters[:n]); err != nil {
				return err
			}
			letters = letters[n:]
		}
	}
	return nil
}
