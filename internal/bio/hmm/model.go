// Package hmm implements Plan7 profile hidden Markov models in the
// style of HMMER2: model construction from a multiple alignment,
// the P7Viterbi dynamic-programming kernel (the function Figure 1 shows
// consuming most of Hmmer's time), the Forward algorithm, and an
// hmmpfam-style scan of a model database.
//
// Scores are integer log-odds in millibits (log2(p/null) * 1000), the
// same fixed-point convention HMMER2 uses (INTSCALE), which keeps the
// simulated kernel integer-only like the real workload.
package hmm

import (
	"fmt"
	"math"

	"bioperf5/internal/bio/clustal"
	"bioperf5/internal/bio/seq"
)

// MinScore is the -infinity of the integer log-odds domain, chosen so
// that sums cannot underflow int32 accumulation semantics.
const MinScore = -1 << 28

// Scale converts log2 odds to the integer score domain.
const Scale = 1000

// Plan7 is a profile HMM with M match states.
//
// Transition score slices are indexed by match-state position k
// (1-based; index 0 unused) following HMMER's layout:
//
//	TMM[k]: M_k -> M_{k+1}    TIM[k]: I_k -> M_{k+1}   TDM[k]: D_k -> M_{k+1}
//	TMI[k]: M_k -> I_k        TII[k]: I_k -> I_k
//	TMD[k]: M_k -> D_{k+1}    TDD[k]: D_k -> D_{k+1}
type Plan7 struct {
	Name  string
	M     int
	Alpha *seq.Alphabet

	// Emissions: Msc[k][c] match, Isc[k][c] insert (k 1-based).
	Msc [][]int
	Isc [][]int

	// Transitions (k 1-based, see above).
	TMM, TMI, TMD, TIM, TII, TDM, TDD []int

	// Entry/exit: Bsc[k] = B->M_k, Esc[k] = M_k->E.
	Bsc []int
	Esc []int

	// Special-state moves (N/C/J loops and exits) in millibits.
	NLoop, NMove int // N->N, N->B
	ELoopJ       int // E->J (multi-hit)
	JLoop, JMove int // J->J, J->B
	EMoveC       int // E->C
	CLoop, CMove int // C->C, C->T
}

// Validate checks structural consistency.
func (p *Plan7) Validate() error {
	if p.M < 1 {
		return fmt.Errorf("hmm %s: no match states", p.Name)
	}
	if p.Alpha == nil {
		return fmt.Errorf("hmm %s: no alphabet", p.Name)
	}
	want := p.M + 1
	for _, s := range [][]int{p.TMM, p.TMI, p.TMD, p.TIM, p.TII, p.TDM, p.TDD, p.Bsc, p.Esc} {
		if len(s) != want {
			return fmt.Errorf("hmm %s: transition slice length %d, want %d", p.Name, len(s), want)
		}
	}
	if len(p.Msc) != want || len(p.Isc) != want {
		return fmt.Errorf("hmm %s: emission tables sized %d/%d, want %d", p.Name, len(p.Msc), len(p.Isc), want)
	}
	for k := 1; k <= p.M; k++ {
		if len(p.Msc[k]) != p.Alpha.Size() || len(p.Isc[k]) != p.Alpha.Size() {
			return fmt.Errorf("hmm %s: emission row %d wrong width", p.Name, k)
		}
	}
	return nil
}

func logOdds(p, null float64) int {
	if p <= 0 {
		return MinScore
	}
	return int(math.Round(math.Log2(p/null) * Scale))
}

func log2s(p float64) int {
	if p <= 0 {
		return MinScore
	}
	return int(math.Round(math.Log2(p) * Scale))
}

// background returns the null-model residue distribution for a.
func background(a *seq.Alphabet) []float64 {
	// Robinson-Robinson for protein (matching package seq's generator),
	// uniform otherwise.
	if a == seq.Protein {
		return []float64{
			0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295, 0.07377,
			0.02199, 0.05142, 0.09019, 0.05744, 0.02243, 0.03856, 0.05203, 0.07120,
			0.05841, 0.01330, 0.03216, 0.06441,
		}
	}
	bg := make([]float64, a.Size())
	for i := range bg {
		bg[i] = 1 / float64(a.Size())
	}
	return bg
}

// configDefaults sets the special-state scores for multi-hit local
// (hmmpfam-style "ls" mode) search.
func (p *Plan7) configDefaults() {
	p.NLoop = -15 // log2(0.99) in millibits, ~free flanking residues
	p.NMove = log2s(0.5)
	p.ELoopJ = log2s(0.5)
	p.JLoop = -15
	p.JMove = log2s(0.5)
	p.EMoveC = log2s(0.5)
	p.CLoop = -15
	p.CMove = log2s(0.5)

	// Local entry/exit: mild preference for full-length matches.
	for k := 1; k <= p.M; k++ {
		p.Bsc[k] = log2s(0.1 / float64(p.M))
		p.Esc[k] = log2s(0.1 / float64(p.M))
	}
	p.Bsc[1] = log2s(0.45)
	p.Esc[p.M] = log2s(0.45)
}

// BuildFromMSA estimates a Plan7 model from a multiple alignment,
// using 50%-occupancy match-column assignment, Laplace-smoothed counts
// and the package's background distribution — the hmmbuild step that
// precedes every hmmpfam run.
func BuildFromMSA(name string, msa *clustal.MSA) (*Plan7, error) {
	if msa.NumSeqs() == 0 || msa.Columns() == 0 {
		return nil, fmt.Errorf("hmm: empty alignment")
	}
	cols := msa.Columns()
	nseq := msa.NumSeqs()
	alpha := msa.Alpha
	bg := background(alpha)

	// Match-column assignment.
	isMatch := make([]bool, cols)
	M := 0
	for c := 0; c < cols; c++ {
		occ := 0
		for r := 0; r < nseq; r++ {
			if msa.Rows[r][c] != clustal.GapCode {
				occ++
			}
		}
		if 2*occ >= nseq {
			isMatch[c] = true
			M++
		}
	}
	if M == 0 {
		return nil, fmt.Errorf("hmm: alignment has no match columns")
	}

	p := &Plan7{Name: name, M: M, Alpha: alpha}
	n := M + 1
	p.Msc = make([][]int, n)
	p.Isc = make([][]int, n)
	mCounts := make([][]float64, n)
	for k := 0; k < n; k++ {
		p.Msc[k] = make([]int, alpha.Size())
		p.Isc[k] = make([]int, alpha.Size())
		mCounts[k] = make([]float64, alpha.Size())
	}
	p.TMM = make([]int, n)
	p.TMI = make([]int, n)
	p.TMD = make([]int, n)
	p.TIM = make([]int, n)
	p.TII = make([]int, n)
	p.TDM = make([]int, n)
	p.TDD = make([]int, n)
	p.Bsc = make([]int, n)
	p.Esc = make([]int, n)

	// Transition counts.
	type tkey int
	const (
		tMM tkey = iota
		tMI
		tMD
		tIM
		tII
		tDM
		tDD
		numT
	)
	tc := make([][numT]float64, n)

	// Walk each sequence's state path.
	for r := 0; r < nseq; r++ {
		prevState := byte('B')
		prevK := 0
		k := 0
		for c := 0; c < cols; c++ {
			sym := msa.Rows[r][c]
			if isMatch[c] {
				k++
				var st byte
				if sym == clustal.GapCode {
					st = 'D'
				} else {
					st = 'M'
					mCounts[k][sym]++
				}
				countTransition(tc, prevState, st, prevK)
				prevState, prevK = st, k
			} else if sym != clustal.GapCode {
				// Insert emission between match states.
				countTransition(tc, prevState, 'I', prevK)
				prevState = 'I'
			}
		}
	}

	// Emissions with Laplace smoothing.
	for k := 1; k <= M; k++ {
		total := 0.0
		for c := range mCounts[k] {
			total += mCounts[k][c] + 0.5
		}
		for c := range mCounts[k] {
			p.Msc[k][c] = logOdds((mCounts[k][c]+0.5)/total, bg[c])
			p.Isc[k][c] = 0 // insert emissions follow the background
		}
	}

	// Transitions with smoothing.
	for k := 0; k <= M; k++ {
		mOut := tc[k][tMM] + tc[k][tMI] + tc[k][tMD] + 3
		p.TMM[k] = log2s((tc[k][tMM] + 1) / mOut)
		p.TMI[k] = log2s((tc[k][tMI] + 1) / mOut)
		p.TMD[k] = log2s((tc[k][tMD] + 1) / mOut)
		iOut := tc[k][tIM] + tc[k][tII] + 2
		p.TIM[k] = log2s((tc[k][tIM] + 1) / iOut)
		p.TII[k] = log2s((tc[k][tII] + 1) / iOut)
		dOut := tc[k][tDM] + tc[k][tDD] + 2
		p.TDM[k] = log2s((tc[k][tDM] + 1) / dOut)
		p.TDD[k] = log2s((tc[k][tDD] + 1) / dOut)
	}
	p.configDefaults()
	return p, p.Validate()
}

func countTransition(tc [][7]float64, from, to byte, fromK int) {
	var idx int
	switch {
	case from == 'M' || from == 'B':
		switch to {
		case 'M':
			idx = 0
		case 'I':
			idx = 1
		default:
			idx = 2
		}
	case from == 'I':
		switch to {
		case 'M':
			idx = 3
		default:
			idx = 4
		}
	default: // D
		switch to {
		case 'M':
			idx = 5
		default:
			idx = 6
		}
	}
	tc[fromK][idx]++
}

// BuildFromFamily is a convenience that aligns a synthetic family with
// ClustalW defaults and builds a model from the result — the pipeline
// the workloads use to create a Pfam-like database.
func BuildFromFamily(name string, family []*seq.Seq) (*Plan7, error) {
	res, err := clustal.Align(family, clustal.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return BuildFromMSA(name, res.MSA)
}
