package hmm

import (
	"math"
	"testing"

	"bioperf5/internal/bio/clustal"
	"bioperf5/internal/bio/seq"
)

// buildTestModel constructs a model from a synthetic family.
func buildTestModel(t *testing.T, seed int64, members, length int, identity float64) (*Plan7, []*seq.Seq) {
	t.Helper()
	g := seq.NewGenerator(seq.Protein, seed)
	fam := g.Family("fam", members, length, identity)
	m, err := BuildFromFamily("testmodel", fam)
	if err != nil {
		t.Fatal(err)
	}
	return m, fam
}

func TestBuildFromMSAStructure(t *testing.T) {
	m, _ := buildTestModel(t, 1, 6, 60, 0.85)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 85%-identity family: the model length tracks the ancestor length.
	if m.M < 40 || m.M > 80 {
		t.Errorf("model length %d implausible for 60-residue family", m.M)
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := BuildFromMSA("x", &clustal.MSA{Alpha: seq.Protein}); err == nil {
		t.Error("empty MSA accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m, _ := buildTestModel(t, 2, 5, 40, 0.9)
	m.TMM = m.TMM[:2]
	if err := m.Validate(); err == nil {
		t.Error("truncated transitions validated")
	}
}

func TestViterbiSeparatesFamilyFromRandom(t *testing.T) {
	m, fam := buildTestModel(t, 3, 6, 80, 0.85)
	g := seq.NewGenerator(seq.Protein, 99)

	memberScore, err := Viterbi(fam[0], m)
	if err != nil {
		t.Fatal(err)
	}
	novel := g.Mutate(fam[1], "novel", 0.85, 0.01) // held-out homolog
	novelScore, err := Viterbi(novel, m)
	if err != nil {
		t.Fatal(err)
	}
	random := g.Random("rand", fam[0].Len())
	randScore, err := Viterbi(random, m)
	if err != nil {
		t.Fatal(err)
	}
	if memberScore.Bits() <= randScore.Bits() {
		t.Errorf("family member %.1f bits not above random %.1f bits",
			memberScore.Bits(), randScore.Bits())
	}
	if novelScore.Bits() <= randScore.Bits() {
		t.Errorf("held-out homolog %.1f bits not above random %.1f bits",
			novelScore.Bits(), randScore.Bits())
	}
}

func TestViterbiAlphabetMismatch(t *testing.T) {
	m, _ := buildTestModel(t, 4, 5, 30, 0.9)
	d := seq.MustSeq("d", "ACGT", seq.DNA)
	if _, err := Viterbi(d, m); err == nil {
		t.Error("alphabet mismatch accepted")
	}
	if _, err := Forward(d, m); err == nil {
		t.Error("Forward accepted alphabet mismatch")
	}
}

func TestForwardAtLeastViterbi(t *testing.T) {
	// Forward sums over all paths, so it can never score below the
	// best single path.
	m, fam := buildTestModel(t, 5, 6, 50, 0.85)
	g := seq.NewGenerator(seq.Protein, 7)
	targets := []*seq.Seq{fam[0], g.Random("r1", 50), g.Mutate(fam[0], "h", 0.7, 0.02)}
	for _, s := range targets {
		v, err := Viterbi(s, m)
		if err != nil {
			t.Fatal(err)
		}
		f, err := Forward(s, m)
		if err != nil {
			t.Fatal(err)
		}
		if f < v.Bits()-0.01 {
			t.Errorf("%s: forward %.2f < viterbi %.2f", s.ID, f, v.Bits())
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Errorf("%s: forward = %v", s.ID, f)
		}
	}
}

func TestMultiHitScoresTandemRepeat(t *testing.T) {
	// A sequence containing the domain twice should outscore the
	// single-domain sequence under the multi-hit (J-state) model.
	m, fam := buildTestModel(t, 6, 6, 60, 0.9)
	single := fam[0]
	double := &seq.Seq{ID: "double", Alpha: seq.Protein,
		Code: append(append([]byte{}, single.Code...), single.Code...)}
	s1, err := Viterbi(single, m)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Viterbi(double, m)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Score <= s1.Score {
		t.Errorf("tandem repeat %.1f bits not above single %.1f bits", s2.Bits(), s1.Bits())
	}
}

func TestLogSum(t *testing.T) {
	if got := logSum2(0, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("log2(2^0+2^0) = %f, want 1", got)
	}
	if got := logSum2(10, math.Inf(-1)); got != 10 {
		t.Errorf("sum with -inf = %f", got)
	}
	if got := logSum4(2, 2, 2, 2); math.Abs(got-4) > 1e-12 {
		t.Errorf("log2(4*2^2) = %f, want 4", got)
	}
}

func TestPfamSearchRanksTrueFamilyFirst(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 8)
	db := &Pfam{}
	var families [][]*seq.Seq
	for i := 0; i < 4; i++ {
		fam := g.Family(string(rune('a'+i)), 5, 60, 0.85)
		m, err := BuildFromFamily(string(rune('a'+i)), fam)
		if err != nil {
			t.Fatal(err)
		}
		db.Models = append(db.Models, m)
		families = append(families, fam)
	}
	// Query: a fresh homolog of family 2.
	query := g.Mutate(families[2][0], "query", 0.8, 0.01)
	for _, alg := range []Algorithm{UseViterbi, UseForward} {
		hits, err := db.Search(query, alg)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != 4 {
			t.Fatalf("got %d hits", len(hits))
		}
		if hits[0].Model != "c" {
			t.Errorf("alg %d: top hit = %s (%.1f bits), want family c",
				alg, hits[0].Model, hits[0].Bits)
		}
		if hits[0].Bits <= hits[1].Bits {
			t.Errorf("alg %d: no separation between top hits", alg)
		}
	}
}

func TestSearchUnknownAlgorithm(t *testing.T) {
	db := &Pfam{}
	g := seq.NewGenerator(seq.Protein, 9)
	if _, err := db.Search(g.Random("q", 10), Algorithm(99)); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestViterbiDeterministic(t *testing.T) {
	m, fam := buildTestModel(t, 10, 5, 40, 0.9)
	a, err := Viterbi(fam[0], m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Viterbi(fam[0], m)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Viterbi not deterministic")
	}
}

func TestViterbiLongerRandomSequencesDoNotExplode(t *testing.T) {
	// Guards the MinScore clamping: long random sequences must yield
	// finite, monotonically reasonable scores, not underflow.
	m, _ := buildTestModel(t, 11, 5, 40, 0.9)
	g := seq.NewGenerator(seq.Protein, 12)
	for _, n := range []int{10, 100, 500} {
		r, err := Viterbi(g.Random("r", n), m)
		if err != nil {
			t.Fatal(err)
		}
		if r.Score <= MinScore/2 {
			t.Errorf("len %d: score underflowed to %d", n, r.Score)
		}
	}
}
