package hmm

import (
	"fmt"

	"bioperf5/internal/bio/seq"
)

// Special-state indices of the xmx rows, HMMER's layout.
const (
	XN = iota
	XB
	XE
	XJ
	XC
	numX
)

// ViterbiResult carries the optimal-path score in millibits.
type ViterbiResult struct {
	Score int // log2-odds * Scale
}

// Bits converts to bits.
func (v ViterbiResult) Bits() float64 { return float64(v.Score) / Scale }

// Viterbi is the P7Viterbi kernel: the full Plan7 dynamic program over
// match/insert/delete matrices (mmx/imx/dmx) and the special-state row
// xmx (N, B, E, J, C), multi-hit local.  Per cell it evaluates the
// three-to-four-way max statements over many array references that the
// paper identifies as both the Hmmer hot spot and the reason its
// modified gcc struggles to if-convert this code.
func Viterbi(s *seq.Seq, p *Plan7) (ViterbiResult, error) {
	if err := p.Validate(); err != nil {
		return ViterbiResult{}, err
	}
	if s.Alpha != p.Alpha {
		return ViterbiResult{}, fmt.Errorf("hmm %s: sequence alphabet mismatch", p.Name)
	}
	L := s.Len()
	M := p.M

	// Rolling rows (HMMER2 keeps the full matrices for traceback; the
	// score-only form is what hmmpfam's fast path and our simulated
	// kernel use).
	mmx := make([]int, M+1)
	imx := make([]int, M+1)
	dmx := make([]int, M+1)
	pmm := make([]int, M+1)
	pim := make([]int, M+1)
	pdm := make([]int, M+1)
	var xmx [numX]int
	var pxmx [numX]int

	for k := 0; k <= M; k++ {
		pmm[k], pim[k], pdm[k] = MinScore, MinScore, MinScore
	}
	pxmx[XN] = 0
	pxmx[XB] = pxmx[XN] + p.NMove
	pxmx[XE], pxmx[XJ], pxmx[XC] = MinScore, MinScore, MinScore

	for i := 1; i <= L; i++ {
		sym := s.Code[i-1]
		mmx[0], imx[0], dmx[0] = MinScore, MinScore, MinScore
		xmx[XE] = MinScore

		for k := 1; k <= M; k++ {
			// Match state: best of M/I/D at k-1 on the previous row,
			// or a fresh local entry from B.
			sc := pmm[k-1] + p.TMM[k-1]
			if v := pim[k-1] + p.TIM[k-1]; v > sc {
				sc = v
			}
			if v := pdm[k-1] + p.TDM[k-1]; v > sc {
				sc = v
			}
			if v := pxmx[XB] + p.Bsc[k]; v > sc {
				sc = v
			}
			sc += p.Msc[k][sym]
			if sc < MinScore {
				sc = MinScore
			}
			mmx[k] = sc

			// Insert state.
			if k < M {
				ic := pmm[k] + p.TMI[k]
				if v := pim[k] + p.TII[k]; v > ic {
					ic = v
				}
				ic += p.Isc[k][sym]
				if ic < MinScore {
					ic = MinScore
				}
				imx[k] = ic
			} else {
				imx[k] = MinScore
			}

			// Delete state (same row, k-1).
			dc := mmx[k-1] + p.TMD[k-1]
			if v := dmx[k-1] + p.TDD[k-1]; v > dc {
				dc = v
			}
			if dc < MinScore {
				dc = MinScore
			}
			dmx[k] = dc

			// E state collects local exits.
			if v := mmx[k] + p.Esc[k]; v > xmx[XE] {
				xmx[XE] = v
			}
		}

		// Special states, in HMMER's dependency order.
		xmx[XN] = pxmx[XN] + p.NLoop
		if xmx[XN] < MinScore {
			xmx[XN] = MinScore
		}
		xmx[XJ] = pxmx[XJ] + p.JLoop
		if v := xmx[XE] + p.ELoopJ; v > xmx[XJ] {
			xmx[XJ] = v
		}
		if xmx[XJ] < MinScore {
			xmx[XJ] = MinScore
		}
		xmx[XB] = xmx[XN] + p.NMove
		if v := xmx[XJ] + p.JMove; v > xmx[XB] {
			xmx[XB] = v
		}
		xmx[XC] = pxmx[XC] + p.CLoop
		if v := xmx[XE] + p.EMoveC; v > xmx[XC] {
			xmx[XC] = v
		}
		if xmx[XC] < MinScore {
			xmx[XC] = MinScore
		}

		mmx, pmm = pmm, mmx
		imx, pim = pim, imx
		dmx, pdm = pdm, dmx
		pxmx = xmx
	}
	score := pxmx[XC] + p.CMove
	if score < MinScore {
		score = MinScore
	}
	return ViterbiResult{Score: score}, nil
}
