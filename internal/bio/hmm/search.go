package hmm

import (
	"fmt"
	"sort"

	"bioperf5/internal/bio/seq"
)

// Hit is one model's score against the query.
type Hit struct {
	Model string
	Bits  float64
}

// Algorithm selects the per-alignment scorer, as in hmmpfam.
type Algorithm int

// Scoring algorithms.
const (
	UseViterbi Algorithm = iota
	UseForward
)

// Pfam is a database of profile HMMs (a miniature Pfam).
type Pfam struct {
	Models []*Plan7
}

// Search aligns query against every model in the database — the
// hmmpfam workload — and returns hits sorted by decreasing score.
func (db *Pfam) Search(query *seq.Seq, alg Algorithm) ([]Hit, error) {
	if alg != UseViterbi && alg != UseForward {
		return nil, fmt.Errorf("hmmpfam: unknown algorithm %d", alg)
	}
	hits := make([]Hit, 0, len(db.Models))
	for _, m := range db.Models {
		var bits float64
		switch alg {
		case UseViterbi:
			r, err := Viterbi(query, m)
			if err != nil {
				return nil, fmt.Errorf("hmmpfam: %s: %w", m.Name, err)
			}
			bits = r.Bits()
		case UseForward:
			f, err := Forward(query, m)
			if err != nil {
				return nil, fmt.Errorf("hmmpfam: %s: %w", m.Name, err)
			}
			bits = f
		default:
			return nil, fmt.Errorf("hmmpfam: unknown algorithm %d", alg)
		}
		hits = append(hits, Hit{Model: m.Name, Bits: bits})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Bits != hits[j].Bits {
			return hits[i].Bits > hits[j].Bits
		}
		return hits[i].Model < hits[j].Model
	})
	return hits, nil
}
