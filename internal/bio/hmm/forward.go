package hmm

import (
	"fmt"
	"math"

	"bioperf5/internal/bio/seq"
)

// Forward computes the Forward-algorithm log-odds score in bits: the
// probability of the sequence summed over all paths rather than the
// single best path.  hmmpfam uses it (or Viterbi) per alignment, as the
// paper notes in Section II.  The sum is carried in log2 space with
// log-sum-exp.
func Forward(s *seq.Seq, p *Plan7) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if s.Alpha != p.Alpha {
		return 0, fmt.Errorf("hmm %s: sequence alphabet mismatch", p.Name)
	}
	L, M := s.Len(), p.M
	negInf := math.Inf(-1)

	bits := func(v int) float64 {
		if v <= MinScore {
			return negInf
		}
		return float64(v) / Scale
	}

	mmx := make([]float64, M+1)
	imx := make([]float64, M+1)
	dmx := make([]float64, M+1)
	pmm := make([]float64, M+1)
	pim := make([]float64, M+1)
	pdm := make([]float64, M+1)
	var xmx, pxmx [numX]float64

	for k := 0; k <= M; k++ {
		pmm[k], pim[k], pdm[k] = negInf, negInf, negInf
	}
	pxmx[XN] = 0
	pxmx[XB] = bits(p.NMove)
	pxmx[XE], pxmx[XJ], pxmx[XC] = negInf, negInf, negInf

	for i := 1; i <= L; i++ {
		sym := s.Code[i-1]
		mmx[0], imx[0], dmx[0] = negInf, negInf, negInf
		xmx[XE] = negInf

		for k := 1; k <= M; k++ {
			sc := logSum4(
				pmm[k-1]+bits(p.TMM[k-1]),
				pim[k-1]+bits(p.TIM[k-1]),
				pdm[k-1]+bits(p.TDM[k-1]),
				pxmx[XB]+bits(p.Bsc[k]),
			)
			mmx[k] = sc + bits(p.Msc[k][sym])

			if k < M {
				imx[k] = logSum2(pmm[k]+bits(p.TMI[k]), pim[k]+bits(p.TII[k])) +
					bits(p.Isc[k][sym])
			} else {
				imx[k] = negInf
			}
			dmx[k] = logSum2(mmx[k-1]+bits(p.TMD[k-1]), dmx[k-1]+bits(p.TDD[k-1]))
			xmx[XE] = logSum2(xmx[XE], mmx[k]+bits(p.Esc[k]))
		}

		xmx[XN] = pxmx[XN] + bits(p.NLoop)
		xmx[XJ] = logSum2(pxmx[XJ]+bits(p.JLoop), xmx[XE]+bits(p.ELoopJ))
		xmx[XB] = logSum2(xmx[XN]+bits(p.NMove), xmx[XJ]+bits(p.JMove))
		xmx[XC] = logSum2(pxmx[XC]+bits(p.CLoop), xmx[XE]+bits(p.EMoveC))

		mmx, pmm = pmm, mmx
		imx, pim = pim, imx
		dmx, pdm = pdm, dmx
		pxmx = xmx
	}
	return pxmx[XC] + bits(p.CMove), nil
}

// logSum2 returns log2(2^a + 2^b).
func logSum2(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log2(1+math.Exp2(b-a))
}

func logSum4(a, b, c, d float64) float64 {
	return logSum2(logSum2(a, b), logSum2(c, d))
}
