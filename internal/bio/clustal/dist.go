// Package clustal implements a ClustalW-style progressive multiple
// sequence aligner: all-pairs distances from pairwise alignments (the
// n(n-1)/2 comparisons the paper describes, whose forward_pass kernel
// dominates Clustalw's runtime), a guide tree built by UPGMA or
// neighbour joining, and profile-profile progressive alignment along
// the tree.
package clustal

import (
	"fmt"

	"bioperf5/internal/bio/align"
	"bioperf5/internal/bio/score"
	"bioperf5/internal/bio/seq"
)

// ForwardPassResult is what ClustalW's forward_pass computes: the
// maximal local alignment score and the end coordinates at which it is
// attained.
type ForwardPassResult struct {
	Score int
	EndA  int // 1-based end position in a
	EndB  int
}

// ForwardPass is the Smith-Waterman forward scan of ClustalW's
// pairalign (Section III's pseudo-code): rolling-array affine-gap DP
// with a zero floor, tracking the best cell.  This loop — five
// value-dependent max statements per cell — is the branch-misprediction
// hot spot the paper measures; package kernels carries the same
// recurrence onto the simulator.
func ForwardPass(a, b *seq.Seq, mat *score.Matrix, gap score.Gap) (ForwardPassResult, error) {
	if a.Alpha != mat.Alpha || b.Alpha != mat.Alpha {
		return ForwardPassResult{}, fmt.Errorf("clustal: alphabet mismatch")
	}
	if err := gap.Validate(); err != nil {
		return ForwardPassResult{}, err
	}
	n, m := a.Len(), b.Len()
	open := gap.Open + gap.Extend
	ext := gap.Extend
	const negInf = int(-1) << 40

	hh := make([]int, m+1)
	ee := make([]int, m+1)
	for j := range ee {
		ee[j] = negInf
	}
	res := ForwardPassResult{}
	for i := 1; i <= n; i++ {
		f := negInf
		diag := hh[0]
		row := mat.Row(a.Code[i-1])
		for j := 1; j <= m; j++ {
			e := ee[j] - ext
			if v := hh[j] - open; v > e {
				e = v
			}
			fv := f - ext
			if v := hh[j-1] - open; v > fv {
				fv = v
			}
			h := diag + int(row[b.Code[j-1]])
			if e > h {
				h = e
			}
			if fv > h {
				h = fv
			}
			if h < 0 {
				h = 0
			}
			diag = hh[j]
			hh[j], ee[j], f = h, e, fv
			if h > res.Score {
				res = ForwardPassResult{Score: h, EndA: i, EndB: j}
			}
		}
	}
	return res, nil
}

// Distances computes the ClustalW distance matrix: for every pair the
// sequences are locally aligned and the distance is 1 - identity over
// the aligned region.  The returned matrix is symmetric with a zero
// diagonal.
func Distances(seqs []*seq.Seq, mat *score.Matrix, gap score.Gap) ([][]float64, error) {
	n := len(seqs)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r, err := align.Local(seqs[i], seqs[j], mat, gap)
			if err != nil {
				return nil, err
			}
			dist := 1 - r.Identity()
			if r.AlignedLength() == 0 {
				dist = 1
			}
			d[i][j], d[j][i] = dist, dist
		}
	}
	return d, nil
}
