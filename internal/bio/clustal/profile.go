package clustal

import (
	"fmt"
	"strings"

	"bioperf5/internal/bio/score"
	"bioperf5/internal/bio/seq"
)

// GapCode marks a gap position in an alignment row.
const GapCode byte = 0xFF

// MSA is a multiple sequence alignment: rows of equal length over
// residue codes and GapCode.
type MSA struct {
	IDs   []string
	Rows  [][]byte
	Alpha *seq.Alphabet
}

// NumSeqs returns the number of aligned sequences.
func (m *MSA) NumSeqs() int { return len(m.Rows) }

// Columns returns the alignment length.
func (m *MSA) Columns() int {
	if len(m.Rows) == 0 {
		return 0
	}
	return len(m.Rows[0])
}

// Row renders one row with '-' for gaps.
func (m *MSA) Row(i int) string {
	var b strings.Builder
	for _, c := range m.Rows[i] {
		if c == GapCode {
			b.WriteByte('-')
		} else {
			b.WriteByte(m.Alpha.Letter(c))
		}
	}
	return b.String()
}

// Format renders the alignment in a Clustal-like block layout.
func (m *MSA) Format(width int) string {
	if width <= 0 {
		width = 60
	}
	var b strings.Builder
	for off := 0; off < m.Columns(); off += width {
		hi := off + width
		if hi > m.Columns() {
			hi = m.Columns()
		}
		for i := range m.Rows {
			fmt.Fprintf(&b, "%-12s %s\n", truncID(m.IDs[i]), m.Row(i)[off:hi])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func truncID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// Ungapped recovers the original (gap-free) sequence of row i.
func (m *MSA) Ungapped(i int) *seq.Seq {
	code := make([]byte, 0, len(m.Rows[i]))
	for _, c := range m.Rows[i] {
		if c != GapCode {
			code = append(code, c)
		}
	}
	return &seq.Seq{ID: m.IDs[i], Code: code, Alpha: m.Alpha}
}

// Identity returns the fraction of columns in which rows i and j carry
// the same residue (gap columns count against identity).
func (m *MSA) Identity(i, j int) float64 {
	if m.Columns() == 0 {
		return 0
	}
	same := 0
	for k := 0; k < m.Columns(); k++ {
		a, b := m.Rows[i][k], m.Rows[j][k]
		if a != GapCode && a == b {
			same++
		}
	}
	return float64(same) / float64(m.Columns())
}

func singleton(s *seq.Seq) *MSA {
	return &MSA{IDs: []string{s.ID}, Rows: [][]byte{append([]byte(nil), s.Code...)}, Alpha: s.Alpha}
}

// profileCounts returns, per column, the residue count vector of an
// alignment (gaps excluded) — the "profile" in profile-profile
// alignment.
func profileCounts(m *MSA) [][]int {
	n := m.Alpha.Size()
	out := make([][]int, m.Columns())
	for c := range out {
		counts := make([]int, n)
		for _, row := range m.Rows {
			if r := row[c]; r != GapCode {
				counts[r]++
			}
		}
		out[c] = counts
	}
	return out
}

// colScorer precomputes, for the right profile, the per-column score of
// each residue against that column, turning the O(rowsX * rowsY) column
// score into an O(alphabet) dot product — ClustalW's prfscore.
type colScorer struct {
	xCounts [][]int
	ySc     [][]float64 // ySc[cj][a] = sum_b yCount[cj][b] * mat(a,b)
	norm    float64
}

func newColScorer(x, y *MSA, mat *score.Matrix) *colScorer {
	n := x.Alpha.Size()
	yCounts := profileCounts(y)
	ySc := make([][]float64, len(yCounts))
	for cj, counts := range yCounts {
		sc := make([]float64, n)
		for a := 0; a < n; a++ {
			row := mat.Row(byte(a))
			t := 0
			for bsym, cnt := range counts {
				t += cnt * int(row[bsym])
			}
			sc[a] = float64(t)
		}
		ySc[cj] = sc
	}
	return &colScorer{
		xCounts: profileCounts(x),
		ySc:     ySc,
		norm:    float64(len(x.Rows) * len(y.Rows)),
	}
}

// score is the average substitution score between two profile columns;
// residue-gap pairs contribute zero (ClustalW's convention, simplified
// to uniform sequence weights).
func (cs *colScorer) score(ci, cj int) float64 {
	total := 0.0
	sc := cs.ySc[cj]
	for a, cnt := range cs.xCounts[ci] {
		if cnt != 0 {
			total += float64(cnt) * sc[a]
		}
	}
	return total / cs.norm
}

// alignProfiles aligns two sub-alignments with affine-gap NW over
// profile columns and merges them into one MSA.
func alignProfiles(x, y *MSA, mat *score.Matrix, gap score.Gap) *MSA {
	n, m := x.Columns(), y.Columns()
	cs := newColScorer(x, y, mat)
	open := float64(gap.Open + gap.Extend)
	ext := float64(gap.Extend)
	const negInf = -1e18

	h := make([][]float64, n+1)
	e := make([][]float64, n+1)
	f := make([][]float64, n+1)
	for i := range h {
		h[i] = make([]float64, m+1)
		e[i] = make([]float64, m+1)
		f[i] = make([]float64, m+1)
	}
	for i := 1; i <= n; i++ {
		h[i][0] = -(float64(gap.Open) + float64(i)*ext)
		e[i][0] = negInf
		f[i][0] = h[i][0]
	}
	for j := 1; j <= m; j++ {
		h[0][j] = -(float64(gap.Open) + float64(j)*ext)
		e[0][j] = h[0][j]
		f[0][j] = negInf
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			ev := e[i][j-1] - ext
			if v := h[i][j-1] - open; v > ev {
				ev = v
			}
			fv := f[i-1][j] - ext
			if v := h[i-1][j] - open; v > fv {
				fv = v
			}
			hv := h[i-1][j-1] + cs.score(i-1, j-1)
			if ev > hv {
				hv = ev
			}
			if fv > hv {
				hv = fv
			}
			e[i][j], f[i][j], h[i][j] = ev, fv, hv
		}
	}

	// Traceback producing a column merge plan.
	type step uint8
	const (
		stBoth step = iota
		stX
		stY
	)
	var rev []step
	i, j := n, m
	state := 0
	const eps = 1e-9
	for i > 0 || j > 0 {
		switch state {
		case 0:
			switch {
			case i > 0 && j > 0 && abs(h[i][j]-(h[i-1][j-1]+cs.score(i-1, j-1))) < eps:
				rev = append(rev, stBoth)
				i--
				j--
			case j > 0 && abs(h[i][j]-e[i][j]) < eps:
				state = 1
			case i > 0 && abs(h[i][j]-f[i][j]) < eps:
				state = 2
			case j > 0:
				rev = append(rev, stY)
				j--
			default:
				rev = append(rev, stX)
				i--
			}
		case 1:
			rev = append(rev, stY)
			if abs(e[i][j]-(h[i][j-1]-open)) < eps {
				state = 0
			}
			j--
		case 2:
			rev = append(rev, stX)
			if abs(f[i][j]-(h[i-1][j]-open)) < eps {
				state = 0
			}
			i--
		}
	}
	// Build the merged rows.
	cols := len(rev)
	out := &MSA{
		IDs:   append(append([]string(nil), x.IDs...), y.IDs...),
		Alpha: x.Alpha,
	}
	for range x.Rows {
		out.Rows = append(out.Rows, make([]byte, 0, cols))
	}
	for range y.Rows {
		out.Rows = append(out.Rows, make([]byte, 0, cols))
	}
	xi, yj := 0, 0
	for k := len(rev) - 1; k >= 0; k-- {
		switch rev[k] {
		case stBoth:
			for r := range x.Rows {
				out.Rows[r] = append(out.Rows[r], x.Rows[r][xi])
			}
			for r := range y.Rows {
				out.Rows[len(x.Rows)+r] = append(out.Rows[len(x.Rows)+r], y.Rows[r][yj])
			}
			xi++
			yj++
		case stX:
			for r := range x.Rows {
				out.Rows[r] = append(out.Rows[r], x.Rows[r][xi])
			}
			for r := range y.Rows {
				out.Rows[len(x.Rows)+r] = append(out.Rows[len(x.Rows)+r], GapCode)
			}
			xi++
		case stY:
			for r := range x.Rows {
				out.Rows[r] = append(out.Rows[r], GapCode)
			}
			for r := range y.Rows {
				out.Rows[len(x.Rows)+r] = append(out.Rows[len(x.Rows)+r], y.Rows[r][yj])
			}
			yj++
		}
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Options configures the aligner.
type Options struct {
	Matrix *score.Matrix
	Gap    score.Gap
	Tree   TreeMethod
}

// DefaultOptions returns BLOSUM62 with the ClustalW gap penalties and a
// UPGMA guide tree.
func DefaultOptions() Options {
	return Options{Matrix: score.BLOSUM62, Gap: score.ClustalWGap, Tree: UPGMA}
}

// Result carries the alignment and the intermediate products the paper
// describes (distance matrix, guide tree).
type Result struct {
	MSA       *MSA
	Distances [][]float64
	Tree      *Node
}

// Align runs the three ClustalW stages on seqs.
func Align(seqs []*seq.Seq, opt Options) (*Result, error) {
	if len(seqs) == 0 {
		return nil, fmt.Errorf("clustal: no sequences")
	}
	for _, s := range seqs {
		if s.Len() == 0 {
			return nil, fmt.Errorf("clustal: sequence %s is empty", s.ID)
		}
		if s.Alpha != opt.Matrix.Alpha {
			return nil, fmt.Errorf("clustal: sequence %s alphabet mismatch", s.ID)
		}
	}
	if len(seqs) == 1 {
		return &Result{MSA: singleton(seqs[0]), Tree: &Node{Leaf: 0}}, nil
	}
	dist, err := Distances(seqs, opt.Matrix, opt.Gap)
	if err != nil {
		return nil, err
	}
	tree, err := BuildGuideTree(dist, opt.Tree)
	if err != nil {
		return nil, err
	}
	msa := alignNode(tree, seqs, opt)
	return &Result{MSA: msa, Distances: dist, Tree: tree}, nil
}

// AlignWithTree runs only the progressive stage over a precomputed
// guide tree — the workload drivers time the three ClustalW stages
// separately with it.
func AlignWithTree(seqs []*seq.Seq, tree *Node, opt Options) *MSA {
	return alignNode(tree, seqs, opt)
}

func alignNode(n *Node, seqs []*seq.Seq, opt Options) *MSA {
	if n.IsLeaf() {
		return singleton(seqs[n.Leaf])
	}
	l := alignNode(n.Left, seqs, opt)
	r := alignNode(n.Right, seqs, opt)
	return alignProfiles(l, r, opt.Matrix, opt.Gap)
}
