package clustal

import (
	"sort"
	"strings"
	"testing"

	"bioperf5/internal/bio/align"
	"bioperf5/internal/bio/score"
	"bioperf5/internal/bio/seq"
)

func TestForwardPassMatchesLocalScore(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 21)
	for trial := 0; trial < 10; trial++ {
		a := g.Random("a", 60)
		b := g.Mutate(a, "b", 0.6, 0.05)
		fp, err := ForwardPass(a, b, score.BLOSUM62, score.ClustalWGap)
		if err != nil {
			t.Fatal(err)
		}
		want, err := align.LocalScore(a, b, score.BLOSUM62, score.ClustalWGap)
		if err != nil {
			t.Fatal(err)
		}
		if fp.Score != want {
			t.Errorf("trial %d: forward_pass %d != local score %d", trial, fp.Score, want)
		}
		if fp.EndA < 1 || fp.EndA > a.Len() || fp.EndB < 1 || fp.EndB > b.Len() {
			t.Errorf("trial %d: end position (%d,%d) out of range", trial, fp.EndA, fp.EndB)
		}
	}
}

func TestForwardPassEndPositions(t *testing.T) {
	// Planted identical motif at a known location: the best cell must
	// be at the motif's end.
	g := seq.NewGenerator(seq.Protein, 31)
	motif := g.Random("m", 20)
	a := motif
	host := g.Random("h", 50)
	code := append(append(append([]byte{}, host.Code[:25]...), motif.Code...), host.Code[25:]...)
	b := &seq.Seq{ID: "b", Code: code, Alpha: seq.Protein}
	fp, err := ForwardPass(a, b, score.BLOSUM62, score.ClustalWGap)
	if err != nil {
		t.Fatal(err)
	}
	if fp.EndA != a.Len() || fp.EndB != 25+motif.Len() {
		t.Errorf("ends = (%d,%d), want (%d,%d)", fp.EndA, fp.EndB, a.Len(), 25+motif.Len())
	}
}

func TestDistancesProperties(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 41)
	fam := g.Family("f", 5, 80, 0.8)
	d, err := Distances(fam, score.BLOSUM62, score.ClustalWGap)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d {
		if d[i][i] != 0 {
			t.Errorf("diagonal d[%d][%d] = %f", i, i, d[i][i])
		}
		for j := range d {
			if d[i][j] != d[j][i] {
				t.Errorf("asymmetric d[%d][%d]", i, j)
			}
			if d[i][j] < 0 || d[i][j] > 1 {
				t.Errorf("d[%d][%d] = %f out of [0,1]", i, j, d[i][j])
			}
		}
	}
	// A sequence is closer to a family member than to an unrelated one.
	unrel := g.Random("u", 80)
	mix := append(append([]*seq.Seq{}, fam[0], fam[1]), unrel)
	d2, err := Distances(mix, score.BLOSUM62, score.ClustalWGap)
	if err != nil {
		t.Fatal(err)
	}
	if d2[0][1] >= d2[0][2] {
		t.Errorf("family distance %f not below unrelated distance %f", d2[0][1], d2[0][2])
	}
}

func TestUPGMAKnownTopology(t *testing.T) {
	// Distances: {0,1} are close, {2,3} are close, groups far apart.
	d := [][]float64{
		{0.0, 0.1, 0.8, 0.8},
		{0.1, 0.0, 0.8, 0.8},
		{0.8, 0.8, 0.0, 0.2},
		{0.8, 0.8, 0.2, 0.0},
	}
	tree, err := BuildGuideTree(d, UPGMA)
	if err != nil {
		t.Fatal(err)
	}
	if tree.IsLeaf() {
		t.Fatal("root is a leaf")
	}
	groups := [][]int{tree.Left.Leaves(nil), tree.Right.Leaves(nil)}
	for _, grp := range groups {
		sort.Ints(grp)
	}
	ok := (equalInts(groups[0], []int{0, 1}) && equalInts(groups[1], []int{2, 3})) ||
		(equalInts(groups[0], []int{2, 3}) && equalInts(groups[1], []int{0, 1}))
	if !ok {
		t.Errorf("UPGMA split = %v", groups)
	}
}

func TestNJKnownTopology(t *testing.T) {
	d := [][]float64{
		{0.0, 0.1, 0.9, 0.9},
		{0.1, 0.0, 0.9, 0.9},
		{0.9, 0.9, 0.0, 0.1},
		{0.9, 0.9, 0.1, 0.0},
	}
	tree, err := BuildGuideTree(d, NeighborJoining)
	if err != nil {
		t.Fatal(err)
	}
	leaves := tree.Leaves(nil)
	sort.Ints(leaves)
	if !equalInts(leaves, []int{0, 1, 2, 3}) {
		t.Fatalf("NJ lost leaves: %v", leaves)
	}
	// 0 and 1 must be siblings somewhere in the tree.
	if !hasSiblingPair(tree, 0, 1) {
		t.Error("NJ did not join the closest pair 0,1")
	}
}

func hasSiblingPair(n *Node, a, b int) bool {
	if n.IsLeaf() {
		return false
	}
	if n.Left.IsLeaf() && n.Right.IsLeaf() {
		l, r := n.Left.Leaf, n.Right.Leaf
		if (l == a && r == b) || (l == b && r == a) {
			return true
		}
	}
	return hasSiblingPair(n.Left, a, b) || hasSiblingPair(n.Right, a, b)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildGuideTreeErrors(t *testing.T) {
	if _, err := BuildGuideTree(nil, UPGMA); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := BuildGuideTree([][]float64{{0, 1}, {1}}, UPGMA); err == nil {
		t.Error("ragged matrix accepted")
	}
	one, err := BuildGuideTree([][]float64{{0}}, UPGMA)
	if err != nil || !one.IsLeaf() {
		t.Errorf("singleton tree: %v %v", one, err)
	}
}

func TestNewick(t *testing.T) {
	tree := &Node{Leaf: -1,
		Left:  &Node{Leaf: 0},
		Right: &Node{Leaf: -1, Left: &Node{Leaf: 1}, Right: &Node{Leaf: 2}}}
	got := tree.Newick([]string{"a", "b", "c"})
	if got != "(a,(b,c));" {
		t.Errorf("newick = %q", got)
	}
}

func TestAlignFamily(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 51)
	fam := g.Family("fam", 5, 60, 0.85)
	res, err := Align(fam, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	msa := res.MSA
	if msa.NumSeqs() != 5 {
		t.Fatalf("aligned %d sequences", msa.NumSeqs())
	}
	// All rows equal length.
	for i := range msa.Rows {
		if len(msa.Rows[i]) != msa.Columns() {
			t.Fatalf("row %d length %d != %d", i, len(msa.Rows[i]), msa.Columns())
		}
	}
	// Ungapping recovers the inputs (by id).
	byID := map[string]string{}
	for _, s := range fam {
		byID[s.ID] = s.Letters()
	}
	for i := range msa.Rows {
		got := msa.Ungapped(i)
		if byID[got.ID] != got.Letters() {
			t.Errorf("row %s does not ungap to its input", got.ID)
		}
	}
	// Homologous family at 85% ancestor identity should produce a
	// strongly conserved alignment.
	pairSum, pairs := 0.0, 0
	for i := 0; i < msa.NumSeqs(); i++ {
		for j := i + 1; j < msa.NumSeqs(); j++ {
			pairSum += msa.Identity(i, j)
			pairs++
		}
	}
	if avg := pairSum / float64(pairs); avg < 0.5 {
		t.Errorf("average pairwise identity %.2f; alignment looks wrong:\n%s",
			avg, msa.Format(60))
	}
}

func TestAlignTwoSequences(t *testing.T) {
	a := seq.MustSeq("a", "ACDEFGHIKLMNPQRS", seq.Protein)
	b := seq.MustSeq("b", "ACDEFGIKLMNPQRS", seq.Protein) // H deleted
	res, err := Align([]*seq.Seq{a, b}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.MSA.Columns() != 16 {
		t.Errorf("columns = %d, want 16 (one gap)", res.MSA.Columns())
	}
	gaps := strings.Count(res.MSA.Row(1), "-")
	if gaps != 1 {
		t.Errorf("row b has %d gaps, want 1:\n%s", gaps, res.MSA.Format(60))
	}
}

func TestAlignSingleAndErrors(t *testing.T) {
	s := seq.MustSeq("only", "ACDEF", seq.Protein)
	res, err := Align([]*seq.Seq{s}, DefaultOptions())
	if err != nil || res.MSA.NumSeqs() != 1 || res.MSA.Row(0) != "ACDEF" {
		t.Errorf("singleton alignment broken: %v", err)
	}
	if _, err := Align(nil, DefaultOptions()); err == nil {
		t.Error("empty input accepted")
	}
	d := seq.MustSeq("dna", "ACGT", seq.DNA)
	if _, err := Align([]*seq.Seq{s, d}, DefaultOptions()); err == nil {
		t.Error("alphabet mismatch accepted")
	}
	empty := &seq.Seq{ID: "e", Alpha: seq.Protein}
	if _, err := Align([]*seq.Seq{s, empty}, DefaultOptions()); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestAlignNJMethodWorksToo(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 61)
	fam := g.Family("fam", 4, 50, 0.8)
	opt := DefaultOptions()
	opt.Tree = NeighborJoining
	res, err := Align(fam, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.MSA.NumSeqs() != 4 {
		t.Errorf("aligned %d sequences", res.MSA.NumSeqs())
	}
	for i := range res.MSA.Rows {
		if len(res.MSA.Rows[i]) != res.MSA.Columns() {
			t.Fatalf("ragged MSA")
		}
	}
}

func TestMSAFormatting(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 71)
	fam := g.Family("fmt", 3, 70, 0.9)
	res, err := Align(fam, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	text := res.MSA.Format(60)
	if !strings.Contains(text, "fmt00") {
		t.Errorf("format lacks ids:\n%s", text)
	}
	nw := res.Tree.Newick([]string{"fmt00", "fmt01", "fmt02"})
	if !strings.HasSuffix(nw, ";") || !strings.Contains(nw, "fmt01") {
		t.Errorf("newick = %q", nw)
	}
}
