package clustal

import (
	"fmt"
	"strings"
)

// Node is a rooted guide-tree node.  Leaves carry the sequence index;
// internal nodes have exactly two children.
type Node struct {
	Leaf        int // sequence index, -1 for internal nodes
	Left, Right *Node
	Height      float64 // UPGMA: ultrametric height; NJ: join order proxy
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Leaf >= 0 }

// Leaves appends the sequence indices under n in left-to-right order.
func (n *Node) Leaves(dst []int) []int {
	if n.IsLeaf() {
		return append(dst, n.Leaf)
	}
	dst = n.Left.Leaves(dst)
	return n.Right.Leaves(dst)
}

// Newick renders the tree in Newick notation with the given leaf names.
func (n *Node) Newick(names []string) string {
	var b strings.Builder
	n.newick(&b, names)
	b.WriteByte(';')
	return b.String()
}

func (n *Node) newick(b *strings.Builder, names []string) {
	if n.IsLeaf() {
		if n.Leaf < len(names) {
			b.WriteString(names[n.Leaf])
		} else {
			fmt.Fprintf(b, "seq%d", n.Leaf)
		}
		return
	}
	b.WriteByte('(')
	n.Left.newick(b, names)
	b.WriteByte(',')
	n.Right.newick(b, names)
	b.WriteByte(')')
}

// TreeMethod selects the guide-tree construction algorithm.
type TreeMethod int

// Guide-tree construction methods.
const (
	UPGMA TreeMethod = iota
	NeighborJoining
)

// BuildGuideTree clusters the distance matrix into a rooted binary
// guide tree.
func BuildGuideTree(dist [][]float64, method TreeMethod) (*Node, error) {
	n := len(dist)
	if n == 0 {
		return nil, fmt.Errorf("clustal: empty distance matrix")
	}
	for i := range dist {
		if len(dist[i]) != n {
			return nil, fmt.Errorf("clustal: ragged distance matrix")
		}
	}
	if n == 1 {
		return &Node{Leaf: 0}, nil
	}
	switch method {
	case UPGMA:
		return upgma(dist), nil
	case NeighborJoining:
		return neighborJoin(dist), nil
	}
	return nil, fmt.Errorf("clustal: unknown tree method %d", method)
}

// upgma is average-linkage hierarchical clustering, producing the
// rooted ultrametric tree ClustalW uses for its alignment order.
func upgma(dist [][]float64) *Node {
	n := len(dist)
	// Working copies.
	d := make([][]float64, n)
	for i := range d {
		d[i] = append([]float64(nil), dist[i]...)
	}
	nodes := make([]*Node, n)
	sizes := make([]int, n)
	active := make([]bool, n)
	for i := range nodes {
		nodes[i] = &Node{Leaf: i}
		sizes[i] = 1
		active[i] = true
	}
	for remaining := n; remaining > 1; remaining-- {
		// Find the closest active pair.
		bi, bj := -1, -1
		best := 0.0
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if bi < 0 || d[i][j] < best {
					best, bi, bj = d[i][j], i, j
				}
			}
		}
		// Merge j into i.
		merged := &Node{Leaf: -1, Left: nodes[bi], Right: nodes[bj], Height: best / 2}
		for k := 0; k < n; k++ {
			if k != bi && k != bj && active[k] {
				d[bi][k] = (d[bi][k]*float64(sizes[bi]) + d[bj][k]*float64(sizes[bj])) /
					float64(sizes[bi]+sizes[bj])
				d[k][bi] = d[bi][k]
			}
		}
		nodes[bi] = merged
		sizes[bi] += sizes[bj]
		active[bj] = false
	}
	for i := range nodes {
		if active[i] {
			return nodes[i]
		}
	}
	return nil
}

// neighborJoin is Saitou-Nei neighbour joining; the unrooted result is
// rooted at the final join, which is how ClustalW obtains an alignment
// order from an NJ tree.
func neighborJoin(dist [][]float64) *Node {
	n := len(dist)
	d := make([][]float64, n)
	for i := range d {
		d[i] = append([]float64(nil), dist[i]...)
	}
	nodes := make([]*Node, n)
	idx := make([]int, n) // active node indices into nodes/d rows
	for i := range nodes {
		nodes[i] = &Node{Leaf: i}
		idx[i] = i
	}
	order := 0.0
	for len(idx) > 2 {
		r := len(idx)
		// Row sums over active set.
		sums := make([]float64, r)
		for a := 0; a < r; a++ {
			for b := 0; b < r; b++ {
				if a != b {
					sums[a] += d[idx[a]][idx[b]]
				}
			}
		}
		// Minimize the Q criterion.
		ba, bb := 0, 1
		bestQ := 0.0
		first := true
		for a := 0; a < r; a++ {
			for b := a + 1; b < r; b++ {
				q := float64(r-2)*d[idx[a]][idx[b]] - sums[a] - sums[b]
				if first || q < bestQ {
					bestQ, ba, bb, first = q, a, b, false
				}
			}
		}
		i, j := idx[ba], idx[bb]
		order++
		merged := &Node{Leaf: -1, Left: nodes[i], Right: nodes[j], Height: order}
		// Distances from the new node.
		for c := 0; c < r; c++ {
			k := idx[c]
			if k == i || k == j {
				continue
			}
			nk := (d[i][k] + d[j][k] - d[i][j]) / 2
			d[i][k], d[k][i] = nk, nk
		}
		nodes[i] = merged
		// Remove bb from the active set.
		idx = append(idx[:bb], idx[bb+1:]...)
	}
	order++
	return &Node{Leaf: -1, Left: nodes[idx[0]], Right: nodes[idx[1]], Height: order}
}
