// Package score provides amino-acid substitution matrices (BLOSUM62,
// BLOSUM50, PAM250), a DNA match/mismatch matrix, affine gap parameter
// sets, and the Karlin-Altschul statistical parameters BLAST's E-value
// computation needs.  Residue order everywhere follows seq.Protein:
// A R N D C Q E G H I L K M F P S T W Y V.
package score

import (
	"fmt"

	"bioperf5/internal/bio/seq"
)

// Matrix is a substitution matrix over an alphabet.
type Matrix struct {
	Name  string
	Alpha *seq.Alphabet
	cells []int8 // Size x Size row-major
}

// New builds a matrix from rows (must be Size x Size).
func New(name string, a *seq.Alphabet, rows [][]int8) (*Matrix, error) {
	n := a.Size()
	if len(rows) != n {
		return nil, fmt.Errorf("score: %s: %d rows, want %d", name, len(rows), n)
	}
	m := &Matrix{Name: name, Alpha: a, cells: make([]int8, n*n)}
	for i, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("score: %s: row %d has %d cells, want %d", name, i, len(r), n)
		}
		copy(m.cells[i*n:], r)
	}
	return m, nil
}

func mustNew(name string, a *seq.Alphabet, rows [][]int8) *Matrix {
	m, err := New(name, a, rows)
	if err != nil {
		panic(err)
	}
	return m
}

// Score returns the substitution score of residue codes a and b.
func (m *Matrix) Score(a, b byte) int {
	return int(m.cells[int(a)*m.Alpha.Size()+int(b)])
}

// Row returns the score row for residue code a (length Size); BLAST's
// neighbourhood expansion and Hmmer's match-emission conversion use it.
func (m *Matrix) Row(a byte) []int8 {
	n := m.Alpha.Size()
	return m.cells[int(a)*n : int(a)*n+n]
}

// Symmetric reports whether the matrix is symmetric (all standard
// substitution matrices are).
func (m *Matrix) Symmetric() bool {
	n := m.Alpha.Size()
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if m.cells[i*n+j] != m.cells[j*n+i] {
				return false
			}
		}
	}
	return true
}

// MaxScore returns the largest entry (used for X-drop bounds).
func (m *Matrix) MaxScore() int {
	best := int(m.cells[0])
	for _, c := range m.cells {
		if int(c) > best {
			best = int(c)
		}
	}
	return best
}

// Gap holds affine gap penalties as positive costs: opening a gap of
// length L costs Open + L*Extend.
type Gap struct {
	Open   int
	Extend int
}

// Validate rejects non-positive penalties.
func (g Gap) Validate() error {
	if g.Open < 0 || g.Extend <= 0 {
		return fmt.Errorf("score: invalid gap penalties %+v", g)
	}
	return nil
}

// DefaultProteinGap is the BLAST default 11/1 affine penalty.
var DefaultProteinGap = Gap{Open: 11, Extend: 1}

// ClustalWGap is the ClustalW protein default 10/0.2 (scaled x5 to stay
// integral: 50/1 against a x5-scaled matrix is equivalent; we keep 10/1
// which preserves the qualitative gap structure with integer DP).
var ClustalWGap = Gap{Open: 10, Extend: 1}

// KarlinAltschul carries the statistical parameters for E-values:
// E = K * m * n * exp(-lambda * S).
type KarlinAltschul struct {
	Lambda float64
	K      float64
}

// Blosum62Gapped11_1 is the standard gapped Karlin-Altschul parameter
// set for BLOSUM62 with gap penalties 11/1.
var Blosum62Gapped11_1 = KarlinAltschul{Lambda: 0.267, K: 0.041}

// Blosum62Ungapped is the ungapped parameter set for BLOSUM62.
var Blosum62Ungapped = KarlinAltschul{Lambda: 0.318, K: 0.13}

// BLOSUM62 is the standard matrix BLAST defaults to.
var BLOSUM62 = mustNew("BLOSUM62", seq.Protein, [][]int8{
	{4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0},
	{-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3},
	{-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3},
	{-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3},
	{0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1},
	{-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2},
	{-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2},
	{0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3},
	{-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3},
	{-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3},
	{-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1},
	{-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2},
	{-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1},
	{-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1},
	{-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2},
	{1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2},
	{0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0},
	{-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3},
	{-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1},
	{0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4},
})

// BLOSUM50 is the ssearch (Fasta) default matrix.
var BLOSUM50 = mustNew("BLOSUM50", seq.Protein, [][]int8{
	{5, -2, -1, -2, -1, -1, -1, 0, -2, -1, -2, -1, -1, -3, -1, 1, 0, -3, -2, 0},
	{-2, 7, -1, -2, -4, 1, 0, -3, 0, -4, -3, 3, -2, -3, -3, -1, -1, -3, -1, -3},
	{-1, -1, 7, 2, -2, 0, 0, 0, 1, -3, -4, 0, -2, -4, -2, 1, 0, -4, -2, -3},
	{-2, -2, 2, 8, -4, 0, 2, -1, -1, -4, -4, -1, -4, -5, -1, 0, -1, -5, -3, -4},
	{-1, -4, -2, -4, 13, -3, -3, -3, -3, -2, -2, -3, -2, -2, -4, -1, -1, -5, -3, -1},
	{-1, 1, 0, 0, -3, 7, 2, -2, 1, -3, -2, 2, 0, -4, -1, 0, -1, -1, -1, -3},
	{-1, 0, 0, 2, -3, 2, 6, -3, 0, -4, -3, 1, -2, -3, -1, -1, -1, -3, -2, -3},
	{0, -3, 0, -1, -3, -2, -3, 8, -2, -4, -4, -2, -3, -4, -2, 0, -2, -3, -3, -4},
	{-2, 0, 1, -1, -3, 1, 0, -2, 10, -4, -3, 0, -1, -1, -2, -1, -2, -3, 2, -4},
	{-1, -4, -3, -4, -2, -3, -4, -4, -4, 5, 2, -3, 2, 0, -3, -3, -1, -3, -1, 4},
	{-2, -3, -4, -4, -2, -2, -3, -4, -3, 2, 5, -3, 3, 1, -4, -3, -1, -2, -1, 1},
	{-1, 3, 0, -1, -3, 2, 1, -2, 0, -3, -3, 6, -2, -4, -1, 0, -1, -3, -2, -3},
	{-1, -2, -2, -4, -2, 0, -2, -3, -1, 2, 3, -2, 7, 0, -3, -2, -1, -1, 0, 1},
	{-3, -3, -4, -5, -2, -4, -3, -4, -1, 0, 1, -4, 0, 8, -4, -3, -2, 1, 4, -1},
	{-1, -3, -2, -1, -4, -1, -1, -2, -2, -3, -4, -1, -3, -4, 10, -1, -1, -4, -3, -3},
	{1, -1, 1, 0, -1, 0, -1, 0, -1, -3, -3, 0, -2, -3, -1, 5, 2, -4, -2, -2},
	{0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 2, 5, -3, -2, 0},
	{-3, -3, -4, -5, -5, -1, -3, -3, -3, -3, -2, -3, -1, 1, -4, -4, -3, 15, 2, -3},
	{-2, -1, -2, -3, -3, -1, -2, -3, 2, -1, -1, -2, 0, 4, -3, -2, -2, 2, 8, -1},
	{0, -3, -3, -4, -1, -3, -3, -4, -4, 4, 1, -3, 1, -1, -3, -2, 0, -3, -1, 5},
})

// PAM250 is the classic Dayhoff matrix (ClustalW's slow-pairwise
// option supports it).
var PAM250 = mustNew("PAM250", seq.Protein, [][]int8{
	{2, -2, 0, 0, -2, 0, 0, 1, -1, -1, -2, -1, -1, -3, 1, 1, 1, -6, -3, 0},
	{-2, 6, 0, -1, -4, 1, -1, -3, 2, -2, -3, 3, 0, -4, 0, 0, -1, 2, -4, -2},
	{0, 0, 2, 2, -4, 1, 1, 0, 2, -2, -3, 1, -2, -3, 0, 1, 0, -4, -2, -2},
	{0, -1, 2, 4, -5, 2, 3, 1, 1, -2, -4, 0, -3, -6, -1, 0, 0, -7, -4, -2},
	{-2, -4, -4, -5, 12, -5, -5, -3, -3, -2, -6, -5, -5, -4, -3, 0, -2, -8, 0, -2},
	{0, 1, 1, 2, -5, 4, 2, -1, 3, -2, -2, 1, -1, -5, 0, -1, -1, -5, -4, -2},
	{0, -1, 1, 3, -5, 2, 4, 0, 1, -2, -3, 0, -2, -5, -1, 0, 0, -7, -4, -2},
	{1, -3, 0, 1, -3, -1, 0, 5, -2, -3, -4, -2, -3, -5, 0, 1, 0, -7, -5, -1},
	{-1, 2, 2, 1, -3, 3, 1, -2, 6, -2, -2, 0, -2, -2, 0, -1, -1, -3, 0, -2},
	{-1, -2, -2, -2, -2, -2, -2, -3, -2, 5, 2, -2, 2, 1, -2, -1, 0, -5, -1, 4},
	{-2, -3, -3, -4, -6, -2, -3, -4, -2, 2, 6, -3, 4, 2, -3, -3, -2, -2, -1, 2},
	{-1, 3, 1, 0, -5, 1, 0, -2, 0, -2, -3, 5, 0, -5, -1, 0, 0, -3, -4, -2},
	{-1, 0, -2, -3, -5, -1, -2, -3, -2, 2, 4, 0, 6, 0, -2, -2, -1, -4, -2, 2},
	{-3, -4, -3, -6, -4, -5, -5, -5, -2, 1, 2, -5, 0, 9, -5, -3, -3, 0, 7, -1},
	{1, 0, 0, -1, -3, 0, -1, 0, 0, -2, -3, -1, -2, -5, 6, 1, 0, -6, -5, -1},
	{1, 0, 1, 0, 0, -1, 0, 1, -1, -1, -3, 0, -2, -3, 1, 2, 1, -2, -3, -1},
	{1, -1, 0, 0, -2, -1, 0, 0, -1, 0, -2, 0, -1, -3, 0, 1, 3, -5, -3, 0},
	{-6, 2, -4, -7, -8, -5, -7, -7, -3, -5, -2, -3, -4, 0, -6, -2, -5, 17, 0, -6},
	{-3, -4, -2, -4, 0, -4, -4, -5, 0, -1, -1, -4, -2, 7, -5, -3, -3, 0, 10, -2},
	{0, -2, -2, -2, -2, -2, -2, -1, -2, 4, 2, -2, 2, -1, -1, -1, 0, -6, -2, 4},
})

// DNAMatrix builds a match/mismatch matrix over the DNA alphabet.
func DNAMatrix(match, mismatch int8) *Matrix {
	n := seq.DNA.Size()
	rows := make([][]int8, n)
	for i := range rows {
		rows[i] = make([]int8, n)
		for j := range rows[i] {
			if i == j {
				rows[i][j] = match
			} else {
				rows[i][j] = mismatch
			}
		}
	}
	return mustNew(fmt.Sprintf("DNA(%d/%d)", match, mismatch), seq.DNA, rows)
}
