package score

import (
	"testing"

	"bioperf5/internal/bio/seq"
)

func TestStandardMatricesSymmetric(t *testing.T) {
	for _, m := range []*Matrix{BLOSUM62, BLOSUM50, PAM250} {
		if !m.Symmetric() {
			n := m.Alpha.Size()
			for i := 0; i < n; i++ {
				for j := 0; j < i; j++ {
					if m.Score(byte(i), byte(j)) != m.Score(byte(j), byte(i)) {
						t.Errorf("%s asymmetric at %c/%c: %d vs %d", m.Name,
							m.Alpha.Letter(byte(i)), m.Alpha.Letter(byte(j)),
							m.Score(byte(i), byte(j)), m.Score(byte(j), byte(i)))
					}
				}
			}
		}
	}
}

func TestDiagonalDominance(t *testing.T) {
	// Identity scores are the row maxima for substitution matrices
	// (standard property; guards against transcription errors).
	for _, m := range []*Matrix{BLOSUM62, BLOSUM50, PAM250} {
		n := m.Alpha.Size()
		for i := 0; i < n; i++ {
			d := m.Score(byte(i), byte(i))
			if d <= 0 {
				t.Errorf("%s: diagonal %c = %d, want positive", m.Name, m.Alpha.Letter(byte(i)), d)
			}
			for j := 0; j < n; j++ {
				if j != i && m.Score(byte(i), byte(j)) > d {
					t.Errorf("%s: off-diagonal %c/%c (%d) exceeds diagonal (%d)",
						m.Name, m.Alpha.Letter(byte(i)), m.Alpha.Letter(byte(j)),
						m.Score(byte(i), byte(j)), d)
				}
			}
		}
	}
}

func TestKnownBlosum62Values(t *testing.T) {
	code := func(l byte) byte { return byte(seq.Protein.Code(l)) }
	cases := []struct {
		a, b byte
		want int
	}{
		{'A', 'A', 4}, {'W', 'W', 11}, {'C', 'C', 9},
		{'A', 'R', -1}, {'W', 'G', -2}, {'I', 'V', 3},
		{'D', 'E', 2}, {'K', 'R', 2}, {'F', 'Y', 3},
	}
	for _, c := range cases {
		if got := BLOSUM62.Score(code(c.a), code(c.b)); got != c.want {
			t.Errorf("BLOSUM62[%c][%c] = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRowAccess(t *testing.T) {
	a := byte(seq.Protein.Code('A'))
	row := BLOSUM62.Row(a)
	if len(row) != 20 {
		t.Fatalf("row length = %d", len(row))
	}
	for j := range row {
		if int(row[j]) != BLOSUM62.Score(a, byte(j)) {
			t.Errorf("Row/Score disagree at %d", j)
		}
	}
}

func TestMaxScore(t *testing.T) {
	if got := BLOSUM62.MaxScore(); got != 11 { // W/W
		t.Errorf("BLOSUM62 max = %d, want 11", got)
	}
	if got := PAM250.MaxScore(); got != 17 { // W/W
		t.Errorf("PAM250 max = %d, want 17", got)
	}
}

func TestDNAMatrix(t *testing.T) {
	m := DNAMatrix(5, -4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := -4
			if i == j {
				want = 5
			}
			if got := m.Score(byte(i), byte(j)); got != want {
				t.Errorf("dna[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
	if !m.Symmetric() {
		t.Error("dna matrix asymmetric")
	}
}

func TestNewRejectsBadShapes(t *testing.T) {
	if _, err := New("bad", seq.DNA, [][]int8{{1}}); err == nil {
		t.Error("short matrix accepted")
	}
	if _, err := New("bad", seq.DNA, [][]int8{{1, 2, 3, 4}, {1, 2, 3}, {1, 2, 3, 4}, {1, 2, 3, 4}}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestGapValidate(t *testing.T) {
	if err := DefaultProteinGap.Validate(); err != nil {
		t.Error(err)
	}
	if err := (Gap{Open: -1, Extend: 1}).Validate(); err == nil {
		t.Error("negative open accepted")
	}
	if err := (Gap{Open: 5, Extend: 0}).Validate(); err == nil {
		t.Error("zero extend accepted")
	}
}

func TestKarlinAltschulSanity(t *testing.T) {
	if Blosum62Gapped11_1.Lambda >= Blosum62Ungapped.Lambda {
		t.Error("gapped lambda should be below ungapped lambda")
	}
	if Blosum62Gapped11_1.K <= 0 || Blosum62Ungapped.K <= 0 {
		t.Error("K must be positive")
	}
}
