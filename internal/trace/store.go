package trace

import (
	"container/list"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"

	"bioperf5/internal/fault"
	"bioperf5/internal/telemetry"
)

// DefaultBudget is the in-memory byte budget of a Store when none is
// configured: enough for hundreds of scale-1 kernel traces.
const DefaultBudget = int64(256 << 20)

// StoreOptions configures a Store.  The zero value is usable: default
// byte budget, no disk tier, a private telemetry registry.
type StoreOptions struct {
	// Budget bounds the in-memory tier in bytes; values <= 0 mean
	// DefaultBudget.  Least-recently-used traces are evicted past it
	// (the newest trace is always kept, even when it alone exceeds the
	// budget — evicting it would livelock a capture loop).
	Budget int64
	// Dir, when non-empty, adds a checksummed on-disk tier under that
	// directory so captures survive across processes.  Corrupt files
	// are detected, deleted and recaptured, never trusted.
	Dir string
	// Registry receives the trace.* telemetry counters; nil gets a
	// private registry.
	Registry *telemetry.Registry
	// Upstream, when non-empty, is the base URL of a peer bioperf5
	// server whose /v1/traces endpoint acts as a shared remote tier:
	// probed after a local disk miss, pushed to after a local capture.
	// Best-effort; every downloaded trace is checksum-verified and
	// matched against the requested key before use.
	Upstream string
	// Transport, when non-nil, overrides the remote tier's HTTP
	// transport — the chaos suite plugs its fault injector in here.
	Transport http.RoundTripper
	// Injector, when non-nil, is consulted at fault.SiteTrace after
	// every disk write: a Corrupt decision tears the freshly written
	// file, modelling bit rot the next process must detect and heal.
	Injector fault.Injector
}

// Store is the content-addressed trace cache: an in-memory LRU with a
// byte budget in front of an optional on-disk tier, with single-flight
// capture so concurrent requests for the same trace run one functional
// execution.  All methods are safe for concurrent use.
type Store struct {
	budget int64
	dir    string
	remote *remoteTier
	inj    fault.Injector

	mu       sync.Mutex
	entries  map[string]*list.Element // key hash -> lru element
	lru      *list.List               // front = most recently used
	bytes    int64
	inflight map[string]*flight

	mCaptures, mMemHits, mDiskHits  *telemetry.Counter
	mDiskWrites, mCorrupt, mEvicted *telemetry.Counter
	mFaults                         *telemetry.Counter
	gBytes, gEntries                *telemetry.Gauge
}

type storeEntry struct {
	hash string
	t    *Trace
}

type flight struct {
	done chan struct{}
	t    *Trace
	err  error
}

// NewStore builds a store.
func NewStore(o StoreOptions) *Store {
	if o.Budget <= 0 {
		o.Budget = DefaultBudget
	}
	reg := o.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Store{
		budget:   o.Budget,
		dir:      o.Dir,
		inj:      o.Injector,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*flight),

		mFaults:     reg.Counter("trace.faults.injected"),
		mCaptures:   reg.Counter("trace.captures"),
		mMemHits:    reg.Counter("trace.hits.memory"),
		mDiskHits:   reg.Counter("trace.hits.disk"),
		mDiskWrites: reg.Counter("trace.disk.writes"),
		mCorrupt:    reg.Counter("trace.corrupt"),
		mEvicted:    reg.Counter("trace.evictions"),
		gBytes:      reg.Gauge("trace.bytes"),
		gEntries:    reg.Gauge("trace.entries"),
	}
	if o.Upstream != "" {
		s.remote = newRemoteTier(o.Upstream, o.Transport, reg)
	}
	return s
}

// GetOrCapture returns the trace for key, capturing it with the given
// function if no tier has it.  The second return reports a hit: true
// when the trace already existed (in memory, on disk, or captured by a
// concurrent caller this store coalesced with), false when this call
// ran the capture.  A capture error is returned without storing
// anything, so a later call retries.
func (s *Store) GetOrCapture(key Key, capture func() (*Trace, error)) (*Trace, bool, error) {
	hash := key.Hash()
	for {
		s.mu.Lock()
		if el, ok := s.entries[hash]; ok {
			s.lru.MoveToFront(el)
			t := el.Value.(*storeEntry).t
			s.mu.Unlock()
			s.mMemHits.Add(1)
			return t, true, nil
		}
		if fl, ok := s.inflight[hash]; ok {
			s.mu.Unlock()
			<-fl.done
			if fl.err != nil {
				return nil, false, fl.err
			}
			return fl.t, true, nil
		}
		fl := &flight{done: make(chan struct{})}
		s.inflight[hash] = fl
		s.mu.Unlock()

		t, hit, err := s.fill(hash, key, capture)
		fl.t, fl.err = t, err
		s.mu.Lock()
		delete(s.inflight, hash)
		s.mu.Unlock()
		close(fl.done)
		return t, hit, err
	}
}

// Get returns the trace for key if some tier has it, without
// capturing.  Used by the explicit replay-only policy.
func (s *Store) Get(key Key) (*Trace, bool) {
	hash := key.Hash()
	s.mu.Lock()
	if el, ok := s.entries[hash]; ok {
		s.lru.MoveToFront(el)
		t := el.Value.(*storeEntry).t
		s.mu.Unlock()
		s.mMemHits.Add(1)
		return t, true
	}
	s.mu.Unlock()
	if t, ok := s.diskLoad(hash, key); ok {
		s.install(hash, t)
		s.mDiskHits.Add(1)
		return t, true
	}
	if s.remote != nil {
		if t, ok := s.remote.load(hash, key); ok {
			s.install(hash, t)
			s.diskWrite(hash, t)
			return t, true
		}
	}
	return nil, false
}

// Put installs a freshly captured trace under key, replacing any
// existing entry (the forced-capture policy uses it).
func (s *Store) Put(key Key, t *Trace) {
	s.install(key.Hash(), t)
	s.diskWrite(key.Hash(), t)
}

// fill resolves a registered single-flight: disk probe, then the
// shared remote tier, then capture (pushing the fresh capture back
// upstream so the rest of the fleet replays it).
func (s *Store) fill(hash string, key Key, capture func() (*Trace, error)) (*Trace, bool, error) {
	if t, ok := s.diskLoad(hash, key); ok {
		s.install(hash, t)
		s.mDiskHits.Add(1)
		return t, true, nil
	}
	if s.remote != nil {
		if t, ok := s.remote.load(hash, key); ok {
			s.install(hash, t)
			s.diskWrite(hash, t)
			return t, true, nil
		}
	}
	t, err := capture()
	if err != nil {
		return nil, false, err
	}
	s.mCaptures.Add(1)
	s.install(hash, t)
	s.diskWrite(hash, t)
	if s.remote != nil {
		s.remote.store(hash, t)
	}
	return t, false, nil
}

// install puts a trace into the in-memory tier and evicts past the
// byte budget.
func (s *Store) install(hash string, t *Trace) {
	s.mu.Lock()
	if el, ok := s.entries[hash]; ok {
		old := el.Value.(*storeEntry)
		s.bytes -= old.t.SizeBytes()
		old.t = t
		s.lru.MoveToFront(el)
	} else {
		s.entries[hash] = s.lru.PushFront(&storeEntry{hash: hash, t: t})
	}
	s.bytes += t.SizeBytes()
	var evicted int64
	for s.bytes > s.budget && s.lru.Len() > 1 {
		el := s.lru.Back()
		e := el.Value.(*storeEntry)
		s.lru.Remove(el)
		delete(s.entries, e.hash)
		s.bytes -= e.t.SizeBytes()
		evicted++
	}
	s.gBytes.Set(float64(s.bytes))
	s.gEntries.Set(float64(s.lru.Len()))
	s.mu.Unlock()
	if evicted > 0 {
		s.mEvicted.Add(uint64(evicted))
	}
}

// Len returns the number of in-memory traces.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Bytes returns the in-memory tier's current size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats is a point-in-time view of the store's counters.
type Stats struct {
	Captures   uint64 `json:"captures"`
	MemoryHits uint64 `json:"memory_hits"`
	DiskHits   uint64 `json:"disk_hits"`
	DiskWrites uint64 `json:"disk_writes"`
	Corrupt    uint64 `json:"corrupt"`
	Evictions  uint64 `json:"evictions"`
	RemoteHits uint64 `json:"remote_hits,omitempty"`
	RemotePuts uint64 `json:"remote_puts,omitempty"`
	Faults     uint64 `json:"faults_injected,omitempty"`
	Bytes      int64  `json:"bytes"`
	Entries    int    `json:"entries"`
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	var rh, rp uint64
	if s.remote != nil {
		rh, rp = s.remote.mHits.Value(), s.remote.mPuts.Value()
	}
	return Stats{
		Captures:   s.mCaptures.Value(),
		MemoryHits: s.mMemHits.Value(),
		DiskHits:   s.mDiskHits.Value(),
		DiskWrites: s.mDiskWrites.Value(),
		Corrupt:    s.mCorrupt.Value(),
		Evictions:  s.mEvicted.Value(),
		RemoteHits: rh,
		RemotePuts: rp,
		Faults:     s.mFaults.Value(),
		Bytes:      s.Bytes(),
		Entries:    s.Len(),
	}
}

// Entry returns the encoded file form of the trace addressed by hash,
// from the in-memory tier or (verified) from disk — the body
// GET /v1/traces/{key} serves.
func (s *Store) Entry(hash string) ([]byte, bool) {
	s.mu.Lock()
	var t *Trace
	if el, ok := s.entries[hash]; ok {
		s.lru.MoveToFront(el)
		t = el.Value.(*storeEntry).t
	}
	s.mu.Unlock()
	if t != nil {
		b, err := t.EncodeFile()
		if err != nil {
			return nil, false
		}
		s.mMemHits.Add(1)
		return b, true
	}
	if s.dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(s.path(hash))
	if err != nil {
		return nil, false
	}
	// Serve only what verifies: structural + checksum integrity and a
	// meta that hashes back to the requested address.
	dt, err := DecodeFile(b)
	if err != nil || KeyFromMeta(dt.Meta).Hash() != hash {
		return nil, false
	}
	s.mDiskHits.Add(1)
	return b, true
}

// Install verifies body as an encoded trace file addressed by hash and
// stores it in both local tiers — the write path behind
// PUT /v1/traces/{key}.
func (s *Store) Install(hash string, body []byte) error {
	t, err := DecodeFile(body)
	if err != nil {
		return err
	}
	if KeyFromMeta(t.Meta).Hash() != hash {
		return fmt.Errorf("trace: uploaded trace does not answer key %s", hash)
	}
	s.install(hash, t)
	s.diskWrite(hash, t)
	return nil
}

func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, hash+".trace")
}

// diskLoad reads and verifies a trace file.  A file that fails the
// checksum, or whose meta does not answer the key, is corrupt: it is
// counted, removed, and the caller captures fresh.
func (s *Store) diskLoad(hash string, key Key) (*Trace, bool) {
	if s.dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(s.path(hash))
	if err != nil {
		return nil, false
	}
	t, err := DecodeFile(b)
	if err != nil || !key.Matches(t.Meta) {
		s.mCorrupt.Add(1)
		os.Remove(s.path(hash))
		return nil, false
	}
	return t, true
}

// diskWrite persists a trace crash-safely: temp file, fsync, rename,
// directory fsync — the same discipline as the scheduler's result
// cache, so a torn write can never sit at the final address.  Failures
// are not errors: the in-memory trace is sound, only the cross-process
// tier misses next time.
func (s *Store) diskWrite(hash string, t *Trace) {
	if s.dir == "" {
		return
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return
	}
	b, err := t.EncodeFile()
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, hash+".tmp*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.path(hash)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	s.mDiskWrites.Add(1)
	s.mangle(hash, int64(len(b)))
}

// mangle is the SiteTrace fault hook: when the injector orders a
// Corrupt, the just-written file is torn in half after it landed at
// its final address — exactly the damage the crash-safe write protocol
// cannot produce on its own, so diskLoad's detect-and-recapture path
// and `bioperf5 fsck` get exercised against a real torn file.
func (s *Store) mangle(hash string, size int64) {
	if s.inj == nil {
		return
	}
	if s.inj.Decide(fault.SiteTrace, hash, 0).Kind != fault.Corrupt {
		return
	}
	if err := os.Truncate(s.path(hash), size/2); err != nil {
		return
	}
	s.mFaults.Add(1)
}
