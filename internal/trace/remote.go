package trace

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"time"

	"bioperf5/internal/telemetry"
)

// Remote trace tier.  With StoreOptions.Upstream set, the store probes
// a peer's /v1/traces endpoint after a local disk miss and pushes
// fresh captures back, so one node's functional execution is every
// node's timing replay.  Like the scheduler's remote result cache the
// tier is strictly best-effort — any failure degrades to a miss and
// the store captures locally — and every downloaded trace is decoded,
// checksum-verified and matched against the requested key before use.

// remoteTraceTimeout bounds one upstream round trip.  Traces are
// larger than result entries (2 bytes/instruction at scale 1) but
// still transfer in well under this on any sane link.
const remoteTraceTimeout = 30 * time.Second

// maxRemoteTraceBytes bounds an upstream response body.
const maxRemoteTraceBytes = 64 << 20

type remoteTier struct {
	base string
	hc   *http.Client

	mHits, mMisses, mErrors, mPuts *telemetry.Counter
}

func newRemoteTier(base string, transport http.RoundTripper, reg *telemetry.Registry) *remoteTier {
	return &remoteTier{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: remoteTraceTimeout, Transport: transport},

		mHits:   reg.Counter("trace.remote.hits"),
		mMisses: reg.Counter("trace.remote.misses"),
		mErrors: reg.Counter("trace.remote.errors"),
		mPuts:   reg.Counter("trace.remote.puts"),
	}
}

func (r *remoteTier) url(hash string) string {
	return r.base + "/v1/traces/" + hash
}

// load fetches and verifies the trace at hash; anything short of a
// checksum-clean file answering key is a miss.
func (r *remoteTier) load(hash string, key Key) (*Trace, bool) {
	resp, err := r.hc.Get(r.url(hash))
	if err != nil {
		r.mErrors.Add(1)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		r.mMisses.Add(1)
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		r.mErrors.Add(1)
		return nil, false
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteTraceBytes))
	if err != nil {
		r.mErrors.Add(1)
		return nil, false
	}
	t, err := DecodeFile(b)
	if err != nil || !key.Matches(t.Meta) {
		r.mErrors.Add(1)
		return nil, false
	}
	r.mHits.Add(1)
	return t, true
}

// store pushes one captured trace upstream, best-effort.
func (r *remoteTier) store(hash string, t *Trace) {
	b, err := t.EncodeFile()
	if err != nil {
		r.mErrors.Add(1)
		return
	}
	req, err := http.NewRequest(http.MethodPut, r.url(hash), bytes.NewReader(b))
	if err != nil {
		r.mErrors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.hc.Do(req)
	if err != nil {
		r.mErrors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		r.mErrors.Add(1)
		return
	}
	r.mPuts.Add(1)
}
