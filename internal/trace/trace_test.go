package trace

import (
	"errors"
	"testing"
)

// sampleRecords exercises every encoding path: plain ops, taken and
// not-taken branches, loads and stores across all three miss levels,
// and backward PC deltas (loops).
func sampleRecords() []Record {
	return []Record{
		{PC: 0},
		{PC: 1, HasEA: true, EA: 0x7FFF0000, MissLevel: 2},
		{PC: 2, HasEA: true, EA: 0x7FFF0008, MissLevel: 0},
		{PC: 3, Taken: true},
		{PC: 1, HasEA: true, EA: 0x1000, MissLevel: 1},
		{PC: 2, HasEA: true, EA: 0x7FFF0000},
		{PC: 3, Taken: true},
		{PC: 1, Taken: false},
		{PC: 4},
	}
}

func buildSample(t *testing.T) *Trace {
	t.Helper()
	var b Builder
	for _, r := range sampleRecords() {
		b.Add(r)
	}
	return b.Finish(Meta{App: "Fasta", Kernel: "dropgsw", Variant: "original",
		Seed: 1, Scale: 1, ProgHash: "abc", Result: 42})
}

func TestBuilderIterRoundTrip(t *testing.T) {
	tr := buildSample(t)
	want := sampleRecords()
	if tr.Meta.Records != uint64(len(want)) {
		t.Fatalf("Records = %d, want %d", tr.Meta.Records, len(want))
	}
	it := tr.Iter()
	var got []Record
	for it.Next() {
		got = append(got, *it.Rec())
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i, w := range want {
		// Next is derived: the successor's PC, or own PC for the final
		// record (the machine's halt convention).
		w.Next = w.PC
		if i+1 < len(want) {
			w.Next = want[i+1].PC
		}
		if got[i] != w {
			t.Errorf("record %d = %+v, want %+v", i, got[i], w)
		}
	}
}

func TestIterEmptyTrace(t *testing.T) {
	var b Builder
	tr := b.Finish(Meta{})
	it := tr.Iter()
	if it.Next() {
		t.Fatal("Next on empty trace")
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestIterTruncatedPayload(t *testing.T) {
	tr := buildSample(t)
	tr.Payload = tr.Payload[:len(tr.Payload)/2]
	it := tr.Iter()
	for it.Next() {
	}
	if err := it.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated payload: err = %v, want ErrCorrupt", err)
	}
}

func TestIterRecordCountMismatch(t *testing.T) {
	tr := buildSample(t)
	tr.Meta.Records += 3 // claims more records than the payload holds
	it := tr.Iter()
	for it.Next() {
	}
	if err := it.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("record overcount: err = %v, want ErrCorrupt", err)
	}
	tr2 := buildSample(t)
	tr2.Meta.Records -= 3 // payload longer than the claimed count
	it = tr2.Iter()
	for it.Next() {
	}
	if err := it.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("record undercount: err = %v, want ErrCorrupt", err)
	}
}

func TestEncodeDecodeFileRoundTrip(t *testing.T) {
	tr := buildSample(t)
	b, err := tr.EncodeFile()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != tr.Meta {
		t.Errorf("meta = %+v, want %+v", got.Meta, tr.Meta)
	}
	if string(got.Payload) != string(tr.Payload) {
		t.Error("payload altered by file round trip")
	}
}

// TestDecodeFileBitFlips flips every byte of the encoded file in turn;
// the SHA-256 must catch each one as ErrCorrupt, never decode it.
func TestDecodeFileBitFlips(t *testing.T) {
	tr := buildSample(t)
	b, err := tr.EncodeFile()
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		mangled := append([]byte(nil), b...)
		mangled[i] ^= 0x40
		if _, err := DecodeFile(mangled); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at byte %d not detected: err = %v", i, err)
		}
	}
}

func TestDecodeFileTruncated(t *testing.T) {
	tr := buildSample(t)
	b, err := tr.EncodeFile()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, len(magic), len(b) / 2, len(b) - 1} {
		if _, err := DecodeFile(b[:n]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestKeyHashMovesWithEveryField(t *testing.T) {
	base := Key{App: "Fasta", Variant: "original", Seed: 1, Scale: 1,
		ProgHash: "abc"}
	mutations := map[string]func(*Key){
		"app":     func(k *Key) { k.App = "Hmmer" },
		"variant": func(k *Key) { k.Variant = "combination" },
		"seed":    func(k *Key) { k.Seed = 2 },
		"scale":   func(k *Key) { k.Scale = 2 },
		"prog":    func(k *Key) { k.ProgHash = "def" },
	}
	seen := map[string]string{base.Hash(): "base"}
	for name, mutate := range mutations {
		k := base
		mutate(&k)
		if prev, dup := seen[k.Hash()]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[k.Hash()] = name
	}
}

func TestKeyMatches(t *testing.T) {
	k := Key{App: "Fasta", Variant: "original", Seed: 1, Scale: 1,
		ProgHash: "abc"}
	m := Meta{App: "Fasta", Variant: "original", Seed: 1, Scale: 1,
		ProgHash: "abc"}
	if !k.Matches(m) {
		t.Fatal("matching meta rejected")
	}
	m.ProgHash = "def"
	if k.Matches(m) {
		t.Fatal("mismatched program hash accepted")
	}
}
