package trace

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// traceHub is a minimal in-memory /v1/traces peer.
func traceHub(t *testing.T) (*httptest.Server, *sync.Map) {
	t.Helper()
	var store sync.Map
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/traces/{key}", func(w http.ResponseWriter, r *http.Request) {
		if b, ok := store.Load(r.PathValue("key")); ok {
			w.Write(b.([]byte))
			return
		}
		http.Error(w, "miss", http.StatusNotFound)
	})
	mux.HandleFunc("PUT /v1/traces/{key}", func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		store.Store(r.PathValue("key"), b)
		w.WriteHeader(http.StatusNoContent)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &store
}

// TestRemoteTierShared: one store's capture is another store's replay.
func TestRemoteTierShared(t *testing.T) {
	hub, store := traceHub(t)

	sA := NewStore(StoreOptions{Upstream: hub.URL})
	if _, hit, err := sA.GetOrCapture(testKey(1), func() (*Trace, error) {
		return testTrace(1, 100), nil
	}); err != nil || hit {
		t.Fatalf("first capture = (hit=%v, %v)", hit, err)
	}
	if st := sA.Stats(); st.RemotePuts != 1 {
		t.Fatalf("stats = %+v, want the capture pushed upstream", st)
	}
	if _, ok := store.Load(testKey(1).Hash()); !ok {
		t.Fatal("push left nothing on the hub")
	}

	sB := NewStore(StoreOptions{Upstream: hub.URL})
	tr, hit, err := sB.GetOrCapture(testKey(1), func() (*Trace, error) {
		return nil, errors.New("should have been a remote hit")
	})
	if err != nil || !hit || tr == nil {
		t.Fatalf("remote fill = (%v, hit=%v, %v)", tr, hit, err)
	}
	if st := sB.Stats(); st.RemoteHits != 1 || st.Captures != 0 {
		t.Errorf("stats = %+v, want a remote hit and no capture", st)
	}

	// The replay-only Get path reaches the remote tier too.
	sC := NewStore(StoreOptions{Upstream: hub.URL})
	if _, ok := sC.Get(testKey(1)); !ok {
		t.Error("Get missed a trace the hub holds")
	}
}

// TestRemoteTierRejectsCorrupt: a damaged upstream trace is detected
// and captured fresh, never replayed.
func TestRemoteTierRejectsCorrupt(t *testing.T) {
	hub, store := traceHub(t)
	b, err := testTrace(1, 100).EncodeFile()
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0xff // flip a payload byte; the checksum must catch it
	store.Store(testKey(1).Hash(), b)

	var captures atomic.Int64
	s := NewStore(StoreOptions{Upstream: hub.URL})
	if _, hit, err := s.GetOrCapture(testKey(1), func() (*Trace, error) {
		captures.Add(1)
		return testTrace(1, 100), nil
	}); err != nil || hit {
		t.Fatalf("fill over corrupt upstream = (hit=%v, %v)", hit, err)
	}
	if captures.Load() != 1 {
		t.Errorf("corrupt upstream trace replayed without recapture")
	}
}

// TestRemoteTierRejectsWrongKey: a sound trace parked at the wrong
// address must not answer the key that address names.
func TestRemoteTierRejectsWrongKey(t *testing.T) {
	hub, store := traceHub(t)
	b, err := testTrace(1, 100).EncodeFile()
	if err != nil {
		t.Fatal(err)
	}
	store.Store(testKey(2).Hash(), b)

	var captures atomic.Int64
	s := NewStore(StoreOptions{Upstream: hub.URL})
	if _, hit, err := s.GetOrCapture(testKey(2), func() (*Trace, error) {
		captures.Add(1)
		return testTrace(2, 100), nil
	}); err != nil || hit {
		t.Fatalf("fill over mismatched upstream = (hit=%v, %v)", hit, err)
	}
	if captures.Load() != 1 {
		t.Errorf("mismatched trace replayed without recapture")
	}
}

// TestRemoteTierUnreachableDegrades: a dead hub degrades to local
// capture.
func TestRemoteTierUnreachableDegrades(t *testing.T) {
	s := NewStore(StoreOptions{Upstream: "http://127.0.0.1:1"})
	tr, hit, err := s.GetOrCapture(testKey(1), func() (*Trace, error) {
		return testTrace(1, 100), nil
	})
	if err != nil || hit || tr == nil {
		t.Fatalf("fill with dead hub = (%v, hit=%v, %v)", tr, hit, err)
	}
}
