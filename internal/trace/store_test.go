package trace

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"bioperf5/internal/fault"
)

func testKey(i int) Key {
	return Key{App: "Fasta", Variant: "original", Seed: int64(i), Scale: 1,
		ProgHash: "abc"}
}

// testTrace builds a trace of roughly n payload bytes answering testKey(i).
func testTrace(i, n int) *Trace {
	var b Builder
	for pc := 0; len(b.payload) < n; pc++ {
		b.Add(Record{PC: pc, HasEA: true, EA: uint64(pc * 64)})
	}
	k := testKey(i)
	return b.Finish(Meta{App: k.App, Variant: k.Variant, Seed: k.Seed,
		Scale: k.Scale, ProgHash: k.ProgHash})
}

func TestStoreGetOrCapture(t *testing.T) {
	s := NewStore(StoreOptions{})
	var captures atomic.Int64
	capture := func() (*Trace, error) {
		captures.Add(1)
		return testTrace(1, 100), nil
	}
	tr, hit, err := s.GetOrCapture(testKey(1), capture)
	if err != nil || hit || tr == nil {
		t.Fatalf("first call = (%v, %v, %v), want fresh capture", tr, hit, err)
	}
	tr2, hit, err := s.GetOrCapture(testKey(1), capture)
	if err != nil || !hit || tr2 != tr {
		t.Fatalf("second call = (%p vs %p, %v, %v), want memory hit", tr2, tr, hit, err)
	}
	if captures.Load() != 1 {
		t.Errorf("captured %d times, want 1", captures.Load())
	}
	st := s.Stats()
	if st.Captures != 1 || st.MemoryHits != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStoreCaptureErrorNotCached(t *testing.T) {
	s := NewStore(StoreOptions{})
	var calls atomic.Int64
	_, _, err := s.GetOrCapture(testKey(1), func() (*Trace, error) {
		calls.Add(1)
		return nil, errors.New("transient")
	})
	if err == nil {
		t.Fatal("capture error swallowed")
	}
	if _, hit, err := s.GetOrCapture(testKey(1), func() (*Trace, error) {
		calls.Add(1)
		return testTrace(1, 10), nil
	}); err != nil || hit {
		t.Fatalf("retry = (hit=%v, %v), want fresh capture", hit, err)
	}
	if calls.Load() != 2 {
		t.Errorf("capture called %d times, want 2 (errors must not be cached)", calls.Load())
	}
}

// TestStoreSingleFlight hammers one key from many goroutines: exactly
// one capture runs, every other caller coalesces onto it as a hit.
func TestStoreSingleFlight(t *testing.T) {
	s := NewStore(StoreOptions{})
	var captures atomic.Int64
	release := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	var misses atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, hit, err := s.GetOrCapture(testKey(1), func() (*Trace, error) {
				captures.Add(1)
				<-release
				return testTrace(1, 10), nil
			})
			if err != nil {
				t.Error(err)
			}
			if !hit {
				misses.Add(1)
			}
		}()
	}
	// Let the flight register before releasing the capture.  The other
	// goroutines either wait on it or hit memory afterwards; none may
	// start a second capture.
	for s.Stats().Captures == 0 && captures.Load() == 0 {
	}
	close(release)
	wg.Wait()
	if captures.Load() != 1 {
		t.Errorf("captured %d times, want 1", captures.Load())
	}
	if misses.Load() != 1 {
		t.Errorf("%d callers report a miss, want exactly the capturing one", misses.Load())
	}
}

func TestStoreLRUEviction(t *testing.T) {
	one := testTrace(1, 1000)
	budget := 3 * one.SizeBytes()
	s := NewStore(StoreOptions{Budget: budget})
	for i := 1; i <= 5; i++ {
		i := i
		if _, _, err := s.GetOrCapture(testKey(i), func() (*Trace, error) {
			return testTrace(i, 1000), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Bytes() > budget {
		t.Errorf("store holds %d bytes over the %d budget", s.Bytes(), budget)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions past the byte budget")
	}
	// The oldest keys were evicted, the newest survive.
	if _, ok := s.Get(testKey(1)); ok {
		t.Error("oldest trace still resident past the budget")
	}
	if _, ok := s.Get(testKey(5)); !ok {
		t.Error("newest trace evicted")
	}
}

func TestStoreKeepsNewestOverBudget(t *testing.T) {
	s := NewStore(StoreOptions{Budget: 1}) // every trace exceeds this
	if _, _, err := s.GetOrCapture(testKey(1), func() (*Trace, error) {
		return testTrace(1, 1000), nil
	}); err != nil {
		t.Fatal(err)
	}
	// The sole resident trace must not be evicted by its own install:
	// that would force a recapture on every request (livelock).
	if _, ok := s.Get(testKey(1)); !ok {
		t.Fatal("newest trace evicted by its own install")
	}
}

func TestStoreDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1 := NewStore(StoreOptions{Dir: dir})
	if _, _, err := s1.GetOrCapture(testKey(1), func() (*Trace, error) {
		return testTrace(1, 100), nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats(); st.DiskWrites != 1 {
		t.Fatalf("stats after capture = %+v", st)
	}

	// A second store over the same directory must load from disk, not
	// capture.
	s2 := NewStore(StoreOptions{Dir: dir})
	tr, hit, err := s2.GetOrCapture(testKey(1), func() (*Trace, error) {
		return nil, errors.New("should have been a disk hit")
	})
	if err != nil || !hit {
		t.Fatalf("disk tier = (hit=%v, %v)", hit, err)
	}
	if tr.Meta.Seed != 1 {
		t.Errorf("disk-loaded meta = %+v", tr.Meta)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.Captures != 0 {
		t.Errorf("stats after disk hit = %+v", st)
	}
}

// TestStoreDiskCorruptionFallsBackToCapture flips one byte of the
// stored trace file: the checksum must catch it, the file must be
// removed, and the store must fall back to a fresh capture.
func TestStoreDiskCorruptionFallsBackToCapture(t *testing.T) {
	dir := t.TempDir()
	s1 := NewStore(StoreOptions{Dir: dir})
	if _, _, err := s1.GetOrCapture(testKey(1), func() (*Trace, error) {
		return testTrace(1, 100), nil
	}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, testKey(1).Hash()+".trace")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	var captures atomic.Int64
	s2 := NewStore(StoreOptions{Dir: dir})
	_, hit, err := s2.GetOrCapture(testKey(1), func() (*Trace, error) {
		captures.Add(1)
		return testTrace(1, 100), nil
	})
	if err != nil || hit {
		t.Fatalf("corrupt file served: (hit=%v, %v)", hit, err)
	}
	if captures.Load() != 1 {
		t.Errorf("capture ran %d times, want 1", captures.Load())
	}
	if st := s2.Stats(); st.Corrupt != 1 || st.DiskHits != 0 {
		t.Errorf("stats = %+v", st)
	}
	// The recapture healed the file: a third store disk-hits again.
	s3 := NewStore(StoreOptions{Dir: dir})
	if _, ok := s3.Get(testKey(1)); !ok {
		t.Error("entry not healed after corruption recapture")
	}
	if st := s3.Stats(); st.DiskHits != 1 || st.Corrupt != 0 {
		t.Errorf("stats after heal = %+v", st)
	}
}

// TestStoreDiskKeyMismatchRejected copies a valid trace file to another
// key's address: the embedded meta no longer answers that key, so it
// must be treated as corrupt.
func TestStoreDiskKeyMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	s1 := NewStore(StoreOptions{Dir: dir})
	if _, _, err := s1.GetOrCapture(testKey(1), func() (*Trace, error) {
		return testTrace(1, 100), nil
	}); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, testKey(1).Hash()+".trace")
	dst := filepath.Join(dir, testKey(2).Hash()+".trace")
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(StoreOptions{Dir: dir})
	_, hit, err := s2.GetOrCapture(testKey(2), func() (*Trace, error) {
		return testTrace(2, 100), nil
	})
	if err != nil || hit {
		t.Fatalf("mismatched file served: (hit=%v, %v)", hit, err)
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStorePutReplaces(t *testing.T) {
	s := NewStore(StoreOptions{})
	s.Put(testKey(1), testTrace(1, 100))
	bigger := testTrace(1, 500)
	s.Put(testKey(1), bigger)
	got, ok := s.Get(testKey(1))
	if !ok || got != bigger {
		t.Fatal("Put did not replace the stored trace")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after replacing one key", s.Len())
	}
	if s.Bytes() != bigger.SizeBytes() {
		t.Errorf("Bytes = %d, want %d (old size must be released)", s.Bytes(), bigger.SizeBytes())
	}
}

func TestStoreNoStrayTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(StoreOptions{Dir: dir})
	for i := 1; i <= 4; i++ {
		s.Put(testKey(i), testTrace(i, 100))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) != ".trace" {
			t.Errorf("stray file in trace dir: %s", ent.Name())
		}
	}
	if len(entries) != 4 {
		t.Errorf("%d files on disk, want 4", len(entries))
	}
}

func TestStoreStatsJSONShape(t *testing.T) {
	// Stats is part of the sweep manifest surface; keep the field set
	// stable.
	st := Stats{Captures: 1, MemoryHits: 2, DiskHits: 3, DiskWrites: 4,
		Corrupt: 5, Evictions: 6, RemoteHits: 9, RemotePuts: 10, Faults: 11, Bytes: 7, Entries: 8}
	got := fmt.Sprintf("%+v", st)
	want := "{Captures:1 MemoryHits:2 DiskHits:3 DiskWrites:4 Corrupt:5 Evictions:6 RemoteHits:9 RemotePuts:10 Faults:11 Bytes:7 Entries:8}"
	if got != want {
		t.Errorf("Stats shape changed: %s", got)
	}
}

func TestStoreSiteTraceInjectionTearsWriteAndHeals(t *testing.T) {
	dir := t.TempDir()
	// Rate-1 SiteTrace corruption: every disk write is torn after
	// landing.
	s := NewStore(StoreOptions{Dir: dir, Injector: &fault.Plan{TraceCorruptRate: 1}})
	tr, hit, err := s.GetOrCapture(testKey(1), func() (*Trace, error) { return testTrace(1, 200), nil })
	if err != nil || hit || tr == nil {
		t.Fatalf("capture = (%v, %v, %v)", tr, hit, err)
	}
	if s.Stats().Faults != 1 {
		t.Fatalf("injected faults = %d, want 1", s.Stats().Faults)
	}
	// The torn file must not decode.
	path := filepath.Join(dir, testKey(1).Hash()+".trace")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFile(b); err == nil {
		t.Fatal("torn trace file still decodes")
	}
	// This store still serves from memory, untroubled.
	if _, ok := s.Get(testKey(1)); !ok {
		t.Fatal("in-memory tier lost the trace")
	}
	// The next process detects the damage and recaptures.
	s2 := NewStore(StoreOptions{Dir: dir})
	var captures atomic.Int64
	tr2, hit, err := s2.GetOrCapture(testKey(1), func() (*Trace, error) {
		captures.Add(1)
		return testTrace(1, 200), nil
	})
	if err != nil || hit || tr2 == nil || captures.Load() != 1 {
		t.Fatalf("heal = (%v, %v, %v), captures %d; want fresh recapture", tr2, hit, err, captures.Load())
	}
	if s2.Stats().Corrupt != 1 {
		t.Errorf("corrupt detections = %d, want 1", s2.Stats().Corrupt)
	}
	// The healed file round-trips.
	b2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFile(b2); err != nil {
		t.Errorf("healed file does not decode: %v", err)
	}
}

func TestStoreNoInjectorNoMangle(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(StoreOptions{Dir: dir})
	s.Put(testKey(2), testTrace(2, 100))
	b, err := os.ReadFile(filepath.Join(dir, testKey(2).Hash()+".trace"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFile(b); err != nil {
		t.Errorf("clean write does not decode: %v", err)
	}
}
