package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"bioperf5/internal/branch"
	"bioperf5/internal/cache"
	"bioperf5/internal/machine"
)

// CanonicalPredictor resolves a cpu.Config predictor spelling ("" or an
// unknown name mean the default) to the canonical name of the predictor
// it instantiates.  Trace identity uses the canonical name because the
// DirWrong annotations are valid exactly for the predictor that
// produced them.
func CanonicalPredictor(name string) string {
	return branch.New(name).Name()
}

// Capturer builds an annotated trace from the dynamic instruction
// stream of one functional execution.  It runs the same fixed data
// hierarchy and the same direction predictor the coupled timing model
// would, in the same program order, so the recorded miss levels and
// predictor verdicts are bit-identical to what cpu.Model.Consume would
// have observed.
type Capturer struct {
	b    Builder
	mem  *cache.Hierarchy
	pred branch.DirectionPredictor
}

// NewCapturer returns a capturer annotating for the named direction
// predictor (resolved through branch.New, like the timing model).
func NewCapturer(predictor string) *Capturer {
	return &Capturer{
		mem:  cache.NewPOWER5Hierarchy(),
		pred: branch.New(predictor),
	}
}

// Observe records one dynamic instruction.  Call it in execution order
// with every instruction the machine steps.
func (c *Capturer) Observe(d machine.DynInst) {
	r := Record{PC: d.Index, Taken: d.Taken}
	ins := d.Ins
	if ins.IsLoad() || ins.IsStore() {
		r.HasEA, r.EA = true, d.EA
		l1 := c.mem.L1.Stats().Misses
		l2 := c.mem.L2.Stats().Misses
		c.mem.Access(d.EA)
		if c.mem.L1.Stats().Misses > l1 {
			r.MissLevel = 1
			if c.mem.L2.Stats().Misses > l2 {
				r.MissLevel = 2
			}
		}
	}
	if ins.IsCondBranch() {
		predTaken := c.pred.Predict(d.Index)
		c.pred.Update(d.Index, d.Taken)
		r.DirWrong = predTaken != d.Taken
	}
	c.b.Add(r)
}

// Records returns the number of instructions observed so far.
func (c *Capturer) Records() uint64 { return c.b.Len() }

// Finish seals the capture.  The predictor name and the per-miss-level
// load latencies are stamped from the live structures so replay charges
// exactly the latencies capture observed.
func (c *Capturer) Finish(meta Meta) *Trace {
	meta.Predictor = c.pred.Name()
	meta.LoadLat = [3]int{
		c.mem.LevelLatency(0),
		c.mem.LevelLatency(1),
		c.mem.LevelLatency(2),
	}
	return c.b.Finish(meta)
}

// keySchema versions the trace content address; bump it when the
// meaning of a key field changes.
const keySchema = 1

// Key is the content identity of a trace: everything the dynamic
// instruction stream and its annotations depend on — and nothing the
// timing sweep varies.  Cells differing only in FXU count, BTAC sizing
// or pipeline penalties share one Key, which is the entire point.
type Key struct {
	App       string
	Variant   string
	Seed      int64
	Scale     int
	Predictor string // canonical name (see CanonicalPredictor)
	ProgHash  string
}

// KeyFromMeta reconstructs the content key a trace answers.  Every Key
// field is stored in the file's meta, which is what lets a remote tier
// verify an uploaded trace against the address it claims: decode,
// rebuild the key, hash, compare.
func KeyFromMeta(m Meta) Key {
	return Key{
		App:       m.App,
		Variant:   m.Variant,
		Seed:      m.Seed,
		Scale:     m.Scale,
		Predictor: m.Predictor,
		ProgHash:  m.ProgHash,
	}
}

// Matches reports whether a trace's meta answers this key.
func (k Key) Matches(m Meta) bool {
	return m.App == k.App && m.Variant == k.Variant && m.Seed == k.Seed &&
		m.Scale == k.Scale && m.Predictor == k.Predictor && m.ProgHash == k.ProgHash
}

// Hash returns the key's content address: the hex SHA-256 of its
// canonical JSON encoding.
func (k Key) Hash() string {
	b, err := json.Marshal(struct {
		Schema int `json:"schema"`
		Key
	}{Schema: keySchema, Key: k})
	if err != nil {
		panic(fmt.Sprintf("trace: marshal key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
