package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"bioperf5/internal/cache"
	"bioperf5/internal/machine"
)

// Capturer builds an annotated trace from the dynamic instruction
// stream of one functional execution.  It runs the same fixed data
// hierarchy the coupled timing model would, in the same program order,
// so the recorded miss levels are bit-identical to what
// cpu.Model.Consume would have observed.  Branch prediction is not
// captured: direction predictors and the BTAC run live at replay time,
// which is what lets one trace serve the whole predictor zoo.
type Capturer struct {
	b   Builder
	mem *cache.Hierarchy
}

// NewCapturer returns a capturer over the fixed POWER5 data hierarchy.
func NewCapturer() *Capturer {
	return &Capturer{mem: cache.NewPOWER5Hierarchy()}
}

// Observe records one dynamic instruction.  Call it in execution order
// with every instruction the machine steps.
func (c *Capturer) Observe(d machine.DynInst) {
	r := Record{PC: d.Index, Taken: d.Taken}
	ins := d.Ins
	if ins.IsLoad() || ins.IsStore() {
		r.HasEA, r.EA = true, d.EA
		l1 := c.mem.L1.Stats().Misses
		l2 := c.mem.L2.Stats().Misses
		c.mem.Access(d.EA)
		if c.mem.L1.Stats().Misses > l1 {
			r.MissLevel = 1
			if c.mem.L2.Stats().Misses > l2 {
				r.MissLevel = 2
			}
		}
	}
	c.b.Add(r)
}

// Records returns the number of instructions observed so far.
func (c *Capturer) Records() uint64 { return c.b.Len() }

// Finish seals the capture.  The per-miss-level load latencies are
// stamped from the live hierarchy so replay charges exactly the
// latencies capture observed.
func (c *Capturer) Finish(meta Meta) *Trace {
	meta.LoadLat = [3]int{
		c.mem.LevelLatency(0),
		c.mem.LevelLatency(1),
		c.mem.LevelLatency(2),
	}
	return c.b.Finish(meta)
}

// keySchema versions the trace content address; bump it when the
// meaning of a key field changes.  Schema 2 dropped the predictor from
// the key: traces are predictor-agnostic as of format version 2.
const keySchema = 2

// Key is the content identity of a trace: everything the dynamic
// instruction stream and its annotations depend on — and nothing the
// timing sweep varies.  Cells differing only in FXU count, BTAC sizing,
// predictor choice or pipeline penalties share one Key, which is the
// entire point.
type Key struct {
	App      string
	Variant  string
	Seed     int64
	Scale    int
	ProgHash string
}

// KeyFromMeta reconstructs the content key a trace answers.  Every Key
// field is stored in the file's meta, which is what lets a remote tier
// verify an uploaded trace against the address it claims: decode,
// rebuild the key, hash, compare.
func KeyFromMeta(m Meta) Key {
	return Key{
		App:      m.App,
		Variant:  m.Variant,
		Seed:     m.Seed,
		Scale:    m.Scale,
		ProgHash: m.ProgHash,
	}
}

// Matches reports whether a trace's meta answers this key.
func (k Key) Matches(m Meta) bool {
	return m.App == k.App && m.Variant == k.Variant && m.Seed == k.Seed &&
		m.Scale == k.Scale && m.ProgHash == k.ProgHash
}

// Hash returns the key's content address: the hex SHA-256 of its
// canonical JSON encoding.
func (k Key) Hash() string {
	b, err := json.Marshal(struct {
		Schema int `json:"schema"`
		Key
	}{Schema: keySchema, Key: k})
	if err != nil {
		panic(fmt.Sprintf("trace: marshal key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
