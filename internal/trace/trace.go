// Package trace implements the capture-once/replay-many dynamic-trace
// subsystem.  The paper's methodology is trace-driven: one dynamic
// instruction stream per (kernel, variant, seed, scale) is evaluated
// under many core configurations, so the functional execution — and
// everything else that is invariant across the timing sweep — should be
// paid for exactly once.
//
// A trace records, per dynamic instruction: the PC (delta-encoded), the
// branch direction, the effective address of a memory access (zig-zag
// delta varint), and one annotation that is itself invariant across
// the timing configurations the sweeps vary (FXU count, BTAC sizing,
// predictor choice, pipeline penalties): the cache miss level of a
// memory access (L1 hit / L2 hit / memory) — the data hierarchy is
// fixed, so the miss sequence depends only on the address stream.
//
// Replay therefore needs neither the functional machine nor the cache:
// only the branch predictors — the direction predictor and the BTAC,
// whose choice and geometry the sweeps vary — stay live in the timing
// model.  Every direction predictor is a deterministic function of the
// (pc, taken) sequence the trace records, which is why one capture
// serves the whole predictor zoo: the predictor is timing
// configuration, not trace identity.  The op class, register uses and
// defs, latencies and branch targets are static per PC and come from
// the compiled program, which the trace pins by content hash.
//
// Traces are versioned, checksummed (SHA-256 over the whole file) and
// content-addressed by Key; Store adds an in-memory LRU with a byte
// budget plus an on-disk tier with corruption detection.
package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
)

// FormatVersion versions the record encoding and the file layout; bump
// it whenever either changes so stale files are recaptured, never
// misparsed.  Version 2 moved the direction predictor live into the
// replayer: records no longer carry a per-predictor verdict bit and
// trace identity no longer includes a predictor name.
const FormatVersion = 2

// magic opens every trace file.
var magic = []byte("BP5TRACE\x01")

// ErrCorrupt marks a trace file that failed structural or checksum
// verification; callers fall back to a fresh capture.
var ErrCorrupt = errors.New("trace: corrupt trace")

// Meta describes what a trace is a trace of.  It is stored as JSON in
// the file header and verified against the requested Key on load.
type Meta struct {
	Schema   int    `json:"schema"`
	App      string `json:"app"`     // application (Fasta, ...)
	Kernel   string `json:"kernel"`  // kernel function name (dropgsw, ...)
	Variant  string `json:"variant"` // predication variant name
	Seed     int64  `json:"seed"`
	Scale    int    `json:"scale"`
	ProgHash string `json:"prog_hash"` // content hash of the compiled program
	Records  uint64 `json:"records"`   // dynamic instruction count
	Result   int64  `json:"result"`    // functional result, verified at capture
	LoadLat  [3]int `json:"load_lat"`  // load-to-use latency per miss level
}

// Record is one decoded dynamic instruction.  Next is derived by the
// iterator from the following record's PC (the final record of a halted
// execution has Next == PC, matching machine.DynInst's halt convention).
type Record struct {
	PC        int
	Next      int
	Taken     bool // branches: direction
	HasEA     bool // memory op: EA is meaningful
	EA        uint64
	MissLevel uint8 // memory op: 0 L1 hit, 1 L2 hit, 2 memory
}

// Record head layout: uvarint( zigzag(pcDelta)<<4 | flags ), where the
// flag bits are Taken, HasEA, and the two-bit miss level (memory ops).
// A HasEA record is followed by uvarint(zigzag(eaDelta)).
const (
	flagTaken     = 1 << 0
	flagHasEA     = 1 << 1
	flagMissShift = 2 // bits 2-3: miss level
	headShift     = 4
)

// Trace is one captured execution: its identity plus the encoded
// record payload.
type Trace struct {
	Meta    Meta
	Payload []byte
}

// SizeBytes approximates the trace's in-memory footprint for the
// store's byte budget.
func (t *Trace) SizeBytes() int64 { return int64(len(t.Payload)) + 256 }

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Builder accumulates records into an encoded payload.
type Builder struct {
	payload []byte
	prevPC  int
	prevEA  uint64
	n       uint64
}

// Add appends one record (Next is ignored; it is derived on decode).
func (b *Builder) Add(r Record) {
	flags := uint64(0)
	if r.Taken {
		flags |= flagTaken
	}
	if r.HasEA {
		flags |= flagHasEA
		flags |= uint64(r.MissLevel) << flagMissShift
	}
	head := zigzag(int64(r.PC-b.prevPC))<<headShift | flags
	b.payload = binary.AppendUvarint(b.payload, head)
	b.prevPC = r.PC
	if r.HasEA {
		b.payload = binary.AppendUvarint(b.payload, zigzag(int64(r.EA-b.prevEA)))
		b.prevEA = r.EA
	}
	b.n++
}

// Len returns the number of records added so far.
func (b *Builder) Len() uint64 { return b.n }

// Finish seals the payload into a Trace carrying meta (Schema and
// Records are filled in).
func (b *Builder) Finish(meta Meta) *Trace {
	meta.Schema = FormatVersion
	meta.Records = b.n
	return &Trace{Meta: meta, Payload: b.payload}
}

// Iter walks a trace's records in order, deriving each record's Next
// from its successor.  Check Err after the loop: a payload that runs
// short or long against Meta.Records reports corruption.
type Iter struct {
	buf    []byte
	pos    int
	total  uint64
	i      uint64
	prevPC int
	prevEA uint64
	cur    Record
	nxt    Record
	err    error
}

// Iter returns an iterator positioned before the first record.
func (t *Trace) Iter() *Iter {
	it := &Iter{buf: t.Payload, total: t.Meta.Records}
	if it.total > 0 {
		it.nxt, it.err = it.decode()
	}
	return it
}

// decode reads one record at the current position.
func (it *Iter) decode() (Record, error) {
	head, n := binary.Uvarint(it.buf[it.pos:])
	if n <= 0 {
		return Record{}, fmt.Errorf("%w: truncated record head at offset %d", ErrCorrupt, it.pos)
	}
	it.pos += n
	var r Record
	r.PC = it.prevPC + int(unzigzag(head>>headShift))
	it.prevPC = r.PC
	r.Taken = head&flagTaken != 0
	r.HasEA = head&flagHasEA != 0
	if r.HasEA {
		r.MissLevel = uint8(head>>flagMissShift) & 3
		delta, n := binary.Uvarint(it.buf[it.pos:])
		if n <= 0 {
			return Record{}, fmt.Errorf("%w: truncated EA at offset %d", ErrCorrupt, it.pos)
		}
		it.pos += n
		r.EA = it.prevEA + uint64(unzigzag(delta))
		it.prevEA = r.EA
	}
	return r, nil
}

// Next advances to the next record; it returns false at the end of the
// trace or on a decoding error (see Err).
func (it *Iter) Next() bool {
	if it.err != nil || it.i >= it.total {
		return false
	}
	it.cur = it.nxt
	it.i++
	if it.i < it.total {
		it.nxt, it.err = it.decode()
		if it.err != nil {
			return false
		}
		it.cur.Next = it.nxt.PC
	} else {
		// Final record of a halted execution: no successor.
		it.cur.Next = it.cur.PC
		if it.pos != len(it.buf) {
			it.err = fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(it.buf)-it.pos)
			return false
		}
	}
	return true
}

// Rec returns the current record.
func (it *Iter) Rec() *Record { return &it.cur }

// Err reports a decoding failure, including a record count that does
// not match the payload.
func (it *Iter) Err() error {
	if it.err == nil && it.i < it.total && it.pos >= len(it.buf) {
		return fmt.Errorf("%w: payload ends after %d of %d records", ErrCorrupt, it.i, it.total)
	}
	return it.err
}

// EncodeFile serializes the trace into its durable file form:
//
//	magic | uvarint(len(meta JSON)) | meta JSON | uvarint(len(payload)) |
//	payload | SHA-256 over everything preceding
func (t *Trace) EncodeFile() ([]byte, error) {
	mb, err := json.Marshal(t.Meta)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(magic)+len(mb)+len(t.Payload)+48)
	out = append(out, magic...)
	out = binary.AppendUvarint(out, uint64(len(mb)))
	out = append(out, mb...)
	out = binary.AppendUvarint(out, uint64(len(t.Payload)))
	out = append(out, t.Payload...)
	sum := sha256.Sum256(out)
	return append(out, sum[:]...), nil
}

// DecodeFile parses and verifies a trace file.  Any structural damage —
// wrong magic, bad lengths, schema mismatch, checksum mismatch — is
// reported as ErrCorrupt.
func DecodeFile(b []byte) (*Trace, error) {
	if len(b) < len(magic)+sha256.Size || !bytes.Equal(b[:len(magic)], magic) {
		return nil, fmt.Errorf("%w: bad magic or short file", ErrCorrupt)
	}
	body, sum := b[:len(b)-sha256.Size], b[len(b)-sha256.Size:]
	want := sha256.Sum256(body)
	if !bytes.Equal(sum, want[:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	pos := len(magic)
	mlen, n := binary.Uvarint(body[pos:])
	if n <= 0 || pos+n+int(mlen) > len(body) {
		return nil, fmt.Errorf("%w: bad meta length", ErrCorrupt)
	}
	pos += n
	var meta Meta
	if err := json.Unmarshal(body[pos:pos+int(mlen)], &meta); err != nil {
		return nil, fmt.Errorf("%w: meta: %v", ErrCorrupt, err)
	}
	pos += int(mlen)
	if meta.Schema != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d, want %d", ErrCorrupt, meta.Schema, FormatVersion)
	}
	plen, n := binary.Uvarint(body[pos:])
	if n <= 0 || pos+n+int(plen) != len(body) {
		return nil, fmt.Errorf("%w: bad payload length", ErrCorrupt)
	}
	pos += n
	return &Trace{Meta: meta, Payload: body[pos:]}, nil
}
