package branch

// Perceptron — the hashed perceptron predictor (Jiménez & Lin).  Each
// static branch hashes to a row of signed weights, one per bit of
// global history plus a bias; the prediction is the sign of the dot
// product of the weights with the history (outcomes as ±1).  Unlike a
// counter table it learns linearly separable functions of arbitrary
// history bits at once, so it captures correlations a gshare of the
// same size cannot — at the cost of being blind to functions that are
// not linearly separable (which is exactly how the "hard" class of the
// branch taxonomy defeats it).
type Perceptron struct {
	weights [][]int8
	hist    []int8 // ±1 per outcome, newest at index 0
	theta   int32  // training threshold
	n       int
}

// NewPerceptron builds a perceptron predictor with n weight rows and
// hist bits of global history.  The training threshold follows the
// paper's empirical optimum, floor(1.93*hist + 14).
func NewPerceptron(n, hist int) *Perceptron {
	if n < 1 {
		n = 1
	}
	if hist < 1 {
		hist = 1
	}
	p := &Perceptron{
		weights: make([][]int8, n),
		hist:    make([]int8, hist),
		theta:   int32(1.93*float64(hist) + 14),
		n:       n,
	}
	for i := range p.weights {
		p.weights[i] = make([]int8, hist+1)
	}
	p.Reset()
	return p
}

func (p *Perceptron) row(pc int) []int8 {
	i := pc % p.n
	if i < 0 {
		i += p.n
	}
	return p.weights[i]
}

// sum is the perceptron output: bias plus the history dot product.
func (p *Perceptron) sum(pc int) int32 {
	w := p.row(pc)
	s := int32(w[0])
	for i, h := range p.hist {
		if h >= 0 {
			s += int32(w[i+1])
		} else {
			s -= int32(w[i+1])
		}
	}
	return s
}

// Predict implements DirectionPredictor.
func (p *Perceptron) Predict(pc int) bool { return p.sum(pc) >= 0 }

// Update implements DirectionPredictor.
func (p *Perceptron) Update(pc int, taken bool) {
	s := p.sum(pc)
	pred := s >= 0
	mag := s
	if mag < 0 {
		mag = -mag
	}
	if pred != taken || mag <= p.theta {
		w := p.row(pc)
		w[0] = trainWeight(w[0], taken)
		for i, h := range p.hist {
			// w_i moves toward agreement between history bit i and the
			// outcome: +1 when they match, -1 when they differ.
			w[i+1] = trainWeight(w[i+1], taken == (h >= 0))
		}
	}
	// Shift the outcome into the history (newest at index 0).
	copy(p.hist[1:], p.hist)
	if taken {
		p.hist[0] = 1
	} else {
		p.hist[0] = -1
	}
}

func trainWeight(w int8, up bool) int8 {
	if up {
		if w < 127 {
			return w + 1
		}
		return w
	}
	if w > -127 {
		return w - 1
	}
	return w
}

// Name implements DirectionPredictor.
func (p *Perceptron) Name() string { return "perceptron" }

// Reset implements DirectionPredictor.
func (p *Perceptron) Reset() {
	for _, w := range p.weights {
		for i := range w {
			w[i] = 0
		}
	}
	for i := range p.hist {
		p.hist[i] = -1 // not-taken, matching the counter tables' bias
	}
}
