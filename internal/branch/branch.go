// Package branch implements the branch-direction predictors and the
// Branch Target Address Cache (BTAC) evaluated by the paper.
//
// The paper's POWER5 baseline mispredicts bioinformatics DP-kernel
// branches at a high rate because their direction is value-dependent
// (Section III); nearly all mispredictions are direction mispredictions
// (Table I).  The direction predictors here let the timing model
// reproduce those statistics, and the 8-entry score-based BTAC of
// Section IV-D removes the 2-cycle taken-branch fetch bubble.
package branch

// DirectionPredictor predicts taken/not-taken for conditional branches.
// Predict must not mutate state; Update trains the predictor with the
// actual outcome.
type DirectionPredictor interface {
	// Predict returns the predicted direction for the branch at
	// instruction index pc.
	Predict(pc int) bool
	// Update trains the predictor with the resolved direction.
	Update(pc int, taken bool)
	// Name identifies the predictor in experiment output.
	Name() string
	// Reset clears all learned state.
	Reset()
}

// counter2 is a saturating 2-bit counter: 0,1 predict not-taken,
// 2,3 predict taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Static predicts every conditional branch the same direction.
type Static struct {
	Taken bool
}

// Predict implements DirectionPredictor.
func (s *Static) Predict(int) bool { return s.Taken }

// Update implements DirectionPredictor (static predictors do not learn).
func (s *Static) Update(int, bool) {}

// Name implements DirectionPredictor.
func (s *Static) Name() string {
	if s.Taken {
		return "static-taken"
	}
	return "static-not-taken"
}

// Reset implements DirectionPredictor.
func (s *Static) Reset() {}

// Bimodal is a classic per-PC table of 2-bit saturating counters.
type Bimodal struct {
	table []counter2
	mask  int
}

// NewBimodal returns a bimodal predictor with 2^bits counters.
func NewBimodal(bits uint) *Bimodal {
	n := 1 << bits
	b := &Bimodal{table: make([]counter2, n), mask: n - 1}
	b.Reset()
	return b
}

func (b *Bimodal) idx(pc int) int { return pc & b.mask }

// Predict implements DirectionPredictor.
func (b *Bimodal) Predict(pc int) bool { return b.table[b.idx(pc)].taken() }

// Update implements DirectionPredictor.
func (b *Bimodal) Update(pc int, taken bool) {
	i := b.idx(pc)
	b.table[i] = b.table[i].update(taken)
}

// Name implements DirectionPredictor.
func (b *Bimodal) Name() string { return "bimodal" }

// Reset implements DirectionPredictor.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 1 // weakly not-taken
	}
}

// GShare XORs a global history register with the PC to index its
// counter table, capturing correlation between branches.
type GShare struct {
	table   []counter2
	mask    int
	history int
	hbits   uint
}

// NewGShare returns a gshare predictor with 2^bits counters and hbits
// bits of global history.
func NewGShare(bits, hbits uint) *GShare {
	n := 1 << bits
	g := &GShare{table: make([]counter2, n), mask: n - 1, hbits: hbits}
	g.Reset()
	return g
}

func (g *GShare) idx(pc int) int { return (pc ^ g.history) & g.mask }

// Predict implements DirectionPredictor.
func (g *GShare) Predict(pc int) bool { return g.table[g.idx(pc)].taken() }

// Update implements DirectionPredictor.
func (g *GShare) Update(pc int, taken bool) {
	i := g.idx(pc)
	g.table[i] = g.table[i].update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= 1<<g.hbits - 1
}

// Name implements DirectionPredictor.
func (g *GShare) Name() string { return "gshare" }

// Reset implements DirectionPredictor.
func (g *GShare) Reset() {
	for i := range g.table {
		g.table[i] = 1
	}
	g.history = 0
}

// Tournament combines a bimodal and a gshare component with a per-PC
// chooser, the structure of the POWER5's bimodal/path-correlated
// predictor pair with selector.
type Tournament struct {
	local   *Bimodal
	global  *GShare
	chooser []counter2 // >=2 selects global
	mask    int
}

// NewTournament returns a tournament predictor; bits sizes all three
// tables, hbits the global history length.
func NewTournament(bits, hbits uint) *Tournament {
	n := 1 << bits
	t := &Tournament{
		local:   NewBimodal(bits),
		global:  NewGShare(bits, hbits),
		chooser: make([]counter2, n),
		mask:    n - 1,
	}
	t.Reset()
	return t
}

// Predict implements DirectionPredictor.
func (t *Tournament) Predict(pc int) bool {
	if t.chooser[pc&t.mask].taken() {
		return t.global.Predict(pc)
	}
	return t.local.Predict(pc)
}

// Update implements DirectionPredictor.
func (t *Tournament) Update(pc int, taken bool) {
	lOK := t.local.Predict(pc) == taken
	gOK := t.global.Predict(pc) == taken
	i := pc & t.mask
	if gOK != lOK {
		t.chooser[i] = t.chooser[i].update(gOK)
	}
	t.local.Update(pc, taken)
	t.global.Update(pc, taken)
}

// Name implements DirectionPredictor.
func (t *Tournament) Name() string { return "tournament" }

// Reset implements DirectionPredictor.
func (t *Tournament) Reset() {
	t.local.Reset()
	t.global.Reset()
	for i := range t.chooser {
		t.chooser[i] = 1
	}
}

// New constructs a predictor from a spec string (see ParseSpec): a
// bare kind name ("gshare", "tage", ...) or a parameterized spec
// ("tage:tables=4,hist=2..64").  Malformed specs fall back to the
// POWER5-like tournament predictor — the historical behaviour for
// unknown names; boundaries that must reject bad specs validate with
// ParseSpec first.
func New(spec string) DirectionPredictor {
	p, err := FromSpec(spec)
	if err != nil {
		return NewTournament(12, 11)
	}
	return p
}
