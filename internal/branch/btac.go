package branch

import (
	"strconv"

	"bioperf5/internal/telemetry"
)

// BTAC is the small Branch Target Address Cache of Section IV-D.  Each
// entry holds a tag (the fetch address of a taken branch), the predicted
// next instruction address (nia), and a saturating score counting past
// prediction successes.  The BTAC forgoes prediction for entries whose
// score is below a threshold, because a wrong nia costs a pipeline flush
// — more than the 2-cycle taken-branch delay it would save — and it uses
// a score-based replacement policy: the entry with the lowest score is
// the victim.
type BTAC struct {
	entries   []btacEntry
	threshold int
	maxScore  int
}

type btacEntry struct {
	valid bool
	tag   int
	nia   int
	score int
}

// BTACConfig sizes a BTAC.  The paper's default is 8 entries, initial
// score 0 and prediction once the score is positive.
type BTACConfig struct {
	Entries   int // number of entries (paper: 8)
	Threshold int // minimum score required to predict (default 1)
	MaxScore  int // score saturation value (default 3)
}

// DefaultBTACConfig returns the paper's 8-entry configuration.
func DefaultBTACConfig() BTACConfig {
	return BTACConfig{Entries: 8, Threshold: 1, MaxScore: 3}
}

// NewBTAC returns an empty BTAC; zero or negative config fields fall
// back to the defaults.
func NewBTAC(cfg BTACConfig) *BTAC {
	def := DefaultBTACConfig()
	if cfg.Entries <= 0 {
		cfg.Entries = def.Entries
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = def.Threshold
	}
	if cfg.MaxScore <= 0 {
		cfg.MaxScore = def.MaxScore
	}
	return &BTAC{
		entries:   make([]btacEntry, cfg.Entries),
		threshold: cfg.Threshold,
		maxScore:  cfg.MaxScore,
	}
}

// Entries returns the capacity of the BTAC.
func (b *BTAC) Entries() int { return len(b.entries) }

// Lookup searches for pc.  It returns the predicted next instruction
// address and whether the BTAC is confident enough to predict.  A tag
// match below threshold reports predict=false: the front end falls back
// to the ordinary 2-cycle taken-branch path.
func (b *BTAC) Lookup(pc int) (nia int, predict bool) {
	for i := range b.entries {
		e := &b.entries[i]
		if e.valid && e.tag == pc {
			return e.nia, e.score >= b.threshold
		}
	}
	return 0, false
}

// Update trains the BTAC after a taken control transfer from pc to
// actual.  A correct entry's score is incremented, an incorrect entry is
// retargeted and decremented, and a missing entry is allocated over the
// lowest-score victim with the initial score (zero, per the paper's
// default configuration).
func (b *BTAC) Update(pc, actual int) {
	victim := 0
	for i := range b.entries {
		e := &b.entries[i]
		if e.valid && e.tag == pc {
			if e.nia == actual {
				if e.score < b.maxScore {
					e.score++
				}
			} else {
				e.nia = actual
				if e.score > 0 {
					e.score--
				}
			}
			return
		}
		if !b.entries[i].valid {
			victim = i
		} else if b.entries[victim].valid && b.entries[i].score < b.entries[victim].score {
			victim = i
		}
	}
	b.entries[victim] = btacEntry{valid: true, tag: pc, nia: actual, score: 0}
}

// Reset invalidates all entries.
func (b *BTAC) Reset() {
	for i := range b.entries {
		b.entries[i] = btacEntry{}
	}
}

// PublishTo mirrors the BTAC's occupancy and confidence state into reg:
// how many entries are valid, how many are confident enough to predict,
// and the per-entry scores (labeled by the branch PC each entry tracks).
// The hit/predict/correct event counts live in cpu.Counters, published
// by the timing model; this is the structure's own residency view.
func (b *BTAC) PublishTo(reg *telemetry.Registry) {
	valid, confident := 0, 0
	scores := reg.Labeled("branch.btac.entry_score")
	for _, e := range b.entries {
		if !e.valid {
			continue
		}
		valid++
		if e.score >= b.threshold {
			confident++
		}
		scores.Add("pc"+strconv.Itoa(e.tag), uint64(e.score))
	}
	reg.Gauge("branch.btac.entries").Set(float64(len(b.entries)))
	reg.Gauge("branch.btac.valid").Set(float64(valid))
	reg.Gauge("branch.btac.confident").Set(float64(confident))
}
