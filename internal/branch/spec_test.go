package branch

import (
	"errors"
	"strings"
	"testing"
)

// TestSpecCanonicalization pins the coalescing property the result
// caches rely on: every spelling of the same predictor has one
// canonical form.
func TestSpecCanonicalization(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "tournament:bits=12,hist=11"},
		{"tournament", "tournament:bits=12,hist=11"},
		{"  Tournament : hist=11 , bits=12 ", "tournament:bits=12,hist=11"},
		{"gshare", "gshare:bits=12,hist=11"},
		{"gshare:bits=12", "gshare:bits=12,hist=11"},
		{"gshare:hist=11,bits=12", "gshare:bits=12,hist=11"},
		{"gshare:bits=14", "gshare:bits=14,hist=11"},
		{"bimodal", "bimodal:bits=12"},
		{"static-taken", "static-taken"},
		{"static-not-taken", "static-not-taken"},
		{"perceptron", "perceptron:weights=256,hist=24"},
		{"perceptron:weights=256", "perceptron:weights=256,hist=24"},
		{"tage", "tage:tables=4,bits=10,tag=8,hist=2..64"},
		{"tage:tables=4,hist=2..64", "tage:tables=4,bits=10,tag=8,hist=2..64"},
		{"tage:hist=4..32,tables=6", "tage:tables=6,bits=10,tag=8,hist=4..32"},
		{"tage:hist=8", "tage:tables=4,bits=10,tag=8,hist=8..64"},
	}
	for _, c := range cases {
		got, err := CanonicalSpec(c.in)
		if err != nil {
			t.Errorf("CanonicalSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("CanonicalSpec(%q) = %q, want %q", c.in, got, c.want)
		}
		// Canonicalization is idempotent.
		again, err := CanonicalSpec(got)
		if err != nil || again != got {
			t.Errorf("CanonicalSpec(%q) not idempotent: %q, %v", got, again, err)
		}
	}
}

// TestSpecErrors pins the structured error shape the serve 400s and
// CLI errors are built from.
func TestSpecErrors(t *testing.T) {
	cases := []struct {
		in    string
		field string
	}{
		{"tge", "kind"},
		{"gshare:", "kind"},
		{"gshare:bits", "kind"},
		{"gshare:bits=99", "bits"},
		{"gshare:bits=x", "bits"},
		{"gshare:entries=4", "entries"},
		{"tage:hist=64..2", "hist"},
		{"tage:hist=0..64", "hist"},
		{"perceptron:weights=0", "weights"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.in)
		if err == nil {
			t.Errorf("ParseSpec(%q): expected error", c.in)
			continue
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("ParseSpec(%q): error %T is not a *SpecError", c.in, err)
			continue
		}
		if se.Field != c.field {
			t.Errorf("ParseSpec(%q): field %q, want %q", c.in, se.Field, c.field)
		}
		if se.Reason == "" {
			t.Errorf("ParseSpec(%q): empty reason", c.in)
		}
		if !strings.Contains(err.Error(), "registered:") {
			t.Errorf("ParseSpec(%q): error %q does not list registered predictors", c.in, err)
		}
	}
}

// TestNewFallsBackToTournament preserves the historical contract:
// unknown names instantiate the POWER5-like default instead of failing.
func TestNewFallsBackToTournament(t *testing.T) {
	p := New("no-such-predictor")
	if p.Name() != "tournament" {
		t.Fatalf("New fallback = %s, want tournament", p.Name())
	}
	if New("").Name() != "tournament" {
		t.Fatalf("New(\"\") should be the tournament default")
	}
	if New("tage:tables=4,hist=2..64").Name() != "tage" {
		t.Fatalf("New should accept full specs")
	}
}

// TestRegisteredListsEveryKind sanity-checks the registry listing used
// in error payloads and docs.
func TestRegisteredListsEveryKind(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != 7 {
		t.Fatalf("Kinds() = %v, want 7 kinds", kinds)
	}
	for _, spec := range Registered() {
		if _, err := ParseSpec(spec); err != nil {
			t.Errorf("Registered() entry %q does not parse: %v", spec, err)
		}
	}
}

// TestTAGEHistoryLengths pins the geometric series.
func TestTAGEHistoryLengths(t *testing.T) {
	p, err := FromSpec("tage:tables=4,hist=2..64")
	if err != nil {
		t.Fatal(err)
	}
	got := p.(*TAGE).HistoryLengths()
	want := []int{2, 6, 20, 64}
	if len(got) != len(want) {
		t.Fatalf("history lengths %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("history lengths %v, want %v", got, want)
		}
	}
}
