package branch

// Microbenchmark conformance kernels, in the style of the Firestorm/
// Oryon predictor-dissection work: tiny synthetic branch streams whose
// ideal mispredict behaviour is known analytically, run against each
// predictor as behavioural golden tests.  A predictor that claims
// history length H must nail the history-probe kernel at periods <= H
// and a bimodal must sit at exactly 1/trip on the loop kernel — the
// microbench suite is what makes "tage" mean TAGE and not a mislabeled
// counter table.

// BranchEvent is one synthetic conditional-branch outcome.
type BranchEvent struct {
	PC    int
	Taken bool
}

// Microbench generates a deterministic synthetic branch stream.
type Microbench struct {
	Name string
	// Gen streams n events through emit.
	Gen func(n int, emit func(BranchEvent))
}

// AlwaysTaken is a single branch that is always taken: any warm
// predictor gets it right.
func AlwaysTaken() Microbench {
	return Microbench{Name: "always-taken", Gen: func(n int, emit func(BranchEvent)) {
		for i := 0; i < n; i++ {
			emit(BranchEvent{PC: 16, Taken: true})
		}
	}}
}

// Alternating is a single branch strictly alternating T,N,T,N — the
// canonical counter-table killer (a 2-bit counter mispredicts every
// time from its weakly-not-taken start) that one bit of history
// resolves completely.
func Alternating() Microbench {
	return Microbench{Name: "alternating", Gen: func(n int, emit func(BranchEvent)) {
		for i := 0; i < n; i++ {
			emit(BranchEvent{PC: 16, Taken: i%2 == 0})
		}
	}}
}

// Loop is a loop-exit branch with a known trip count: taken trip-1
// times, then not taken once, repeating.  A bimodal converges to
// exactly one mispredict per trip (the exit); history predictors
// longer than the trip count learn the exit too.
func Loop(trip int) Microbench {
	return Microbench{Name: "loop", Gen: func(n int, emit func(BranchEvent)) {
		for i := 0; i < n; i++ {
			emit(BranchEvent{PC: 16, Taken: i%trip != trip-1})
		}
	}}
}

// HistoryProbe emits a branch taken exactly once per period: a run of
// period-1 not-takens, then one taken.  Distinguishing the position
// before the taken from every other position requires observing at
// least period-1 outcomes of history, so the kernel probes a
// predictor's effective history length — below it the taken (and the
// first not-taken after it) are mispredicted every period.
func HistoryProbe(period int) Microbench {
	return Microbench{Name: "history-probe", Gen: func(n int, emit func(BranchEvent)) {
		for i := 0; i < n; i++ {
			emit(BranchEvent{PC: 16, Taken: i%period == period-1})
		}
	}}
}

// Random is a data-dependent branch: an xorshift-driven coin flip no
// predictor can learn.  Every predictor should sit near 50%, which is
// what classifies a real branch as "hard".
func Random(seed uint64) Microbench {
	return Microbench{Name: "random", Gen: func(n int, emit func(BranchEvent)) {
		x := seed | 1
		for i := 0; i < n; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			emit(BranchEvent{PC: 16, Taken: x&1 == 1})
		}
	}}
}

// Biased is a mostly-one-way branch: taken except once every
// `invDenom` outcomes (pseudo-randomly placed), the shape of a
// bounds-check or error branch.
func Biased(invDenom int, seed uint64) Microbench {
	return Microbench{Name: "biased", Gen: func(n int, emit func(BranchEvent)) {
		x := seed | 1
		for i := 0; i < n; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			emit(BranchEvent{PC: 16, Taken: int(x%uint64(invDenom)) != 0})
		}
	}}
}

// Measure runs n events of the kernel through a fresh instance of the
// predictor spec and returns executed and mispredicted counts.  The
// first `warmup` events train without being scored, so steady-state
// behaviour is measured rather than cold-start transients.
func Measure(spec string, mb Microbench, n, warmup int) (executed, mispredicts uint64, err error) {
	p, err := FromSpec(spec)
	if err != nil {
		return 0, 0, err
	}
	i := 0
	mb.Gen(n, func(ev BranchEvent) {
		pred := p.Predict(ev.PC)
		p.Update(ev.PC, ev.Taken)
		if i >= warmup {
			executed++
			if pred != ev.Taken {
				mispredicts++
			}
		}
		i++
	})
	return executed, mispredicts, nil
}

// MispredictRate is Measure as a rate.
func MispredictRate(spec string, mb Microbench, n, warmup int) (float64, error) {
	exec, miss, err := Measure(spec, mb, n, warmup)
	if err != nil {
		return 0, err
	}
	if exec == 0 {
		return 0, nil
	}
	return float64(miss) / float64(exec), nil
}
