package branch

import "testing"

// The microbenchmark golden suite: each predictor model must behave as
// its specification demands on branch streams with analytically known
// answers.  Exact counts are asserted where the model's steady state
// is exact; rate bounds elsewhere.  These tests are what license the
// sweep to claim "TAGE" or "perceptron" in a manifest.

const (
	mbN      = 20000
	mbWarmup = 4000
)

func rate(t *testing.T, spec string, mb Microbench) float64 {
	t.Helper()
	r, err := MispredictRate(spec, mb, mbN, mbWarmup)
	if err != nil {
		t.Fatalf("%s on %s: %v", spec, mb.Name, err)
	}
	return r
}

// TestMicrobenchGolden is the per-predictor conformance table.
func TestMicrobenchGolden(t *testing.T) {
	cases := []struct {
		spec     string
		mb       Microbench
		min, max float64
	}{
		// Every learning predictor nails an always-taken branch.
		{"bimodal", AlwaysTaken(), 0, 0},
		{"gshare", AlwaysTaken(), 0, 0},
		{"tournament", AlwaysTaken(), 0, 0},
		{"perceptron", AlwaysTaken(), 0, 0},
		{"tage", AlwaysTaken(), 0, 0},
		{"static-taken", AlwaysTaken(), 0, 0},
		{"static-not-taken", AlwaysTaken(), 1, 1},

		// Alternation: a lone 2-bit counter oscillates and misses every
		// time; one bit of history resolves it completely.
		{"bimodal", Alternating(), 1, 1},
		{"gshare", Alternating(), 0, 0},
		{"tournament", Alternating(), 0, 0},
		{"perceptron", Alternating(), 0, 0},
		{"tage", Alternating(), 0, 0},

		// Loop with trip count 8: bimodal converges to exactly the one
		// exit miss per trip; history predictors learn the exit.
		{"bimodal", Loop(8), 1.0 / 8, 1.0 / 8},
		{"gshare", Loop(8), 0, 0.005},
		{"tage", Loop(8), 0, 0.005},
		{"perceptron", Loop(8), 0, 0.005},

		// History probe, period 16: needs 15 outcomes of history.
		// gshare's 11 fall short (one miss per period at the shared
		// all-not-taken context); TAGE's long tables and the
		// perceptron's 24-bit history capture it.
		{"gshare", HistoryProbe(16), 0.5 / 16, 2.5 / 16},
		{"tage", HistoryProbe(16), 0, 0.01},
		{"perceptron", HistoryProbe(16), 0, 0.01},

		// History probe, period 48: beyond every predictor's reach but
		// TAGE's 64-bit geometric tail.
		{"gshare", HistoryProbe(48), 0.5 / 48, 2.5 / 48},
		{"perceptron", HistoryProbe(48), 0.5 / 48, 2.5 / 48},
		{"tage", HistoryProbe(48), 0, 0.01},

		// Random data-dependent direction: nothing learns a coin flip.
		{"bimodal", Random(12345), 0.4, 0.6},
		{"gshare", Random(12345), 0.4, 0.6},
		{"tournament", Random(12345), 0.4, 0.6},
		{"perceptron", Random(12345), 0.4, 0.6},
		{"tage", Random(12345), 0.4, 0.6},

		// Heavily biased branch (1 not-taken in 16): everything rides
		// the bias.
		{"bimodal", Biased(16, 99), 0, 0.13},
		{"tournament", Biased(16, 99), 0, 0.13},
		{"tage", Biased(16, 99), 0, 0.13},
		{"perceptron", Biased(16, 99), 0, 0.13},
	}
	for _, c := range cases {
		got := rate(t, c.spec, c.mb)
		if got < c.min-1e-9 || got > c.max+1e-9 {
			t.Errorf("%s on %s: mispredict rate %.4f outside [%.4f, %.4f]",
				c.spec, c.mb.Name, got, c.min, c.max)
		}
	}
}

// TestHistoryLengthOrdering probes effective history length: TAGE with
// a long geometric tail must beat gshare once the period exceeds
// gshare's history, and the gap must grow with the period.
func TestHistoryLengthOrdering(t *testing.T) {
	for _, period := range []int{16, 24, 48} {
		g := rate(t, "gshare:bits=12,hist=11", HistoryProbe(period))
		tg := rate(t, "tage:tables=4,hist=2..64", HistoryProbe(period))
		if tg >= g/2 {
			t.Errorf("period %d: tage %.4f not clearly better than gshare %.4f", period, tg, g)
		}
	}
}

// TestMicrobenchDeterminism: the same spec on the same kernel yields
// identical counts — predictors are pure functions of the outcome
// stream, the property replay relies on.
func TestMicrobenchDeterminism(t *testing.T) {
	for _, spec := range []string{"tage", "perceptron", "tournament"} {
		_, m1, err := Measure(spec, Random(7), mbN, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, m2, err := Measure(spec, Random(7), mbN, 0)
		if err != nil {
			t.Fatal(err)
		}
		if m1 != m2 {
			t.Errorf("%s: mispredicts differ across runs: %d vs %d", spec, m1, m2)
		}
	}
}
