package branch

import (
	"math/rand"
	"testing"
)

func TestCounter2Saturation(t *testing.T) {
	c := counter2(0)
	c = c.update(false)
	if c != 0 {
		t.Errorf("counter underflowed to %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter = %d, want saturated 3", c)
	}
	if !c.taken() {
		t.Error("saturated counter should predict taken")
	}
}

func TestStatic(t *testing.T) {
	st := &Static{Taken: true}
	if !st.Predict(123) {
		t.Error("static-taken predicted not-taken")
	}
	st.Update(123, false) // must not learn
	if !st.Predict(123) {
		t.Error("static predictor learned")
	}
	snt := &Static{}
	if snt.Predict(0) {
		t.Error("static-not-taken predicted taken")
	}
	if st.Name() == snt.Name() {
		t.Error("static predictor names collide")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(10)
	for i := 0; i < 8; i++ {
		b.Update(100, true)
	}
	if !b.Predict(100) {
		t.Error("bimodal did not learn always-taken branch")
	}
	for i := 0; i < 8; i++ {
		b.Update(100, false)
	}
	if b.Predict(100) {
		t.Error("bimodal did not re-learn inverted branch")
	}
}

func TestBimodalIsolation(t *testing.T) {
	b := NewBimodal(10)
	for i := 0; i < 8; i++ {
		b.Update(1, true)
		b.Update(2, false)
	}
	if !b.Predict(1) || b.Predict(2) {
		t.Error("distinct PCs interfere within table range")
	}
}

// TestBimodalLoopBranch mirrors the paper's observation: a loop-closing
// branch is mispredicted only once per loop exit.
func TestBimodalLoopBranch(t *testing.T) {
	b := NewBimodal(10)
	const pc = 7
	misses := 0
	for rep := 0; rep < 10; rep++ {
		for it := 0; it < 20; it++ {
			taken := it != 19 // loop back except last iteration
			if b.Predict(pc) != taken {
				misses++
			}
			b.Update(pc, taken)
		}
	}
	// Warm-up aside, about one miss per 20-iteration loop execution.
	if misses > 15 {
		t.Errorf("loop branch missed %d/200 times; expected roughly 10", misses)
	}
}

// TestValueDependentBranchHostile checks that a random, value-dependent
// branch — the DP-kernel pattern the paper identifies — defeats all
// dynamic predictors (~50% accuracy), which is the root cause of the
// low baseline IPC.
func TestValueDependentBranchHostile(t *testing.T) {
	preds := []DirectionPredictor{NewBimodal(12), NewGShare(12, 11), NewTournament(12, 11)}
	rng := rand.New(rand.NewSource(42))
	outcomes := make([]bool, 20000)
	for i := range outcomes {
		outcomes[i] = rng.Intn(2) == 0
	}
	for _, p := range preds {
		correct := 0
		for _, taken := range outcomes {
			if p.Predict(33) == taken {
				correct++
			}
			p.Update(33, taken)
		}
		acc := float64(correct) / float64(len(outcomes))
		if acc > 0.6 {
			t.Errorf("%s: accuracy %.2f on random branch; should be near 0.5", p.Name(), acc)
		}
	}
}

func TestGShareUsesHistory(t *testing.T) {
	// Pattern TNTN... is not learnable by bimodal at one PC but is
	// perfectly learnable with history.
	g := NewGShare(12, 11)
	b := NewBimodal(12)
	correctG, correctB := 0, 0
	const n = 4000
	for i := 0; i < n; i++ {
		taken := i%2 == 0
		if g.Predict(55) == taken {
			correctG++
		}
		if b.Predict(55) == taken {
			correctB++
		}
		g.Update(55, taken)
		b.Update(55, taken)
	}
	if accG := float64(correctG) / n; accG < 0.95 {
		t.Errorf("gshare accuracy on alternating pattern = %.2f, want >0.95", accG)
	}
	if accB := float64(correctB) / n; accB > 0.6 {
		t.Errorf("bimodal accuracy on alternating pattern = %.2f; test premise broken", accB)
	}
}

func TestTournamentPicksBetterComponent(t *testing.T) {
	tp := NewTournament(12, 11)
	// Alternating pattern: global (gshare) wins; the chooser should
	// migrate and overall accuracy should approach gshare's.
	correct := 0
	const n = 4000
	for i := 0; i < n; i++ {
		taken := i%2 == 0
		if tp.Predict(55) == taken {
			correct++
		}
		tp.Update(55, taken)
	}
	if acc := float64(correct) / n; acc < 0.9 {
		t.Errorf("tournament accuracy = %.2f, want >0.9", acc)
	}
}

func TestPredictorReset(t *testing.T) {
	for _, p := range []DirectionPredictor{NewBimodal(8), NewGShare(8, 8), NewTournament(8, 8)} {
		// Enough repetitions that history-indexed predictors saturate
		// the counter for the steady-state history value too.
		for i := 0; i < 32; i++ {
			p.Update(9, true)
		}
		if !p.Predict(9) {
			t.Fatalf("%s did not learn", p.Name())
		}
		p.Reset()
		if p.Predict(9) {
			t.Errorf("%s still predicts taken after Reset", p.Name())
		}
	}
}

func TestNewByName(t *testing.T) {
	names := []string{"static-taken", "static-not-taken", "bimodal", "gshare", "tournament"}
	for _, n := range names {
		p := New(n)
		if p == nil {
			t.Fatalf("New(%q) = nil", n)
		}
		if p.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, p.Name())
		}
	}
	if p := New("anything-else"); p.Name() != "tournament" {
		t.Errorf("default predictor = %s, want tournament", p.Name())
	}
}

func TestBTACMissThenLearn(t *testing.T) {
	b := NewBTAC(DefaultBTACConfig())
	if _, predict := b.Lookup(10); predict {
		t.Error("empty BTAC predicted")
	}
	b.Update(10, 42) // allocate with score 0: below threshold
	if _, predict := b.Lookup(10); predict {
		t.Error("fresh entry (score 0) should not predict yet")
	}
	b.Update(10, 42) // correct: score 1
	nia, predict := b.Lookup(10)
	if !predict || nia != 42 {
		t.Errorf("after training: nia=%d predict=%v", nia, predict)
	}
}

func TestBTACScoreDropsOnWrongTarget(t *testing.T) {
	b := NewBTAC(DefaultBTACConfig())
	b.Update(10, 42)
	b.Update(10, 42) // score 1
	b.Update(10, 99) // wrong: retarget, score back to 0
	nia, predict := b.Lookup(10)
	if predict {
		t.Errorf("entry with decayed score predicted (nia=%d)", nia)
	}
	b.Update(10, 99)
	nia, predict = b.Lookup(10)
	if !predict || nia != 99 {
		t.Errorf("retargeted entry: nia=%d predict=%v", nia, predict)
	}
}

func TestBTACScoreSaturates(t *testing.T) {
	cfg := DefaultBTACConfig()
	b := NewBTAC(cfg)
	for i := 0; i < 100; i++ {
		b.Update(10, 42)
	}
	// After saturation, a couple of wrong targets should not be enough
	// to flip prediction off immediately (score decays one per miss).
	b.Update(10, 7)
	if _, predict := b.Lookup(10); !predict {
		t.Error("one wrong target flushed a saturated entry")
	}
}

func TestBTACScoreBasedReplacement(t *testing.T) {
	b := NewBTAC(BTACConfig{Entries: 2, Threshold: 1, MaxScore: 3})
	b.Update(1, 100)
	b.Update(1, 100) // pc=1 score 1
	b.Update(2, 200) // pc=2 score 0 (lowest)
	b.Update(3, 300) // must evict pc=2, not pc=1
	if nia, _ := b.Lookup(1); nia != 100 {
		t.Error("high-score entry was evicted")
	}
	if _, predict := b.Lookup(2); predict {
		t.Error("evicted entry still present")
	}
}

func TestBTACCapacity8Paper(t *testing.T) {
	b := NewBTAC(DefaultBTACConfig())
	if b.Entries() != 8 {
		t.Fatalf("default entries = %d, want 8", b.Entries())
	}
	// 8 distinct hot branches fit simultaneously.
	for round := 0; round < 3; round++ {
		for pc := 0; pc < 8; pc++ {
			b.Update(pc*16, pc*16+100)
		}
	}
	for pc := 0; pc < 8; pc++ {
		nia, predict := b.Lookup(pc * 16)
		if !predict || nia != pc*16+100 {
			t.Errorf("entry %d lost: nia=%d predict=%v", pc, nia, predict)
		}
	}
}

func TestBTACReset(t *testing.T) {
	b := NewBTAC(DefaultBTACConfig())
	b.Update(5, 50)
	b.Update(5, 50)
	b.Reset()
	if _, predict := b.Lookup(5); predict {
		t.Error("Reset did not clear entries")
	}
}

func TestBTACDefaultsApplied(t *testing.T) {
	b := NewBTAC(BTACConfig{})
	if b.Entries() != 8 {
		t.Errorf("zero config entries = %d, want default 8", b.Entries())
	}
}
