package branch

import "math"

// TAGE — TAgged GEometric history length predictor (Seznec/Michaud).
// A bimodal base table is backed by a stack of tagged tables indexed
// by the PC hashed with geometrically growing slices of global
// history.  The longest-history table whose tag matches provides the
// prediction; usefulness counters arbitrate allocation on a
// misprediction.  The geometric series is what lets a small predictor
// capture both very short and very long correlation — exactly the
// spread the per-branch taxonomy distinguishes (loop exits need trip-
// count-long history, data-dependent DP branches defeat any length).
//
// The implementation is deliberately deterministic: allocation picks
// the first not-useful entry instead of a random table, so replayed
// and captured runs, and runs on different workers, see bit-identical
// verdicts.

// TAGEConfig sizes a TAGE predictor.
type TAGEConfig struct {
	Tables  int // tagged tables (excluding the bimodal base)
	Bits    int // log2 entries per tagged table (base uses Bits+1)
	TagBits int // tag width per tagged entry
	HistMin int // history length of the shortest tagged table
	HistMax int // history length of the longest tagged table (<= 64)
}

// tageEntry is one tagged-table entry: a partial tag, a 3-bit
// prediction counter (taken when >= 4) and a 2-bit usefulness counter.
type tageEntry struct {
	tag  uint32
	ctr  uint8 // 0..7, taken when >= 4
	u    uint8 // 0..3
	live bool
}

// TAGE implements DirectionPredictor.
type TAGE struct {
	cfg      TAGEConfig
	base     []counter2
	baseMask int
	tables   [][]tageEntry
	idxMask  uint32
	tagMask  uint32
	histLen  []int
	ghist    uint64 // newest outcome in bit 0
}

// NewTAGE builds a TAGE predictor; the tagged tables get history
// lengths growing geometrically from HistMin to HistMax.
func NewTAGE(cfg TAGEConfig) *TAGE {
	if cfg.Tables < 1 {
		cfg.Tables = 1
	}
	if cfg.HistMin < 1 {
		cfg.HistMin = 1
	}
	if cfg.HistMax < cfg.HistMin {
		cfg.HistMax = cfg.HistMin
	}
	if cfg.HistMax > 64 {
		cfg.HistMax = 64
	}
	t := &TAGE{
		cfg:      cfg,
		base:     make([]counter2, 1<<(cfg.Bits+1)),
		baseMask: 1<<(cfg.Bits+1) - 1,
		tables:   make([][]tageEntry, cfg.Tables),
		idxMask:  1<<cfg.Bits - 1,
		tagMask:  1<<cfg.TagBits - 1,
		histLen:  geometricLengths(cfg.Tables, cfg.HistMin, cfg.HistMax),
	}
	for i := range t.tables {
		t.tables[i] = make([]tageEntry, 1<<cfg.Bits)
	}
	t.Reset()
	return t
}

// geometricLengths returns n history lengths from lo to hi in a
// geometric progression (rounded, strictly non-decreasing).
func geometricLengths(n, lo, hi int) []int {
	out := make([]int, n)
	out[0] = lo
	if n == 1 {
		return out
	}
	ratio := float64(hi) / float64(lo)
	for i := 1; i < n; i++ {
		l := int(float64(lo)*math.Pow(ratio, float64(i)/float64(n-1)) + 0.5)
		if l <= out[i-1] {
			l = out[i-1] + 1
		}
		if l > hi {
			l = hi
		}
		out[i] = l
	}
	out[n-1] = hi
	for i := 1; i < n; i++ { // re-assert monotonicity after the clamp
		if out[i] < out[i-1] {
			out[i] = out[i-1]
		}
	}
	return out
}

// fold compresses the low length bits of h into bits-wide chunks XORed
// together.
func fold(h uint64, length, bits int) uint32 {
	if length >= 64 {
		length = 64
	} else {
		h &= 1<<uint(length) - 1
	}
	var f uint64
	for length > 0 {
		f ^= h & (1<<uint(bits) - 1)
		h >>= uint(bits)
		length -= bits
	}
	return uint32(f)
}

func (t *TAGE) index(pc, table int) uint32 {
	h := fold(t.ghist, t.histLen[table], t.cfg.Bits)
	return (uint32(pc) ^ uint32(pc)>>uint(t.cfg.Bits) ^ h ^ uint32(table)<<1) & t.idxMask
}

func (t *TAGE) tag(pc, table int) uint32 {
	h1 := fold(t.ghist, t.histLen[table], t.cfg.TagBits)
	h2 := fold(t.ghist, t.histLen[table], t.cfg.TagBits-1)
	return (uint32(pc) ^ h1 ^ h2<<1) & t.tagMask
}

// lookup finds the provider (longest matching table, -1 = base) and
// the alternate prediction (next matching component below it).
func (t *TAGE) lookup(pc int) (provider int, pred, altPred bool) {
	provider = -1
	pred = t.base[pc&t.baseMask].taken()
	altPred = pred
	for i := len(t.tables) - 1; i >= 0; i-- {
		e := &t.tables[i][t.index(pc, i)]
		if e.live && e.tag == t.tag(pc, i) {
			if provider == -1 {
				provider = i
				pred = e.ctr >= 4
			} else {
				altPred = e.ctr >= 4
				return
			}
		}
	}
	if provider >= 0 {
		altPred = t.base[pc&t.baseMask].taken()
	}
	return
}

// Predict implements DirectionPredictor.
func (t *TAGE) Predict(pc int) bool {
	_, pred, _ := t.lookup(pc)
	return pred
}

// Update implements DirectionPredictor.
func (t *TAGE) Update(pc int, taken bool) {
	provider, pred, altPred := t.lookup(pc)

	if provider >= 0 {
		e := &t.tables[provider][t.index(pc, provider)]
		if taken {
			if e.ctr < 7 {
				e.ctr++
			}
		} else if e.ctr > 0 {
			e.ctr--
		}
		// The usefulness counter tracks whether the provider beats the
		// alternate prediction.
		if pred != altPred {
			if pred == taken {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
	} else {
		i := pc & t.baseMask
		t.base[i] = t.base[i].update(taken)
	}

	// Allocate a longer-history entry on a misprediction, so the next
	// occurrence under the same history can be captured.
	if pred != taken && provider < len(t.tables)-1 {
		allocated := false
		for i := provider + 1; i < len(t.tables); i++ {
			e := &t.tables[i][t.index(pc, i)]
			if !e.live || e.u == 0 {
				e.live = true
				e.tag = t.tag(pc, i)
				e.u = 0
				if taken {
					e.ctr = 4
				} else {
					e.ctr = 3
				}
				allocated = true
				break
			}
		}
		if !allocated {
			// Everything useful: age the candidates so a later
			// misprediction can allocate.
			for i := provider + 1; i < len(t.tables); i++ {
				e := &t.tables[i][t.index(pc, i)]
				if e.u > 0 {
					e.u--
				}
			}
		}
	}

	t.ghist <<= 1
	if taken {
		t.ghist |= 1
	}
}

// Name implements DirectionPredictor.
func (t *TAGE) Name() string { return "tage" }

// Reset implements DirectionPredictor.
func (t *TAGE) Reset() {
	for i := range t.base {
		t.base[i] = 1 // weakly not-taken, like the other predictors
	}
	for _, tab := range t.tables {
		for i := range tab {
			tab[i] = tageEntry{}
		}
	}
	t.ghist = 0
}

// HistoryLengths exposes the geometric series for tests and reports.
func (t *TAGE) HistoryLengths() []int {
	out := make([]int, len(t.histLen))
	copy(out, t.histLen)
	return out
}
