package branch

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file is the predictor registry: every direction predictor the
// zoo offers is addressable by a canonical spec string, so a predictor
// is a value that travels through config files, CLI flags, HTTP
// requests and sched job keys without the rest of the system knowing
// its parameters.
//
// Spec grammar:
//
//	kind                      all parameters at their defaults
//	kind:param=value,...      integer parameters, any order
//	tage:...,hist=MIN..MAX    tage's geometric history range
//
// Examples: "gshare:bits=14", "tage:tables=4,hist=2..64",
// "perceptron:weights=256".  Canonicalization (Spec.Canonical) prints
// every parameter in registry order with defaults filled in, so
// "gshare", "gshare:bits=12" and "gshare:hist=11,bits=12" all collapse
// to "gshare:bits=12,hist=11" — one cache entry, one job key.

// SpecError reports a malformed predictor spec with enough structure
// for an API layer to answer "which field, and why" (the serve 400
// payload and the CLI flag errors are built from it).
type SpecError struct {
	Spec   string // the offending input
	Field  string // "kind" or the parameter name
	Reason string // human-readable cause
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("predictor spec %q: %s: %s (registered: %s)",
		e.Spec, e.Field, e.Reason, strings.Join(Kinds(), ", "))
}

// paramDef is one integer parameter of a predictor kind.
type paramDef struct {
	name     string
	def      int
	min, max int
	isRange  bool // spelled "min..max" (tage history lengths)
	defHi    int  // range parameters: default upper bound
	maxHi    int  // range parameters: upper-bound limit
}

// kindDef is one registered predictor kind.
type kindDef struct {
	kind   string
	params []paramDef
	build  func(p map[string]int) DirectionPredictor
}

// rangeHi suffixes the internal key holding a range parameter's upper
// bound ("hist" stores hist and hist..hi).
const rangeHi = "..hi"

// registry holds every predictor kind in canonical listing order.
var registry = []kindDef{
	{
		kind:  "static-taken",
		build: func(map[string]int) DirectionPredictor { return &Static{Taken: true} },
	},
	{
		kind:  "static-not-taken",
		build: func(map[string]int) DirectionPredictor { return &Static{} },
	},
	{
		kind:   "bimodal",
		params: []paramDef{{name: "bits", def: 12, min: 1, max: 24}},
		build: func(p map[string]int) DirectionPredictor {
			return NewBimodal(uint(p["bits"]))
		},
	},
	{
		kind: "gshare",
		params: []paramDef{
			{name: "bits", def: 12, min: 1, max: 24},
			{name: "hist", def: 11, min: 0, max: 30},
		},
		build: func(p map[string]int) DirectionPredictor {
			return NewGShare(uint(p["bits"]), uint(p["hist"]))
		},
	},
	{
		kind: "tournament",
		params: []paramDef{
			{name: "bits", def: 12, min: 1, max: 24},
			{name: "hist", def: 11, min: 0, max: 30},
		},
		build: func(p map[string]int) DirectionPredictor {
			return NewTournament(uint(p["bits"]), uint(p["hist"]))
		},
	},
	{
		kind: "perceptron",
		params: []paramDef{
			{name: "weights", def: 256, min: 1, max: 1 << 16},
			{name: "hist", def: 24, min: 1, max: 62},
		},
		build: func(p map[string]int) DirectionPredictor {
			return NewPerceptron(p["weights"], p["hist"])
		},
	},
	{
		kind: "tage",
		params: []paramDef{
			{name: "tables", def: 4, min: 1, max: 16},
			{name: "bits", def: 10, min: 4, max: 20},
			{name: "tag", def: 8, min: 4, max: 16},
			{name: "hist", def: 2, min: 1, max: 64, isRange: true, defHi: 64, maxHi: 64},
		},
		build: func(p map[string]int) DirectionPredictor {
			return NewTAGE(TAGEConfig{
				Tables:  p["tables"],
				Bits:    p["bits"],
				TagBits: p["tag"],
				HistMin: p["hist"],
				HistMax: p["hist"+rangeHi],
			})
		},
	},
}

// DefaultSpec is the canonical spec of the POWER5-like baseline
// predictor — what an empty Config.Predictor means.
func DefaultSpec() string { return "tournament:bits=12,hist=11" }

// Kinds lists the registered predictor kinds, sorted.
func Kinds() []string {
	out := make([]string, len(registry))
	for i, k := range registry {
		out[i] = k.kind
	}
	sort.Strings(out)
	return out
}

// Registered describes every registered kind as its canonical
// all-defaults spec string, sorted by kind — the listing CLI and HTTP
// error payloads show.
func Registered() []string {
	out := make([]string, len(registry))
	for i := range registry {
		out[i] = (&Spec{kind: &registry[i], params: defaultParams(&registry[i])}).Canonical()
	}
	sort.Strings(out)
	return out
}

func kindByName(name string) *kindDef {
	for i := range registry {
		if registry[i].kind == name {
			return &registry[i]
		}
	}
	return nil
}

func defaultParams(k *kindDef) map[string]int {
	p := make(map[string]int, len(k.params)+1)
	for _, d := range k.params {
		p[d.name] = d.def
		if d.isRange {
			p[d.name+rangeHi] = d.defHi
		}
	}
	return p
}

// Spec is a parsed, validated predictor specification.
type Spec struct {
	kind   *kindDef
	params map[string]int
}

// ParseSpec parses and validates a predictor spec string.  The empty
// string means the default (POWER5-like tournament) predictor.
func ParseSpec(s string) (*Spec, error) {
	in := s
	s = strings.TrimSpace(s)
	if s == "" {
		s = "tournament"
	}
	kindName, rest, hasParams := strings.Cut(s, ":")
	kindName = strings.ToLower(strings.TrimSpace(kindName))
	k := kindByName(kindName)
	if k == nil {
		return nil, &SpecError{Spec: in, Field: "kind",
			Reason: fmt.Sprintf("unknown predictor kind %q", kindName)}
	}
	sp := &Spec{kind: k, params: defaultParams(k)}
	if !hasParams {
		return sp, nil
	}
	if strings.TrimSpace(rest) == "" {
		return nil, &SpecError{Spec: in, Field: "kind",
			Reason: "empty parameter list after ':'"}
	}
	for _, part := range strings.Split(rest, ",") {
		part = strings.TrimSpace(part)
		name, val, ok := strings.Cut(part, "=")
		name = strings.ToLower(strings.TrimSpace(name))
		if !ok || name == "" {
			return nil, &SpecError{Spec: in, Field: "kind",
				Reason: fmt.Sprintf("malformed parameter %q (want name=value)", part)}
		}
		def := k.param(name)
		if def == nil {
			return nil, &SpecError{Spec: in, Field: name,
				Reason: fmt.Sprintf("unknown parameter for %s (accepts %s)", k.kind, k.paramNames())}
		}
		if err := sp.setParam(in, def, strings.TrimSpace(val)); err != nil {
			return nil, err
		}
	}
	return sp, nil
}

func (k *kindDef) param(name string) *paramDef {
	for i := range k.params {
		if k.params[i].name == name {
			return &k.params[i]
		}
	}
	return nil
}

func (k *kindDef) paramNames() string {
	if len(k.params) == 0 {
		return "no parameters"
	}
	names := make([]string, len(k.params))
	for i, d := range k.params {
		names[i] = d.name
	}
	return strings.Join(names, ", ")
}

func (sp *Spec) setParam(in string, def *paramDef, val string) error {
	if def.isRange {
		lo, hi, isPair := strings.Cut(val, "..")
		n, err := strconv.Atoi(strings.TrimSpace(lo))
		if err != nil {
			return &SpecError{Spec: in, Field: def.name,
				Reason: fmt.Sprintf("bad value %q (want N or MIN..MAX)", val)}
		}
		m := def.defHi
		if isPair {
			if m, err = strconv.Atoi(strings.TrimSpace(hi)); err != nil {
				return &SpecError{Spec: in, Field: def.name,
					Reason: fmt.Sprintf("bad range %q (want MIN..MAX)", val)}
			}
		}
		if n < def.min || n > def.max {
			return &SpecError{Spec: in, Field: def.name,
				Reason: fmt.Sprintf("minimum %d out of range [%d, %d]", n, def.min, def.max)}
		}
		if m < n || m > def.maxHi {
			return &SpecError{Spec: in, Field: def.name,
				Reason: fmt.Sprintf("maximum %d out of range [%d, %d]", m, n, def.maxHi)}
		}
		sp.params[def.name] = n
		sp.params[def.name+rangeHi] = m
		return nil
	}
	n, err := strconv.Atoi(val)
	if err != nil {
		return &SpecError{Spec: in, Field: def.name,
			Reason: fmt.Sprintf("bad value %q (want an integer)", val)}
	}
	if n < def.min || n > def.max {
		return &SpecError{Spec: in, Field: def.name,
			Reason: fmt.Sprintf("value %d out of range [%d, %d]", n, def.min, def.max)}
	}
	sp.params[def.name] = n
	return nil
}

// Kind returns the spec's predictor kind.
func (sp *Spec) Kind() string { return sp.kind.kind }

// Canonical renders the spec in canonical form: the kind followed by
// every parameter in registry order with defaults filled in.  Equal
// predictors have equal canonical strings — the property job-key
// hashing and the trace/result caches rely on.
func (sp *Spec) Canonical() string {
	if len(sp.kind.params) == 0 {
		return sp.kind.kind
	}
	var b strings.Builder
	b.WriteString(sp.kind.kind)
	for i, d := range sp.kind.params {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(d.name)
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(sp.params[d.name]))
		if d.isRange {
			b.WriteString("..")
			b.WriteString(strconv.Itoa(sp.params[d.name+rangeHi]))
		}
	}
	return b.String()
}

// New instantiates the predictor the spec describes.
func (sp *Spec) New() DirectionPredictor { return sp.kind.build(sp.params) }

// FromSpec parses a spec and instantiates its predictor.
func FromSpec(s string) (DirectionPredictor, error) {
	sp, err := ParseSpec(s)
	if err != nil {
		return nil, err
	}
	return sp.New(), nil
}

// CanonicalSpec resolves a spec string to its canonical form.
func CanonicalSpec(s string) (string, error) {
	sp, err := ParseSpec(s)
	if err != nil {
		return "", err
	}
	return sp.Canonical(), nil
}

// CanonicalOrRaw canonicalizes best-effort: a malformed spec is
// returned verbatim.  It exists for identity paths that cannot error
// (sched job keys); validation belongs at the config boundary, and a
// raw string still hashes deterministically.
func CanonicalOrRaw(s string) string {
	c, err := CanonicalSpec(s)
	if err != nil {
		return s
	}
	return c
}
