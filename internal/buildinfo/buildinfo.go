// Package buildinfo reports what binary this is: the module version
// and VCS state Go baked into the build.  It backs `bioperf5 version`
// and GET /v1/version — the version/schema skew guard the cluster
// coordinator uses to refuse mixing incompatible fleets.
package buildinfo

import "runtime/debug"

// Info is the build identity of the running binary.
type Info struct {
	// Version is the main module's version ("(devel)" for a plain
	// `go build`, a semver tag when built from a released module).
	Version string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
	// Revision is the VCS commit hash, when the build embedded one.
	Revision string
	// Modified reports uncommitted changes at build time.
	Modified bool
}

// Read extracts the build identity from the binary's embedded build
// information.  Every field degrades gracefully when the build carries
// no metadata (tests, stripped builds): Version falls back to
// "unknown".
func Read() Info {
	info := Info{Version: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	info.GoVersion = bi.GoVersion
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}
