package core

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"bioperf5/internal/cpu"
	"bioperf5/internal/kernels"
	"bioperf5/internal/trace"
)

func simRequest(store *trace.Store, policy TracePolicy) Request {
	cfg := cpu.POWER5Baseline()
	cfg.UseBTAC = true
	return Request{
		App:     "Fasta",
		Variant: kernels.Branchy,
		Seeds:   []int64{1, 2},
		Scale:   1,
		CPU:     cfg,
		Trace:   policy,
		Traces:  store,
	}
}

// TestSimulatePoliciesBitIdentical is the API contract: every trace
// policy produces byte-identical per-seed reports; only the cost model
// differs.
func TestSimulatePoliciesBitIdentical(t *testing.T) {
	store := trace.NewStore(trace.StoreOptions{})
	off, err := Simulate(simRequest(nil, TraceOff))
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Simulate(simRequest(store, TraceAuto))
	if err != nil {
		t.Fatal(err)
	}
	capture, err := Simulate(simRequest(store, TraceCapture))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := Simulate(simRequest(store, TraceReplay))
	if err != nil {
		t.Fatal(err)
	}
	for name, resp := range map[string]*Response{"auto": auto, "capture": capture, "replay": replay} {
		if !reflect.DeepEqual(resp.Seeds, off.Seeds) || resp.Aggregate != off.Aggregate {
			t.Errorf("policy %s diverges from the coupled path", name)
		}
	}
	if off.TraceHits != 0 || off.Captures != 0 {
		t.Errorf("off policy counted trace activity: %+v", off)
	}
	if auto.Captures != 2 || auto.TraceHits != 0 {
		t.Errorf("first auto run = %d captures / %d hits, want 2/0", auto.Captures, auto.TraceHits)
	}
	if replay.TraceHits != 2 || replay.Captures != 0 {
		t.Errorf("replay run = %d captures / %d hits, want 0/2", replay.Captures, replay.TraceHits)
	}
	// A warm store serves auto entirely from memory.
	warm, err := Simulate(simRequest(store, TraceAuto))
	if err != nil {
		t.Fatal(err)
	}
	if warm.TraceHits != 2 || warm.Captures != 0 {
		t.Errorf("warm auto run = %d captures / %d hits, want 2 hits", warm.Captures, warm.TraceHits)
	}
	if !reflect.DeepEqual(warm.Seeds, off.Seeds) {
		t.Error("warm-cache replay diverges from the coupled path")
	}
}

// TestSimulateSharesTraceAcrossTimingConfigs: the FXU x BTAC factorial
// over one (kernel, variant, seed, scale) runs one capture total.
func TestSimulateSharesTraceAcrossTimingConfigs(t *testing.T) {
	store := trace.NewStore(trace.StoreOptions{})
	base := cpu.POWER5Baseline()
	first := true
	for _, fxus := range []int{2, 3, 4} {
		for _, btac := range []bool{false, true} {
			cfg := base
			cfg.NumFXU = fxus
			cfg.UseBTAC = btac
			resp, err := Simulate(Request{
				App: "Hmmer", Variant: kernels.Branchy, Seeds: []int64{1},
				Scale: 1, CPU: cfg, Traces: store,
			})
			if err != nil {
				t.Fatal(err)
			}
			if first {
				if resp.Captures != 1 {
					t.Fatalf("first cell = %d captures, want 1", resp.Captures)
				}
				first = false
			} else if resp.TraceHits != 1 {
				t.Errorf("FXU=%d BTAC=%v recaptured instead of replaying", fxus, btac)
			}
		}
	}
	if st := store.Stats(); st.Captures != 1 {
		t.Errorf("factorial ran %d captures, want 1", st.Captures)
	}
}

func TestSimulateReplayWithoutCaptureFails(t *testing.T) {
	store := trace.NewStore(trace.StoreOptions{})
	_, err := Simulate(simRequest(store, TraceReplay))
	if err == nil || !strings.Contains(err.Error(), "no captured trace") {
		t.Fatalf("replay against empty store: %v", err)
	}
}

func TestSimulateNoSeeds(t *testing.T) {
	if _, err := Simulate(Request{App: "Fasta"}); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

func TestSimulateUnknownApp(t *testing.T) {
	if _, err := Simulate(Request{App: "NoSuchApp", Seeds: []int64{1}}); err == nil {
		t.Fatal("unknown application accepted")
	}
}

// TestSimulateCorruptDiskTraceFallsBack is the end-to-end corruption
// drill: a bit-flipped trace file must be detected, discarded, and
// transparently recaptured — same numbers, one corrupt count.
func TestSimulateCorruptDiskTraceFallsBack(t *testing.T) {
	dir := t.TempDir()
	s1 := trace.NewStore(trace.StoreOptions{Dir: dir})
	req := simRequest(s1, TraceAuto)
	req.Seeds = []int64{1}
	want, err := Simulate(req)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil || len(files) != 1 {
		t.Fatalf("trace files on disk = %v, %v", files, err)
	}
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/3] ^= 0x10
	if err := os.WriteFile(files[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh store (fresh process) sees only the damaged file.
	s2 := trace.NewStore(trace.StoreOptions{Dir: dir})
	req.Traces = s2
	got, err := Simulate(req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Captures != 1 || got.TraceHits != 0 {
		t.Errorf("corrupt trace not recaptured: %d captures / %d hits", got.Captures, got.TraceHits)
	}
	if !reflect.DeepEqual(got.Seeds, want.Seeds) {
		t.Error("recapture after corruption changed the numbers")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Errorf("store stats = %+v, want Corrupt=1", st)
	}
	// And the recapture healed the file for the next process.
	s3 := trace.NewStore(trace.StoreOptions{Dir: dir})
	req.Traces = s3
	if resp, err := Simulate(req); err != nil || resp.TraceHits != 1 {
		t.Errorf("healed file not served: %+v, %v", resp, err)
	}
}

// TestDeprecatedWrappersMatchSimulate keeps the old entry points exact:
// they are thin shims over Simulate with tracing off.
func TestDeprecatedWrappersMatchSimulate(t *testing.T) {
	k, err := kernels.ByApp("Clustalw")
	if err != nil {
		t.Fatal(err)
	}
	s := Baseline().WithBTAC()
	seeds := []int64{1, 2}

	resp, err := Simulate(Request{App: k.App, Variant: s.Variant, Seeds: seeds,
		Scale: 1, CPU: s.CPU, Trace: TraceOff})
	if err != nil {
		t.Fatal(err)
	}
	det, err := RunKernelDetailed(k, s, seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(det.Seeds, resp.Seeds) || det.Aggregate != resp.Aggregate {
		t.Error("RunKernelDetailed diverges from Simulate")
	}
	ctrs, err := RunKernel(k, s, seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ctrs != resp.Aggregate.Counters {
		t.Error("RunKernel diverges from Simulate")
	}
	rep, err := RunCell(k, s, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters != resp.Seeds[0].Counters || rep.Stalls != resp.Seeds[0].Stalls {
		t.Error("RunCell diverges from Simulate")
	}
}

func TestParseTracePolicy(t *testing.T) {
	for in, want := range map[string]TracePolicy{
		"": TraceAuto, "auto": TraceAuto, "capture": TraceCapture,
		"replay": TraceReplay, "off": TraceOff,
	} {
		got, err := ParseTracePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseTracePolicy(%q) = (%q, %v), want %q", in, got, err, want)
		}
	}
	if _, err := ParseTracePolicy("always"); err == nil {
		t.Error("bad policy accepted")
	}
}
