package core

import (
	"math"
	"testing"

	"bioperf5/internal/kernels"
)

func TestSetupBuilders(t *testing.T) {
	s := Baseline()
	if s.Variant != kernels.Branchy || s.CPU.UseBTAC || s.CPU.NumFXU != 2 {
		t.Fatalf("baseline = %+v", s)
	}
	s2 := s.WithVariant(kernels.Combination).WithBTAC().WithFXUs(4)
	if s2.Variant != kernels.Combination || !s2.CPU.UseBTAC || s2.CPU.NumFXU != 4 {
		t.Errorf("built setup = %+v", s2)
	}
	// The original is unchanged (value semantics).
	if s.CPU.UseBTAC || s.CPU.NumFXU != 2 {
		t.Error("WithX mutated the receiver")
	}
}

func TestRunKernelAggregates(t *testing.T) {
	k, err := kernels.ByApp("Clustalw")
	if err != nil {
		t.Fatal(err)
	}
	one, err := RunKernel(k, Baseline(), []int64{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	two, err := RunKernel(k, Baseline(), []int64{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if two.Instructions <= one.Instructions || two.Cycles <= one.Cycles {
		t.Errorf("aggregation: one=%d instr, two=%d instr", one.Instructions, two.Instructions)
	}
	if _, err := RunKernel(k, Baseline(), nil, 1); err == nil {
		t.Error("empty seed list accepted")
	}
}

func TestImprovedSetupBeatsBaseline(t *testing.T) {
	// The paper's headline: predication + BTAC + FXUs beats baseline.
	k, err := kernels.ByApp("Clustalw")
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int64{1, 2}
	base, err := RunKernel(k, Baseline(), seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunKernel(k, Baseline().WithVariant(kernels.Combination).WithBTAC().WithFXUs(4), seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full.Cycles >= base.Cycles {
		t.Errorf("improved core %d cycles, baseline %d", full.Cycles, base.Cycles)
	}
	if full.IPC() <= base.IPC() {
		t.Errorf("improved IPC %.2f not above baseline %.2f", full.IPC(), base.IPC())
	}
}

func TestRunIntervals(t *testing.T) {
	k, err := kernels.ByApp("Clustalw")
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := RunIntervals(k, Baseline(), 3, 1, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) < 3 {
		t.Fatalf("only %d intervals", len(ivs))
	}
	for i, iv := range ivs {
		if iv.IPC <= 0 || iv.IPC > 5 {
			t.Errorf("interval %d: IPC %.2f implausible", i, iv.IPC)
		}
		if iv.MispredictRate < 0 || iv.MispredictRate > 1 {
			t.Errorf("interval %d: mispredict rate %.2f", i, iv.MispredictRate)
		}
		if i > 0 && iv.Instructions <= ivs[i-1].Instructions {
			t.Error("intervals not monotone in instructions")
		}
	}
	if _, err := RunIntervals(k, Baseline(), 3, 1, 0); err == nil {
		t.Error("zero interval length accepted")
	}
}

// TestFigure2Correlation verifies the paper's Figure 2 observation in
// our data: interval IPC moves inversely with the interval mispredict
// rate for the Clustalw kernel.
func TestFigure2Correlation(t *testing.T) {
	k, err := kernels.ByApp("Clustalw")
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := RunIntervals(k, Baseline(), 5, 2, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) < 5 {
		t.Skipf("not enough intervals (%d) for a correlation", len(ivs))
	}
	var mx, my float64
	for _, iv := range ivs {
		mx += iv.MispredictRate
		my += iv.IPC
	}
	mx /= float64(len(ivs))
	my /= float64(len(ivs))
	var sxy, sxx, syy float64
	for _, iv := range ivs {
		dx, dy := iv.MispredictRate-mx, iv.IPC-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		t.Skip("degenerate variance")
	}
	r := sxy / math.Sqrt(sxx*syy)
	if r >= 0 {
		t.Errorf("IPC vs mispredict-rate correlation = %.2f, want negative", r)
	}
}

func TestRunSampledApproximatesFullRun(t *testing.T) {
	k, err := kernels.ByApp("Fasta")
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunKernel(k, Baseline(), []int64{4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := RunSampled(k, Baseline(), 4, 1, SampleConfig{Detail: 10_000, Skip: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.TotalInstr != full.Instructions {
		t.Errorf("sampled executed %d instructions, full %d", sampled.TotalInstr, full.Instructions)
	}
	if sampled.Detailed.Instructions >= sampled.TotalInstr {
		t.Error("sampling simulated everything in detail")
	}
	fullIPC := full.IPC()
	estIPC := sampled.EstimatedIPC()
	if relErr := math.Abs(estIPC-fullIPC) / fullIPC; relErr > 0.25 {
		t.Errorf("sampled IPC %.3f vs full %.3f (err %.0f%%)", estIPC, fullIPC, 100*relErr)
	}
	if _, err := RunSampled(k, Baseline(), 4, 1, SampleConfig{}); err == nil {
		t.Error("zero detail window accepted")
	}
}

func TestSampledDetailOnlyEqualsFull(t *testing.T) {
	k, err := kernels.ByApp("Clustalw")
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunKernel(k, Baseline(), []int64{6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := RunSampled(k, Baseline(), 6, 1, SampleConfig{Detail: 1 << 40, Skip: 0})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Detailed.Cycles != full.Cycles {
		t.Errorf("detail-only sampling: %d cycles vs full %d", sampled.Detailed.Cycles, full.Cycles)
	}
}
