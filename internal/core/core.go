// Package core is the paper's contribution assembled into a runnable
// evaluation pipeline: a Setup pairs one of the predication variants
// (Section IV-A/B) with a microarchitecture configuration (BTAC of
// Section IV-D, fixed-point unit count of Section VI-C), and runners
// execute the BioPerf DP kernels on real data through the compiler and
// the POWER5 timing model, aggregating hardware counters the way the
// paper's SystemSim methodology does — including SMARTS-style sampled
// simulation and the interval statistics behind Figure 2.
package core

import (
	"fmt"

	"bioperf5/internal/cpu"
	"bioperf5/internal/isa"
	"bioperf5/internal/kernels"
	"bioperf5/internal/machine"
)

// Setup is one evaluated machine: how the kernel is compiled plus the
// core configuration it runs on.
type Setup struct {
	Name    string
	Variant kernels.Variant
	CPU     cpu.Config
}

// Baseline is the unmodified POWER5 running unmodified (branchy) code.
func Baseline() Setup {
	return Setup{Name: "POWER5 baseline", Variant: kernels.Branchy, CPU: cpu.POWER5Baseline()}
}

// WithVariant returns the setup recompiled under a predication variant.
func (s Setup) WithVariant(v kernels.Variant) Setup {
	s.Variant = v
	s.Name = fmt.Sprintf("%s + %s", s.Name, v)
	return s
}

// WithBTAC returns the setup with the 8-entry score-based BTAC enabled.
func (s Setup) WithBTAC() Setup {
	s.CPU.UseBTAC = true
	s.Name += " + BTAC"
	return s
}

// WithFXUs returns the setup with n fixed-point units.
func (s Setup) WithFXUs(n int) Setup {
	s.CPU.NumFXU = n
	s.Name += fmt.Sprintf(" + %d FXUs", n)
	return s
}

// stepLimit bounds a single kernel invocation.
const stepLimit = 500_000_000

// RunKernel compiles app's kernel under the setup and simulates one
// invocation per seed, returning the summed counters.
//
// Deprecated: use Simulate, which adds trace policies and hit
// accounting behind the same semantics.  RunKernel runs the coupled
// path (TraceOff).
func RunKernel(k *kernels.Kernel, s Setup, seeds []int64, scale int) (cpu.Counters, error) {
	det, err := RunKernelDetailed(k, s, seeds, scale)
	if err != nil {
		return cpu.Counters{}, err
	}
	return det.Aggregate.Counters, nil
}

// SeedReport is one seed's detailed simulation outcome.
type SeedReport struct {
	Seed     int64          `json:"seed"`
	Counters cpu.Counters   `json:"counters"`
	Stalls   cpu.StallStack `json:"stall_stack"`
}

// Detail is a per-seed view of one kernel/setup simulation plus the
// field-wise aggregate — the data behind the harness JSON reports and
// the `bioperf5 stats` subcommand.
type Detail struct {
	Seeds     []SeedReport `json:"seeds"`
	Aggregate cpu.Report   `json:"aggregate"`
}

// RunCell simulates exactly one (kernel, setup, seed) cell — the unit
// of work the internal/sched engine schedules and caches.  It touches
// no state outside its own run, so cells are safe to execute from
// concurrent workers.
//
// Deprecated: use Simulate.  RunCell runs the coupled path (TraceOff).
func RunCell(k *kernels.Kernel, s Setup, seed int64, scale int) (cpu.Report, error) {
	resp, err := Simulate(Request{
		App:     k.App,
		Variant: s.Variant,
		Seeds:   []int64{seed},
		Scale:   scale,
		CPU:     s.CPU,
		Trace:   TraceOff,
	})
	if err != nil {
		return cpu.Report{}, err
	}
	return resp.Aggregate, nil
}

// RunKernelDetailed simulates one invocation per seed, keeping each
// seed's counters and CPI stall stack as well as the aggregate.
//
// Deprecated: use Simulate.  RunKernelDetailed runs the coupled path
// (TraceOff).
func RunKernelDetailed(k *kernels.Kernel, s Setup, seeds []int64, scale int) (*Detail, error) {
	resp, err := Simulate(Request{
		App:     k.App,
		Variant: s.Variant,
		Seeds:   seeds,
		Scale:   scale,
		CPU:     s.CPU,
		Trace:   TraceOff,
	})
	if err != nil {
		return nil, err
	}
	return &Detail{Seeds: resp.Seeds, Aggregate: resp.Aggregate}, nil
}

// RunProfiled simulates one invocation per seed on the coupled model
// with a branch profiler attached.  The profiler observes every
// resolved conditional branch and BTAC lookup without touching timing,
// so the counters are identical to an unprofiled run — but the run
// always executes the coupled path: profilers cannot ride the cached
// or trace-replayed paths, whose results are shared across callers.
func RunProfiled(k *kernels.Kernel, s Setup, seeds []int64, scale int, prof cpu.BranchProfiler) (*Detail, error) {
	if scale < 1 {
		scale = 1
	}
	det := &Detail{}
	for _, seed := range seeds {
		run, err := k.NewRun(seed, scale)
		if err != nil {
			return nil, err
		}
		rep, err := kernels.SimulateObserved(k, s.Variant, run, s.CPU, stepLimit,
			kernels.Observer{Branches: prof})
		if err != nil {
			return nil, err
		}
		det.Seeds = append(det.Seeds, SeedReport{Seed: seed, Counters: rep.Counters, Stalls: rep.Stalls})
		det.Aggregate = det.Aggregate.Add(rep)
	}
	return det, nil
}

// Interval is one sampling window of a run (Figure 2's x-axis is
// time; instructions retired is the architecture-independent analogue).
type Interval struct {
	Instructions   uint64 // cumulative instructions at the window end
	IPC            float64
	MispredictRate float64
}

// RunIntervals simulates one invocation and snapshots the counters
// every `every` instructions, reproducing the IPC-vs-time and
// mispredict-vs-time traces of Figure 2.
func RunIntervals(k *kernels.Kernel, s Setup, seed int64, scale int, every uint64) ([]Interval, error) {
	if every == 0 {
		return nil, fmt.Errorf("core: zero interval length")
	}
	run, err := k.NewRun(seed, scale)
	if err != nil {
		return nil, err
	}
	prog, _, err := k.Compile(s.Variant)
	if err != nil {
		return nil, err
	}
	cfg := s.CPU
	if s.Variant.NeedsExtensions() {
		cfg.Extensions = true
	}
	model, err := cpu.New(cfg)
	if err != nil {
		return nil, err
	}
	mach := machine.New(prog, run.Mem)
	mach.Reset()
	if err := mach.SetPC(k.Name); err != nil {
		return nil, err
	}
	mach.SetReg(isa.SP, 0x7FFF0000)
	for i, a := range run.Args {
		mach.SetReg(isa.R3+isa.Reg(i), a)
	}

	var out []Interval
	prev := model.Counters()
	var steps uint64
	for !mach.Halted() {
		if steps >= stepLimit {
			return nil, machine.ErrLimit
		}
		d, err := mach.Step()
		if err != nil {
			return nil, err
		}
		if err := model.Consume(d); err != nil {
			return nil, err
		}
		steps++
		if steps%every == 0 {
			cur := model.Counters()
			win := cur.Sub(prev)
			out = append(out, Interval{
				Instructions:   cur.Instructions,
				IPC:            win.IPC(),
				MispredictRate: win.BranchMispredictRate(),
			})
			prev = cur
		}
	}
	if got := int64(mach.Reg(isa.R3)); got != run.Want {
		return nil, fmt.Errorf("core: %s computed %d, want %d", k.Name, got, run.Want)
	}
	return out, nil
}

// SampleConfig is a SMARTS-style systematic sampling schedule: Detail
// instructions are simulated in full detail, then Skip instructions are
// fast-forwarded functionally (the machine state advances, the timing
// model does not), repeating.
type SampleConfig struct {
	Detail uint64
	Skip   uint64
}

// SampledResult extrapolates whole-run cycles from the detailed
// windows, as SMARTS does.
type SampledResult struct {
	Detailed        cpu.Counters // counters accumulated in detailed windows
	TotalInstr      uint64       // instructions executed (all modes)
	EstimatedCycles float64      // detailed CPI x total instructions
}

// EstimatedIPC returns the whole-run IPC estimate.
func (r SampledResult) EstimatedIPC() float64 {
	if r.EstimatedCycles == 0 {
		return 0
	}
	return float64(r.TotalInstr) / r.EstimatedCycles
}

// RunSampled simulates one invocation under the sampling schedule.
func RunSampled(k *kernels.Kernel, s Setup, seed int64, scale int, sc SampleConfig) (SampledResult, error) {
	if sc.Detail == 0 {
		return SampledResult{}, fmt.Errorf("core: zero detail window")
	}
	run, err := k.NewRun(seed, scale)
	if err != nil {
		return SampledResult{}, err
	}
	prog, _, err := k.Compile(s.Variant)
	if err != nil {
		return SampledResult{}, err
	}
	cfg := s.CPU
	if s.Variant.NeedsExtensions() {
		cfg.Extensions = true
	}
	model, err := cpu.New(cfg)
	if err != nil {
		return SampledResult{}, err
	}
	mach := machine.New(prog, run.Mem)
	mach.Reset()
	if err := mach.SetPC(k.Name); err != nil {
		return SampledResult{}, err
	}
	mach.SetReg(isa.SP, 0x7FFF0000)
	for i, a := range run.Args {
		mach.SetReg(isa.R3+isa.Reg(i), a)
	}

	var res SampledResult
	inWindow := uint64(0)
	detail := true
	for !mach.Halted() {
		if res.TotalInstr >= stepLimit {
			return res, machine.ErrLimit
		}
		d, err := mach.Step()
		if err != nil {
			return res, err
		}
		res.TotalInstr++
		if detail {
			if err := model.Consume(d); err != nil {
				return res, err
			}
		}
		inWindow++
		if detail && inWindow >= sc.Detail {
			detail, inWindow = sc.Skip == 0, 0
		} else if !detail && inWindow >= sc.Skip {
			detail, inWindow = true, 0
		}
	}
	res.Detailed = model.Counters()
	if res.Detailed.Instructions > 0 {
		cpi := float64(res.Detailed.Cycles) / float64(res.Detailed.Instructions)
		res.EstimatedCycles = cpi * float64(res.TotalInstr)
	}
	if got := int64(mach.Reg(isa.R3)); got != run.Want {
		return res, fmt.Errorf("core: %s computed %d, want %d", k.Name, got, run.Want)
	}
	return res, nil
}
