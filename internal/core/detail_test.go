package core

import (
	"testing"

	"bioperf5/internal/kernels"
)

// TestStallStackInvariantTier1Workloads is the acceptance gate for the
// CPI stall stack: on every tier-1 workload (the four application
// kernels), under the baseline core and under the paper's improved
// core, the stall buckets must sum exactly to the cycle count — per
// seed and in aggregate.
func TestStallStackInvariantTier1Workloads(t *testing.T) {
	setups := []Setup{
		Baseline(),
		Baseline().WithVariant(kernels.Combination).WithBTAC().WithFXUs(4),
	}
	seeds := []int64{1, 2}
	for _, k := range kernels.All() {
		for _, s := range setups {
			det, err := RunKernelDetailed(k, s, seeds, 1)
			if err != nil {
				t.Fatalf("%s / %s: %v", k.App, s.Name, err)
			}
			for _, sr := range det.Seeds {
				if got, want := sr.Stalls.Total(), sr.Counters.Cycles; got != want {
					t.Errorf("%s / %s seed %d: stall stack %d != cycles %d\n%+v",
						k.App, s.Name, sr.Seed, got, want, sr.Stalls)
				}
			}
			agg := det.Aggregate
			if got, want := agg.Stalls.Total(), agg.Counters.Cycles; got != want {
				t.Errorf("%s / %s aggregate: stall stack %d != cycles %d",
					k.App, s.Name, got, want)
			}
			// The stack must not be degenerate: a DP kernel spends
			// cycles outside the base bucket.
			if agg.Stalls.Base == agg.Stalls.Total() {
				t.Errorf("%s / %s: all cycles fell in the base bucket", k.App, s.Name)
			}
		}
	}
}

// TestRunKernelMatchesDetailedAggregate pins RunKernel as a thin view
// over RunKernelDetailed.
func TestRunKernelMatchesDetailedAggregate(t *testing.T) {
	k := kernels.All()[0]
	seeds := []int64{1}
	ctr, err := RunKernel(k, Baseline(), seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	det, err := RunKernelDetailed(k, Baseline(), seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ctr != det.Aggregate.Counters {
		t.Errorf("RunKernel diverged from RunKernelDetailed aggregate")
	}
}
