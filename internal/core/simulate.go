package core

import (
	"fmt"
	"sync"

	"bioperf5/internal/cpu"
	"bioperf5/internal/kernels"
	"bioperf5/internal/trace"
)

// TracePolicy selects how a simulation uses the capture-once/
// replay-many trace subsystem.
type TracePolicy string

// Trace policies.  The zero value means TraceAuto.
const (
	// TraceAuto captures the cell's dynamic trace on first use and
	// replays it for every later request that differs only in timing
	// configuration.  This is the default: results are bit-identical to
	// the coupled path and sweeps pay for each functional execution
	// once.
	TraceAuto TracePolicy = "auto"
	// TraceCapture forces a fresh capture even when a trace exists,
	// replacing the stored one.
	TraceCapture TracePolicy = "capture"
	// TraceReplay requires a stored trace and fails rather than
	// capture — for strictly bounded-latency serving.
	TraceReplay TracePolicy = "replay"
	// TraceOff runs the coupled functional-plus-timing path, bypassing
	// the trace subsystem entirely.
	TraceOff TracePolicy = "off"
)

// ParseTracePolicy resolves a policy spelling; the empty string means
// TraceAuto so absent config fields keep the default behaviour.
func ParseTracePolicy(s string) (TracePolicy, error) {
	switch TracePolicy(s) {
	case "":
		return TraceAuto, nil
	case TraceAuto, TraceCapture, TraceReplay, TraceOff:
		return TracePolicy(s), nil
	}
	return "", fmt.Errorf("core: unknown trace policy %q (want auto, capture, replay or off)", s)
}

// Request describes one simulation through the unified Simulate entry
// point: which cell to run (application, variant, seeds, scale), the
// timing configuration, and how to use the trace subsystem.
type Request struct {
	App     string
	Variant kernels.Variant
	Seeds   []int64
	Scale   int
	CPU     cpu.Config

	// Trace selects the trace policy; the zero value is TraceAuto.
	Trace TracePolicy
	// Traces is the trace store to capture into / replay from; nil uses
	// the process-wide default store.  Ignored when Trace is TraceOff.
	Traces *trace.Store
	// Limit bounds each seed's dynamic instruction count; 0 means the
	// standard per-invocation limit.
	Limit uint64
}

// Response is the result of one Simulate call.
type Response struct {
	// Seeds holds each seed's counters and stall stack, in request
	// order.  The values are bit-identical regardless of trace policy.
	Seeds []SeedReport `json:"seeds"`
	// Aggregate is the field-wise sum over seeds.
	Aggregate cpu.Report `json:"aggregate"`
	// TraceHits counts seeds served from an existing trace (memory,
	// disk, or a capture coalesced with a concurrent request).
	TraceHits int `json:"trace_hits"`
	// Captures counts seeds that ran a fresh functional capture.
	Captures int `json:"captures"`
}

var (
	defaultStoreOnce sync.Once
	defaultStore     *trace.Store
)

// DefaultTraceStore returns the process-wide in-memory trace store that
// Simulate uses when the request does not supply one.
func DefaultTraceStore() *trace.Store {
	defaultStoreOnce.Do(func() {
		defaultStore = trace.NewStore(trace.StoreOptions{})
	})
	return defaultStore
}

// Simulate is the single entry point for running a cell: it resolves
// the kernel, applies the trace policy per seed, and aggregates.  With
// tracing enabled the counters and stall stacks are bit-identical to
// the coupled path (TraceOff) — the replay-equivalence tests in
// kernels enforce it — so callers choose a policy on cost alone.
func Simulate(req Request) (*Response, error) {
	if len(req.Seeds) == 0 {
		return nil, fmt.Errorf("core: no seeds")
	}
	k, err := kernels.ByApp(req.App)
	if err != nil {
		return nil, err
	}
	policy := req.Trace
	if policy == "" {
		policy = TraceAuto
	}
	scale := req.Scale
	if scale < 1 {
		scale = 1
	}
	limit := req.Limit
	if limit == 0 {
		limit = stepLimit
	}
	store := req.Traces
	if store == nil && policy != TraceOff {
		store = DefaultTraceStore()
	}

	resp := &Response{}
	for _, seed := range req.Seeds {
		rep, hit, err := simulateSeed(k, req.Variant, seed, scale, req.CPU, policy, store, limit)
		if err != nil {
			return nil, err
		}
		if policy != TraceOff {
			if hit {
				resp.TraceHits++
			} else {
				resp.Captures++
			}
		}
		resp.Seeds = append(resp.Seeds, SeedReport{Seed: seed, Counters: rep.Counters, Stalls: rep.Stalls})
		resp.Aggregate = resp.Aggregate.Add(rep)
	}
	return resp, nil
}

// simulateSeed runs one (kernel, variant, seed, scale) invocation under
// the policy and reports whether an existing trace served it.
func simulateSeed(k *kernels.Kernel, v kernels.Variant, seed int64, scale int,
	cfg cpu.Config, policy TracePolicy, store *trace.Store, limit uint64) (cpu.Report, bool, error) {
	if policy == TraceOff {
		run, err := k.NewRun(seed, scale)
		if err != nil {
			return cpu.Report{}, false, err
		}
		rep, err := kernels.SimulateObserved(k, v, run, cfg, limit, kernels.Observer{})
		return rep, false, err
	}

	key, err := kernels.TraceKey(k, v, seed, scale, cfg.Predictor)
	if err != nil {
		return cpu.Report{}, false, err
	}
	var t *trace.Trace
	hit := false
	switch policy {
	case TraceCapture:
		t, err = kernels.CaptureTrace(k, v, seed, scale, cfg.Predictor, limit)
		if err != nil {
			return cpu.Report{}, false, err
		}
		store.Put(key, t)
	case TraceReplay:
		var ok bool
		if t, ok = store.Get(key); !ok {
			return cpu.Report{}, false, fmt.Errorf("core: no captured trace for %s/%s seed %d scale %d (policy replay)",
				k.App, v, seed, scale)
		}
		hit = true
	default: // TraceAuto
		t, hit, err = store.GetOrCapture(key, func() (*trace.Trace, error) {
			return kernels.CaptureTrace(k, v, seed, scale, cfg.Predictor, limit)
		})
		if err != nil {
			return cpu.Report{}, false, err
		}
	}
	rep, err := kernels.ReplayTrace(k, v, t, cfg)
	return rep, hit, err
}
