package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"bioperf5/internal/cpu"
	"bioperf5/internal/kernels"
	"bioperf5/internal/telemetry"
	"bioperf5/internal/trace"
)

// TracePolicy selects how a simulation uses the capture-once/
// replay-many trace subsystem.
type TracePolicy string

// Trace policies.  The zero value means TraceAuto.
const (
	// TraceAuto captures the cell's dynamic trace on first use and
	// replays it for every later request that differs only in timing
	// configuration.  This is the default: results are bit-identical to
	// the coupled path and sweeps pay for each functional execution
	// once.
	TraceAuto TracePolicy = "auto"
	// TraceCapture forces a fresh capture even when a trace exists,
	// replacing the stored one.
	TraceCapture TracePolicy = "capture"
	// TraceReplay requires a stored trace and fails rather than
	// capture — for strictly bounded-latency serving.
	TraceReplay TracePolicy = "replay"
	// TraceOff runs the coupled functional-plus-timing path, bypassing
	// the trace subsystem entirely.
	TraceOff TracePolicy = "off"
)

// ParseTracePolicy resolves a policy spelling; the empty string means
// TraceAuto so absent config fields keep the default behaviour.
func ParseTracePolicy(s string) (TracePolicy, error) {
	switch TracePolicy(s) {
	case "":
		return TraceAuto, nil
	case TraceAuto, TraceCapture, TraceReplay, TraceOff:
		return TracePolicy(s), nil
	}
	return "", fmt.Errorf("core: unknown trace policy %q (want auto, capture, replay or off)", s)
}

// Request describes one simulation through the unified Simulate entry
// point: which cell to run (application, variant, seeds, scale), the
// timing configuration, and how to use the trace subsystem.
type Request struct {
	App     string
	Variant kernels.Variant
	Seeds   []int64
	Scale   int
	CPU     cpu.Config

	// Context, when non-nil, carries the caller's telemetry tracer:
	// each stage of the simulation (compile, capture, replay, coupled
	// run) records a span under the current span in it.  Simulation
	// results never depend on it.
	Context context.Context

	// Trace selects the trace policy; the zero value is TraceAuto.
	Trace TracePolicy
	// Traces is the trace store to capture into / replay from; nil uses
	// the process-wide default store.  Ignored when Trace is TraceOff.
	Traces *trace.Store
	// Limit bounds each seed's dynamic instruction count; 0 means the
	// standard per-invocation limit.
	Limit uint64
}

// Response is the result of one Simulate call.
type Response struct {
	// Seeds holds each seed's counters and stall stack, in request
	// order.  The values are bit-identical regardless of trace policy.
	Seeds []SeedReport `json:"seeds"`
	// Aggregate is the field-wise sum over seeds.
	Aggregate cpu.Report `json:"aggregate"`
	// TraceHits counts seeds served from an existing trace (memory,
	// disk, or a capture coalesced with a concurrent request).
	TraceHits int `json:"trace_hits"`
	// Captures counts seeds that ran a fresh functional capture.
	Captures int `json:"captures"`
	// Cost is the summed per-stage time breakdown across seeds:
	// where this call's wall time went (compile vs capture vs replay
	// vs coupled run vs trace-store wait).  Always measured — the
	// clock reads are trivial next to any simulation.
	Cost telemetry.StageCost `json:"cost,omitempty"`
}

var (
	defaultStoreOnce sync.Once
	defaultStore     *trace.Store
)

// DefaultTraceStore returns the process-wide in-memory trace store that
// Simulate uses when the request does not supply one.
func DefaultTraceStore() *trace.Store {
	defaultStoreOnce.Do(func() {
		defaultStore = trace.NewStore(trace.StoreOptions{})
	})
	return defaultStore
}

// Simulate is the single entry point for running a cell: it resolves
// the kernel, applies the trace policy per seed, and aggregates.  With
// tracing enabled the counters and stall stacks are bit-identical to
// the coupled path (TraceOff) — the replay-equivalence tests in
// kernels enforce it — so callers choose a policy on cost alone.
func Simulate(req Request) (*Response, error) {
	if len(req.Seeds) == 0 {
		return nil, fmt.Errorf("core: no seeds")
	}
	k, err := kernels.ByApp(req.App)
	if err != nil {
		return nil, err
	}
	policy := req.Trace
	if policy == "" {
		policy = TraceAuto
	}
	scale := req.Scale
	if scale < 1 {
		scale = 1
	}
	limit := req.Limit
	if limit == 0 {
		limit = stepLimit
	}
	store := req.Traces
	if store == nil && policy != TraceOff {
		store = DefaultTraceStore()
	}

	ctx := req.Context
	if ctx == nil {
		ctx = context.Background()
	}

	resp := &Response{}
	for _, seed := range req.Seeds {
		rep, hit, cost, err := simulateSeed(ctx, k, req.Variant, seed, scale, req.CPU, policy, store, limit)
		if err != nil {
			return nil, err
		}
		if policy != TraceOff {
			if hit {
				resp.TraceHits++
			} else {
				resp.Captures++
			}
		}
		resp.Seeds = append(resp.Seeds, SeedReport{Seed: seed, Counters: rep.Counters, Stalls: rep.Stalls})
		resp.Aggregate = resp.Aggregate.Add(rep)
		resp.Cost.Add(cost)
	}
	return resp, nil
}

// simulateSeed runs one (kernel, variant, seed, scale) invocation under
// the policy, reporting whether an existing trace served it and where
// the time went.  The compile stage is isolated by resolving the
// memoized compilation up front, so the capture/replay timings below it
// measure only their own work.
func simulateSeed(ctx context.Context, k *kernels.Kernel, v kernels.Variant, seed int64, scale int,
	cfg cpu.Config, policy TracePolicy, store *trace.Store, limit uint64) (cpu.Report, bool, telemetry.StageCost, error) {
	var cost telemetry.StageCost
	seedStart := time.Now()
	defer func() { cost.TotalNS = time.Since(seedStart).Nanoseconds() }()

	// Resolve the memoized compilation first so the stage timings
	// below measure only their own work.  The returned context is not
	// adopted: later stages are siblings of the compile span, not
	// children.
	compileStart := time.Now()
	_, csp := telemetry.StartSpan(ctx, telemetry.StageCompile)
	csp.Attr("app", k.App)
	csp.Attr("variant", v.String())
	_, err := kernels.CompileCached(k, v)
	csp.End()
	cost.CompileNS = time.Since(compileStart).Nanoseconds()
	if err != nil {
		return cpu.Report{}, false, cost, err
	}

	if policy == TraceOff {
		run, err := k.NewRun(seed, scale)
		if err != nil {
			return cpu.Report{}, false, cost, err
		}
		simStart := time.Now()
		_, sp := telemetry.StartSpan(ctx, telemetry.StageSim)
		sp.Attr("app", k.App)
		sp.AttrInt("seed", seed)
		rep, err := kernels.SimulateObserved(k, v, run, cfg, limit, kernels.Observer{})
		sp.End()
		cost.SimNS = time.Since(simStart).Nanoseconds()
		return rep, false, cost, err
	}

	key, err := kernels.TraceKey(k, v, seed, scale)
	if err != nil {
		return cpu.Report{}, false, cost, err
	}
	var t *trace.Trace
	hit := false
	switch policy {
	case TraceCapture:
		capStart := time.Now()
		_, sp := telemetry.StartSpan(ctx, telemetry.StageCapture)
		sp.Attr("app", k.App)
		sp.AttrInt("seed", seed)
		t, err = kernels.CaptureTrace(k, v, seed, scale, limit)
		sp.End()
		cost.CaptureNS = time.Since(capStart).Nanoseconds()
		if err != nil {
			return cpu.Report{}, false, cost, err
		}
		store.Put(key, t)
	case TraceReplay:
		getStart := time.Now()
		var ok bool
		t, ok = store.Get(key)
		cost.CacheNS += time.Since(getStart).Nanoseconds()
		if !ok {
			return cpu.Report{}, false, cost, fmt.Errorf("core: no captured trace for %s/%s seed %d scale %d (policy replay)",
				k.App, v, seed, scale)
		}
		hit = true
	default: // TraceAuto
		// The store call covers both the singleflight wait (a
		// concurrent caller is capturing the same trace) and, on a
		// cold key, the capture itself; the closure isolates the
		// capture portion so the remainder attributes to the store.
		getStart := time.Now()
		var captureNS int64
		t, hit, err = store.GetOrCapture(key, func() (*trace.Trace, error) {
			capStart := time.Now()
			_, sp := telemetry.StartSpan(ctx, telemetry.StageCapture)
			sp.Attr("app", k.App)
			sp.AttrInt("seed", seed)
			tr, cerr := kernels.CaptureTrace(k, v, seed, scale, limit)
			sp.End()
			captureNS = time.Since(capStart).Nanoseconds()
			return tr, cerr
		})
		cost.CaptureNS += captureNS
		cost.CacheNS += time.Since(getStart).Nanoseconds() - captureNS
		if err != nil {
			return cpu.Report{}, false, cost, err
		}
	}
	replayStart := time.Now()
	_, sp := telemetry.StartSpan(ctx, telemetry.StageReplay)
	sp.Attr("app", k.App)
	sp.AttrInt("seed", seed)
	sp.AttrBool("trace_hit", hit)
	rep, err := kernels.ReplayTrace(k, v, t, cfg)
	sp.End()
	cost.ReplayNS = time.Since(replayStart).Nanoseconds()
	return rep, hit, cost, err
}
