// Package bprof is the per-static-branch predictability profiler.  It
// implements cpu.BranchProfiler: the coupled timing model feeds it
// every resolved conditional branch (with the live predictor's verdict)
// and every BTAC lookup, keyed by static PC.  From that stream it
// builds, per branch site, the execution and mispredict counts the
// aggregate hardware counters only report machine-wide — and classifies
// each site into a predictability taxonomy:
//
//   - biased: one direction dominates (a bounds check, an error
//     branch); any counter predicts it.
//   - loop-exit: a regular trip-count structure — runs of the majority
//     direction of constant length, broken by single minority outcomes
//     (the exit).  Mispredicted once per trip by a counter, learnable
//     by history predictors whose reach covers the trip count.
//   - history: predictable from local outcome history (the profiler
//     runs a reference local-history predictor per site to measure
//     this), but without loop structure — alternation, short patterns.
//   - hard: data-dependent direction that even the reference history
//     predictor cannot learn; near the site's minority rate is the
//     floor any real predictor can reach.
//
// The taxonomy follows the characterization methodology of the branch
// studies the paper builds on: attributing the machine-wide mispredict
// rate to a handful of hot static branches is what turns "the predictor
// misses 9% of the time" into "the inner-loop data compare at PC 61 is
// unpredictable; everything else is noise".
package bprof

import (
	"sort"
	"strconv"

	"bioperf5/internal/telemetry"
)

// Class is one predictability bucket of the taxonomy.
type Class string

// The taxonomy, ordered from most to least predictable.  Unconditional
// sites carry no direction to predict — they appear in profiles only
// through their BTAC lookups.
const (
	ClassBiased        Class = "biased"
	ClassLoopExit      Class = "loop-exit"
	ClassHistory       Class = "history"
	ClassHard          Class = "hard"
	ClassUnconditional Class = "unconditional"
)

// Classes lists every taxonomy bucket in display order.
func Classes() []Class {
	return []Class{ClassBiased, ClassLoopExit, ClassHistory, ClassHard, ClassUnconditional}
}

// Reference local-history predictor geometry: 8 bits of per-site
// history indexing 256 two-bit counters per site.  Small enough to run
// per static branch, long enough to learn trip counts to 256.
const (
	refHistBits = 8
	refTable    = 1 << refHistBits
)

// runStat tracks min/max completed run lengths of one outcome.
type runStat struct {
	min, max uint64
	runs     uint64
}

func (r *runStat) note(length uint64) {
	if r.runs == 0 || length < r.min {
		r.min = length
	}
	if length > r.max {
		r.max = length
	}
	r.runs++
}

func (r *runStat) merge(o runStat) {
	if o.runs == 0 {
		return
	}
	if r.runs == 0 {
		*r = o
		return
	}
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.runs += o.runs
}

// site is the per-static-branch accumulator.
type site struct {
	executed    uint64
	taken       uint64
	mispredicts uint64 // live direction predictor, from the timing model

	btacLookups  uint64
	btacPredicts uint64
	btacWrong    uint64

	transitions uint64 // direction flips between consecutive executions
	refMisses   uint64 // reference local-history predictor misses

	// Run-length structure for loop-exit detection.  The current run is
	// open; only completed runs feed the stats.
	curTaken bool
	curLen   uint64
	started  bool
	runT     runStat // completed runs of taken outcomes
	runN     runStat // completed runs of not-taken outcomes

	// Reference predictor state: per-site local history indexing
	// two-bit counters (initialized weakly not-taken, like the model's).
	refHist uint8
	refCtr  [refTable]uint8
}

func (s *site) onOutcome(taken, mispredicted bool) {
	s.executed++
	if taken {
		s.taken++
	}
	if mispredicted {
		s.mispredicts++
	}

	// Reference local-history predictor (measurement only — the real
	// predictor's verdict arrives in `mispredicted`).
	ctr := &s.refCtr[s.refHist]
	if (*ctr >= 2) != taken {
		s.refMisses++
	}
	if taken {
		if *ctr < 3 {
			*ctr++
		}
	} else if *ctr > 0 {
		*ctr--
	}
	s.refHist <<= 1
	if taken {
		s.refHist |= 1
	}

	// Run-length bookkeeping.
	if !s.started {
		s.started, s.curTaken, s.curLen = true, taken, 1
		return
	}
	if taken == s.curTaken {
		s.curLen++
		return
	}
	s.transitions++
	if s.curTaken {
		s.runT.note(s.curLen)
	} else {
		s.runN.note(s.curLen)
	}
	s.curTaken, s.curLen = taken, 1
}

// Branch is the exported per-site profile row.
type Branch struct {
	PC          int    `json:"pc"`
	Executed    uint64 `json:"executed"`
	Taken       uint64 `json:"taken"`
	Mispredicts uint64 `json:"mispredicts"`

	BTACLookups  uint64 `json:"btac_lookups,omitempty"`
	BTACPredicts uint64 `json:"btac_predicts,omitempty"`
	BTACWrong    uint64 `json:"btac_wrong,omitempty"`

	Transitions uint64 `json:"transitions"`
	RefMisses   uint64 `json:"ref_misses"`
	Class       Class  `json:"class"`
}

// MispredictRate is the live predictor's miss rate at this site.
func (b Branch) MispredictRate() float64 {
	if b.Executed == 0 {
		return 0
	}
	return float64(b.Mispredicts) / float64(b.Executed)
}

// TakenRate is the fraction of executions that were taken.
func (b Branch) TakenRate() float64 {
	if b.Executed == 0 {
		return 0
	}
	return float64(b.Taken) / float64(b.Executed)
}

// BTACWrongRate is wrong targets per BTAC prediction at this site —
// the per-static-branch resolution of Counters.BTACMispredictRate.
func (b Branch) BTACWrongRate() float64 {
	if b.BTACPredicts == 0 {
		return 0
	}
	return float64(b.BTACWrong) / float64(b.BTACPredicts)
}

// Classification thresholds.  They are heuristics over exact counts:
// biased means the minority direction is under 5% of executions;
// loop-exit demands the regular run structure of a trip count; history
// means the reference local predictor misses under 5%.
const (
	biasedMinorityMax = 0.05
	historyMissMax    = 0.05
)

// classify derives the taxonomy bucket from the accumulated structure.
func (s *site) classify() Class {
	if s.executed == 0 {
		// Never resolved as a conditional branch: a BTAC-only site
		// (unconditional call/jump).
		return ClassUnconditional
	}
	minority := s.taken
	minorityRuns, majorityRuns := s.runT, s.runN
	if s.taken*2 > s.executed {
		minority = s.executed - s.taken
		minorityRuns, majorityRuns = s.runN, s.runT
	}
	minorityFrac := float64(minority) / float64(s.executed)

	// Loop-exit: every minority outcome is isolated (runs of length 1)
	// and the majority runs have a constant trip length of at least 2.
	// Checked before biased so a long-trip loop (minority well under 5%)
	// still reads as loop structure.
	if minorityRuns.runs >= 2 && minorityRuns.min == 1 && minorityRuns.max == 1 &&
		majorityRuns.runs >= 2 && majorityRuns.min >= 2 &&
		majorityRuns.max-majorityRuns.min <= 1 {
		return ClassLoopExit
	}
	if minorityFrac <= biasedMinorityMax {
		return ClassBiased
	}
	if float64(s.refMisses)/float64(s.executed) <= historyMissMax {
		return ClassHistory
	}
	return ClassHard
}

// Profile accumulates per-static-branch statistics for one or more
// runs.  It implements cpu.BranchProfiler.  Not safe for concurrent
// use; profile one run per Profile and Merge.
type Profile struct {
	sites map[int]*site
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{sites: make(map[int]*site)}
}

func (p *Profile) site(pc int) *site {
	s, ok := p.sites[pc]
	if !ok {
		s = &site{}
		p.sites[pc] = s
	}
	return s
}

// OnCondBranch implements cpu.BranchProfiler.
func (p *Profile) OnCondBranch(pc int, taken, mispredicted bool) {
	p.site(pc).onOutcome(taken, mispredicted)
}

// OnBTAC implements cpu.BranchProfiler.
func (p *Profile) OnBTAC(pc int, predicted, wrong bool) {
	s := p.site(pc)
	s.btacLookups++
	if predicted {
		s.btacPredicts++
	}
	if wrong {
		s.btacWrong++
	}
}

// Merge folds another profile's counts into p, site by site.  Run
// structure merges conservatively (min of mins, max of maxes), so a
// branch that is loop-regular in every merged run stays loop-regular.
func (p *Profile) Merge(o *Profile) {
	for pc, os := range o.sites {
		s := p.site(pc)
		s.executed += os.executed
		s.taken += os.taken
		s.mispredicts += os.mispredicts
		s.btacLookups += os.btacLookups
		s.btacPredicts += os.btacPredicts
		s.btacWrong += os.btacWrong
		s.transitions += os.transitions
		s.refMisses += os.refMisses
		s.runT.merge(os.runT)
		s.runN.merge(os.runN)
	}
}

// Branches returns the profile rows sorted by descending mispredicts
// (then ascending PC): the attribution order a report wants.
func (p *Profile) Branches() []Branch {
	out := make([]Branch, 0, len(p.sites))
	for pc, s := range p.sites {
		out = append(out, Branch{
			PC:           pc,
			Executed:     s.executed,
			Taken:        s.taken,
			Mispredicts:  s.mispredicts,
			BTACLookups:  s.btacLookups,
			BTACPredicts: s.btacPredicts,
			BTACWrong:    s.btacWrong,
			Transitions:  s.transitions,
			RefMisses:    s.refMisses,
			Class:        s.classify(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mispredicts != out[j].Mispredicts {
			return out[i].Mispredicts > out[j].Mispredicts
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// Totals sums the per-site counters.  By construction the mispredict
// total equals the model's Counters.DirMispredicts and the wrong-target
// total equals Counters.TgtMispredicts for the profiled run — the
// invariant the branches report asserts.
func (p *Profile) Totals() (executed, mispredicts, btacWrong uint64) {
	for _, s := range p.sites {
		executed += s.executed
		mispredicts += s.mispredicts
		btacWrong += s.btacWrong
	}
	return
}

// PublishTo mirrors the profile into a telemetry registry: the number
// of profiled sites, per-class site counts, and mispredict attribution
// per PC and per class under the branch.profile.* namespace.  Labeled
// counters are monotone, so republishing sets them to the current
// totals via deltas.
func (p *Profile) PublishTo(reg *telemetry.Registry) {
	reg.Gauge("branch.profile.branches").Set(float64(len(p.sites)))
	sites := map[Class]uint64{}
	misses := map[Class]uint64{}
	byPC := reg.Labeled("branch.profile.mispredicts.pc")
	for _, b := range p.Branches() {
		sites[b.Class]++
		misses[b.Class] += b.Mispredicts
		if b.Mispredicts > 0 {
			label := strconv.Itoa(b.PC)
			if have := byPC.Value(label); b.Mispredicts > have {
				byPC.Add(label, b.Mispredicts-have)
			}
		}
	}
	byClass := reg.Labeled("branch.profile.mispredicts.class")
	for _, cl := range Classes() {
		reg.Gauge("branch.profile.class." + string(cl)).Set(float64(sites[cl]))
		if have := byClass.Value(string(cl)); misses[cl] > have {
			byClass.Add(string(cl), misses[cl]-have)
		}
	}
}
