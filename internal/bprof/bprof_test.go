package bprof

import (
	"testing"

	"bioperf5/internal/branch"
	"bioperf5/internal/telemetry"
)

// feed drives a microbench kernel through a profile at a fixed PC,
// scoring mispredicts with a live predictor exactly as the timing
// model does.
func feed(p *Profile, spec string, mb branch.Microbench, n int) {
	pred, err := branch.FromSpec(spec)
	if err != nil {
		panic(err)
	}
	mb.Gen(n, func(ev branch.BranchEvent) {
		predTaken := pred.Predict(ev.PC)
		pred.Update(ev.PC, ev.Taken)
		p.OnCondBranch(ev.PC, ev.Taken, predTaken != ev.Taken)
	})
}

// TestTaxonomyGolden classifies each conformance kernel into the bucket
// its construction demands.
func TestTaxonomyGolden(t *testing.T) {
	cases := []struct {
		mb   branch.Microbench
		want Class
	}{
		{branch.AlwaysTaken(), ClassBiased},
		{branch.Biased(64, 7), ClassBiased},
		{branch.Loop(8), ClassLoopExit},
		{branch.Loop(32), ClassLoopExit},
		{branch.HistoryProbe(16), ClassLoopExit}, // a period is a trip count
		{branch.Alternating(), ClassHistory},
		{branch.Random(12345), ClassHard},
	}
	for _, c := range cases {
		p := New()
		feed(p, "tournament", c.mb, 4096)
		bs := p.Branches()
		if len(bs) != 1 {
			t.Fatalf("%s: %d sites, want 1", c.mb.Name, len(bs))
		}
		if bs[0].Class != c.want {
			t.Errorf("%s: classified %s, want %s (taken %d/%d, transitions %d, ref misses %d)",
				c.mb.Name, bs[0].Class, c.want, bs[0].Taken, bs[0].Executed,
				bs[0].Transitions, bs[0].RefMisses)
		}
	}
}

// TestTotalsMatchFeed pins the attribution invariant: per-site counts
// sum to exactly what was fed in.
func TestTotalsMatchFeed(t *testing.T) {
	p := New()
	feed(p, "bimodal", branch.Loop(8), 4000)
	exec, miss, _ := p.Totals()
	if exec != 4000 {
		t.Fatalf("executed %d, want 4000", exec)
	}
	// A warm bimodal on Loop(8) misses the exit once per trip; the exact
	// total is checked loosely here (cold-start transient included) and
	// exactly against the model counters in the harness tests.
	if miss == 0 || miss > 4000/8+4 {
		t.Fatalf("mispredicts %d outside the one-per-trip envelope", miss)
	}
}

// TestMergeAddsCounts: merging per-seed profiles preserves totals and
// classification.
func TestMergeAddsCounts(t *testing.T) {
	a, b := New(), New()
	feed(a, "tournament", branch.Loop(8), 2000)
	feed(b, "tournament", branch.Loop(8), 3000)
	a.Merge(b)
	exec, _, _ := a.Totals()
	if exec != 5000 {
		t.Fatalf("merged executed %d, want 5000", exec)
	}
	bs := a.Branches()
	if len(bs) != 1 || bs[0].Class != ClassLoopExit {
		t.Fatalf("merged profile = %+v, want one loop-exit site", bs)
	}
}

// TestBTACAttribution: BTAC lookups attribute wrong targets per site.
func TestBTACAttribution(t *testing.T) {
	p := New()
	p.OnBTAC(10, true, false)
	p.OnBTAC(10, true, true)
	p.OnBTAC(10, false, false)
	p.OnBTAC(20, true, false)
	_, _, wrong := p.Totals()
	if wrong != 1 {
		t.Fatalf("btac wrong total %d, want 1", wrong)
	}
	for _, b := range p.Branches() {
		if b.PC == 10 {
			if b.BTACLookups != 3 || b.BTACPredicts != 2 || b.BTACWrong != 1 {
				t.Fatalf("site 10 = %+v", b)
			}
			if got := b.BTACWrongRate(); got != 0.5 {
				t.Fatalf("site 10 wrong rate %f, want 0.5", got)
			}
		}
	}
}

// TestPublishTo: the branch.profile.* telemetry rows reflect the
// profile and republishing does not double-count.
func TestPublishTo(t *testing.T) {
	p := New()
	feed(p, "bimodal", branch.Random(3), 1000)
	reg := telemetry.NewRegistry()
	p.PublishTo(reg)
	p.PublishTo(reg) // idempotent republish
	_, miss, _ := p.Totals()
	byPC := reg.Labeled("branch.profile.mispredicts.pc")
	if got := byPC.Value("16"); got != miss {
		t.Fatalf("branch.profile.mispredicts.pc[16] = %d, want %d", got, miss)
	}
	byClass := reg.Labeled("branch.profile.mispredicts.class")
	var sum uint64
	for _, cl := range Classes() {
		sum += byClass.Value(string(cl))
	}
	if sum != miss {
		t.Fatalf("per-class mispredicts sum %d, want %d", sum, miss)
	}
}
