package server

import (
	"net/http"

	"bioperf5/internal/buildinfo"
	"bioperf5/internal/harness"
)

// VersionInfo is the body of GET /v1/version: the wire-schema version
// every payload carries plus the binary's build identity.  The cluster
// coordinator handshakes on Schema before dispatching any work — a
// worker speaking a different schema would hash cells differently or
// serialize results incompatibly, and must be refused, not averaged
// in.
type VersionInfo struct {
	Schema    string `json:"schema"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// BuildVersion assembles the version report for this binary; the CLI
// `bioperf5 version` prints the same struct the server serves.
func BuildVersion() VersionInfo {
	bi := buildinfo.Read()
	return VersionInfo{
		Schema:    harness.SchemaVersion,
		Version:   bi.Version,
		GoVersion: bi.GoVersion,
		Revision:  bi.Revision,
		Modified:  bi.Modified,
	}
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, BuildVersion())
}
