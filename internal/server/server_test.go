package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bioperf5/internal/fault"
	"bioperf5/internal/harness"
	"bioperf5/internal/sched"
)

// hangInjector delays every simulation attempt by d, so tests can hold
// cells in flight long enough to exercise saturation, deadlines,
// coalescing and drain without stubbing the simulator.
type hangInjector struct{ d time.Duration }

func (h hangInjector) Decide(site fault.Site, hash string, attempt int) fault.Decision {
	if site == fault.SiteExecute {
		return fault.Decision{Kind: fault.Hang, Delay: h.d}
	}
	return fault.Decision{}
}

func newTestServer(t *testing.T, so sched.Options, o Options) (*Server, *sched.Engine) {
	t.Helper()
	eng := sched.New(so)
	t.Cleanup(eng.Close)
	o.Engine = eng
	return New(o), eng
}

func postCell(s *Server, body string, query string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", "/v1/cells"+query, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func get(s *Server, path string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

// waitInflight polls until n cells are admitted (the server gauge) or
// the deadline passes.
func waitInflight(t *testing.T, s *Server, n int) {
	t.Helper()
	g := s.Registry().Gauge("server.cells.inflight")
	deadline := time.Now().Add(5 * time.Second)
	for g.Value() < float64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d in-flight cells (at %v)", n, g.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCellHappyPath(t *testing.T) {
	s, eng := newTestServer(t, sched.Options{Workers: 2}, Options{})
	w := postCell(s, `{"app":"fasta","variant":"combo","fxus":4,"btac_entries":8,"seeds":[1]}`, "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var resp CellResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
	if resp.Schema != harness.SchemaVersion {
		t.Errorf("schema = %q, want %q", resp.Schema, harness.SchemaVersion)
	}
	// The request was canonicalized: case-folded app, alias-resolved
	// variant.
	if resp.App != "Fasta" || resp.Variant != "combination" {
		t.Errorf("canonical coordinates = %q/%q", resp.App, resp.Variant)
	}
	if resp.Key == "" || len(resp.Stats.Seeds) != 1 {
		t.Errorf("incomplete response: key=%q seeds=%d", resp.Key, len(resp.Stats.Seeds))
	}
	agg := resp.Stats.Aggregate
	if agg.Counters.Cycles == 0 || agg.Rates.IPC == 0 {
		t.Errorf("empty aggregate: %+v", agg)
	}
	if st := eng.Stats(); st.Computed != 1 {
		t.Errorf("engine computed %d jobs, want 1", st.Computed)
	}
}

func TestCellValidation(t *testing.T) {
	s, _ := newTestServer(t, sched.Options{Workers: 1}, Options{})
	cases := []struct {
		name, body, query string
	}{
		{"bad json", `{"app":`, ""},
		{"unknown field", `{"app":"Fasta","btac_entires":8}`, ""},
		{"missing app", `{"variant":"original"}`, ""},
		{"unknown app", `{"app":"Mummer"}`, ""},
		{"unknown variant", `{"app":"Fasta","variant":"turbo"}`, ""},
		{"fxus out of range", `{"app":"Fasta","fxus":99}`, ""},
		{"negative btac", `{"app":"Fasta","btac_entries":-1}`, ""},
		{"negative seed", `{"app":"Fasta","seeds":[-1]}`, ""},
		{"duplicate seed", `{"app":"Fasta","seeds":[3,3]}`, ""},
		{"scale out of range", `{"app":"Fasta","scale":1000}`, ""},
		{"bad timeout", `{"app":"Fasta"}`, "?timeout=banana"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postCell(s, tc.body, tc.query)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", w.Code, w.Body)
			}
			var er errorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Errorf("error body not JSON with an error message: %s", w.Body)
			}
		})
	}
}

func TestSaturationFastFails429(t *testing.T) {
	s, _ := newTestServer(t,
		sched.Options{Workers: 1, Injector: hangInjector{500 * time.Millisecond}},
		Options{MaxInflight: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if w := postCell(s, `{"app":"Fasta"}`, ""); w.Code != http.StatusOK {
			t.Errorf("in-flight request: status %d, body %s", w.Code, w.Body)
		}
	}()
	waitInflight(t, s, 1)
	w := postCell(s, `{"app":"Hmmer"}`, "")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", w.Code, w.Body)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	wg.Wait()
	if v := s.Registry().Counter("server.requests.saturated").Value(); v != 1 {
		t.Errorf("server.requests.saturated = %d, want 1", v)
	}
}

func TestDeadlineExpiry504(t *testing.T) {
	s, _ := newTestServer(t,
		sched.Options{Workers: 1, Injector: hangInjector{10 * time.Second}},
		Options{})
	start := time.Now()
	w := postCell(s, `{"app":"Fasta"}`, "?timeout=100ms")
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", w.Code, w.Body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("504 took %v; the deadline did not cancel the cell", elapsed)
	}
}

// TestCoalescingConcurrentRequests is the acceptance criterion: two
// identical concurrent requests produce exactly one engine job, the
// second riding the first's in-flight future, asserted via the sched.*
// counters.
func TestCoalescingConcurrentRequests(t *testing.T) {
	s, eng := newTestServer(t,
		sched.Options{Workers: 2, Injector: hangInjector{300 * time.Millisecond}},
		Options{MaxInflight: 4})
	const body = `{"app":"Fasta","variant":"original","seeds":[1]}`
	var wg sync.WaitGroup
	codes := make([]int, 2)
	coalesced := make([]int, 2)
	launch := func(i int) {
		defer wg.Done()
		w := postCell(s, body, "")
		codes[i] = w.Code
		var resp CellResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err == nil {
			coalesced[i] = resp.Coalesced
		}
	}
	wg.Add(2)
	go launch(0)
	waitInflight(t, s, 1)
	go launch(1)
	wg.Wait()
	if codes[0] != http.StatusOK || codes[1] != http.StatusOK {
		t.Fatalf("statuses = %v, want both 200", codes)
	}
	st := eng.Stats()
	if st.Submitted != 2 || st.Computed != 1 || st.MemoryHits != 1 {
		t.Errorf("sched counters: submitted=%d computed=%d memory_hits=%d, want 2/1/1",
			st.Submitted, st.Computed, st.MemoryHits)
	}
	if total := coalesced[0] + coalesced[1]; total != 1 {
		t.Errorf("coalesced fields sum to %d, want 1 (%v)", total, coalesced)
	}
	if v := s.Registry().Counter("server.cells.coalesced").Value(); v != 1 {
		t.Errorf("server.cells.coalesced = %d, want 1", v)
	}
}

func TestGracefulDrain(t *testing.T) {
	s, _ := newTestServer(t,
		sched.Options{Workers: 1, Injector: hangInjector{400 * time.Millisecond}},
		Options{MaxInflight: 2})
	done := make(chan int, 1)
	go func() {
		w := postCell(s, `{"app":"Fasta"}`, "")
		done <- w.Code
	}()
	waitInflight(t, s, 1)

	s.StartDrain()
	if w := get(s, "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining: %d, want 503", w.Code)
	}
	if w := get(s, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("/healthz while draining: %d, want 200", w.Code)
	}
	w := postCell(s, `{"app":"Hmmer"}`, "")
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("new request while draining: %d, want 503 (body %s)", w.Code, w.Body)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Error("503 during drain without Retry-After header")
	}
	// The cell admitted before the drain started must finish normally.
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Errorf("in-flight request finished with %d, want 200", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed during drain")
	}
}

// TestExperimentByteIdentity is the other acceptance criterion: the
// served experiment bytes equal the harness JSON for the same config —
// the exact output `bioperf5 run fig3 -json` prints.
func TestExperimentByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s, _ := newTestServer(t, sched.Options{}, Options{})
	w := get(s, "/v1/experiments/fig3?seeds=1")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	e, err := harness.ByID("fig3")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := harness.RunReport(e, harness.Config{Scale: 1, Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := rep.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Body.Bytes(), want.Bytes()) {
		t.Errorf("served fig3 differs from local harness output:\nserved %d bytes, local %d bytes",
			w.Body.Len(), want.Len())
	}
	if !strings.Contains(w.Body.String(), `"schema": "`+harness.SchemaVersion+`"`) {
		t.Error("served report carries no schema field")
	}
	// Short alias and unknown id behave like the CLI.
	if w := get(s, "/v1/experiments/nope"); w.Code != http.StatusNotFound {
		t.Errorf("unknown experiment: %d, want 404", w.Code)
	}
	if w := get(s, "/v1/experiments/fig3?seeds=1,1"); w.Code != http.StatusBadRequest {
		t.Errorf("duplicate query seeds: %d, want 400", w.Code)
	}
}

func TestBatchStreamsJSONL(t *testing.T) {
	s, eng := newTestServer(t, sched.Options{Workers: 2}, Options{})
	body := `{"cells":[
		{"app":"Fasta","seeds":[1]},
		{"app":"Fasta","seeds":[1]},
		{"app":"Hmmer","variant":"combo","seeds":[1]}
	]}`
	req := httptest.NewRequest("POST", "/v1/cells:batch", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d JSONL lines, want 3:\n%s", len(lines), w.Body)
	}
	seen := make(map[int]bool)
	for _, line := range lines {
		var item BatchItem
		if err := json.Unmarshal([]byte(line), &item); err != nil {
			t.Fatalf("line not JSON: %v\n%s", err, line)
		}
		if item.Status != "ok" || item.Result == nil {
			t.Errorf("cell %d: status=%q error=%q", item.Index, item.Status, item.Error)
		}
		seen[item.Index] = true
	}
	if len(seen) != 3 {
		t.Errorf("indices %v do not cover the batch", seen)
	}
	// Cells 0 and 1 are identical: one simulation, one coalesced hit.
	if st := eng.Stats(); st.Computed != 2 {
		t.Errorf("engine computed %d jobs, want 2 (identical cells coalesce)", st.Computed)
	}
}

func TestBatchValidation(t *testing.T) {
	s, _ := newTestServer(t, sched.Options{Workers: 1}, Options{MaxBatch: 2})
	for name, body := range map[string]string{
		"empty":         `{"cells":[]}`,
		"bad cell":      `{"cells":[{"app":"Nope"}]}`,
		"over maxbatch": `{"cells":[{"app":"Fasta"},{"app":"Hmmer"},{"app":"Blast"}]}`,
	} {
		t.Run(name, func(t *testing.T) {
			req := httptest.NewRequest("POST", "/v1/cells:batch", strings.NewReader(body))
			w := httptest.NewRecorder()
			s.ServeHTTP(w, req)
			if w.Code != http.StatusBadRequest {
				t.Errorf("status = %d, want 400 (body %s)", w.Code, w.Body)
			}
		})
	}
}

func TestBatchSaturation(t *testing.T) {
	s, _ := newTestServer(t,
		sched.Options{Workers: 1, Injector: hangInjector{500 * time.Millisecond}},
		Options{MaxInflight: 2})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postCell(s, `{"app":"Fasta"}`, "")
	}()
	waitInflight(t, s, 1)
	// Two-cell batch wants 2 tokens; only 1 remains -> all-or-nothing 429.
	req := httptest.NewRequest("POST", "/v1/cells:batch",
		strings.NewReader(`{"cells":[{"app":"Hmmer"},{"app":"Blast"}]}`))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429 (body %s)", w.Code, w.Body)
	}
	wg.Wait()
	// The failed batch must have returned its partial tokens.
	if g := s.Registry().Gauge("server.cells.inflight"); g.Value() != 0 {
		t.Errorf("inflight gauge = %v after everything finished, want 0", g.Value())
	}
}

func TestHealthzReadyzMetrics(t *testing.T) {
	s, _ := newTestServer(t, sched.Options{Workers: 1}, Options{})
	if w := get(s, "/healthz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Errorf("/healthz: %d %q", w.Code, w.Body)
	}
	if w := get(s, "/readyz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ready") {
		t.Errorf("/readyz: %d %q", w.Code, w.Body)
	}
	if w := postCell(s, `{"app":"Fasta","seeds":[1]}`, ""); w.Code != http.StatusOK {
		t.Fatalf("cell: %d %s", w.Code, w.Body)
	}
	w := get(s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE server_requests counter",
		"# TYPE server_cells_inflight gauge",
		"# TYPE server_request_latency_us histogram",
		"server_request_latency_us_bucket{le=\"+Inf\"}",
		"sched_jobs_computed 1",
		"server_cells_admitted 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s, _ := newTestServer(t, sched.Options{Workers: 1}, Options{})
	w := get(s, "/v1/cells")
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/cells: %d, want 405", w.Code)
	}
}

// TestRequestContextDefaults pins the ?timeout= parsing contract.
func TestRequestContextDefaults(t *testing.T) {
	s, _ := newTestServer(t, sched.Options{Workers: 1},
		Options{DefaultTimeout: time.Minute})
	r := httptest.NewRequest("GET", "/v1/experiments/fig1", nil)
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Error("DefaultTimeout set but context has no deadline")
	}
	r = httptest.NewRequest("GET", "/v1/experiments/fig1?timeout=-3s", nil)
	if _, _, err := s.requestContext(r); err == nil {
		t.Error("negative timeout accepted")
	}
}
