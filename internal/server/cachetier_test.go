package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bioperf5/internal/cpu"
	"bioperf5/internal/harness"
	"bioperf5/internal/kernels"
	"bioperf5/internal/sched"
	"bioperf5/internal/trace"
)

func put(s *Server, path string, body []byte) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("PUT", path, bytes.NewReader(body)))
	return w
}

func TestVersionEndpoint(t *testing.T) {
	s, _ := newTestServer(t, sched.Options{Workers: 1}, Options{})
	w := get(s, "/v1/version")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var v VersionInfo
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.Schema != harness.SchemaVersion {
		t.Errorf("schema = %q, want %q", v.Schema, harness.SchemaVersion)
	}
	if v.Version == "" {
		t.Error("version is empty")
	}
}

func TestCacheEndpointRoundTrip(t *testing.T) {
	// A real worker engine computes one job and holds its verified
	// entry; the hub server accepts that entry and serves it back
	// byte-for-byte.
	worker := sched.New(sched.Options{Workers: 1, CacheDir: t.TempDir()})
	t.Cleanup(worker.Close)
	job := sched.Job{App: "Clustalw", Variant: kernels.Branchy, CPU: cpu.POWER5Baseline(), Seed: 1, Scale: 1}
	if _, err := worker.Run(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	entry, ok := worker.CacheEntry(job.Hash())
	if !ok {
		t.Fatal("worker holds no cache entry after a run")
	}

	hub, _ := newTestServer(t, sched.Options{Workers: 1, CacheDir: t.TempDir()}, Options{})
	if w := get(hub, "/v1/cache/"+job.Hash()); w.Code != http.StatusNotFound {
		t.Fatalf("cold hub GET = %d, want 404", w.Code)
	}
	if w := put(hub, "/v1/cache/"+job.Hash(), entry); w.Code != http.StatusNoContent {
		t.Fatalf("PUT = %d, body %s", w.Code, w.Body)
	}
	w := get(hub, "/v1/cache/"+job.Hash())
	if w.Code != http.StatusOK {
		t.Fatalf("warm hub GET = %d, body %s", w.Code, w.Body)
	}
	if !bytes.Equal(w.Body.Bytes(), entry) {
		t.Error("hub returned different bytes than it was given")
	}
	reg := hub.Registry()
	if reg.Counter("server.cache.puts").Value() != 1 || reg.Counter("server.cache.hits").Value() != 1 ||
		reg.Counter("server.cache.misses").Value() != 1 {
		t.Errorf("cache counters: puts=%v hits=%v misses=%v",
			reg.Counter("server.cache.puts").Value(),
			reg.Counter("server.cache.hits").Value(),
			reg.Counter("server.cache.misses").Value())
	}
}

func TestCacheEndpointValidation(t *testing.T) {
	hub, _ := newTestServer(t, sched.Options{Workers: 1, CacheDir: t.TempDir()}, Options{})
	if w := get(hub, "/v1/cache/not-a-hash"); w.Code != http.StatusBadRequest {
		t.Errorf("bad key GET = %d, want 400", w.Code)
	}
	zeros := strings.Repeat("0", 64)
	if w := put(hub, "/v1/cache/"+zeros, []byte("garbage")); w.Code != http.StatusBadRequest {
		t.Errorf("garbage PUT = %d, want 400", w.Code)
	}
}

func TestCachePutDisklessHubRefuses(t *testing.T) {
	hub, _ := newTestServer(t, sched.Options{Workers: 1}, Options{}) // no CacheDir
	w := put(hub, "/v1/cache/"+strings.Repeat("0", 64), []byte("{}"))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("diskless PUT = %d, want 503 (body %s)", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "-cache-dir") {
		t.Errorf("error should tell the operator the fix: %s", w.Body)
	}
}

func TestTraceEndpointRoundTrip(t *testing.T) {
	var b trace.Builder
	for pc := 0; pc < 64; pc++ {
		b.Add(trace.Record{PC: pc, HasEA: true, EA: uint64(pc * 64)})
	}
	tr := b.Finish(trace.Meta{App: "Fasta", Variant: "original", Seed: 1, Scale: 1,
		ProgHash: "abc"})
	body, err := tr.EncodeFile()
	if err != nil {
		t.Fatal(err)
	}
	hash := trace.KeyFromMeta(tr.Meta).Hash()

	hub, _ := newTestServer(t, sched.Options{Workers: 1}, Options{})
	if w := get(hub, "/v1/traces/"+hash); w.Code != http.StatusNotFound {
		t.Fatalf("cold GET = %d, want 404", w.Code)
	}
	if w := get(hub, "/v1/traces/nope"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad key GET = %d, want 400", w.Code)
	}
	// A trace parked at the wrong address is refused.
	if w := put(hub, "/v1/traces/"+strings.Repeat("a", 64), body); w.Code != http.StatusBadRequest {
		t.Fatalf("wrong-address PUT = %d, want 400", w.Code)
	}
	if w := put(hub, "/v1/traces/"+hash, body); w.Code != http.StatusNoContent {
		t.Fatalf("PUT = %d, body %s", w.Code, w.Body)
	}
	w := get(hub, "/v1/traces/"+hash)
	if w.Code != http.StatusOK {
		t.Fatalf("warm GET = %d", w.Code)
	}
	if !bytes.Equal(w.Body.Bytes(), body) {
		t.Error("hub returned different trace bytes than it was given")
	}
	reg := hub.Registry()
	if reg.Counter("server.traces.puts").Value() != 1 || reg.Counter("server.traces.hits").Value() != 1 {
		t.Errorf("trace counters: puts=%v hits=%v",
			reg.Counter("server.traces.puts").Value(),
			reg.Counter("server.traces.hits").Value())
	}
}
