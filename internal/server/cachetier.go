package server

import (
	"io"
	"net/http"
)

// Shared cache tier: GET/PUT /v1/cache/{key} for content-addressed
// simulation results and GET/PUT /v1/traces/{key} for captured
// instruction traces.  A server with these endpoints is a cache hub a
// fleet of workers shares (via sched.Options.CacheUpstream), so one
// node's compute or capture is every node's hit.
//
// The endpoints are deliberately dumb: opaque verified blobs addressed
// by content hash.  All verification is done by the stores themselves
// — an uploaded entry must parse, checksum clean, and hash back to the
// address it claims — so a confused or malicious client can waste a
// PUT but never poison a result.

// maxTraceBodyBytes bounds an uploaded trace file (result entries use
// the tighter maxBodyBytes).  Scale-1 kernel traces are tens of
// kilobytes; this leaves room for large-scale grids without letting a
// client exhaust memory.
const maxTraceBodyBytes = 64 << 20

// cacheKeyOK sanity-checks a content address: hex SHA-256, nothing
// else, so a key can never traverse paths or address a foreign file.
func cacheKeyOK(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !cacheKeyOK(key) {
		s.errorJSON(w, http.StatusBadRequest, "bad cache key %q: want a hex SHA-256", key)
		return
	}
	b, ok := s.eng.CacheEntry(key)
	if !ok {
		s.mCacheMisses.Add(1)
		s.errorJSON(w, http.StatusNotFound, "no cache entry for %s", key)
		return
	}
	s.mCacheHits.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !cacheKeyOK(key) {
		s.errorJSON(w, http.StatusBadRequest, "bad cache key %q: want a hex SHA-256", key)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		s.errorJSON(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if err := s.eng.InstallCacheEntry(key, body); err != nil {
		// No disk tier means this server cannot act as a durable hub;
		// a verification failure is the client's fault.
		status := http.StatusBadRequest
		if err.Error() == "sched: no cache directory configured" {
			status = http.StatusServiceUnavailable
		}
		s.errorJSON(w, status, "%v (start the hub with -cache-dir)", err)
		return
	}
	s.mCachePuts.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !cacheKeyOK(key) {
		s.errorJSON(w, http.StatusBadRequest, "bad trace key %q: want a hex SHA-256", key)
		return
	}
	b, ok := s.eng.TraceStore().Entry(key)
	if !ok {
		s.mTraceMisses.Add(1)
		s.errorJSON(w, http.StatusNotFound, "no trace for %s", key)
		return
	}
	s.mTraceHits.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(b)
}

func (s *Server) handleTracePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !cacheKeyOK(key) {
		s.errorJSON(w, http.StatusBadRequest, "bad trace key %q: want a hex SHA-256", key)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxTraceBodyBytes))
	if err != nil {
		s.errorJSON(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if err := s.eng.TraceStore().Install(key, body); err != nil {
		s.errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mTracePuts.Add(1)
	w.WriteHeader(http.StatusNoContent)
}
