package server

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"bioperf5/internal/telemetry"
)

// writePrometheus renders a telemetry snapshot in the Prometheus text
// exposition format (version 0.0.4).  Metric families are emitted in
// sorted name order so scrapes diff cleanly; dot-separated registry
// names become underscore-separated Prometheus names ("sched.jobs
// .computed" -> "sched_jobs_computed").  Histograms are translated
// from the registry's per-bucket counts to Prometheus' cumulative
// _bucket/_sum/_count convention; labeled counters become one series
// per label value.
func writePrometheus(w io.Writer, snap telemetry.Snapshot) {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, snap.Counters[name])
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %v\n", n, n, snap.Gauges[name])
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		n := promName(name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, b.Le, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count)
	}

	names = names[:0]
	for name := range snap.Labeled {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n", n)
		for _, lc := range snap.Labeled[name] {
			fmt.Fprintf(w, "%s{label=%q} %d\n", n, promLabel(lc.Label), lc.Count)
		}
	}
}

// promName maps a registry metric name onto the Prometheus grammar:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the exposition format (the %q
// verb already escapes backslashes and quotes; newlines become \n
// through the same path, so this is just a normalization pass for
// non-printable input).
func promLabel(v string) string {
	return strings.ToValidUTF8(v, "_")
}
