package server

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"bioperf5/internal/telemetry"
)

// writePrometheus renders a telemetry snapshot in the Prometheus text
// exposition format (version 0.0.4).  Metric families are emitted in
// sorted name order so scrapes diff cleanly; dot-separated registry
// names become underscore-separated Prometheus names ("sched.jobs
// .computed" -> "sched_jobs_computed") with a # HELP line carrying the
// original dotted name, so a dashboard author can find the metric in
// the registry.  Histograms are translated from the registry's
// per-bucket counts to Prometheus' cumulative _bucket/_sum/_count
// convention; labeled counters become one series per label value.
func writePrometheus(w io.Writer, snap telemetry.Snapshot) {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		promHeader(w, n, name, "counter")
		fmt.Fprintf(w, "%s %d\n", n, snap.Counters[name])
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		promHeader(w, n, name, "gauge")
		fmt.Fprintf(w, "%s %v\n", n, snap.Gauges[name])
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		n := promName(name)
		promHeader(w, n, name, "histogram")
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, b.Le, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count)
	}

	names = names[:0]
	for name := range snap.Labeled {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		promHeader(w, n, name, "counter")
		for _, lc := range snap.Labeled[name] {
			fmt.Fprintf(w, "%s{label=\"%s\"} %d\n", n, promLabel(lc.Label), lc.Count)
		}
	}
}

// promHeader writes the # HELP and # TYPE comment pair that opens a
// metric family.  The help text is the registry's dotted metric name —
// the stable identifier to grep for in this codebase.
func promHeader(w io.Writer, prom, registry, kind string) {
	fmt.Fprintf(w, "# HELP %s Registry metric %s.\n", prom, promHelp(registry))
	fmt.Fprintf(w, "# TYPE %s %s\n", prom, kind)
}

// promName maps a registry metric name onto the Prometheus grammar:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the exposition format: inside
// the double quotes of a label, backslash, the double quote itself,
// and line feeds must be escaped — and only those; every other byte is
// passed through raw.  %q is NOT equivalent: it escapes Go syntax
// (tabs, non-ASCII) that the exposition format wants verbatim, which
// corrupts label values containing, e.g., kernel names with UTF-8.
func promLabel(v string) string {
	v = strings.ToValidUTF8(v, "_")
	var b strings.Builder
	b.Grow(len(v))
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promHelp escapes help text: the exposition format requires \\ and
// \n escapes there (quotes are fine raw — help text is not quoted).
func promHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
