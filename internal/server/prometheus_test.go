package server

import (
	"strings"
	"testing"

	"bioperf5/internal/telemetry"
)

// TestWritePrometheusGolden pins the exposition format on a registry
// fixture: sorted families, sanitized names, cumulative histogram
// buckets with +Inf, labeled counters as one series per label.
func TestWritePrometheusGolden(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("sched.jobs.computed").Add(7)
	reg.Counter("server.requests").Add(3)
	reg.Gauge("server.cells.inflight").Set(2)
	h := reg.Histogram("server.request.latency_us", []uint64{10, 100, 1000})
	for _, v := range []uint64{5, 5, 50, 5000} {
		h.Observe(v)
	}
	reg.Labeled("profile.calls").Add("dp_loop", 11)

	var b strings.Builder
	writePrometheus(&b, reg.Snapshot(0))
	got := b.String()
	want := strings.Join([]string{
		"# TYPE sched_jobs_computed counter",
		"sched_jobs_computed 7",
		"# TYPE server_requests counter",
		"server_requests 3",
		"# TYPE server_cells_inflight gauge",
		"server_cells_inflight 2",
		"# TYPE server_request_latency_us histogram",
		`server_request_latency_us_bucket{le="10"} 2`,
		`server_request_latency_us_bucket{le="100"} 3`,
		`server_request_latency_us_bucket{le="+Inf"} 4`,
		"server_request_latency_us_sum 5060",
		"server_request_latency_us_count 4",
		"# TYPE profile_calls counter",
		`profile_calls{label="dp_loop"} 11`,
		"",
	}, "\n")
	if got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"sched.jobs.computed": "sched_jobs_computed",
		"cpu.rate.ipc":        "cpu_rate_ipc",
		"9lives":              "_lives",
		"a-b c":               "a_b_c",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
