package server

import (
	"strings"
	"testing"

	"bioperf5/internal/telemetry"
)

// TestWritePrometheusGolden pins the exposition format on a registry
// fixture: sorted families, sanitized names, cumulative histogram
// buckets with +Inf, labeled counters as one series per label.
func TestWritePrometheusGolden(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("sched.jobs.computed").Add(7)
	reg.Counter("server.requests").Add(3)
	reg.Gauge("server.cells.inflight").Set(2)
	h := reg.Histogram("server.request.latency_us", []uint64{10, 100, 1000})
	for _, v := range []uint64{5, 5, 50, 5000} {
		h.Observe(v)
	}
	reg.Labeled("profile.calls").Add("dp_loop", 11)

	var b strings.Builder
	writePrometheus(&b, reg.Snapshot(0))
	got := b.String()
	want := strings.Join([]string{
		"# HELP sched_jobs_computed Registry metric sched.jobs.computed.",
		"# TYPE sched_jobs_computed counter",
		"sched_jobs_computed 7",
		"# HELP server_requests Registry metric server.requests.",
		"# TYPE server_requests counter",
		"server_requests 3",
		"# HELP server_cells_inflight Registry metric server.cells.inflight.",
		"# TYPE server_cells_inflight gauge",
		"server_cells_inflight 2",
		"# HELP server_request_latency_us Registry metric server.request.latency_us.",
		"# TYPE server_request_latency_us histogram",
		`server_request_latency_us_bucket{le="10"} 2`,
		`server_request_latency_us_bucket{le="100"} 3`,
		`server_request_latency_us_bucket{le="+Inf"} 4`,
		"server_request_latency_us_sum 5060",
		"server_request_latency_us_count 4",
		"# HELP profile_calls Registry metric profile.calls.",
		"# TYPE profile_calls counter",
		`profile_calls{label="dp_loop"} 11`,
		"",
	}, "\n")
	if got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusHistogramEdges covers the degenerate histogram
// shapes: a registered histogram nobody observed must still expose a
// complete (all-zero) family, and observations landing entirely above
// the last bound must appear only in the +Inf bucket — with _count and
// _sum still accounting for them.
func TestWritePrometheusHistogramEdges(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		reg := telemetry.NewRegistry()
		reg.Histogram("idle.us", []uint64{10, 100})
		var b strings.Builder
		writePrometheus(&b, reg.Snapshot(0))
		want := strings.Join([]string{
			"# HELP idle_us Registry metric idle.us.",
			"# TYPE idle_us histogram",
			`idle_us_bucket{le="+Inf"} 0`,
			"idle_us_sum 0",
			"idle_us_count 0",
			"",
		}, "\n")
		if got := b.String(); got != want {
			t.Errorf("empty histogram exposition:\ngot:\n%s\nwant:\n%s", got, want)
		}
	})
	t.Run("overflow-only", func(t *testing.T) {
		reg := telemetry.NewRegistry()
		h := reg.Histogram("spike.us", []uint64{10, 100})
		h.Observe(1_000)
		h.Observe(2_000)
		var b strings.Builder
		writePrometheus(&b, reg.Snapshot(0))
		want := strings.Join([]string{
			"# HELP spike_us Registry metric spike.us.",
			"# TYPE spike_us histogram",
			`spike_us_bucket{le="+Inf"} 2`,
			"spike_us_sum 3000",
			"spike_us_count 2",
			"",
		}, "\n")
		if got := b.String(); got != want {
			t.Errorf("overflow-only histogram exposition:\ngot:\n%s\nwant:\n%s", got, want)
		}
	})
}

// TestWritePrometheusLabelEscaping pins the exposition-format escape
// rules for label values: backslash, double quote, and newline are
// escaped; everything else (tabs, UTF-8) passes through raw — %q-style
// Go escaping would corrupt both.
func TestWritePrometheusLabelEscaping(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Labeled("profile.calls").Add("say \"hi\"", 1)
	reg.Labeled("profile.calls").Add(`dir\file`, 2)
	reg.Labeled("profile.calls").Add("two\nlines", 3)
	reg.Labeled("profile.calls").Add("tab\tand-héllo", 4)

	var b strings.Builder
	writePrometheus(&b, reg.Snapshot(0))
	got := b.String()
	for _, want := range []string{
		`profile_calls{label="say \"hi\""} 1`,
		`profile_calls{label="dir\\file"} 2`,
		`profile_calls{label="two\nlines"} 3`,
		"profile_calls{label=\"tab\tand-héllo\"} 4",
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("missing series %q in:\n%s", want, got)
		}
	}
	if strings.Count(got, "\n\n") != 0 {
		t.Errorf("blank lines in exposition:\n%s", got)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"sched.jobs.computed": "sched_jobs_computed",
		"cpu.rate.ipc":        "cpu_rate_ipc",
		"9lives":              "_lives",
		"a-b c":               "a_b_c",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
