package server

import (
	"net/http/httptest"
	"testing"
	"time"

	"bioperf5/internal/sched"
)

// header drives retryAfter directly and returns the hint it sets.
func retryAfterHeader(s *Server) string {
	w := httptest.NewRecorder()
	s.retryAfter(w)
	return w.Header().Get("Retry-After")
}

func TestRetryAfterDerivedFromLoad(t *testing.T) {
	s, _ := newTestServer(t, sched.Options{Workers: 1},
		Options{MaxInflight: 4, RetryAfter: 2 * time.Second})

	// Idle server, no latency history: the configured floor.
	if got := retryAfterHeader(s); got != "2" {
		t.Errorf("idle hint = %q, want the 2s floor", got)
	}

	// Slow requests with full admission occupancy: the hint scales to
	// mean latency x occupancy = 10s x 1.0.
	s.hLatency.Observe(10_000_000) // 10s in microseconds
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	if got := retryAfterHeader(s); got != "10" {
		t.Errorf("loaded hint = %q, want 10", got)
	}

	// Pathological latency clamps at 60s — a confused server must not
	// park its clients for minutes.
	s.hLatency.Observe(1_000_000_000_000)
	if got := retryAfterHeader(s); got != "60" {
		t.Errorf("clamped hint = %q, want 60", got)
	}

	// Zero occupancy: even huge latency history means no queue, so the
	// hint falls back to the floor.
	for i := 0; i < cap(s.sem); i++ {
		<-s.sem
	}
	if got := retryAfterHeader(s); got != "2" {
		t.Errorf("drained hint = %q, want the floor again", got)
	}
}
