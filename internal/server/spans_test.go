package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bioperf5/internal/sched"
	"bioperf5/internal/telemetry"
)

// TestServerSpans wires a tracer into the server and asserts one
// request yields the full span hierarchy: the handler root, the
// admission decision beneath it, and the engine/simulation stages the
// cell passed through — all parented (directly or transitively) under
// the request span.
func TestServerSpans(t *testing.T) {
	tr := telemetry.NewTracer(0, nil)
	s, _ := newTestServer(t, sched.Options{Workers: 2}, Options{Tracer: tr})
	if w := postCell(s, `{"app":"fasta","seeds":[1]}`, ""); w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}

	spans := tr.Spans()
	byName := map[string][]telemetry.SpanData{}
	byID := map[uint64]telemetry.SpanData{}
	for _, d := range spans {
		byName[d.Name] = append(byName[d.Name], d)
		byID[d.ID] = d
	}
	for _, want := range []string{
		telemetry.StageRequest, telemetry.StageAdmission,
		telemetry.StageQueue, telemetry.StageExecute,
	} {
		if len(byName[want]) == 0 {
			t.Errorf("no %q span (have %d spans)", want, len(spans))
		}
	}
	if t.Failed() {
		return
	}
	req := byName[telemetry.StageRequest][0]
	if req.Parent != 0 {
		t.Errorf("request span has parent %d, want root", req.Parent)
	}
	// Every span in the trace must chain back to the request root.
	for _, d := range spans {
		cur := d
		for cur.Parent != 0 {
			next, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %q (%d) has dangling parent %d", d.Name, d.ID, cur.Parent)
			}
			cur = next
		}
		if cur.ID != req.ID {
			t.Errorf("span %q roots at %d, not the request span %d", d.Name, cur.ID, req.ID)
		}
	}
	if byName[telemetry.StageAdmission][0].Parent != req.ID {
		t.Error("admission span not a direct child of the request span")
	}
}

// TestServerSpansCostInResponse asserts the per-cell cost breakdown
// rides the API response: a cold cell reports a non-zero total whose
// stages are the ones the engine actually ran.
func TestServerSpansCostInResponse(t *testing.T) {
	s, _ := newTestServer(t, sched.Options{Workers: 2}, Options{})
	w := postCell(s, `{"app":"fasta","seeds":[1]}`, "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var resp CellResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cost.TotalNS <= 0 {
		t.Fatalf("cold cell reported no cost: %+v", resp.Cost)
	}
	if resp.Cost.CaptureNS == 0 && resp.Cost.SimNS == 0 {
		t.Errorf("cold cell attributed no simulation work: %+v", resp.Cost)
	}

	// The same cell again coalesces onto the memoized result: zero cost,
	// attributed once, to the first request.
	w = postCell(s, `{"app":"fasta","seeds":[1]}`, "")
	if w.Code != http.StatusOK {
		t.Fatalf("warm status = %d, body %s", w.Code, w.Body)
	}
	var warm CellResponse
	if err := json.Unmarshal(w.Body.Bytes(), &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cost.IsZero() {
		t.Errorf("memoized cell re-attributed cost: %+v", warm.Cost)
	}
}

// TestPprofGated asserts the pprof surface exists only when asked for:
// diagnostics endpoints must not leak into the default API.
func TestPprofGated(t *testing.T) {
	off, _ := newTestServer(t, sched.Options{Workers: 1}, Options{})
	if w := get(off, "/debug/pprof/"); w.Code != http.StatusNotFound {
		t.Errorf("pprof reachable without EnablePprof: %d", w.Code)
	}
	on, _ := newTestServer(t, sched.Options{Workers: 1}, Options{EnablePprof: true})
	w := get(on, "/debug/pprof/")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "goroutine") {
		t.Errorf("pprof index: status %d, body %.80s", w.Code, w.Body)
	}
	if w := get(on, "/debug/pprof/cmdline"); w.Code != http.StatusOK {
		t.Errorf("pprof cmdline: status %d", w.Code)
	}
}

// BenchmarkServeCellCached measures the steady-state request path — a
// fully memoized cell — with spans disabled (the default Options).
// This is the configuration the no-op instrumentation contract is
// judged on: the tracing hooks threaded through the handler, engine,
// and simulator must not add allocations here.
func BenchmarkServeCellCached(b *testing.B) {
	eng := sched.New(sched.Options{Workers: 2})
	defer eng.Close()
	s := New(Options{Engine: eng})
	const body = `{"app":"fasta","seeds":[1]}`
	warm := httptest.NewRequest("POST", "/v1/cells", strings.NewReader(body))
	warmW := httptest.NewRecorder()
	s.ServeHTTP(warmW, warm)
	if warmW.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", warmW.Code, warmW.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/cells", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}
