package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"bioperf5/internal/core"
	"bioperf5/internal/sched"
)

// TestCellTraceHitSemantics: the first request for a cell captures its
// trace ("trace_hit": false), a second request differing only in timing
// configuration replays it ("trace_hit": true) — and the numbers agree.
func TestCellTraceHitSemantics(t *testing.T) {
	s, _ := newTestServer(t, sched.Options{Workers: 2}, Options{})
	w := postCell(s, `{"app":"Fasta","seeds":[1]}`, "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var cold CellResponse
	if err := json.Unmarshal(w.Body.Bytes(), &cold); err != nil {
		t.Fatal(err)
	}
	if cold.TraceHit {
		t.Error("cold cell reported trace_hit")
	}
	w = postCell(s, `{"app":"Fasta","btac_entries":8,"fxus":4,"seeds":[1]}`, "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var warm CellResponse
	if err := json.Unmarshal(w.Body.Bytes(), &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.TraceHit {
		t.Error("timing variation of a captured cell did not report trace_hit")
	}
	if cold.Stats.Aggregate.Counters.Instructions != warm.Stats.Aggregate.Counters.Instructions {
		t.Error("timing variation changed the instruction count")
	}
}

// TestCellTracePolicyField: explicit per-request policies are honoured
// ("off" bypasses the store, "replay" fails without a capture) and an
// unknown policy is a 400, not a silent default.
func TestCellTracePolicyField(t *testing.T) {
	s, eng := newTestServer(t, sched.Options{Workers: 1, DisableCache: true}, Options{})
	w := postCell(s, `{"app":"Hmmer","seeds":[1],"trace":"off"}`, "")
	if w.Code != http.StatusOK {
		t.Fatalf("trace=off: status = %d, body %s", w.Code, w.Body)
	}
	var resp CellResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceHit {
		t.Error("off-policy cell reported trace_hit")
	}
	if st := eng.TraceStore().Stats(); st.Captures != 0 {
		t.Errorf("off-policy request captured a trace: %+v", st)
	}

	w = postCell(s, `{"app":"Hmmer","seeds":[1],"trace":"replay"}`, "")
	if w.Code == http.StatusOK {
		t.Error("replay policy succeeded against an empty trace store")
	}

	w = postCell(s, `{"app":"Hmmer","seeds":[1],"trace":"always"}`, "")
	if w.Code != http.StatusBadRequest {
		t.Errorf("unknown policy: status = %d, want 400 (body %s)", w.Code, w.Body)
	}
}

// TestCellNumbersIdenticalAcrossPolicies is the serving-layer identity
// gate: the same cell with tracing off and on returns byte-identical
// stats.
func TestCellNumbersIdenticalAcrossPolicies(t *testing.T) {
	s, _ := newTestServer(t, sched.Options{Workers: 1, DisableCache: true}, Options{})
	var bodies [][]byte
	for _, req := range []string{
		`{"app":"Clustalw","btac_entries":8,"seeds":[1,2],"trace":"off"}`,
		`{"app":"Clustalw","btac_entries":8,"seeds":[1,2]}`,
		`{"app":"Clustalw","btac_entries":8,"seeds":[1,2]}`, // warm replay
	} {
		w := postCell(s, req, "")
		if w.Code != http.StatusOK {
			t.Fatalf("status = %d, body %s", w.Code, w.Body)
		}
		var resp CellResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(resp.Stats)
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, b)
	}
	for i := 1; i < len(bodies); i++ {
		if string(bodies[0]) != string(bodies[i]) {
			t.Errorf("response %d stats diverge from traced-off stats", i)
		}
	}
}

// TestServerDefaultTraceOption: a server started with DefaultTrace off
// applies it to requests without a "trace" field, and a per-request
// field overrides it.
func TestServerDefaultTraceOption(t *testing.T) {
	s, eng := newTestServer(t, sched.Options{Workers: 1, DisableCache: true},
		Options{DefaultTrace: core.TraceOff})
	if w := postCell(s, `{"app":"Fasta","seeds":[1]}`, ""); w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	if st := eng.TraceStore().Stats(); st.Captures != 0 {
		t.Errorf("server default off still captured: %+v", st)
	}
	if w := postCell(s, `{"app":"Fasta","seeds":[1],"trace":"auto"}`, ""); w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	if st := eng.TraceStore().Stats(); st.Captures != 1 {
		t.Errorf("per-request auto did not override the server default: %+v", st)
	}
}
