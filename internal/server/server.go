// Package server exposes the simulation engine as an HTTP/JSON
// service — "simulation as a service" on top of internal/sched.  One
// Server wraps one Engine and serves:
//
//	GET  /healthz                   liveness (always 200 while the process runs)
//	GET  /readyz                    readiness (503 once draining)
//	GET  /metrics                   Prometheus text exposition of the registry
//	GET  /v1/experiments/{id}       a paper experiment, byte-identical to
//	                                `bioperf5 run <id> -json`
//	POST /v1/cells                  one simulation cell (app x variant x
//	                                FXUs x BTAC x seeds x scale)
//	POST /v1/cells:batch            many cells, streamed back as JSONL in
//	                                completion order
//
// Requests are validated and canonicalized before anything is
// submitted, so two clients asking for the same cell in different
// spellings ("combo" vs "combination", seeds in any order of arrival)
// address the same content hash and coalesce through the engine's
// singleflight and disk cache.  Admission control is a bounded
// semaphore over in-flight cells: a saturated server fast-fails with
// 429 + Retry-After instead of queueing unboundedly, per-request
// deadlines (?timeout=) cancel cells that outlive their caller, and
// StartDrain flips the server into lame-duck mode — in-flight work
// finishes, new API requests get 503 — for graceful SIGTERM shutdown.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"bioperf5/internal/branch"
	"bioperf5/internal/core"
	"bioperf5/internal/harness"
	"bioperf5/internal/sched"
	"bioperf5/internal/telemetry"
)

// Options configures a Server.
type Options struct {
	// Engine executes the cells.  Required; New panics on nil, because
	// a server without an engine cannot serve anything.
	Engine *sched.Engine
	// MaxInflight bounds concurrently admitted cells across all
	// requests (the admission-control semaphore).  Values < 1 mean
	// 4 x GOMAXPROCS — the engine's own default queue depth, so the
	// server saturates no earlier than the engine would.
	MaxInflight int
	// DefaultTimeout is the per-request deadline applied when the
	// client sends no ?timeout= query parameter; 0 means none.
	DefaultTimeout time.Duration
	// MaxBatch bounds the cell count of one batch request; values < 1
	// mean 256.
	MaxBatch int
	// RetryAfter is the floor of the hint sent with 429 and 503
	// responses; values <= 0 mean 1s.  The actual hint scales with
	// observed load: mean request latency times admission occupancy,
	// clamped to [RetryAfter, 60s], so a saturated server under slow
	// cells tells clients to back off longer than one under fast ones.
	RetryAfter time.Duration
	// DefaultTrace is the trace policy applied to cells whose request
	// carries no "trace" field; the zero value means auto (capture each
	// distinct functional execution once, replay it for every timing
	// variation).  Responses are bit-identical under every policy.
	DefaultTrace core.TracePolicy
	// Tracer, when non-nil, records a hierarchical span per request —
	// handler, admission, and every engine/simulation stage beneath it
	// — exportable as JSONL or a Chrome trace-event file.  Nil (the
	// default) keeps the request path allocation-free: the
	// instrumentation's no-op form costs nothing measurable.
	Tracer *telemetry.Tracer
	// EnablePprof mounts the net/http/pprof handlers under
	// /debug/pprof/ so the capture hot loop can be profiled live.
	// Off by default: the endpoints expose stacks and heap contents,
	// which is diagnostics, not API surface.
	EnablePprof bool
}

// Server is the HTTP layer over one sched.Engine.  It implements
// http.Handler; all methods are safe for concurrent use.
type Server struct {
	opts Options
	eng  *sched.Engine
	reg  *telemetry.Registry
	mux  *http.ServeMux

	sem      chan struct{} // admission tokens, one per in-flight cell
	draining atomic.Bool

	mRequests  *telemetry.Counter
	mSaturated *telemetry.Counter
	mDraining  *telemetry.Counter
	mAdmitted  *telemetry.Counter
	mCoalesced *telemetry.Counter
	gInflight  *telemetry.Gauge
	hLatency   *telemetry.Histogram

	mCacheHits   *telemetry.Counter
	mCacheMisses *telemetry.Counter
	mCachePuts   *telemetry.Counter
	mTraceHits   *telemetry.Counter
	mTraceMisses *telemetry.Counter
	mTracePuts   *telemetry.Counter
}

// latencyBoundsUS is the request-latency bucket layout in microseconds:
// sub-millisecond cache hits up to multi-second cold experiment runs.
var latencyBoundsUS = []uint64{
	250, 1_000, 5_000, 25_000, 100_000, 500_000,
	1_000_000, 5_000_000, 30_000_000,
}

// New builds a server over the engine in o.  The server publishes its
// own metrics (server.*) into the engine's telemetry registry, so one
// /metrics scrape exposes both layers.
func New(o Options) *Server {
	if o.Engine == nil {
		panic("server: Options.Engine is required")
	}
	if o.MaxInflight < 1 {
		o.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	if o.MaxBatch < 1 {
		o.MaxBatch = 256
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	reg := o.Engine.Registry()
	s := &Server{
		opts: o,
		eng:  o.Engine,
		reg:  reg,
		mux:  http.NewServeMux(),
		sem:  make(chan struct{}, o.MaxInflight),

		mRequests:  reg.Counter("server.requests"),
		mSaturated: reg.Counter("server.requests.saturated"),
		mDraining:  reg.Counter("server.requests.draining"),
		mAdmitted:  reg.Counter("server.cells.admitted"),
		mCoalesced: reg.Counter("server.cells.coalesced"),
		gInflight:  reg.Gauge("server.cells.inflight"),
		hLatency:   reg.Histogram("server.request.latency_us", latencyBoundsUS),

		mCacheHits:   reg.Counter("server.cache.hits"),
		mCacheMisses: reg.Counter("server.cache.misses"),
		mCachePuts:   reg.Counter("server.cache.puts"),
		mTraceHits:   reg.Counter("server.traces.hits"),
		mTraceMisses: reg.Counter("server.traces.misses"),
		mTracePuts:   reg.Counter("server.traces.puts"),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/version", s.handleVersion)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("POST /v1/cells", s.handleCell)
	s.mux.HandleFunc("POST /v1/cells:batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	s.mux.HandleFunc("PUT /v1/cache/{key}", s.handleCachePut)
	s.mux.HandleFunc("GET /v1/traces/{key}", s.handleTraceGet)
	s.mux.HandleFunc("PUT /v1/traces/{key}", s.handleTracePut)
	if o.EnablePprof {
		// Registered explicitly: the server owns its mux, so the
		// side-effect registrations on http.DefaultServeMux from
		// importing net/http/pprof never reach the API surface unless
		// asked for.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Tracer returns the server's span tracer, or nil when spans are
// disabled.
func (s *Server) Tracer() *telemetry.Tracer { return s.opts.Tracer }

// Registry returns the registry the server (and its engine) publish
// into — the data behind /metrics.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// StartDrain flips the server into lame-duck mode: /readyz reports
// 503 so load balancers stop routing here, new API requests are
// rejected with 503 + Retry-After, and requests already in flight run
// to completion.  The caller then shuts the http.Server down (which
// waits for those in-flight handlers) and finally drains the engine.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// ServeHTTP counts and times every request, rejects API traffic while
// draining, and dispatches to the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Add(1)
	start := time.Now()
	defer func() {
		s.hLatency.Observe(uint64(time.Since(start) / time.Microsecond))
	}()
	if s.opts.Tracer != nil {
		// Only when spans are on: the nil-Tracer path must not touch the
		// request context at all, so the common case stays alloc-free.
		ctx, sp := telemetry.StartSpan(
			telemetry.WithTracer(r.Context(), s.opts.Tracer), telemetry.StageRequest)
		sp.Attr("method", r.Method)
		sp.Attr("path", r.URL.Path)
		defer sp.End()
		r = r.WithContext(ctx)
	}
	if s.draining.Load() {
		switch r.URL.Path {
		case "/healthz", "/readyz", "/metrics":
			// The probe and scrape surface stays up through the drain.
		default:
			s.mDraining.Add(1)
			s.retryAfter(w)
			s.errorJSON(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
	}
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writePrometheus(w, s.reg.Snapshot(0))
}

// handleExperiment serves one paper experiment.  The response bytes
// are exactly what `bioperf5 run <id> -json` prints for the same
// configuration: both paths render through harness.RunReport and
// Report.WriteJSON, and the experiments themselves collect cells in
// deterministic table order.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	e, err := harness.ByID(r.PathValue("id"))
	if err != nil {
		s.errorJSON(w, http.StatusNotFound, "%v", err)
		return
	}
	cfg, err := configFromQuery(r)
	if err != nil {
		s.errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	// A whole experiment is admitted as one unit of work: its cells
	// share the engine's worker pool with everything else anyway, and
	// charging per-cell would let one fig6 request starve the API.
	if !s.admit(ctx, 1) {
		s.saturated(w)
		return
	}
	defer s.release(1)
	cfg.Engine = s.eng
	cfg.Context = ctx
	rep, err := harness.RunReport(e, cfg)
	if err != nil {
		s.errorJSON(w, statusForRunError(err), "%s: %v", e.ID, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	rep.WriteJSON(w)
}

// admit wraps acquire in a serve.admission span so saturation shows up
// in a trace exactly where the 429 was decided.
func (s *Server) admit(ctx context.Context, n int) bool {
	_, sp := telemetry.StartSpan(ctx, telemetry.StageAdmission)
	ok := s.acquire(n)
	sp.AttrBool("admitted", ok)
	sp.AttrInt("cells", int64(n))
	sp.End()
	return ok
}

// acquire takes n admission tokens without blocking; either all n are
// held on return true, or none are.
func (s *Server) acquire(n int) bool {
	for i := 0; i < n; i++ {
		select {
		case s.sem <- struct{}{}:
		default:
			s.release(i)
			return false
		}
	}
	s.mAdmitted.Add(uint64(n))
	s.gInflight.Set(float64(len(s.sem)))
	return true
}

func (s *Server) release(n int) {
	for i := 0; i < n; i++ {
		<-s.sem
	}
	s.gInflight.Set(float64(len(s.sem)))
}

// saturated fast-fails an unadmittable request: 429 plus a Retry-After
// hint, never a blocked handler.
func (s *Server) saturated(w http.ResponseWriter) {
	s.mSaturated.Add(1)
	s.retryAfter(w)
	s.errorJSON(w, http.StatusTooManyRequests,
		"server saturated: %d cells in flight (limit %d)", len(s.sem), cap(s.sem))
}

// retryAfter derives the Retry-After hint from actual admission state
// rather than a fixed constant: the expected time for a slot to free
// is roughly one mean request latency, and the fuller the semaphore
// the less likely an early retry wins the race for it.  The estimate
// is clamped to [Options.RetryAfter, 60s] so clients never hammer a
// cold server (no latency samples yet) and never back off absurdly
// after one pathological request.
func (s *Server) retryAfter(w http.ResponseWriter) {
	floor := s.opts.RetryAfter.Seconds()
	if floor < 1 {
		floor = 1
	}
	occupancy := float64(len(s.sem)) / float64(cap(s.sem))
	est := s.hLatency.Mean() / 1e6 * occupancy // mean is in microseconds
	secs := int(math.Ceil(math.Min(60, math.Max(floor, est))))
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
}

// requestContext derives the request's execution context: the HTTP
// request context (so a disconnected client cancels its cells) bounded
// by the ?timeout= query parameter or the server default.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.opts.DefaultTimeout
	if q := r.URL.Query().Get("timeout"); q != "" {
		v, err := time.ParseDuration(q)
		if err != nil || v <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q: want a positive Go duration like 30s", q)
		}
		d = v
	}
	if d > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		return ctx, cancel, nil
	}
	return r.Context(), func() {}, nil
}

// statusForRunError maps a cell-execution error to an HTTP status: a
// deadline (request timeout or the engine's per-cell watchdog) is 504,
// anything else is 500.
func statusForRunError(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, sched.ErrCellTimeout) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// errorResponse is the JSON body of every non-2xx API answer.
// Malformed predictor specs additionally carry structured detail —
// which field failed, why, and what is registered — so clients can
// point at the offending parameter without parsing the message.
type errorResponse struct {
	Schema     string   `json:"schema"`
	Status     int      `json:"status"`
	Error      string   `json:"error"`
	Field      string   `json:"field,omitempty"`
	Reason     string   `json:"reason,omitempty"`
	Registered []string `json:"registered,omitempty"`
}

// badRequest answers a validation failure with 400.  A *branch.SpecError
// anywhere in the chain upgrades the body to the structured form.
func (s *Server) badRequest(w http.ResponseWriter, err error) {
	resp := errorResponse{
		Schema: harness.SchemaVersion,
		Status: http.StatusBadRequest,
		Error:  err.Error(),
	}
	var se *branch.SpecError
	if errors.As(err, &se) {
		resp.Field = se.Field
		resp.Reason = se.Reason
		resp.Registered = branch.Registered()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.Status)
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) errorJSON(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{
		Schema: harness.SchemaVersion,
		Status: status,
		Error:  fmt.Sprintf(format, args...),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
