package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"bioperf5/internal/branch"
	"bioperf5/internal/core"
	"bioperf5/internal/harness"
	"bioperf5/internal/kernels"
	"bioperf5/internal/telemetry"
)

// Request-size guardrails.  They bound resource consumption per
// request, not the science: a sweep wanting more goes through the CLI.
const (
	maxBodyBytes = 1 << 20 // request bodies are small JSON documents
	maxFXUs      = 8
	maxBTAC      = 4096
	maxScale     = 64
	maxSeeds     = 16
)

// CellRequest is the wire form of one simulation cell.  Everything but
// App is optional; zero values mean the POWER5 baseline (2 FXUs, no
// BTAC, original code, scale 1, seed 1).
type CellRequest struct {
	App         string  `json:"app"`
	Variant     string  `json:"variant,omitempty"`
	FXUs        int     `json:"fxus,omitempty"`
	BTACEntries int     `json:"btac_entries,omitempty"`
	Scale       int     `json:"scale,omitempty"`
	Seeds       []int64 `json:"seeds,omitempty"`
	// Predictor is a direction-predictor spec ("tage:tables=4,hist=2..64");
	// empty means the POWER5-like tournament default.  Malformed specs
	// are rejected with a structured 400 naming the field and reason.
	Predictor string `json:"predictor,omitempty"`
	// Trace selects the execution strategy ("auto", "capture", "replay",
	// "off"); empty means the server's default.  It never changes the
	// numbers or the cell's key — only how they are computed.
	Trace string `json:"trace,omitempty"`
}

// CellResponse is the result of one cell: the canonical coordinates
// the request resolved to, the cell's content key (identical to the
// key a sweep manifest records for the same cell), how many of its
// per-seed submissions coalesced with work already in flight or
// memoized, and the per-seed + aggregate stats in the harness report
// schema.
type CellResponse struct {
	Schema      string  `json:"schema"`
	App         string  `json:"app"`
	Variant     string  `json:"variant"`
	FXUs        int     `json:"fxus"`
	BTACEntries int     `json:"btac_entries"`
	Predictor   string  `json:"predictor"`
	Scale       int     `json:"scale"`
	Seeds       []int64 `json:"seeds"`
	Key         string  `json:"key"`
	Coalesced   int     `json:"coalesced"`
	TraceHit    bool    `json:"trace_hit"`
	// Cost is the cell's per-stage wall-time breakdown (queue wait,
	// compile, capture, replay, cache I/O).  Coalesced seeds contribute
	// nothing — their work is charged to the submission that enqueued it
	// — so a fully memoized cell reports an all-zero (omitted) cost.
	Cost  telemetry.StageCost `json:"cost"`
	Stats harness.KernelStats `json:"stats"`
}

// cellSpec is a validated, canonicalized cell: the exact coordinates
// that address the engine's caches.
type cellSpec struct {
	app     string
	variant kernels.Variant
	fxus    int
	btac    int
	pred    string // canonical predictor spec
	scale   int
	seeds   []int64
	trace   core.TracePolicy
	setup   core.Setup
}

// canonicalize validates the request and resolves every field to its
// canonical form: the kernel's exact application name (matched
// case-insensitively), the variant through the shared alias table, and
// defaults identical to the CLI baseline.  Canonical requests are what
// make coalescing work — two spellings of the same cell must produce
// the same sched.Job keys.
func (r CellRequest) canonicalize() (cellSpec, error) {
	var sp cellSpec
	if strings.TrimSpace(r.App) == "" {
		return sp, fmt.Errorf("missing app (one of %s)", strings.Join(appNames(), ", "))
	}
	k, err := kernelByAppFold(r.App)
	if err != nil {
		return sp, err
	}
	sp.app = k.App
	variant := r.Variant
	if strings.TrimSpace(variant) == "" {
		variant = kernels.Branchy.String()
	}
	if sp.variant, err = kernels.VariantByName(variant); err != nil {
		return sp, fmt.Errorf("unknown variant %q", r.Variant)
	}
	sp.fxus = r.FXUs
	if sp.fxus == 0 {
		sp.fxus = core.Baseline().CPU.NumFXU
	}
	if sp.fxus < 1 || sp.fxus > maxFXUs {
		return sp, fmt.Errorf("fxus %d out of range [1, %d]", r.FXUs, maxFXUs)
	}
	sp.btac = r.BTACEntries
	if sp.btac < 0 || sp.btac > maxBTAC {
		return sp, fmt.Errorf("btac_entries %d out of range [0, %d]", r.BTACEntries, maxBTAC)
	}
	if sp.pred, err = branch.CanonicalSpec(r.Predictor); err != nil {
		return sp, err
	}
	sp.scale = r.Scale
	if sp.scale == 0 {
		sp.scale = 1
	}
	if sp.scale < 1 || sp.scale > maxScale {
		return sp, fmt.Errorf("scale %d out of range [1, %d]", r.Scale, maxScale)
	}
	sp.seeds = r.Seeds
	if len(sp.seeds) == 0 {
		sp.seeds = []int64{1}
	}
	if len(sp.seeds) > maxSeeds {
		return sp, fmt.Errorf("%d seeds exceed the per-cell limit of %d", len(sp.seeds), maxSeeds)
	}
	seen := make(map[int64]bool, len(sp.seeds))
	for _, s := range sp.seeds {
		if s < 0 {
			return sp, fmt.Errorf("bad seed %d: seeds must be non-negative", s)
		}
		if seen[s] {
			return sp, fmt.Errorf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	if strings.TrimSpace(r.Trace) != "" {
		if sp.trace, err = core.ParseTracePolicy(r.Trace); err != nil {
			return sp, fmt.Errorf("bad trace policy %q (one of auto, capture, replay, off)", r.Trace)
		}
	}
	sp.setup = harness.SetupFor(sp.variant, sp.fxus, sp.btac, sp.pred)
	return sp, nil
}

// appNames lists the canonical application names.
func appNames() []string {
	var out []string
	for _, k := range kernels.All() {
		out = append(out, k.App)
	}
	return out
}

// kernelByAppFold resolves an application name case-insensitively.
func kernelByAppFold(app string) (*kernels.Kernel, error) {
	for _, k := range kernels.All() {
		if strings.EqualFold(k.App, strings.TrimSpace(app)) {
			return k, nil
		}
	}
	return nil, fmt.Errorf("unknown app %q (one of %s)", app, strings.Join(appNames(), ", "))
}

// runCell executes one canonicalized cell through the engine and
// packages the response.
func (s *Server) runCell(cfg harness.Config, sp cellSpec) (*CellResponse, error) {
	cfg.Scale = sp.scale
	cfg.Seeds = sp.seeds
	cfg.Engine = s.eng
	cfg.Trace = sp.trace
	if cfg.Trace == "" {
		cfg.Trace = s.opts.DefaultTrace
	}
	out, err := harness.CellStats(cfg, sp.app, sp.setup)
	s.mCoalesced.Add(uint64(out.Coalesced))
	if err != nil {
		return nil, err
	}
	return &CellResponse{
		Schema:      harness.SchemaVersion,
		App:         sp.app,
		Variant:     sp.variant.String(),
		FXUs:        sp.fxus,
		BTACEntries: sp.btac,
		Predictor:   sp.pred,
		Scale:       sp.scale,
		Seeds:       sp.seeds,
		Key:         out.Key,
		Coalesced:   out.Coalesced,
		TraceHit:    out.TraceHit,
		Cost:        out.Cost,
		Stats:       out.Stats,
	}, nil
}

// handleCell runs one cell synchronously: validate, admit, execute,
// answer.
func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	var req CellRequest
	if err := decodeBody(r, &req); err != nil {
		s.errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	sp, err := req.canonicalize()
	if err != nil {
		s.badRequest(w, err)
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	if !s.admit(ctx, 1) {
		s.saturated(w)
		return
	}
	defer s.release(1)
	resp, err := s.runCell(harness.Config{Context: ctx}, sp)
	if err != nil {
		s.errorJSON(w, statusForRunError(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// BatchRequest is the wire form of POST /v1/cells:batch.
type BatchRequest struct {
	Cells []CellRequest `json:"cells"`
}

// BatchItem is one JSONL line of a batch response, emitted as its cell
// completes (completion order, not request order — Index ties the line
// back to the request).
type BatchItem struct {
	Schema string        `json:"schema"`
	Index  int           `json:"index"`
	Status string        `json:"status"` // "ok" or "error"
	Error  string        `json:"error,omitempty"`
	Result *CellResponse `json:"result,omitempty"`
}

// handleBatch fans a batch of cells into the engine and streams
// per-cell results back as JSON Lines as they complete.  The whole
// batch is validated and admitted (all cells or none) before any work
// starts, so a batch can never half-fail on a malformed trailing cell
// or wedge the server beyond its admission bound.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeBody(r, &req); err != nil {
		s.errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Cells) == 0 {
		s.errorJSON(w, http.StatusBadRequest, "empty batch: cells must name at least one cell")
		return
	}
	if len(req.Cells) > s.opts.MaxBatch {
		s.errorJSON(w, http.StatusBadRequest,
			"batch of %d cells exceeds the limit of %d", len(req.Cells), s.opts.MaxBatch)
		return
	}
	specs := make([]cellSpec, len(req.Cells))
	for i, c := range req.Cells {
		sp, err := c.canonicalize()
		if err != nil {
			s.badRequest(w, fmt.Errorf("cell %d: %w", i, err))
			return
		}
		specs[i] = sp
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	if !s.admit(ctx, len(specs)) {
		s.saturated(w)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	items := make(chan BatchItem)
	var wg sync.WaitGroup
	for i, sp := range specs {
		i, sp := i, sp
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.release(1)
			item := BatchItem{Schema: harness.SchemaVersion, Index: i, Status: "ok"}
			resp, err := s.runCell(harness.Config{Context: ctx}, sp)
			if err != nil {
				item.Status = "error"
				item.Error = err.Error()
			} else {
				item.Result = resp
			}
			items <- item
		}()
	}
	go func() {
		wg.Wait()
		close(items)
	}()
	enc := json.NewEncoder(w)
	for item := range items {
		enc.Encode(item)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// decodeBody parses a JSON request body strictly: unknown fields are
// rejected (they are always a client bug — a typoed "btac_entires"
// must not silently run the wrong cell), as is trailing garbage.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("bad request body: trailing data after the JSON document")
	}
	return nil
}

// configFromQuery builds the experiment configuration from ?scale= and
// ?seeds=, with the CLI's defaults (scale 1, seeds 1,2,3) so the
// served bytes match an argument-less `bioperf5 run <id> -json`.
func configFromQuery(r *http.Request) (harness.Config, error) {
	cfg := harness.Config{Scale: 1, Seeds: []int64{1, 2, 3}}
	q := r.URL.Query()
	if v := q.Get("scale"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxScale {
			return cfg, fmt.Errorf("bad scale %q: want an integer in [1, %d]", v, maxScale)
		}
		cfg.Scale = n
	}
	if v := q.Get("seeds"); v != "" {
		cfg.Seeds = nil
		seen := make(map[int64]bool)
		for _, part := range strings.Split(v, ",") {
			part = strings.TrimSpace(part)
			n, err := strconv.ParseInt(part, 10, 64)
			if err != nil || n < 0 {
				return cfg, fmt.Errorf("bad seed %q: want a non-negative integer", part)
			}
			if seen[n] {
				return cfg, fmt.Errorf("duplicate seed %d", n)
			}
			seen[n] = true
			cfg.Seeds = append(cfg.Seeds, n)
		}
		if len(cfg.Seeds) > maxSeeds {
			return cfg, fmt.Errorf("%d seeds exceed the limit of %d", len(cfg.Seeds), maxSeeds)
		}
	}
	return cfg, nil
}
