package kernels

import (
	"fmt"

	"bioperf5/internal/bio/align"
	"bioperf5/internal/bio/clustal"
	"bioperf5/internal/bio/score"
	"bioperf5/internal/bio/seq"
	"bioperf5/internal/ir"
	"bioperf5/internal/mem"
)

// The Smith-Waterman/Gotoh cell recurrence is shared by Fasta's dropgsw
// and Clustalw's forward_pass (Section III notes both packages use the
// same pairwise kernels).  What differs — besides inputs — is the
// source style: Fasta's C hoists the row loads out of the max
// statements, Clustalw's macro-heavy code re-references the HH/DD
// arrays inside them, which is why the paper's compiler beats the hand
// edits on Fasta but loses on Clustalw.
type swConfig struct {
	name       string
	app        string
	loadInArms bool // Clustalw style
	// handMissesEF models Fasta: the E/F max statements hide behind
	// macros, so the hand edits only caught the H-side maxes while the
	// compiler converts everything (Section VI-A's Fasta result).
	handMissesEF bool
	gap          score.Gap
	// pair sizes at scale 1 (Fasta inputs are ~2x Clustalw's).
	lenA, lenB int
}

// swArgs is the register-argument order of the generated kernel.
//
//	r3 aPtr  r4 aLen  r5 bPtr  r6 bLen
//	r7 matPtr (20x20 int64 row-major)
//	r8 hPtr   r9 ePtr  (int64[bLen+1] work rows)
//	r10 parPtr (int64: open, ext, outEndA, outEndB)
const (
	parOpen = 0
	parExt  = 8
	parEndA = 16
	parEndB = 24
)

func buildSW(cfg swConfig, shape Shape) (*ir.Func, error) {
	b := ir.NewBuilder(cfg.name, 8)
	e := &emitter{b: b, shape: shape}

	aPtr, aLen := b.Arg(0), b.Arg(1)
	bPtr, bLen := b.Arg(2), b.Arg(3)
	matPtr := b.Arg(4)
	hPtr, ePtr := b.Arg(5), b.Arg(6)
	parPtr := b.Arg(7)

	open := b.Load(ir.Mem64, parPtr, parOpen, true)
	ext := b.Load(ir.Mem64, parPtr, parExt, true)
	zero := b.Const(0)
	neg := b.Const(-1 << 40)
	three := b.Const(3)

	// Initialize the work rows: h[j] = 0, e[j] = -inf.
	b.ForRange(zero, b.AddI(bLen, 1), 1, func(j ir.Reg) {
		off := b.Shl(j, three)
		b.StoreX(ir.Mem64, hPtr, off, zero)
		b.StoreX(ir.Mem64, ePtr, off, neg)
	})

	best := b.Var(zero)
	endA := b.Var(zero)
	endB := b.Var(zero)

	b.ForRange(zero, aLen, 1, func(i ir.Reg) {
		ai := b.LoadX(ir.MemU8, aPtr, i, true)
		rowBase := b.Add(matPtr, b.Shl(b.MulI(ai, 20), three))
		f := b.Var(neg)
		diag := b.Var(b.Load(ir.Mem64, hPtr, 0, true))
		// h[j-1] of the current row rides in a register (h[0] is never
		// rewritten in the local-alignment form, so the row starts from
		// the same value diag does).
		hleft := b.Var(diag)

		b.ForRange(b.Const(1), b.AddI(bLen, 1), 1, func(j ir.Reg) {
			off := b.Shl(j, three)
			bsym := b.LoadX(ir.MemU8, bPtr, b.SubI(j, 1), true)
			msc := b.LoadX(ir.Mem64, rowBase, b.Shl(bsym, three), true)
			hj := b.LoadX(ir.Mem64, hPtr, off, true)
			ej := b.LoadX(ir.Mem64, ePtr, off, true)

			// E(i,j) = max(E(i,j-1)... in rolling form:
			// ev = max(e[j]-ext, h[j]-open)
			ev := b.Var(b.Sub(ej, ext))
			hOpen := b.Sub(hj, open)
			if cfg.loadInArms {
				e.maxIntoReload(ev, hOpen, func() ir.Reg {
					return b.Sub(b.LoadX(ir.Mem64, hPtr, off, false), open)
				})
			} else {
				e.maxIntoSite(ev, hOpen, !cfg.handMissesEF)
			}
			// Store E back before it is consumed, matching Clustalw's
			// array-resident style (and making the reload below legal).
			b.StoreX(ir.Mem64, ePtr, off, ev)

			// fv = max(f-ext, h[j-1]-open); the stored h[j-1] equals
			// hleft, so Clustalw's in-arm array re-reference reloads it.
			fv := b.Var(b.Sub(f, ext))
			hmOpen := b.Sub(hleft, open)
			if cfg.loadInArms {
				e.maxIntoReload(fv, hmOpen, func() ir.Reg {
					offp := b.Sub(off, b.Const(8))
					return b.Sub(b.LoadX(ir.Mem64, hPtr, offp, false), open)
				})
			} else {
				e.maxIntoSite(fv, hmOpen, !cfg.handMissesEF)
			}

			// hv = max(diag + s(a_i, b_j), ev, fv, 0)
			hv := b.Var(b.Add(diag, msc))
			if cfg.loadInArms {
				e.maxIntoReload(hv, ev, func() ir.Reg {
					return b.LoadX(ir.Mem64, ePtr, off, false)
				})
			} else {
				e.maxInto(hv, ev)
			}
			e.maxInto(hv, fv)
			e.maxInto(hv, zero)

			b.Assign(diag, hj)
			b.StoreX(ir.Mem64, hPtr, off, hv)
			b.Assign(f, fv)
			b.Assign(hleft, hv)

			// maxscore/se1/se2 tracking (always written as a hammock).
			e.trackBest(best, hv, endA, b.AddI(i, 1), endB, j)
		})
	})

	b.Store(ir.Mem64, parPtr, parEndA, endA)
	b.Store(ir.Mem64, parPtr, parEndB, endB)
	b.Ret(best)
	return b.Finish()
}

// marshalSW lays out one pair's input and returns the call arguments.
func marshalSW(m *mem.Memory, lay *mem.Layout, a, b *seq.Seq, mat *score.Matrix, gap score.Gap) []uint64 {
	aAddr := lay.Alloc(uint64(a.Len()), 8)
	m.StoreBytes(aAddr, a.Code)
	bAddr := lay.Alloc(uint64(b.Len()), 8)
	m.StoreBytes(bAddr, b.Code)

	n := mat.Alpha.Size()
	matAddr := lay.Alloc(uint64(n*n*8), 8)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.WriteInt(matAddr+uint64((i*n+j)*8), 8, int64(mat.Score(byte(i), byte(j))))
		}
	}
	hAddr := lay.Alloc(uint64((b.Len()+1)*8), 8)
	eAddr := lay.Alloc(uint64((b.Len()+1)*8), 8)
	parAddr := lay.Alloc(32, 8)
	m.WriteInt(parAddr+parOpen, 8, int64(gap.Open+gap.Extend))
	m.WriteInt(parAddr+parExt, 8, int64(gap.Extend))

	return []uint64{aAddr, uint64(a.Len()), bAddr, uint64(b.Len()),
		matAddr, hAddr, eAddr, parAddr}
}

// DropgswKernel is Fasta/ssearch's Smith-Waterman kernel over one long
// sequence pair.
func DropgswKernel() *Kernel {
	cfg := swConfig{
		name: "dropgsw", app: "Fasta", loadInArms: false, handMissesEF: true,
		gap:  score.Gap{Open: 10, Extend: 2}, // ssearch BLOSUM50 defaults
		lenA: 110, lenB: 100,
	}
	return &Kernel{
		Name: cfg.name,
		App:  cfg.app,
		Build: func(s Shape) (*ir.Func, error) {
			return buildSW(cfg, s)
		},
		NewRun: func(seed int64, scale int) (*Run, error) {
			if scale < 1 {
				scale = 1
			}
			g := seq.NewGenerator(seq.Protein, seed)
			a := g.Random("query", cfg.lenA*scale)
			b := g.Mutate(a, "subject", 0.5, 0.05)
			for b.Len() < cfg.lenB {
				b = g.Random("subject", cfg.lenB*scale)
			}
			m := mem.New()
			lay := mem.NewLayout(0x100000, 1<<24)
			args := marshalSW(m, lay, a, b, score.BLOSUM50, cfg.gap)
			want, err := align.LocalScore(a, b, score.BLOSUM50, cfg.gap)
			if err != nil {
				return nil, err
			}
			return &Run{Mem: m, Args: args, Want: int64(want)}, nil
		},
	}
}

// ForwardPassKernel is Clustalw's forward_pass over a (shorter) family
// pair, in Clustalw's array-resident source style.
func ForwardPassKernel() *Kernel {
	cfg := swConfig{
		name: "forward_pass", app: "Clustalw", loadInArms: true,
		gap:  score.ClustalWGap,
		lenA: 55, lenB: 50,
	}
	return &Kernel{
		Name: cfg.name,
		App:  cfg.app,
		Build: func(s Shape) (*ir.Func, error) {
			return buildSW(cfg, s)
		},
		NewRun: func(seed int64, scale int) (*Run, error) {
			if scale < 1 {
				scale = 1
			}
			g := seq.NewGenerator(seq.Protein, seed)
			anc := g.Random("anc", cfg.lenA*scale)
			a := g.Mutate(anc, "s1", 0.8, 0.02)
			b := g.Mutate(anc, "s2", 0.8, 0.02)
			m := mem.New()
			lay := mem.NewLayout(0x100000, 1<<24)
			args := marshalSW(m, lay, a, b, score.BLOSUM62, cfg.gap)
			fp, err := clustal.ForwardPass(a, b, score.BLOSUM62, cfg.gap)
			if err != nil {
				return nil, err
			}
			return &Run{Mem: m, Args: args, Want: int64(fp.Score)}, nil
		},
	}
}

// VerifySWEndpoints cross-checks the endpoint outputs the kernel wrote
// into its parameter block against the Go forward_pass (tests use it).
func VerifySWEndpoints(run *Run, wantEndA, wantEndB int64) error {
	parAddr := run.Args[7]
	gotA := run.Mem.ReadInt(parAddr+parEndA, 8)
	gotB := run.Mem.ReadInt(parAddr+parEndB, 8)
	if gotA != wantEndA || gotB != wantEndB {
		return fmt.Errorf("kernels: endpoints (%d,%d), want (%d,%d)", gotA, gotB, wantEndA, wantEndB)
	}
	return nil
}
