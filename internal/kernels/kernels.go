// Package kernels carries the four BioPerf dynamic-programming kernels
// onto the simulator: each kernel is expressed in compiler IR in the
// code shapes the paper studies, marshalled with real workload data
// into simulated memory, compiled for a chosen ISA variant and executed
// on the POWER5 timing model.
//
// The paper's Figure 3 bars map to variants as follows:
//
//	Branchy   — the unmodified application: max statements compiled to
//	            compare-and-branch (the POWER5 baseline).
//	HandMax   — the authors' hand-inserted max instructions.
//	HandISel  — the authors' hand-inserted cmp+isel sequences.
//	CompMax   — modified gcc: if-conversion, max pattern matching.
//	CompISel  — modified gcc: if-conversion to isel.
//	Combination — hand-inserted max plus compiler-emitted isel for the
//	            remaining hammocks (the paper's best mix).
//
// Each kernel's branchy IR reflects how its C source reads: Fasta and
// Blast hoist loads out of the conditionals (so the compiler can
// legally if-convert everything, including hammocks the hand edits
// skipped), whereas Clustalw and Hmmer re-reference arrays inside the
// conditionals (the "abundant array memory references" of Section VI-A
// that defeat the compiler's safety analysis but not the programmer).
package kernels

import (
	"fmt"
	"strings"

	"bioperf5/internal/compiler"
	"bioperf5/internal/cpu"
	"bioperf5/internal/ir"
	"bioperf5/internal/isa"
	"bioperf5/internal/machine"
	"bioperf5/internal/mem"
	"bioperf5/internal/telemetry"
)

// Entry conventions shared by Execute and Simulate.
const (
	spReg  = isa.SP
	spInit = uint64(0x7FFF0000)
)

func argReg(i int) isa.Reg { return isa.R3 + isa.Reg(i) }

// Variant selects a predication strategy (a Figure 3 bar).
type Variant int

// Predication variants.
const (
	Branchy Variant = iota
	HandISel
	HandMax
	CompISel
	CompMax
	Combination
	NumVariants
)

// String names the variant as in the paper's figures.
func (v Variant) String() string {
	switch v {
	case Branchy:
		return "original"
	case HandISel:
		return "hand isel"
	case HandMax:
		return "hand max"
	case CompISel:
		return "comp. isel"
	case CompMax:
		return "comp. max"
	case Combination:
		return "combination"
	}
	return fmt.Sprintf("variant%d", int(v))
}

// variantAliases maps convenient spellings to canonical variant names,
// shared by the CLI flags and the HTTP API so both surfaces accept the
// same vocabulary.
var variantAliases = map[string]string{
	"base":     "original",
	"baseline": "original",
	"branchy":  "original",
	"isel":     "hand isel",
	"max":      "hand max",
	"combo":    "combination",
}

// VariantByName resolves a canonical variant name ("original", "hand
// isel", ...) or a documented alias ("base", "combo", ...) to its
// Variant.  Matching is case-insensitive.
func VariantByName(name string) (Variant, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	if full, ok := variantAliases[name]; ok {
		name = full
	}
	for v := Branchy; v < NumVariants; v++ {
		if v.String() == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("kernels: unknown variant %q", name)
}

// Shape is the IR form a variant compiles from.
type Shape int

// IR shapes.
const (
	ShapeBranchy  Shape = iota // hammocks everywhere
	ShapeHandMax               // explicit OpMax at the max statements
	ShapeHandISel              // explicit OpSelect at the max statements
)

// Plan returns the IR shape, compile target and options for a variant.
func (v Variant) Plan() (Shape, compiler.Target, compiler.Options) {
	switch v {
	case Branchy:
		return ShapeBranchy, compiler.POWER5Stock(), compiler.Options{}
	case HandISel:
		return ShapeHandISel, compiler.Target{HasISel: true}, compiler.Options{}
	case HandMax:
		return ShapeHandMax, compiler.Target{HasMax: true}, compiler.Options{}
	case CompISel:
		return ShapeBranchy, compiler.Target{HasISel: true}, compiler.DefaultOptions()
	case CompMax:
		// The compiler-max build also has isel available for converted
		// hammocks that are not max patterns, as the paper's modified
		// gcc targets the embedded-core isel as its fallback.
		return ShapeBranchy, compiler.Target{HasMax: true, HasISel: true}, compiler.DefaultOptions()
	case Combination:
		// Hand-placed max instructions plus compiler isel conversion of
		// everything else.
		return ShapeHandMax, compiler.Target{HasMax: true, HasISel: true}, compiler.DefaultOptions()
	}
	return ShapeBranchy, compiler.POWER5Stock(), compiler.Options{}
}

// NeedsExtensions reports whether the compiled program may contain
// max/isel (i.e. requires the extended core).
func (v Variant) NeedsExtensions() bool { return v != Branchy }

// Run is a marshalled kernel invocation: memory image, entry arguments
// and the expected result.
type Run struct {
	Mem  *mem.Memory
	Args []uint64
	Want int64
}

// Kernel describes one application's DP kernel.
type Kernel struct {
	Name string // function name (dropgsw, forward_pass, ...)
	App  string // application (Fasta, Clustalw, ...)

	// Build constructs the kernel IR in the given shape.
	Build func(s Shape) (*ir.Func, error)

	// NewRun marshals a workload-scale input; scale 1 is the unit used
	// by tests, larger scales by the harness.
	NewRun func(seed int64, scale int) (*Run, error)
}

// Compile builds and compiles the kernel for a variant, returning the
// assembled program and the compiler's transformation statistics.
// Compilation is deterministic and results are memoized per
// (kernel, variant); the returned program is shared and must be
// treated as read-only.
func (k *Kernel) Compile(v Variant) (*isa.Program, *compiler.Stats, error) {
	c, err := CompileCached(k, v)
	if err != nil {
		return nil, nil, err
	}
	return c.Prog, c.Stats, nil
}

// compile is the uncached compilation CompileCached memoizes.
func (k *Kernel) compile(v Variant) (*isa.Program, *compiler.Stats, error) {
	shape, tgt, opts := v.Plan()
	f, err := k.Build(shape)
	if err != nil {
		return nil, nil, fmt.Errorf("kernels: %s/%s: %w", k.Name, v, err)
	}
	prog, st, err := compiler.Compile(f, tgt, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("kernels: %s/%s: %w", k.Name, v, err)
	}
	return prog, st, nil
}

// Execute runs a compiled kernel on the functional machine alone (no
// timing) and checks the result; it returns the dynamic instruction
// count.
func Execute(k *Kernel, v Variant, run *Run, limit uint64) (uint64, error) {
	c, err := CompileCached(k, v)
	if err != nil {
		return 0, err
	}
	mach := machine.New(c.Prog, run.Mem)
	got, err := mach.Call(k.Name, limit, run.Args...)
	if err != nil {
		return 0, fmt.Errorf("kernels: %s/%s: %w", k.Name, v, err)
	}
	if int64(got) != run.Want {
		return 0, fmt.Errorf("kernels: %s/%s: computed %d, want %d", k.Name, v, int64(got), run.Want)
	}
	return mach.Steps(), nil
}

// Observer bundles the optional observability hooks a simulation can
// carry: a pipeline event trace, a telemetry registry the model (and
// its cache hierarchy, BTAC, memory image) publish into after the run,
// and a per-static-branch profiler fed every resolved branch.
type Observer struct {
	Trace    *telemetry.TraceBuffer
	Registry *telemetry.Registry
	Branches cpu.BranchProfiler
}

// Simulate runs a compiled kernel through the timing model and returns
// the counters; the functional result is verified against run.Want.
func Simulate(k *Kernel, v Variant, run *Run, cfg cpu.Config, limit uint64) (cpu.Counters, error) {
	rep, err := SimulateObserved(k, v, run, cfg, limit, Observer{})
	return rep.Counters, err
}

// SimulateObserved is Simulate with full observability: it returns the
// counters together with the CPI stall stack, appends per-instruction
// lifecycle records to obs.Trace when set, and publishes the final
// model state into obs.Registry when set.
func SimulateObserved(k *Kernel, v Variant, run *Run, cfg cpu.Config, limit uint64, obs Observer) (cpu.Report, error) {
	c, err := CompileCached(k, v)
	if err != nil {
		return cpu.Report{}, err
	}
	prog := c.Prog
	if v.NeedsExtensions() {
		cfg.Extensions = true
	}
	model, err := cpu.New(cfg)
	if err != nil {
		return cpu.Report{}, err
	}
	if obs.Trace != nil {
		model.SetTrace(obs.Trace)
	}
	if obs.Registry != nil {
		model.AttachTelemetry(obs.Registry)
	}
	if obs.Branches != nil {
		model.SetBranchProfiler(obs.Branches)
	}
	mach := machine.New(prog, run.Mem)
	mach.Reset()
	if err := mach.SetPC(k.Name); err != nil {
		return cpu.Report{}, err
	}
	mach.SetReg(spReg, spInit)
	for i, a := range run.Args {
		mach.SetReg(argReg(i), a)
	}
	ctr, err := model.Run(mach, limit)
	rep := cpu.Report{Counters: ctr, Stalls: model.Stalls()}
	if obs.Registry != nil {
		model.PublishTo(obs.Registry)
		run.Mem.PublishTo(obs.Registry)
	}
	if err != nil {
		return rep, fmt.Errorf("kernels: %s/%s: %w", k.Name, v, err)
	}
	if got := int64(mach.Reg(argReg(0))); got != run.Want {
		return rep, fmt.Errorf("kernels: %s/%s: computed %d, want %d", k.Name, v, got, run.Want)
	}
	return rep, nil
}

// All returns the four kernels in the order the paper lists the
// applications (Blast, Clustalw, Fasta, Hmmer).
func All() []*Kernel {
	return []*Kernel{
		SemiGappedKernel(),
		ForwardPassKernel(),
		DropgswKernel(),
		ViterbiKernel(),
	}
}

// ByApp returns the kernel for an application name.
func ByApp(app string) (*Kernel, error) {
	for _, k := range All() {
		if k.App == app {
			return k, nil
		}
	}
	return nil, fmt.Errorf("kernels: unknown application %q", app)
}
