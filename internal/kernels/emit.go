package kernels

import "bioperf5/internal/ir"

// emitter renders the "if (a < b) a = b" max statements of the DP
// kernels in the IR shape a variant compiles from.
type emitter struct {
	b     *ir.Builder
	shape Shape
}

// maxInto emits acc = max(acc, v) with v already held in a register
// (the hoisted-load source style of Fasta and Blast): in branchy shape
// the hammock arm is a plain register copy, which the if-converter can
// always legalize.
func (e *emitter) maxInto(acc, v ir.Reg) {
	switch e.shape {
	case ShapeHandMax:
		e.b.Assign(acc, e.b.Max(acc, v))
	case ShapeHandISel:
		e.b.Assign(acc, e.b.Select(ir.CmpGT, v, acc, v, acc))
	default:
		e.b.If(ir.CondOf(ir.CmpGT, v, acc), func() {
			e.b.Assign(acc, v)
		})
	}
}

// maxIntoReload emits the same computation in the source style of
// Clustalw and Hmmer: the branchy arm re-references the array (an
// unprovable load emitted by reload) instead of using the hoisted
// value, so the if-converter must leave the hammock intact.  Hand
// shapes use the hoisted value — the programmer knows the reload is
// redundant.  reload must produce exactly v's value.
func (e *emitter) maxIntoReload(acc, v ir.Reg, reload func() ir.Reg) {
	switch e.shape {
	case ShapeHandMax:
		e.b.Assign(acc, e.b.Max(acc, v))
	case ShapeHandISel:
		e.b.Assign(acc, e.b.Select(ir.CmpGT, v, acc, v, acc))
	default:
		e.b.If(ir.CondOf(ir.CmpGT, v, acc), func() {
			e.b.Assign(acc, reload())
		})
	}
}

// maxIntoSite is maxInto for a site the hand editor may have missed:
// when handFound is false, the hand shapes keep the original hammock
// (the paper: compiler-generated code found "opportunities ... beyond
// those we were able to identify by inspection" in Blast and Fasta,
// whose E/F updates hide behind macros).
func (e *emitter) maxIntoSite(acc, v ir.Reg, handFound bool) {
	if !handFound && (e.shape == ShapeHandMax || e.shape == ShapeHandISel) {
		e.b.If(ir.CondOf(ir.CmpGT, v, acc), func() {
			e.b.Assign(acc, v)
		})
		return
	}
	e.maxInto(acc, v)
}

// trackBest emits the best-score-and-position bookkeeping that the
// paper's hand edits left branchy in every application (it is not a
// simple max), but which the compiler can if-convert wherever the arm
// is load-free: if (v > best) { best = v; bestI = i; bestJ = j }.
func (e *emitter) trackBest(best, v, bestI, i, bestJ, j ir.Reg) {
	e.b.If(ir.CondOf(ir.CmpGT, v, best), func() {
		e.b.Assign(best, v)
		e.b.Assign(bestI, i)
		e.b.Assign(bestJ, j)
	})
}
