package kernels

import (
	"bioperf5/internal/bio/hmm"
	"bioperf5/internal/bio/seq"
	"bioperf5/internal/ir"
	"bioperf5/internal/mem"
)

// P7Viterbi kernel.  Arguments:
//
//	r3 seqPtr  r4 L  r5 M  r6 blockPtr
//
// Table layout follows HMMER2's: the seven transition vectors are
// interleaved in one tsc array ((k*7 + t)*8 bytes, t in MM,MI,MD,IM,
// II,DM,DD order), and the M/I/D rows are interleaved in one row
// buffer (k*24 + {0,8,16}), which keeps the pointer set small enough
// for the inner loop to live in registers — the real code's layout and
// the reason P7Viterbi is fixed-point-unit bound (Figure 5's Hmmer
// result).
const (
	vbMsc  = 8 * iota // flattened (M+1) x 20 match emissions
	vbIsc             // flattened (M+1) x 20 insert emissions
	vbTsc             // interleaved (M+1) x 7 transitions
	vbBsc             // (M+1) local entries
	vbEsc             // (M+1) local exits
	vbPrev            // previous row, (M+1) x 3 interleaved
	vbCur             // current row
	vbNLoop
	vbNMove
	vbELoopJ
	vbJLoop
	vbJMove
	vbEMoveC
	vbCLoop
	vbCMove
	vbSlots = iota
)

// Transition order within a tsc group.
const (
	tscMM = 8 * iota
	tscMI
	tscMD
	tscIM
	tscII
	tscDM
	tscDD
	tscStride = 8 * iota
)

// Row-group offsets.
const (
	rowM      = 0
	rowI      = 8
	rowD      = 16
	rowStride = 24
)

func buildViterbi(shape Shape) (*ir.Func, error) {
	b := ir.NewBuilder("P7Viterbi", 4)
	e := &emitter{b: b, shape: shape}

	seqPtr, seqLen := b.Arg(0), b.Arg(1)
	mStates := b.Arg(2)
	blk := b.Arg(3)

	ld := func(off int64) ir.Reg { return b.Load(ir.Mem64, blk, off, true) }
	msc, isc := ld(vbMsc), ld(vbIsc)
	tsc := ld(vbTsc)
	bsc, esc := ld(vbBsc), ld(vbEsc)

	prow := b.Var(ld(vbPrev))
	crow := b.Var(ld(vbCur))

	minS := b.Const(hmm.MinScore)
	zero := b.Const(0)
	three := b.Const(3)

	// Initialize the previous row to -inf.
	b.ForRange(zero, b.AddI(mStates, 1), 1, func(k ir.Reg) {
		off := b.MulI(k, rowStride)
		b.StoreX(ir.Mem64, prow, off, minS)
		b.StoreX(ir.Mem64, b.AddI(prow, rowI), off, minS)
		b.StoreX(ir.Mem64, b.AddI(prow, rowD), off, minS)
	})

	pxn := b.Var(zero)
	pxb := b.Var(ld(vbNMove))
	pxj := b.Var(minS)
	pxc := b.Var(minS)

	b.ForRange(zero, seqLen, 1, func(i ir.Reg) {
		sym := b.LoadX(ir.MemU8, seqPtr, i, true)
		symOff := b.Shl(sym, three)
		b.Store(ir.Mem64, crow, rowM, minS)
		b.Store(ir.Mem64, crow, rowI, minS)
		b.Store(ir.Mem64, crow, rowD, minS)
		xe := b.Var(minS)

		b.ForRange(b.Const(1), b.AddI(mStates, 1), 1, func(k ir.Reg) {
			roff := b.MulI(k, rowStride)
			rpoff := b.SubI(roff, rowStride)
			toff := b.MulI(k, tscStride)
			tpoff := b.SubI(toff, tscStride)
			emitOff := b.Add(b.MulI(k, 20*8), symOff)
			pk := b.Add(prow, rpoff) // previous row, group k-1
			ck := b.Add(crow, roff)  // current row, group k
			tp := b.Add(tsc, tpoff)  // transitions out of k-1
			tk := b.Add(tsc, toff)   // transitions out of k

			// Match: max over M/I/D at k-1 on the previous row plus a
			// fresh local entry.  Hmmer's source re-indexes the mmx/
			// imx/dmx and tsc arrays inside each alternative — the
			// loads-in-conditionals style that blocks if-conversion.
			sc := b.Var(b.Add(b.Load(ir.Mem64, pk, rowM, true),
				b.Load(ir.Mem64, tp, tscMM, true)))
			tI := b.Add(b.Load(ir.Mem64, pk, rowI, true),
				b.Load(ir.Mem64, tp, tscIM, true))
			e.maxIntoReload(sc, tI, func() ir.Reg {
				return b.Add(b.Load(ir.Mem64, pk, rowI, false),
					b.Load(ir.Mem64, tp, tscIM, false))
			})
			// The delete-path alternative is computed into a local in
			// hmmer's source, so its hammock is one of the few the
			// compiler can legally convert.
			tD := b.Add(b.Load(ir.Mem64, pk, rowD, true),
				b.Load(ir.Mem64, tp, tscDM, true))
			e.maxInto(sc, tD)
			tB := b.Add(pxb, b.LoadX(ir.Mem64, bsc, b.Shl(k, three), true))
			e.maxIntoReload(sc, tB, func() ir.Reg {
				return b.Add(pxb, b.LoadX(ir.Mem64, bsc, b.Shl(k, three), false))
			})
			b.Assign(sc, b.Add(sc, b.LoadX(ir.Mem64, msc, emitOff, true)))
			e.maxInto(sc, minS)
			b.Store(ir.Mem64, ck, rowM, sc)

			// Insert (the k==M slot is written but never read, as in
			// HMMER's row layout).
			pkk := b.Add(prow, roff) // previous row, group k
			ic := b.Var(b.Add(b.Load(ir.Mem64, pkk, rowM, true),
				b.Load(ir.Mem64, tk, tscMI, true)))
			tII := b.Add(b.Load(ir.Mem64, pkk, rowI, true),
				b.Load(ir.Mem64, tk, tscII, true))
			e.maxIntoReload(ic, tII, func() ir.Reg {
				return b.Add(b.Load(ir.Mem64, pkk, rowI, false),
					b.Load(ir.Mem64, tk, tscII, false))
			})
			b.Assign(ic, b.Add(ic, b.LoadX(ir.Mem64, isc, emitOff, true)))
			e.maxInto(ic, minS)
			b.Store(ir.Mem64, ck, rowI, ic)

			// Delete: same row, group k-1.
			ckp := b.Add(crow, rpoff)
			dc := b.Var(b.Add(b.Load(ir.Mem64, ckp, rowM, true),
				b.Load(ir.Mem64, tp, tscMD, true)))
			tDD := b.Add(b.Load(ir.Mem64, ckp, rowD, true),
				b.Load(ir.Mem64, tp, tscDD, true))
			e.maxInto(dc, tDD)
			e.maxInto(dc, minS)
			b.Store(ir.Mem64, ck, rowD, dc)

			// E-state collection: the candidate is register-resident
			// (hmmer keeps it in a local), so this hammock is legally
			// convertible.
			xeCand := b.Add(sc, b.LoadX(ir.Mem64, esc, b.Shl(k, three), true))
			e.maxInto(xe, xeCand)
		})

		// Special states (register-resident: convertible hammocks).
		// Their transition scores are re-read from the model block per
		// row, as hmmer reads hmm->xsc[] — and it keeps the inner
		// loop's register set small.
		xn := b.Var(b.Add(pxn, ld(vbNLoop)))
		e.maxInto(xn, minS)
		xj := b.Var(b.Add(pxj, ld(vbJLoop)))
		e.maxInto(xj, b.Add(xe, ld(vbELoopJ)))
		e.maxInto(xj, minS)
		xb := b.Var(b.Add(xn, ld(vbNMove)))
		e.maxInto(xb, b.Add(xj, ld(vbJMove)))
		xc := b.Var(b.Add(pxc, ld(vbCLoop)))
		e.maxInto(xc, b.Add(xe, ld(vbEMoveC)))
		e.maxInto(xc, minS)

		// Swap row pointers.
		tmp := b.Var(prow)
		b.Assign(prow, crow)
		b.Assign(crow, tmp)

		b.Assign(pxn, xn)
		b.Assign(pxb, xb)
		b.Assign(pxj, xj)
		b.Assign(pxc, xc)
	})

	final := b.Var(b.Add(pxc, ld(vbCMove)))
	e.maxInto(final, minS)
	b.Ret(final)
	return b.Finish()
}

// marshalViterbi lays out a sequence and model in HMMER2's interleaved
// table format.
func marshalViterbi(m *mem.Memory, lay *mem.Layout, s *seq.Seq, p *hmm.Plan7) []uint64 {
	seqAddr := lay.Alloc(uint64(s.Len()), 8)
	m.StoreBytes(seqAddr, s.Code)

	n := p.M + 1
	alloc64 := func(vals []int) uint64 {
		addr := lay.Alloc(uint64(len(vals)*8), 8)
		for i, v := range vals {
			m.WriteInt(addr+uint64(8*i), 8, int64(v))
		}
		return addr
	}
	flat := func(rows [][]int) uint64 {
		addr := lay.Alloc(uint64(n*20*8), 8)
		for k := 0; k < n; k++ {
			for c := 0; c < 20; c++ {
				m.WriteInt(addr+uint64((k*20+c)*8), 8, int64(rows[k][c]))
			}
		}
		return addr
	}
	// Interleave the seven transition vectors.
	tscAddr := lay.Alloc(uint64(n*7*8), 8)
	for k := 0; k < n; k++ {
		base := tscAddr + uint64(k*tscStride)
		m.WriteInt(base+tscMM, 8, int64(p.TMM[k]))
		m.WriteInt(base+tscMI, 8, int64(p.TMI[k]))
		m.WriteInt(base+tscMD, 8, int64(p.TMD[k]))
		m.WriteInt(base+tscIM, 8, int64(p.TIM[k]))
		m.WriteInt(base+tscII, 8, int64(p.TII[k]))
		m.WriteInt(base+tscDM, 8, int64(p.TDM[k]))
		m.WriteInt(base+tscDD, 8, int64(p.TDD[k]))
	}
	rowBuf := func() uint64 { return lay.Alloc(uint64(n*rowStride), 8) }

	blk := lay.Alloc(vbSlots*8, 8)
	put := func(off int64, v uint64) { m.WriteUint(blk+uint64(off), 8, v) }
	puti := func(off int64, v int) { m.WriteInt(blk+uint64(off), 8, int64(v)) }

	put(vbMsc, flat(p.Msc))
	put(vbIsc, flat(p.Isc))
	put(vbTsc, tscAddr)
	put(vbBsc, alloc64(p.Bsc))
	put(vbEsc, alloc64(p.Esc))
	put(vbPrev, rowBuf())
	put(vbCur, rowBuf())
	puti(vbNLoop, p.NLoop)
	puti(vbNMove, p.NMove)
	puti(vbELoopJ, p.ELoopJ)
	puti(vbJLoop, p.JLoop)
	puti(vbJMove, p.JMove)
	puti(vbEMoveC, p.EMoveC)
	puti(vbCLoop, p.CLoop)
	puti(vbCMove, p.CMove)

	return []uint64{seqAddr, uint64(s.Len()), uint64(p.M), blk}
}

// ViterbiKernel is Hmmer's P7Viterbi over a query and one profile HMM.
func ViterbiKernel() *Kernel {
	return &Kernel{
		Name:  "P7Viterbi",
		App:   "Hmmer",
		Build: buildViterbi,
		NewRun: func(seed int64, scale int) (*Run, error) {
			if scale < 1 {
				scale = 1
			}
			g := seq.NewGenerator(seq.Protein, seed)
			fam := g.Family("fam", 5, 40*scale, 0.85)
			model, err := hmm.BuildFromFamily("model", fam)
			if err != nil {
				return nil, err
			}
			query := g.Mutate(fam[0], "query", 0.8, 0.02)
			want, err := hmm.Viterbi(query, model)
			if err != nil {
				return nil, err
			}
			m := mem.New()
			lay := mem.NewLayout(0x100000, 1<<24)
			args := marshalViterbi(m, lay, query, model)
			return &Run{Mem: m, Args: args, Want: int64(want.Score)}, nil
		},
	}
}
