package kernels

import (
	"errors"
	"testing"

	"bioperf5/internal/cpu"
	"bioperf5/internal/trace"
)

const replayLimit = 500_000_000

// coupledReport runs the reference path: functional machine and timing
// model stepping together, exactly what `-trace off` executes.
func coupledReport(t *testing.T, k *Kernel, v Variant, cfg cpu.Config) cpu.Report {
	t.Helper()
	run, err := k.NewRun(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SimulateObserved(k, v, run, cfg, replayLimit, Observer{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// timingVariations spans the paper's tier-1 design space: the POWER5
// baseline, the 8-entry BTAC (Figure 4), 3 and 4 fixed-point units
// (Figure 5), the combined machine (Figure 6), and — since predictors
// run live at replay time — representatives of the predictor zoo.  One
// captured trace must replay bit-identically under every one of them.
func timingVariations() map[string]cpu.Config {
	base := cpu.POWER5Baseline()
	btac := base
	btac.UseBTAC = true
	fxu3 := base
	fxu3.NumFXU = 3
	fxu4 := base
	fxu4.NumFXU = 4
	combo := base
	combo.UseBTAC = true
	combo.NumFXU = 4
	tage := base
	tage.Predictor = "tage:tables=4,hist=2..64"
	perc := combo
	perc.Predictor = "perceptron:weights=256,hist=24"
	return map[string]cpu.Config{
		"baseline":        base,
		"btac8":           btac,
		"fxu3":            fxu3,
		"fxu4":            fxu4,
		"btac8+fxu4":      combo,
		"tage":            tage,
		"perceptron+btac": perc,
	}
}

// TestReplayEquivalenceGolden is the trace subsystem's core invariant:
// for every tier-1 cell, replaying a captured trace produces counters
// and a CPI stall stack byte-identical to the coupled run.  One trace
// per (app, variant) is captured once and replayed under every timing
// variation — the capture-once/replay-many contract itself.
func TestReplayEquivalenceGolden(t *testing.T) {
	variants := []Variant{Branchy, HandISel, CompISel, HandMax, CompMax, Combination}
	for _, k := range All() {
		for _, v := range variants {
			tr, err := CaptureTrace(k, v, 1, 1, replayLimit)
			if err != nil {
				t.Fatalf("%s/%s: capture: %v", k.App, v, err)
			}
			for name, cfg := range timingVariations() {
				// The paper evaluates predication variants on the baseline
				// (Figure 3) and the combined machine (Figure 6); the pure
				// hardware changes are swept with original and combined code.
				// Covering the full cross product here is cheap and stricter.
				got, err := ReplayTrace(k, v, tr, cfg)
				if err != nil {
					t.Fatalf("%s/%s/%s: replay: %v", k.App, v, name, err)
				}
				want := coupledReport(t, k, v, cfg)
				if got != want {
					t.Errorf("%s/%s/%s: replay diverges from coupled run\n replay:  %+v\n coupled: %+v",
						k.App, v, name, got, want)
				}
			}
		}
	}
}

// TestReplayEquivalenceSeedsAndScale spot-checks that the invariant
// holds off the default (seed, scale) coordinate too.
func TestReplayEquivalenceSeedsAndScale(t *testing.T) {
	k, err := ByApp("Fasta")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.POWER5Baseline()
	cfg.UseBTAC = true
	for _, coord := range []struct {
		seed  int64
		scale int
	}{{2, 1}, {7, 1}, {1, 2}} {
		tr, err := CaptureTrace(k, Branchy, coord.seed, coord.scale, replayLimit)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReplayTrace(k, Branchy, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		run, err := k.NewRun(coord.seed, coord.scale)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SimulateObserved(k, Branchy, run, cfg, replayLimit, Observer{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("seed %d scale %d: replay diverges from coupled run", coord.seed, coord.scale)
		}
	}
}

// TestReplayFileRoundTrip replays from a trace that went through the
// durable file encoding, so the on-disk tier is covered by the same
// equivalence bar as the in-memory one.
func TestReplayFileRoundTrip(t *testing.T) {
	k, err := ByApp("Clustalw")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := CaptureTrace(k, Branchy, 1, 1, replayLimit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.EncodeFile()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.DecodeFile(b)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.POWER5Baseline()
	got, err := ReplayTrace(k, Branchy, decoded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := coupledReport(t, k, Branchy, cfg); got != want {
		t.Error("file-round-tripped trace diverges from coupled run")
	}
}

// TestReplayRejectsForeignProgram: a trace pinned to a different
// compilation must be rejected as corrupt, not replayed against the
// wrong static metadata.
func TestReplayRejectsForeignProgram(t *testing.T) {
	k, err := ByApp("Fasta")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := CaptureTrace(k, Branchy, 1, 1, replayLimit)
	if err != nil {
		t.Fatal(err)
	}
	tr.Meta.ProgHash = "0000000000000000"
	if _, err := ReplayTrace(k, Branchy, tr, cpu.POWER5Baseline()); !errors.Is(err, trace.ErrCorrupt) {
		t.Fatalf("foreign program hash accepted: %v", err)
	}
}

// TestReplayRejectsOutOfRangePC: a record whose PC exceeds the program
// must fail as corrupt instead of indexing out of bounds.
func TestReplayRejectsOutOfRangePC(t *testing.T) {
	k, err := ByApp("Fasta")
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompileCached(k, Branchy)
	if err != nil {
		t.Fatal(err)
	}
	var b trace.Builder
	b.Add(trace.Record{PC: len(c.Meta) + 5})
	bad := b.Finish(trace.Meta{ProgHash: c.Hash})
	if _, err := ReplayTrace(k, Branchy, bad, cpu.POWER5Baseline()); !errors.Is(err, trace.ErrCorrupt) {
		t.Fatalf("out-of-range PC accepted: %v", err)
	}
}

// TestTraceKeySharedAcrossTimingConfigs pins the cache-keying contract:
// the trace key must not move with anything the timing sweep varies,
// and must move with everything the dynamic stream depends on.
func TestTraceKeySharedAcrossTimingConfigs(t *testing.T) {
	k, err := ByApp("Fasta")
	if err != nil {
		t.Fatal(err)
	}
	key, err := TraceKey(k, Branchy, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Same cell, any timing config: the key is computed from
	// (kernel, variant, seed, scale) only, so the predictor x FXU x BTAC
	// factorial shares one capture per seed by construction.
	again, err := TraceKey(k, Branchy, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if key.Hash() != again.Hash() {
		t.Error("same cell produced different trace keys")
	}
	other, err := TraceKey(k, Combination, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if key.Hash() == other.Hash() {
		t.Error("different variants share a trace key")
	}
}

// TestCompileCachedMemoizes: the per-(kernel, variant) compilation is
// computed once and shared; ByApp returns fresh Kernel values, so the
// memo must key on names, not pointers.
func TestCompileCachedMemoizes(t *testing.T) {
	k1, err := ByApp("Hmmer")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ByApp("Hmmer")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := CompileCached(k1, Branchy)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CompileCached(k2, Branchy)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("same (kernel, variant) compiled twice")
	}
	if len(c1.Meta) != c1.Prog.Len() {
		t.Errorf("replay metadata covers %d of %d instructions", len(c1.Meta), c1.Prog.Len())
	}
}
