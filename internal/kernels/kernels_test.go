package kernels

import (
	"testing"

	"bioperf5/internal/bio/align"
	"bioperf5/internal/bio/clustal"
	"bioperf5/internal/bio/score"
	"bioperf5/internal/bio/seq"
	"bioperf5/internal/cpu"
	"bioperf5/internal/isa"
	"bioperf5/internal/machine"
	"bioperf5/internal/mem"
)

const stepLimit = 100_000_000

func allVariants() []Variant {
	return []Variant{Branchy, HandISel, HandMax, CompISel, CompMax, Combination}
}

// TestAllKernelsAllVariantsComputeCorrectly is the central integration
// test: every kernel, compiled under every predication strategy, must
// produce the same answer as the production Go implementation it
// models.
func TestAllKernelsAllVariantsComputeCorrectly(t *testing.T) {
	for _, k := range All() {
		for _, v := range allVariants() {
			for seed := int64(1); seed <= 2; seed++ {
				run, err := k.NewRun(seed, 1)
				if err != nil {
					t.Fatalf("%s/%s: NewRun: %v", k.App, v, err)
				}
				if _, err := Execute(k, v, run, stepLimit); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
			}
		}
	}
}

func TestVariantNamesAndPlans(t *testing.T) {
	seen := map[string]bool{}
	for _, v := range allVariants() {
		name := v.String()
		if seen[name] {
			t.Errorf("duplicate variant name %q", name)
		}
		seen[name] = true
		shape, tgt, opts := v.Plan()
		switch v {
		case Branchy:
			if tgt.HasMax || tgt.HasISel || opts.IfConvert {
				t.Error("branchy plan has extensions or if-conversion")
			}
		case HandMax:
			if shape != ShapeHandMax || !tgt.HasMax || opts.IfConvert {
				t.Errorf("hand max plan wrong: %v %v %v", shape, tgt, opts)
			}
		case CompISel:
			if shape != ShapeBranchy || !tgt.HasISel || !opts.IfConvert {
				t.Errorf("comp isel plan wrong: %v %v %v", shape, tgt, opts)
			}
		case Combination:
			if shape != ShapeHandMax || !tgt.HasMax || !tgt.HasISel || !opts.IfConvert {
				t.Errorf("combination plan wrong: %v %v %v", shape, tgt, opts)
			}
		}
	}
	if Branchy.NeedsExtensions() || !HandMax.NeedsExtensions() {
		t.Error("NeedsExtensions wrong")
	}
}

// countOps tallies generated machine instructions by opcode class.
func countProgOps(t *testing.T, k *Kernel, v Variant) (maxN, iselN, condBr int) {
	t.Helper()
	prog, _, err := k.Compile(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog.Code {
		switch {
		case prog.Code[i].Op == isa.OpMax:
			maxN++
		case prog.Code[i].Op == isa.OpIsel:
			iselN++
		case prog.Code[i].IsCondBranch():
			condBr++
		}
	}
	return
}

func TestBranchyContainsNoExtensions(t *testing.T) {
	for _, k := range All() {
		maxN, iselN, condBr := countProgOps(t, k, Branchy)
		if maxN != 0 || iselN != 0 {
			t.Errorf("%s: branchy build contains %d max, %d isel", k.App, maxN, iselN)
		}
		if condBr < 5 {
			t.Errorf("%s: branchy build has only %d conditional branches", k.App, condBr)
		}
	}
}

func TestHandVariantsUseTheirInstruction(t *testing.T) {
	for _, k := range All() {
		maxN, iselN, _ := countProgOps(t, k, HandMax)
		if maxN == 0 {
			t.Errorf("%s: hand-max build contains no max instructions", k.App)
		}
		if iselN != 0 {
			t.Errorf("%s: hand-max build contains isel", k.App)
		}
		maxN, iselN, _ = countProgOps(t, k, HandISel)
		if iselN == 0 {
			t.Errorf("%s: hand-isel build contains no isel", k.App)
		}
		if maxN != 0 {
			t.Errorf("%s: hand-isel build contains max", k.App)
		}
	}
}

func TestPredicationReducesBranches(t *testing.T) {
	for _, k := range All() {
		_, _, branchy := countProgOps(t, k, Branchy)
		_, _, handMax := countProgOps(t, k, HandMax)
		if handMax >= branchy {
			t.Errorf("%s: hand max has %d cond branches, branchy %d", k.App, handMax, branchy)
		}
	}
}

// TestCompilerLegalityStory verifies the hand-vs-compiler asymmetry the
// paper reports: on Fasta and Blast (hoisted loads) the compiler
// converts *more* hammocks than the hand edits; on Clustalw and Hmmer
// (array references inside the conditionals) it converts fewer.
func TestCompilerLegalityStory(t *testing.T) {
	type counts struct{ hand, comp int }
	sites := map[string]counts{}
	for _, k := range All() {
		_, _, hand := countProgOps(t, k, HandMax)
		_, _, comp := countProgOps(t, k, CompISel)
		sites[k.App] = counts{hand: hand, comp: comp}
	}
	// Compiler leaves fewer branches than hand on Fasta and Blast.
	for _, app := range []string{"Fasta", "Blast"} {
		if sites[app].comp >= sites[app].hand {
			t.Errorf("%s: compiler left %d cond branches, hand %d — compiler should win",
				app, sites[app].comp, sites[app].hand)
		}
	}
	// Hand leaves fewer branches than the compiler on Clustalw and Hmmer.
	for _, app := range []string{"Clustalw", "Hmmer"} {
		if sites[app].hand >= sites[app].comp {
			t.Errorf("%s: hand left %d cond branches, compiler %d — hand should win",
				app, sites[app].hand, sites[app].comp)
		}
	}
}

func TestHandMaxImprovesCyclesAndBoundsPath(t *testing.T) {
	// The physically meaningful claim (Figure 3): hand-inserted max
	// makes every kernel *faster in cycles*.  The dynamic path also
	// shrinks or stays within register-pressure noise (the max itself
	// removes instructions; occasionally an extra spill eats part of
	// the saving, as the paper observes for complex Blast code).
	cfg := cpu.POWER5Baseline()
	for _, k := range All() {
		run1, err := k.NewRun(3, 1)
		if err != nil {
			t.Fatal(err)
		}
		base, err := Simulate(k, Branchy, run1, cfg, stepLimit)
		if err != nil {
			t.Fatal(err)
		}
		run2, err := k.NewRun(3, 1)
		if err != nil {
			t.Fatal(err)
		}
		maxed, err := Simulate(k, HandMax, run2, cfg, stepLimit)
		if err != nil {
			t.Fatal(err)
		}
		if maxed.Cycles >= base.Cycles {
			t.Errorf("%s: hand max %d cycles, branchy %d", k.App, maxed.Cycles, base.Cycles)
		}
		if maxed.Instructions > base.Instructions+base.Instructions/5 {
			t.Errorf("%s: hand max path %d more than 20%% above branchy %d",
				k.App, maxed.Instructions, base.Instructions)
		}
	}
}

func TestIselNeverCheaperThanMax(t *testing.T) {
	// Section VI-A: the cmp required before each isel lengthens the
	// path relative to max (register-pressure noise can make them
	// equal, never shorter).
	for _, k := range All() {
		run1, err := k.NewRun(4, 1)
		if err != nil {
			t.Fatal(err)
		}
		nISel, err := Execute(k, HandISel, run1, stepLimit)
		if err != nil {
			t.Fatal(err)
		}
		run2, err := k.NewRun(4, 1)
		if err != nil {
			t.Fatal(err)
		}
		nMax, err := Execute(k, HandMax, run2, stepLimit)
		if err != nil {
			t.Fatal(err)
		}
		if nMax > nISel {
			t.Errorf("%s: hand max path (%d) longer than hand isel (%d)",
				k.App, nMax, nISel)
		}
	}
}

func TestForwardPassEndpointsMatchGo(t *testing.T) {
	k := ForwardPassKernel()
	g := seq.NewGenerator(seq.Protein, 7)
	anc := g.Random("anc", 55)
	a := g.Mutate(anc, "s1", 0.8, 0.02)
	b := g.Mutate(anc, "s2", 0.8, 0.02)
	m := mem.New()
	lay := mem.NewLayout(0x100000, 1<<24)
	args := marshalSW(m, lay, a, b, score.BLOSUM62, score.ClustalWGap)
	fp, err := clustal.ForwardPass(a, b, score.BLOSUM62, score.ClustalWGap)
	if err != nil {
		t.Fatal(err)
	}
	run := &Run{Mem: m, Args: args, Want: int64(fp.Score)}
	if _, err := Execute(k, Branchy, run, stepLimit); err != nil {
		t.Fatal(err)
	}
	if err := VerifySWEndpoints(run, int64(fp.EndA), int64(fp.EndB)); err != nil {
		t.Error(err)
	}
}

func TestRefSemiGappedBoundedBySmithWaterman(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 8)
	for trial := 0; trial < 5; trial++ {
		a := g.Random("a", 60)
		b := g.Mutate(a, "b", 0.6, 0.03)
		ref := RefSemiGapped(a, b, score.BLOSUM62, score.DefaultProteinGap, 38)
		sw, err := align.LocalScore(a, b, score.BLOSUM62, score.DefaultProteinGap)
		if err != nil {
			t.Fatal(err)
		}
		if ref > int64(sw) {
			t.Errorf("trial %d: semi-gapped %d exceeds Smith-Waterman %d", trial, ref, sw)
		}
		if ref < 0 {
			t.Errorf("trial %d: negative extension score %d", trial, ref)
		}
	}
}

func TestSimulateBaselineCounters(t *testing.T) {
	cfg := cpu.POWER5Baseline()
	for _, k := range All() {
		run, err := k.NewRun(5, 1)
		if err != nil {
			t.Fatal(err)
		}
		ctr, err := Simulate(k, Branchy, run, cfg, stepLimit)
		if err != nil {
			t.Fatal(err)
		}
		ipc := ctr.IPC()
		if ipc < 0.3 || ipc > 2.5 {
			t.Errorf("%s: baseline IPC %.2f out of plausible range", k.App, ipc)
		}
		if ctr.L1DMissRate() > 0.08 {
			t.Errorf("%s: L1D miss rate %.3f; Table I expects low single digits",
				k.App, ctr.L1DMissRate())
		}
		if ctr.DirectionShare() < 0.9 {
			t.Errorf("%s: direction share %.2f; Table I expects ~1", k.App, ctr.DirectionShare())
		}
		if ctr.BranchFraction() < 0.05 {
			t.Errorf("%s: branch fraction %.3f implausibly low", k.App, ctr.BranchFraction())
		}
	}
}

func TestSimulatePredicationImprovesIPCOverBaselineCycles(t *testing.T) {
	cfg := cpu.POWER5Baseline()
	for _, k := range All() {
		run1, err := k.NewRun(6, 1)
		if err != nil {
			t.Fatal(err)
		}
		base, err := Simulate(k, Branchy, run1, cfg, stepLimit)
		if err != nil {
			t.Fatal(err)
		}
		run2, err := k.NewRun(6, 1)
		if err != nil {
			t.Fatal(err)
		}
		maxed, err := Simulate(k, HandMax, run2, cfg, stepLimit)
		if err != nil {
			t.Fatal(err)
		}
		if maxed.Cycles >= base.Cycles {
			t.Errorf("%s: hand max (%d cycles) not faster than branchy (%d cycles)",
				k.App, maxed.Cycles, base.Cycles)
		}
		if maxed.DirMispredicts >= base.DirMispredicts {
			t.Errorf("%s: hand max mispredicts (%d) not below branchy (%d)",
				k.App, maxed.DirMispredicts, base.DirMispredicts)
		}
	}
}

func TestSimulateRejectsExtensionsOnStockCore(t *testing.T) {
	k := DropgswKernel()
	run, err := k.NewRun(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate force-enables extensions for non-branchy variants, so
	// exercise the guard through the cpu model directly.
	prog, _, err := k.Compile(HandMax)
	if err != nil {
		t.Fatal(err)
	}
	model := cpu.MustNew(cpu.POWER5Baseline()) // Extensions false
	mach := machine.New(prog, run.Mem)
	mach.Reset()
	if err := mach.SetPC(k.Name); err != nil {
		t.Fatal(err)
	}
	mach.SetReg(isa.SP, spInit)
	for i, a := range run.Args {
		mach.SetReg(argReg(i), a)
	}
	if _, err := model.Run(mach, stepLimit); err == nil {
		t.Error("stock core executed max instruction")
	}
}

func TestByApp(t *testing.T) {
	for _, app := range []string{"Blast", "Clustalw", "Fasta", "Hmmer"} {
		k, err := ByApp(app)
		if err != nil || k.App != app {
			t.Errorf("ByApp(%s) = %v, %v", app, k, err)
		}
	}
	if _, err := ByApp("nope"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestKernelIRVerifies(t *testing.T) {
	for _, k := range All() {
		for _, s := range []Shape{ShapeBranchy, ShapeHandMax, ShapeHandISel} {
			f, err := k.Build(s)
			if err != nil {
				t.Fatalf("%s shape %d: %v", k.App, s, err)
			}
			if err := f.Verify(); err != nil {
				t.Errorf("%s shape %d: %v", k.App, s, err)
			}
			if f.Name != k.Name {
				t.Errorf("%s: IR function named %q", k.App, f.Name)
			}
		}
	}
}

func TestScaleGrowsWork(t *testing.T) {
	k := ForwardPassKernel()
	r1, err := k.NewRun(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := Execute(k, Branchy, r1, stepLimit)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := k.NewRun(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Execute(k, Branchy, r2, stepLimit)
	if err != nil {
		t.Fatal(err)
	}
	if n2 < n1*2 {
		t.Errorf("scale 2 executed %d instructions, scale 1 %d", n2, n1)
	}
}
