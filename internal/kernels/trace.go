package kernels

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"

	"bioperf5/internal/compiler"
	"bioperf5/internal/cpu"
	"bioperf5/internal/isa"
	"bioperf5/internal/machine"
	"bioperf5/internal/trace"
)

// Compiled is one memoized compilation: the assembled program, the
// compiler's transformation statistics, the replay metadata derived
// from the program, and the program's content hash (which pins traces
// to the exact code they were captured from).  Compiled values are
// shared across callers and must be treated as read-only.
type Compiled struct {
	Prog  *isa.Program
	Stats *compiler.Stats
	Meta  []cpu.InsMeta
	Hash  string
}

var (
	compileMu    sync.Mutex
	compileCache = map[string]*Compiled{}
)

// CompileCached compiles the kernel for a variant, memoizing the result
// per (kernel, variant).  Compilation is deterministic, so every caller
// of the same cell shares one program, one stats block and one replay
// metadata table; errors are not cached and recompile on retry.
func CompileCached(k *Kernel, v Variant) (*Compiled, error) {
	key := k.Name + "\x00" + v.String()
	compileMu.Lock()
	c, ok := compileCache[key]
	compileMu.Unlock()
	if ok {
		return c, nil
	}

	prog, st, err := k.compile(v)
	if err != nil {
		return nil, err
	}
	h, err := hashProgram(prog)
	if err != nil {
		return nil, fmt.Errorf("kernels: %s/%s: %w", k.Name, v, err)
	}
	c = &Compiled{Prog: prog, Stats: st, Meta: cpu.ProgMeta(prog), Hash: h}

	compileMu.Lock()
	if prev, ok := compileCache[key]; ok {
		c = prev // a concurrent compile won; results are identical anyway
	} else {
		compileCache[key] = c
	}
	compileMu.Unlock()
	return c, nil
}

// hashProgram returns the hex SHA-256 of the program's machine code.
func hashProgram(p *isa.Program) (string, error) {
	words, err := p.EncodeAll()
	if err != nil {
		return "", err
	}
	buf := make([]byte, 4*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint32(buf[4*i:], w)
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:]), nil
}

// TraceKey returns the content address of the trace for one
// (kernel, variant, seed, scale) cell.  It compiles (cached) to obtain
// the program hash.  The key is predictor-free: direction predictors
// run live at replay time, so every predictor shares the cell's trace.
func TraceKey(k *Kernel, v Variant, seed int64, scale int) (trace.Key, error) {
	c, err := CompileCached(k, v)
	if err != nil {
		return trace.Key{}, err
	}
	return trace.Key{
		App:      k.App,
		Variant:  v.String(),
		Seed:     seed,
		Scale:    scale,
		ProgHash: c.Hash,
	}, nil
}

// CaptureTrace runs the kernel once on the functional machine — the
// same entry conventions as SimulateObserved — and records the
// annotated dynamic trace.  The functional result is verified before
// the trace is sealed, so a stored trace is always a trace of a
// correct execution.
func CaptureTrace(k *Kernel, v Variant, seed int64, scale int, limit uint64) (*trace.Trace, error) {
	c, err := CompileCached(k, v)
	if err != nil {
		return nil, err
	}
	run, err := k.NewRun(seed, scale)
	if err != nil {
		return nil, fmt.Errorf("kernels: %s/%s: %w", k.Name, v, err)
	}
	cap := trace.NewCapturer()
	mach := machine.New(c.Prog, run.Mem)
	mach.Reset()
	if err := mach.SetPC(k.Name); err != nil {
		return nil, fmt.Errorf("kernels: %s/%s: %w", k.Name, v, err)
	}
	mach.SetReg(spReg, spInit)
	for i, a := range run.Args {
		mach.SetReg(argReg(i), a)
	}
	var n uint64
	for !mach.Halted() {
		if n >= limit {
			return nil, fmt.Errorf("kernels: %s/%s: capture: %w", k.Name, v, machine.ErrLimit)
		}
		d, err := mach.Step()
		if err != nil {
			return nil, fmt.Errorf("kernels: %s/%s: capture: %w", k.Name, v, err)
		}
		cap.Observe(d)
		n++
	}
	got := int64(mach.Reg(argReg(0)))
	if got != run.Want {
		return nil, fmt.Errorf("kernels: %s/%s: computed %d, want %d", k.Name, v, got, run.Want)
	}
	return cap.Finish(trace.Meta{
		App:      k.App,
		Kernel:   k.Name,
		Variant:  v.String(),
		Seed:     seed,
		Scale:    scale,
		ProgHash: c.Hash,
		Result:   got,
	}), nil
}

// ReplayTrace feeds a stored trace through the decoupled timing model
// under cfg and returns the report.  The counters and stall stack are
// bit-identical to what SimulateObserved produces for the same cell —
// the replay-equivalence golden tests enforce it.  A trace whose
// program hash does not match the current compilation, or whose
// payload decodes inconsistently, is rejected as corrupt.
func ReplayTrace(k *Kernel, v Variant, t *trace.Trace, cfg cpu.Config) (cpu.Report, error) {
	c, err := CompileCached(k, v)
	if err != nil {
		return cpu.Report{}, err
	}
	if t.Meta.ProgHash != c.Hash {
		return cpu.Report{}, fmt.Errorf("%w: trace for program %.12s, compiled %.12s",
			trace.ErrCorrupt, t.Meta.ProgHash, c.Hash)
	}
	if v.NeedsExtensions() {
		cfg.Extensions = true
	}
	rep, err := cpu.NewReplayer(cfg, t.Meta.LoadLat)
	if err != nil {
		return cpu.Report{}, err
	}
	var ev cpu.ReplayEvent
	it := t.Iter()
	for it.Next() {
		rec := it.Rec()
		if rec.PC < 0 || rec.PC >= len(c.Meta) {
			return rep.Report(), fmt.Errorf("%w: PC %d outside program of %d instructions",
				trace.ErrCorrupt, rec.PC, len(c.Meta))
		}
		ev = cpu.ReplayEvent{
			Meta:      &c.Meta[rec.PC],
			PC:        rec.PC,
			Next:      rec.Next,
			Taken:     rec.Taken,
			MissLevel: rec.MissLevel,
		}
		if err := rep.Consume(&ev); err != nil {
			return rep.Report(), fmt.Errorf("kernels: %s/%s: %w", k.Name, v, err)
		}
	}
	if err := it.Err(); err != nil {
		return rep.Report(), err
	}
	return rep.Report(), nil
}
