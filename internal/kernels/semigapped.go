package kernels

import (
	"bioperf5/internal/bio/score"
	"bioperf5/internal/bio/seq"
	"bioperf5/internal/ir"
	"bioperf5/internal/mem"
)

// Blast's SEMI_G_ALIGN_EX: gapped extension of a seed with an X-drop
// cut-off.  The simulated kernel (and its Go mirror RefSemiGapped)
// processes full-width rows with a per-cell X-drop clamp and row-level
// early termination — the same arithmetic and abandonment behaviour as
// BLAST's dynamic band, with the band bookkeeping simplified so the
// kernel and reference agree bit-for-bit.
//
// Blast's source hoists its loads, so every hammock arm here is
// register-resident: the compiler can convert the X-drop clamp and the
// best-score tracking hammocks that the hand edits — which only
// replaced the obvious max statements — left branchy.  That is why the
// paper's compiler bars beat the hand bars on Blast (Section VI-A).

const (
	sgNegInf = int64(-1) << 40

	// Parameter block offsets.
	sgParOpen  = 0  // gap.Open + gap.Extend
	sgParExt   = 8  // gap.Extend
	sgParOpen0 = 16 // gap.Open
	sgParX     = 24 // X-drop threshold
)

// RefSemiGapped is the Go mirror of the simulated kernel.
func RefSemiGapped(a, b *seq.Seq, mat *score.Matrix, gap score.Gap, x int) int64 {
	n, m := a.Len(), b.Len()
	open := int64(gap.Open + gap.Extend)
	ext := int64(gap.Extend)
	open0 := int64(gap.Open)
	X := int64(x)

	h := make([]int64, m+1)
	e := make([]int64, m+1)
	var best int64
	h[0] = 0
	for j := 1; j <= m; j++ {
		v := -(open0 + int64(j)*ext)
		h[j] = v
		e[j] = v
	}
	for i := 1; i <= n; i++ {
		diag := h[0]
		h[0] = -(open0 + int64(i)*ext)
		if h[0] < best-X {
			h[0] = sgNegInf
		}
		f := sgNegInf
		rowBest := sgNegInf
		for j := 1; j <= m; j++ {
			ev := e[j] - ext
			if v := h[j] - open; v > ev {
				ev = v
			}
			fv := f - ext
			if v := h[j-1] - open; v > fv {
				fv = v
			}
			hv := diag + int64(mat.Score(a.Code[i-1], b.Code[j-1]))
			if ev > hv {
				hv = ev
			}
			if fv > hv {
				hv = fv
			}
			diag = h[j]
			if hv < best-X {
				hv = sgNegInf
			}
			if hv > best {
				best = hv
			}
			if hv > rowBest {
				rowBest = hv
			}
			h[j] = hv
			e[j] = ev
			f = fv
		}
		if rowBest < best-X {
			break
		}
	}
	return best
}

// buildSemiGapped emits the kernel.  Arguments are those of marshalSW:
// r3 aPtr, r4 aLen, r5 bPtr, r6 bLen, r7 matPtr, r8 hPtr, r9 ePtr,
// r10 parPtr (open, ext, open0, X).
func buildSemiGapped(shape Shape) (*ir.Func, error) {
	b := ir.NewBuilder("SemiGappedAlignEx", 8)
	e := &emitter{b: b, shape: shape}

	aPtr, aLen := b.Arg(0), b.Arg(1)
	bPtr, bLen := b.Arg(2), b.Arg(3)
	matPtr := b.Arg(4)
	hPtr, ePtr := b.Arg(5), b.Arg(6)
	parPtr := b.Arg(7)

	open := b.Load(ir.Mem64, parPtr, sgParOpen, true)
	ext := b.Load(ir.Mem64, parPtr, sgParExt, true)
	open0 := b.Load(ir.Mem64, parPtr, sgParOpen0, true)
	xdrop := b.Load(ir.Mem64, parPtr, sgParX, true)

	zero := b.Const(0)
	neg := b.Const(sgNegInf)
	three := b.Const(3)

	// Row 0.
	b.Store(ir.Mem64, hPtr, 0, zero)
	b.ForRange(b.Const(1), b.AddI(bLen, 1), 1, func(j ir.Reg) {
		off := b.Shl(j, three)
		v := b.Neg(b.Add(open0, b.Mul(j, ext)))
		b.StoreX(ir.Mem64, hPtr, off, v)
		b.StoreX(ir.Mem64, ePtr, off, v)
	})

	best := b.Var(zero)

	b.ForRange(b.Const(1), b.AddI(aLen, 1), 1, func(i ir.Reg) {
		ai := b.LoadX(ir.MemU8, aPtr, b.SubI(i, 1), true)
		rowBase := b.Add(matPtr, b.Shl(b.MulI(ai, 20), three))

		diag := b.Var(b.Load(ir.Mem64, hPtr, 0, true))
		h0 := b.Var(b.Neg(b.Add(open0, b.Mul(i, ext))))
		cut := b.Sub(best, xdrop)
		// if (h0 < best - X) h0 = -inf  — an X-drop clamp hammock.
		b.If(ir.CondOf(ir.CmpLT, h0, cut), func() {
			b.Assign(h0, neg)
		})
		b.Store(ir.Mem64, hPtr, 0, h0)
		f := b.Var(neg)
		rowBest := b.Var(neg)
		// h[j-1] of the current row, carried in a register the way
		// BLAST's C keeps its running scores in locals.
		hleft := b.Var(h0)

		b.ForRange(b.Const(1), b.AddI(bLen, 1), 1, func(j ir.Reg) {
			off := b.Shl(j, three)
			bsym := b.LoadX(ir.MemU8, bPtr, b.SubI(j, 1), true)
			msc := b.LoadX(ir.Mem64, rowBase, b.Shl(bsym, three), true)
			hj := b.LoadX(ir.Mem64, hPtr, off, true)
			ej := b.LoadX(ir.Mem64, ePtr, off, true)

			// The three max statements the hand edits targeted.
			ev := b.Var(b.Sub(ej, ext))
			e.maxInto(ev, b.Sub(hj, open))
			fv := b.Var(b.Sub(f, ext))
			e.maxInto(fv, b.Sub(hleft, open))
			hv := b.Var(b.Add(diag, msc))
			e.maxInto(hv, ev)
			e.maxInto(hv, fv)

			b.Assign(diag, hj)

			// X-drop clamp and best tracking: hammocks in every shape
			// (hand left them; the compiler converts them).
			innerCut := b.Sub(best, xdrop)
			b.If(ir.CondOf(ir.CmpLT, hv, innerCut), func() {
				b.Assign(hv, neg)
			})
			b.If(ir.CondOf(ir.CmpGT, hv, best), func() {
				b.Assign(best, hv)
			})
			b.If(ir.CondOf(ir.CmpGT, hv, rowBest), func() {
				b.Assign(rowBest, hv)
			})

			b.StoreX(ir.Mem64, hPtr, off, hv)
			b.StoreX(ir.Mem64, ePtr, off, ev)
			b.Assign(f, fv)
			b.Assign(hleft, hv)
		})

		// Row-level abandonment: if the whole row fell below the
		// X-drop window, terminate the outer loop early.
		rowCut := b.Sub(best, xdrop)
		b.If(ir.CondOf(ir.CmpLT, rowBest, rowCut), func() {
			b.Assign(i, aLen)
		})
	})

	b.Ret(best)
	return b.Finish()
}

// SemiGappedKernel is Blast's gapped-extension kernel over a seed pair
// drawn from a planted-homolog search scenario.
func SemiGappedKernel() *Kernel {
	gap := score.DefaultProteinGap
	const xdrop = 38
	return &Kernel{
		Name:  "SemiGappedAlignEx",
		App:   "Blast",
		Build: buildSemiGapped,
		NewRun: func(seed int64, scale int) (*Run, error) {
			if scale < 1 {
				scale = 1
			}
			g := seq.NewGenerator(seq.Protein, seed)
			a := g.Random("query", 90*scale)
			b := g.Mutate(a, "subject", 0.55, 0.04)
			m := mem.New()
			lay := mem.NewLayout(0x100000, 1<<24)
			args := marshalSW(m, lay, a, b, score.BLOSUM62, gap)
			parAddr := args[7]
			m.WriteInt(parAddr+sgParOpen0, 8, int64(gap.Open))
			m.WriteInt(parAddr+sgParX, 8, xdrop)
			want := RefSemiGapped(a, b, score.BLOSUM62, gap, xdrop)
			return &Run{Mem: m, Args: args, Want: want}, nil
		},
	}
}
