package harness

import (
	"fmt"
	"sort"

	"bioperf5/internal/bprof"
	"bioperf5/internal/core"
	"bioperf5/internal/cpu"
	"bioperf5/internal/kernels"
	"bioperf5/internal/workload"
)

// The counter-driven experiments (Table I/II, Figures 3-6) all follow
// the same two-phase shape: submit every (kernel, setup) cell to the
// scheduler first, then collect the futures in table order.  All cells
// of an experiment simulate concurrently (bounded by the engine's
// worker pool), and cells shared between experiments — the baseline
// column of Table I and Figures 4-6 — are computed once per engine.

// Fig1 reproduces Figure 1: the gprof-style function-wise breakout of
// the four applications running end-to-end in pure Go.
func Fig1(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	t := &Table{
		ID:      "fig1",
		Title:   "Function-wise breakout of Blast, Clustalw, Fasta, and Hmmer",
		Note:    "synthetic class-C-like inputs; top functions by inclusive time",
		Columns: []string{"application", "function", "%time", "calls"},
	}
	for _, app := range workload.Apps() {
		res, err := workload.Run(app, cfg.Scale, cfg.Seeds[0])
		if err != nil {
			return nil, err
		}
		for i, e := range res.Breakdown {
			if i >= 4 {
				break
			}
			name := app
			if i > 0 {
				name = ""
			}
			t.Rows = append(t.Rows, []string{name, e.Name, pct(e.Share),
				fmt.Sprintf("%d", e.Calls)})
		}
	}
	return t, nil
}

// Table1 reproduces Table I: baseline hardware counters per
// application — IPC, L1D miss rate, the share of mispredictions due to
// incorrect direction, and FXU completion stalls.
func Table1(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	t := &Table{
		ID:    "table1",
		Title: "Hardware counter data (POWER5 baseline, original binaries)",
		Columns: []string{"application", "IPC", "L1D miss rate",
			"% mispred. due to direction", "stalls due FXU"},
	}
	ks := kernels.All()
	cells := make([]*pending, len(ks))
	for i, k := range ks {
		cells[i] = cfg.submitCell(k, core.Baseline())
	}
	for i, k := range ks {
		ctr, err := cells[i].counters()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{k.App, f2(ctr.IPC()),
			pct(ctr.L1DMissRate()), pct(ctr.DirectionShare()),
			pct(ctr.StallFXUShare())})
	}
	return t, nil
}

// Fig2 reproduces Figure 2: Clustalw's interval IPC against interval
// branch misprediction rate over the course of a run.  Interval traces
// are one continuous simulation, so this experiment stays serial.
func Fig2(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	k, err := kernels.ByApp("Clustalw")
	if err != nil {
		return nil, err
	}
	scale := cfg.Scale * 2 // enough rows for the phase behaviour to show
	ivs, err := core.RunIntervals(k, core.Baseline(), cfg.Seeds[0], scale, 10_000)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig2",
		Title:   "Clustalw IPC and branch misprediction rate per 10k-instruction interval",
		Note:    "the series move inversely: mispredictions limit IPC (Section III)",
		Columns: []string{"instructions", "IPC", "branch mispredict rate"},
	}
	for _, iv := range ivs {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", iv.Instructions),
			f2(iv.IPC), pct(iv.MispredictRate)})
	}
	return t, nil
}

// submitVariant schedules one application kernel under one predication
// variant on the baseline core.
func submitVariant(k *kernels.Kernel, v kernels.Variant, cfg Config) *pending {
	return cfg.submitCell(k, core.Baseline().WithVariant(v))
}

// normIPC is the performance metric of Figures 3-6: instructions of the
// original binary divided by the cycles a configuration needs for the
// same work.  Comparing raw per-binary IPCs would reward variants that
// merely execute more instructions (isel's extra compares); normalizing
// to one work unit makes the ratio a true speedup, which is how the
// paper's improvement percentages behave.
func normIPC(baseWork cpu.Counters, ctr cpu.Counters) float64 {
	if ctr.Cycles == 0 {
		return 0
	}
	return float64(baseWork.Instructions) / float64(ctr.Cycles)
}

// Fig3 reproduces Figure 3: IPC under hand- and compiler-inserted max
// and isel, plus the hand-max + compiler-isel combination.
func Fig3(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	t := &Table{
		ID:      "fig3",
		Title:   "IPC with max and isel instructions",
		Note:    "IPC normalized to the original binary's instruction count (a speedup measure)",
		Columns: []string{"application", "variant", "IPC", "improvement"},
	}
	ks := kernels.All()
	vs := figure3Variants()
	baseCells := make([]*pending, len(ks))
	varCells := make([][]*pending, len(ks))
	for i, k := range ks {
		baseCells[i] = submitVariant(k, kernels.Branchy, cfg)
		varCells[i] = make([]*pending, len(vs))
		for j, v := range vs {
			varCells[i][j] = submitVariant(k, v, cfg)
		}
	}
	for i, k := range ks {
		base, err := baseCells[i].counters()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{k.App, kernels.Branchy.String(), f2(base.IPC()), "-"})
		for j, v := range vs {
			ctr, err := varCells[i][j].counters()
			if err != nil {
				return nil, err
			}
			ipc := normIPC(base, ctr)
			t.Rows = append(t.Rows, []string{"", v.String(), f2(ipc),
				pctDelta(ipc, base.IPC())})
		}
	}
	return t, nil
}

// Table2 reproduces Table II: branch statistics per application and
// predication variant.
func Table2(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	t := &Table{
		ID:    "table2",
		Title: "Branch performance with predicated instructions added",
		Columns: []string{"application", "variant", "% branches/instrs",
			"branch mispredict rate", "% taken brs/branches"},
	}
	order := []kernels.Variant{
		kernels.HandISel, kernels.CompISel,
		kernels.HandMax, kernels.CompMax,
		kernels.Branchy,
	}
	ks := kernels.All()
	cells := make([][]*pending, len(ks))
	for i, k := range ks {
		cells[i] = make([]*pending, len(order))
		for j, v := range order {
			cells[i][j] = submitVariant(k, v, cfg)
		}
	}
	for i, k := range ks {
		for j, v := range order {
			ctr, err := cells[i][j].counters()
			if err != nil {
				return nil, err
			}
			app := k.App
			if j > 0 {
				app = ""
			}
			t.Rows = append(t.Rows, []string{app, v.String(),
				pct(ctr.BranchFraction()), pct(ctr.BranchMispredictRate()),
				pct(ctr.TakenFraction())})
		}
	}
	return t, nil
}

// Fig4 reproduces Figure 4: the 8-entry BTAC added to the original
// POWER5 and to the predication-enhanced core, with the BTAC's own
// misprediction rate.
func Fig4(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	t := &Table{
		ID:    "fig4",
		Title: "Effect of adding an eight-entry BTAC",
		Columns: []string{"application", "core", "IPC", "IPC +BTAC",
			"gain", "BTAC mispredict rate"},
	}
	setups := []struct {
		name string
		base core.Setup
	}{
		{"original POWER5", core.Baseline()},
		{"with predication", core.Baseline().WithVariant(kernels.Combination)},
	}
	ks := kernels.All()
	type fig4Cells struct {
		baseWork    *pending
		plain, btac [2]*pending
	}
	cells := make([]fig4Cells, len(ks))
	for i, k := range ks {
		cells[i].baseWork = cfg.submitCell(k, core.Baseline())
		for j, s := range setups {
			cells[i].plain[j] = cfg.submitCell(k, s.base)
			cells[i].btac[j] = cfg.submitCell(k, s.base.WithBTAC())
		}
	}
	for i, k := range ks {
		baseWork, err := cells[i].baseWork.counters()
		if err != nil {
			return nil, err
		}
		for j, s := range setups {
			plain, err := cells[i].plain[j].counters()
			if err != nil {
				return nil, err
			}
			btac, err := cells[i].btac[j].counters()
			if err != nil {
				return nil, err
			}
			app := k.App
			if j > 0 {
				app = ""
			}
			p, q := normIPC(baseWork, plain), normIPC(baseWork, btac)
			t.Rows = append(t.Rows, []string{app, s.name, f2(p), f2(q),
				pctDelta(q, p), pct(btac.BTACMispredictRate())})
		}
		// Per-static-branch attribution of the aggregate BTAC mispredict
		// rate: the hottest wrong-target sites of the original binary
		// with the BTAC on, profiled on the first seed.
		hot, err := fig4HotBranches(cfg, k)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, hot...)
	}
	t.Note = "per-app sub-rows attribute the BTAC mispredict rate to the " +
		"hottest static branches (first seed)"
	return t, nil
}

// fig4HotBranches profiles one app under the original binary with the
// eight-entry BTAC and returns table rows for its wrongest-target
// static branches.
func fig4HotBranches(cfg Config, k *kernels.Kernel) ([][]string, error) {
	seeds := cfg.Seeds
	if len(seeds) > 1 {
		seeds = seeds[:1]
	}
	rep, err := RunBranches(Config{Scale: cfg.Scale, Seeds: seeds},
		k.App, core.Baseline().WithBTAC())
	if err != nil {
		return nil, err
	}
	sites := make([]bprof.Branch, 0, len(rep.Branches))
	for _, b := range rep.Branches {
		if b.BTACPredicts > 0 {
			sites = append(sites, b)
		}
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].BTACWrong != sites[j].BTACWrong {
			return sites[i].BTACWrong > sites[j].BTACWrong
		}
		if sites[i].BTACPredicts != sites[j].BTACPredicts {
			return sites[i].BTACPredicts > sites[j].BTACPredicts
		}
		return sites[i].PC < sites[j].PC
	})
	if len(sites) > 2 {
		sites = sites[:2]
	}
	var rows [][]string
	for _, b := range sites {
		rows = append(rows, []string{
			"", fmt.Sprintf("  pc %d (%s)", b.PC, b.Class),
			"", "", "", pct(b.BTACWrongRate()),
		})
	}
	return rows, nil
}

// Fig5 reproduces Figure 5: IPC as the number of fixed-point units
// grows from 2 to 4, for the original binaries and the combination
// predication build.
func Fig5(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	t := &Table{
		ID:      "fig5",
		Title:   "Effect of additional fixed-point units",
		Columns: []string{"application", "core", "2 FXU", "3 FXU", "4 FXU"},
	}
	bases := []struct {
		name string
		s    core.Setup
	}{
		{"original", core.Baseline()},
		{"combination", core.Baseline().WithVariant(kernels.Combination)},
	}
	fxus := []int{2, 3, 4}
	ks := kernels.All()
	type fig5Cells struct {
		baseWork *pending
		byFXU    [2][]*pending
	}
	cells := make([]fig5Cells, len(ks))
	for i, k := range ks {
		cells[i].baseWork = cfg.submitCell(k, core.Baseline())
		for j, b := range bases {
			for _, n := range fxus {
				cells[i].byFXU[j] = append(cells[i].byFXU[j], cfg.submitCell(k, b.s.WithFXUs(n)))
			}
		}
	}
	for i, k := range ks {
		baseWork, err := cells[i].baseWork.counters()
		if err != nil {
			return nil, err
		}
		for j, b := range bases {
			var ipcs []string
			for fi := range fxus {
				ctr, err := cells[i].byFXU[j][fi].counters()
				if err != nil {
					return nil, err
				}
				ipcs = append(ipcs, f2(normIPC(baseWork, ctr)))
			}
			app := k.App
			if j > 0 {
				app = ""
			}
			t.Rows = append(t.Rows, append([]string{app, b.name}, ipcs...))
		}
	}
	return t, nil
}

// Fig6 reproduces Figure 6: stacking predication, the BTAC and four
// FXUs, with the residual — the extra gain of the combination over the
// sum of the individual deltas.
func Fig6(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	t := &Table{
		ID:    "fig6",
		Title: "Combined predication + BTAC + 4 FXUs",
		Note:  "residual = IPC(all) - IPC(base) - sum of individual deltas",
		Columns: []string{"application", "base IPC", "+pred", "+BTAC", "+4 FXU",
			"all", "residual", "total gain"},
	}
	ks := kernels.All()
	type fig6Cells struct {
		base, pred, btac, fxu, all *pending
	}
	cells := make([]fig6Cells, len(ks))
	for i, k := range ks {
		cells[i] = fig6Cells{
			base: cfg.submitCell(k, core.Baseline()),
			pred: cfg.submitCell(k, core.Baseline().WithVariant(kernels.Combination)),
			btac: cfg.submitCell(k, core.Baseline().WithBTAC()),
			fxu:  cfg.submitCell(k, core.Baseline().WithFXUs(4)),
			all: cfg.submitCell(k,
				core.Baseline().WithVariant(kernels.Combination).WithBTAC().WithFXUs(4)),
		}
	}
	for i, k := range ks {
		base, err := cells[i].base.counters()
		if err != nil {
			return nil, err
		}
		pred, err := cells[i].pred.counters()
		if err != nil {
			return nil, err
		}
		btac, err := cells[i].btac.counters()
		if err != nil {
			return nil, err
		}
		fxu, err := cells[i].fxu.counters()
		if err != nil {
			return nil, err
		}
		all, err := cells[i].all.counters()
		if err != nil {
			return nil, err
		}
		b := base.IPC()
		dPred := normIPC(base, pred) - b
		dBTAC := normIPC(base, btac) - b
		dFXU := normIPC(base, fxu) - b
		allIPC := normIPC(base, all)
		residual := allIPC - b - dPred - dBTAC - dFXU
		t.Rows = append(t.Rows, []string{k.App, f2(b),
			fmt.Sprintf("%+.2f", dPred), fmt.Sprintf("%+.2f", dBTAC),
			fmt.Sprintf("%+.2f", dFXU), f2(allIPC),
			fmt.Sprintf("%+.2f", residual), pctDelta(allIPC, b)})
	}
	return t, nil
}
