package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"bioperf5/internal/branch"
	"bioperf5/internal/core"
	"bioperf5/internal/cpu"
	"bioperf5/internal/kernels"
	"bioperf5/internal/sched"
	"bioperf5/internal/telemetry"
	"bioperf5/internal/workload"
)

// SweepSpec is a full-factorial design-space sweep: every combination
// of FXU count x BTAC sizing x direction predictor x predication
// variant is simulated for every application, through the scheduler in
// Config.Engine (or the shared default engine).
type SweepSpec struct {
	FXUs        []int             // fixed-point unit counts (paper: 2..4)
	BTACEntries []int             // BTAC entry counts; 0 disables the BTAC
	Predictors  []string          // direction-predictor specs (see branch.ParseSpec)
	Variants    []kernels.Variant // predication variants
	Apps        []string          // application names
	Config      Config            // scale, seeds and the engine to run on
}

// DefaultSweepSpec is the paper's design space: FXUs 2-4, BTAC off and
// 8-entry, the POWER5-like tournament predictor, original vs
// combination predication, all four applications.
func DefaultSweepSpec() SweepSpec {
	return SweepSpec{
		FXUs:        []int{2, 3, 4},
		BTACEntries: []int{0, 8},
		Predictors:  []string{branch.DefaultSpec()},
		Variants:    []kernels.Variant{kernels.Branchy, kernels.Combination},
		Apps:        workload.Apps(),
		Config:      DefaultConfig(),
	}
}

func (sp SweepSpec) normalize() (SweepSpec, error) {
	if len(sp.FXUs) == 0 {
		sp.FXUs = []int{2, 3, 4}
	}
	if len(sp.BTACEntries) == 0 {
		sp.BTACEntries = []int{0, 8}
	}
	if len(sp.Predictors) == 0 {
		sp.Predictors = []string{branch.DefaultSpec()}
	}
	if len(sp.Variants) == 0 {
		sp.Variants = []kernels.Variant{kernels.Branchy, kernels.Combination}
	}
	if len(sp.Apps) == 0 {
		sp.Apps = workload.Apps()
	}
	for _, n := range sp.FXUs {
		if n < 1 {
			return sp, fmt.Errorf("sweep: FXU count %d out of range", n)
		}
	}
	for _, n := range sp.BTACEntries {
		if n < 0 {
			return sp, fmt.Errorf("sweep: BTAC entry count %d out of range", n)
		}
	}
	// Predictor specs are canonicalized (and deduplicated) up front:
	// the manifest spec, every plan cell and every job key carry one
	// spelling, so sweeps written with different (equivalent) spellings
	// produce byte-identical manifests and share cache entries.
	canon := make([]string, 0, len(sp.Predictors))
	seen := make(map[string]bool, len(sp.Predictors))
	for _, spec := range sp.Predictors {
		c, err := branch.CanonicalSpec(spec)
		if err != nil {
			return sp, fmt.Errorf("sweep: %w", err)
		}
		if seen[c] {
			continue
		}
		seen[c] = true
		canon = append(canon, c)
	}
	sp.Predictors = canon
	for _, app := range sp.Apps {
		if _, err := kernels.ByApp(app); err != nil {
			return sp, err
		}
	}
	sp.Config = sp.Config.normalize()
	return sp, nil
}

// SetupFor builds the core setup of one grid point: a predication
// variant, a fixed-point unit count, a BTAC sizing (0 disables the
// BTAC), and a direction-predictor spec ("" keeps the POWER5-like
// default).  It is the single canonicalization point shared by the
// sweep and the HTTP server, so a served cell and a swept cell with
// the same coordinates produce identical sched.Job keys and coalesce.
func SetupFor(v kernels.Variant, fxus, btacEntries int, predictor string) core.Setup {
	s := core.Baseline()
	s.Variant = v
	s.CPU.NumFXU = fxus
	if btacEntries > 0 {
		s.CPU.UseBTAC = true
		s.CPU.BTAC = branch.BTACConfig{Entries: btacEntries, Threshold: 1, MaxScore: 3}
	}
	s.CPU.Predictor = branch.CanonicalOrRaw(predictor)
	s.Name = fmt.Sprintf("%s + %d FXUs + BTAC %s + %s", v, fxus,
		btacLabel(btacEntries), s.CPU.Predictor)
	return s
}

func btacLabel(entries int) string {
	if entries <= 0 {
		return "off"
	}
	return strconv.Itoa(entries)
}

// Per-cell completion statuses of a SweepPoint.
const (
	StatusOK      = "ok"      // cell simulated (or cache-served) successfully
	StatusFailed  = "failed"  // cell failed after exhausting its retry budget
	StatusTimeout = "timeout" // cell exceeded the per-cell deadline on every attempt
	StatusSkipped = "skipped" // cell not evaluated (its app's baseline failed)
)

// SweepPoint is one evaluated grid cell of the manifest.  A degraded
// cell (Status != ok) keeps its identity fields and carries the error;
// its Stats/NormIPC stay zero.
type SweepPoint struct {
	App         string      `json:"app"`
	Variant     string      `json:"variant"`
	FXUs        int         `json:"fxus"`
	BTACEntries int         `json:"btac_entries"` // 0 = no BTAC
	Predictor   string      `json:"predictor"`    // canonical direction-predictor spec
	Key         string      `json:"key"`          // content hash of the cell (over its per-seed job hashes)
	Status      string      `json:"status"`       // ok|failed|timeout|skipped
	Error       string      `json:"error,omitempty"`
	Stats       KernelStats `json:"stats"`       // the PR-1 report schema, per seed + aggregate
	NormIPC     float64     `json:"norm_ipc"`    // baseline work / cycles (a speedup measure)
	Improvement float64     `json:"improvement"` // NormIPC vs the app's POWER5 baseline IPC, fractional
}

// SweepBest names the best configuration found for one application.
type SweepBest struct {
	App         string  `json:"app"`
	Variant     string  `json:"variant"`
	FXUs        int     `json:"fxus"`
	BTACEntries int     `json:"btac_entries"`
	Predictor   string  `json:"predictor"`
	NormIPC     float64 `json:"norm_ipc"`
	Improvement float64 `json:"improvement"`
}

// SweepManifest is the machine-readable outcome of a sweep.
type SweepManifest struct {
	Schema string `json:"schema"`
	Spec   struct {
		FXUs        []int    `json:"fxus"`
		BTACEntries []int    `json:"btac_entries"`
		Predictors  []string `json:"predictors"`
		Variants    []string `json:"variants"`
		Apps        []string `json:"apps"`
	} `json:"spec"`
	Config    Config       `json:"config"`
	Points    []SweepPoint `json:"points"`
	Best      []SweepBest  `json:"best"`     // per app, paper order; degraded cells never win
	Degraded  int          `json:"degraded"` // cells with Status != ok
	Scheduler sched.Stats  `json:"scheduler"`
	// Cluster records the distributed fabric's operational counters
	// when the manifest was produced by a coordinator.  Like Scheduler,
	// Profile and ElapsedMS it is operational state, stripped by every
	// determinism comparison.
	Cluster   *ClusterStats `json:"cluster,omitempty"`
	Profile   *SweepProfile `json:"profile,omitempty"` // timing; excluded from determinism comparisons
	ElapsedMS int64         `json:"elapsed_ms"`        // timing; excluded from determinism comparisons
}

// ClusterStats is the coordinator's view of one distributed sweep: how
// the fabric behaved, not what it computed.  It lives here (not in
// internal/cluster) because the manifest owns its own schema.
type ClusterStats struct {
	Workers      int    `json:"workers"`             // fleet size at start
	WorkersLost  uint64 `json:"workers_lost"`        // workers declared dead mid-run
	Cells        uint64 `json:"cells"`               // distinct content-addressed cells
	Dispatched   uint64 `json:"dispatched"`          // dispatch attempts (incl. steals and re-dispatches)
	Completed    uint64 `json:"completed"`           // cells that returned ok
	FailedCells  uint64 `json:"failed_cells"`        // cells that exhausted the fleet
	Stolen       uint64 `json:"stolen"`              // cells stolen from another shard's queue
	Redispatched uint64 `json:"redispatched"`        // straggler cells re-sent to a second worker
	Duplicates   uint64 `json:"duplicates"`          // late results dropped by first-result-wins
	Resumed      uint64 `json:"resumed"`             // cells served by the coordinator journal
	CacheHits    uint64 `json:"cache_hits"`          // cells served without a fresh functional capture
	Batches      uint64 `json:"batches"`             // batch requests issued
	Retries      uint64 `json:"http_retries"`        // HTTP dispatches repeated after 429/503/transport errors
	BreakerTrips uint64 `json:"breaker_trips"`       // circuit-breaker open transitions across the fleet
	Quarantined  uint64 `json:"quarantined_workers"` // flapping workers removed for good
}

// SweepProfile is the sweep's "where did the time go" attribution:
// one stage breakdown per evaluated point plus the aggregate over the
// whole run.  Like ElapsedMS it is measured wall time, so it lives
// outside Points and is stripped by every determinism comparison
// (manifests stay byte-identical across worker counts, trace policies
// and cache states on everything that is science).
type SweepProfile struct {
	// Points carries one breakdown per manifest point, in manifest
	// order (the Key matches the point's Key).
	Points []PointCost `json:"points,omitempty"`
	// Aggregate sums every point's breakdown.
	Aggregate telemetry.StageCost `json:"aggregate"`
	// Stages is the aggregate by stage, descending — the attribution
	// table behind the sweep summary and `bioperf5 spans`.
	Stages []telemetry.StageNS `json:"stages,omitempty"`
	// Dominant names the stage with the most aggregate time.
	Dominant string `json:"dominant,omitempty"`
}

// PointCost pairs one evaluated cell with its stage breakdown.
type PointCost struct {
	Key  string              `json:"key"`
	Cost telemetry.StageCost `json:"cost"`
}

// DegradedPoints returns the cells that did not complete, in manifest
// order.
func (m *SweepManifest) DegradedPoints() []SweepPoint {
	var out []SweepPoint
	for _, p := range m.Points {
		if p.Status != StatusOK {
			out = append(out, p)
		}
	}
	return out
}

// WriteJSON writes the manifest to w as indented JSON.
func (m *SweepManifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteJSONFile persists the manifest at path crash-safely: the JSON
// is written to a temp file in the same directory, fsync'd, and
// renamed into place, so a reader (or a resumed sweep) never observes
// a truncated manifest.
func (m *SweepManifest) WriteJSONFile(path string) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".manifest-*.json")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := m.WriteJSON(tmp); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best-effort directory fsync, like the disk cache
		d.Close()
	}
	return nil
}

// cellKey derives the content hash of a whole cell from its per-seed
// job hashes.
func cellKey(jobs []sched.Job) string {
	h := sha256.New()
	for _, j := range jobs {
		io.WriteString(h, j.Hash())
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// PlanCell is one planned unit of a sweep: an application baseline or
// a grid point, with its canonical setup and content key.  The plan
// fixes identity and order; execution — local engine or remote worker
// — only fills in results.
type PlanCell struct {
	App         string
	Variant     kernels.Variant
	FXUs        int
	BTACEntries int
	Predictor   string // canonical direction-predictor spec
	Baseline    bool   // an IPC-normalizing baseline, not a grid point
	Setup       core.Setup
	Key         string // content hash over the cell's per-seed job hashes
}

// SweepPlan is the deterministic expansion of a SweepSpec: the
// normalized spec, one baseline cell per application, and the full
// grid in manifest order.  It is what a distributed coordinator shards
// and what Manifest assembles, so a remote sweep and a local one agree
// on every key and every byte.
type SweepPlan struct {
	Spec      SweepSpec
	Baselines []PlanCell // one per application, spec order
	Points    []PlanCell // the grid, manifest order
}

// PlanSweep validates and expands a sweep specification.
func PlanSweep(sp SweepSpec) (*SweepPlan, error) {
	sp, err := sp.normalize()
	if err != nil {
		return nil, err
	}
	plan := &SweepPlan{Spec: sp}
	for _, app := range sp.Apps {
		s := core.Baseline()
		plan.Baselines = append(plan.Baselines, PlanCell{
			App: app, Variant: s.Variant,
			FXUs: s.CPU.NumFXU, BTACEntries: 0,
			Predictor: branch.CanonicalOrRaw(s.CPU.Predictor),
			Baseline:  true, Setup: s,
			Key: cellKey(cellJobs(app, s, sp.Config)),
		})
	}
	for _, app := range sp.Apps {
		for _, v := range sp.Variants {
			for _, fxus := range sp.FXUs {
				for _, entries := range sp.BTACEntries {
					for _, pred := range sp.Predictors {
						s := SetupFor(v, fxus, entries, pred)
						plan.Points = append(plan.Points, PlanCell{
							App: app, Variant: v, FXUs: fxus, BTACEntries: entries,
							Predictor: pred,
							Setup:     s,
							Key:       cellKey(cellJobs(app, s, sp.Config)),
						})
					}
				}
			}
		}
	}
	return plan, nil
}

// cellJobs expands one cell into its per-seed jobs, the unit the
// scheduler hashes.  Trace policy is execution strategy, not identity,
// so it is deliberately left out.
func cellJobs(app string, s core.Setup, cfg Config) []sched.Job {
	var jobs []sched.Job
	for _, seed := range cfg.Seeds {
		jobs = append(jobs, sched.Job{
			App: app, Variant: s.Variant, CPU: s.CPU,
			Seed: seed, Scale: cfg.Scale,
		})
	}
	return jobs
}

// CellResult is the outcome of one planned cell, however it was
// executed.  Detail carries the per-seed reports (nil unless Status is
// ok); Cost is the cell's stage breakdown under exactly-once
// attribution — a coalesced or deduplicated cell reports zero.
type CellResult struct {
	Detail *core.Detail
	Cost   telemetry.StageCost
	Status string // StatusOK, StatusFailed or StatusTimeout
	Err    string // failure detail when Status != StatusOK
}

// Manifest assembles the sweep manifest from per-cell outcomes in plan
// order: baselines[i] answers plan.Baselines[i] and points[i] answers
// plan.Points[i].  Status mapping, skipped-app propagation, IPC
// normalization, best-per-app selection and the stage profile all live
// here — the single assembly path behind both the local RunSweep and
// the cluster coordinator, which is what makes a distributed manifest
// byte-identical to a single-node one.  Scheduler, Cluster and
// ElapsedMS are left for the caller.
func (plan *SweepPlan) Manifest(baselines, points []CellResult) *SweepManifest {
	sp := plan.Spec
	m := &SweepManifest{Schema: SchemaVersion, Config: sp.Config}
	m.Spec.FXUs = sp.FXUs
	m.Spec.BTACEntries = sp.BTACEntries
	m.Spec.Predictors = sp.Predictors
	for _, v := range sp.Variants {
		m.Spec.Variants = append(m.Spec.Variants, v.String())
	}
	m.Spec.Apps = sp.Apps

	// A failed cell degrades that cell (or, for a baseline, skips its
	// application's cells) instead of aborting the sweep: the manifest
	// reports exactly which cells are missing, and a re-run against the
	// same cache retries only those.
	profile := &SweepProfile{}
	baseWork := make(map[string]cpu.Counters, len(sp.Apps))
	baseErr := make(map[string]string, len(sp.Apps))
	for i, pc := range plan.Baselines {
		r := baselines[i]
		if r.Status != StatusOK || r.Detail == nil {
			baseErr[pc.App] = fmt.Sprintf("baseline failed: %s", r.Err)
			continue
		}
		baseWork[pc.App] = r.Detail.Aggregate.Counters
		// Baseline cells are real work too; they count toward the
		// aggregate attribution even though they are not grid points.
		profile.Aggregate.Add(r.Cost)
	}
	best := make(map[string]*SweepBest, len(sp.Apps))
	for i, pc := range plan.Points {
		r := points[i]
		p := SweepPoint{
			App:         pc.App,
			Variant:     pc.Variant.String(),
			FXUs:        pc.FXUs,
			BTACEntries: pc.BTACEntries,
			Predictor:   pc.Predictor,
			Key:         pc.Key,
		}
		if msg, degraded := baseErr[p.App]; degraded {
			p.Status = StatusSkipped
			p.Error = msg
			m.Points = append(m.Points, p)
			m.Degraded++
			continue
		}
		if r.Status != StatusOK || r.Detail == nil {
			p.Status = r.Status
			if p.Status == "" || p.Status == StatusOK {
				p.Status = StatusFailed
			}
			p.Error = r.Err
			m.Points = append(m.Points, p)
			m.Degraded++
			continue
		}
		k, _ := kernels.ByApp(pc.App)
		p.Status = StatusOK
		profile.Points = append(profile.Points, PointCost{Key: p.Key, Cost: r.Cost})
		profile.Aggregate.Add(r.Cost)
		p.Stats = packKernelStats(k, pc.Setup, r.Detail)
		base := baseWork[p.App]
		p.NormIPC = normIPC(base, r.Detail.Aggregate.Counters)
		if ipc := base.IPC(); ipc > 0 {
			p.Improvement = (p.NormIPC - ipc) / ipc
		}
		m.Points = append(m.Points, p)
		if b := best[p.App]; b == nil || p.NormIPC > b.NormIPC {
			best[p.App] = &SweepBest{
				App: p.App, Variant: p.Variant, FXUs: p.FXUs,
				BTACEntries: p.BTACEntries, Predictor: p.Predictor,
				NormIPC: p.NormIPC, Improvement: p.Improvement,
			}
		}
	}
	for _, app := range sp.Apps {
		if b := best[app]; b != nil {
			m.Best = append(m.Best, *b)
		}
	}
	profile.Stages = profile.Aggregate.Stages()
	profile.Dominant = profile.Aggregate.Dominant()
	m.Profile = profile
	return m
}

// RunSweep evaluates the full grid locally.  Every cell — plus each
// application's POWER5 baseline, used to normalize IPC — is submitted
// to the scheduler up front, so the whole sweep is bounded by the
// worker pool, and grid points that coincide with the baseline (or
// with each other across re-runs) are served from the cache.
func RunSweep(sp SweepSpec) (*SweepManifest, error) {
	plan, err := PlanSweep(sp)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	cfg := plan.Spec.Config
	// The whole-sweep root span: with a tracer in the context every
	// cell's spans nest under it, so the exported trace renders the
	// sweep as one tree.
	sweepCtx, sweepSpan := telemetry.StartSpan(cfg.Context, telemetry.StageSweep)
	if sweepSpan != nil {
		cfg.Context = sweepCtx
		defer sweepSpan.End()
	}

	// Submit phase: baselines first (they normalize every point), then
	// the grid in manifest order.
	submit := func(cells []PlanCell) []*pending {
		out := make([]*pending, len(cells))
		for i, pc := range cells {
			k, _ := kernels.ByApp(pc.App)
			out[i] = cfg.submitCell(k, pc.Setup)
		}
		return out
	}
	basePend := submit(plan.Baselines)
	pointPend := submit(plan.Points)

	// Collect phase, in submission order.
	collect := func(pends []*pending) []CellResult {
		out := make([]CellResult, len(pends))
		for i, cell := range pends {
			det, err := cell.detail()
			if err != nil {
				st := StatusFailed
				if errors.Is(err, sched.ErrCellTimeout) {
					st = StatusTimeout
				}
				out[i] = CellResult{Status: st, Err: err.Error()}
				continue
			}
			out[i] = CellResult{Detail: det, Cost: cell.cost(), Status: StatusOK}
		}
		return out
	}
	m := plan.Manifest(collect(basePend), collect(pointPend))
	m.Scheduler = cfg.engine().Stats()
	m.ElapsedMS = time.Since(start).Milliseconds()
	return m, nil
}

// ProfileTable renders the aggregate stage attribution: where the
// sweep's simulation time went, descending, with each stage's share.
// Nil when the manifest predates profiles or recorded no time.
func (m *SweepManifest) ProfileTable() *Table {
	if m.Profile == nil || m.Profile.Aggregate.IsZero() {
		return nil
	}
	t := &Table{
		ID:    "sweep-profile",
		Title: "Sweep stage profile: where the simulation time went",
		Note: fmt.Sprintf("summed across %d points + baselines; dominant stage: %s",
			len(m.Profile.Points), m.Profile.Dominant),
		Columns: []string{"stage", "time", "share"},
	}
	var sum int64
	for _, s := range m.Profile.Stages {
		sum += s.NS
	}
	for _, s := range m.Profile.Stages {
		if s.NS == 0 {
			continue
		}
		share := float64(s.NS) / float64(sum) * 100
		t.Rows = append(t.Rows, []string{s.Name,
			time.Duration(s.NS).Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f%%", share)})
	}
	return t
}

// Summary renders the best-configuration-per-application table plus
// one row per grid point.
func (m *SweepManifest) Summary() *Table {
	t := &Table{
		ID:    "sweep",
		Title: "Design-space sweep: best configuration per application",
		Note: fmt.Sprintf("%d points; norm. IPC is baseline work / cycles (a speedup measure)",
			len(m.Points)),
		Columns: []string{"application", "variant", "FXUs", "BTAC", "predictor", "norm. IPC", "improvement"},
	}
	for _, b := range m.Best {
		t.Rows = append(t.Rows, []string{b.App, b.Variant,
			strconv.Itoa(b.FXUs), btacLabel(b.BTACEntries), predLabel(b.Predictor),
			f2(b.NormIPC), pctDelta(1+b.Improvement, 1)})
	}
	return t
}

// Grid renders every point of the manifest as a table, grouped by
// application in manifest order.
func (m *SweepManifest) Grid() *Table {
	t := &Table{
		ID:      "sweep-grid",
		Title:   "Design-space sweep: all points",
		Columns: []string{"application", "variant", "FXUs", "BTAC", "predictor", "norm. IPC", "improvement"},
	}
	prev := ""
	for _, p := range m.Points {
		app := p.App
		if app == prev {
			app = ""
		} else {
			prev = p.App
		}
		ipc, delta := f2(p.NormIPC), pctDelta(1+p.Improvement, 1)
		if p.Status != StatusOK {
			ipc, delta = p.Status, "-"
		}
		t.Rows = append(t.Rows, []string{app, p.Variant,
			strconv.Itoa(p.FXUs), btacLabel(p.BTACEntries), predLabel(p.Predictor), ipc, delta})
	}
	return t
}

// predLabel shortens a canonical predictor spec to its kind for table
// cells ("tage:tables=4,bits=10,..." -> "tage").  The full spec stays
// in the JSON manifest; sweeps comparing two parameterizations of one
// kind should read the manifest, not the table.
func predLabel(spec string) string {
	if spec == "" {
		return "default"
	}
	kind, _, _ := strings.Cut(spec, ":")
	return kind
}
