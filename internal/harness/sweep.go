package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"bioperf5/internal/branch"
	"bioperf5/internal/core"
	"bioperf5/internal/cpu"
	"bioperf5/internal/kernels"
	"bioperf5/internal/sched"
	"bioperf5/internal/workload"
)

// SweepSpec is a full-factorial design-space sweep: every combination
// of FXU count x BTAC sizing x predication variant is simulated for
// every application, through the scheduler in Config.Engine (or the
// shared default engine).
type SweepSpec struct {
	FXUs        []int             // fixed-point unit counts (paper: 2..4)
	BTACEntries []int             // BTAC entry counts; 0 disables the BTAC
	Variants    []kernels.Variant // predication variants
	Apps        []string          // application names
	Config      Config            // scale, seeds and the engine to run on
}

// DefaultSweepSpec is the paper's design space: FXUs 2-4, BTAC off and
// 8-entry, original vs combination predication, all four applications.
func DefaultSweepSpec() SweepSpec {
	return SweepSpec{
		FXUs:        []int{2, 3, 4},
		BTACEntries: []int{0, 8},
		Variants:    []kernels.Variant{kernels.Branchy, kernels.Combination},
		Apps:        workload.Apps(),
		Config:      DefaultConfig(),
	}
}

func (sp SweepSpec) normalize() (SweepSpec, error) {
	if len(sp.FXUs) == 0 {
		sp.FXUs = []int{2, 3, 4}
	}
	if len(sp.BTACEntries) == 0 {
		sp.BTACEntries = []int{0, 8}
	}
	if len(sp.Variants) == 0 {
		sp.Variants = []kernels.Variant{kernels.Branchy, kernels.Combination}
	}
	if len(sp.Apps) == 0 {
		sp.Apps = workload.Apps()
	}
	for _, n := range sp.FXUs {
		if n < 1 {
			return sp, fmt.Errorf("sweep: FXU count %d out of range", n)
		}
	}
	for _, n := range sp.BTACEntries {
		if n < 0 {
			return sp, fmt.Errorf("sweep: BTAC entry count %d out of range", n)
		}
	}
	for _, app := range sp.Apps {
		if _, err := kernels.ByApp(app); err != nil {
			return sp, err
		}
	}
	sp.Config = sp.Config.normalize()
	return sp, nil
}

// setupFor builds the core setup of one grid point.
func setupFor(v kernels.Variant, fxus, btacEntries int) core.Setup {
	s := core.Baseline()
	s.Variant = v
	s.CPU.NumFXU = fxus
	if btacEntries > 0 {
		s.CPU.UseBTAC = true
		s.CPU.BTAC = branch.BTACConfig{Entries: btacEntries, Threshold: 1, MaxScore: 3}
	}
	s.Name = fmt.Sprintf("%s + %d FXUs + BTAC %s", v, fxus, btacLabel(btacEntries))
	return s
}

func btacLabel(entries int) string {
	if entries <= 0 {
		return "off"
	}
	return strconv.Itoa(entries)
}

// SweepPoint is one evaluated grid cell of the manifest.
type SweepPoint struct {
	App         string      `json:"app"`
	Variant     string      `json:"variant"`
	FXUs        int         `json:"fxus"`
	BTACEntries int         `json:"btac_entries"` // 0 = no BTAC
	Key         string      `json:"key"`          // content hash of the cell (over its per-seed job hashes)
	Stats       KernelStats `json:"stats"`        // the PR-1 report schema, per seed + aggregate
	NormIPC     float64     `json:"norm_ipc"`     // baseline work / cycles (a speedup measure)
	Improvement float64     `json:"improvement"`  // NormIPC vs the app's POWER5 baseline IPC, fractional
}

// SweepBest names the best configuration found for one application.
type SweepBest struct {
	App         string  `json:"app"`
	Variant     string  `json:"variant"`
	FXUs        int     `json:"fxus"`
	BTACEntries int     `json:"btac_entries"`
	NormIPC     float64 `json:"norm_ipc"`
	Improvement float64 `json:"improvement"`
}

// SweepManifest is the machine-readable outcome of a sweep.
type SweepManifest struct {
	Spec struct {
		FXUs        []int    `json:"fxus"`
		BTACEntries []int    `json:"btac_entries"`
		Variants    []string `json:"variants"`
		Apps        []string `json:"apps"`
	} `json:"spec"`
	Config    Config       `json:"config"`
	Points    []SweepPoint `json:"points"`
	Best      []SweepBest  `json:"best"` // per app, paper order
	Scheduler sched.Stats  `json:"scheduler"`
	ElapsedMS int64        `json:"elapsed_ms"` // timing; excluded from determinism comparisons
}

// WriteJSON writes the manifest to w as indented JSON.
func (m *SweepManifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// cellKey derives the content hash of a whole cell from its per-seed
// job hashes.
func cellKey(jobs []sched.Job) string {
	h := sha256.New()
	for _, j := range jobs {
		io.WriteString(h, j.Hash())
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RunSweep evaluates the full grid.  Every cell — plus each
// application's POWER5 baseline, used to normalize IPC — is submitted
// to the scheduler up front, so the whole sweep is bounded by the
// worker pool, and grid points that coincide with the baseline (or
// with each other across re-runs) are served from the cache.
func RunSweep(sp SweepSpec) (*SweepManifest, error) {
	sp, err := sp.normalize()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	cfg := sp.Config

	m := &SweepManifest{Config: cfg}
	m.Spec.FXUs = sp.FXUs
	m.Spec.BTACEntries = sp.BTACEntries
	for _, v := range sp.Variants {
		m.Spec.Variants = append(m.Spec.Variants, v.String())
	}
	m.Spec.Apps = sp.Apps

	// Submit phase: baselines first (they normalize every point), then
	// the grid in manifest order.
	type pendingPoint struct {
		point SweepPoint
		setup core.Setup
		cell  *pending
	}
	baselines := make(map[string]*pending, len(sp.Apps))
	for _, app := range sp.Apps {
		k, _ := kernels.ByApp(app)
		baselines[app] = cfg.submitCell(k, core.Baseline())
	}
	var pendings []pendingPoint
	for _, app := range sp.Apps {
		k, _ := kernels.ByApp(app)
		for _, v := range sp.Variants {
			for _, fxus := range sp.FXUs {
				for _, entries := range sp.BTACEntries {
					s := setupFor(v, fxus, entries)
					var jobs []sched.Job
					for _, seed := range cfg.Seeds {
						jobs = append(jobs, sched.Job{
							App: app, Variant: v, CPU: s.CPU,
							Seed: seed, Scale: cfg.Scale,
						})
					}
					pendings = append(pendings, pendingPoint{
						point: SweepPoint{
							App:         app,
							Variant:     v.String(),
							FXUs:        fxus,
							BTACEntries: entries,
							Key:         cellKey(jobs),
						},
						setup: s,
						cell:  cfg.submitCell(k, s),
					})
				}
			}
		}
	}

	// Collect phase, in submission order.
	baseWork := make(map[string]cpu.Counters, len(sp.Apps))
	for _, app := range sp.Apps {
		ctr, err := baselines[app].counters()
		if err != nil {
			return nil, fmt.Errorf("sweep: %s baseline: %w", app, err)
		}
		baseWork[app] = ctr
	}
	best := make(map[string]*SweepBest, len(sp.Apps))
	for _, pp := range pendings {
		det, err := pp.cell.detail()
		if err != nil {
			return nil, fmt.Errorf("sweep: %s %s: %w", pp.point.App, pp.setup.Name, err)
		}
		k, _ := kernels.ByApp(pp.point.App)
		p := pp.point
		p.Stats = packKernelStats(k, pp.setup, det)
		base := baseWork[p.App]
		p.NormIPC = normIPC(base, det.Aggregate.Counters)
		if ipc := base.IPC(); ipc > 0 {
			p.Improvement = (p.NormIPC - ipc) / ipc
		}
		m.Points = append(m.Points, p)
		if b := best[p.App]; b == nil || p.NormIPC > b.NormIPC {
			best[p.App] = &SweepBest{
				App: p.App, Variant: p.Variant, FXUs: p.FXUs,
				BTACEntries: p.BTACEntries, NormIPC: p.NormIPC,
				Improvement: p.Improvement,
			}
		}
	}
	for _, app := range sp.Apps {
		if b := best[app]; b != nil {
			m.Best = append(m.Best, *b)
		}
	}
	m.Scheduler = cfg.engine().Stats()
	m.ElapsedMS = time.Since(start).Milliseconds()
	return m, nil
}

// Summary renders the best-configuration-per-application table plus
// one row per grid point.
func (m *SweepManifest) Summary() *Table {
	t := &Table{
		ID:    "sweep",
		Title: "Design-space sweep: best configuration per application",
		Note: fmt.Sprintf("%d points; norm. IPC is baseline work / cycles (a speedup measure)",
			len(m.Points)),
		Columns: []string{"application", "variant", "FXUs", "BTAC", "norm. IPC", "improvement"},
	}
	for _, b := range m.Best {
		t.Rows = append(t.Rows, []string{b.App, b.Variant,
			strconv.Itoa(b.FXUs), btacLabel(b.BTACEntries),
			f2(b.NormIPC), pctDelta(1+b.Improvement, 1)})
	}
	return t
}

// Grid renders every point of the manifest as a table, grouped by
// application in manifest order.
func (m *SweepManifest) Grid() *Table {
	t := &Table{
		ID:      "sweep-grid",
		Title:   "Design-space sweep: all points",
		Columns: []string{"application", "variant", "FXUs", "BTAC", "norm. IPC", "improvement"},
	}
	prev := ""
	for _, p := range m.Points {
		app := p.App
		if app == prev {
			app = ""
		} else {
			prev = p.App
		}
		t.Rows = append(t.Rows, []string{app, p.Variant,
			strconv.Itoa(p.FXUs), btacLabel(p.BTACEntries),
			f2(p.NormIPC), pctDelta(1+p.Improvement, 1)})
	}
	return t
}
