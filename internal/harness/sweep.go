package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"bioperf5/internal/branch"
	"bioperf5/internal/core"
	"bioperf5/internal/cpu"
	"bioperf5/internal/kernels"
	"bioperf5/internal/sched"
	"bioperf5/internal/telemetry"
	"bioperf5/internal/workload"
)

// SweepSpec is a full-factorial design-space sweep: every combination
// of FXU count x BTAC sizing x predication variant is simulated for
// every application, through the scheduler in Config.Engine (or the
// shared default engine).
type SweepSpec struct {
	FXUs        []int             // fixed-point unit counts (paper: 2..4)
	BTACEntries []int             // BTAC entry counts; 0 disables the BTAC
	Variants    []kernels.Variant // predication variants
	Apps        []string          // application names
	Config      Config            // scale, seeds and the engine to run on
}

// DefaultSweepSpec is the paper's design space: FXUs 2-4, BTAC off and
// 8-entry, original vs combination predication, all four applications.
func DefaultSweepSpec() SweepSpec {
	return SweepSpec{
		FXUs:        []int{2, 3, 4},
		BTACEntries: []int{0, 8},
		Variants:    []kernels.Variant{kernels.Branchy, kernels.Combination},
		Apps:        workload.Apps(),
		Config:      DefaultConfig(),
	}
}

func (sp SweepSpec) normalize() (SweepSpec, error) {
	if len(sp.FXUs) == 0 {
		sp.FXUs = []int{2, 3, 4}
	}
	if len(sp.BTACEntries) == 0 {
		sp.BTACEntries = []int{0, 8}
	}
	if len(sp.Variants) == 0 {
		sp.Variants = []kernels.Variant{kernels.Branchy, kernels.Combination}
	}
	if len(sp.Apps) == 0 {
		sp.Apps = workload.Apps()
	}
	for _, n := range sp.FXUs {
		if n < 1 {
			return sp, fmt.Errorf("sweep: FXU count %d out of range", n)
		}
	}
	for _, n := range sp.BTACEntries {
		if n < 0 {
			return sp, fmt.Errorf("sweep: BTAC entry count %d out of range", n)
		}
	}
	for _, app := range sp.Apps {
		if _, err := kernels.ByApp(app); err != nil {
			return sp, err
		}
	}
	sp.Config = sp.Config.normalize()
	return sp, nil
}

// SetupFor builds the core setup of one grid point: a predication
// variant, a fixed-point unit count, and a BTAC sizing (0 disables the
// BTAC).  It is the single canonicalization point shared by the sweep
// and the HTTP server, so a served cell and a swept cell with the same
// coordinates produce identical sched.Job keys and coalesce.
func SetupFor(v kernels.Variant, fxus, btacEntries int) core.Setup {
	s := core.Baseline()
	s.Variant = v
	s.CPU.NumFXU = fxus
	if btacEntries > 0 {
		s.CPU.UseBTAC = true
		s.CPU.BTAC = branch.BTACConfig{Entries: btacEntries, Threshold: 1, MaxScore: 3}
	}
	s.Name = fmt.Sprintf("%s + %d FXUs + BTAC %s", v, fxus, btacLabel(btacEntries))
	return s
}

func btacLabel(entries int) string {
	if entries <= 0 {
		return "off"
	}
	return strconv.Itoa(entries)
}

// Per-cell completion statuses of a SweepPoint.
const (
	StatusOK      = "ok"      // cell simulated (or cache-served) successfully
	StatusFailed  = "failed"  // cell failed after exhausting its retry budget
	StatusTimeout = "timeout" // cell exceeded the per-cell deadline on every attempt
	StatusSkipped = "skipped" // cell not evaluated (its app's baseline failed)
)

// SweepPoint is one evaluated grid cell of the manifest.  A degraded
// cell (Status != ok) keeps its identity fields and carries the error;
// its Stats/NormIPC stay zero.
type SweepPoint struct {
	App         string      `json:"app"`
	Variant     string      `json:"variant"`
	FXUs        int         `json:"fxus"`
	BTACEntries int         `json:"btac_entries"` // 0 = no BTAC
	Key         string      `json:"key"`          // content hash of the cell (over its per-seed job hashes)
	Status      string      `json:"status"`       // ok|failed|timeout|skipped
	Error       string      `json:"error,omitempty"`
	Stats       KernelStats `json:"stats"`       // the PR-1 report schema, per seed + aggregate
	NormIPC     float64     `json:"norm_ipc"`    // baseline work / cycles (a speedup measure)
	Improvement float64     `json:"improvement"` // NormIPC vs the app's POWER5 baseline IPC, fractional
}

// SweepBest names the best configuration found for one application.
type SweepBest struct {
	App         string  `json:"app"`
	Variant     string  `json:"variant"`
	FXUs        int     `json:"fxus"`
	BTACEntries int     `json:"btac_entries"`
	NormIPC     float64 `json:"norm_ipc"`
	Improvement float64 `json:"improvement"`
}

// SweepManifest is the machine-readable outcome of a sweep.
type SweepManifest struct {
	Schema string `json:"schema"`
	Spec   struct {
		FXUs        []int    `json:"fxus"`
		BTACEntries []int    `json:"btac_entries"`
		Variants    []string `json:"variants"`
		Apps        []string `json:"apps"`
	} `json:"spec"`
	Config    Config        `json:"config"`
	Points    []SweepPoint  `json:"points"`
	Best      []SweepBest   `json:"best"`     // per app, paper order; degraded cells never win
	Degraded  int           `json:"degraded"` // cells with Status != ok
	Scheduler sched.Stats   `json:"scheduler"`
	Profile   *SweepProfile `json:"profile,omitempty"` // timing; excluded from determinism comparisons
	ElapsedMS int64         `json:"elapsed_ms"`        // timing; excluded from determinism comparisons
}

// SweepProfile is the sweep's "where did the time go" attribution:
// one stage breakdown per evaluated point plus the aggregate over the
// whole run.  Like ElapsedMS it is measured wall time, so it lives
// outside Points and is stripped by every determinism comparison
// (manifests stay byte-identical across worker counts, trace policies
// and cache states on everything that is science).
type SweepProfile struct {
	// Points carries one breakdown per manifest point, in manifest
	// order (the Key matches the point's Key).
	Points []PointCost `json:"points,omitempty"`
	// Aggregate sums every point's breakdown.
	Aggregate telemetry.StageCost `json:"aggregate"`
	// Stages is the aggregate by stage, descending — the attribution
	// table behind the sweep summary and `bioperf5 spans`.
	Stages []telemetry.StageNS `json:"stages,omitempty"`
	// Dominant names the stage with the most aggregate time.
	Dominant string `json:"dominant,omitempty"`
}

// PointCost pairs one evaluated cell with its stage breakdown.
type PointCost struct {
	Key  string              `json:"key"`
	Cost telemetry.StageCost `json:"cost"`
}

// DegradedPoints returns the cells that did not complete, in manifest
// order.
func (m *SweepManifest) DegradedPoints() []SweepPoint {
	var out []SweepPoint
	for _, p := range m.Points {
		if p.Status != StatusOK {
			out = append(out, p)
		}
	}
	return out
}

// WriteJSON writes the manifest to w as indented JSON.
func (m *SweepManifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteJSONFile persists the manifest at path crash-safely: the JSON
// is written to a temp file in the same directory, fsync'd, and
// renamed into place, so a reader (or a resumed sweep) never observes
// a truncated manifest.
func (m *SweepManifest) WriteJSONFile(path string) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".manifest-*.json")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := m.WriteJSON(tmp); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best-effort directory fsync, like the disk cache
		d.Close()
	}
	return nil
}

// cellKey derives the content hash of a whole cell from its per-seed
// job hashes.
func cellKey(jobs []sched.Job) string {
	h := sha256.New()
	for _, j := range jobs {
		io.WriteString(h, j.Hash())
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RunSweep evaluates the full grid.  Every cell — plus each
// application's POWER5 baseline, used to normalize IPC — is submitted
// to the scheduler up front, so the whole sweep is bounded by the
// worker pool, and grid points that coincide with the baseline (or
// with each other across re-runs) are served from the cache.
func RunSweep(sp SweepSpec) (*SweepManifest, error) {
	sp, err := sp.normalize()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	cfg := sp.Config
	// The whole-sweep root span: with a tracer in the context every
	// cell's spans nest under it, so the exported trace renders the
	// sweep as one tree.
	sweepCtx, sweepSpan := telemetry.StartSpan(cfg.Context, telemetry.StageSweep)
	if sweepSpan != nil {
		cfg.Context = sweepCtx
		defer sweepSpan.End()
	}

	m := &SweepManifest{Schema: SchemaVersion, Config: cfg}
	m.Spec.FXUs = sp.FXUs
	m.Spec.BTACEntries = sp.BTACEntries
	for _, v := range sp.Variants {
		m.Spec.Variants = append(m.Spec.Variants, v.String())
	}
	m.Spec.Apps = sp.Apps

	// Submit phase: baselines first (they normalize every point), then
	// the grid in manifest order.
	type pendingPoint struct {
		point SweepPoint
		setup core.Setup
		cell  *pending
	}
	baselines := make(map[string]*pending, len(sp.Apps))
	for _, app := range sp.Apps {
		k, _ := kernels.ByApp(app)
		baselines[app] = cfg.submitCell(k, core.Baseline())
	}
	var pendings []pendingPoint
	for _, app := range sp.Apps {
		k, _ := kernels.ByApp(app)
		for _, v := range sp.Variants {
			for _, fxus := range sp.FXUs {
				for _, entries := range sp.BTACEntries {
					s := SetupFor(v, fxus, entries)
					var jobs []sched.Job
					for _, seed := range cfg.Seeds {
						jobs = append(jobs, sched.Job{
							App: app, Variant: v, CPU: s.CPU,
							Seed: seed, Scale: cfg.Scale,
						})
					}
					pendings = append(pendings, pendingPoint{
						point: SweepPoint{
							App:         app,
							Variant:     v.String(),
							FXUs:        fxus,
							BTACEntries: entries,
							Key:         cellKey(jobs),
						},
						setup: s,
						cell:  cfg.submitCell(k, s),
					})
				}
			}
		}
	}

	// Collect phase, in submission order.  A failed cell degrades that
	// cell (or, for a baseline, skips its application's cells) instead
	// of aborting the sweep: the manifest reports exactly which cells
	// are missing, and a re-run against the same cache retries only
	// those.
	profile := &SweepProfile{}
	baseWork := make(map[string]cpu.Counters, len(sp.Apps))
	baseErr := make(map[string]string, len(sp.Apps))
	for _, app := range sp.Apps {
		ctr, err := baselines[app].counters()
		if err != nil {
			baseErr[app] = fmt.Sprintf("baseline failed: %v", err)
			continue
		}
		baseWork[app] = ctr
		// Baseline cells are real work too; they count toward the
		// aggregate attribution even though they are not grid points.
		profile.Aggregate.Add(baselines[app].cost())
	}
	best := make(map[string]*SweepBest, len(sp.Apps))
	for _, pp := range pendings {
		p := pp.point
		if msg, degraded := baseErr[p.App]; degraded {
			p.Status = StatusSkipped
			p.Error = msg
			m.Points = append(m.Points, p)
			m.Degraded++
			continue
		}
		det, err := pp.cell.detail()
		if err != nil {
			p.Status = StatusFailed
			if errors.Is(err, sched.ErrCellTimeout) {
				p.Status = StatusTimeout
			}
			p.Error = err.Error()
			m.Points = append(m.Points, p)
			m.Degraded++
			continue
		}
		k, _ := kernels.ByApp(pp.point.App)
		p.Status = StatusOK
		cost := pp.cell.cost()
		profile.Points = append(profile.Points, PointCost{Key: p.Key, Cost: cost})
		profile.Aggregate.Add(cost)
		p.Stats = packKernelStats(k, pp.setup, det)
		base := baseWork[p.App]
		p.NormIPC = normIPC(base, det.Aggregate.Counters)
		if ipc := base.IPC(); ipc > 0 {
			p.Improvement = (p.NormIPC - ipc) / ipc
		}
		m.Points = append(m.Points, p)
		if b := best[p.App]; b == nil || p.NormIPC > b.NormIPC {
			best[p.App] = &SweepBest{
				App: p.App, Variant: p.Variant, FXUs: p.FXUs,
				BTACEntries: p.BTACEntries, NormIPC: p.NormIPC,
				Improvement: p.Improvement,
			}
		}
	}
	for _, app := range sp.Apps {
		if b := best[app]; b != nil {
			m.Best = append(m.Best, *b)
		}
	}
	profile.Stages = profile.Aggregate.Stages()
	profile.Dominant = profile.Aggregate.Dominant()
	m.Profile = profile
	m.Scheduler = cfg.engine().Stats()
	m.ElapsedMS = time.Since(start).Milliseconds()
	return m, nil
}

// ProfileTable renders the aggregate stage attribution: where the
// sweep's simulation time went, descending, with each stage's share.
// Nil when the manifest predates profiles or recorded no time.
func (m *SweepManifest) ProfileTable() *Table {
	if m.Profile == nil || m.Profile.Aggregate.IsZero() {
		return nil
	}
	t := &Table{
		ID:    "sweep-profile",
		Title: "Sweep stage profile: where the simulation time went",
		Note: fmt.Sprintf("summed across %d points + baselines; dominant stage: %s",
			len(m.Profile.Points), m.Profile.Dominant),
		Columns: []string{"stage", "time", "share"},
	}
	var sum int64
	for _, s := range m.Profile.Stages {
		sum += s.NS
	}
	for _, s := range m.Profile.Stages {
		if s.NS == 0 {
			continue
		}
		share := float64(s.NS) / float64(sum) * 100
		t.Rows = append(t.Rows, []string{s.Name,
			time.Duration(s.NS).Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f%%", share)})
	}
	return t
}

// Summary renders the best-configuration-per-application table plus
// one row per grid point.
func (m *SweepManifest) Summary() *Table {
	t := &Table{
		ID:    "sweep",
		Title: "Design-space sweep: best configuration per application",
		Note: fmt.Sprintf("%d points; norm. IPC is baseline work / cycles (a speedup measure)",
			len(m.Points)),
		Columns: []string{"application", "variant", "FXUs", "BTAC", "norm. IPC", "improvement"},
	}
	for _, b := range m.Best {
		t.Rows = append(t.Rows, []string{b.App, b.Variant,
			strconv.Itoa(b.FXUs), btacLabel(b.BTACEntries),
			f2(b.NormIPC), pctDelta(1+b.Improvement, 1)})
	}
	return t
}

// Grid renders every point of the manifest as a table, grouped by
// application in manifest order.
func (m *SweepManifest) Grid() *Table {
	t := &Table{
		ID:      "sweep-grid",
		Title:   "Design-space sweep: all points",
		Columns: []string{"application", "variant", "FXUs", "BTAC", "norm. IPC", "improvement"},
	}
	prev := ""
	for _, p := range m.Points {
		app := p.App
		if app == prev {
			app = ""
		} else {
			prev = p.App
		}
		ipc, delta := f2(p.NormIPC), pctDelta(1+p.Improvement, 1)
		if p.Status != StatusOK {
			ipc, delta = p.Status, "-"
		}
		t.Rows = append(t.Rows, []string{app, p.Variant,
			strconv.Itoa(p.FXUs), btacLabel(p.BTACEntries), ipc, delta})
	}
	return t
}
