package harness

import (
	"encoding/json"
	"io"

	"bioperf5/internal/core"
	"bioperf5/internal/cpu"
	"bioperf5/internal/kernels"
)

// Rates are the derived metrics of one counter set — every ratio the
// paper's tables print, precomputed so JSON consumers don't re-derive
// them (and can't re-derive them differently).
type Rates struct {
	IPC                  float64 `json:"ipc"`
	CPI                  float64 `json:"cpi"`
	L1DMissRate          float64 `json:"l1d_miss_rate"`
	BranchMispredictRate float64 `json:"branch_mispredict_rate"`
	DirectionShare       float64 `json:"direction_share"`
	BranchFraction       float64 `json:"branch_fraction"`
	TakenFraction        float64 `json:"taken_fraction"`
	BTACMispredictRate   float64 `json:"btac_mispredict_rate"`
	StallFXUShare        float64 `json:"stall_fxu_share"`
}

// RatesOf derives all rates from one counter set.
func RatesOf(c cpu.Counters) Rates {
	r := Rates{
		IPC:                  c.IPC(),
		L1DMissRate:          c.L1DMissRate(),
		BranchMispredictRate: c.BranchMispredictRate(),
		DirectionShare:       c.DirectionShare(),
		BranchFraction:       c.BranchFraction(),
		TakenFraction:        c.TakenFraction(),
		BTACMispredictRate:   c.BTACMispredictRate(),
		StallFXUShare:        c.StallFXUShare(),
	}
	if c.Instructions > 0 {
		r.CPI = float64(c.Cycles) / float64(c.Instructions)
	}
	return r
}

// SeedStats is one seed's counters, derived rates and stall stack.
type SeedStats struct {
	Seed     int64          `json:"seed"`
	Counters cpu.Counters   `json:"counters"`
	Rates    Rates          `json:"rates"`
	Stalls   cpu.StallStack `json:"stall_stack"`
}

// KernelStats is the machine-readable outcome of one kernel under one
// setup: per-seed stats plus the aggregate.
type KernelStats struct {
	App       string      `json:"app"`
	Kernel    string      `json:"kernel"`
	Setup     string      `json:"setup"`
	Variant   string      `json:"variant"`
	Seeds     []SeedStats `json:"seeds"`
	Aggregate SeedStats   `json:"aggregate"`
}

// KernelStatsFor runs one kernel under one setup through the scheduler
// and packages the detailed result.
func KernelStatsFor(k *kernels.Kernel, s core.Setup, cfg Config) (KernelStats, error) {
	cfg = cfg.normalize()
	det, err := cfg.submitCell(k, s).detail()
	if err != nil {
		return KernelStats{}, err
	}
	return packKernelStats(k, s, det), nil
}

// packKernelStats shapes a collected cell detail into the JSON-report
// form.
func packKernelStats(k *kernels.Kernel, s core.Setup, det *core.Detail) KernelStats {
	ks := KernelStats{
		App:     k.App,
		Kernel:  k.Name,
		Setup:   s.Name,
		Variant: s.Variant.String(),
		Aggregate: SeedStats{
			Seed:     -1,
			Counters: det.Aggregate.Counters,
			Rates:    RatesOf(det.Aggregate.Counters),
			Stalls:   det.Aggregate.Stalls,
		},
	}
	for _, sr := range det.Seeds {
		ks.Seeds = append(ks.Seeds, SeedStats{
			Seed:     sr.Seed,
			Counters: sr.Counters,
			Rates:    RatesOf(sr.Counters),
			Stalls:   sr.Stalls,
		})
	}
	return ks
}

// BaselineStats runs every application kernel on the POWER5 baseline
// and returns the detailed stats — the data behind Table I's rows and
// the `bioperf5 stats` subcommand.
func BaselineStats(cfg Config) ([]KernelStats, error) {
	cfg = cfg.normalize()
	ks := kernels.All()
	cells := make([]*pending, len(ks))
	for i, k := range ks {
		cells[i] = cfg.submitCell(k, core.Baseline())
	}
	var out []KernelStats
	for i, k := range ks {
		det, err := cells[i].detail()
		if err != nil {
			return nil, err
		}
		out = append(out, packKernelStats(k, core.Baseline(), det))
	}
	return out, nil
}

// SchemaVersion tags every machine-readable artifact the harness emits
// (experiment reports, sweep manifests, server responses) so API
// clients can detect drift instead of misparsing a newer encoding.
// Bump the suffix when a field changes meaning or disappears; purely
// additive fields keep the version.
const SchemaVersion = "bioperf5/v1"

// Report is the machine-readable encoding of one experiment run: the
// rendered table plus, when the experiment carries a Detail hook, the
// per-seed counters, derived rates and CPI stall stacks behind it.
type Report struct {
	Schema  string        `json:"schema"`
	ID      string        `json:"id"`
	Title   string        `json:"title"`
	Note    string        `json:"note,omitempty"`
	Config  Config        `json:"config"`
	Columns []string      `json:"columns"`
	Rows    [][]string    `json:"rows"`
	Kernels []KernelStats `json:"kernels,omitempty"`
}

// RunReport runs the experiment and packages its machine-readable form.
func RunReport(e *Experiment, cfg Config) (*Report, error) {
	cfg = cfg.normalize()
	tab, err := e.Run(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Schema:  SchemaVersion,
		ID:      tab.ID,
		Title:   tab.Title,
		Note:    tab.Note,
		Config:  cfg,
		Columns: tab.Columns,
		Rows:    tab.Rows,
	}
	if e.Detail != nil {
		ks, err := e.Detail(cfg)
		if err != nil {
			return nil, err
		}
		rep.Kernels = ks
	}
	return rep, nil
}

// WriteJSON writes the report to w as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
