package harness

import (
	"testing"

	"bioperf5/internal/core"
)

// TestRunBranchesAttribution pins the report's core invariant: the
// per-static-branch counts sum exactly to the machine-wide counters
// (RunBranches fails internally otherwise), every site is classified,
// and the class histogram covers every site.
func TestRunBranchesAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := RunBranches(Quick(), "Clustalw", core.Baseline().WithBTAC())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Branches) == 0 {
		t.Fatal("no branch sites profiled")
	}
	var exec, miss, wrong uint64
	classed := 0
	for _, b := range rep.Branches {
		exec += b.Executed
		miss += b.Mispredicts
		wrong += b.BTACWrong
		if b.Class == "" {
			t.Errorf("pc %d: unclassified", b.PC)
		}
		classed += rep.Classes[string(b.Class)]
	}
	if exec != rep.CondBranches || miss != rep.DirMispredicts || wrong != rep.TgtMispredicts {
		t.Errorf("per-site sums %d/%d/%d != aggregates %d/%d/%d",
			exec, miss, wrong, rep.CondBranches, rep.DirMispredicts, rep.TgtMispredicts)
	}
	total := 0
	for _, n := range rep.Classes {
		total += n
	}
	if total != len(rep.Branches) {
		t.Errorf("class histogram covers %d sites, want %d", total, len(rep.Branches))
	}
	// Hottest-first ordering.
	for i := 1; i < len(rep.Branches); i++ {
		if rep.Branches[i].Mispredicts > rep.Branches[i-1].Mispredicts {
			t.Errorf("rows not sorted by mispredicts at %d", i)
			break
		}
	}
	if tab := rep.Table(); len(tab.Rows) != len(rep.Branches) {
		t.Errorf("table has %d rows, want %d", len(tab.Rows), len(rep.Branches))
	}
}

// TestRunBranchesWithZooPredictor: the profiler composes with any
// registered predictor spec, and the counters it attributes are the
// spec's own (a TAGE profile differs from the tournament profile).
func TestRunBranchesWithZooPredictor(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := core.Baseline()
	tage := base
	tage.CPU.Predictor = "tage:tables=4,hist=2..64"
	repBase, err := RunBranches(Quick(), "Fasta", base)
	if err != nil {
		t.Fatal(err)
	}
	repTage, err := RunBranches(Quick(), "Fasta", tage)
	if err != nil {
		t.Fatal(err)
	}
	if repTage.Predictor != "tage:tables=4,bits=10,tag=8,hist=2..64" {
		t.Errorf("predictor not canonicalized: %q", repTage.Predictor)
	}
	if repBase.CondBranches != repTage.CondBranches {
		t.Errorf("predictor changed the branch stream: %d vs %d",
			repBase.CondBranches, repTage.CondBranches)
	}
}
