package harness

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestTableRenderGolden pins the exact rendered output — column
// alignment, the parenthesised note line, and the rule width — so a
// formatting regression shows up as a diff, not a vague "missing
// substring".
func TestTableRenderGolden(t *testing.T) {
	tab := &Table{
		ID:      "table9",
		Title:   "Demo table",
		Note:    "unit scale",
		Columns: []string{"app", "IPC", "note"},
		Rows: [][]string{
			{"Blast", "0.97", "ok"},
			{"Clustalw", "1.20", "long cell here"},
		},
	}
	want := strings.Join([]string{
		"TABLE9 — Demo table",
		"(unit scale)",
		"app       IPC   note          ",
		"--------------------------------",
		"Blast     0.97  ok            ",
		"Clustalw  1.20  long cell here",
		"",
	}, "\n")
	if got := tab.Render(); got != want {
		t.Errorf("render mismatch:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

// TestTableRenderNoNoteNoRows covers the empty edges: a note-less table
// must not emit a note line, and an empty-rows table still renders its
// header and rule.
func TestTableRenderNoNoteNoRows(t *testing.T) {
	tab := &Table{
		ID:      "f0",
		Title:   "Empty",
		Columns: []string{"a", "b"},
	}
	want := strings.Join([]string{
		"F0 — Empty",
		"a  b",
		"------",
		"",
	}, "\n")
	if got := tab.Render(); got != want {
		t.Errorf("render mismatch:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

// TestByIDAliases checks the short names the CLI documents.
func TestByIDAliases(t *testing.T) {
	for alias, full := range aliases {
		e, err := ByID(alias)
		if err != nil {
			t.Errorf("ByID(%q): %v", alias, err)
			continue
		}
		if e.ID != full {
			t.Errorf("ByID(%q) = %s, want %s", alias, e.ID, full)
		}
	}
}

// TestReportJSONRoundTrip runs the smallest detailed experiment
// (table1, single seed) through RunReport, encodes it, decodes it, and
// checks the decoded report is field-for-field identical — including
// the per-kernel stall stacks the acceptance criteria require.
func TestReportJSONRoundTrip(t *testing.T) {
	e, err := ByID("t1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunReport(e, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "table1" || len(rep.Columns) == 0 || len(rep.Rows) == 0 {
		t.Fatalf("report incomplete: %+v", rep)
	}
	if len(rep.Kernels) != 4 {
		t.Fatalf("report has %d kernel stats, want 4", len(rep.Kernels))
	}
	for _, ks := range rep.Kernels {
		if len(ks.Seeds) != 1 {
			t.Errorf("%s: %d seed entries, want 1", ks.App, len(ks.Seeds))
		}
		agg := ks.Aggregate
		if agg.Stalls.Total() != agg.Counters.Cycles {
			t.Errorf("%s: stall stack %d != cycles %d", ks.App,
				agg.Stalls.Total(), agg.Counters.Cycles)
		}
		if agg.Rates.IPC == 0 || agg.Rates.CPI == 0 {
			t.Errorf("%s: zero derived rates: %+v", ks.App, agg.Rates)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("WriteJSON produced invalid JSON:\n%s", buf.String())
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*rep, back) {
		t.Errorf("JSON round trip changed the report:\n got %+v\nwant %+v", back, *rep)
	}
	// The acceptance criterion asks for the stall stack in the JSON
	// output itself, not just the decoded struct.
	for _, key := range []string{"stall_stack", "mispredict_flush", "ipc", "counters"} {
		if !strings.Contains(buf.String(), `"`+key+`"`) {
			t.Errorf("JSON output missing key %q", key)
		}
	}
}

// TestRunReportWithoutDetail checks experiments without a Detail hook
// still report (table only, no kernels array).
func TestRunReportWithoutDetail(t *testing.T) {
	e, err := ByID("fig5")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunReport(e, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kernels != nil {
		t.Errorf("fig5 report has kernel stats: %+v", rep.Kernels)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"kernels"`) {
		t.Errorf("kernels key present despite omitempty:\n%s", buf.String())
	}
}
