package harness

import (
	"context"
	"sync"

	"bioperf5/internal/core"
	"bioperf5/internal/cpu"
	"bioperf5/internal/kernels"
	"bioperf5/internal/sched"
	"bioperf5/internal/telemetry"
)

// sharedEngine is the process-wide default scheduler used when a
// Config carries no engine of its own: GOMAXPROCS workers and an
// in-memory cache, so `run all` computes the baseline column once
// across Table I and Figures 4-6.
var (
	sharedOnce sync.Once
	shared     *sched.Engine
)

func sharedEngine() *sched.Engine {
	sharedOnce.Do(func() { shared = sched.New(sched.Options{}) })
	return shared
}

// engine resolves the scheduler this configuration submits cells to.
func (c Config) engine() *sched.Engine {
	if c.Engine != nil {
		return c.Engine
	}
	return sharedEngine()
}

// cell is one outstanding (kernel, setup) experiment cell: a future
// per seed.  Experiments submit every cell up front and collect in
// table order, so the rendered rows are identical to the old serial
// loops regardless of worker count.
type pending struct {
	seeds []int64
	futs  []*sched.Future
	// shared flags the seeds whose submission coalesced onto an
	// already in-flight or memoized computation; their futures carry
	// the original computation's cost, which must not be re-attributed
	// to this cell.
	shared []bool
}

// submitCell fans the cell's seeds out to the scheduler under the
// configuration's context (Background when unset), so a cancelled
// sweep unblocks promptly even while Submit is parked on a full queue.
func (c Config) submitCell(k *kernels.Kernel, s core.Setup) *pending {
	eng := c.engine()
	ctx := c.Context
	if ctx == nil {
		ctx = context.Background()
	}
	cl := &pending{seeds: c.Seeds}
	for _, seed := range c.Seeds {
		f, hit := eng.SubmitTracked(ctx, sched.Job{
			App:     k.App,
			Variant: s.Variant,
			CPU:     s.CPU,
			Seed:    seed,
			Scale:   c.Scale,
			Trace:   c.Trace,
		})
		cl.futs = append(cl.futs, f)
		cl.shared = append(cl.shared, hit)
	}
	return cl
}

// detail collects the cell into the per-seed + aggregate shape the
// serial core.RunKernelDetailed produced, summing in seed order.
func (cl *pending) detail() (*core.Detail, error) {
	det := &core.Detail{}
	for i, f := range cl.futs {
		rep, err := f.Wait()
		if err != nil {
			return nil, err
		}
		det.Seeds = append(det.Seeds, core.SeedReport{
			Seed: cl.seeds[i], Counters: rep.Counters, Stalls: rep.Stalls,
		})
		det.Aggregate = det.Aggregate.Add(rep)
	}
	return det, nil
}

// counters collects the cell's summed counters.
func (cl *pending) counters() (cpu.Counters, error) {
	det, err := cl.detail()
	if err != nil {
		return cpu.Counters{}, err
	}
	return det.Aggregate.Counters, nil
}

// cost sums the per-seed stage breakdowns of a completed cell.  Call
// it only after detail()/counters() has returned — it waits on every
// future.  Coalesced seeds contribute nothing: their computation (and
// its cost) belongs to the submission that enqueued it, so each unit
// of work is attributed exactly once and a fully-memoized cell
// reports a zero breakdown.
func (cl *pending) cost() telemetry.StageCost {
	var c telemetry.StageCost
	for i, f := range cl.futs {
		if i < len(cl.shared) && cl.shared[i] {
			continue
		}
		c.Add(f.Cost())
	}
	return c
}

// CellOutcome is the result of running one (application, setup) cell
// through the scheduler, packaged for an API consumer.
type CellOutcome struct {
	// Stats is the per-seed + aggregate view of the cell.
	Stats KernelStats
	// Key is the cell's content key (the hash over its per-seed job
	// hashes, the same value a sweep manifest records).
	Key string
	// Coalesced counts per-seed submissions served by the scheduler's
	// in-memory layer — joined an in-flight computation or hit the
	// memoized result — the number behind `server.cells.coalesced`.
	Coalesced int
	// TraceHit reports whether every seed was served without a fresh
	// functional capture: trace replays, disk-cached results, or
	// coalesced submissions.  Always false with tracing off.
	TraceHit bool
	// Cost is the summed per-stage time breakdown across the cell's
	// seeds: where its wall time went (queue wait, compile, capture,
	// replay, cache I/O).
	Cost telemetry.StageCost
}

// CellStats runs one (application, setup) cell through the
// configuration's engine and packages the result for an API consumer.
func CellStats(cfg Config, app string, s core.Setup) (CellOutcome, error) {
	cfg = cfg.normalize()
	out := CellOutcome{}
	k, err := kernels.ByApp(app)
	if err != nil {
		return out, err
	}
	eng := cfg.engine()
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	var (
		jobs   []sched.Job
		futs   []*sched.Future
		shared []bool
	)
	for _, seed := range cfg.Seeds {
		j := sched.Job{
			App:     k.App,
			Variant: s.Variant,
			CPU:     s.CPU,
			Seed:    seed,
			Scale:   cfg.Scale,
			Trace:   cfg.Trace,
		}
		jobs = append(jobs, j)
		f, hit := eng.SubmitTracked(ctx, j)
		if hit {
			out.Coalesced++
		}
		futs = append(futs, f)
		shared = append(shared, hit)
	}
	cl := &pending{seeds: cfg.Seeds, futs: futs, shared: shared}
	det, err := cl.detail()
	if err != nil {
		return out, err
	}
	out.TraceHit = true
	for i, f := range futs {
		// A coalesced submission joined someone else's computation, so
		// it triggered no capture of its own either way.
		if !shared[i] && !f.TraceHit() {
			out.TraceHit = false
			break
		}
	}
	out.Stats = packKernelStats(k, s, det)
	out.Key = cellKey(jobs)
	out.Cost = cl.cost()
	return out, nil
}
