// Package harness defines one experiment per table and figure of the
// paper's evaluation and renders their results as plain-text tables.
// The per-experiment index in DESIGN.md maps each experiment to the
// modules that implement it.
package harness

import (
	"context"
	"fmt"
	"strings"

	"bioperf5/internal/core"
	"bioperf5/internal/kernels"
	"bioperf5/internal/sched"
)

// Config scales the experiments.  Scale stretches kernel inputs; Seeds
// lists the input seeds whose counters are aggregated per data point.
type Config struct {
	Scale int     `json:"scale"`
	Seeds []int64 `json:"seeds"`

	// Engine, when set, is the scheduler experiment cells are submitted
	// to; nil uses a shared process-wide engine (GOMAXPROCS workers,
	// in-memory result cache).  Cells are pure, so the choice only
	// affects wall-clock time, never the numbers.
	Engine *sched.Engine `json:"-"`

	// Context, when set, covers every cell submitted under this
	// configuration: cancelling it fails pending cells instead of
	// simulating them (the CLI wires SIGINT/SIGTERM here, so an
	// interrupted sweep degrades gracefully and remains resumable).
	Context context.Context `json:"-"`

	// Trace is the trace policy every cell submitted under this
	// configuration carries (zero value: auto — capture each distinct
	// functional execution once, replay it for every timing variation).
	// Results are bit-identical under every policy, so the field is
	// excluded from JSON: manifests do not change when tracing is
	// toggled.
	Trace core.TracePolicy `json:"-"`
}

// DefaultConfig is the configuration the CLI uses.
func DefaultConfig() Config {
	return Config{Scale: 1, Seeds: []int64{1, 2, 3}}
}

// Quick returns a single-seed configuration for benchmarks and smoke
// tests.
func Quick() Config {
	return Config{Scale: 1, Seeds: []int64{1}}
}

func (c Config) normalize() Config {
	if c.Scale < 1 {
		c.Scale = 1
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1}
	}
	return c
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// Render lays the table out with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "(%s)\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Experiment regenerates one table or figure.  Run produces the
// rendered table; Detail, when set, produces the machine-readable
// per-seed statistics behind it for the JSON report.
type Experiment struct {
	ID     string
	Title  string
	Run    func(Config) (*Table, error)
	Detail func(Config) ([]KernelStats, error)
}

// Registry returns all experiments in paper order.
func Registry() []*Experiment {
	return []*Experiment{
		{ID: "fig1", Title: "Function-wise breakout of Blast, Clustalw, Fasta, and Hmmer", Run: Fig1},
		{ID: "table1", Title: "Hardware counter data for Blast, Clustalw, Fasta, and Hmmer", Run: Table1, Detail: BaselineStats},
		{ID: "fig2", Title: "Clustalw IPC and branch misprediction rate over time", Run: Fig2},
		{ID: "fig3", Title: "IPC with max and isel instructions", Run: Fig3},
		{ID: "table2", Title: "Branch performance of applications with predicated instructions added", Run: Table2},
		{ID: "fig4", Title: "Effect of adding an eight-entry BTAC", Run: Fig4},
		{ID: "fig5", Title: "Effect of additional fixed-point units", Run: Fig5},
		{ID: "fig6", Title: "Effect on IPC of combining predication, BTAC, and four FXUs", Run: Fig6},
	}
}

// aliases are short experiment names accepted by ByID ("t1" for
// "table1", "f3" for "fig3", ...).
var aliases = map[string]string{
	"t1": "table1", "t2": "table2",
	"f1": "fig1", "f2": "fig2", "f3": "fig3",
	"f4": "fig4", "f5": "fig5", "f6": "fig6",
}

// ByID finds an experiment by canonical id or short alias.
func ByID(id string) (*Experiment, error) {
	if full, ok := aliases[id]; ok {
		id = full
	}
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return nil, fmt.Errorf("harness: unknown experiment %q", id)
}

// Formatting helpers.

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

func pctDelta(to, from float64) string {
	if from == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(to-from)/from)
}

// figure3Variants are the predication strategies of Figure 3/Table II.
func figure3Variants() []kernels.Variant {
	return []kernels.Variant{
		kernels.HandISel, kernels.CompISel,
		kernels.HandMax, kernels.CompMax,
		kernels.Combination,
	}
}
