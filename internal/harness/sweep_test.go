package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"bioperf5/internal/core"
	"bioperf5/internal/fault"
	"bioperf5/internal/kernels"
	"bioperf5/internal/sched"
	"bioperf5/internal/workload"
)

// smallSweep is a quick two-app slice of the design space used by the
// tier-1 determinism and cache tests.
func smallSweep(eng *sched.Engine) SweepSpec {
	return SweepSpec{
		FXUs:        []int{2, 4},
		BTACEntries: []int{0, 8},
		Variants:    []kernels.Variant{kernels.Branchy},
		Apps:        []string{"Clustalw", "Fasta"},
		Config:      Config{Scale: 1, Seeds: []int64{1}, Engine: eng},
	}
}

// manifestJSON serializes a manifest with its environment fields
// (elapsed time, worker count) zeroed — the canonical form determinism
// is asserted on.
func manifestJSON(t *testing.T, m *SweepManifest) []byte {
	t.Helper()
	clone := *m
	clone.ElapsedMS = 0
	clone.Scheduler.Workers = 0
	clone.Profile = nil
	b, err := json.MarshalIndent(&clone, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSweepDeterministicAcrossWorkerCounts is the tier-1 determinism
// gate: the same sweep on 1 worker and on 8 workers must produce
// byte-identical JSON manifests (modulo the timing field).
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var manifests [][]byte
	for _, workers := range []int{1, 8} {
		eng := sched.New(sched.Options{Workers: workers})
		m, err := RunSweep(smallSweep(eng))
		eng.Close()
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		manifests = append(manifests, manifestJSON(t, m))
	}
	if !bytes.Equal(manifests[0], manifests[1]) {
		t.Errorf("manifests diverge between 1 and 8 workers:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s",
			manifests[0], manifests[1])
	}
}

// TestSweepSecondRunHitsCacheOnly asserts a repeated identical sweep
// performs zero simulation work: every cell is served from the
// content-addressed cache, visible in the telemetry counters.
func TestSweepSecondRunHitsCacheOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	eng := sched.New(sched.Options{Workers: 4})
	defer eng.Close()
	spec := smallSweep(eng)

	m1, err := RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	computed := eng.Registry().Counter("sched.jobs.computed").Value()
	if computed == 0 {
		t.Fatal("first sweep computed nothing")
	}

	m2, err := RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if after := eng.Registry().Counter("sched.jobs.computed").Value(); after != computed {
		t.Errorf("second sweep simulated %d cells, want 0", after-computed)
	}
	hits := eng.Registry().Counter("sched.cache.memory.hits").Value()
	if hits == 0 {
		t.Error("cache-hit counter did not move")
	}
	// Identical numbers, served from cache.
	p1, p2 := m1.Points, m2.Points
	if len(p1) != len(p2) {
		t.Fatalf("point counts differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		a, _ := json.Marshal(p1[i])
		b, _ := json.Marshal(p2[i])
		if !bytes.Equal(a, b) {
			t.Errorf("point %d differs between runs:\n%s\n%s", i, a, b)
		}
	}
}

func TestSweepManifestShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	eng := sched.New(sched.Options{Workers: 4})
	defer eng.Close()
	spec := smallSweep(eng)
	m, err := RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := len(spec.FXUs) * len(spec.BTACEntries) * len(spec.Variants) * len(spec.Apps)
	if len(m.Points) != wantPoints {
		t.Fatalf("%d points, want %d", len(m.Points), wantPoints)
	}
	if len(m.Best) != len(spec.Apps) {
		t.Fatalf("%d best entries, want %d", len(m.Best), len(spec.Apps))
	}
	seen := map[string]bool{}
	for _, p := range m.Points {
		if p.Key == "" || seen[p.Key] {
			t.Errorf("point %s/%s/%d/%d: missing or duplicate key", p.App, p.Variant, p.FXUs, p.BTACEntries)
		}
		seen[p.Key] = true
		if p.Stats.Aggregate.Counters.Instructions == 0 {
			t.Errorf("point %s/%s: empty stats", p.App, p.Variant)
		}
		if p.NormIPC <= 0 {
			t.Errorf("point %s/%s: norm IPC %f", p.App, p.Variant, p.NormIPC)
		}
	}
	// More hardware never hurts in this model: each app's best point
	// must improve on its baseline.
	for _, b := range m.Best {
		if b.Improvement < 0 {
			t.Errorf("%s: best improvement %.3f negative", b.App, b.Improvement)
		}
	}
	// The manifest round-trips as JSON and renders as tables.
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("invalid manifest JSON")
	}
	if m.Summary().Render() == "" || m.Grid().Render() == "" {
		t.Fatal("empty summary/grid render")
	}
	// The baseline grid point is shared with the normalization cell, so
	// the scheduler must have deduplicated it.
	if m.Scheduler.MemoryHits == 0 {
		t.Error("baseline cell not deduplicated with normalization cell")
	}
}

// TestSweepPredictorDimension: predictor specs are a first-class sweep
// axis — canonicalized, deduplicated, multiplied into the grid, and
// spelling-independent down to the manifest bytes.
func TestSweepPredictorDimension(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := SweepSpec{
		FXUs:        []int{2},
		BTACEntries: []int{0},
		Variants:    []kernels.Variant{kernels.Branchy},
		Apps:        []string{"Fasta"},
		Predictors:  []string{"gshare", "gshare:bits=12,hist=11", "tage"},
		Config:      Config{Scale: 1, Seeds: []int64{1}},
	}
	plan, err := PlanSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The two gshare spellings collapse to one canonical spec.
	if len(plan.Spec.Predictors) != 2 {
		t.Fatalf("predictors not deduplicated: %v", plan.Spec.Predictors)
	}
	if len(plan.Points) != 2 {
		t.Fatalf("%d points, want 2 (one per distinct predictor)", len(plan.Points))
	}
	for _, pc := range plan.Points {
		if pc.Setup.CPU.Predictor != pc.Predictor {
			t.Errorf("cell predictor %q != setup predictor %q", pc.Predictor, pc.Setup.CPU.Predictor)
		}
		if pc.Predictor != "gshare:bits=12,hist=11" && pc.Predictor != "tage:tables=4,bits=10,tag=8,hist=2..64" {
			t.Errorf("non-canonical cell predictor %q", pc.Predictor)
		}
	}

	// Equivalent spellings produce byte-identical manifests.  Each run
	// gets a fresh engine so the scheduler snapshot (hit counts are
	// engine-lifetime state) is identical too.
	var manifests [][]byte
	for _, preds := range [][]string{
		{"perceptron"},
		{" Perceptron : hist=24 , weights=256 "},
	} {
		eng := sched.New(sched.Options{Workers: 4})
		sp := smallSweep(eng)
		sp.Apps = []string{"Fasta"}
		sp.Predictors = preds
		m, err := RunSweep(sp)
		eng.Close()
		if err != nil {
			t.Fatal(err)
		}
		manifests = append(manifests, manifestJSON(t, m))
	}
	if !bytes.Equal(manifests[0], manifests[1]) {
		t.Errorf("manifests diverge across predictor spellings:\n%s\n---\n%s",
			manifests[0], manifests[1])
	}
}

func TestSweepRejectsBadSpec(t *testing.T) {
	if _, err := RunSweep(SweepSpec{Apps: []string{"NoSuchApp"}}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := RunSweep(SweepSpec{FXUs: []int{0}, Apps: []string{"Fasta"}}); err == nil {
		t.Error("zero FXUs accepted")
	}
	if _, err := RunSweep(SweepSpec{BTACEntries: []int{-1}, Apps: []string{"Fasta"}}); err == nil {
		t.Error("negative BTAC entries accepted")
	}
}

func TestDefaultSweepSpecCoversPaperGrid(t *testing.T) {
	sp := DefaultSweepSpec()
	if len(sp.FXUs) != 3 || len(sp.BTACEntries) != 2 || len(sp.Apps) != len(workload.Apps()) {
		t.Errorf("default spec = %+v", sp)
	}
}

// TestExperimentsParallelMatchesSerial is the acceptance gate for the
// harness retrofit: Figures 4-6 rendered through a 1-worker engine and
// through a many-worker engine must be byte-identical.
func TestExperimentsParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	experiments := []func(Config) (*Table, error){Fig4, Fig5, Fig6}
	names := []string{"fig4", "fig5", "fig6"}
	for i, run := range experiments {
		run := run
		t.Run(names[i], func(t *testing.T) {
			t.Parallel()
			var outs []string
			for _, workers := range []int{1, 8} {
				eng := sched.New(sched.Options{Workers: workers})
				tab, err := run(Config{Scale: 1, Seeds: []int64{1}, Engine: eng})
				eng.Close()
				if err != nil {
					t.Fatalf("%d workers: %v", workers, err)
				}
				outs = append(outs, tab.Render())
			}
			if outs[0] != outs[1] {
				t.Errorf("parallel output diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
					outs[0], outs[1])
			}
		})
	}
}

// hashInjector fails a fixed fault kind at the execute site for every
// cell hash outside its allow set, on every attempt — a targeted,
// unrecoverable fault used to drive the degradation paths.
type hashInjector struct {
	kind  fault.Kind
	delay time.Duration
	allow map[string]bool
}

func (h *hashInjector) Decide(site fault.Site, hash string, attempt int) fault.Decision {
	if site != fault.SiteExecute || h.allow[hash] {
		return fault.Decision{}
	}
	return fault.Decision{Kind: h.kind, Delay: h.delay}
}

// baselineHashes returns the job hashes of every app's normalization
// baseline in the small sweep (seed 1, scale 1).
func baselineHashes() map[string]bool {
	allow := map[string]bool{}
	for _, app := range []string{"Clustalw", "Fasta"} {
		j := sched.Job{
			App: app, Variant: kernels.Branchy,
			CPU: core.Baseline().CPU, Seed: 1, Scale: 1,
		}
		allow[j.Hash()] = true
	}
	return allow
}

// TestSweepDegradesFailedCells: when grid cells fail permanently the
// sweep still returns a manifest naming exactly which cells are
// missing, and Best is computed from the surviving points only.
func TestSweepDegradesFailedCells(t *testing.T) {
	eng := sched.New(sched.Options{
		Workers: 2, Retries: 1, RetryBackoff: time.Millisecond,
		Injector: &hashInjector{kind: fault.Error, allow: baselineHashes()},
	})
	defer eng.Close()
	m, err := RunSweep(smallSweep(eng))
	if err != nil {
		t.Fatalf("RunSweep must degrade, not abort: %v", err)
	}
	var ok, failed int
	for _, p := range m.Points {
		switch p.Status {
		case StatusOK:
			ok++
			// Only the cell that coincides with the baseline survives.
			if p.FXUs != 2 || p.BTACEntries != 0 {
				t.Errorf("unexpected surviving cell %s/%d/%d", p.App, p.FXUs, p.BTACEntries)
			}
		case StatusFailed:
			failed++
			if p.Error == "" {
				t.Errorf("failed cell %s/%d/%d carries no error", p.App, p.FXUs, p.BTACEntries)
			}
			if p.NormIPC != 0 || p.Stats.Aggregate.Counters.Cycles != 0 {
				t.Errorf("failed cell %s/%d/%d carries stats", p.App, p.FXUs, p.BTACEntries)
			}
		default:
			t.Errorf("cell %s/%d/%d status %q", p.App, p.FXUs, p.BTACEntries, p.Status)
		}
	}
	if ok != 2 || failed != 6 || m.Degraded != 6 {
		t.Errorf("ok=%d failed=%d degraded=%d, want 2/6/6", ok, failed, m.Degraded)
	}
	if len(m.DegradedPoints()) != 6 {
		t.Errorf("DegradedPoints = %d entries", len(m.DegradedPoints()))
	}
	// Best still exists per app, drawn from the ok points.
	if len(m.Best) != 2 {
		t.Fatalf("best = %+v", m.Best)
	}
	for _, b := range m.Best {
		if b.FXUs != 2 || b.BTACEntries != 0 {
			t.Errorf("best drawn from a degraded cell: %+v", b)
		}
	}
	// The grid renders degraded rows with their status, not numbers.
	if grid := m.Grid().Render(); !strings.Contains(grid, StatusFailed) {
		t.Errorf("grid does not mark failed cells:\n%s", grid)
	}
}

// TestSweepSkipsCellsWhenBaselineFails: a dead baseline cannot
// normalize anything, so its application's cells are skipped — but the
// sweep still reports them all.
func TestSweepSkipsCellsWhenBaselineFails(t *testing.T) {
	eng := sched.New(sched.Options{
		Workers: 2, RetryBackoff: time.Millisecond,
		Injector: &hashInjector{kind: fault.Error}, // fail everything
	})
	defer eng.Close()
	m, err := RunSweep(smallSweep(eng))
	if err != nil {
		t.Fatalf("RunSweep must degrade, not abort: %v", err)
	}
	if len(m.Points) != 8 || m.Degraded != 8 {
		t.Fatalf("points=%d degraded=%d, want 8/8", len(m.Points), m.Degraded)
	}
	for _, p := range m.Points {
		if p.Status != StatusSkipped || !strings.Contains(p.Error, "baseline failed") {
			t.Errorf("cell %s/%d/%d: status=%q error=%q", p.App, p.FXUs, p.BTACEntries, p.Status, p.Error)
		}
	}
	if len(m.Best) != 0 {
		t.Errorf("best from a fully degraded sweep: %+v", m.Best)
	}
}

// TestSweepMarksTimeouts: a cell that exceeds its deadline on every
// attempt is reported as "timeout", distinct from other failures.
func TestSweepMarksTimeouts(t *testing.T) {
	// A deadline generous enough for real cells even under the race
	// detector, and a single non-baseline grid point per app so the two
	// injected hangs trip their watchdogs concurrently.
	eng := sched.New(sched.Options{
		Workers: 2, RetryBackoff: time.Millisecond,
		CellTimeout: 3 * time.Second,
		Injector: &hashInjector{
			kind: fault.Hang, delay: time.Minute, allow: baselineHashes(),
		},
	})
	defer eng.Close()
	sp := smallSweep(eng)
	sp.FXUs = []int{4}
	sp.BTACEntries = []int{8}
	m, err := RunSweep(sp)
	if err != nil {
		t.Fatal(err)
	}
	var timeouts int
	for _, p := range m.Points {
		if p.Status == StatusTimeout {
			timeouts++
		}
	}
	if timeouts != 2 || m.Degraded != 2 {
		t.Errorf("timeouts=%d degraded=%d, want 2/2:\n%+v", timeouts, m.Degraded, m.Points)
	}
}
