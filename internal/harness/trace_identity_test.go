package harness

import (
	"bytes"
	"testing"

	"bioperf5/internal/core"
	"bioperf5/internal/sched"
	"bioperf5/internal/trace"
)

// TestSweepByteIdenticalAcrossTracePolicies is the acceptance gate for
// the trace subsystem at the harness layer: the same sweep with tracing
// off, with tracing on (cold store), and against a pre-warmed trace
// store must produce byte-identical JSON manifests, at 1 worker and at
// 8.  Tracing is an execution strategy; it must never show up in the
// science.
func TestSweepByteIdenticalAcrossTracePolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	warm := trace.NewStore(trace.StoreOptions{})
	for _, workers := range []int{1, 8} {
		runs := []struct {
			name   string
			policy core.TracePolicy
			store  *trace.Store
		}{
			{"off", core.TraceOff, nil},
			{"auto-cold", core.TraceAuto, nil},
			{"auto-warm", core.TraceAuto, warm}, // warmed by the previous worker pass
			{"auto-warm-again", core.TraceAuto, warm},
		}
		var manifests [][]byte
		for _, r := range runs {
			eng := sched.New(sched.Options{Workers: workers, Traces: r.store})
			spec := smallSweep(eng)
			spec.Config.Trace = r.policy
			m, err := RunSweep(spec)
			eng.Close()
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, r.name, err)
			}
			manifests = append(manifests, manifestJSON(t, m))
		}
		for i := 1; i < len(manifests); i++ {
			if !bytes.Equal(manifests[0], manifests[i]) {
				t.Errorf("workers=%d: %s manifest diverges from off:\n--- off ---\n%s\n--- %s ---\n%s",
					workers, runs[i].name, manifests[0], runs[i].name, manifests[i])
			}
		}
	}
	// The warm store really was reused: captures happened on the first
	// pass only (2 apps x 1 seed), every later pass replayed.
	if st := warm.Stats(); st.Captures != 2 || st.MemoryHits == 0 {
		t.Errorf("warm store stats = %+v, want 2 captures and nonzero hits", st)
	}
}

// TestExperimentByteIdenticalAcrossTracePolicies covers the `run -json`
// surface: a tier-1 experiment report must not change when tracing is
// toggled.
func TestExperimentByteIdenticalAcrossTracePolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	var outs [][]byte
	for _, policy := range []core.TracePolicy{core.TraceOff, core.TraceAuto, core.TraceAuto} {
		eng := sched.New(sched.Options{Workers: 4})
		rep, err := RunReport(e, Config{Scale: 1, Seeds: []int64{1}, Engine: eng, Trace: policy})
		eng.Close()
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf.Bytes())
	}
	for i := 1; i < len(outs); i++ {
		if !bytes.Equal(outs[0], outs[i]) {
			t.Errorf("report %d diverges from the traced-off report", i)
		}
	}
}

// TestCellStatsReportsTraceHits pins the API-facing hit semantics: the
// first request for a cell captures, a repeat of the same functional
// execution under a different timing configuration replays.
func TestCellStatsReportsTraceHits(t *testing.T) {
	eng := sched.New(sched.Options{Workers: 2})
	defer eng.Close()
	cfg := Config{Scale: 1, Seeds: []int64{1}, Engine: eng}
	cold, err := CellStats(cfg, "Fasta", core.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if cold.TraceHit {
		t.Error("cold cell reported a trace hit")
	}
	// Different timing configuration, same functional execution.
	warm, err := CellStats(cfg, "Fasta", core.Baseline().WithBTAC())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.TraceHit {
		t.Error("timing variation of a captured cell did not replay")
	}
	if cold.Key == warm.Key {
		t.Error("different timing configurations share a cell key")
	}
	if cold.Stats.Aggregate.Counters.Instructions != warm.Stats.Aggregate.Counters.Instructions {
		t.Error("timing variation changed the instruction count")
	}
	// Tracing off: never a hit, same numbers.
	off := cfg
	off.Trace = core.TraceOff
	offOut, err := CellStats(off, "Fasta", core.Baseline().WithFXUs(3))
	if err != nil {
		t.Fatal(err)
	}
	if offOut.TraceHit {
		t.Error("off-policy cell reported a trace hit")
	}
}
