//go:build race

package harness

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation distorts the relative stage timings
// the profile acceptance test asserts on.
const raceEnabled = true
