package harness

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	want := []string{"fig1", "table1", "fig2", "fig3", "table2", "fig4", "fig5", "fig6"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Title == "" || reg[i].Run == nil {
			t.Errorf("%s: incomplete experiment", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig4")
	if err != nil || e.ID != "fig4" {
		t.Errorf("ByID(fig4) = %v, %v", e, err)
	}
	if _, err := ByID("fig9"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "t",
		Title:   "demo",
		Note:    "a note",
		Columns: []string{"col", "value"},
		Rows:    [][]string{{"a", "1"}, {"longer", "2"}},
	}
	out := tab.Render()
	for _, want := range []string{"T — demo", "a note", "col", "longer"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, note, header, rule, 2 rows
		t.Errorf("rendered %d lines:\n%s", len(lines), out)
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.normalize()
	if c.Scale != 1 || len(c.Seeds) != 1 {
		t.Errorf("normalized zero config = %+v", c)
	}
}

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("cell (%d,%d) out of range in %s", row, col, tab.ID)
	}
	return tab.Rows[row][col]
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimPrefix(s, "+"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tab, err := Table1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		ipc := parseF(t, row[1])
		if ipc < 0.5 || ipc > 2.5 {
			t.Errorf("%s: IPC %s out of plausible range", row[0], row[1])
		}
		if miss := parsePct(t, row[2]); miss > 5 {
			t.Errorf("%s: L1D miss rate %s; Table I expects low", row[0], row[2])
		}
		if dir := parsePct(t, row[3]); dir < 95 {
			t.Errorf("%s: direction share %s; Table I expects ~100%%", row[0], row[3])
		}
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab, err := Fig3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// 4 apps x 6 rows.
	if len(tab.Rows) != 24 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Collect improvements by app and variant.
	imp := map[string]map[string]float64{}
	app := ""
	for _, row := range tab.Rows {
		if row[0] != "" {
			app = row[0]
			continue // the "original" row
		}
		if imp[app] == nil {
			imp[app] = map[string]float64{}
		}
		imp[app][row[1]] = parsePct(t, row[3])
	}
	// Paper shapes: all variants improve every application...
	for app, m := range imp {
		for v, pc := range m {
			if pc <= 0 {
				t.Errorf("%s/%s: improvement %+.1f%% not positive", app, v, pc)
			}
		}
	}
	// ...hand beats compiler on Clustalw and Hmmer...
	for _, app := range []string{"Clustalw", "Hmmer"} {
		if imp[app]["hand max"] <= imp[app]["comp. max"] {
			t.Errorf("%s: hand max (%.1f%%) not above comp. max (%.1f%%)",
				app, imp[app]["hand max"], imp[app]["comp. max"])
		}
	}
	// ...and the compiler beats hand on Fasta and Blast.
	for _, app := range []string{"Fasta", "Blast"} {
		if imp[app]["comp. max"] <= imp[app]["hand max"] {
			t.Errorf("%s: comp. max (%.1f%%) not above hand max (%.1f%%)",
				app, imp[app]["comp. max"], imp[app]["hand max"])
		}
	}
	// max is at least as good as isel for hand insertion.
	for app, m := range imp {
		if m["hand max"] < m["hand isel"]-1 { // 1pp tolerance
			t.Errorf("%s: hand max (%.1f%%) below hand isel (%.1f%%)",
				app, m["hand max"], m["hand isel"])
		}
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab, err := Table2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 20 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Per app: the original row has the highest branch fraction.
	app := ""
	branchFrac := map[string]map[string]float64{}
	for _, row := range tab.Rows {
		if row[0] != "" {
			app = row[0]
		}
		if branchFrac[app] == nil {
			branchFrac[app] = map[string]float64{}
		}
		branchFrac[app][row[1]] = parsePct(t, row[2])
	}
	for app, m := range branchFrac {
		orig := m["original"]
		for v, f := range m {
			if v == "original" {
				continue
			}
			if f >= orig {
				t.Errorf("%s/%s: branch fraction %.1f%% not below original %.1f%%",
					app, v, f, orig)
			}
		}
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab, err := Fig4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// 8 setup rows (4 apps x 2 cores) plus per-app sub-rows attributing
	// the BTAC mispredict rate to hot static branches (column 2 empty).
	var setupRows, branchRows int
	for _, row := range tab.Rows {
		if row[2] == "" {
			branchRows++
			if mr := parsePct(t, row[5]); mr < 0 || mr > 100 {
				t.Errorf("branch row %q: implausible per-site BTAC wrong rate %.1f%%", row[1], mr)
			}
			continue
		}
		setupRows++
		gain := parsePct(t, row[4])
		if gain < 0 {
			t.Errorf("%s/%s: BTAC hurt (%.1f%%)", row[0], row[1], gain)
		}
		if gain > 25 {
			t.Errorf("%s/%s: BTAC gain %.1f%% implausibly large", row[0], row[1], gain)
		}
		if mr := parsePct(t, row[5]); mr > 10 {
			t.Errorf("%s/%s: BTAC mispredict rate %.1f%%; paper reports a few percent",
				row[0], row[1], mr)
		}
	}
	if setupRows != 8 {
		t.Fatalf("%d setup rows, want 8", setupRows)
	}
	if branchRows == 0 {
		t.Error("no per-static-branch attribution rows")
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab, err := Fig5(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		two, three, four := parseF(t, row[2]), parseF(t, row[3]), parseF(t, row[4])
		if three < two-0.02 || four < three-0.02 {
			t.Errorf("%s/%s: IPC not monotone in FXUs: %.2f %.2f %.2f",
				row[0], row[1], two, three, four)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab, err := Fig6(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	sum := 0.0
	for _, row := range tab.Rows {
		gain := parsePct(t, row[7])
		if gain <= 0 {
			t.Errorf("%s: combined gain %.1f%% not positive", row[0], gain)
		}
		sum += gain
		base, all := parseF(t, row[1]), parseF(t, row[5])
		if all <= base {
			t.Errorf("%s: all-improvements IPC %.2f not above base %.2f", row[0], all, base)
		}
	}
	if avg := sum / 4; avg < 25 {
		t.Errorf("average combined gain %.1f%%; the paper reports 64%%", avg)
	}
}

func TestFig1AndFig2Run(t *testing.T) {
	tab, err := Fig1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 8 {
		t.Errorf("fig1 rows = %d", len(tab.Rows))
	}
	tab2, err := Fig2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab2.Rows) < 3 {
		t.Errorf("fig2 rows = %d", len(tab2.Rows))
	}
}
