package harness

import (
	"fmt"
	"strconv"

	"bioperf5/internal/bprof"
	"bioperf5/internal/branch"
	"bioperf5/internal/core"
	"bioperf5/internal/cpu"
	"bioperf5/internal/kernels"
)

// BranchReport is the per-static-branch predictability profile of one
// (application, setup) cell: every conditional-branch site the run
// touched, with its execution/mispredict counts, BTAC attribution and
// taxonomy class, plus the machine-wide totals the per-site counts sum
// to (the attribution invariant RunBranches enforces).
type BranchReport struct {
	Schema      string  `json:"schema"`
	App         string  `json:"app"`
	Variant     string  `json:"variant"`
	FXUs        int     `json:"fxus"`
	BTACEntries int     `json:"btac_entries"`
	Predictor   string  `json:"predictor"`
	Scale       int     `json:"scale"`
	Seeds       []int64 `json:"seeds"`

	// Machine-wide aggregates across all seeds, straight from the model
	// counters the per-site rows are checked against.
	CondBranches   uint64  `json:"cond_branches"`
	DirMispredicts uint64  `json:"dir_mispredicts"`
	TgtMispredicts uint64  `json:"tgt_mispredicts"`
	MispredictRate float64 `json:"mispredict_rate"` // direction misses / cond branches

	// Classes counts profiled sites per taxonomy bucket.
	Classes map[string]int `json:"classes"`

	// Branches lists every profiled site, hottest (most direction
	// mispredicts) first.
	Branches []bprof.Branch `json:"branches"`
}

// RunBranches profiles one cell per-static-branch: it runs the coupled
// simulation for every seed with a bprof profiler attached, merges the
// per-seed profiles, and cross-checks the attribution invariant — the
// per-site counts must sum exactly to the model's aggregate branch
// counters.  Profiling observes without perturbing, so the counters in
// the report equal what the cached/sweep paths produce for the same
// cell.
func RunBranches(cfg Config, app string, setup core.Setup) (*BranchReport, error) {
	cfg = cfg.normalize()
	k, err := kernels.ByApp(app)
	if err != nil {
		return nil, err
	}
	prof := bprof.New()
	det, err := core.RunProfiled(k, setup, cfg.Seeds, cfg.Scale, prof)
	if err != nil {
		return nil, err
	}
	agg := det.Aggregate.Counters
	exec, miss, wrong := prof.Totals()
	if exec != agg.CondBranches || miss != agg.DirMispredicts || wrong != agg.TgtMispredicts {
		return nil, fmt.Errorf(
			"harness: branch profile does not attribute the aggregate counters: "+
				"profiled %d/%d/%d (executed/mispredicts/wrong targets), counters %d/%d/%d",
			exec, miss, wrong, agg.CondBranches, agg.DirMispredicts, agg.TgtMispredicts)
	}
	rep := &BranchReport{
		Schema:         SchemaVersion,
		App:            k.App,
		Variant:        setup.Variant.String(),
		FXUs:           setup.CPU.NumFXU,
		BTACEntries:    btacEntries(setup.CPU),
		Predictor:      branch.CanonicalOrRaw(setup.CPU.Predictor),
		Scale:          cfg.Scale,
		Seeds:          cfg.Seeds,
		CondBranches:   agg.CondBranches,
		DirMispredicts: agg.DirMispredicts,
		TgtMispredicts: agg.TgtMispredicts,
		Classes:        map[string]int{},
		Branches:       prof.Branches(),
	}
	if agg.CondBranches > 0 {
		rep.MispredictRate = float64(agg.DirMispredicts) / float64(agg.CondBranches)
	}
	for _, b := range rep.Branches {
		rep.Classes[string(b.Class)]++
	}
	return rep, nil
}

// btacEntries reads the effective BTAC sizing out of a config.
func btacEntries(cfg cpu.Config) int {
	if !cfg.UseBTAC {
		return 0
	}
	return cfg.BTAC.Entries
}

// Table renders the report as the `bioperf5 branches` text output.
func (r *BranchReport) Table() *Table {
	t := &Table{
		ID:    "branches",
		Title: fmt.Sprintf("Per-static-branch predictability of %s (%s)", r.App, r.Variant),
		Note: fmt.Sprintf("predictor %s, %d FXUs, BTAC %s; %d sites, %d conditional branches, "+
			"%.1f%% mispredicted", r.Predictor, r.FXUs, btacLabel(r.BTACEntries),
			len(r.Branches), r.CondBranches, 100*r.MispredictRate),
		Columns: []string{"PC", "class", "executed", "taken%", "mispredicts", "miss%", "BTAC wrong%"},
	}
	for _, b := range r.Branches {
		wrong := "n/a"
		if b.BTACPredicts > 0 {
			wrong = pct(b.BTACWrongRate())
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(b.PC),
			string(b.Class),
			strconv.FormatUint(b.Executed, 10),
			pct(b.TakenRate()),
			strconv.FormatUint(b.Mispredicts, 10),
			pct(b.MispredictRate()),
			wrong,
		})
	}
	return t
}
