package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"

	"bioperf5/internal/kernels"
	"bioperf5/internal/sched"
	"bioperf5/internal/telemetry"
)

// TestColdSweepProfile is the attribution acceptance gate: on a cold
// engine (nothing cached, no traces), the manifest's per-point stage
// breakdown must sum to the measured cell wall time within 5%, and the
// aggregate must identify trace capture as the dominant stage — the
// claim ROADMAP item 1 is predicated on.  The grid is one FXU/BTAC
// configuration x both variants so every variant pays exactly one
// capture and few replays; wider grids amortize the capture across
// more replays, which is the trace subsystem working, not a profiling
// error.
func TestColdSweepProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// 8 workers for 6 cells: no worker starvation, so queue wait stays
	// a minor stage and the attribution reflects simulation work.
	// FXUs{2} makes the branchy grid point coincide with the POWER5
	// baseline — it coalesces and reports zero cost, covering the
	// shared-cell path.
	eng := sched.New(sched.Options{Workers: 8})
	defer eng.Close()
	tr := telemetry.NewTracer(0, eng.Registry())

	sp := SweepSpec{
		FXUs:        []int{2},
		BTACEntries: []int{0},
		Variants:    []kernels.Variant{kernels.Branchy, kernels.Combination},
		Apps:        []string{"Fasta", "Blast"},
		Config: Config{
			Scale:   2,
			Seeds:   []int64{1},
			Engine:  eng,
			Context: telemetry.WithTracer(context.Background(), tr),
		},
	}
	m, err := RunSweep(sp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Degraded != 0 {
		t.Fatalf("degraded cells on a clean sweep: %d", m.Degraded)
	}
	p := m.Profile
	if p == nil {
		t.Fatal("manifest has no profile")
	}
	if len(p.Points) != len(m.Points) {
		t.Fatalf("profile covers %d of %d points", len(p.Points), len(m.Points))
	}

	// Per-point: the component stages must account for the measured
	// wall time (queue wait through journal append) within 5%.  A
	// coalesced point did no work of its own and reports all zeros.
	measured := 0
	for i, pc := range p.Points {
		if pc.Key != m.Points[i].Key {
			t.Fatalf("profile point %d key %s != manifest %s", i, pc.Key, m.Points[i].Key)
		}
		c := pc.Cost
		if c.IsZero() {
			continue
		}
		measured++
		sum := c.QueueNS + c.CompileNS + c.CaptureNS + c.ReplayNS + c.SimNS + c.CacheNS + c.JournalNS
		if rel := math.Abs(float64(sum-c.TotalNS)) / float64(c.TotalNS); rel > 0.05 {
			t.Errorf("point %d (%s/%s): stage sum %d vs total %d (%.1f%% off)",
				i, m.Points[i].App, m.Points[i].Variant, sum, c.TotalNS, rel*100)
		}
	}
	if measured < 2 {
		t.Fatalf("only %d points carried a measured breakdown", measured)
	}

	// Aggregate: trace capture is the dominant cold-path stage.  The
	// race detector inflates the replay loop's per-event overhead past
	// capture's, so under -race the claim is relaxed to "simulation
	// work dominates" — the attribution machinery is still fully
	// exercised; the timing ratio is just not this binary's to judge.
	if got := p.Dominant; raceEnabled {
		if got != telemetry.StageCapture && got != telemetry.StageReplay {
			t.Errorf("dominant cold-path stage under -race = %q, want capture or replay (aggregate %+v)",
				got, p.Aggregate)
		}
	} else if got != telemetry.StageCapture {
		t.Errorf("dominant cold-path stage = %q, want %q (aggregate %+v)",
			got, telemetry.StageCapture, p.Aggregate)
	}
	if len(p.Stages) == 0 || p.Stages[0].NS < p.Stages[len(p.Stages)-1].NS {
		t.Errorf("stage table not descending: %+v", p.Stages)
	}
	if tbl := m.ProfileTable(); tbl == nil || len(tbl.Rows) == 0 {
		t.Error("ProfileTable empty on a profiled sweep")
	}

	// The spans the sweep recorded export as Perfetto-loadable
	// trace-event JSON with the capture stage present.
	names := map[string]int{}
	for _, d := range tr.Spans() {
		names[d.Name]++
	}
	for _, want := range []string{telemetry.StageExecute, telemetry.StageQueue,
		telemetry.StageCapture, telemetry.StageReplay, telemetry.StageCompile} {
		if names[want] == 0 {
			t.Errorf("no %q span recorded (have %v)", want, names)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace-event export not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(tr.Spans()) {
		t.Errorf("exported %d events for %d spans", len(doc.TraceEvents), len(tr.Spans()))
	}
}

// TestWarmSweepProfileCheap re-runs the same sweep on the same engine:
// every cell coalesces onto the memoized results, so the warm profile
// must attribute no fresh simulation work — no captures, no replays.
func TestWarmSweepProfileCheap(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	eng := sched.New(sched.Options{Workers: 2})
	defer eng.Close()
	sp := SweepSpec{
		FXUs:        []int{3},
		BTACEntries: []int{0},
		Variants:    []kernels.Variant{kernels.Branchy},
		Apps:        []string{"Fasta"},
		Config:      Config{Scale: 1, Seeds: []int64{1}, Engine: eng},
	}
	if _, err := RunSweep(sp); err != nil {
		t.Fatal(err)
	}
	m, err := RunSweep(sp)
	if err != nil {
		t.Fatal(err)
	}
	if a := m.Profile.Aggregate; a.CaptureNS != 0 || a.ReplayNS != 0 || a.SimNS != 0 {
		t.Errorf("warm sweep attributed fresh simulation work: %+v", a)
	}
}
