package cpu

import (
	"math/rand"
	"testing"

	"bioperf5/internal/isa"
	"bioperf5/internal/machine"
	"bioperf5/internal/mem"
)

// buildAndRun assembles a program, executes it functionally through the
// timing model, and returns the counters.
func buildAndRun(t *testing.T, cfg Config, build func(a *isa.Asm), args ...uint64) Counters {
	t.Helper()
	a := isa.NewAsm()
	build(a)
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mach := machine.New(p, mem.New())
	mach.Reset()
	if err := mach.SetPC("main"); err != nil {
		t.Fatal(err)
	}
	mach.SetReg(isa.SP, 0x7FFF0000)
	for i, v := range args {
		mach.SetReg(isa.R3+isa.Reg(i), v)
	}
	model := MustNew(cfg)
	ctr, err := model.Run(mach, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return ctr
}

// independentAdds emits a loop whose body is n independent add chains,
// exposing ILP limited only by FXU count.
func independentAdds(n int) func(a *isa.Asm) {
	return func(a *isa.Asm) {
		a.Label("main")
		a.Li(isa.R4, 2000)
		a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R4})
		a.Label("loop")
		for i := 0; i < n; i++ {
			r := isa.R5 + isa.Reg(i%8)
			a.Emit(isa.Instruction{Op: isa.OpAddi, RT: r, RA: isa.R0, Imm: int64(i)})
		}
		a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
		a.Ret()
	}
}

func TestValidate(t *testing.T) {
	if err := POWER5Baseline().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := POWER5Baseline()
	bad.NumFXU = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero FXUs validated")
	}
	bad = POWER5Baseline()
	bad.Window = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero window validated")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted zero config")
	}
}

func TestStraightLineIPCIsFXUBound(t *testing.T) {
	cfg := POWER5Baseline()
	ctr := buildAndRun(t, cfg, independentAdds(16))
	ipc := ctr.IPC()
	// 16 independent adds + loop branch per iteration; 2 FXUs bound
	// throughput near 2 (branch runs on the BRU in parallel).
	if ipc < 1.6 || ipc > 2.3 {
		t.Errorf("independent-add IPC = %.2f, want about 2 (2 FXUs)", ipc)
	}
}

func TestMoreFXUsRaiseILPThroughput(t *testing.T) {
	base := POWER5Baseline()
	four := POWER5Baseline()
	four.NumFXU = 4
	ipc2 := buildAndRun(t, base, independentAdds(16)).IPC()
	ipc4 := buildAndRun(t, four, independentAdds(16)).IPC()
	if ipc4 < ipc2*1.5 {
		t.Errorf("4-FXU IPC %.2f not clearly above 2-FXU IPC %.2f", ipc4, ipc2)
	}
	if ipc4 > 4.2 {
		t.Errorf("4-FXU IPC %.2f exceeds theoretical bound", ipc4)
	}
}

func TestDependentChainIPCNearOne(t *testing.T) {
	cfg := POWER5Baseline()
	ctr := buildAndRun(t, cfg, func(a *isa.Asm) {
		a.Label("main")
		a.Li(isa.R4, 2000)
		a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R4})
		a.Li(isa.R5, 0)
		a.Label("loop")
		for i := 0; i < 16; i++ {
			a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R5, RA: isa.R5, Imm: 1})
		}
		a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
		a.Ret()
	})
	if ipc := ctr.IPC(); ipc < 0.8 || ipc > 1.2 {
		t.Errorf("dependent-chain IPC = %.2f, want about 1", ipc)
	}
}

func TestLongLatencyFXUStallsAttributed(t *testing.T) {
	cfg := POWER5Baseline()
	ctr := buildAndRun(t, cfg, func(a *isa.Asm) {
		a.Label("main")
		a.Li(isa.R4, 500)
		a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R4})
		a.Li(isa.R5, 3)
		a.Label("loop")
		// Dependent multiply chain: 5-cycle latency each.
		for i := 0; i < 4; i++ {
			a.Emit(isa.Instruction{Op: isa.OpMulld, RT: isa.R5, RA: isa.R5, RB: isa.R5})
		}
		a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
		a.Ret()
	})
	if ctr.StallFXU == 0 {
		t.Error("dependent multiply chain produced no FXU completion stalls")
	}
	if ctr.StallFXU < ctr.StallLSU || ctr.StallFXU < ctr.StallBRU {
		t.Errorf("stall attribution skewed: FXU=%d LSU=%d BRU=%d",
			ctr.StallFXU, ctr.StallLSU, ctr.StallBRU)
	}
}

// randomBranchLoop builds the DP-kernel pattern: a branch whose
// direction depends on random data, executed in a tight loop.
func randomBranchLoop(seed int64, iters int) (func(a *isa.Asm), *mem.Memory) {
	memory := mem.New()
	rng := rand.New(rand.NewSource(seed))
	base := uint64(0x10000)
	for i := 0; i < iters; i++ {
		memory.StoreByte(base+uint64(i), byte(rng.Intn(2)))
	}
	return func(a *isa.Asm) {
		a.Label("main")
		a.Li(isa.R4, int64(iters))
		a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R4})
		a.Li64(isa.R5, int64(base))
		a.Li(isa.R6, 0) // index
		a.Li(isa.R7, 0) // count of ones
		a.Label("loop")
		a.Emit(isa.Instruction{Op: isa.OpLbzx, RT: isa.R8, RA: isa.R5, RB: isa.R6})
		a.Emit(isa.Instruction{Op: isa.OpCmpdi, CRF: isa.CR0, RA: isa.R8, Imm: 0})
		a.Branch(isa.Instruction{Op: isa.OpBc, CRF: isa.CR0, Bit: isa.CREQ, Want: true}, "skip")
		a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R7, RA: isa.R7, Imm: 1})
		a.Label("skip")
		a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R6, RA: isa.R6, Imm: 1})
		a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
		a.Mr(isa.R3, isa.R7)
		a.Ret()
	}, memory
}

func runWithMemory(t *testing.T, cfg Config, build func(a *isa.Asm), memory *mem.Memory) Counters {
	t.Helper()
	a := isa.NewAsm()
	build(a)
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mach := machine.New(p, memory)
	mach.Reset()
	if err := mach.SetPC("main"); err != nil {
		t.Fatal(err)
	}
	mach.SetReg(isa.SP, 0x7FFF0000)
	model := MustNew(cfg)
	ctr, err := model.Run(mach, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return ctr
}

func TestValueDependentBranchesCrushIPC(t *testing.T) {
	build, memory := randomBranchLoop(7, 4000)
	ctr := runWithMemory(t, POWER5Baseline(), build, memory)
	if rate := ctr.BranchMispredictRate(); rate < 0.10 {
		t.Errorf("mispredict rate on random branches = %.3f, want >0.10", rate)
	}
	if share := ctr.DirectionShare(); share < 0.95 {
		t.Errorf("direction share = %.3f, want about 1.0 without BTAC", share)
	}
	if ipc := ctr.IPC(); ipc > 1.3 {
		t.Errorf("IPC with hostile branches = %.2f; paper expects it depressed", ipc)
	}
}

func TestMispredictPenaltyMatters(t *testing.T) {
	build, memory := randomBranchLoop(7, 4000)
	cheap := POWER5Baseline()
	cheap.MispredictPenalty = 0
	dear := POWER5Baseline()
	dear.MispredictPenalty = 24
	ipcCheap := runWithMemory(t, cheap, build, memory).IPC()
	build2, memory2 := randomBranchLoop(7, 4000)
	ipcDear := runWithMemory(t, dear, build2, memory2).IPC()
	if ipcCheap <= ipcDear {
		t.Errorf("IPC with penalty 0 (%.2f) not above penalty 24 (%.2f)", ipcCheap, ipcDear)
	}
}

func TestTakenBranchBubbleAndBTAC(t *testing.T) {
	// A tight loop: every bdnz is taken; without a BTAC each pays the
	// 2-cycle bubble, with the BTAC almost none do.
	loop := func(a *isa.Asm) {
		a.Label("main")
		a.Li(isa.R4, 3000)
		a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R4})
		a.Label("loop")
		a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R5, RA: isa.R5, Imm: 1})
		a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R6, RA: isa.R6, Imm: 1})
		a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
		a.Ret()
	}
	noBTAC := POWER5Baseline()
	withBTAC := POWER5Baseline()
	withBTAC.UseBTAC = true

	plain := buildAndRun(t, noBTAC, loop)
	btac := buildAndRun(t, withBTAC, loop)

	if plain.TakenBubbles < 2900 {
		t.Errorf("taken bubbles without BTAC = %d, want about 3000", plain.TakenBubbles)
	}
	if btac.TakenBubbles > plain.TakenBubbles/10 {
		t.Errorf("BTAC left %d bubbles (baseline %d)", btac.TakenBubbles, plain.TakenBubbles)
	}
	if btac.IPC() <= plain.IPC() {
		t.Errorf("BTAC IPC %.2f not above baseline %.2f", btac.IPC(), plain.IPC())
	}
	if btac.BTACCorrect == 0 || btac.BTACPredicts == 0 {
		t.Errorf("BTAC counters silent: %+v", btac)
	}
	if rate := btac.BTACMispredictRate(); rate > 0.05 {
		t.Errorf("BTAC mispredict rate %.3f on a steady loop", rate)
	}
}

func TestZeroTakenPenaltyMatchesBTACIdeal(t *testing.T) {
	loop := independentAdds(2)
	noPenalty := POWER5Baseline()
	noPenalty.TakenBranchPenalty = 0
	base := POWER5Baseline()
	free := buildAndRun(t, noPenalty, loop)
	paid := buildAndRun(t, base, loop)
	if free.Cycles >= paid.Cycles {
		t.Errorf("removing the taken penalty did not help: %d vs %d cycles",
			free.Cycles, paid.Cycles)
	}
}

func TestExtensionsGate(t *testing.T) {
	a := isa.NewAsm()
	a.Label("main")
	a.Emit(isa.Instruction{Op: isa.OpMax, RT: isa.R3, RA: isa.R3, RB: isa.R4})
	a.Ret()
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mach := machine.New(p, mem.New())
	mach.Reset()
	if err := mach.SetPC("main"); err != nil {
		t.Fatal(err)
	}
	model := MustNew(POWER5Baseline()) // Extensions false
	if _, err := model.Run(mach, 1000); err == nil {
		t.Error("max executed on a core without ISA extensions")
	}

	cfg := POWER5Baseline()
	cfg.Extensions = true
	mach2 := machine.New(p, mem.New())
	mach2.Reset()
	if err := mach2.SetPC("main"); err != nil {
		t.Fatal(err)
	}
	if _, err := MustNew(cfg).Run(mach2, 1000); err != nil {
		t.Errorf("max rejected with extensions enabled: %v", err)
	}
}

func TestL1DMissesCounted(t *testing.T) {
	// Stream far beyond L1 capacity with 128-byte stride: every access
	// misses L1.
	memory := mem.New()
	build := func(a *isa.Asm) {
		a.Label("main")
		a.Li(isa.R4, 4000)
		a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R4})
		a.Li64(isa.R5, 0x100000)
		a.Li(isa.R6, 0)
		a.Label("loop")
		a.Emit(isa.Instruction{Op: isa.OpLbzx, RT: isa.R7, RA: isa.R5, RB: isa.R6})
		a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R6, RA: isa.R6, Imm: 128})
		a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
		a.Ret()
	}
	ctr := runWithMemory(t, POWER5Baseline(), build, memory)
	if ctr.L1DAccesses < 4000 {
		t.Fatalf("L1D accesses = %d", ctr.L1DAccesses)
	}
	if rate := ctr.L1DMissRate(); rate < 0.9 {
		t.Errorf("streaming miss rate = %.2f, want about 1.0", rate)
	}
	// And a hot loop on one line misses almost never.
	build2 := func(a *isa.Asm) {
		a.Label("main")
		a.Li(isa.R4, 4000)
		a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R4})
		a.Li64(isa.R5, 0x100000)
		a.Label("loop")
		a.Emit(isa.Instruction{Op: isa.OpLbz, RT: isa.R7, RA: isa.R5, Imm: 0})
		a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
		a.Ret()
	}
	ctr2 := runWithMemory(t, POWER5Baseline(), build2, mem.New())
	if rate := ctr2.L1DMissRate(); rate > 0.01 {
		t.Errorf("hot-line miss rate = %.4f, want about 0", rate)
	}
}

func TestCacheMissesSlowLoads(t *testing.T) {
	stream := func(stride int64) func(a *isa.Asm) {
		return func(a *isa.Asm) {
			a.Label("main")
			a.Li(isa.R4, 4000)
			a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R4})
			a.Li64(isa.R5, 0x100000)
			a.Li(isa.R6, 0)
			a.Label("loop")
			a.Emit(isa.Instruction{Op: isa.OpLbzx, RT: isa.R7, RA: isa.R5, RB: isa.R6})
			// Dependent use of the load forces latency exposure.
			a.Emit(isa.Instruction{Op: isa.OpAdd, RT: isa.R8, RA: isa.R8, RB: isa.R7})
			a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R6, RA: isa.R6, Imm: stride})
			a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
			a.Ret()
		}
	}
	hot := runWithMemory(t, POWER5Baseline(), stream(0), mem.New())
	cold := runWithMemory(t, POWER5Baseline(), stream(1<<13), mem.New()) // page-stride: misses L1+L2
	if cold.Cycles <= hot.Cycles {
		t.Errorf("cache-missing loop (%d cycles) not slower than hot loop (%d)",
			cold.Cycles, hot.Cycles)
	}
}

func TestWindowLimitsRunahead(t *testing.T) {
	// A load missing to memory at the head plus a long independent tail:
	// a small window should be slower than a big one.
	build := func(a *isa.Asm) {
		a.Label("main")
		a.Li(isa.R4, 200)
		a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R4})
		a.Li64(isa.R5, 0x200000)
		a.Li(isa.R6, 0)
		a.Label("loop")
		a.Emit(isa.Instruction{Op: isa.OpLbzx, RT: isa.R7, RA: isa.R5, RB: isa.R6})
		for i := 0; i < 30; i++ {
			a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R8 + isa.Reg(i%4), RA: isa.R0, Imm: 1})
		}
		a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R6, RA: isa.R6, Imm: 1 << 13})
		a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
		a.Ret()
	}
	small := POWER5Baseline()
	small.Window = 8
	big := POWER5Baseline()
	big.Window = 256
	cSmall := runWithMemory(t, small, build, mem.New())
	cBig := runWithMemory(t, big, build, mem.New())
	if cBig.Cycles >= cSmall.Cycles {
		t.Errorf("bigger window not faster: %d vs %d cycles", cBig.Cycles, cSmall.Cycles)
	}
}

func TestCountersSubAndRates(t *testing.T) {
	a := Counters{Cycles: 100, Instructions: 50, CondBranches: 10, DirMispredicts: 2,
		L1DAccesses: 20, L1DMisses: 1, Branches: 12, TakenBranches: 6}
	b := Counters{Cycles: 40, Instructions: 20, CondBranches: 4, DirMispredicts: 1,
		L1DAccesses: 8, L1DMisses: 1, Branches: 5, TakenBranches: 2}
	d := a.Sub(b)
	if d.Cycles != 60 || d.Instructions != 30 || d.CondBranches != 6 || d.DirMispredicts != 1 {
		t.Errorf("Sub = %+v", d)
	}
	if ipc := d.IPC(); ipc != 0.5 {
		t.Errorf("IPC = %f", ipc)
	}
	if (Counters{}).IPC() != 0 || (Counters{}).L1DMissRate() != 0 ||
		(Counters{}).BranchMispredictRate() != 0 || (Counters{}).DirectionShare() != 0 ||
		(Counters{}).BTACMispredictRate() != 0 || (Counters{}).TakenFraction() != 0 ||
		(Counters{}).BranchFraction() != 0 || (Counters{}).StallFXUShare() != 0 {
		t.Error("zero counters produced non-zero rates")
	}
}

func TestPredicationBeatsBranchOnHostileData(t *testing.T) {
	// The paper's core claim in miniature: computing max(a,b) over
	// random data via branches loses to the max instruction.
	memory := mem.New()
	rng := rand.New(rand.NewSource(3))
	base := uint64(0x30000)
	const n = 4000
	for i := 0; i < n; i++ {
		memory.WriteInt(base+uint64(8*i), 8, int64(rng.Intn(1000)))
	}
	// Note: a *running* max over random data settles quickly (later
	// values rarely exceed it), so that branch would be predictable.
	// Comparing *adjacent pairs* stays 50/50 hostile, which is the DP
	// inner-loop situation the paper describes.
	branchyPair := func(a *isa.Asm) {
		a.Label("main")
		a.Li(isa.R4, n/2)
		a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R4})
		a.Li64(isa.R5, int64(base))
		a.Li(isa.R6, 0)
		a.Li(isa.R7, 0) // sum of maxes
		a.Label("loop")
		a.Emit(isa.Instruction{Op: isa.OpLdx, RT: isa.R8, RA: isa.R5, RB: isa.R6})
		a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R6, RA: isa.R6, Imm: 8})
		a.Emit(isa.Instruction{Op: isa.OpLdx, RT: isa.R9, RA: isa.R5, RB: isa.R6})
		a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R6, RA: isa.R6, Imm: 8})
		a.Emit(isa.Instruction{Op: isa.OpCmpd, CRF: isa.CR0, RA: isa.R8, RB: isa.R9})
		a.Branch(isa.Instruction{Op: isa.OpBc, CRF: isa.CR0, Bit: isa.CRGT, Want: true}, "keep")
		a.Mr(isa.R8, isa.R9)
		a.Label("keep")
		a.Emit(isa.Instruction{Op: isa.OpAdd, RT: isa.R7, RA: isa.R7, RB: isa.R8})
		a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
		a.Mr(isa.R3, isa.R7)
		a.Ret()
	}
	maxedPair := func(a *isa.Asm) {
		a.Label("main")
		a.Li(isa.R4, n/2)
		a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R4})
		a.Li64(isa.R5, int64(base))
		a.Li(isa.R6, 0)
		a.Li(isa.R7, 0)
		a.Label("loop")
		a.Emit(isa.Instruction{Op: isa.OpLdx, RT: isa.R8, RA: isa.R5, RB: isa.R6})
		a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R6, RA: isa.R6, Imm: 8})
		a.Emit(isa.Instruction{Op: isa.OpLdx, RT: isa.R9, RA: isa.R5, RB: isa.R6})
		a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R6, RA: isa.R6, Imm: 8})
		a.Emit(isa.Instruction{Op: isa.OpMax, RT: isa.R8, RA: isa.R8, RB: isa.R9})
		a.Emit(isa.Instruction{Op: isa.OpAdd, RT: isa.R7, RA: isa.R7, RB: isa.R8})
		a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
		a.Mr(isa.R3, isa.R7)
		a.Ret()
	}
	cfg := POWER5Baseline()
	cfg.Extensions = true
	cBr := runWithMemory(t, cfg, branchyPair, memory)
	cMax := runWithMemory(t, cfg, maxedPair, memory)
	if cMax.Cycles >= cBr.Cycles {
		t.Errorf("max kernel (%d cycles) not faster than branchy kernel (%d cycles)",
			cMax.Cycles, cBr.Cycles)
	}
	if cBr.DirMispredicts < 500 {
		t.Errorf("branchy kernel mispredicts = %d; data not hostile enough", cBr.DirMispredicts)
	}
	if cMax.MaxOps == 0 {
		t.Error("max kernel executed no max instructions")
	}
}
