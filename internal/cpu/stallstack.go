package cpu

// StallStack is the CPI stall stack of the timing model: every cycle
// of a run is attributed to exactly one bucket, so the buckets always
// sum to Counters.Cycles (enforced by TestStallStackInvariant).  It is
// the top-down companion to the flat Counters — where Table I reports
// "% completion stalls due FXU instructions", the stack says where
// *all* the cycles went.
//
// Attribution is single-cause: when the completion point advances by N
// cycles, those N cycles are charged to the dominant constraint of the
// instruction that moved it (memory level > structural unit > operand
// producer > window > front-end redirect > base).  DESIGN.md maps each
// bucket onto the paper's Table I rows.
type StallStack struct {
	// Base covers cycles in which the pipeline streamed normally:
	// startup fill, dispatch-bandwidth-limited flow and straight-through
	// single-cycle execution.
	Base uint64 `json:"base"`
	// MispredictFlush covers cycles lost refilling after a branch
	// direction or BTAC target mispredict flush.
	MispredictFlush uint64 `json:"mispredict_flush"`
	// TakenBubble covers the POWER5's taken-branch fetch bubbles
	// (removed by the Section IV-D BTAC).
	TakenBubble uint64 `json:"taken_bubble"`
	// L1DMiss covers load latency satisfied from L2 (L1D miss, L2 hit).
	L1DMiss uint64 `json:"l1d_miss"`
	// L2Miss covers load latency paid to memory (missed both levels).
	L2Miss uint64 `json:"l2_miss"`
	// FXU/LSU/BRU cover cycles in which completion waited on that unit
	// class — either structurally (all units busy) or for an operand
	// produced by it (Table I's "stalls due FXU instructions").
	FXU uint64 `json:"fxu"`
	LSU uint64 `json:"lsu"`
	BRU uint64 `json:"bru"`
	// WindowFull covers dispatch stalled on a full reorder window.
	WindowFull uint64 `json:"window_full"`
	// Completion covers cycles advanced purely by the in-order
	// completion-width limit (the group retired at full width).
	Completion uint64 `json:"completion"`
}

// Total returns the sum of all buckets; it equals Counters.Cycles for
// the model that produced the stack.
func (s StallStack) Total() uint64 {
	return s.Base + s.MispredictFlush + s.TakenBubble + s.L1DMiss + s.L2Miss +
		s.FXU + s.LSU + s.BRU + s.WindowFull + s.Completion
}

// Add returns s + o bucket-wise, for aggregating multiple invocations.
func (s StallStack) Add(o StallStack) StallStack {
	return StallStack{
		Base:            s.Base + o.Base,
		MispredictFlush: s.MispredictFlush + o.MispredictFlush,
		TakenBubble:     s.TakenBubble + o.TakenBubble,
		L1DMiss:         s.L1DMiss + o.L1DMiss,
		L2Miss:          s.L2Miss + o.L2Miss,
		FXU:             s.FXU + o.FXU,
		LSU:             s.LSU + o.LSU,
		BRU:             s.BRU + o.BRU,
		WindowFull:      s.WindowFull + o.WindowFull,
		Completion:      s.Completion + o.Completion,
	}
}

// BucketShare is one named bucket with its fraction of total cycles.
type BucketShare struct {
	Name   string  `json:"name"`
	Cycles uint64  `json:"cycles"`
	Share  float64 `json:"share"`
}

// Buckets returns the stack as named shares in fixed order (the order
// the paper discusses the costs: useful work first, then branches,
// memory, units, and machine limits).
func (s StallStack) Buckets() []BucketShare {
	total := s.Total()
	mk := func(name string, v uint64) BucketShare {
		b := BucketShare{Name: name, Cycles: v}
		if total > 0 {
			b.Share = float64(v) / float64(total)
		}
		return b
	}
	return []BucketShare{
		mk(BucketBase, s.Base),
		mk(BucketMispredictFlush, s.MispredictFlush),
		mk(BucketTakenBubble, s.TakenBubble),
		mk(BucketL1DMiss, s.L1DMiss),
		mk(BucketL2Miss, s.L2Miss),
		mk(BucketFXU, s.FXU),
		mk(BucketLSU, s.LSU),
		mk(BucketBRU, s.BRU),
		mk(BucketWindowFull, s.WindowFull),
		mk(BucketCompletion, s.Completion),
	}
}

// Bucket names as they appear in trace events, JSON reports and the
// telemetry registry.
const (
	BucketBase            = "base"
	BucketMispredictFlush = "mispredict_flush"
	BucketTakenBubble     = "taken_bubble"
	BucketL1DMiss         = "l1d_miss"
	BucketL2Miss          = "l2_miss"
	BucketFXU             = "fxu"
	BucketLSU             = "lsu"
	BucketBRU             = "bru"
	BucketWindowFull      = "window_full"
	BucketCompletion      = "completion"
)

// Report bundles the flat counters with the stall stack — the full
// observable state of one simulation.
type Report struct {
	Counters Counters   `json:"counters"`
	Stalls   StallStack `json:"stall_stack"`
}

// Add aggregates two reports field-wise.
func (r Report) Add(o Report) Report {
	return Report{Counters: r.Counters.Add(o.Counters), Stalls: r.Stalls.Add(o.Stalls)}
}
