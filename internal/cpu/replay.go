package cpu

import (
	"fmt"

	"bioperf5/internal/branch"
	"bioperf5/internal/isa"
)

// This file is the replay half of the capture-once/replay-many trace
// subsystem.  Model.Consume is the reference implementation: it runs
// the functional machine's output through the live cache hierarchy and
// direction predictor.  Replayer reproduces its counters and stall
// stack bit-for-bit from an annotated trace instead — the miss level of
// every memory access is read from the trace (it is invariant across
// the timing configurations a sweep varies), while both branch
// predictors — the direction predictor and the BTAC, whose choice and
// geometry the sweeps change — run live.  A direction predictor is a
// pure function of the (pc, taken) stream the trace records, so
// running it live costs little and keeps the predictor out of trace
// identity: one capture serves the whole predictor zoo.  Everything
// static per PC (op class, register uses and defs, latencies) is
// precomputed once per compiled program by ProgMeta.
//
// Replayer deliberately re-implements rather than calls into Consume:
// the coupled path keeps its telemetry hooks and live structures, the
// replay path sheds them for speed.  The replay-equivalence golden
// tests in kernels hold the two implementations together.

// InsMeta is the static per-instruction metadata replay needs, laid
// out for a flat lookup by PC.
type InsMeta struct {
	Uses   [3]isa.Reg // read registers, in Instruction.Uses order
	NUses  uint8
	Def    isa.Reg // written register (at most one in the ISA)
	HasDef bool

	Class  isa.Class
	Lat    uint64 // static execution latency (loads: overridden by miss level)
	Load   bool
	Store  bool
	Branch bool
	CondBr bool
	Ext    bool // instruction requires ISA extensions (max/isel)

	kind uint8 // op-counter bucket, see kind* below
	Op   isa.Op
}

// Op-counter buckets, mirroring Consume's switch: a compare counts as
// CmpOps even when the op is also max/isel-adjacent, then max, then
// isel.
const (
	kindNone = iota
	kindCmp
	kindMax
	kindIsel
)

// ProgMeta precomputes the per-PC metadata for a compiled program.  It
// is pure and deterministic; kernels caches it alongside the program.
func ProgMeta(p *isa.Program) []InsMeta {
	metas := make([]InsMeta, len(p.Code))
	var regs []isa.Reg
	for i := range p.Code {
		ins := &p.Code[i]
		info := ins.Op.Info()
		m := &metas[i]
		m.Class = info.Class
		m.Lat = uint64(info.Latency)
		m.Load = info.Load
		m.Store = info.Store
		m.Branch = info.Branch
		m.CondBr = info.CondBr
		m.Ext = ins.Op == isa.OpMax || ins.Op == isa.OpIsel
		m.Op = ins.Op
		switch {
		case info.Compare:
			m.kind = kindCmp
		case ins.Op == isa.OpMax:
			m.kind = kindMax
		case ins.Op == isa.OpIsel:
			m.kind = kindIsel
		}
		regs = ins.Uses(regs[:0])
		m.NUses = uint8(copy(m.Uses[:], regs))
		regs = ins.Defs(regs[:0])
		if len(regs) > 0 {
			m.Def, m.HasDef = regs[0], true
		}
	}
	return metas
}

// ReplayEvent is one dynamic instruction reconstructed from a trace:
// the static metadata for its PC plus the dynamic facts the trace
// recorded.  The effective address is not needed — the miss level
// already encodes what the cache would have said.
type ReplayEvent struct {
	Meta      *InsMeta
	PC        int
	Next      int
	Taken     bool
	MissLevel uint8 // memory ops: 0 L1 hit, 1 L2 hit, 2 memory
}

// Replay-side fetch-redirect causes (Model uses the bucket-name
// strings; an enum compares faster).
const (
	fcNone = iota
	fcMispredict
	fcTakenBubble
)

// Replayer is the decoupled timing model: same pipeline arithmetic as
// Model, fed by ReplayEvents instead of machine.DynInst.
type Replayer struct {
	cfg     Config
	pred    branch.DirectionPredictor
	btac    *branch.BTAC
	loadLat [3]uint64 // load-to-use latency per miss level, from the trace

	ctr    Counters
	stalls StallStack

	fetchCycle   uint64
	fetchedAt    uint64
	fetchCause   uint8
	dispCycle    uint64
	dispatchedAt uint64
	complCycle   uint64
	completedAt  uint64

	regReady  [isa.NumRegs]uint64
	regWriter [isa.NumRegs]isa.Class
	regMiss   [isa.NumRegs]uint8
	units     [4][]uint64 // indexed by isa.Class

	groupCompl uint64
	groupFill  uint64
	window     []uint64
	wpos       int
	wcount     int
}

// NewReplayer builds a replayer for cfg charging the given per-level
// load latencies (recorded in the trace meta at capture time).
func NewReplayer(cfg Config, loadLat [3]int) (*Replayer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Replayer{cfg: cfg, pred: branch.New(cfg.Predictor)}
	if cfg.UseBTAC {
		r.btac = branch.NewBTAC(cfg.BTAC)
	}
	r.units[isa.ClassFXU] = make([]uint64, cfg.NumFXU)
	r.units[isa.ClassLSU] = make([]uint64, cfg.NumLSU)
	r.units[isa.ClassBRU] = make([]uint64, cfg.NumBRU)
	r.units[isa.ClassCRU] = make([]uint64, cfg.NumCRU)
	r.window = make([]uint64, cfg.Window)
	r.fetchCycle = 1
	for i, l := range loadLat {
		r.loadLat[i] = uint64(l)
	}
	return r, nil
}

// Counters returns a snapshot with Cycles set to the pipeline time,
// exactly as Model.Counters does.
func (r *Replayer) Counters() Counters {
	c := r.ctr
	c.Cycles = r.complCycle
	return c
}

// Stalls returns the accumulated CPI stall stack.
func (r *Replayer) Stalls() StallStack { return r.stalls }

// Report returns counters and stall stack together.
func (r *Replayer) Report() Report {
	return Report{Counters: r.Counters(), Stalls: r.Stalls()}
}

// Consume advances the pipeline by one replayed instruction.  The
// structure tracks Model.Consume statement for statement; divergence
// here is a bug the replay-equivalence tests exist to catch.
func (r *Replayer) Consume(ev *ReplayEvent) error {
	meta := ev.Meta
	if meta.Ext && !r.cfg.Extensions {
		return fmt.Errorf("cpu: illegal instruction %s: ISA extensions disabled (unmodified POWER5)", meta.Op)
	}

	// ---- Fetch.
	fetchC := r.fetchCycle
	if r.fetchedAt >= uint64(r.cfg.FetchWidth) {
		fetchC++
	}
	if fetchC > r.fetchCycle {
		r.fetchCycle = fetchC
		r.fetchedAt = 0
		r.fetchCause = fcNone
	}
	fcause := r.fetchCause
	r.fetchedAt++

	// ---- Dispatch.
	dispC := fetchC + uint64(r.cfg.FrontendDepth)
	if dispC < r.dispCycle {
		dispC = r.dispCycle
	}
	if dispC == r.dispCycle && r.dispatchedAt >= uint64(r.cfg.DispatchWidth) {
		dispC++
	}
	windowLimited := false
	if r.wcount >= len(r.window) {
		if oldest := r.window[r.wpos]; dispC <= oldest {
			dispC = oldest + 1
			windowLimited = true
		}
	}
	if dispC > r.dispCycle {
		r.dispCycle = dispC
		r.dispatchedAt = 0
	}
	r.dispatchedAt++

	// ---- Issue.
	readyC := dispC + 1
	blockerClass := isa.ClassFXU
	blockerMiss := uint8(0)
	for i := uint8(0); i < meta.NUses; i++ {
		reg := meta.Uses[i]
		if r.regReady[reg] > readyC {
			readyC = r.regReady[reg]
			blockerClass = r.regWriter[reg]
			blockerMiss = r.regMiss[reg]
		}
	}
	class := meta.Class
	units := r.units[class]
	best := 0
	for i := 1; i < len(units); i++ {
		if units[i] < units[best] {
			best = i
		}
	}
	issueC := readyC
	if units[best] > issueC {
		issueC = units[best]
	}
	units[best] = issueC + 1

	stallClass := blockerClass
	if issueC > readyC {
		stallClass = class
	}

	// ---- Execute: miss level comes from the trace, latency from the
	// recorded per-level table — same numbers Consume got from the live
	// hierarchy, without simulating it.
	lat := meta.Lat
	missLevel := uint8(0)
	if meta.Load || meta.Store {
		r.ctr.L1DAccesses++
		if ev.MissLevel >= 1 {
			r.ctr.L1DMisses++
			r.ctr.L2Accesses++
			if ev.MissLevel >= 2 {
				r.ctr.L2Misses++
			}
		}
		if meta.Load {
			missLevel = ev.MissLevel
			lat = r.loadLat[missLevel]
		}
		// Stores charge the cache counters but retire in one cycle with
		// missLevel 0, exactly as in Consume.
	}
	doneC := issueC + lat
	if meta.HasDef {
		r.regReady[meta.Def] = doneC
		r.regWriter[meta.Def] = class
		r.regMiss[meta.Def] = missLevel
	}

	switch class {
	case isa.ClassFXU:
		r.ctr.FXUOps++
	case isa.ClassLSU:
		r.ctr.LSUOps++
	case isa.ClassBRU:
		r.ctr.BRUOps++
	}
	switch meta.kind {
	case kindCmp:
		r.ctr.CmpOps++
	case kindMax:
		r.ctr.MaxOps++
	case kindIsel:
		r.ctr.IselOps++
	}

	// ---- Branch resolution.
	if meta.Branch {
		r.branchTiming(ev, fetchC, doneC)
	}

	// ---- In-order completion.
	complC := doneC
	if complC < r.complCycle {
		complC = r.complCycle
	}
	if complC == r.complCycle && r.completedAt >= uint64(r.cfg.CompleteWidth) {
		complC++
	}
	if complC > r.complCycle {
		r.chargeStalls(complC-r.complCycle, r.complCycle,
			doneC, issueC, readyC, dispC, class, blockerClass, blockerMiss,
			missLevel, windowLimited, fcause)
	}
	r.groupFill++
	if gap := int64(complC) - int64(r.groupCompl) - 1; gap > 0 {
		stall := uint64(gap)
		switch {
		case doneC == complC && (issueC > dispC+1 || lat > 1):
			if issueC > dispC+1 {
				r.attributeStall(stallClass, stall)
			} else {
				r.attributeStall(class, stall)
			}
		default:
			r.ctr.StallFrontend += stall
		}
		r.groupCompl = complC
		r.groupFill = 0
	} else if r.groupFill >= uint64(r.cfg.CompleteWidth) {
		r.groupCompl = complC
		r.groupFill = 0
	}
	if complC > r.complCycle {
		r.complCycle = complC
		r.completedAt = 0
	}
	r.completedAt++
	r.ctr.Instructions++

	if r.wcount >= len(r.window) {
		r.wpos = (r.wpos + 1) % len(r.window)
	} else {
		r.wcount++
	}
	idx := (r.wpos + r.wcount - 1) % len(r.window)
	r.window[idx] = complC
	return nil
}

// chargeStalls mirrors Model.chargeStalls with the fetch cause as an
// enum; the priority order is identical.
func (r *Replayer) chargeStalls(delta, oldCompl, doneC, issueC, readyC, dispC uint64,
	class, blocker isa.Class, blockerMiss, missLevel uint8,
	windowLimited bool, fcause uint8) {
	bucket := &r.stalls.Base
	switch {
	case doneC <= oldCompl:
		bucket = &r.stalls.Completion
	case missLevel == 2:
		bucket = &r.stalls.L2Miss
	case missLevel == 1:
		bucket = &r.stalls.L1DMiss
	case issueC > readyC:
		bucket = r.unitBucket(class)
	case readyC > dispC+1:
		switch {
		case blockerMiss == 2:
			bucket = &r.stalls.L2Miss
		case blockerMiss == 1:
			bucket = &r.stalls.L1DMiss
		default:
			bucket = r.unitBucket(blocker)
		}
	case windowLimited:
		bucket = &r.stalls.WindowFull
	case fcause == fcMispredict:
		bucket = &r.stalls.MispredictFlush
	case fcause == fcTakenBubble:
		bucket = &r.stalls.TakenBubble
	}
	*bucket += delta
}

func (r *Replayer) unitBucket(class isa.Class) *uint64 {
	switch class {
	case isa.ClassLSU:
		return &r.stalls.LSU
	case isa.ClassBRU:
		return &r.stalls.BRU
	default:
		return &r.stalls.FXU
	}
}

func (r *Replayer) attributeStall(class isa.Class, n uint64) {
	switch class {
	case isa.ClassFXU, isa.ClassCRU:
		r.ctr.StallFXU += n
	case isa.ClassLSU:
		r.ctr.StallLSU += n
	case isa.ClassBRU:
		r.ctr.StallBRU += n
	}
}

// branchTiming mirrors Model.branchTiming: both the direction
// predictor and the BTAC run live, because predictor choice and BTAC
// geometry are part of the timing configuration the sweeps vary.
func (r *Replayer) branchTiming(ev *ReplayEvent, fetchC, doneC uint64) {
	r.ctr.Branches++

	mispredicted := false
	if ev.Meta.CondBr {
		r.ctr.CondBranches++
		predTaken := r.pred.Predict(ev.PC)
		r.pred.Update(ev.PC, ev.Taken)
		if predTaken != ev.Taken {
			r.ctr.DirMispredicts++
			mispredicted = true
		}
	}

	if ev.Taken {
		r.ctr.TakenBranches++
	}

	switch {
	case mispredicted:
		r.redirect(doneC+uint64(r.cfg.MispredictPenalty), fcMispredict)
		if r.btac != nil && ev.Taken {
			r.btac.Update(ev.PC, ev.Next)
		}
	case ev.Taken:
		bubble := uint64(r.cfg.TakenBranchPenalty)
		if r.btac != nil {
			r.ctr.BTACLookups++
			nia, predict := r.btac.Lookup(ev.PC)
			if predict {
				r.ctr.BTACPredicts++
				if nia == ev.Next {
					r.ctr.BTACCorrect++
					bubble = 0
				} else {
					r.ctr.TgtMispredicts++
					r.btac.Update(ev.PC, ev.Next)
					r.redirect(doneC+uint64(r.cfg.MispredictPenalty), fcMispredict)
					return
				}
			}
			r.btac.Update(ev.PC, ev.Next)
		}
		if bubble > 0 {
			r.ctr.TakenBubbles++
			r.redirect(fetchC+1+bubble, fcTakenBubble)
		}
	}
}

func (r *Replayer) redirect(c uint64, cause uint8) {
	if c > r.fetchCycle {
		r.fetchCycle = c
		r.fetchedAt = 0
		r.fetchCause = cause
	}
}
