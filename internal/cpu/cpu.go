// Package cpu implements the cycle-approximate POWER5-like core timing
// model.  It is trace-driven: package machine executes the program
// functionally and feeds each dynamic instruction (with its resolved
// branch outcome and effective address) to Model.Consume, which charges
// cycles the way the POWER5 pipeline would.
//
// The model covers exactly the behaviours the paper measures and varies:
//
//   - an 8-wide fetch front end with a 2-cycle taken-branch bubble
//     (3 with SMT), removable by the score-based BTAC of Section IV-D;
//   - a tournament direction predictor whose mispredictions flush the
//     pipeline (the dominant cost for DP kernels, Table I / Figure 2);
//   - 5-wide dispatch and in-order 5-wide completion over a reorder
//     window, with completion-stall attribution by functional-unit
//     class (Table I's "stalls due FXU instructions");
//   - configurable numbers of fully pipelined FXUs (Figure 5), plus
//     LSUs and a BRU;
//   - an L1D/L2 data-cache hierarchy supplying load-to-use latencies
//     (Table I's L1D miss rate).
//
// Out-of-order issue is modelled with true data dependencies only
// (registers renamed perfectly, as on POWER5 within its window), using
// per-register ready cycles and earliest-free functional units.
package cpu

import (
	"fmt"
	"reflect"
	"strconv"

	"bioperf5/internal/branch"
	"bioperf5/internal/cache"
	"bioperf5/internal/isa"
	"bioperf5/internal/machine"
	"bioperf5/internal/telemetry"
)

// Config selects the microarchitectural parameters.  The zero value is
// not usable; start from POWER5Baseline.
type Config struct {
	FetchWidth    int // instructions fetched per cycle (POWER5: 8)
	DispatchWidth int // instructions dispatched per cycle (POWER5: 5)
	CompleteWidth int // instructions completed per cycle (POWER5: 5)

	NumFXU int // fixed-point units (POWER5: 2; the paper tries 3 and 4)
	NumLSU int // load/store units (POWER5: 2)
	NumBRU int // branch units (POWER5: 1)
	NumCRU int // condition-register units (POWER5: 1)

	Window int // reorder window in instructions

	FrontendDepth      int // fetch-to-dispatch pipeline depth in cycles
	MispredictPenalty  int // flush/refetch penalty for a mispredicted branch
	TakenBranchPenalty int // fetch bubble for a taken branch (POWER5: 2, 3 with SMT)

	Predictor string // direction predictor name (see branch.New)

	UseBTAC bool              // add the Section IV-D BTAC
	BTAC    branch.BTACConfig // BTAC geometry when UseBTAC

	// Extensions gates decode support for the paper's new instructions.
	// With it false, a program containing max/isel faults, mirroring an
	// unmodified POWER5.
	Extensions bool
}

// POWER5Baseline returns the configuration matching the paper's in-lab
// 1.65 GHz POWER5 (one core, SMT off): 8-wide fetch, 5-wide
// dispatch/complete, 2 FXUs, 2 LSUs, 2-cycle taken-branch delay, no
// BTAC, no predicated instructions.
func POWER5Baseline() Config {
	return Config{
		FetchWidth:         8,
		DispatchWidth:      5,
		CompleteWidth:      5,
		NumFXU:             2,
		NumLSU:             2,
		NumBRU:             1,
		NumCRU:             1,
		Window:             120,
		FrontendDepth:      6,
		MispredictPenalty:  12,
		TakenBranchPenalty: 2,
		Predictor:          "tournament",
		BTAC:               branch.DefaultBTACConfig(),
	}
}

// Validate reports structurally impossible configurations.
func (c Config) Validate() error {
	switch {
	case c.FetchWidth <= 0 || c.DispatchWidth <= 0 || c.CompleteWidth <= 0:
		return fmt.Errorf("cpu: non-positive pipeline width")
	case c.NumFXU <= 0 || c.NumLSU <= 0 || c.NumBRU <= 0 || c.NumCRU <= 0:
		return fmt.Errorf("cpu: need at least one unit of each class")
	case c.Window <= 0:
		return fmt.Errorf("cpu: non-positive reorder window")
	case c.MispredictPenalty < 0 || c.TakenBranchPenalty < 0 || c.FrontendDepth < 0:
		return fmt.Errorf("cpu: negative latency")
	}
	return nil
}

// Counters is the hardware performance-counter set of the model; it is
// a superset of the events the paper reports.
type Counters struct {
	Cycles       uint64
	Instructions uint64

	FXUOps  uint64 // instructions executed on FXUs (includes cmp/max/isel)
	LSUOps  uint64
	BRUOps  uint64
	CmpOps  uint64 // compare instructions (isel path-length effect)
	MaxOps  uint64 // executed max instructions
	IselOps uint64 // executed isel instructions

	Branches       uint64 // all branch instructions
	CondBranches   uint64 // conditional branches
	TakenBranches  uint64 // branches that were taken
	DirMispredicts uint64 // direction mispredictions (conditional only)
	TgtMispredicts uint64 // target mispredictions (BTAC predicted wrong nia)

	BTACLookups  uint64 // taken branches that consulted the BTAC
	BTACPredicts uint64 // lookups confident enough to predict
	BTACCorrect  uint64 // predictions with the right target
	TakenBubbles uint64 // taken branches that paid the fetch bubble

	L1DAccesses uint64
	L1DMisses   uint64
	L2Accesses  uint64
	L2Misses    uint64

	// Completion-stall attribution: cycles in which no instruction
	// completed, attributed to what the oldest instruction was doing.
	StallFXU      uint64 // oldest instruction executing in an FXU
	StallLSU      uint64 // oldest instruction waiting on a load/store
	StallBRU      uint64
	StallFrontend uint64 // completion starved by fetch (flush refill etc.)
}

// IPC returns committed instructions per cycle.
func (c Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// L1DMissRate returns L1D misses per access.
func (c Counters) L1DMissRate() float64 {
	if c.L1DAccesses == 0 {
		return 0
	}
	return float64(c.L1DMisses) / float64(c.L1DAccesses)
}

// BranchMispredictRate returns direction+target mispredictions per
// conditional branch, the rate plotted in Figure 2.
func (c Counters) BranchMispredictRate() float64 {
	if c.CondBranches == 0 {
		return 0
	}
	return float64(c.DirMispredicts+c.TgtMispredicts) / float64(c.CondBranches)
}

// DirectionShare returns the fraction of all mispredictions that are
// direction (not target) mispredictions — Table I's third column.
func (c Counters) DirectionShare() float64 {
	total := c.DirMispredicts + c.TgtMispredicts
	if total == 0 {
		return 0
	}
	return float64(c.DirMispredicts) / float64(total)
}

// BranchFraction returns branches per instruction (Table II column 1).
func (c Counters) BranchFraction() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.Branches) / float64(c.Instructions)
}

// TakenFraction returns taken branches per branch (Table II column 3).
func (c Counters) TakenFraction() float64 {
	if c.Branches == 0 {
		return 0
	}
	return float64(c.TakenBranches) / float64(c.Branches)
}

// BTACMispredictRate returns wrong-target predictions per BTAC
// prediction (the table under Figure 4).
func (c Counters) BTACMispredictRate() float64 {
	if c.BTACPredicts == 0 {
		return 0
	}
	return float64(c.BTACPredicts-c.BTACCorrect) / float64(c.BTACPredicts)
}

// StallFXUShare returns FXU completion-stall cycles as a fraction of all
// cycles (Table I's last column).
func (c Counters) StallFXUShare() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.StallFXU) / float64(c.Cycles)
}

// Add returns c + o field-wise; used to aggregate counters over
// multiple kernel invocations of one workload.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Cycles:         c.Cycles + o.Cycles,
		Instructions:   c.Instructions + o.Instructions,
		FXUOps:         c.FXUOps + o.FXUOps,
		LSUOps:         c.LSUOps + o.LSUOps,
		BRUOps:         c.BRUOps + o.BRUOps,
		CmpOps:         c.CmpOps + o.CmpOps,
		MaxOps:         c.MaxOps + o.MaxOps,
		IselOps:        c.IselOps + o.IselOps,
		Branches:       c.Branches + o.Branches,
		CondBranches:   c.CondBranches + o.CondBranches,
		TakenBranches:  c.TakenBranches + o.TakenBranches,
		DirMispredicts: c.DirMispredicts + o.DirMispredicts,
		TgtMispredicts: c.TgtMispredicts + o.TgtMispredicts,
		BTACLookups:    c.BTACLookups + o.BTACLookups,
		BTACPredicts:   c.BTACPredicts + o.BTACPredicts,
		BTACCorrect:    c.BTACCorrect + o.BTACCorrect,
		TakenBubbles:   c.TakenBubbles + o.TakenBubbles,
		L1DAccesses:    c.L1DAccesses + o.L1DAccesses,
		L1DMisses:      c.L1DMisses + o.L1DMisses,
		L2Accesses:     c.L2Accesses + o.L2Accesses,
		L2Misses:       c.L2Misses + o.L2Misses,
		StallFXU:       c.StallFXU + o.StallFXU,
		StallLSU:       c.StallLSU + o.StallLSU,
		StallBRU:       c.StallBRU + o.StallBRU,
		StallFrontend:  c.StallFrontend + o.StallFrontend,
	}
}

// Sub returns c - o field-wise; used for interval statistics (Figure 2).
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Cycles:         c.Cycles - o.Cycles,
		Instructions:   c.Instructions - o.Instructions,
		FXUOps:         c.FXUOps - o.FXUOps,
		LSUOps:         c.LSUOps - o.LSUOps,
		BRUOps:         c.BRUOps - o.BRUOps,
		CmpOps:         c.CmpOps - o.CmpOps,
		MaxOps:         c.MaxOps - o.MaxOps,
		IselOps:        c.IselOps - o.IselOps,
		Branches:       c.Branches - o.Branches,
		CondBranches:   c.CondBranches - o.CondBranches,
		TakenBranches:  c.TakenBranches - o.TakenBranches,
		DirMispredicts: c.DirMispredicts - o.DirMispredicts,
		TgtMispredicts: c.TgtMispredicts - o.TgtMispredicts,
		BTACLookups:    c.BTACLookups - o.BTACLookups,
		BTACPredicts:   c.BTACPredicts - o.BTACPredicts,
		BTACCorrect:    c.BTACCorrect - o.BTACCorrect,
		TakenBubbles:   c.TakenBubbles - o.TakenBubbles,
		L1DAccesses:    c.L1DAccesses - o.L1DAccesses,
		L1DMisses:      c.L1DMisses - o.L1DMisses,
		L2Accesses:     c.L2Accesses - o.L2Accesses,
		L2Misses:       c.L2Misses - o.L2Misses,
		StallFXU:       c.StallFXU - o.StallFXU,
		StallLSU:       c.StallLSU - o.StallLSU,
		StallBRU:       c.StallBRU - o.StallBRU,
		StallFrontend:  c.StallFrontend - o.StallFrontend,
	}
}

// BranchProfiler observes every resolved branch the coupled model
// times, keyed by static PC.  The bprof package implements it to build
// the per-static-branch predictability profile; the interface lives
// here so cpu does not depend on the profiler.
type BranchProfiler interface {
	// OnCondBranch is called once per conditional branch with the
	// resolved direction and whether the live direction predictor
	// mispredicted it.
	OnCondBranch(pc int, taken, mispredicted bool)
	// OnBTAC is called once per BTAC lookup (taken branches with a BTAC
	// configured): predicted reports whether the BTAC was confident
	// enough to supply a target, wrong whether that target was wrong.
	OnBTAC(pc int, predicted, wrong bool)
}

// Model is the timing model for one core.
type Model struct {
	cfg  Config
	pred branch.DirectionPredictor
	btac *branch.BTAC
	mem  *cache.Hierarchy

	ctr    Counters
	stalls StallStack

	// Pipeline timing state.  All times are absolute cycle numbers.
	fetchCycle   uint64 // cycle the next instruction can be fetched
	fetchedAt    uint64 // how many instructions fetched in fetchCycle
	fetchCause   string // why fetchCycle was last pushed back ("" = streaming)
	dispCycle    uint64
	dispatchedAt uint64
	complCycle   uint64 // cycle of the most recent completion
	completedAt  uint64 // completions in complCycle

	regReady  [isa.NumRegs]uint64
	regWriter [isa.NumRegs]isa.Class // unit class of each register's last producer
	regMiss   [isa.NumRegs]int       // cache-miss level of each register's producing load
	units     map[isa.Class][]uint64 // next-free cycle per unit

	// Observability hooks (nil / zero when not attached).
	trace        *telemetry.TraceBuffer
	seq          uint64 // dynamic instruction number for trace events
	histLoad     *telemetry.Histogram
	histFlush    *telemetry.Histogram
	mispredictPC *telemetry.LabeledCounter
	profiler     BranchProfiler

	// Completion-group accounting for stall attribution.
	groupCompl uint64   // cycle the previous completion group retired
	groupFill  uint64   // instructions accumulated into the current group
	window     []uint64 // completion cycles, ring of size Window
	wpos       int
	wcount     int
}

// New builds a model; cfg must Validate.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		cfg:  cfg,
		pred: branch.New(cfg.Predictor),
		mem:  cache.NewPOWER5Hierarchy(),
	}
	if cfg.UseBTAC {
		m.btac = branch.NewBTAC(cfg.BTAC)
	}
	m.units = map[isa.Class][]uint64{
		isa.ClassFXU: make([]uint64, cfg.NumFXU),
		isa.ClassLSU: make([]uint64, cfg.NumLSU),
		isa.ClassBRU: make([]uint64, cfg.NumBRU),
		isa.ClassCRU: make([]uint64, cfg.NumCRU),
	}
	m.window = make([]uint64, cfg.Window)
	m.fetchCycle = 1
	return m, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Model {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// Counters returns a snapshot of the accumulated counters with Cycles
// set to the current pipeline time.
func (m *Model) Counters() Counters {
	c := m.ctr
	c.Cycles = m.complCycle
	return c
}

// Stalls returns the CPI stall stack accumulated so far.  Its Total
// always equals Counters().Cycles: every cycle the completion point has
// advanced is attributed to exactly one bucket.
func (m *Model) Stalls() StallStack { return m.stalls }

// Report returns the counters and stall stack together.
func (m *Model) Report() Report {
	return Report{Counters: m.Counters(), Stalls: m.Stalls()}
}

// SetTrace attaches a pipeline event trace: every consumed instruction
// appends one lifecycle record to buf.  Pass nil to stop tracing.
func (m *Model) SetTrace(buf *telemetry.TraceBuffer) { m.trace = buf }

// SetBranchProfiler attaches a per-static-branch observer; pass nil to
// detach.  Profiling never alters timing: the hooks fire after the
// predictors have been consulted and trained.
func (m *Model) SetBranchProfiler(p BranchProfiler) { m.profiler = p }

// AttachTelemetry wires the model's streaming distributions into reg:
// load-to-use latencies, misprediction flush lengths, and per-PC branch
// mispredict counts are observed live as instructions are consumed.
// Snapshot-style counters are published separately via PublishTo.
func (m *Model) AttachTelemetry(reg *telemetry.Registry) {
	m.histLoad = reg.Histogram("cpu.load_to_use.cycles", nil)
	m.histFlush = reg.Histogram("cpu.flush.cycles", nil)
	m.mispredictPC = reg.Labeled("cpu.branch.mispredict.pc")
}

// PublishTo mirrors the model's current state into reg: every Counters
// field (reflected, so new counters are picked up automatically), the
// stall-stack buckets, the headline derived rates, and the cache
// hierarchy's own statistics.
func (m *Model) PublishTo(reg *telemetry.Registry) {
	c := m.Counters()
	v := reflect.ValueOf(c)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		reg.Counter("cpu." + t.Field(i).Name).Set(v.Field(i).Uint())
	}
	reg.Gauge("cpu.rate.ipc").Set(c.IPC())
	reg.Gauge("cpu.rate.l1d_miss").Set(c.L1DMissRate())
	reg.Gauge("cpu.rate.branch_mispredict").Set(c.BranchMispredictRate())
	// Direction mispredicts attributed to the predictor that produced
	// them, labeled by canonical spec so every spelling of a predictor
	// aggregates into one row.
	spec := branch.CanonicalOrRaw(m.cfg.Predictor)
	lc := reg.Labeled("branch.pred.mispredicts")
	if have := lc.Value(spec); c.DirMispredicts > have {
		lc.Add(spec, c.DirMispredicts-have)
	}
	for _, b := range m.stalls.Buckets() {
		reg.Counter("cpu.stall." + b.Name).Set(b.Cycles)
	}
	m.mem.PublishTo(reg)
	if m.btac != nil {
		m.btac.PublishTo(reg)
	}
}

// Consume advances the pipeline model by one dynamic instruction.
func (m *Model) Consume(d machine.DynInst) error {
	ins := d.Ins
	if !m.cfg.Extensions && (ins.Op == isa.OpMax || ins.Op == isa.OpIsel) {
		return fmt.Errorf("cpu: illegal instruction %s: ISA extensions disabled (unmodified POWER5)", ins.Op)
	}

	// ---- Fetch: width-limited, plus any pending front-end bubble.
	fetchC := m.fetchCycle
	if m.fetchedAt >= uint64(m.cfg.FetchWidth) {
		fetchC++
	}
	if fetchC > m.fetchCycle {
		m.fetchCycle = fetchC
		m.fetchedAt = 0
		// Advancing by fetch width means the front end is streaming
		// again; the last redirect no longer explains this cycle.
		m.fetchCause = ""
	}
	fcause := m.fetchCause // why this instruction's fetch cycle is late
	m.fetchedAt++

	// ---- Dispatch: width-limited, in order, after the front-end depth,
	// and only when the reorder window has space.
	dispC := fetchC + uint64(m.cfg.FrontendDepth)
	if dispC < m.dispCycle {
		dispC = m.dispCycle
	}
	if dispC == m.dispCycle && m.dispatchedAt >= uint64(m.cfg.DispatchWidth) {
		dispC++
	}
	windowLimited := false
	if m.wcount >= len(m.window) {
		// Window full: wait for the oldest instruction to complete.
		if oldest := m.window[m.wpos]; dispC <= oldest {
			dispC = oldest + 1
			windowLimited = true
		}
	}
	if dispC > m.dispCycle {
		m.dispCycle = dispC
		m.dispatchedAt = 0
	}
	m.dispatchedAt++

	// ---- Issue: after dispatch, operands ready, and a unit free.
	readyC := dispC + 1
	blockerClass := isa.ClassFXU
	blockerMiss := 0 // cache-miss level of the blocking producer load
	for _, r := range ins.Uses(nil) {
		if m.regReady[r] > readyC {
			readyC = m.regReady[r]
			blockerClass = m.regWriter[r]
			blockerMiss = m.regMiss[r]
		}
	}
	class := ins.Class()
	units := m.units[class]
	best := 0
	for i := 1; i < len(units); i++ {
		if units[i] < units[best] {
			best = i
		}
	}
	issueC := readyC
	if units[best] > issueC {
		issueC = units[best]
	}
	units[best] = issueC + 1 // fully pipelined units

	// The class whose delay dominates this instruction's issue: the
	// producer of its latest operand, or its own unit when the unit
	// itself was the constraint.
	stallClass := blockerClass
	if issueC > readyC {
		stallClass = class
	}

	// ---- Execute.
	lat := uint64(ins.Op.Info().Latency)
	missLevel := 0 // 0 = hit/not a load, 1 = L1D miss, 2 = missed L2 too
	var memLat uint64
	if ins.IsLoad() || ins.IsStore() {
		m.ctr.L1DAccesses++
		l1Before := m.mem.L1.Stats()
		l2Before := m.mem.L2.Stats()
		accLat := m.mem.Access(d.EA)
		if m.mem.L1.Stats().Misses > l1Before.Misses {
			m.ctr.L1DMisses++
			m.ctr.L2Accesses++
			missLevel = 1
			if m.mem.L2.Stats().Misses > l2Before.Misses {
				m.ctr.L2Misses++
				missLevel = 2
			}
		}
		if ins.IsLoad() {
			lat = uint64(accLat)
			memLat = lat
			if m.histLoad != nil {
				m.histLoad.Observe(lat)
			}
		} else {
			missLevel = 0 // stores drain off the critical path
		}
		// Stores retire from the LSU in one cycle; the line fill still
		// happened above, charging the cache state, matching a
		// store-queue that drains off the critical path.
	}
	doneC := issueC + lat
	for _, r := range ins.Defs(nil) {
		m.regReady[r] = doneC
		m.regWriter[r] = class
		m.regMiss[r] = missLevel
	}

	switch class {
	case isa.ClassFXU:
		m.ctr.FXUOps++
	case isa.ClassLSU:
		m.ctr.LSUOps++
	case isa.ClassBRU:
		m.ctr.BRUOps++
	}
	switch {
	case ins.Op.Info().Compare:
		m.ctr.CmpOps++
	case ins.Op == isa.OpMax:
		m.ctr.MaxOps++
	case ins.Op == isa.OpIsel:
		m.ctr.IselOps++
	}

	// ---- Branch resolution: redirect the front end.
	var flush string
	if ins.IsBranch() {
		flush = m.branchTiming(d, fetchC, doneC)
	}

	// ---- In-order completion, width-limited.
	complC := doneC
	if complC < m.complCycle {
		complC = m.complCycle
	}
	if complC == m.complCycle && m.completedAt >= uint64(m.cfg.CompleteWidth) {
		complC++
	}
	// CPI stall stack: when this instruction moves the completion point
	// forward, charge those cycles to its dominant constraint.  Every
	// advance of complCycle flows through here, so the buckets sum to
	// the final cycle count by construction.
	var stallBucket string
	if complC > m.complCycle {
		stallBucket = m.chargeStalls(complC-m.complCycle, m.complCycle,
			doneC, issueC, readyC, dispC, class, blockerClass, blockerMiss,
			missLevel, windowLimited, fcause)
	}
	// Attribute the cycles in which completion was blocked.
	// Completion-stall attribution at POWER5 group granularity: every
	// CompleteWidth instructions form a completion group, and the
	// cycles in which no group completed are charged once — to the
	// unit class that delayed the group's critical instruction
	// (Table I's "completion stalls due to FXU instructions"), or to
	// the front end when the group simply arrived late (flush refill,
	// fetch bubbles).
	m.groupFill++
	if gap := int64(complC) - int64(m.groupCompl) - 1; gap > 0 {
		stall := uint64(gap)
		switch {
		case doneC == complC && (issueC > dispC+1 || lat > 1):
			if issueC > dispC+1 {
				m.attributeStall(stallClass, stall)
			} else {
				m.attributeStall(class, stall) // long-latency execution
			}
		default:
			m.ctr.StallFrontend += stall
		}
		m.groupCompl = complC
		m.groupFill = 0
	} else if m.groupFill >= uint64(m.cfg.CompleteWidth) {
		m.groupCompl = complC
		m.groupFill = 0
	}
	if complC > m.complCycle {
		m.complCycle = complC
		m.completedAt = 0
	}
	m.completedAt++
	m.ctr.Instructions++

	// Reorder-window bookkeeping.
	if m.wcount >= len(m.window) {
		m.wpos = (m.wpos + 1) % len(m.window)
	} else {
		m.wcount++
	}
	idx := (m.wpos + m.wcount - 1) % len(m.window)
	m.window[idx] = complC

	if m.trace != nil {
		ev := telemetry.TraceEvent{
			Seq:      m.seq,
			PC:       d.Index,
			Op:       ins.Op.String(),
			Fetch:    fetchC,
			Dispatch: dispC,
			Issue:    issueC,
			Complete: complC,
			Flush:    flush,
			Stall:    stallBucket,
		}
		if ins.IsLoad() || ins.IsStore() {
			ev.EA = d.EA
			ev.MemLat = memLat
		}
		m.trace.Append(ev)
	}
	m.seq++
	return nil
}

// chargeStalls attributes delta newly elapsed cycles (the completion
// point moving from oldCompl to oldCompl+delta) to one stall-stack
// bucket and returns the bucket's name.  Priority order: an on-time
// completion means the machine retired at full width; otherwise the
// late instruction's own memory miss, then a busy unit, then a slow
// operand producer (with producer loads traced back to the cache level
// that missed), then a full reorder window, then the front-end redirect
// that delayed its fetch; anything left is base pipeline flow.
func (m *Model) chargeStalls(delta, oldCompl, doneC, issueC, readyC, dispC uint64,
	class, blocker isa.Class, blockerMiss, missLevel int,
	windowLimited bool, fcause string) string {
	bucket, name := &m.stalls.Base, BucketBase
	switch {
	case doneC <= oldCompl:
		bucket, name = &m.stalls.Completion, BucketCompletion
	case missLevel == 2:
		bucket, name = &m.stalls.L2Miss, BucketL2Miss
	case missLevel == 1:
		bucket, name = &m.stalls.L1DMiss, BucketL1DMiss
	case issueC > readyC:
		bucket, name = m.unitBucket(class)
	case readyC > dispC+1:
		switch {
		case blockerMiss == 2:
			bucket, name = &m.stalls.L2Miss, BucketL2Miss
		case blockerMiss == 1:
			bucket, name = &m.stalls.L1DMiss, BucketL1DMiss
		default:
			bucket, name = m.unitBucket(blocker)
		}
	case windowLimited:
		bucket, name = &m.stalls.WindowFull, BucketWindowFull
	case fcause == BucketMispredictFlush:
		bucket, name = &m.stalls.MispredictFlush, BucketMispredictFlush
	case fcause == BucketTakenBubble:
		bucket, name = &m.stalls.TakenBubble, BucketTakenBubble
	}
	*bucket += delta
	return name
}

// unitBucket maps a functional-unit class to its stall-stack bucket
// (CRU work is counted with the FXUs, as the POWER5 counters do).
func (m *Model) unitBucket(class isa.Class) (*uint64, string) {
	switch class {
	case isa.ClassLSU:
		return &m.stalls.LSU, BucketLSU
	case isa.ClassBRU:
		return &m.stalls.BRU, BucketBRU
	default:
		return &m.stalls.FXU, BucketFXU
	}
}

func (m *Model) attributeStall(class isa.Class, n uint64) {
	switch class {
	case isa.ClassFXU, isa.ClassCRU:
		m.ctr.StallFXU += n
	case isa.ClassLSU:
		m.ctr.StallLSU += n
	case isa.ClassBRU:
		m.ctr.StallBRU += n
	}
}

// branchTiming charges front-end redirection costs for a resolved
// branch, trains the predictors, and returns the flush cause the branch
// raised ("" when fetch was not disturbed).
func (m *Model) branchTiming(d machine.DynInst, fetchC, doneC uint64) string {
	ins := d.Ins
	m.ctr.Branches++

	mispredicted := false
	if ins.IsCondBranch() {
		m.ctr.CondBranches++
		predTaken := m.pred.Predict(d.Index)
		m.pred.Update(d.Index, d.Taken)
		if predTaken != d.Taken {
			m.ctr.DirMispredicts++
			mispredicted = true
		}
		if m.profiler != nil {
			m.profiler.OnCondBranch(d.Index, d.Taken, mispredicted)
		}
	}

	if d.Taken {
		m.ctr.TakenBranches++
	}

	switch {
	case mispredicted:
		// Direction mispredict: flush; fetch restarts after resolve.
		m.noteMispredict(d.Index)
		m.redirect(doneC+uint64(m.cfg.MispredictPenalty), BucketMispredictFlush)
		if m.btac != nil && d.Taken {
			m.btac.Update(d.Index, d.Next)
		}
		return BucketMispredictFlush
	case d.Taken:
		// Correctly predicted (or unconditional) taken branch: the
		// POWER5 pays the 2-cycle next-fetch-address bubble unless the
		// BTAC supplies the target.
		bubble := uint64(m.cfg.TakenBranchPenalty)
		if m.btac != nil {
			m.ctr.BTACLookups++
			nia, predict := m.btac.Lookup(d.Index)
			if m.profiler != nil {
				m.profiler.OnBTAC(d.Index, predict, predict && nia != d.Next)
			}
			if predict {
				m.ctr.BTACPredicts++
				if nia == d.Next {
					m.ctr.BTACCorrect++
					bubble = 0
				} else {
					// Wrong target: the fetch went down a wrong path
					// and is caught at branch execution.
					m.ctr.TgtMispredicts++
					m.noteMispredict(d.Index)
					m.btac.Update(d.Index, d.Next)
					m.redirect(doneC+uint64(m.cfg.MispredictPenalty), BucketMispredictFlush)
					return BucketMispredictFlush
				}
			}
			m.btac.Update(d.Index, d.Next)
		}
		if bubble > 0 {
			m.ctr.TakenBubbles++
			m.redirect(fetchC+1+bubble, BucketTakenBubble)
			return BucketTakenBubble
		}
	}
	return ""
}

// noteMispredict feeds the per-PC mispredict counter when telemetry is
// attached.
func (m *Model) noteMispredict(pc int) {
	if m.mispredictPC != nil {
		m.mispredictPC.Add(strconv.Itoa(pc), 1)
	}
}

// redirect stalls instruction fetch until cycle c, remembering why so
// the stall stack can attribute the cycles the delay later costs.
func (m *Model) redirect(c uint64, cause string) {
	if c > m.fetchCycle {
		if m.histFlush != nil && cause == BucketMispredictFlush {
			m.histFlush.Observe(c - m.fetchCycle)
		}
		m.fetchCycle = c
		m.fetchedAt = 0
		m.fetchCause = cause
	}
}

// Run drives prog on a fresh functional machine through the timing
// model until the machine halts or limit instructions execute.  It is a
// convenience for tests and small experiments; the core package's
// runner handles sampling and argument marshaling for real workloads.
func (m *Model) Run(mach *machine.Machine, limit uint64) (Counters, error) {
	var n uint64
	for !mach.Halted() {
		if n >= limit {
			return m.Counters(), machine.ErrLimit
		}
		d, err := mach.Step()
		if err != nil {
			return m.Counters(), err
		}
		if err := m.Consume(d); err != nil {
			return m.Counters(), err
		}
		n++
	}
	return m.Counters(), nil
}
