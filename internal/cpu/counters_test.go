package cpu

import (
	"reflect"
	"testing"
)

// fillCounters sets every field of a Counters to a distinct non-zero
// value derived from its index, via reflection, so a field that a
// hand-written method forgets cannot hide.
func fillCounters(mul uint64) Counters {
	var c Counters
	v := reflect.ValueOf(&c).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetUint(uint64(i+1) * mul)
	}
	return c
}

// TestCountersAddSubCoverEveryField guards the hand-written field lists
// in Add and Sub: any new counter added to the struct must be summed
// and subtracted, or aggregation across seeds would silently drop it.
func TestCountersAddSubCoverEveryField(t *testing.T) {
	if k := reflect.TypeOf(Counters{}).Kind(); k != reflect.Struct {
		t.Fatalf("Counters is %v, want struct", k)
	}
	a := fillCounters(10)
	b := fillCounters(3)

	sum := reflect.ValueOf(a.Add(b))
	diff := reflect.ValueOf(a.Sub(b))
	typ := sum.Type()
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if typ.Field(i).Type.Kind() != reflect.Uint64 {
			t.Errorf("field %s is %v; Counters fields must be uint64 for Add/Sub/publish reflection",
				name, typ.Field(i).Type)
			continue
		}
		wantSum := uint64(i+1) * 13
		wantDiff := uint64(i+1) * 7
		if got := sum.Field(i).Uint(); got != wantSum {
			t.Errorf("Add drops field %s: got %d, want %d", name, got, wantSum)
		}
		if got := diff.Field(i).Uint(); got != wantDiff {
			t.Errorf("Sub drops field %s: got %d, want %d", name, got, wantDiff)
		}
	}
}

// TestCountersAddZeroIdentity pins the other easy regression: adding a
// zero value must not change any field.
func TestCountersAddZeroIdentity(t *testing.T) {
	a := fillCounters(5)
	if got := a.Add(Counters{}); got != a {
		t.Errorf("Add(zero) changed counters:\n got %+v\nwant %+v", got, a)
	}
	if got := a.Sub(Counters{}); got != a {
		t.Errorf("Sub(zero) changed counters:\n got %+v\nwant %+v", got, a)
	}
}
