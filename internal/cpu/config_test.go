package cpu

import (
	"testing"

	"bioperf5/internal/isa"
)

// TestSMTTakenPenalty checks the paper's note that the taken-branch
// bubble grows from 2 to 3 cycles with SMT enabled.
func TestSMTTakenPenalty(t *testing.T) {
	loop := func(a *isa.Asm) {
		a.Label("main")
		a.Li(isa.R4, 5000)
		a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R4})
		a.Label("loop")
		a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R5, RA: isa.R5, Imm: 1})
		a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
		a.Ret()
	}
	smtOff := POWER5Baseline()
	smtOn := POWER5Baseline()
	smtOn.TakenBranchPenalty = 3
	cOff := buildAndRun(t, smtOff, loop)
	cOn := buildAndRun(t, smtOn, loop)
	if cOn.Cycles <= cOff.Cycles {
		t.Errorf("SMT penalty 3 (%d cycles) not slower than 2 (%d)", cOn.Cycles, cOff.Cycles)
	}
	// Each taken branch costs one extra cycle: the difference is about
	// one cycle per iteration.
	diff := cOn.Cycles - cOff.Cycles
	if diff < 4500 || diff > 5500 {
		t.Errorf("SMT delta = %d cycles over 5000 taken branches", diff)
	}
}

// TestCompleteWidthLimits verifies the 5-wide completion cap: a core
// with completion width 1 cannot exceed IPC 1.
func TestCompleteWidthLimits(t *testing.T) {
	narrow := POWER5Baseline()
	narrow.CompleteWidth = 1
	ctr := buildAndRun(t, narrow, independentAdds(16))
	if ipc := ctr.IPC(); ipc > 1.01 {
		t.Errorf("IPC %.2f exceeds completion width 1", ipc)
	}
}

// TestDispatchWidthLimits caps throughput similarly.
func TestDispatchWidthLimits(t *testing.T) {
	narrow := POWER5Baseline()
	narrow.DispatchWidth = 2
	narrow.NumFXU = 4
	ctr := buildAndRun(t, narrow, independentAdds(16))
	if ipc := ctr.IPC(); ipc > 2.05 {
		t.Errorf("IPC %.2f exceeds dispatch width 2", ipc)
	}
}

// TestPredictorConfigSelection checks the predictor knob reaches the
// model: a static-not-taken predictor mispredicts every loop-back
// branch; the tournament predictor almost none.
func TestPredictorConfigSelection(t *testing.T) {
	loop := independentAdds(2)
	static := POWER5Baseline()
	static.Predictor = "static-not-taken"
	tour := POWER5Baseline()
	tour.Predictor = "tournament"
	cStatic := buildAndRun(t, static, loop)
	cTour := buildAndRun(t, tour, loop)
	if cStatic.DirMispredicts < 1900 {
		t.Errorf("static-not-taken mispredicted only %d of ~2000 loop branches",
			cStatic.DirMispredicts)
	}
	if cTour.DirMispredicts > 100 {
		t.Errorf("tournament mispredicted %d loop branches", cTour.DirMispredicts)
	}
	if cTour.Cycles >= cStatic.Cycles {
		t.Error("better prediction did not reduce cycles")
	}
}

// TestBTACCounterCoherence checks the BTAC counters' internal algebra.
func TestBTACCounterCoherence(t *testing.T) {
	cfg := POWER5Baseline()
	cfg.UseBTAC = true
	ctr := buildAndRun(t, cfg, independentAdds(4))
	if ctr.BTACPredicts > ctr.BTACLookups {
		t.Errorf("predicts %d > lookups %d", ctr.BTACPredicts, ctr.BTACLookups)
	}
	if ctr.BTACCorrect > ctr.BTACPredicts {
		t.Errorf("correct %d > predicts %d", ctr.BTACCorrect, ctr.BTACPredicts)
	}
	if ctr.BTACLookups == 0 {
		t.Error("BTAC never consulted despite taken branches")
	}
	// Bubbles + correct predictions cover all taken branches that were
	// correctly direction-predicted (approximately: mispredicted ones
	// take the flush path instead).
	if ctr.TakenBubbles+ctr.BTACCorrect > ctr.TakenBranches {
		t.Errorf("bubbles %d + correct %d exceed taken %d",
			ctr.TakenBubbles, ctr.BTACCorrect, ctr.TakenBranches)
	}
}

// TestCountersAdd checks the aggregation used by core.RunKernel.
func TestCountersAdd(t *testing.T) {
	a := Counters{Cycles: 10, Instructions: 20, Branches: 3, StallFXU: 4,
		L1DAccesses: 5, BTACCorrect: 6}
	b := Counters{Cycles: 1, Instructions: 2, Branches: 3, StallFXU: 4,
		L1DAccesses: 5, BTACCorrect: 6}
	c := a.Add(b)
	if c.Cycles != 11 || c.Instructions != 22 || c.Branches != 6 ||
		c.StallFXU != 8 || c.L1DAccesses != 10 || c.BTACCorrect != 12 {
		t.Errorf("Add = %+v", c)
	}
	if d := c.Sub(b); d != a {
		t.Errorf("Add/Sub not inverse: %+v vs %+v", d, a)
	}
}

// TestFrontendStallAttribution: a mispredict-heavy loop must charge
// front-end stalls (completion starved during refill).
func TestFrontendStallAttribution(t *testing.T) {
	build, memory := randomBranchLoop(11, 3000)
	ctr := runWithMemory(t, POWER5Baseline(), build, memory)
	if ctr.StallFrontend == 0 {
		t.Error("mispredict-heavy loop produced no front-end stalls")
	}
	if ctr.StallFrontend < ctr.DirMispredicts*5 {
		t.Errorf("front-end stalls %d implausibly low for %d mispredicts",
			ctr.StallFrontend, ctr.DirMispredicts)
	}
}

// TestExtraLSUsHelpLoadBoundLoop mirrors the FXU experiment on the
// load/store side, exercising the unit-count plumbing generally.
func TestExtraLSUsHelpLoadBoundLoop(t *testing.T) {
	loads := func(a *isa.Asm) {
		a.Label("main")
		a.Li(isa.R4, 2000)
		a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R4})
		a.Li64(isa.R5, 0x100000)
		a.Label("loop")
		for i := 0; i < 6; i++ {
			a.Emit(isa.Instruction{Op: isa.OpLd, RT: isa.R6 + isa.Reg(i), RA: isa.R5, Imm: int64(8 * i)})
		}
		a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
		a.Ret()
	}
	two := POWER5Baseline()
	four := POWER5Baseline()
	four.NumLSU = 4
	c2 := buildAndRun(t, two, loads)
	c4 := buildAndRun(t, four, loads)
	if c4.Cycles >= c2.Cycles {
		t.Errorf("4 LSUs (%d cycles) not faster than 2 (%d)", c4.Cycles, c2.Cycles)
	}
}
