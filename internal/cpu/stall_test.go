package cpu

import (
	"testing"

	"bioperf5/internal/isa"
	"bioperf5/internal/machine"
	"bioperf5/internal/mem"
	"bioperf5/internal/telemetry"
)

// runModel assembles and runs a program through a fresh model and
// returns the model for stall/trace inspection.
func runModel(t *testing.T, cfg Config, build func(a *isa.Asm), memory *mem.Memory) *Model {
	t.Helper()
	a := isa.NewAsm()
	build(a)
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if memory == nil {
		memory = mem.New()
	}
	mach := machine.New(p, memory)
	mach.Reset()
	if err := mach.SetPC("main"); err != nil {
		t.Fatal(err)
	}
	mach.SetReg(isa.SP, 0x7FFF0000)
	model := MustNew(cfg)
	if _, err := model.Run(mach, 50_000_000); err != nil {
		t.Fatal(err)
	}
	return model
}

func checkInvariant(t *testing.T, name string, m *Model) {
	t.Helper()
	ctr, st := m.Counters(), m.Stalls()
	if got, want := st.Total(), ctr.Cycles; got != want {
		t.Errorf("%s: stall stack sums to %d cycles, counters say %d\n%+v",
			name, got, want, st)
	}
}

func TestStallStackInvariantSyntheticPrograms(t *testing.T) {
	branchy, branchyMem := randomBranchLoop(11, 4000)
	programs := []struct {
		name  string
		cfg   Config
		build func(a *isa.Asm)
		mem   *mem.Memory
	}{
		{"independent-adds", POWER5Baseline(), independentAdds(16), nil},
		{"random-branches", POWER5Baseline(), branchy, branchyMem},
		{"multiply-chain", POWER5Baseline(), func(a *isa.Asm) {
			a.Label("main")
			a.Li(isa.R4, 500)
			a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R4})
			a.Li(isa.R5, 3)
			a.Label("loop")
			a.Emit(isa.Instruction{Op: isa.OpMulld, RT: isa.R5, RA: isa.R5, RB: isa.R5})
			a.Emit(isa.Instruction{Op: isa.OpMulld, RT: isa.R5, RA: isa.R5, RB: isa.R5})
			a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
			a.Ret()
		}, nil},
	}
	for _, p := range programs {
		m := runModel(t, p.cfg, p.build, p.mem)
		checkInvariant(t, p.name, m)
	}
}

func TestStallStackAttributionIsPlausible(t *testing.T) {
	// Hostile random branches: the mispredict-flush bucket must be a
	// visible fraction of all cycles (the paper's central claim).
	build, memory := randomBranchLoop(7, 4000)
	m := runModel(t, POWER5Baseline(), build, memory)
	st := m.Stalls()
	if st.MispredictFlush == 0 {
		t.Error("random branches charged no mispredict-flush cycles")
	}
	if share := float64(st.MispredictFlush) / float64(st.Total()); share < 0.05 {
		t.Errorf("mispredict-flush share = %.3f, want a visible fraction", share)
	}

	// A tight always-taken loop without BTAC pays taken-branch bubbles.
	loop := func(a *isa.Asm) {
		a.Label("main")
		a.Li(isa.R4, 3000)
		a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R4})
		a.Label("loop")
		a.Emit(isa.Instruction{Op: isa.OpAddi, RT: isa.R5, RA: isa.R5, Imm: 1})
		a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
		a.Ret()
	}
	m = runModel(t, POWER5Baseline(), loop, nil)
	checkInvariant(t, "taken-loop", m)
	if m.Stalls().TakenBubble == 0 {
		t.Error("tight taken loop charged no taken-bubble cycles")
	}

	// A dependent multiply chain is FXU-bound.
	m = runModel(t, POWER5Baseline(), func(a *isa.Asm) {
		a.Label("main")
		a.Li(isa.R4, 500)
		a.Emit(isa.Instruction{Op: isa.OpMtctr, RA: isa.R4})
		a.Li(isa.R5, 3)
		a.Label("loop")
		for i := 0; i < 4; i++ {
			a.Emit(isa.Instruction{Op: isa.OpMulld, RT: isa.R5, RA: isa.R5, RB: isa.R5})
		}
		a.Branch(isa.Instruction{Op: isa.OpBdnz}, "loop")
		a.Ret()
	}, nil)
	checkInvariant(t, "fxu-chain", m)
	if m.Stalls().FXU == 0 {
		t.Error("dependent multiply chain charged no FXU cycles")
	}
}

func TestStallStackBucketsAndReport(t *testing.T) {
	m := runModel(t, POWER5Baseline(), independentAdds(4), nil)
	st := m.Stalls()
	var sum uint64
	for _, b := range st.Buckets() {
		sum += b.Cycles
	}
	if sum != st.Total() {
		t.Errorf("Buckets sum %d != Total %d", sum, st.Total())
	}
	r := m.Report()
	if r.Counters.Cycles != r.Stalls.Total() {
		t.Errorf("Report cycles %d != stall total %d", r.Counters.Cycles, r.Stalls.Total())
	}
	// Aggregation keeps the invariant.
	agg := r.Add(r)
	if agg.Stalls.Total() != 2*r.Stalls.Total() || agg.Counters.Cycles != 2*r.Counters.Cycles {
		t.Error("Report.Add broke the stall invariant")
	}
}

func TestPipelineTraceEvents(t *testing.T) {
	build, memory := randomBranchLoop(3, 300)
	a := isa.NewAsm()
	build(a)
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mach := machine.New(p, memory)
	mach.Reset()
	if err := mach.SetPC("main"); err != nil {
		t.Fatal(err)
	}
	model := MustNew(POWER5Baseline())
	buf := telemetry.NewTraceBuffer(1 << 16)
	model.SetTrace(buf)
	ctr, err := model.Run(mach, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	events := buf.Events()
	if uint64(len(events)) != ctr.Instructions {
		t.Fatalf("trace has %d events for %d retired instructions", len(events), ctr.Instructions)
	}
	var flushes uint64
	for i, e := range events {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Op == "" {
			t.Fatalf("event %d missing op", i)
		}
		if !(e.Fetch <= e.Dispatch && e.Dispatch < e.Issue && e.Issue < e.Complete+1) {
			t.Fatalf("event %d stage cycles out of order: %+v", i, e)
		}
		if e.Flush == BucketMispredictFlush {
			flushes++
		}
	}
	if flushes != ctr.DirMispredicts+ctr.TgtMispredicts {
		t.Errorf("trace shows %d flushes, counters %d",
			flushes, ctr.DirMispredicts+ctr.TgtMispredicts)
	}
	// Completion cycles in the trace are monotonic (in-order completion).
	for i := 1; i < len(events); i++ {
		if events[i].Complete < events[i-1].Complete {
			t.Fatalf("completion went backwards at event %d", i)
		}
	}
}

func TestAttachTelemetryAndPublish(t *testing.T) {
	build, memory := randomBranchLoop(5, 500)
	a := isa.NewAsm()
	build(a)
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mach := machine.New(p, memory)
	mach.Reset()
	if err := mach.SetPC("main"); err != nil {
		t.Fatal(err)
	}
	model := MustNew(POWER5Baseline())
	reg := telemetry.NewRegistry()
	model.AttachTelemetry(reg)
	ctr, err := model.Run(mach, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}

	if got := reg.Histogram("cpu.load_to_use.cycles", nil).Count(); got != ctr.L1DAccesses-0 {
		// every access in this loop is a load
		if got == 0 {
			t.Error("no load-to-use latencies observed")
		}
	}
	if ctr.DirMispredicts > 0 {
		if top := reg.Labeled("cpu.branch.mispredict.pc").Top(1); len(top) == 0 {
			t.Error("no per-PC mispredict counts recorded")
		}
		if reg.Histogram("cpu.flush.cycles", nil).Count() == 0 {
			t.Error("no flush lengths observed")
		}
	}

	model.PublishTo(reg)
	snap := reg.Snapshot(5)
	if snap.Counters["cpu.Cycles"] != ctr.Cycles {
		t.Errorf("published cycles %d, counters %d", snap.Counters["cpu.Cycles"], ctr.Cycles)
	}
	if snap.Counters["cpu.Instructions"] != ctr.Instructions {
		t.Errorf("published instructions mismatch")
	}
	var stallSum uint64
	for _, b := range model.Stalls().Buckets() {
		stallSum += snap.Counters["cpu.stall."+b.Name]
	}
	if stallSum != ctr.Cycles {
		t.Errorf("published stall buckets sum to %d, want %d", stallSum, ctr.Cycles)
	}
	if _, ok := snap.Counters["cache.l1d.accesses"]; !ok {
		t.Error("cache hierarchy stats not published")
	}
}
