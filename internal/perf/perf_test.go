package perf

import (
	"strings"
	"testing"
	"time"
)

func TestAddAndBreakdown(t *testing.T) {
	p := New()
	p.Add("hot", 900*time.Millisecond, 10)
	p.Add("warm", 90*time.Millisecond, 5)
	p.Add("cold", 10*time.Millisecond, 1)

	if p.Total() != time.Second {
		t.Errorf("total = %v", p.Total())
	}
	bd := p.Breakdown()
	if len(bd) != 3 || bd[0].Name != "hot" || bd[2].Name != "cold" {
		t.Fatalf("breakdown = %+v", bd)
	}
	if bd[0].Share < 0.89 || bd[0].Share > 0.91 {
		t.Errorf("hot share = %f", bd[0].Share)
	}
	if bd[0].Calls != 10 {
		t.Errorf("hot calls = %d", bd[0].Calls)
	}
}

func TestAccumulation(t *testing.T) {
	p := New()
	p.Add("f", time.Millisecond, 1)
	p.Add("f", time.Millisecond, 2)
	if p.Of("f") != 2*time.Millisecond {
		t.Errorf("Of = %v", p.Of("f"))
	}
	if p.Of("missing") != 0 {
		t.Error("missing function has nonzero time")
	}
}

func TestStartStop(t *testing.T) {
	p := New()
	// Inject a deterministic clock.
	now := time.Unix(0, 0)
	p.clock = func() time.Time { return now }
	stop := p.Start("f")
	now = now.Add(7 * time.Millisecond)
	stop()
	if p.Of("f") != 7*time.Millisecond {
		t.Errorf("timed %v, want 7ms", p.Of("f"))
	}
}

func TestFormat(t *testing.T) {
	p := New()
	p.Add("forward_pass", 800*time.Millisecond, 120)
	p.Add("guide_tree", 200*time.Millisecond, 1)
	text := p.Format()
	if !strings.Contains(text, "forward_pass") || !strings.Contains(text, "%time") {
		t.Errorf("format output:\n%s", text)
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) != 3 {
		t.Errorf("expected header + 2 rows, got %d lines", len(lines))
	}
	// Largest first.
	if !strings.Contains(lines[1], "forward_pass") {
		t.Error("rows not sorted by time")
	}
}

func TestEmptyProfiler(t *testing.T) {
	p := New()
	if p.Total() != 0 || len(p.Breakdown()) != 0 {
		t.Error("empty profiler not empty")
	}
}

func TestTieBreakByName(t *testing.T) {
	p := New()
	p.Add("b", time.Millisecond, 1)
	p.Add("a", time.Millisecond, 1)
	bd := p.Breakdown()
	if bd[0].Name != "a" || bd[1].Name != "b" {
		t.Errorf("ties not broken by name: %+v", bd)
	}
}
