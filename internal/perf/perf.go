// Package perf provides the gprof-style instrumenting profiler used to
// reproduce Figure 1 (the function-wise breakout of Blast, Clustalw,
// Fasta and Hmmer): workload drivers bracket their hot functions with
// Start and the harness reports each function's share of total time.
package perf

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Profiler accumulates inclusive time per function name.  It is not
// safe for concurrent use and does not support re-entrant timing of the
// same name (the workloads do not need either).
type Profiler struct {
	entries map[string]*entry
	clock   func() time.Time
}

type entry struct {
	dur   time.Duration
	calls uint64
}

// New returns an empty profiler.
func New() *Profiler {
	return &Profiler{entries: make(map[string]*entry), clock: time.Now}
}

// Start begins timing name and returns the function that stops it:
//
//	defer p.Start("forward_pass")()
func (p *Profiler) Start(name string) func() {
	begin := p.clock()
	return func() {
		e := p.entries[name]
		if e == nil {
			e = &entry{}
			p.entries[name] = e
		}
		e.dur += p.clock().Sub(begin)
		e.calls++
	}
}

// Add records a pre-measured duration (used by tests and by drivers
// that time phases manually).
func (p *Profiler) Add(name string, d time.Duration, calls uint64) {
	e := p.entries[name]
	if e == nil {
		e = &entry{}
		p.entries[name] = e
	}
	e.dur += d
	e.calls += calls
}

// Of returns the accumulated time of one function (zero if absent).
func (p *Profiler) Of(name string) time.Duration {
	if e := p.entries[name]; e != nil {
		return e.dur
	}
	return 0
}

// Entry is one function's aggregate.
type Entry struct {
	Name  string
	Time  time.Duration
	Calls uint64
	Share float64 // fraction of the profiler's total time
}

// Total returns the sum of all recorded time.
func (p *Profiler) Total() time.Duration {
	var t time.Duration
	for _, e := range p.entries {
		t += e.dur
	}
	return t
}

// Breakdown returns entries sorted by decreasing time with shares
// computed against the total.
func (p *Profiler) Breakdown() []Entry {
	total := p.Total()
	out := make([]Entry, 0, len(p.entries))
	for name, e := range p.entries {
		share := 0.0
		if total > 0 {
			share = float64(e.dur) / float64(total)
		}
		out = append(out, Entry{Name: name, Time: e.dur, Calls: e.calls, Share: share})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Format renders the breakdown as a gprof-like flat profile.
func (p *Profiler) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %8s %10s %8s\n", "function", "%time", "seconds", "calls")
	for _, e := range p.Breakdown() {
		fmt.Fprintf(&b, "%-28s %7.1f%% %10.4f %8d\n",
			e.Name, 100*e.Share, e.Time.Seconds(), e.Calls)
	}
	return b.String()
}
