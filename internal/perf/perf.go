// Package perf provides the gprof-style instrumenting profiler used to
// reproduce Figure 1 (the function-wise breakout of Blast, Clustalw,
// Fasta and Hmmer): workload drivers bracket their hot functions with
// Start and the harness reports each function's share of total time.
package perf

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"bioperf5/internal/telemetry"
)

// Profiler accumulates inclusive time per function name.  It is safe
// for concurrent use (drivers may time parallel phases), but does not
// support re-entrant timing of the same name (the workloads do not need
// it).
type Profiler struct {
	mu      sync.Mutex
	entries map[string]*entry
	clock   func() time.Time
}

type entry struct {
	dur   time.Duration
	calls uint64
}

// New returns an empty profiler.
func New() *Profiler {
	return &Profiler{entries: make(map[string]*entry), clock: time.Now}
}

// Start begins timing name and returns the function that stops it:
//
//	defer p.Start("forward_pass")()
func (p *Profiler) Start(name string) func() {
	begin := p.clock()
	return func() {
		p.Add(name, p.clock().Sub(begin), 1)
	}
}

// Add records a pre-measured duration (used by tests and by drivers
// that time phases manually).
func (p *Profiler) Add(name string, d time.Duration, calls uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[name]
	if e == nil {
		e = &entry{}
		p.entries[name] = e
	}
	e.dur += d
	e.calls += calls
}

// Of returns the accumulated time of one function (zero if absent).
func (p *Profiler) Of(name string) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e := p.entries[name]; e != nil {
		return e.dur
	}
	return 0
}

// Entry is one function's aggregate.
type Entry struct {
	Name  string
	Time  time.Duration
	Calls uint64
	Share float64 // fraction of the profiler's total time
}

// Total returns the sum of all recorded time.
func (p *Profiler) Total() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totalLocked()
}

func (p *Profiler) totalLocked() time.Duration {
	var t time.Duration
	for _, e := range p.entries {
		t += e.dur
	}
	return t
}

// Breakdown returns entries sorted by decreasing time with shares
// computed against the total.
func (p *Profiler) Breakdown() []Entry {
	p.mu.Lock()
	total := p.totalLocked()
	out := make([]Entry, 0, len(p.entries))
	for name, e := range p.entries {
		share := 0.0
		if total > 0 {
			share = float64(e.dur) / float64(total)
		}
		out = append(out, Entry{Name: name, Time: e.dur, Calls: e.calls, Share: share})
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Format renders the breakdown as a gprof-like flat profile.
func (p *Profiler) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %8s %10s %8s\n", "function", "%time", "seconds", "calls")
	for _, e := range p.Breakdown() {
		fmt.Fprintf(&b, "%-28s %7.1f%% %10.4f %8d\n",
			e.Name, 100*e.Share, e.Time.Seconds(), e.Calls)
	}
	return b.String()
}

// PublishTo mirrors the breakdown into reg so the profile and the
// `stats` subcommand report from the same source of truth: per-function
// call counts ("profile.calls"), seconds and time shares as gauges.
func (p *Profiler) PublishTo(reg *telemetry.Registry) {
	calls := reg.Labeled("profile.calls")
	for _, e := range p.Breakdown() {
		calls.Add(e.Name, e.Calls)
		reg.Gauge("profile.seconds." + e.Name).Set(e.Time.Seconds())
		reg.Gauge("profile.share." + e.Name).Set(e.Share)
	}
}
