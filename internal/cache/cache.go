// Package cache models the set-associative data caches of the POWER5
// memory hierarchy.  The paper's Table I reports L1D miss rates for the
// four applications (all very low — the key observation that cache
// behaviour is NOT the bottleneck), so the timing model needs a real
// cache to reproduce that line.
package cache

import (
	"fmt"
	"strings"

	"bioperf5/internal/telemetry"
)

// Config describes one cache level.
type Config struct {
	Name       string // for reporting ("L1D", "L2")
	SizeBytes  int    // total capacity
	LineBytes  int    // line size (POWER5 L1D: 128B)
	Assoc      int    // ways per set
	HitLatency int    // access latency in cycles
}

// Validate reports configuration errors (non-power-of-two geometry,
// impossible associativity).
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache %s: size %d not a multiple of line size %d", c.Name, c.SizeBytes, c.LineBytes)
	}
	sets := lines / c.Assoc
	if sets == 0 || sets*c.Assoc != lines {
		return fmt.Errorf("cache %s: %d lines not divisible into %d ways", c.Name, lines, c.Assoc)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: %d sets not a power of two", c.Name, sets)
	}
	return nil
}

// POWER5L1D returns the POWER5's 32KB 4-way 128B-line L1 data cache.
func POWER5L1D() Config {
	return Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 128, Assoc: 4, HitLatency: 2}
}

// POWER5L2 returns a POWER5-like 1.875MB 10-way unified L2 slice with a
// 13-cycle load-to-use latency.
func POWER5L2() Config {
	// 1.875MB = 15360 lines of 128B; 10-way gives 1536 sets, which is
	// not a power of two, so we model the per-core share as 1MB 8-way —
	// the latency, which is what the timing model consumes, is the
	// POWER5 value.
	return Config{Name: "L2", SizeBytes: 1 << 20, LineBytes: 128, Assoc: 8, HitLatency: 13}
}

// Stats counts cache events.
type Stats struct {
	Accesses  uint64
	Misses    uint64
	Evictions uint64
}

// MissRate returns Misses/Accesses (zero when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	valid bool
	tag   uint64
	// lru is a per-set logical timestamp; the smallest value in the
	// set is the least recently used line.
	lru uint64
}

// Cache is one set-associative level with true-LRU replacement.
type Cache struct {
	cfg       Config
	sets      [][]line
	setMask   uint64
	lineShift uint
	clock     uint64
	stats     Stats
}

// New builds a cache from cfg; the configuration must Validate.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / cfg.LineBytes / cfg.Assoc
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i] = make([]line, cfg.Assoc)
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   uint64(nsets - 1),
		lineShift: shift,
	}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the event counters accumulated so far.
func (c *Cache) Stats() Stats { return c.stats }

// Access touches the line containing addr and reports whether it hit.
// On a miss the line is filled, evicting the LRU way.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	c.stats.Accesses++
	lineAddr := addr >> c.lineShift
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> popShift(c.setMask)

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.clock
			return true
		}
	}
	c.stats.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid {
		c.stats.Evictions++
	}
	set[victim] = line{valid: true, tag: tag, lru: c.clock}
	return false
}

// Contains reports whether addr's line is resident without touching LRU
// state or counters (used by tests and by prefetch heuristics).
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr >> c.lineShift
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> popShift(c.setMask)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// PublishTo mirrors the cache's statistics into reg under
// "cache.<name>.*" (the name lower-cased, e.g. "cache.l1d.misses").
func (c *Cache) PublishTo(reg *telemetry.Registry) {
	prefix := "cache." + strings.ToLower(c.cfg.Name) + "."
	reg.Counter(prefix + "accesses").Set(c.stats.Accesses)
	reg.Counter(prefix + "misses").Set(c.stats.Misses)
	reg.Counter(prefix + "evictions").Set(c.stats.Evictions)
	reg.Gauge(prefix + "miss_rate").Set(c.stats.MissRate())
}

// Reset invalidates the cache and clears counters.
func (c *Cache) Reset() {
	for _, s := range c.sets {
		for i := range s {
			s[i] = line{}
		}
	}
	c.clock = 0
	c.stats = Stats{}
}

// popShift returns the number of bits in mask (mask is 2^n - 1).
func popShift(mask uint64) uint {
	n := uint(0)
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}

// Hierarchy is the two-level data-side hierarchy the timing model uses:
// an access that misses L1 probes L2; a miss there costs the memory
// latency.  Latency returns the total load-to-use latency in cycles.
type Hierarchy struct {
	L1, L2     *Cache
	MemLatency int // cycles for an access missing both levels
}

// NewPOWER5Hierarchy builds the default POWER5-like data hierarchy with
// a 230-cycle memory latency.
func NewPOWER5Hierarchy() *Hierarchy {
	return &Hierarchy{
		L1:         MustNew(POWER5L1D()),
		L2:         MustNew(POWER5L2()),
		MemLatency: 230,
	}
}

// Access runs addr through the hierarchy and returns the load-to-use
// latency in cycles.
func (h *Hierarchy) Access(addr uint64) int {
	if h.L1.Access(addr) {
		return h.L1.cfg.HitLatency
	}
	if h.L2.Access(addr) {
		return h.L2.cfg.HitLatency
	}
	return h.MemLatency
}

// LevelLatency returns the load-to-use latency of an access that
// resolves at the given miss level: 0 is an L1 hit, 1 an L2 hit, and
// anything else goes to memory.  It is the same arithmetic Access
// applies, exposed so a recorded miss level can be turned back into a
// latency without re-simulating the hierarchy.
func (h *Hierarchy) LevelLatency(level int) int {
	switch level {
	case 0:
		return h.L1.cfg.HitLatency
	case 1:
		return h.L2.cfg.HitLatency
	default:
		return h.MemLatency
	}
}

// Reset clears both levels.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
}

// PublishTo mirrors both levels' statistics into reg.
func (h *Hierarchy) PublishTo(reg *telemetry.Registry) {
	h.L1.PublishTo(reg)
	h.L2.PublishTo(reg)
}
