package cache

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{POWER5L1D(), POWER5L2(),
		{Name: "tiny", SizeBytes: 256, LineBytes: 32, Assoc: 2, HitLatency: 1}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: unexpected error %v", c.Name, err)
		}
	}
	bad := []Config{
		{Name: "zero"},
		{Name: "npot-line", SizeBytes: 1024, LineBytes: 48, Assoc: 2},
		{Name: "indivisible", SizeBytes: 1000, LineBytes: 64, Assoc: 2},
		{Name: "npot-sets", SizeBytes: 64 * 3 * 2, LineBytes: 64, Assoc: 2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.Name)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := MustNew(POWER5L1D())
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	if !c.Access(0x1000 + 64) { // same 128B line
		t.Error("same-line access missed")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 64B lines, 2 sets = 256B total.
	c := MustNew(Config{Name: "t", SizeBytes: 256, LineBytes: 64, Assoc: 2, HitLatency: 1})
	// Three lines mapping to set 0 (stride = lineBytes*nsets = 128).
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU
	if c.Access(d) {
		t.Error("conflicting line hit unexpectedly")
	}
	if !c.Contains(a) {
		t.Error("MRU line was evicted")
	}
	if c.Contains(b) {
		t.Error("LRU line survived eviction")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := MustNew(Config{Name: "t", SizeBytes: 256, LineBytes: 64, Assoc: 2, HitLatency: 1})
	c.Access(0)
	before := c.Stats()
	c.Contains(0)
	c.Contains(1 << 20)
	if c.Stats() != before {
		t.Error("Contains changed counters")
	}
}

func TestSetIndexing(t *testing.T) {
	// Addresses in different sets must not conflict.
	c := MustNew(Config{Name: "t", SizeBytes: 512, LineBytes: 64, Assoc: 2, HitLatency: 1})
	// 4 sets; fill set 0 and set 1 fully; all should coexist.
	addrs := []uint64{0, 256, 64, 320} // two lines per set for sets 0 and 1
	for _, a := range addrs {
		c.Access(a)
	}
	for _, a := range addrs {
		if !c.Contains(a) {
			t.Errorf("addr %#x evicted despite capacity", a)
		}
	}
}

func TestMissRateSequentialVsRandom(t *testing.T) {
	// Sequential byte-stride access to a large array: miss once per
	// line => rate ~ 1/lineBytes.  This is the paper's Table I
	// scenario: DP kernels stream rows with high locality.
	c := MustNew(POWER5L1D())
	const n = 1 << 16
	for i := 0; i < n; i++ {
		c.Access(uint64(i))
	}
	rate := c.Stats().MissRate()
	want := 1.0 / 128
	if rate < want*0.9 || rate > want*1.1 {
		t.Errorf("sequential miss rate = %.4f, want about %.4f", rate, want)
	}
}

func TestWorkingSetFits(t *testing.T) {
	c := MustNew(POWER5L1D())
	// Touch a 16KB working set repeatedly: after the cold pass, no
	// misses.
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 16<<10; a += 128 {
			c.Access(a)
		}
	}
	s := c.Stats()
	if s.Misses != 128 { // 16KB / 128B cold misses only
		t.Errorf("misses = %d, want 128 (cold only)", s.Misses)
	}
}

func TestQuickHitAfterAccess(t *testing.T) {
	c := MustNew(POWER5L1D())
	f := func(addr uint64) bool {
		c.Access(addr)
		return c.Access(addr) // immediately re-accessed line must hit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOccupancyBounded(t *testing.T) {
	cfg := Config{Name: "t", SizeBytes: 1024, LineBytes: 64, Assoc: 4, HitLatency: 1}
	c := MustNew(cfg)
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		// Invariant: lines resident <= capacity. Count via Contains on
		// all touched lines.
		resident := 0
		seen := map[uint64]bool{}
		for _, a := range addrs {
			l := uint64(a) >> 6
			if !seen[l] {
				seen[l] = true
				if c.Contains(uint64(a)) {
					resident++
				}
			}
		}
		return resident <= cfg.SizeBytes/cfg.LineBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	c := MustNew(POWER5L1D())
	c.Access(0x40)
	c.Reset()
	if c.Contains(0x40) {
		t.Error("line survived Reset")
	}
	if c.Stats() != (Stats{}) {
		t.Error("stats survived Reset")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewPOWER5Hierarchy()
	l1 := h.L1.Config().HitLatency
	l2 := h.L2.Config().HitLatency

	if got := h.Access(0x1234); got != h.MemLatency {
		t.Errorf("cold access latency = %d, want %d", got, h.MemLatency)
	}
	if got := h.Access(0x1234); got != l1 {
		t.Errorf("hot access latency = %d, want %d", got, l1)
	}
	// Evict from L1 (fill its set) but keep in L2, then expect L2 latency.
	base := uint64(0x1234)
	l1cfg := h.L1.Config()
	setStride := uint64(l1cfg.SizeBytes / l1cfg.Assoc)
	for i := 1; i <= l1cfg.Assoc; i++ {
		h.Access(base + uint64(i)*setStride)
	}
	if h.L1.Contains(base) {
		t.Fatal("test setup failed to evict line from L1")
	}
	if got := h.Access(base); got != l2 {
		t.Errorf("L2 hit latency = %d, want %d", got, l2)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewPOWER5Hierarchy()
	h.Access(0)
	h.Reset()
	if h.L1.Stats().Accesses != 0 || h.L2.Stats().Accesses != 0 {
		t.Error("hierarchy Reset incomplete")
	}
}

func TestMissRateZeroWhenIdle(t *testing.T) {
	if r := (Stats{}).MissRate(); r != 0 {
		t.Errorf("idle miss rate = %f", r)
	}
}
