package fault

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newChaosClient(t *testing.T, plan *Plan, handler http.Handler) (*http.Client, *ChaosTransport, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	ct := &ChaosTransport{Plan: plan}
	return &http.Client{Transport: ct}, ct, srv
}

func linesHandler(n int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for i := 0; i < n; i++ {
			fmt.Fprintf(w, `{"schema":"bioperf5/v1","index":%d}`+"\n", i)
		}
	})
}

func TestChaosTransportPassThrough(t *testing.T) {
	cli, ct, srv := newChaosClient(t, &Plan{Seed: 1}, linesHandler(2))
	resp, err := cli.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(b), `"index":1`) {
		t.Errorf("clean plan altered the response: %d %q", resp.StatusCode, b)
	}
	if ct.Injected() != 0 {
		t.Errorf("clean plan injected %d faults", ct.Injected())
	}
}

func TestChaosTransportDeterministic(t *testing.T) {
	plan := &Plan{Seed: 9, RefuseRate: 0.3, HTTP5xxRate: 0.3, CutRate: 0.3, Times: 32}
	// One server for both runs: the request key includes host:port, so
	// determinism is per endpoint, exactly as in a real cluster where
	// worker addresses are fixed.
	srv := httptest.NewServer(linesHandler(3))
	defer srv.Close()
	outcome := func() []string {
		cli := &http.Client{Transport: &ChaosTransport{Plan: plan}}
		var got []string
		for i := 0; i < 16; i++ {
			resp, err := cli.Get(srv.URL + "/k")
			switch {
			case err != nil:
				got = append(got, "refuse")
			case resp.StatusCode != 200:
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				got = append(got, "5xx")
			default:
				_, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					got = append(got, "cut")
				} else {
					got = append(got, "ok")
				}
			}
		}
		return got
	}
	a, b := outcome(), outcome()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: run 1 saw %q, run 2 saw %q", i, a[i], b[i])
		}
	}
	faulty := 0
	for _, o := range a {
		if o != "ok" {
			faulty++
		}
	}
	if faulty == 0 {
		t.Error("high-rate plan injected nothing in 16 requests")
	}
}

func TestChaosTransportRefuse(t *testing.T) {
	cli, ct, srv := newChaosClient(t, &Plan{Seed: 1, RefuseRate: 1, Times: 1}, linesHandler(1))
	if _, err := cli.Get(srv.URL + "/r"); err == nil || !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("rate-1 refusal returned err=%v", err)
	}
	if ct.Injected() != 1 {
		t.Errorf("injected = %d, want 1", ct.Injected())
	}
	// Ordinal 1 is past the Times budget: clean.
	if _, err := cli.Get(srv.URL + "/r"); err != nil {
		t.Fatalf("request past Times budget failed: %v", err)
	}
}

func TestChaosTransportLatency(t *testing.T) {
	plan := &Plan{Seed: 1, LatencyRate: 1, LatencyDelay: 80 * time.Millisecond, Times: 1}
	cli, _, srv := newChaosClient(t, plan, linesHandler(1))
	start := time.Now()
	resp, err := cli.Get(srv.URL + "/l")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Errorf("latency injection took %v, want >= 80ms", d)
	}
}

func TestChaosTransportLatencyHonorsContext(t *testing.T) {
	plan := &Plan{Seed: 1, LatencyRate: 1, LatencyDelay: 10 * time.Second, Times: 1}
	cli, _, srv := newChaosClient(t, plan, linesHandler(1))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/lc", nil)
	start := time.Now()
	if _, err := cli.Do(req); err == nil {
		t.Fatal("cancelled latency sleep returned no error")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancelled sleep still took %v", d)
	}
}

func TestChaosTransportHTTP5xx(t *testing.T) {
	cli, _, srv := newChaosClient(t, &Plan{Seed: 1, HTTP5xxRate: 1, Times: 1}, linesHandler(1))
	resp, err := cli.Get(srv.URL + "/e")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(b), "injected") {
		t.Errorf("synthesized body = %q", b)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Error("synthesized 503 carries Retry-After; want none so exponential fallback is exercised")
	}
}

func TestChaosTransportCut(t *testing.T) {
	cli, _, srv := newChaosClient(t, &Plan{Seed: 1, CutRate: 1, Times: 1}, linesHandler(50))
	resp, err := cli.Get(srv.URL + "/c")
	if err != nil {
		t.Fatal(err)
	}
	b, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil {
		t.Fatalf("cut stream read cleanly (%d bytes)", len(b))
	}
	if len(b) > cutAfter {
		t.Errorf("cut forwarded %d bytes, want <= %d", len(b), cutAfter)
	}
}

func TestChaosTransportCorruptLine(t *testing.T) {
	cli, _, srv := newChaosClient(t, &Plan{Seed: 1, CorruptLineRate: 1, Times: 1}, linesHandler(2))
	resp, err := cli.Get(srv.URL + "/cl")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no first line")
	}
	line := sc.Bytes()
	resp.Body.Close()
	var v map[string]any
	if err := json.Unmarshal(line, &v); err == nil {
		t.Errorf("corrupted first line still parses as JSON: %q", line)
	}
}

func TestChaosTransportDupItem(t *testing.T) {
	cli, _, srv := newChaosClient(t, &Plan{Seed: 1, DupItemRate: 1, Times: 1}, linesHandler(3))
	resp, err := cli.Get(srv.URL + "/d")
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4 (3 + 1 duplicate)", len(lines))
	}
	if lines[3] != lines[0] {
		t.Errorf("replayed line %q != first line %q", lines[3], lines[0])
	}
}

func TestChaosTransportBlackoutWindow(t *testing.T) {
	_, _, srv := newChaosClient(t, nil, linesHandler(1))
	host := strings.TrimPrefix(srv.URL, "http://")
	plan := &Plan{Seed: 1, BlackoutTarget: host, BlackoutFrom: 1, BlackoutFor: 2, Times: 1}
	cli := &http.Client{Transport: &ChaosTransport{Plan: plan}}
	want := []bool{true, false, false, true, true} // ordinals 1 and 2 blacked out
	for i, ok := range want {
		resp, err := cli.Get(srv.URL + "/b")
		if ok {
			if err != nil {
				t.Fatalf("request %d: unexpected refusal: %v", i, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		} else if err == nil || !strings.Contains(err.Error(), "blackout") {
			t.Fatalf("request %d: expected blackout, got err=%v", i, err)
		}
	}
}

func TestChaosTransportMaxConsecutiveForcesCleanPass(t *testing.T) {
	// Rate-1 refusals with a huge Times budget would refuse forever
	// without the streak guard.
	plan := &Plan{Seed: 1, RefuseRate: 1, Times: 1000}
	cli, _, srv := newChaosClient(t, plan, linesHandler(1))
	clean := 0
	for i := 0; i < 12; i++ {
		resp, err := cli.Get(srv.URL + "/s")
		if err == nil {
			clean++
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	if clean != 3 { // every 4th request (streak cap 3) passes clean
		t.Errorf("%d clean passes in 12 rate-1 requests, want 3", clean)
	}
}

func TestParseNetworkKeys(t *testing.T) {
	p, err := Parse("seed=7,refuse=0.1,latency=0.2,latdelay=5ms,http5xx=0.3,cut=0.1,corruptline=0.1,dupitem=0.1,tracecorrupt=0.4,blackout=host9@2+4,times=8")
	if err != nil {
		t.Fatal(err)
	}
	if p.RefuseRate != 0.1 || p.LatencyRate != 0.2 || p.LatencyDelay != 5*time.Millisecond ||
		p.HTTP5xxRate != 0.3 || p.CutRate != 0.1 || p.CorruptLineRate != 0.1 ||
		p.DupItemRate != 0.1 || p.TraceCorruptRate != 0.4 ||
		p.BlackoutTarget != "host9" || p.BlackoutFrom != 2 || p.BlackoutFor != 4 {
		t.Errorf("parsed plan = %+v", p)
	}
	if !p.HasNetworkFaults() || !p.HasLocalFaults() {
		t.Errorf("HasNetworkFaults=%v HasLocalFaults=%v, want true, true",
			p.HasNetworkFaults(), p.HasLocalFaults())
	}
	bad := []string{
		"blackout=h",             // no window
		"blackout=h@2",           // no duration
		"blackout=h@-1+2",        // negative start
		"blackout=h@0+0",         // zero duration
		"blackout=@1+2",          // empty host
		"latdelay=-5ms",          // negative duration
		"refuse=1.5",             // out of range
		"cut=0.5,dupitem=0.6",    // stream rates sum > 1
		"refuse=0.7,latency=0.7", // dial rates sum > 1
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	local, err := Parse("seed=1,panic=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if local.HasNetworkFaults() || !local.HasLocalFaults() {
		t.Errorf("local-only plan: HasNetworkFaults=%v HasLocalFaults=%v",
			local.HasNetworkFaults(), local.HasLocalFaults())
	}
}

func TestPlanTraceSiteIndependent(t *testing.T) {
	p := &Plan{TraceCorruptRate: 1}
	if d := p.Decide(SiteTrace, "x", 0); d.Kind != Corrupt {
		t.Errorf("rate-1 tracecorrupt decided %v", d.Kind)
	}
	if d := p.Decide(SiteStore, "x", 0); d.Kind != None {
		t.Errorf("tracecorrupt leaked into store site: %v", d.Kind)
	}
	s := &Plan{CorruptRate: 1}
	if d := s.Decide(SiteTrace, "x", 0); d.Kind != None {
		t.Errorf("corrupt leaked into trace site: %v", d.Kind)
	}
}
