package fault

import (
	"strings"
	"testing"
	"time"
)

func TestPlanDeterministic(t *testing.T) {
	p := &Plan{Seed: 7, PanicRate: 0.3, ErrorRate: 0.3, HangRate: 0.2, CancelRate: 0.2, Times: 4}
	for attempt := 0; attempt < 4; attempt++ {
		first := p.Decide(SiteExecute, "cell-a", attempt)
		for i := 0; i < 10; i++ {
			if got := p.Decide(SiteExecute, "cell-a", attempt); got != first {
				t.Fatalf("attempt %d: decision changed: %v then %v", attempt, first, got)
			}
		}
	}
	// A different seed must produce a different fault stream somewhere.
	q := &Plan{Seed: 8, PanicRate: 0.3, ErrorRate: 0.3, HangRate: 0.2, CancelRate: 0.2, Times: 4}
	same := true
	for attempt := 0; attempt < 4 && same; attempt++ {
		for _, cell := range []string{"cell-a", "cell-b", "cell-c", "cell-d"} {
			if p.Decide(SiteExecute, cell, attempt) != q.Decide(SiteExecute, cell, attempt) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical decisions on every probe")
	}
}

func TestPlanRateOneAlwaysInjects(t *testing.T) {
	p := &Plan{ErrorRate: 1}
	if d := p.Decide(SiteExecute, "x", 0); d.Kind != Error {
		t.Errorf("rate-1 error plan decided %v", d.Kind)
	}
	s := &Plan{CorruptRate: 1}
	if d := s.Decide(SiteStore, "x", 0); d.Kind != Corrupt {
		t.Errorf("rate-1 corrupt plan decided %v", d.Kind)
	}
	// Execute-site rates never leak into the store site and vice versa.
	if d := p.Decide(SiteStore, "x", 0); d.Kind != None {
		t.Errorf("error plan injected %v at the store site", d.Kind)
	}
	if d := s.Decide(SiteExecute, "x", 0); d.Kind != None {
		t.Errorf("corrupt plan injected %v at the execute site", d.Kind)
	}
}

func TestPlanTimesBudget(t *testing.T) {
	p := &Plan{ErrorRate: 1} // Times defaults to 1
	if d := p.Decide(SiteExecute, "x", 0); d.Kind != Error {
		t.Error("attempt 0 not injected")
	}
	if d := p.Decide(SiteExecute, "x", 1); d.Kind != None {
		t.Errorf("attempt 1 injected %v past the Times budget", d.Kind)
	}
	p.Times = 3
	if d := p.Decide(SiteExecute, "x", 2); d.Kind != Error {
		t.Error("attempt 2 not injected with times=3")
	}
	if d := p.Decide(SiteExecute, "x", 3); d.Kind != None {
		t.Error("attempt 3 injected with times=3")
	}
}

func TestPlanZeroValueInjectsNothing(t *testing.T) {
	var p Plan
	for attempt := 0; attempt < 3; attempt++ {
		if d := p.Decide(SiteExecute, "x", attempt); d.Kind != None {
			t.Errorf("zero plan injected %v", d.Kind)
		}
		if d := p.Decide(SiteStore, "x", attempt); d.Kind != None {
			t.Errorf("zero plan injected %v at store", d.Kind)
		}
	}
}

func TestPlanHangCarriesDelay(t *testing.T) {
	p := &Plan{HangRate: 1, HangDelay: 123 * time.Millisecond}
	d := p.Decide(SiteExecute, "x", 0)
	if d.Kind != Hang || d.Delay != 123*time.Millisecond {
		t.Errorf("hang decision = %+v", d)
	}
	p.HangDelay = 0
	if d := p.Decide(SiteExecute, "x", 0); d.Delay != DefaultHangDelay {
		t.Errorf("default hang delay = %v", d.Delay)
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("seed=42, panic=0.1,error=0.2,hang=0.05,cancel=0.05,corrupt=0.3,delay=250ms,times=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.PanicRate != 0.1 || p.ErrorRate != 0.2 ||
		p.HangRate != 0.05 || p.CancelRate != 0.05 || p.CorruptRate != 0.3 ||
		p.HangDelay != 250*time.Millisecond || p.Times != 2 {
		t.Errorf("parsed plan = %+v", p)
	}
	if p, err := Parse("  "); p != nil || err != nil {
		t.Errorf("empty spec = %+v, %v; want nil, nil", p, err)
	}
	bad := []string{
		"panic",            // no value
		"panic=x",          // bad rate
		"panic=1.5",        // out of range
		"warp=0.1",         // unknown key
		"delay=-3s",        // negative duration
		"delay=fast",       // unparsable duration
		"times=0",          // below 1
		"seed=abc",         // bad seed
		"panic=0.6,error=0.6", // execute rates sum > 1
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseErrorsNameTheOffender(t *testing.T) {
	_, err := Parse("panic=nope")
	if err == nil || !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "nope") {
		t.Errorf("error %q does not name the offending key/value", err)
	}
	_, err = Parse("warp=1")
	if err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Errorf("unknown-key error %q does not list valid keys", err)
	}
}
