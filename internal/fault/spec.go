package fault

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// EnvVar is the environment variable the CLI reads a fault spec from.
const EnvVar = "BIOPERF5_FAULTS"

// Parse decodes a compact fault specification into a Plan.  The spec
// is a comma-separated list of key=value pairs:
//
//	seed=N        deterministic stream selector (default 1)
//	panic=R       per-attempt panic probability, R in [0,1]
//	error=R       transient-error probability
//	hang=R        artificial-hang probability
//	cancel=R      spurious-cancellation probability
//	corrupt=R     corrupted-cache-write probability
//	delay=DUR     hang duration (default 30s; set the engine's cell
//	              timeout below it to exercise the watchdog)
//	times=N       max injections per (site, cell) (default 1; keep it
//	              at or below the retry budget so sweeps converge)
//
// Example: "seed=42,panic=0.2,error=0.2,corrupt=0.3,times=1".
// An empty spec returns (nil, nil): no injection.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{Seed: 1}
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		key, val, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("fault: bad spec element %q: want key=value", pair)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %w", val, err)
			}
			p.Seed = n
		case "panic", "error", "hang", "cancel", "corrupt":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad %s rate %q: %w", key, val, err)
			}
			switch key {
			case "panic":
				p.PanicRate = r
			case "error":
				p.ErrorRate = r
			case "hang":
				p.HangRate = r
			case "cancel":
				p.CancelRate = r
			case "corrupt":
				p.CorruptRate = r
			}
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("fault: bad delay %q: want a positive duration like 250ms", val)
			}
			p.HangDelay = d
		case "times":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fault: bad times %q: want an integer >= 1", val)
			}
			p.Times = n
		default:
			return nil, fmt.Errorf("fault: unknown spec key %q (valid: seed, panic, error, hang, cancel, corrupt, delay, times)", key)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// FromEnv parses the BIOPERF5_FAULTS environment variable.  An unset
// or empty variable returns (nil, nil).
func FromEnv() (Injector, error) {
	p, err := Parse(os.Getenv(EnvVar))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", EnvVar, err)
	}
	if p == nil {
		return nil, nil
	}
	return p, nil
}
