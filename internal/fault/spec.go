package fault

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// EnvVar is the environment variable the CLI reads a fault spec from.
const EnvVar = "BIOPERF5_FAULTS"

// Parse decodes a compact fault specification into a Plan.  The spec
// is a comma-separated list of key=value pairs:
//
//	seed=N        deterministic stream selector (default 1)
//	panic=R       per-attempt panic probability, R in [0,1]
//	error=R       transient-error probability
//	hang=R        artificial-hang probability
//	cancel=R      spurious-cancellation probability
//	corrupt=R     corrupted-cache-write probability
//	tracecorrupt=R corrupted trace-store-write probability
//	delay=DUR     hang duration (default 30s; set the engine's cell
//	              timeout below it to exercise the watchdog)
//	times=N       max injections per (site, cell) (default 1; keep it
//	              at or below the retry budget so sweeps converge)
//
// Transport (wire) keys, consumed by ChaosTransport:
//
//	refuse=R      connection-refused probability per dial
//	latency=R     added-latency probability per dial
//	latdelay=DUR  added latency per Latency decision (default 25ms)
//	http5xx=R     synthesized-503 probability per response
//	cut=R         mid-stream-cut probability per response body
//	corruptline=R corrupted-leading-bytes probability per response body
//	dupitem=R     duplicated-first-JSONL-line probability per body
//	blackout=HOST@N+M  refuse every request whose host contains HOST
//	              and whose per-host request ordinal is in [N, N+M)
//
// Example: "seed=42,panic=0.2,error=0.2,corrupt=0.3,times=1".
// Example: "seed=7,refuse=0.2,cut=0.2,blackout=18091@2+4,times=8".
// An empty spec returns (nil, nil): no injection.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{Seed: 1}
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		key, val, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("fault: bad spec element %q: want key=value", pair)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %w", val, err)
			}
			p.Seed = n
		case "panic", "error", "hang", "cancel", "corrupt", "tracecorrupt",
			"refuse", "latency", "http5xx", "cut", "corruptline", "dupitem":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad %s rate %q: %w", key, val, err)
			}
			switch key {
			case "panic":
				p.PanicRate = r
			case "error":
				p.ErrorRate = r
			case "hang":
				p.HangRate = r
			case "cancel":
				p.CancelRate = r
			case "corrupt":
				p.CorruptRate = r
			case "tracecorrupt":
				p.TraceCorruptRate = r
			case "refuse":
				p.RefuseRate = r
			case "latency":
				p.LatencyRate = r
			case "http5xx":
				p.HTTP5xxRate = r
			case "cut":
				p.CutRate = r
			case "corruptline":
				p.CorruptLineRate = r
			case "dupitem":
				p.DupItemRate = r
			}
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("fault: bad delay %q: want a positive duration like 250ms", val)
			}
			p.HangDelay = d
		case "latdelay":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("fault: bad latdelay %q: want a positive duration like 25ms", val)
			}
			p.LatencyDelay = d
		case "blackout":
			target, window, ok := strings.Cut(val, "@")
			if !ok || target == "" {
				return nil, fmt.Errorf("fault: bad blackout %q: want HOST@FROM+FOR", val)
			}
			from, dur, ok := strings.Cut(window, "+")
			if !ok {
				return nil, fmt.Errorf("fault: bad blackout window %q: want FROM+FOR", window)
			}
			f, err1 := strconv.Atoi(from)
			n, err2 := strconv.Atoi(dur)
			if err1 != nil || err2 != nil || f < 0 || n < 1 {
				return nil, fmt.Errorf("fault: bad blackout window %q: want FROM >= 0 and FOR >= 1", window)
			}
			p.BlackoutTarget = target
			p.BlackoutFrom = f
			p.BlackoutFor = n
		case "times":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fault: bad times %q: want an integer >= 1", val)
			}
			p.Times = n
		default:
			return nil, fmt.Errorf("fault: unknown spec key %q (valid: seed, panic, error, hang, cancel, corrupt, tracecorrupt, refuse, latency, http5xx, cut, corruptline, dupitem, blackout, delay, latdelay, times)", key)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// FromEnv parses the BIOPERF5_FAULTS environment variable.  An unset
// or empty variable returns (nil, nil).
func FromEnv() (Injector, error) {
	p, err := PlanFromEnv()
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, nil
	}
	return p, nil
}

// PlanFromEnv parses the BIOPERF5_FAULTS environment variable and
// returns the concrete Plan, letting callers split it between the
// in-process injector and the chaos transport.  An unset or empty
// variable returns (nil, nil).
func PlanFromEnv() (*Plan, error) {
	p, err := Parse(os.Getenv(EnvVar))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", EnvVar, err)
	}
	return p, nil
}
