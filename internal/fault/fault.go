// Package fault is the deterministic fault-injection layer behind the
// scheduler's chaos testing.  An Injector is consulted by the engine at
// two sites — job execution and the disk-cache write — and answers with
// a Decision: inject nothing, or one of the failure modes the
// fault-tolerant sweep must survive (a panic, a transient error, an
// artificial hang, a spurious cancellation, a corrupted cache entry).
//
// The stock Plan injector is seedable and fully deterministic: the
// decision for a given (seed, site, cell hash, attempt) never changes,
// so a chaotic run is exactly reproducible, and a bounded Times budget
// guarantees that retries eventually see a fault-free attempt.  Plans
// parse from a compact spec string (the BIOPERF5_FAULTS environment
// variable in the CLI); see Parse.
package fault

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"
)

// Site names a point in the engine where faults can be injected.
type Site int

const (
	// SiteExecute is one simulation attempt of a job.
	SiteExecute Site = iota
	// SiteStore is the disk-cache write of a computed result.
	SiteStore
)

// Kind is a failure mode.
type Kind int

const (
	// None injects nothing.
	None Kind = iota
	// Panic makes the attempt panic mid-simulation.
	Panic
	// Error fails the attempt with a transient (retryable) error.
	Error
	// Hang delays the attempt by Decision.Delay, modelling a stuck
	// simulation; with a cell deadline set, the watchdog fires first.
	Hang
	// Cancel fails the attempt with a spurious cancellation error.
	Cancel
	// Corrupt truncates the freshly written disk-cache entry,
	// modelling a torn write or bit rot (SiteStore only).
	Corrupt
)

// String names the kind for error messages and specs.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Error:
		return "error"
	case Hang:
		return "hang"
	case Cancel:
		return "cancel"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Decision is an injector's answer for one site visit.
type Decision struct {
	Kind  Kind
	Delay time.Duration // hang duration; meaningful only for Hang
}

// Injector decides which fault, if any, to inject at a site.  hash is
// the content hash of the cell being processed and attempt its 0-based
// retry index.  Implementations must be safe for concurrent use and
// deterministic in their arguments, or chaos runs stop reproducing.
type Injector interface {
	Decide(site Site, hash string, attempt int) Decision
}

// DefaultHangDelay is the hang duration used when a Plan does not set
// one.  It is deliberately long: a hang is meant to out-sleep the
// engine's cell deadline so the watchdog path is exercised.
const DefaultHangDelay = 30 * time.Second

// Plan is the stock deterministic injector: per-kind probabilities
// evaluated against a hash of (Seed, site, cell hash, attempt).  The
// zero value injects nothing.
type Plan struct {
	Seed int64 // stream selector; same seed, same faults

	// Execute-site rates, each in [0,1] with a sum <= 1.
	PanicRate  float64
	ErrorRate  float64
	HangRate   float64
	CancelRate float64

	// Store-site rate in [0,1].
	CorruptRate float64

	// HangDelay is how long a Hang decision sleeps (<= 0 means
	// DefaultHangDelay).
	HangDelay time.Duration

	// Times caps injections per (site, cell): attempts >= Times are
	// left alone (<= 0 means 1).  Keeping Times at or below the
	// engine's retry budget guarantees every cell eventually gets a
	// clean attempt, so a chaotic sweep still converges.
	Times int
}

// Validate checks the plan's rates and budgets.
func (p *Plan) Validate() error {
	execSum := 0.0
	for _, r := range []struct {
		name string
		rate float64
	}{
		{"panic", p.PanicRate}, {"error", p.ErrorRate},
		{"hang", p.HangRate}, {"cancel", p.CancelRate},
		{"corrupt", p.CorruptRate},
	} {
		if r.rate < 0 || r.rate > 1 {
			return fmt.Errorf("fault: %s rate %g out of range [0,1]", r.name, r.rate)
		}
		if r.name != "corrupt" {
			execSum += r.rate
		}
	}
	if execSum > 1 {
		return fmt.Errorf("fault: execute-site rates sum to %g, must be <= 1", execSum)
	}
	return nil
}

func (p *Plan) times() int {
	if p.Times <= 0 {
		return 1
	}
	return p.Times
}

func (p *Plan) hangDelay() time.Duration {
	if p.HangDelay <= 0 {
		return DefaultHangDelay
	}
	return p.HangDelay
}

// draw maps (Seed, site, hash, attempt) to a uniform value in [0,1),
// deterministically.
func (p *Plan) draw(site Site, hash string, attempt int) float64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("bioperf5.fault|%d|%d|%s|%d",
		p.Seed, site, hash, attempt)))
	// 53 uniform bits, exactly representable as a float64 in [0,1).
	return float64(binary.BigEndian.Uint64(sum[:8])>>11) / float64(1<<53)
}

// Decide implements Injector.
func (p *Plan) Decide(site Site, hash string, attempt int) Decision {
	if p == nil || attempt >= p.times() {
		return Decision{}
	}
	u := p.draw(site, hash, attempt)
	switch site {
	case SiteStore:
		if u < p.CorruptRate {
			return Decision{Kind: Corrupt}
		}
	case SiteExecute:
		cum := 0.0
		for _, c := range []struct {
			rate float64
			kind Kind
		}{
			{p.PanicRate, Panic},
			{p.ErrorRate, Error},
			{p.HangRate, Hang},
			{p.CancelRate, Cancel},
		} {
			cum += c.rate
			if c.rate > 0 && u < cum {
				d := Decision{Kind: c.kind}
				if c.kind == Hang {
					d.Delay = p.hangDelay()
				}
				return d
			}
		}
	}
	return Decision{}
}
