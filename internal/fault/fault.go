// Package fault is the deterministic fault-injection layer behind the
// scheduler's chaos testing.  An Injector is consulted by the engine at
// in-process sites — job execution, the disk-cache write, the
// trace-store write — and by the ChaosTransport at wire sites — dial,
// response, stream — and answers with a Decision: inject nothing, or
// one of the failure modes the fault-tolerant sweep must survive (a
// panic, a transient error, an artificial hang, a spurious
// cancellation, a corrupted store entry, a refused or delayed dial, a
// synthesized 5xx, a cut or corrupted or duplicated response stream, a
// per-worker blackout window).
//
// The stock Plan injector is seedable and fully deterministic: the
// decision for a given (seed, site, cell hash, attempt) never changes,
// so a chaotic run is exactly reproducible, and a bounded Times budget
// guarantees that retries eventually see a fault-free attempt.  Plans
// parse from a compact spec string (the BIOPERF5_FAULTS environment
// variable in the CLI); see Parse.
package fault

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"
)

// Site names a point in the engine where faults can be injected.
type Site int

const (
	// SiteExecute is one simulation attempt of a job.
	SiteExecute Site = iota
	// SiteStore is the disk-cache write of a computed result.
	SiteStore
	// SiteTrace is the trace-store disk write of a captured trace.
	SiteTrace
	// SiteDial is a transport-level request about to leave the client
	// (connection refusal, added latency, blackout windows).
	SiteDial
	// SiteResponse is a transport-level response about to reach the
	// client (synthesized 5xx answers).
	SiteResponse
	// SiteStream is a response body being streamed to the client
	// (mid-stream cuts, corrupted or duplicated JSONL lines).
	SiteStream
)

// Kind is a failure mode.
type Kind int

const (
	// None injects nothing.
	None Kind = iota
	// Panic makes the attempt panic mid-simulation.
	Panic
	// Error fails the attempt with a transient (retryable) error.
	Error
	// Hang delays the attempt by Decision.Delay, modelling a stuck
	// simulation; with a cell deadline set, the watchdog fires first.
	Hang
	// Cancel fails the attempt with a spurious cancellation error.
	Cancel
	// Corrupt truncates the freshly written disk-cache or trace-store
	// entry, modelling a torn write or bit rot (SiteStore/SiteTrace).
	Corrupt
	// Refuse fails a dial with a connection-refused error (SiteDial).
	Refuse
	// Latency delays a request by Decision.Delay before it is sent,
	// modelling a slow or congested link (SiteDial).
	Latency
	// HTTP5xx replaces the worker's answer with a synthesized 503,
	// modelling a proxy or worker blowing up after accepting the
	// request (SiteResponse).
	HTTP5xx
	// Cut severs the response body mid-stream with an unexpected EOF,
	// modelling a torn connection (SiteStream).
	Cut
	// CorruptLine mangles the leading bytes of the response body so a
	// JSONL (or JSON) consumer sees garbage, modelling on-the-wire
	// corruption (SiteStream).
	CorruptLine
	// DupItem duplicates the first complete JSONL line of the body,
	// modelling at-least-once delivery (SiteStream).  Consumers must
	// dedup; the coordinator's first-result-wins does.
	DupItem
	// Blackout refuses every request to one worker for a window of
	// requests, modelling a network partition (SiteDial; reported by
	// the transport when the plan's blackout window matches).
	Blackout
)

// String names the kind for error messages and specs.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Error:
		return "error"
	case Hang:
		return "hang"
	case Cancel:
		return "cancel"
	case Corrupt:
		return "corrupt"
	case Refuse:
		return "refuse"
	case Latency:
		return "latency"
	case HTTP5xx:
		return "http5xx"
	case Cut:
		return "cut"
	case CorruptLine:
		return "corruptline"
	case DupItem:
		return "dupitem"
	case Blackout:
		return "blackout"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Decision is an injector's answer for one site visit.
type Decision struct {
	Kind  Kind
	Delay time.Duration // hang duration; meaningful only for Hang
}

// Injector decides which fault, if any, to inject at a site.  hash is
// the content hash of the cell being processed and attempt its 0-based
// retry index.  Implementations must be safe for concurrent use and
// deterministic in their arguments, or chaos runs stop reproducing.
type Injector interface {
	Decide(site Site, hash string, attempt int) Decision
}

// DefaultHangDelay is the hang duration used when a Plan does not set
// one.  It is deliberately long: a hang is meant to out-sleep the
// engine's cell deadline so the watchdog path is exercised.
const DefaultHangDelay = 30 * time.Second

// DefaultLatencyDelay is the added request latency used when a Plan
// does not set one.  It is deliberately short: latency injection is
// meant to reorder completions and exercise stealing, not to trip
// request deadlines.
const DefaultLatencyDelay = 25 * time.Millisecond

// Plan is the stock deterministic injector: per-kind probabilities
// evaluated against a hash of (Seed, site, cell hash, attempt).  The
// zero value injects nothing.
type Plan struct {
	Seed int64 // stream selector; same seed, same faults

	// Execute-site rates, each in [0,1] with a sum <= 1.
	PanicRate  float64
	ErrorRate  float64
	HangRate   float64
	CancelRate float64

	// Store-site rate in [0,1].
	CorruptRate float64

	// Trace-site rate in [0,1]: probability that a trace-store disk
	// write is torn after landing.
	TraceCorruptRate float64

	// Dial-site rates, each in [0,1] with a sum <= 1.
	RefuseRate  float64
	LatencyRate float64

	// Response-site rate in [0,1]: probability a worker's answer is
	// replaced with a synthesized 503.
	HTTP5xxRate float64

	// Stream-site rates, each in [0,1] with a sum <= 1.
	CutRate         float64
	CorruptLineRate float64
	DupItemRate     float64

	// Blackout describes a per-worker partition window: every request
	// whose host contains BlackoutTarget and whose per-host request
	// ordinal falls in [BlackoutFrom, BlackoutFrom+BlackoutFor) is
	// refused.  Empty target disables the window.
	BlackoutTarget string
	BlackoutFrom   int
	BlackoutFor    int

	// HangDelay is how long a Hang decision sleeps (<= 0 means
	// DefaultHangDelay).
	HangDelay time.Duration

	// LatencyDelay is how long a Latency decision stalls a request
	// before it is sent (<= 0 means DefaultLatencyDelay).
	LatencyDelay time.Duration

	// Times caps injections per (site, cell): attempts >= Times are
	// left alone (<= 0 means 1).  Keeping Times at or below the
	// engine's retry budget guarantees every cell eventually gets a
	// clean attempt, so a chaotic sweep still converges.
	Times int
}

// Validate checks the plan's rates and budgets.
func (p *Plan) Validate() error {
	for _, r := range []struct {
		name string
		rate float64
	}{
		{"panic", p.PanicRate}, {"error", p.ErrorRate},
		{"hang", p.HangRate}, {"cancel", p.CancelRate},
		{"corrupt", p.CorruptRate}, {"tracecorrupt", p.TraceCorruptRate},
		{"refuse", p.RefuseRate}, {"latency", p.LatencyRate},
		{"http5xx", p.HTTP5xxRate},
		{"cut", p.CutRate}, {"corruptline", p.CorruptLineRate},
		{"dupitem", p.DupItemRate},
	} {
		if r.rate < 0 || r.rate > 1 {
			return fmt.Errorf("fault: %s rate %g out of range [0,1]", r.name, r.rate)
		}
	}
	for _, s := range []struct {
		name string
		sum  float64
	}{
		{"execute", p.PanicRate + p.ErrorRate + p.HangRate + p.CancelRate},
		{"dial", p.RefuseRate + p.LatencyRate},
		{"stream", p.CutRate + p.CorruptLineRate + p.DupItemRate},
	} {
		if s.sum > 1 {
			return fmt.Errorf("fault: %s-site rates sum to %g, must be <= 1", s.name, s.sum)
		}
	}
	if p.BlackoutTarget != "" && (p.BlackoutFrom < 0 || p.BlackoutFor <= 0) {
		return fmt.Errorf("fault: blackout window %d+%d invalid, want FROM >= 0 and FOR > 0",
			p.BlackoutFrom, p.BlackoutFor)
	}
	return nil
}

// HasNetworkFaults reports whether the plan injects anything at the
// transport sites (dial, response, stream) or defines a blackout
// window; when false a ChaosTransport built from it is a no-op.
func (p *Plan) HasNetworkFaults() bool {
	if p == nil {
		return false
	}
	return p.RefuseRate > 0 || p.LatencyRate > 0 || p.HTTP5xxRate > 0 ||
		p.CutRate > 0 || p.CorruptLineRate > 0 || p.DupItemRate > 0 ||
		(p.BlackoutTarget != "" && p.BlackoutFor > 0)
}

// HasLocalFaults reports whether the plan injects anything at the
// in-process sites (execute, store, trace).
func (p *Plan) HasLocalFaults() bool {
	if p == nil {
		return false
	}
	return p.PanicRate > 0 || p.ErrorRate > 0 || p.HangRate > 0 ||
		p.CancelRate > 0 || p.CorruptRate > 0 || p.TraceCorruptRate > 0
}

func (p *Plan) times() int {
	if p.Times <= 0 {
		return 1
	}
	return p.Times
}

func (p *Plan) hangDelay() time.Duration {
	if p.HangDelay <= 0 {
		return DefaultHangDelay
	}
	return p.HangDelay
}

func (p *Plan) latencyDelay() time.Duration {
	if p.LatencyDelay <= 0 {
		return DefaultLatencyDelay
	}
	return p.LatencyDelay
}

// draw maps (Seed, site, hash, attempt) to a uniform value in [0,1),
// deterministically.
func (p *Plan) draw(site Site, hash string, attempt int) float64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("bioperf5.fault|%d|%d|%s|%d",
		p.Seed, site, hash, attempt)))
	// 53 uniform bits, exactly representable as a float64 in [0,1).
	return float64(binary.BigEndian.Uint64(sum[:8])>>11) / float64(1<<53)
}

// Decide implements Injector.
func (p *Plan) Decide(site Site, hash string, attempt int) Decision {
	if p == nil || attempt >= p.times() {
		return Decision{}
	}
	u := p.draw(site, hash, attempt)
	switch site {
	case SiteStore:
		if u < p.CorruptRate {
			return Decision{Kind: Corrupt}
		}
	case SiteTrace:
		if u < p.TraceCorruptRate {
			return Decision{Kind: Corrupt}
		}
	case SiteDial:
		cum := 0.0
		for _, c := range []struct {
			rate float64
			kind Kind
		}{
			{p.RefuseRate, Refuse},
			{p.LatencyRate, Latency},
		} {
			cum += c.rate
			if c.rate > 0 && u < cum {
				d := Decision{Kind: c.kind}
				if c.kind == Latency {
					d.Delay = p.latencyDelay()
				}
				return d
			}
		}
	case SiteResponse:
		if u < p.HTTP5xxRate {
			return Decision{Kind: HTTP5xx}
		}
	case SiteStream:
		cum := 0.0
		for _, c := range []struct {
			rate float64
			kind Kind
		}{
			{p.CutRate, Cut},
			{p.CorruptLineRate, CorruptLine},
			{p.DupItemRate, DupItem},
		} {
			cum += c.rate
			if c.rate > 0 && u < cum {
				return Decision{Kind: c.kind}
			}
		}
	case SiteExecute:
		cum := 0.0
		for _, c := range []struct {
			rate float64
			kind Kind
		}{
			{p.PanicRate, Panic},
			{p.ErrorRate, Error},
			{p.HangRate, Hang},
			{p.CancelRate, Cancel},
		} {
			cum += c.rate
			if c.rate > 0 && u < cum {
				d := Decision{Kind: c.kind}
				if c.kind == Hang {
					d.Delay = p.hangDelay()
				}
				return d
			}
		}
	}
	return Decision{}
}
