package fault

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxDupLine caps how many bytes of the first JSONL line a DupItem
// decision will buffer for replay; longer lines pass through unfaulted.
const maxDupLine = 1 << 20

// cutAfter is how many body bytes a Cut decision forwards before
// severing the stream, enough to put the consumer mid-line.
const cutAfter = 100

// corruptSpan is how many leading body bytes a CorruptLine decision
// XORs.  32 bytes of 0xA5 turns `{"schema":...` into garbage that no
// JSON or JSONL consumer accepts.
const corruptSpan = 32

// ChaosTransport is an http.RoundTripper that deterministically
// injects network faults around an inner transport, driven by a Plan's
// wire-site rates.  Decisions are pure functions of (plan seed, site,
// request key, per-key request ordinal), so a chaotic run reproduces
// exactly under the same seed and request order per key.  The request
// key is "METHOD host path": each worker endpoint gets its own fault
// stream regardless of global interleaving.
//
// Convergence has two guards.  The plan's Times budget stops injecting
// once a key's ordinal reaches it, and MaxConsecutive forces a clean
// pass after that many consecutively failed requests on one key, so a
// bounded client retry budget always suffices.  Blackout windows are
// exempt from both: a partition does not care how often you knock.
type ChaosTransport struct {
	// Inner performs the real round trips (nil means
	// http.DefaultTransport).
	Inner http.RoundTripper
	// Plan supplies the wire-site decisions; nil or a plan with no
	// network faults makes the transport a pass-through.
	Plan *Plan
	// MaxConsecutive caps failure-injecting decisions in a row per
	// request key before a forced clean pass (<= 0 means 3).
	MaxConsecutive int
	// OnFault, when set, observes every injected fault.
	OnFault func(site Site, kind Kind, key string)

	mu       sync.Mutex
	keys     map[string]*keyState
	hosts    map[string]int
	injected atomic.Uint64
}

type keyState struct {
	ordinal int // requests seen for this key
	streak  int // consecutive failure-injecting decisions
}

// Injected reports how many faults the transport has injected so far.
func (t *ChaosTransport) Injected() uint64 { return t.injected.Load() }

func (t *ChaosTransport) maxConsecutive() int {
	if t.MaxConsecutive <= 0 {
		return 3
	}
	return t.MaxConsecutive
}

func (t *ChaosTransport) inner() http.RoundTripper {
	if t.Inner != nil {
		return t.Inner
	}
	return http.DefaultTransport
}

func (t *ChaosTransport) note(site Site, kind Kind, key string) {
	t.injected.Add(1)
	if t.OnFault != nil {
		t.OnFault(site, kind, key)
	}
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	p := t.Plan
	if p == nil || !p.HasNetworkFaults() {
		return t.inner().RoundTrip(req)
	}
	host := req.URL.Host
	key := req.Method + " " + host + req.URL.Path

	t.mu.Lock()
	if t.keys == nil {
		t.keys = make(map[string]*keyState)
		t.hosts = make(map[string]int)
	}
	hostOrd := t.hosts[host]
	t.hosts[host]++
	ks := t.keys[key]
	if ks == nil {
		ks = &keyState{}
		t.keys[key] = ks
	}
	ord := ks.ordinal
	ks.ordinal++
	forcedClean := ks.streak >= t.maxConsecutive()
	if forcedClean {
		ks.streak = 0
	}
	t.mu.Unlock()

	// Blackout windows model a partition: absolute, streak-exempt.
	if p.BlackoutTarget != "" && p.BlackoutFor > 0 &&
		strings.Contains(host, p.BlackoutTarget) &&
		hostOrd >= p.BlackoutFrom && hostOrd < p.BlackoutFrom+p.BlackoutFor {
		t.note(SiteDial, Blackout, key)
		return nil, fmt.Errorf("fault: injected blackout of %q (request %d in window %d+%d): connection refused",
			host, hostOrd, p.BlackoutFrom, p.BlackoutFor)
	}

	if !forcedClean {
		switch d := p.Decide(SiteDial, key, ord); d.Kind {
		case Refuse:
			t.bumpStreak(key)
			t.note(SiteDial, Refuse, key)
			return nil, fmt.Errorf("fault: injected dial refusal for %s: connection refused", key)
		case Latency:
			t.note(SiteDial, Latency, key)
			select {
			case <-time.After(d.Delay):
			case <-req.Context().Done():
				return nil, req.Context().Err()
			}
		}
	}

	resp, err := t.inner().RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if forcedClean {
		return resp, nil
	}

	if p.Decide(SiteResponse, key, ord).Kind == HTTP5xx {
		t.bumpStreak(key)
		t.note(SiteResponse, HTTP5xx, key)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		body := "fault: injected 503\n"
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         resp.Proto,
			ProtoMajor:    resp.ProtoMajor,
			ProtoMinor:    resp.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}

	switch p.Decide(SiteStream, key, ord).Kind {
	case Cut:
		t.bumpStreak(key)
		t.note(SiteStream, Cut, key)
		resp.Body = &cutBody{rc: resp.Body, remaining: cutAfter}
	case CorruptLine:
		t.bumpStreak(key)
		t.note(SiteStream, CorruptLine, key)
		resp.Body = &corruptBody{rc: resp.Body, remaining: corruptSpan}
	case DupItem:
		t.resetStreak(key)
		t.note(SiteStream, DupItem, key)
		resp.Body = &dupBody{rc: resp.Body}
	default:
		t.resetStreak(key)
	}
	return resp, nil
}

func (t *ChaosTransport) bumpStreak(key string) {
	t.mu.Lock()
	t.keys[key].streak++
	t.mu.Unlock()
}

func (t *ChaosTransport) resetStreak(key string) {
	t.mu.Lock()
	t.keys[key].streak = 0
	t.mu.Unlock()
}

// cutBody forwards a handful of bytes, then severs the stream.
type cutBody struct {
	rc        io.ReadCloser
	remaining int
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	if err == io.EOF {
		// The stream was shorter than the cut point; sever anyway so
		// the consumer sees a torn connection, not a clean finish.
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *cutBody) Close() error { return b.rc.Close() }

// corruptBody XORs the leading bytes of the stream with 0xA5.
type corruptBody struct {
	rc        io.ReadCloser
	remaining int
}

func (b *corruptBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	for i := 0; i < n && b.remaining > 0; i++ {
		p[i] ^= 0xA5
		b.remaining--
	}
	return n, err
}

func (b *corruptBody) Close() error { return b.rc.Close() }

// dupBody buffers the first newline-terminated line and replays it
// once after the underlying stream ends, modelling at-least-once
// delivery of one batch item.
type dupBody struct {
	rc       io.ReadCloser
	line     []byte
	complete bool // first line fully captured
	replay   *bytes.Reader
}

func (b *dupBody) Read(p []byte) (int, error) {
	if b.replay != nil {
		return b.replay.Read(p)
	}
	n, err := b.rc.Read(p)
	if !b.complete && n > 0 {
		if i := bytes.IndexByte(p[:n], '\n'); i >= 0 {
			b.line = append(b.line, p[:i+1]...)
			b.complete = true
		} else if len(b.line)+n <= maxDupLine {
			b.line = append(b.line, p[:n]...)
		} else {
			b.line = nil
			b.complete = true // over cap: give up on duplicating
		}
	}
	if err == io.EOF && b.complete && len(b.line) > 0 {
		b.replay = bytes.NewReader(b.line)
		b.line = nil
		if n > 0 {
			return n, nil
		}
		return b.replay.Read(p)
	}
	return n, err
}

func (b *dupBody) Close() error { return b.rc.Close() }
