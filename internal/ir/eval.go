package ir

import (
	"errors"
	"fmt"

	"bioperf5/internal/mem"
)

// ErrInterpLimit is returned when interpretation exceeds its step budget.
var ErrInterpLimit = errors.New("ir: interpreter step limit exceeded")

// Interp executes f against memory m with the given arguments and
// returns the function's result.  It is the reference semantics of the
// IR: compiler passes are property-tested by comparing Interp results
// before and after a transformation, and compiled code is validated by
// comparing machine execution against Interp.
func Interp(f *Func, m *mem.Memory, args []int64, maxSteps uint64) (int64, error) {
	if len(args) != f.NArgs {
		return 0, fmt.Errorf("ir: %s expects %d args, got %d", f.Name, f.NArgs, len(args))
	}
	regs := make([]int64, f.NumRegs())
	b := f.Entry()
	var steps uint64
	for {
		for i := range b.Instrs {
			if steps++; steps > maxSteps {
				return 0, ErrInterpLimit
			}
			in := &b.Instrs[i]
			switch in.Op {
			case OpConst:
				regs[in.Dst] = in.Imm
			case OpArg:
				regs[in.Dst] = args[in.Imm]
			case OpCopy:
				regs[in.Dst] = regs[in.A]
			case OpAdd:
				regs[in.Dst] = regs[in.A] + regs[in.B]
			case OpSub:
				regs[in.Dst] = regs[in.A] - regs[in.B]
			case OpMul:
				regs[in.Dst] = regs[in.A] * regs[in.B]
			case OpDiv:
				if regs[in.B] == 0 {
					regs[in.Dst] = 0
				} else {
					regs[in.Dst] = regs[in.A] / regs[in.B]
				}
			case OpAnd:
				regs[in.Dst] = regs[in.A] & regs[in.B]
			case OpOr:
				regs[in.Dst] = regs[in.A] | regs[in.B]
			case OpXor:
				regs[in.Dst] = regs[in.A] ^ regs[in.B]
			case OpShl:
				if sh := uint64(regs[in.B]) & 127; sh >= 64 {
					regs[in.Dst] = 0
				} else {
					regs[in.Dst] = regs[in.A] << sh
				}
			case OpShr:
				if sh := uint64(regs[in.B]) & 127; sh >= 64 {
					regs[in.Dst] = 0
				} else {
					regs[in.Dst] = int64(uint64(regs[in.A]) >> sh)
				}
			case OpSar:
				sh := uint64(regs[in.B]) & 127
				if sh >= 64 {
					sh = 63
				}
				regs[in.Dst] = regs[in.A] >> sh
			case OpNeg:
				regs[in.Dst] = -regs[in.A]
			case OpAddImm:
				regs[in.Dst] = regs[in.A] + in.Imm
			case OpMulImm:
				regs[in.Dst] = regs[in.A] * in.Imm
			case OpAndImm:
				regs[in.Dst] = regs[in.A] & in.Imm
			case OpOrImm:
				regs[in.Dst] = regs[in.A] | in.Imm
			case OpXorImm:
				regs[in.Dst] = regs[in.A] ^ in.Imm
			case OpShlImm:
				regs[in.Dst] = regs[in.A] << uint(in.Imm)
			case OpShrImm:
				regs[in.Dst] = int64(uint64(regs[in.A]) >> uint(in.Imm))
			case OpSarImm:
				regs[in.Dst] = regs[in.A] >> uint(in.Imm)
			case OpMax:
				a, bb := regs[in.A], regs[in.B]
				if a >= bb {
					regs[in.Dst] = a
				} else {
					regs[in.Dst] = bb
				}
			case OpSelect:
				if in.Cmp.Eval(regs[in.A], regs[in.B]) {
					regs[in.Dst] = regs[in.C]
				} else {
					regs[in.Dst] = regs[in.D]
				}
			case OpLoad:
				regs[in.Dst] = loadMem(m, in.Mem, uint64(regs[in.A]+in.Off))
			case OpLoadX:
				regs[in.Dst] = loadMem(m, in.Mem, uint64(regs[in.A]+regs[in.B]))
			case OpStore:
				m.WriteInt(uint64(regs[in.A]+in.Off), in.Mem.Size(), regs[in.C])
			case OpStoreX:
				m.WriteInt(uint64(regs[in.A]+regs[in.B]), in.Mem.Size(), regs[in.C])
			default:
				return 0, fmt.Errorf("ir: interp: unhandled op %s", in.Op)
			}
		}
		switch b.Term.Kind {
		case TermJump:
			b = b.Term.Then
		case TermCondBr:
			if steps++; steps > maxSteps {
				return 0, ErrInterpLimit
			}
			rhs := b.Term.BImm
			if b.Term.B != NoReg {
				rhs = regs[b.Term.B]
			}
			if b.Term.Cmp.Eval(regs[b.Term.A], rhs) {
				b = b.Term.Then
			} else {
				b = b.Term.Else
			}
		case TermRet:
			if b.Term.A == NoReg {
				return 0, nil
			}
			return regs[b.Term.A], nil
		default:
			return 0, fmt.Errorf("ir: interp: block %s not terminated", b.Name)
		}
	}
}

func loadMem(m *mem.Memory, k MemKind, addr uint64) int64 {
	switch k {
	case MemU8:
		return int64(m.ReadUint(addr, 1))
	case MemU16:
		return int64(m.ReadUint(addr, 2))
	case MemS16:
		return m.ReadInt(addr, 2)
	case MemU32:
		return int64(m.ReadUint(addr, 4))
	case MemS32:
		return m.ReadInt(addr, 4)
	default:
		return m.ReadInt(addr, 8)
	}
}
