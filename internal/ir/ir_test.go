package ir

import (
	"strings"
	"testing"
	"testing/quick"

	"bioperf5/internal/mem"
)

func TestCmpKindEval(t *testing.T) {
	cases := []struct {
		c    CmpKind
		a, b int64
		want bool
	}{
		{CmpEQ, 1, 1, true}, {CmpEQ, 1, 2, false},
		{CmpNE, 1, 2, true}, {CmpNE, 2, 2, false},
		{CmpLT, -1, 0, true}, {CmpLT, 0, 0, false},
		{CmpLE, 0, 0, true}, {CmpLE, 1, 0, false},
		{CmpGT, 3, 2, true}, {CmpGT, 2, 3, false},
		{CmpGE, 2, 2, true}, {CmpGE, 1, 2, false},
	}
	for _, c := range cases {
		if got := c.c.Eval(c.a, c.b); got != c.want {
			t.Errorf("(%d %s %d) = %v, want %v", c.a, c.c, c.b, got, c.want)
		}
	}
}

func TestQuickNegateIsComplement(t *testing.T) {
	f := func(sel uint8, a, b int64) bool {
		c := CmpKind(sel % 6)
		return c.Eval(a, b) == !c.Negate().Eval(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuilderStraightLine(t *testing.T) {
	b := NewBuilder("f", 2)
	x := b.Arg(0)
	y := b.Arg(1)
	sum := b.Add(x, y)
	b.Ret(b.MulI(sum, 3))
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Interp(f, mem.New(), []int64{4, 5}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 27 {
		t.Errorf("f(4,5) = %d, want 27", got)
	}
}

func TestBuilderArith(t *testing.T) {
	b := NewBuilder("f", 2)
	x, y := b.Arg(0), b.Arg(1)
	v := b.Sub(x, y)          // x-y
	v = b.Add(v, b.Div(x, y)) // + x/y
	v = b.Xor(v, b.And(x, y))
	v = b.Or(v, b.Shl(y, b.Const(1)))
	v = b.Add(v, b.Sar(x, b.Const(2)))
	v = b.Add(v, b.Shr(x, b.Const(60)))
	v = b.Add(v, b.Neg(y))
	b.Ret(v)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ref := func(x, y int64) int64 {
		v := x - y
		if y != 0 {
			v += x / y
		}
		v ^= x & y
		v |= y << 1
		v += x >> 2
		v += int64(uint64(x) >> 60)
		v += -y
		return v
	}
	for _, c := range [][2]int64{{100, 7}, {-100, 7}, {5, -3}, {0, 1}, {1 << 62, 3}} {
		got, err := Interp(f, mem.New(), c[:], 1000)
		if err != nil {
			t.Fatal(err)
		}
		if want := ref(c[0], c[1]); got != want {
			t.Errorf("f(%d,%d) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

func TestBuilderIfElse(t *testing.T) {
	b := NewBuilder("absdiff", 2)
	x, y := b.Arg(0), b.Arg(1)
	r := b.Var(b.Const(0))
	b.IfElse(CondOf(CmpGT, x, y),
		func() { b.Assign(r, b.Sub(x, y)) },
		func() { b.Assign(r, b.Sub(y, x)) })
	b.Ret(r)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cases := [][3]int64{{7, 3, 4}, {3, 7, 4}, {5, 5, 0}, {-2, 3, 5}}
	for _, c := range cases {
		got, _ := Interp(f, mem.New(), c[:2], 1000)
		if got != c[2] {
			t.Errorf("absdiff(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestBuilderIfWithoutElse(t *testing.T) {
	b := NewBuilder("clamp0", 1)
	x := b.Arg(0)
	r := b.Var(x)
	b.If(CondOf(CmpLT, r, b.Const(0)), func() {
		b.Assign(r, b.Const(0))
	})
	b.Ret(r)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range [][2]int64{{5, 5}, {-5, 0}, {0, 0}} {
		got, _ := Interp(f, mem.New(), c[:1], 1000)
		if got != c[1] {
			t.Errorf("clamp0(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestBuilderWhileSum(t *testing.T) {
	b := NewBuilder("sum", 1)
	n := b.Arg(0)
	i := b.Var(b.Const(1))
	acc := b.Var(b.Const(0))
	b.While(func() Cond { return CondOf(CmpLE, i, n) }, func() {
		b.Assign(acc, b.Add(acc, i))
		b.Assign(i, b.AddI(i, 1))
	})
	b.Ret(acc)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Interp(f, mem.New(), []int64{10}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 55 {
		t.Errorf("sum(10) = %d, want 55", got)
	}
	if got, _ := Interp(f, mem.New(), []int64{0}, 1000); got != 0 {
		t.Errorf("sum(0) = %d, want 0", got)
	}
}

func TestBuilderForRange(t *testing.T) {
	b := NewBuilder("count", 2)
	lo, hi := b.Arg(0), b.Arg(1)
	acc := b.Var(b.Const(0))
	b.ForRange(lo, hi, 2, func(i Reg) {
		b.Assign(acc, b.AddI(acc, 1))
	})
	b.Ret(acc)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := Interp(f, mem.New(), []int64{0, 10}, 10000)
	if got != 5 {
		t.Errorf("count(0,10,step2) = %d, want 5", got)
	}
}

func TestNestedLoops(t *testing.T) {
	// The DP shape: for i { for j { acc += i*j } }.
	b := NewBuilder("dp", 2)
	m, n := b.Arg(0), b.Arg(1)
	acc := b.Var(b.Const(0))
	b.ForRange(b.Const(0), m, 1, func(i Reg) {
		b.ForRange(b.Const(0), n, 1, func(j Reg) {
			b.Assign(acc, b.Add(acc, b.Mul(i, j)))
		})
	})
	b.Ret(acc)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Interp(f, mem.New(), []int64{4, 5}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := int64(0); i < 4; i++ {
		for j := int64(0); j < 5; j++ {
			want += i * j
		}
	}
	if got != want {
		t.Errorf("dp(4,5) = %d, want %d", got, want)
	}
}

func TestMaxAndSelect(t *testing.T) {
	b := NewBuilder("f", 2)
	x, y := b.Arg(0), b.Arg(1)
	mx := b.Max(x, y)
	mn := b.Select(CmpLT, x, y, x, y)
	b.Ret(b.Sub(mx, mn)) // |x-y|
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// int32-range inputs keep |x-y| free of int64 overflow, where
	// max-min and x-y would wrap differently.
	chk := func(x32, y32 int32) bool {
		x, y := int64(x32), int64(y32)
		got, err := Interp(f, mem.New(), []int64{x, y}, 1000)
		want := x - y
		if want < 0 {
			want = -want
		}
		return err == nil && got == want
	}
	if err := quick.Check(chk, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryOps(t *testing.T) {
	m := mem.New()
	m.WriteInt(100, 4, -7)          // s32
	m.WriteUint(104, 4, 0xFFFFFFF9) // u32 view of -7
	m.WriteInt(108, 2, -3)          // s16
	m.StoreByte(110, 250)

	b := NewBuilder("f", 1)
	base := b.Arg(0)
	s32 := b.Load(MemS32, base, 0, true)
	u32 := b.Load(MemU32, base, 4, true)
	s16 := b.Load(MemS16, base, 8, true)
	u8 := b.Load(MemU8, base, 10, true)
	sum := b.Add(b.Add(s32, u32), b.Add(s16, u8))
	b.Store(Mem64, base, 16, sum)
	out := b.Load(Mem64, base, 16, true)
	b.Ret(out)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Interp(f, m, []int64{100}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(-7) + 0xFFFFFFF9 + -3 + 250
	if got != want {
		t.Errorf("got %d, want %d", got, want)
	}
}

func TestIndexedMemoryOps(t *testing.T) {
	m := mem.New()
	b := NewBuilder("f", 2)
	base, idx := b.Arg(0), b.Arg(1)
	b.StoreX(MemU16, base, idx, b.Const(513))
	v := b.LoadX(MemU16, base, idx, true)
	b.Ret(v)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Interp(f, m, []int64{0x400, 6}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 513 {
		t.Errorf("got %d, want 513", got)
	}
	if m.ReadUint(0x406, 2) != 513 {
		t.Error("store went to the wrong address")
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	f := &Func{Name: "bad"}
	f.NewBlock("entry")
	if err := f.Verify(); err == nil {
		t.Error("unterminated block verified")
	}
}

func TestVerifyCatchesBadReg(t *testing.T) {
	b := NewBuilder("bad", 0)
	blk := b.Block()
	blk.Instrs = append(blk.Instrs, Instr{Op: OpCopy, Dst: 0, A: 999})
	b.Ret(NoReg)
	if _, err := b.Finish(); err == nil {
		t.Error("out-of-range register verified")
	}
}

func TestVerifyCatchesBadArg(t *testing.T) {
	b := NewBuilder("bad", 1)
	b.Ret(b.Arg(3))
	if _, err := b.Finish(); err == nil {
		t.Error("out-of-range argument verified")
	}
}

func TestVerifyCatchesMissingMemKind(t *testing.T) {
	b := NewBuilder("bad", 1)
	x := b.Arg(0)
	blk := b.Block()
	blk.Instrs = append(blk.Instrs, Instr{Op: OpLoad, Dst: b.F.NewReg(), A: x})
	b.Ret(x)
	if _, err := b.Finish(); err == nil {
		t.Error("load without MemKind verified")
	}
}

func TestInterpStepLimit(t *testing.T) {
	b := NewBuilder("spin", 0)
	one := b.Const(1)
	b.While(func() Cond { return CondOf(CmpEQ, one, one) }, func() {})
	b.Ret(one)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Interp(f, mem.New(), nil, 1000); err != ErrInterpLimit {
		t.Errorf("err = %v, want ErrInterpLimit", err)
	}
}

func TestInterpArgMismatch(t *testing.T) {
	b := NewBuilder("f", 2)
	b.Ret(b.Arg(0))
	f, _ := b.Finish()
	if _, err := Interp(f, mem.New(), []int64{1}, 100); err == nil {
		t.Error("argument-count mismatch accepted")
	}
}

func TestStringRendering(t *testing.T) {
	b := NewBuilder("show", 1)
	x := b.Arg(0)
	v := b.Var(b.Const(3))
	b.IfElse(CondOf(CmpGT, x, v),
		func() { b.Assign(v, b.Max(x, v)) },
		func() { b.Assign(v, b.Select(CmpLT, x, v, x, v)) })
	st := b.Load(MemS32, x, 4, true)
	b.Store(MemU8, x, 0, st)
	b.Ret(v)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	text := f.String()
	for _, want := range []string{"func show", "select", "max", "load.s32", "store.u8", "ret", "if "} {
		if !strings.Contains(text, want) {
			t.Errorf("IR dump missing %q:\n%s", want, text)
		}
	}
}

func TestPreds(t *testing.T) {
	b := NewBuilder("p", 1)
	x := b.Arg(0)
	b.If(CondOf(CmpGT, x, b.Const(0)), func() {})
	b.Ret(x)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	preds := f.Preds()
	// join block ("if.end") must have two predecessors: entry and then.
	var join *Block
	for _, blk := range f.Blocks {
		if blk.Name == "if.end" {
			join = blk
		}
	}
	if join == nil {
		t.Fatal("no join block")
	}
	if len(preds[join]) != 2 {
		t.Errorf("join preds = %d, want 2", len(preds[join]))
	}
}

func TestMemKindSizes(t *testing.T) {
	cases := map[MemKind]int{MemU8: 1, MemU16: 2, MemS16: 2, MemU32: 4, MemS32: 4, Mem64: 8, MemNone: 0}
	for k, want := range cases {
		if got := k.Size(); got != want {
			t.Errorf("%s.Size() = %d, want %d", k, got, want)
		}
	}
}
