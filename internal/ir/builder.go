package ir

// Builder provides structured construction of IR functions: straight-
// line emission plus If/IfElse/While combinators that create the block
// graph.  Mutable variables (loop carried values, running maxima) are
// ordinary virtual registers written with Assign.
type Builder struct {
	F     *Func
	cur   *Block
	depth int // current loop-nesting depth, stamped onto new blocks
}

// NewBuilder starts a function with nargs integer arguments and an
// open entry block.
func NewBuilder(name string, nargs int) *Builder {
	f := &Func{Name: name, NArgs: nargs}
	entry := f.NewBlock("entry")
	return &Builder{F: f, cur: entry}
}

// Block returns the block currently being appended to.
func (b *Builder) Block() *Block { return b.cur }

func (b *Builder) emit(in Instr) Reg {
	if in.Dst == NoReg && !in.HasSideEffects() {
		in.Dst = b.F.NewReg()
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
	return in.Dst
}

// Const materializes a constant.
func (b *Builder) Const(v int64) Reg {
	return b.emit(Instr{Op: OpConst, Dst: NoReg, Imm: v})
}

// Arg reads incoming argument i.
func (b *Builder) Arg(i int) Reg {
	return b.emit(Instr{Op: OpArg, Dst: NoReg, Imm: int64(i)})
}

// Var introduces a mutable variable initialized to init.
func (b *Builder) Var(init Reg) Reg {
	return b.emit(Instr{Op: OpCopy, Dst: NoReg, A: init})
}

// Assign writes src into the existing variable dst.
func (b *Builder) Assign(dst, src Reg) {
	b.emit(Instr{Op: OpCopy, Dst: dst, A: src})
}

func (b *Builder) bin(op Op, x, y Reg) Reg {
	return b.emit(Instr{Op: op, Dst: NoReg, A: x, B: y})
}

// Add emits x + y.
func (b *Builder) Add(x, y Reg) Reg { return b.bin(OpAdd, x, y) }

// Sub emits x - y.
func (b *Builder) Sub(x, y Reg) Reg { return b.bin(OpSub, x, y) }

// Mul emits x * y.
func (b *Builder) Mul(x, y Reg) Reg { return b.bin(OpMul, x, y) }

// Div emits the signed quotient x / y.
func (b *Builder) Div(x, y Reg) Reg { return b.bin(OpDiv, x, y) }

// And emits x & y.
func (b *Builder) And(x, y Reg) Reg { return b.bin(OpAnd, x, y) }

// Or emits x | y.
func (b *Builder) Or(x, y Reg) Reg { return b.bin(OpOr, x, y) }

// Xor emits x ^ y.
func (b *Builder) Xor(x, y Reg) Reg { return b.bin(OpXor, x, y) }

// Shl emits x << y.
func (b *Builder) Shl(x, y Reg) Reg { return b.bin(OpShl, x, y) }

// Shr emits the logical shift x >> y.
func (b *Builder) Shr(x, y Reg) Reg { return b.bin(OpShr, x, y) }

// Sar emits the arithmetic shift x >> y.
func (b *Builder) Sar(x, y Reg) Reg { return b.bin(OpSar, x, y) }

// Neg emits -x.
func (b *Builder) Neg(x Reg) Reg {
	return b.emit(Instr{Op: OpNeg, Dst: NoReg, A: x})
}

// AddI emits x + constant.
func (b *Builder) AddI(x Reg, v int64) Reg { return b.Add(x, b.Const(v)) }

// SubI emits x - constant.
func (b *Builder) SubI(x Reg, v int64) Reg { return b.Sub(x, b.Const(v)) }

// MulI emits x * constant.
func (b *Builder) MulI(x Reg, v int64) Reg { return b.Mul(x, b.Const(v)) }

// Max emits the paper's max operation directly (the hand-inserted form).
func (b *Builder) Max(x, y Reg) Reg { return b.bin(OpMax, x, y) }

// Select emits dst = (x cmp y) ? t : e.
func (b *Builder) Select(cmp CmpKind, x, y, t, e Reg) Reg {
	return b.emit(Instr{Op: OpSelect, Dst: NoReg, Cmp: cmp, A: x, B: y, C: t, D: e})
}

// Load emits a displacement-form load.  The safe flag asserts the full
// speculation proof (non-faulting and unaliased); kernels model loads a
// compiler could not prove speculatable by passing false.  Tests that
// need the two proofs split apart clear Safe or NoAlias on the emitted
// instruction directly.
func (b *Builder) Load(kind MemKind, base Reg, off int64, safe bool) Reg {
	return b.emit(Instr{Op: OpLoad, Dst: NoReg, A: base, Off: off, Mem: kind, Safe: safe, NoAlias: safe})
}

// LoadX emits an indexed load; safe as for Load.
func (b *Builder) LoadX(kind MemKind, base, idx Reg, safe bool) Reg {
	return b.emit(Instr{Op: OpLoadX, Dst: NoReg, A: base, B: idx, Mem: kind, Safe: safe, NoAlias: safe})
}

// Store emits a displacement-form store.
func (b *Builder) Store(kind MemKind, base Reg, off int64, val Reg) {
	b.emit(Instr{Op: OpStore, Dst: NoReg, A: base, Off: off, C: val, Mem: kind})
}

// StoreX emits an indexed store.
func (b *Builder) StoreX(kind MemKind, base, idx, val Reg) {
	b.emit(Instr{Op: OpStoreX, Dst: NoReg, A: base, B: idx, C: val, Mem: kind})
}

// Cond is a comparison used by control-flow combinators.
type Cond struct {
	Cmp  CmpKind
	A, B Reg
}

// CondOf builds a Cond value.
func CondOf(cmp CmpKind, a, b Reg) Cond { return Cond{Cmp: cmp, A: a, B: b} }

// If emits: if (cond) { then() }.
func (b *Builder) If(c Cond, then func()) {
	b.IfElse(c, then, nil)
}

// IfElse emits a two-armed conditional.  Either arm may be nil.
func (b *Builder) IfElse(c Cond, then, els func()) {
	thenB := b.newBlock("if.then")
	join := b.newBlock("if.end")
	elseB := join
	if els != nil {
		elseB = b.newBlock("if.else")
	}
	b.cur.Term = Term{Kind: TermCondBr, Cmp: c.Cmp, A: c.A, B: c.B, Then: thenB, Else: elseB}

	b.cur = thenB
	if then != nil {
		then()
	}
	if b.cur.Term.Kind == TermNone {
		b.cur.Term = Term{Kind: TermJump, Then: join}
	}
	if els != nil {
		b.cur = elseB
		els()
		if b.cur.Term.Kind == TermNone {
			b.cur.Term = Term{Kind: TermJump, Then: join}
		}
	}
	b.cur = join
}

// While emits: while (head()) { body() }.  The head callback runs in
// the loop-header block and returns the continuation condition; any
// instructions it emits are re-evaluated every iteration.
func (b *Builder) While(head func() Cond, body func()) {
	b.depth++
	headB := b.newBlock("while.head")
	b.cur.Term = Term{Kind: TermJump, Then: headB}
	b.cur = headB
	c := head()
	bodyB := b.newBlock("while.body")
	b.depth--
	exitB := b.newBlock("while.end")
	b.depth++
	// head() may itself have created control flow; terminate whatever
	// block we are now in.
	b.cur.Term = Term{Kind: TermCondBr, Cmp: c.Cmp, A: c.A, B: c.B, Then: bodyB, Else: exitB}
	b.cur = bodyB
	body()
	if b.cur.Term.Kind == TermNone {
		b.cur.Term = Term{Kind: TermJump, Then: headB}
	}
	b.depth--
	b.cur = exitB
}

// newBlock appends a block stamped with the current loop depth.
func (b *Builder) newBlock(name string) *Block {
	blk := b.F.NewBlock(name)
	blk.Depth = b.depth
	return blk
}

// ForRange emits: for i := lo; i < hi; i += step { body(i) } and
// returns after the loop.  i is a fresh variable.
func (b *Builder) ForRange(lo, hi Reg, step int64, body func(i Reg)) {
	i := b.Var(lo)
	b.While(func() Cond {
		return CondOf(CmpLT, i, hi)
	}, func() {
		body(i)
		b.Assign(i, b.AddI(i, step))
	})
}

// Ret terminates the function returning v (NoReg for void).
func (b *Builder) Ret(v Reg) {
	b.cur.Term = Term{Kind: TermRet, A: v}
}

// Finish verifies and returns the built function.
func (b *Builder) Finish() (*Func, error) {
	if err := b.F.Verify(); err != nil {
		return nil, err
	}
	return b.F, nil
}
