// Package ir defines the small intermediate representation the kernel
// compiler works on.  The four BioPerf dynamic-programming kernels are
// expressed in this IR (package kernels), optimized (package compiler:
// if-conversion, dead-code elimination), register-allocated and lowered
// to the PPC-subset of package isa.
//
// The IR is deliberately non-SSA: virtual registers are mutable, which
// keeps hammock if-conversion — the transformation the paper's modified
// gcc performs — a local rewrite.  Control flow is a graph of basic
// blocks ending in explicit terminators.
package ir

import "fmt"

// Reg is a virtual register.  NoReg marks an unused operand.
type Reg int32

// NoReg is the absent-operand sentinel.
const NoReg Reg = -1

// String renders the virtual register as %n.
func (r Reg) String() string {
	if r == NoReg {
		return "%-"
	}
	return fmt.Sprintf("%%%d", int32(r))
}

// Op enumerates IR operations.
type Op uint8

// IR operations.
const (
	OpInvalid Op = iota

	OpConst // dst = Imm
	OpArg   // dst = incoming argument #Imm
	OpCopy  // dst = a

	OpAdd // dst = a + b
	OpSub // dst = a - b
	OpMul // dst = a * b
	OpDiv // dst = a / b (signed)
	OpAnd // dst = a & b
	OpOr  // dst = a | b
	OpXor // dst = a ^ b
	OpShl // dst = a << b
	OpShr // dst = a >> b (logical)
	OpSar // dst = a >> b (arithmetic)
	OpNeg // dst = -a

	OpMax    // dst = max(a, b) — the paper's hand-inserted max
	OpSelect // dst = (a Cmp b) ? c : d — lowers to cmp+isel or branches

	// Immediate forms, produced by the constant-folding pass; they map
	// onto the PPC D-form instructions (addi, mulli, andi, ...).
	OpAddImm // dst = a + Imm
	OpMulImm // dst = a * Imm
	OpAndImm // dst = a & Imm
	OpOrImm  // dst = a | Imm
	OpXorImm // dst = a ^ Imm
	OpShlImm // dst = a << Imm
	OpShrImm // dst = a >> Imm (logical)
	OpSarImm // dst = a >> Imm (arithmetic)

	OpLoad   // dst = mem[a + Off]   (width/sign in Mem; a=base)
	OpLoadX  // dst = mem[a + b]     (indexed)
	OpStore  // mem[a + Off] = c     (c in the C operand slot)
	OpStoreX // mem[a + b] = c

	NumOps // number of IR operations
)

var opNames = [NumOps]string{
	OpInvalid: "invalid",
	OpConst:   "const",
	OpArg:     "arg",
	OpCopy:    "copy",
	OpAdd:     "add",
	OpSub:     "sub",
	OpMul:     "mul",
	OpDiv:     "div",
	OpAnd:     "and",
	OpOr:      "or",
	OpXor:     "xor",
	OpShl:     "shl",
	OpShr:     "shr",
	OpSar:     "sar",
	OpNeg:     "neg",
	OpMax:     "max",
	OpSelect:  "select",
	OpAddImm:  "addi",
	OpMulImm:  "muli",
	OpAndImm:  "andi",
	OpOrImm:   "ori",
	OpXorImm:  "xori",
	OpShlImm:  "shli",
	OpShrImm:  "shri",
	OpSarImm:  "sari",
	OpLoad:    "load",
	OpLoadX:   "loadx",
	OpStore:   "store",
	OpStoreX:  "storex",
}

// String names the op.
func (o Op) String() string {
	if o >= NumOps {
		return "op?"
	}
	return opNames[o]
}

// MemKind is the width and signedness of a memory access.
type MemKind uint8

// Memory access kinds.
const (
	MemNone MemKind = iota
	MemU8           // zero-extended byte
	MemU16          // zero-extended halfword
	MemS16          // sign-extended halfword
	MemU32          // zero-extended word
	MemS32          // sign-extended word
	Mem64           // doubleword
)

// Size returns the access width in bytes.
func (m MemKind) Size() int {
	switch m {
	case MemU8:
		return 1
	case MemU16, MemS16:
		return 2
	case MemU32, MemS32:
		return 4
	case Mem64:
		return 8
	}
	return 0
}

// String names the kind.
func (m MemKind) String() string {
	switch m {
	case MemU8:
		return "u8"
	case MemU16:
		return "u16"
	case MemS16:
		return "s16"
	case MemU32:
		return "u32"
	case MemS32:
		return "s32"
	case Mem64:
		return "i64"
	}
	return "mem?"
}

// CmpKind is a signed comparison predicate.
type CmpKind uint8

// Comparison predicates.
const (
	CmpEQ CmpKind = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// String renders the predicate symbol.
func (c CmpKind) String() string {
	switch c {
	case CmpEQ:
		return "=="
	case CmpNE:
		return "!="
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	}
	return "?"
}

// Negate returns the complementary predicate.
func (c CmpKind) Negate() CmpKind {
	switch c {
	case CmpEQ:
		return CmpNE
	case CmpNE:
		return CmpEQ
	case CmpLT:
		return CmpGE
	case CmpLE:
		return CmpGT
	case CmpGT:
		return CmpLE
	}
	return CmpLT // CmpGE
}

// Eval applies the predicate to two signed values.
func (c CmpKind) Eval(a, b int64) bool {
	switch c {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	}
	return a >= b
}

// Instr is one IR instruction.
type Instr struct {
	Op  Op
	Dst Reg // result (NoReg for stores)
	A   Reg // first operand / load-store base
	B   Reg // second operand / index
	C   Reg // select "then" value / store value
	D   Reg // select "else" value
	Cmp CmpKind
	Imm int64   // constant / argument index
	Mem MemKind // load/store width
	Off int64   // load/store displacement

	// Safe marks a load the front end can prove non-faulting (in
	// bounds for the whole loop).  The if-converter may speculate only
	// safe loads — the legality rule the paper's gcc must obey, and the
	// reason compiler-converted Hmmer/Clustalw lag hand-inserted code.
	Safe bool

	// NoAlias marks a load known not to alias any store in its hammock
	// (the "memory aliasing can preclude generating max instructions"
	// restriction of Section IV-B).
	NoAlias bool
}

// uses appends the virtual registers read by the instruction.
func (in *Instr) Uses(dst []Reg) []Reg {
	appendIf := func(r Reg) {
		if r != NoReg {
			dst = append(dst, r)
		}
	}
	switch in.Op {
	case OpConst, OpArg:
	case OpCopy, OpNeg, OpAddImm, OpMulImm, OpAndImm, OpOrImm,
		OpXorImm, OpShlImm, OpShrImm, OpSarImm:
		appendIf(in.A)
	case OpLoad:
		appendIf(in.A)
	case OpLoadX:
		appendIf(in.A)
		appendIf(in.B)
	case OpStore:
		appendIf(in.A)
		appendIf(in.C)
	case OpStoreX:
		appendIf(in.A)
		appendIf(in.B)
		appendIf(in.C)
	case OpSelect:
		appendIf(in.A)
		appendIf(in.B)
		appendIf(in.C)
		appendIf(in.D)
	default:
		appendIf(in.A)
		appendIf(in.B)
	}
	return dst
}

// HasSideEffects reports whether the instruction writes memory.
func (in *Instr) HasSideEffects() bool {
	return in.Op == OpStore || in.Op == OpStoreX
}

// IsLoad reports whether the instruction reads memory.
func (in *Instr) IsLoad() bool { return in.Op == OpLoad || in.Op == OpLoadX }

// String renders the instruction.
func (in *Instr) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("%s = const %d", in.Dst, in.Imm)
	case OpArg:
		return fmt.Sprintf("%s = arg %d", in.Dst, in.Imm)
	case OpCopy:
		return fmt.Sprintf("%s = %s", in.Dst, in.A)
	case OpNeg:
		return fmt.Sprintf("%s = neg %s", in.Dst, in.A)
	case OpSelect:
		return fmt.Sprintf("%s = select(%s %s %s, %s, %s)",
			in.Dst, in.A, in.Cmp, in.B, in.C, in.D)
	case OpLoad:
		return fmt.Sprintf("%s = load.%s %d(%s) safe=%v", in.Dst, in.Mem, in.Off, in.A, in.Safe)
	case OpLoadX:
		return fmt.Sprintf("%s = load.%s (%s+%s) safe=%v", in.Dst, in.Mem, in.A, in.B, in.Safe)
	case OpStore:
		return fmt.Sprintf("store.%s %d(%s) = %s", in.Mem, in.Off, in.A, in.C)
	case OpStoreX:
		return fmt.Sprintf("store.%s (%s+%s) = %s", in.Mem, in.A, in.B, in.C)
	default:
		return fmt.Sprintf("%s = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	}
}

// TermKind discriminates block terminators.
type TermKind uint8

// Terminator kinds.
const (
	TermNone TermKind = iota
	TermJump
	TermCondBr
	TermRet
)

// Term is a block terminator.
type Term struct {
	Kind TermKind
	Cmp  CmpKind // TermCondBr: predicate
	A, B Reg     // TermCondBr: operands; TermRet: A is the return value (or NoReg)
	// BImm is the immediate right-hand side when B is NoReg (produced
	// by the constant-folding pass; lowers to cmpdi).
	BImm int64
	Then *Block // TermCondBr taken target / TermJump target
	Else *Block // TermCondBr fall-through target
}

// Block is a basic block.
type Block struct {
	ID     int
	Name   string
	Instrs []Instr
	Term   Term
	// Depth is the loop-nesting depth the builder recorded; the
	// register allocator uses it to keep inner-loop values in
	// registers when spilling is unavoidable.
	Depth int
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	switch b.Term.Kind {
	case TermJump:
		return []*Block{b.Term.Then}
	case TermCondBr:
		return []*Block{b.Term.Then, b.Term.Else}
	}
	return nil
}

// Func is one IR function.
type Func struct {
	Name    string
	NArgs   int
	Blocks  []*Block
	regHint int32
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := Reg(f.regHint)
	f.regHint++
	return r
}

// NumRegs returns the number of virtual registers allocated so far.
func (f *Func) NumRegs() int { return int(f.regHint) }

// NewBlock appends a fresh empty block.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{ID: len(f.Blocks), Name: name}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Preds computes the predecessor lists of all blocks.
func (f *Func) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// String renders the function as readable IR text.
func (f *Func) String() string {
	s := fmt.Sprintf("func %s(%d args):\n", f.Name, f.NArgs)
	for _, b := range f.Blocks {
		s += fmt.Sprintf("%s (b%d):\n", b.Name, b.ID)
		for i := range b.Instrs {
			s += "  " + b.Instrs[i].String() + "\n"
		}
		switch b.Term.Kind {
		case TermJump:
			s += fmt.Sprintf("  jump b%d\n", b.Term.Then.ID)
		case TermCondBr:
			s += fmt.Sprintf("  if %s %s %s -> b%d else b%d\n",
				b.Term.A, b.Term.Cmp, b.Term.B, b.Term.Then.ID, b.Term.Else.ID)
		case TermRet:
			if b.Term.A == NoReg {
				s += "  ret\n"
			} else {
				s += fmt.Sprintf("  ret %s\n", b.Term.A)
			}
		default:
			s += "  <no terminator>\n"
		}
	}
	return s
}

// Verify checks structural invariants: every block terminated, operands
// in range, terminator targets within the function.
func (f *Func) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: %s: no blocks", f.Name)
	}
	inFunc := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	checkReg := func(b *Block, r Reg, what string) error {
		if r != NoReg && (int32(r) < 0 || int32(r) >= f.regHint) {
			return fmt.Errorf("ir: %s/%s: %s register %d out of range", f.Name, b.Name, what, r)
		}
		return nil
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == OpInvalid || in.Op >= NumOps {
				return fmt.Errorf("ir: %s/%s: invalid op", f.Name, b.Name)
			}
			for _, u := range in.Uses(nil) {
				if err := checkReg(b, u, "use"); err != nil {
					return err
				}
			}
			if !in.HasSideEffects() {
				if in.Dst == NoReg {
					return fmt.Errorf("ir: %s/%s: %s lacks a destination", f.Name, b.Name, in)
				}
				if err := checkReg(b, in.Dst, "dst"); err != nil {
					return err
				}
			}
			if (in.IsLoad() || in.HasSideEffects()) && in.Mem == MemNone {
				return fmt.Errorf("ir: %s/%s: %s lacks a memory kind", f.Name, b.Name, in)
			}
			if in.Op == OpArg && (in.Imm < 0 || int(in.Imm) >= f.NArgs) {
				return fmt.Errorf("ir: %s: arg %d out of range (%d args)", f.Name, in.Imm, f.NArgs)
			}
		}
		switch b.Term.Kind {
		case TermNone:
			return fmt.Errorf("ir: %s/%s: missing terminator", f.Name, b.Name)
		case TermJump:
			if !inFunc[b.Term.Then] {
				return fmt.Errorf("ir: %s/%s: jump to foreign block", f.Name, b.Name)
			}
		case TermCondBr:
			if !inFunc[b.Term.Then] || !inFunc[b.Term.Else] {
				return fmt.Errorf("ir: %s/%s: branch to foreign block", f.Name, b.Name)
			}
			if b.Term.A == NoReg {
				return fmt.Errorf("ir: %s/%s: branch without left operand", f.Name, b.Name)
			}
			if err := checkReg(b, b.Term.A, "cond"); err != nil {
				return err
			}
			if err := checkReg(b, b.Term.B, "cond"); err != nil {
				return err
			}
		case TermRet:
			if b.Term.A != NoReg {
				if err := checkReg(b, b.Term.A, "ret"); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
