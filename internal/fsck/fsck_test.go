// The fsck suite damages real engine state — cache entries written by
// a live scheduler, trace files in the durable format, fsync'd
// journals — in every way the fault injector can, then checks that the
// scrubber finds all of it, quarantines without deleting, repairs what
// is repairable, and that a subsequent resume recomputes exactly the
// quarantined cells.
package fsck_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bioperf5/internal/cpu"
	"bioperf5/internal/fsck"
	"bioperf5/internal/kernels"
	"bioperf5/internal/sched"
	"bioperf5/internal/telemetry"
	"bioperf5/internal/trace"
)

// seedState runs n real cells through an engine backed by dir (cache +
// traces) and a journal, then closes everything so the tree is at rest.
func seedState(t *testing.T, dir string, n int) {
	t.Helper()
	journal, err := sched.OpenJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()
	eng := sched.New(sched.Options{Workers: 2, CacheDir: dir, Journal: journal})
	defer eng.Close()
	for i := 0; i < n; i++ {
		_, err := eng.Run(context.Background(), sched.Job{
			App: "Fasta", Variant: kernels.Branchy, CPU: cpu.POWER5Baseline(),
			Seed: int64(i + 1), Scale: 1,
		})
		if err != nil {
			t.Fatalf("seed cell %d: %v", i, err)
		}
	}
}

// cacheEntries globs the content-addressed result files under dir.
func cacheEntries(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no cache entries under %s (err=%v)", dir, err)
	}
	return paths
}

// truncateHalf applies the exact damage the injector's mangle does.
func truncateHalf(t *testing.T, path string) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
}

// writeTrace builds a real encoded trace answering (seed) and writes it
// at its content address under dir, returning the path.
func writeTrace(t *testing.T, dir string, seed int64) string {
	t.Helper()
	var b trace.Builder
	for pc := 0; pc < 64; pc++ {
		b.Add(trace.Record{PC: pc, HasEA: true, EA: uint64(pc * 64)})
	}
	tr := b.Finish(trace.Meta{App: "Fasta", Variant: "original", Seed: seed,
		Scale: 1, ProgHash: "abc"})
	enc, err := tr.EncodeFile()
	if err != nil {
		t.Fatal(err)
	}
	hash := trace.KeyFromMeta(tr.Meta).Hash()
	path := filepath.Join(dir, hash+".trace")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runFsck(t *testing.T, dirs ...string) *fsck.Report {
	t.Helper()
	rep, err := fsck.Run(fsck.Options{Dirs: dirs})
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	return rep
}

func findKind(rep *fsck.Report, kind string) *fsck.Finding {
	for i := range rep.Findings {
		if rep.Findings[i].Kind == kind {
			return &rep.Findings[i]
		}
	}
	return nil
}

func TestFsckCleanTreeFindsNothing(t *testing.T) {
	dir := t.TempDir()
	seedState(t, dir, 2)
	rep := runFsck(t, dir)
	if rep.Damaged != 0 || rep.Quarantined != 0 || rep.Repaired != 0 {
		t.Fatalf("clean tree reported damage: %+v", rep)
	}
	if rep.Scanned == 0 || rep.OK != rep.Scanned {
		t.Fatalf("scanned %d, ok %d; want everything scanned ok", rep.Scanned, rep.OK)
	}
}

func TestFsckQuarantinesTruncatedCacheEntry(t *testing.T) {
	dir := t.TempDir()
	seedState(t, dir, 2)
	victim := cacheEntries(t, dir)[0]
	truncateHalf(t, victim)
	rep := runFsck(t, dir)
	f := findKind(rep, fsck.KindCacheCorrupt)
	if f == nil || f.Path != victim {
		t.Fatalf("no cache-entry-corrupt finding for %s: %+v", victim, rep)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Errorf("corrupt entry still at its address: %v", err)
	}
	if _, err := os.Stat(f.QuarantinedTo); err != nil {
		t.Errorf("quarantined copy missing: %v", err)
	}
	if !strings.Contains(f.QuarantinedTo, fsck.QuarantineDirName) {
		t.Errorf("quarantined to %s, want under %s/", f.QuarantinedTo, fsck.QuarantineDirName)
	}
}

func TestFsckQuarantinesWrongAddressEntry(t *testing.T) {
	dir := t.TempDir()
	seedState(t, dir, 2)
	entries := cacheEntries(t, dir)
	// A perfectly valid entry filed under another entry's address: the
	// kind of damage a buggy sync tool or a collision would produce.
	b, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[1], b, 0o644); err != nil {
		t.Fatal(err)
	}
	rep := runFsck(t, dir)
	f := findKind(rep, fsck.KindCacheCorrupt)
	if f == nil || f.Path != entries[1] {
		t.Fatalf("misfiled entry not caught: %+v", rep)
	}
}

func TestFsckQuarantinesTornTrace(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, 1)
	truncateHalf(t, path)
	rep := runFsck(t, dir)
	f := findKind(rep, fsck.KindTraceCorrupt)
	if f == nil || f.Path != path {
		t.Fatalf("torn trace not caught: %+v", rep)
	}
	if _, err := os.Stat(f.QuarantinedTo); err != nil {
		t.Errorf("quarantined copy missing: %v", err)
	}
}

func TestFsckQuarantinesTraceAtWrongAddress(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, 1)
	// Re-file the (internally valid) trace under a different hex stem.
	wrong := filepath.Join(dir, strings.Repeat("ab", 32)+".trace")
	if err := os.Rename(path, wrong); err != nil {
		t.Fatal(err)
	}
	rep := runFsck(t, dir)
	f := findKind(rep, fsck.KindTraceKeyMismatch)
	if f == nil || f.Path != wrong {
		t.Fatalf("misfiled trace not caught: %+v", rep)
	}
}

func TestFsckRepairsTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	content := `{"hash":"aaa","status":"ok"}` + "\n" +
		`{"hash":"bbb","status":"ok"}` + "\n" +
		`{"hash":"cc` // torn mid-record, no newline
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := runFsck(t, dir)
	f := findKind(rep, fsck.KindJournalTornTail)
	if f == nil || !f.Repaired {
		t.Fatalf("torn tail not repaired: %+v", rep)
	}
	if _, err := os.Stat(f.QuarantinedTo); err != nil {
		t.Errorf("original journal bytes not preserved: %v", err)
	}
	j, err := sched.OpenJournal(path)
	if err != nil {
		t.Fatalf("repaired journal does not open: %v", err)
	}
	defer j.Close()
	if j.Len() != 2 || !j.Done("aaa") || !j.Done("bbb") {
		t.Errorf("repaired journal lost records: len=%d", j.Len())
	}
	b, _ := os.ReadFile(path)
	if len(b) == 0 || b[len(b)-1] != '\n' {
		t.Error("repaired journal does not end in a newline")
	}
}

func TestFsckDropsCorruptInteriorJournalLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	content := `{"hash":"aaa","status":"ok"}` + "\n" +
		"\x00\x01garbage{{{" + "\n" +
		`{"hash":"bbb","status":"ok"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := runFsck(t, dir)
	f := findKind(rep, fsck.KindJournalBadLine)
	if f == nil || !f.Repaired || f.QuarantinedTo == "" {
		t.Fatalf("corrupt interior line not handled: %+v", rep)
	}
	j, err := sched.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 2 {
		t.Errorf("repaired journal has %d records, want 2", j.Len())
	}
}

func TestFsckRestoresMissingFinalNewline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	// A complete, valid record that lost only its terminator: nothing
	// to quarantine, just the newline to restore.
	if err := os.WriteFile(path, []byte(`{"hash":"aaa","status":"ok"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := runFsck(t, dir)
	if rep.Repaired != 1 || rep.Quarantined != 0 {
		t.Fatalf("repaired=%d quarantined=%d, want 1/0: %+v", rep.Repaired, rep.Quarantined, rep)
	}
	b, err := os.ReadFile(path)
	if err != nil || len(b) == 0 || b[len(b)-1] != '\n' {
		t.Errorf("newline not restored: %q (%v)", b, err)
	}
}

func TestFsckQuarantinesStaleTemp(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, strings.Repeat("ab", 32)+".tmp12345")
	if err := os.WriteFile(stale, []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := runFsck(t, dir)
	f := findKind(rep, fsck.KindStaleTemp)
	if f == nil || f.Path != stale {
		t.Fatalf("stale temp not caught: %+v", rep)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp still present")
	}
}

func TestFsckIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	seedState(t, dir, 2)
	truncateHalf(t, cacheEntries(t, dir)[0])
	first := runFsck(t, dir)
	if first.Damaged == 0 {
		t.Fatal("first pass found nothing")
	}
	second := runFsck(t, dir)
	if second.Damaged != 0 || second.Quarantined != 0 || second.Repaired != 0 {
		t.Fatalf("second pass re-reported damage (quarantine rescanned?): %+v", second)
	}
}

func TestFsckPublishesCounters(t *testing.T) {
	dir := t.TempDir()
	seedState(t, dir, 2)
	truncateHalf(t, cacheEntries(t, dir)[0])
	reg := telemetry.NewRegistry()
	if _, err := fsck.Run(fsck.Options{Dirs: []string{dir}, Registry: reg}); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("fsck.scanned").Value(); v == 0 {
		t.Error("fsck.scanned not published")
	}
	if v := reg.Counter("fsck.corrupt").Value(); v != 1 {
		t.Errorf("fsck.corrupt = %d, want 1", v)
	}
	if v := reg.Counter("fsck.quarantined").Value(); v != 1 {
		t.Errorf("fsck.quarantined = %d, want 1", v)
	}
}

func TestFsckErrors(t *testing.T) {
	if _, err := fsck.Run(fsck.Options{}); err == nil {
		t.Error("no dirs accepted")
	}
	if _, err := fsck.Run(fsck.Options{Dirs: []string{"/no/such/dir/bioperf5"}}); err == nil {
		t.Error("missing dir accepted")
	}
}

// TestFsckThenResumeRecomputesOnlyQuarantined is the scrubber's
// acceptance test: damage some cells of a finished sweep, fsck, then
// resume against the same directory — the engine must recompute
// exactly the quarantined cells and serve the rest from cache+journal.
func TestFsckThenResumeRecomputesOnlyQuarantined(t *testing.T) {
	dir := t.TempDir()
	const cells = 4
	seedState(t, dir, cells)
	entries := cacheEntries(t, dir)
	if len(entries) != cells {
		t.Fatalf("seeded %d entries, want %d", len(entries), cells)
	}
	truncateHalf(t, entries[0])
	truncateHalf(t, entries[2])

	rep := runFsck(t, dir)
	if rep.Quarantined != 2 || rep.Damaged != 2 {
		t.Fatalf("fsck quarantined %d / damaged %d, want 2/2: %+v",
			rep.Quarantined, rep.Damaged, rep)
	}

	journal, err := sched.OpenJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()
	if journal.Len() != cells {
		t.Fatalf("journal survived fsck with %d records, want %d", journal.Len(), cells)
	}
	eng := sched.New(sched.Options{Workers: 2, CacheDir: dir, Journal: journal})
	defer eng.Close()
	for i := 0; i < cells; i++ {
		if _, err := eng.Run(context.Background(), sched.Job{
			App: "Fasta", Variant: kernels.Branchy, CPU: cpu.POWER5Baseline(),
			Seed: int64(i + 1), Scale: 1,
		}); err != nil {
			t.Fatalf("resumed cell %d: %v", i, err)
		}
	}
	st := eng.Stats()
	if st.Computed != 2 {
		t.Errorf("resume recomputed %d cells, want exactly the 2 quarantined (stats %+v)", st.Computed, st)
	}
	if st.DiskHits != cells-2 {
		t.Errorf("resume served %d cells from disk, want %d", st.DiskHits, cells-2)
	}
	if st.DiskCorrupt != 0 {
		t.Errorf("resume still saw %d corrupt entries after fsck", st.DiskCorrupt)
	}
}
