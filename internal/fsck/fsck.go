// Package fsck scrubs bioperf5's durable state — result caches, trace
// stores, and completion journals — for the damage the fault injector
// (or a real crash, torn write, or bit flip) can leave behind.
//
// The scrubber never deletes anything.  A file that fails verification
// is moved into a `quarantine/` sidecar directory under the scanned
// root, where a human (or a test) can inspect it; the engines treat
// the resulting hole as a cache miss and recompute.  Journals are the
// one thing repaired in place: valid lines are kept, torn tails and
// corrupt lines are dropped, and the original bytes are preserved in
// quarantine first.
//
// Every durable format is self-verifying, so the scrubber needs no
// engine and no sweep spec — just the directory:
//
//   - <64-hex>.json   result-cache entry: must parse, its key must hash
//     back to the filename, its result must match the embedded checksum
//     (sched.VerifyEntry)
//   - <64-hex>.trace  trace file: magic | meta | payload | SHA-256
//     suffix must verify, and the meta's key must hash to the filename
//   - *.jsonl         append-only journal: every complete line must be
//     valid JSON; a final unterminated line is a torn tail
//   - *.tmp*          a write that never reached its rename: stale,
//     quarantined
//
// Anything else (manifests, span logs the scrubber does not recognize,
// README files) is left untouched.
package fsck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"bioperf5/internal/sched"
	"bioperf5/internal/telemetry"
	"bioperf5/internal/trace"
)

// Schema versions the JSON report shape.
const Schema = 1

// QuarantineDirName is the sidecar directory corrupt files are moved
// into, created under each scanned root.  The scrubber never descends
// into it, so re-running fsck is idempotent.
const QuarantineDirName = "quarantine"

// Finding kinds.
const (
	KindCacheCorrupt     = "cache-entry-corrupt"  // .json entry failed verification
	KindTraceCorrupt     = "trace-corrupt"        // .trace failed structural/checksum verification
	KindTraceKeyMismatch = "trace-key-mismatch"   // .trace verified but answers a different key
	KindJournalTornTail  = "journal-torn-tail"    // .jsonl ends mid-record
	KindJournalBadLine   = "journal-corrupt-line" // .jsonl holds a complete but unparseable line
	KindStaleTemp        = "stale-temp"           // orphaned .tmp* file from an interrupted write
)

// Finding is one damaged file (or, for journals, one damaged region).
type Finding struct {
	Path          string `json:"path"`
	Kind          string `json:"kind"`
	Detail        string `json:"detail"`
	QuarantinedTo string `json:"quarantined_to,omitempty"`
	Repaired      bool   `json:"repaired,omitempty"`
}

// Report is the machine-readable scrub result `bioperf5 fsck` prints.
type Report struct {
	Schema      int       `json:"schema"`
	Dirs        []string  `json:"dirs"`
	Scanned     int       `json:"scanned"`
	OK          int       `json:"ok"`
	Damaged     int       `json:"damaged"`
	Quarantined int       `json:"quarantined"`
	Repaired    int       `json:"repaired"`
	Findings    []Finding `json:"findings,omitempty"`
}

// Options configures a scrub.
type Options struct {
	// Dirs are the roots to scan (result-cache, trace-store, and
	// resume directories all work; they share the same file formats).
	// At least one is required.
	Dirs []string
	// Registry, when non-nil, receives the fsck.* counters.
	Registry *telemetry.Registry
}

// Run scans every directory in o.Dirs, quarantines what fails
// verification, repairs torn journals, and returns the report.  The
// error covers operational failures (unreadable roots, failed moves) —
// finding damage is not an error; callers check Report.Damaged.
func Run(o Options) (*Report, error) {
	if len(o.Dirs) == 0 {
		return nil, fmt.Errorf("fsck: no directories to scan")
	}
	s := &scrubber{rep: &Report{Schema: Schema, Dirs: o.Dirs}}
	for _, dir := range o.Dirs {
		if err := s.scanDir(dir); err != nil {
			return nil, err
		}
	}
	if reg := o.Registry; reg != nil {
		reg.Counter("fsck.scanned").Add(uint64(s.rep.Scanned))
		reg.Counter("fsck.corrupt").Add(uint64(s.rep.Damaged))
		reg.Counter("fsck.quarantined").Add(uint64(s.rep.Quarantined))
		reg.Counter("fsck.repaired").Add(uint64(s.rep.Repaired))
	}
	return s.rep, nil
}

type scrubber struct {
	rep  *Report
	root string // the Dirs entry currently being walked; quarantine lands under it
}

func (s *scrubber) scanDir(root string) error {
	if fi, err := os.Stat(root); err != nil {
		return fmt.Errorf("fsck: %w", err)
	} else if !fi.IsDir() {
		return fmt.Errorf("fsck: %s is not a directory", root)
	}
	s.root = root
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return fmt.Errorf("fsck: %w", err)
		}
		if d.IsDir() {
			if d.Name() == QuarantineDirName {
				return filepath.SkipDir
			}
			return nil
		}
		return s.scanFile(path, d.Name())
	})
}

// scanFile classifies one file by name and runs the matching verifier.
// Unrecognized files are ignored without counting as scanned.
func (s *scrubber) scanFile(path, name string) error {
	ext := filepath.Ext(name)
	stem := strings.TrimSuffix(name, ext)
	switch {
	case strings.Contains(name, ".tmp"):
		s.rep.Scanned++
		return s.condemn(path, KindStaleTemp, "interrupted write never renamed into place")
	case ext == ".json" && isHex64(stem):
		s.rep.Scanned++
		b, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("fsck: %w", err)
		}
		if err := sched.VerifyEntry(b, stem); err != nil {
			return s.condemn(path, KindCacheCorrupt, err.Error())
		}
	case ext == ".trace" && isHex64(stem):
		s.rep.Scanned++
		b, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("fsck: %w", err)
		}
		t, err := trace.DecodeFile(b)
		if err != nil {
			return s.condemn(path, KindTraceCorrupt, err.Error())
		}
		if got := trace.KeyFromMeta(t.Meta).Hash(); got != stem {
			return s.condemn(path, KindTraceKeyMismatch,
				fmt.Sprintf("trace answers key %s, not its address", got))
		}
	case ext == ".jsonl":
		s.rep.Scanned++
		return s.scrubJournal(path)
	default:
		return nil
	}
	s.rep.OK++
	return nil
}

// condemn quarantines a file that failed verification and records the
// finding.
func (s *scrubber) condemn(path, kind, detail string) error {
	dst, err := s.quarantinePath(path)
	if err != nil {
		return err
	}
	if err := os.Rename(path, dst); err != nil {
		return fmt.Errorf("fsck: quarantine %s: %w", path, err)
	}
	s.rep.Quarantined++
	s.finding(Finding{Path: path, Kind: kind, Detail: detail, QuarantinedTo: dst})
	return nil
}

// scrubJournal validates an append-only JSONL log line by line.  Valid
// lines are kept; a torn tail (final line with no newline that does not
// parse) and complete-but-corrupt lines are dropped.  When anything is
// dropped, the original bytes are preserved in quarantine and the
// cleaned log is written back atomically, so a concurrent crash can
// never make things worse.
func (s *scrubber) scrubJournal(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	var good bytes.Buffer
	var badLines int
	var tornTail, missingNewline bool
	rest := b
	for len(rest) > 0 {
		line, tail, terminated := cutLine(rest)
		rest = tail
		if len(bytes.TrimSpace(line)) == 0 {
			continue // blank line: drop silently, not damage
		}
		if !json.Valid(line) {
			if terminated {
				badLines++
			} else {
				tornTail = true
			}
			continue
		}
		if !terminated {
			// A complete record missing only its newline: the crash hit
			// between the write and the terminator.  Keep it.
			missingNewline = true
		}
		good.Write(line)
		good.WriteByte('\n')
	}
	if badLines == 0 && !tornTail && !missingNewline {
		s.rep.OK++
		return nil
	}
	// Preserve the original before rewriting whenever bytes are about
	// to be dropped.
	var dst string
	if badLines > 0 || tornTail {
		var err error
		if dst, err = s.quarantinePath(path); err != nil {
			return err
		}
		if err := os.WriteFile(dst, b, 0o644); err != nil {
			return fmt.Errorf("fsck: quarantine %s: %w", path, err)
		}
		s.rep.Quarantined++
	}
	if err := atomicWrite(path, good.Bytes()); err != nil {
		return fmt.Errorf("fsck: repair %s: %w", path, err)
	}
	s.rep.Repaired++
	if tornTail {
		s.finding(Finding{Path: path, Kind: KindJournalTornTail,
			Detail:        "torn final record truncated at last complete line",
			QuarantinedTo: dst, Repaired: true})
	}
	if missingNewline {
		s.finding(Finding{Path: path, Kind: KindJournalTornTail,
			Detail: "final record unterminated; newline restored", Repaired: true})
	}
	if badLines > 0 {
		s.finding(Finding{Path: path, Kind: KindJournalBadLine,
			Detail:        fmt.Sprintf("%d unparseable line(s) dropped", badLines),
			QuarantinedTo: dst, Repaired: true})
	}
	return nil
}

func (s *scrubber) finding(f Finding) {
	s.rep.Damaged++
	s.rep.Findings = append(s.rep.Findings, f)
}

// quarantinePath picks a non-colliding destination under the current
// root's quarantine directory.
func (s *scrubber) quarantinePath(path string) (string, error) {
	qdir := filepath.Join(s.root, QuarantineDirName)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return "", fmt.Errorf("fsck: %w", err)
	}
	base := filepath.Join(qdir, filepath.Base(path))
	dst := base
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			return dst, nil
		}
		dst = base + "." + strconv.Itoa(i)
	}
}

// cutLine splits off the first line of b.  terminated reports whether
// the line ended in '\n' (as every healthy journal record must).
func cutLine(b []byte) (line, rest []byte, terminated bool) {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return b[:i], b[i+1:], true
	}
	return b, nil, false
}

// atomicWrite lands content at path via temp + fsync + rename, the
// same discipline the stores use, so the repair itself cannot tear.
func atomicWrite(path string, content []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".fsck-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(content); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

func isHex64(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
