// Package workload runs the four BioPerf applications end-to-end in
// pure Go under the instrumenting profiler, reproducing Figure 1's
// function-wise breakout.  Inputs are synthetic (seeded) stand-ins for
// the BioPerf class-C datasets, scaled down to seconds; see DESIGN.md
// for the substitution rationale.
package workload

import (
	"fmt"
	"time"

	"bioperf5/internal/bio/align"
	"bioperf5/internal/bio/blast"
	"bioperf5/internal/bio/clustal"
	"bioperf5/internal/bio/hmm"
	"bioperf5/internal/bio/score"
	"bioperf5/internal/bio/seq"
	"bioperf5/internal/perf"
)

// Result is one application run: the profile and a human summary.
type Result struct {
	App       string
	Breakdown []perf.Entry
	Total     time.Duration
	Summary   string
}

// Apps returns the application names in the paper's order.
func Apps() []string { return []string{"Blast", "Clustalw", "Fasta", "Hmmer"} }

// Run executes one application at the given scale (1 = a fraction of a
// second) and returns its function profile.
func Run(app string, scale int, seed int64) (*Result, error) {
	if scale < 1 {
		scale = 1
	}
	switch app {
	case "Blast":
		return runBlast(scale, seed)
	case "Clustalw":
		return runClustalw(scale, seed)
	case "Fasta":
		return runFasta(scale, seed)
	case "Hmmer":
		return runHmmer(scale, seed)
	}
	return nil, fmt.Errorf("workload: unknown application %q", app)
}

// runBlast is blastp: one query against a protein database with planted
// homologs.  SEMI_G_ALIGN_EX (gapped extension) dominates, followed by
// word finding — Figure 1's Blast column.
func runBlast(scale int, seed int64) (*Result, error) {
	g := seq.NewGenerator(seq.Protein, seed)
	query := g.Random("query", 320)
	db := g.Database("db", 60*scale, 150, 500, query, 4*scale)

	p := perf.New()
	params := blast.DefaultParams()
	params.Phase = p.Start

	stopSetup := p.Start("BlastWordIndex")
	idx, err := blast.NewIndex(db, params)
	stopSetup()
	if err != nil {
		return nil, err
	}

	begin := time.Now()
	hits, err := blast.Search(query, idx, params)
	if err != nil {
		return nil, err
	}
	searchTotal := time.Since(begin)
	// Attribute the scan time outside the extension kernels to BLAST's
	// word-finder.
	inner := p.Of("SemiGappedAlignEx") + p.Of("UngappedExtend")
	if wf := searchTotal - inner; wf > 0 {
		p.Add("BlastWordFinder", wf, 1)
	}
	return &Result{
		App:       "Blast",
		Breakdown: p.Breakdown(),
		Total:     p.Total(),
		Summary:   fmt.Sprintf("blastp: %d subjects, %d hits", len(db), len(hits)),
	}, nil
}

// runFasta is ssearch: full Smith-Waterman of the query against every
// database sequence; dropgsw takes ~99% of the time (Section II).
func runFasta(scale int, seed int64) (*Result, error) {
	g := seq.NewGenerator(seq.Protein, seed)
	query := g.Random("query", 400)
	db := g.Database("lib", 30*scale, 200, 600, query, 3*scale)

	p := perf.New()
	gap := score.Gap{Open: 10, Extend: 2}
	best, bestID := -1, ""
	for _, subject := range db {
		stop := p.Start("dropgsw")
		sc, err := align.LocalScore(query, subject, score.BLOSUM50, gap)
		stop()
		if err != nil {
			return nil, err
		}
		stopSel := p.Start("selectbest")
		if sc > best {
			best, bestID = sc, subject.ID
		}
		stopSel()
	}
	return &Result{
		App:       "Fasta",
		Breakdown: p.Breakdown(),
		Total:     p.Total(),
		Summary:   fmt.Sprintf("ssearch: %d subjects, best %s score %d", len(db), bestID, best),
	}, nil
}

// runClustalw is the three-stage progressive aligner; forward_pass (the
// pairwise phase) takes more than half the time for realistic sequence
// counts because it runs n(n-1)/2 times.
func runClustalw(scale int, seed int64) (*Result, error) {
	g := seq.NewGenerator(seq.Protein, seed)
	n := 12 + 4*scale
	fam := g.Family("seq", n, 140, 0.7)

	p := perf.New()
	opt := clustal.DefaultOptions()

	stop := p.Start("forward_pass")
	dist, err := clustal.Distances(fam, opt.Matrix, opt.Gap)
	stop()
	if err != nil {
		return nil, err
	}
	stop = p.Start("guide_tree")
	tree, err := clustal.BuildGuideTree(dist, opt.Tree)
	stop()
	if err != nil {
		return nil, err
	}
	stop = p.Start("pdiff")
	msa := clustal.AlignWithTree(fam, tree, opt)
	stop()

	return &Result{
		App:       "Clustalw",
		Breakdown: p.Breakdown(),
		Total:     p.Total(),
		Summary: fmt.Sprintf("clustalw: %d sequences, %d columns aligned",
			msa.NumSeqs(), msa.Columns()),
	}, nil
}

// runHmmer is hmmpfam: a query scanned against a database of profile
// HMMs; P7Viterbi dominates.
func runHmmer(scale int, seed int64) (*Result, error) {
	g := seq.NewGenerator(seq.Protein, seed)
	// Model building is input preparation (Pfam ships prebuilt), so it
	// happens before profiling starts.
	var models []*hmm.Plan7
	for i := 0; i < 4*scale; i++ {
		famName := fmt.Sprintf("fam%02d", i)
		fam := g.Family(famName, 5, 90, 0.85)
		m, err := hmm.BuildFromFamily(famName, fam)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	query := g.Random("query", 250)

	p := perf.New()
	bestBits, bestName := -1e18, ""
	for _, m := range models {
		stop := p.Start("P7Viterbi")
		r, err := hmm.Viterbi(query, m)
		stop()
		if err != nil {
			return nil, err
		}
		stopPost := p.Start("PostprocessSignificantHit")
		if r.Bits() > bestBits {
			bestBits, bestName = r.Bits(), m.Name
		}
		stopPost()
	}
	return &Result{
		App:       "Hmmer",
		Breakdown: p.Breakdown(),
		Total:     p.Total(),
		Summary: fmt.Sprintf("hmmpfam: %d models, best %s at %.1f bits",
			len(models), bestName, bestBits),
	}, nil
}

// DominantFunction returns the hottest function name and its share.
func (r *Result) DominantFunction() (string, float64) {
	if len(r.Breakdown) == 0 {
		return "", 0
	}
	return r.Breakdown[0].Name, r.Breakdown[0].Share
}
