package workload

import (
	"strings"
	"testing"
)

func TestApps(t *testing.T) {
	want := []string{"Blast", "Clustalw", "Fasta", "Hmmer"}
	got := Apps()
	if len(got) != len(want) {
		t.Fatalf("Apps() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Apps()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestUnknownApp(t *testing.T) {
	if _, err := Run("Notepad", 1, 1); err == nil {
		t.Error("unknown application accepted")
	}
}

func TestAllAppsRunAndProfile(t *testing.T) {
	for _, app := range Apps() {
		res, err := Run(app, 1, 42)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if res.App != app {
			t.Errorf("result app = %s", res.App)
		}
		if len(res.Breakdown) == 0 || res.Total <= 0 {
			t.Errorf("%s: empty profile", app)
		}
		if res.Summary == "" {
			t.Errorf("%s: no summary", app)
		}
	}
}

// TestFigure1Shape checks the paper's Figure 1 qualitatively: every
// application except Blast spends more than half its time in a single
// DP function, and Blast spends its largest share in SEMI_G_ALIGN_EX.
func TestFigure1Shape(t *testing.T) {
	wantDominant := map[string]string{
		"Blast":    "SemiGappedAlignEx",
		"Clustalw": "forward_pass",
		"Fasta":    "dropgsw",
		"Hmmer":    "P7Viterbi",
	}
	for _, app := range Apps() {
		res, err := Run(app, 2, 7)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		name, share := res.DominantFunction()
		if name != wantDominant[app] {
			t.Errorf("%s: dominant function %s (%.0f%%), want %s",
				app, name, 100*share, wantDominant[app])
			for _, e := range res.Breakdown {
				t.Logf("  %-24s %5.1f%%", e.Name, 100*e.Share)
			}
			continue
		}
		switch app {
		case "Blast":
			if share < 0.30 {
				t.Errorf("Blast: SemiGappedAlignEx share %.0f%%, paper shows >40%%", 100*share)
			}
		default:
			if share < 0.50 {
				t.Errorf("%s: %s share %.0f%%, paper shows >50%%", app, name, 100*share)
			}
		}
	}
}

func TestDeterministicSummaries(t *testing.T) {
	a, err := Run("Fasta", 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("Fasta", 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary {
		t.Errorf("same seed, different summaries: %q vs %q", a.Summary, b.Summary)
	}
	if !strings.Contains(a.Summary, "score") {
		t.Errorf("summary = %q", a.Summary)
	}
}

func TestScaleIncreasesWork(t *testing.T) {
	small, err := Run("Hmmer", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run("Hmmer", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	var smallCalls, bigCalls uint64
	for _, e := range small.Breakdown {
		if e.Name == "P7Viterbi" {
			smallCalls = e.Calls
		}
	}
	for _, e := range big.Breakdown {
		if e.Name == "P7Viterbi" {
			bigCalls = e.Calls
		}
	}
	if bigCalls <= smallCalls {
		t.Errorf("scale 3 ran %d Viterbi calls, scale 1 ran %d", bigCalls, smallCalls)
	}
}
