// Package cluster is the distributed sweep fabric: a coordinator that
// shards a factorial sweep's cells across remote `bioperf5 serve`
// workers and merges the results into a manifest byte-identical to a
// single-node run.
//
// The plan is the contract.  harness.PlanSweep fixes every cell's
// identity (content key) and order before anything is dispatched;
// workers only ever fill in results for keys the coordinator already
// knows, and harness.SweepPlan.Manifest — the same assembly path the
// local RunSweep uses — folds them back in plan order.  Everything
// distributed about the run (which worker computed what, steals,
// retries, deaths) lands in operational fields the determinism
// comparisons strip, so `sweep -workers a,b` and a local sweep agree
// on every byte that is science.
//
// Scheduling is defensive by construction:
//
//   - cells are deduplicated by content key, then round-robin sharded
//     across workers;
//   - an idle worker steals from the longest surviving queue, so one
//     slow shard cannot gate the sweep;
//   - once no undispatched work remains, idle workers re-dispatch
//     in-flight stragglers (bounded to two owners per cell) and the
//     first result wins — late duplicates are counted and dropped;
//   - a worker that fails a dispatch or misses its heartbeat budget is
//     declared dead, its queue is orphaned to the survivors, and when
//     no workers remain the still-undone cells degrade to per-cell
//     failed status instead of aborting the sweep.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"bioperf5/internal/core"
	"bioperf5/internal/cpu"
	"bioperf5/internal/harness"
	"bioperf5/internal/sched"
	"bioperf5/internal/server"
	"bioperf5/internal/telemetry"
)

// Options configures one distributed sweep.
type Options struct {
	// Workers are the worker base URLs ("host:port" gets "http://"
	// prepended).  At least one is required.
	Workers []string
	// Spec is the sweep to run; Spec.Config.Context bounds the whole
	// run and carries the span tracer, exactly as in RunSweep.
	Spec harness.SweepSpec
	// BatchSize is how many cells one dispatch carries; values < 1
	// mean 4 — small enough to keep shards balanced and results
	// flowing, large enough to amortize the HTTP round trip.
	BatchSize int
	// Retries, RetryBackoff and MaxRetryAfter configure dispatch
	// retry behavior; see Client.
	Retries       int
	RetryBackoff  time.Duration
	MaxRetryAfter time.Duration
	// RequestTimeout bounds one batch round trip end to end; values
	// <= 0 mean 10 minutes.
	RequestTimeout time.Duration
	// HeartbeatEvery is the readiness-probe period; values <= 0 mean
	// 1s.  HeartbeatMisses consecutive failed probes trip the worker's
	// circuit breaker; values < 1 mean 3.
	HeartbeatEvery  time.Duration
	HeartbeatMisses int
	// BreakerThreshold is how many consecutive dispatch failures open
	// a worker's circuit breaker (default 3); BreakerCooldown is the
	// open-state wait before a /readyz recovery probe (default 500ms);
	// QuarantineTrips is how many breaker trips permanently remove a
	// flapping worker (default 3).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	QuarantineTrips  int
	// Journal, when non-nil, records completed cells for -resume and
	// replays already-completed ones before dispatching.
	Journal *Journal
	// Registry, when non-nil, receives the cluster.* counters.
	Registry *telemetry.Registry
	// HTTP overrides the transport shared by every worker client.
	HTTP *http.Client
}

// unit is one distinct content-addressed cell: several coincident plan
// cells (an application baseline that is also a grid point) share one
// unit, exactly as they coalesce in the local engine.
type unit struct {
	key        string
	req        server.CellRequest
	done       bool
	inflight   int // dispatches currently unanswered
	dispatches int // total dispatch attempts, bounds straggler re-dispatch
	res        harness.CellResult
	traceHit   bool
}

// workerState is the coordinator's view of one worker.
type workerState struct {
	name   string
	cli    *Client
	br     *breaker
	ctx    context.Context
	cancel context.CancelFunc
	queue  []*unit // this worker's shard, in plan order
	dead   bool
	misses int // consecutive heartbeat failures; heartbeat goroutine only

	// dispatchCancel aborts the batch currently in flight, if any —
	// the heartbeat uses it to unwedge a runner stuck talking to an
	// unresponsive worker without killing the worker for good.
	// Guarded by the coordinator mutex.
	dispatchCancel context.CancelFunc
}

type coordinator struct {
	o    Options
	ctx  context.Context // the sweep root context (spans nest here)
	plan *harness.SweepPlan

	// done is closed when every cell has an answer, so runners asleep
	// in a breaker cooldown wake up and exit (sync.Cond has no timed
	// wait).
	done     chan struct{}
	doneOnce sync.Once

	mu      sync.Mutex
	cond    *sync.Cond
	units   map[string]*unit
	orphans []*unit // requeued cells from dead workers, dispatched first
	workers []*workerState
	live    int
	undone  int
	stats   harness.ClusterStats
	retries uint64 // HTTP retry count, fed by Client.OnRetry

	// breaker telemetry, published at the end of the run
	brOpened, brReclosed, brQuarantined uint64
	brProbes, brProbeFails              uint64
}

// Run executes one distributed sweep and returns its manifest.  It
// fails fast — before dispatching anything — when a worker is
// unreachable or speaks a different wire schema; mid-run worker loss
// degrades per-cell instead.
func Run(o Options) (*harness.SweepManifest, error) {
	if len(o.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	if o.BatchSize < 1 {
		o.BatchSize = 4
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Minute
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = time.Second
	}
	if o.HeartbeatMisses < 1 {
		o.HeartbeatMisses = 3
	}
	plan, err := harness.PlanSweep(o.Spec)
	if err != nil {
		return nil, err
	}
	start := time.Now()

	ctx := plan.Spec.Config.Context
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sweepSpan := telemetry.StartSpan(ctx, telemetry.StageSweep)
	defer sweepSpan.End()
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	c := &coordinator{
		o: o, ctx: ctx, plan: plan,
		units: make(map[string]*unit),
		done:  make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)

	c.buildWorkers(runCtx)
	if err := c.handshake(runCtx); err != nil {
		return nil, err
	}
	c.buildUnits()
	c.shard()

	// Cancellation degrades, it does not abort: undone cells fail with
	// a clear reason and the manifest still ships.
	go func() {
		<-runCtx.Done()
		c.mu.Lock()
		c.failUndone("cluster: sweep cancelled: " + context.Cause(runCtx).Error())
		c.cond.Broadcast()
		c.mu.Unlock()
	}()
	go c.heartbeat(runCtx)

	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			c.runner(w)
		}(w)
	}
	wg.Wait()
	cancelRun()

	m := c.assemble()
	m.ElapsedMS = time.Since(start).Milliseconds()
	c.publish()
	return m, nil
}

// buildWorkers constructs one client per configured worker.
func (c *coordinator) buildWorkers(runCtx context.Context) {
	for _, base := range c.o.Workers {
		base = strings.TrimRight(strings.TrimSpace(base), "/")
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		cli := &Client{
			Base:          base,
			HTTP:          c.o.HTTP,
			Retries:       c.o.Retries,
			RetryBackoff:  c.o.RetryBackoff,
			MaxRetryAfter: c.o.MaxRetryAfter,
			OnRetry: func(time.Duration) {
				c.mu.Lock()
				c.retries++
				c.mu.Unlock()
			},
		}
		wctx, wcancel := context.WithCancel(runCtx)
		c.workers = append(c.workers, &workerState{
			name: base, cli: cli, ctx: wctx, cancel: wcancel,
			br: newBreaker(breakerConfig{
				FailureThreshold: c.o.BreakerThreshold,
				Cooldown:         c.o.BreakerCooldown,
				QuarantineTrips:  c.o.QuarantineTrips,
			}),
		})
	}
	c.live = len(c.workers)
	c.stats.Workers = len(c.workers)
}

// handshake verifies every worker is reachable and speaks this
// coordinator's wire schema.  A mismatch is fatal by design: a worker
// on another schema would hash cells differently or serialize results
// incompatibly, and silently mixing fleets corrupts the manifest.
func (c *coordinator) handshake(ctx context.Context) error {
	for _, w := range c.workers {
		var v server.VersionInfo
		var err error
		// A transient refusal (a chaotic link, a worker still binding
		// its socket) must not abort the whole sweep: retry the
		// handshake on the client's retry budget before giving up.
		for attempt := 0; ; attempt++ {
			hctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			v, err = w.cli.Version(hctx)
			cancel()
			if err == nil || attempt >= w.cli.retries() || ctx.Err() != nil {
				break
			}
			if serr := w.cli.sleep(ctx, w.cli.retryDelay(attempt, nil)); serr != nil {
				break
			}
		}
		if err != nil {
			return fmt.Errorf("cluster: version handshake with %s failed: %w", w.name, err)
		}
		if v.Schema != harness.SchemaVersion {
			return fmt.Errorf(
				"cluster: worker %s speaks schema %q but this coordinator speaks %q; "+
					"refusing to mix incompatible fleets (upgrade the worker binary)",
				w.name, v.Schema, harness.SchemaVersion)
		}
	}
	return nil
}

// buildUnits deduplicates the plan's cells by content key and replays
// the resume journal.  Baselines come first so the first bearer of a
// shared key — the one that will carry its cost — matches local
// submission order.
func (c *coordinator) buildUnits() {
	cfg := c.plan.Spec.Config
	add := func(pc harness.PlanCell) {
		if _, ok := c.units[pc.Key]; ok {
			return
		}
		u := &unit{key: pc.Key, req: cellRequest(pc, cfg)}
		if c.o.Journal != nil {
			if rec, ok := c.o.Journal.Lookup(pc.Key); ok {
				u.done = true
				u.traceHit = rec.TraceHit
				u.res = harness.CellResult{
					Detail: detailFromStats(rec.Stats),
					Status: harness.StatusOK,
				}
				c.stats.Resumed++
			}
		}
		c.units[pc.Key] = u
	}
	for _, pc := range c.plan.Baselines {
		add(pc)
	}
	for _, pc := range c.plan.Points {
		add(pc)
	}
	c.stats.Cells = uint64(len(c.units))
	for _, u := range c.units {
		if !u.done {
			c.undone++
		}
	}
}

// shard deals the undone units round-robin across workers, in plan
// order so neighboring cells (same app, adjacent configurations, best
// trace-cache locality) tend to land on the same worker.
func (c *coordinator) shard() {
	i := 0
	each := func(pc harness.PlanCell) {
		u := c.units[pc.Key]
		if u.done || u.dispatches == -1 {
			return
		}
		u.dispatches = -1 // sharded marker, reset below
		c.workers[i%len(c.workers)].queue = append(c.workers[i%len(c.workers)].queue, u)
		i++
	}
	for _, pc := range c.plan.Baselines {
		each(pc)
	}
	for _, pc := range c.plan.Points {
		each(pc)
	}
	for _, u := range c.units {
		if u.dispatches == -1 {
			u.dispatches = 0
		}
	}
}

// cellRequest is the wire form of one planned cell.
func cellRequest(pc harness.PlanCell, cfg harness.Config) server.CellRequest {
	return server.CellRequest{
		App:         pc.App,
		Variant:     pc.Variant.String(),
		FXUs:        pc.FXUs,
		BTACEntries: pc.BTACEntries,
		Predictor:   pc.Predictor,
		Scale:       cfg.Scale,
		Seeds:       cfg.Seeds,
		Trace:       string(cfg.Trace),
	}
}

// runner is one worker's dispatch loop: wait until the breaker admits
// dispatch, pull a batch, send it, record the stream, repeat until the
// sweep drains, the worker is quarantined, or it dies.  A dispatch
// failure no longer kills the worker outright — it feeds the circuit
// breaker, which decides between retry-after-cooldown and quarantine.
func (c *coordinator) runner(w *workerState) {
	for {
		if !c.awaitDispatchable(w) {
			return
		}
		batch := c.nextBatch(w)
		if batch == nil {
			return
		}
		before := w.br.State()
		err := c.dispatch(w, batch)
		if err != nil {
			c.requeue(batch)
			if c.dispatchFailed(w, err) {
				return
			}
			continue
		}
		w.br.Success()
		if before == BreakerHalfOpen {
			c.mu.Lock()
			c.brReclosed++
			c.mu.Unlock()
			c.breakerSpan(w, "reclosed")
		}
	}
}

// awaitDispatchable blocks while w's breaker is open: it sleeps out
// the cooldown, then probes /readyz — success moves to half-open so
// one trial batch can decide, failure restarts the cooldown.  Returns
// false when the worker is dead or quarantined, or the sweep is done.
func (c *coordinator) awaitDispatchable(w *workerState) bool {
	for {
		c.mu.Lock()
		dead, undone := w.dead, c.undone
		c.mu.Unlock()
		if dead || undone == 0 {
			return false
		}
		switch w.br.State() {
		case BreakerClosed, BreakerHalfOpen:
			return true
		case BreakerQuarantined:
			return false
		}
		due, rem := w.br.ProbeDue()
		if !due {
			t := time.NewTimer(rem)
			select {
			case <-t.C:
			case <-w.ctx.Done():
				t.Stop()
				return false
			case <-c.done:
				t.Stop()
				return false
			}
			t.Stop()
			continue
		}
		pctx, cancel := context.WithTimeout(w.ctx, c.o.HeartbeatEvery)
		err := w.cli.Ready(pctx)
		cancel()
		c.mu.Lock()
		c.brProbes++
		if err != nil {
			c.brProbeFails++
		}
		c.mu.Unlock()
		// A failed probe restarts the cooldown without counting a
		// trip: a long partition must end in recovery, not quarantine.
		w.br.ProbeResult(err == nil)
	}
}

// dispatchFailed feeds one dispatch failure to w's breaker and acts on
// the resulting state.  Returns true when the runner should exit (the
// worker was quarantined or is dead).
func (c *coordinator) dispatchFailed(w *workerState, err error) bool {
	before := w.br.State()
	state := w.br.Failure()
	switch {
	case state == BreakerQuarantined:
		c.mu.Lock()
		c.brQuarantined++
		c.brOpened++ // the quarantining failure is also a trip
		c.stats.BreakerTrips++
		c.stats.Quarantined++
		c.mu.Unlock()
		c.breakerSpan(w, "quarantined")
		c.workerLost(w, fmt.Errorf(
			"quarantined after %d breaker trips, last error: %w", w.br.Trips(), err))
		return true
	case state == BreakerOpen && before != BreakerOpen:
		c.mu.Lock()
		c.brOpened++
		c.stats.BreakerTrips++
		c.mu.Unlock()
		c.breakerSpan(w, "opened")
	}
	c.mu.Lock()
	dead := w.dead
	c.mu.Unlock()
	return dead
}

// breakerSpan emits one transition span.
func (c *coordinator) breakerSpan(w *workerState, transition string) {
	_, sp := telemetry.StartSpan(c.ctx, telemetry.StageBreaker)
	sp.Attr("worker", w.name)
	sp.Attr("transition", transition)
	sp.AttrInt("trips", int64(w.br.Trips()))
	sp.End()
}

// nextBatch blocks until w has work (or nothing remains): orphaned
// cells from dead workers first, then w's own shard, then a steal from
// the longest surviving queue, then straggler re-dispatch.  Every
// returned unit has been marked in-flight under the lock.
func (c *coordinator) nextBatch(w *workerState) []*unit {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if w.dead || c.undone == 0 {
			return nil
		}
		batch := takeEligible(&c.orphans, c.o.BatchSize)
		if len(batch) < c.o.BatchSize {
			batch = append(batch, takeEligible(&w.queue, c.o.BatchSize-len(batch))...)
		}
		if len(batch) == 0 {
			if victim := c.longestQueue(w); victim != nil {
				batch = takeEligible(&victim.queue, c.o.BatchSize)
				if n := len(batch); n > 0 {
					c.stats.Stolen += uint64(n)
					_, sp := telemetry.StartSpan(c.ctx, telemetry.StageSteal)
					sp.Attr("thief", w.name)
					sp.Attr("victim", victim.name)
					sp.AttrInt("cells", int64(n))
					sp.End()
				}
			}
		}
		if len(batch) == 0 {
			// Nothing undispatched anywhere: shadow an in-flight straggler
			// so one wedged worker cannot gate the tail of the sweep.
			for _, u := range c.units {
				if !u.done && u.inflight > 0 && u.dispatches < 2 {
					batch = append(batch, u)
					if len(batch) >= c.o.BatchSize {
						break
					}
				}
			}
			c.stats.Redispatched += uint64(len(batch))
		}
		if len(batch) > 0 {
			for _, u := range batch {
				u.inflight++
				u.dispatches++
				c.stats.Dispatched++
			}
			return batch
		}
		c.cond.Wait()
	}
}

// takeEligible removes up to n dispatchable units (not done, not in
// flight) from q, dropping finished ones as it goes.
func takeEligible(q *[]*unit, n int) []*unit {
	var out []*unit
	rest := (*q)[:0]
	for _, u := range *q {
		if u.done {
			continue
		}
		if u.inflight == 0 && len(out) < n {
			out = append(out, u)
			continue
		}
		rest = append(rest, u)
	}
	*q = rest
	return out
}

// longestQueue returns the live worker (other than w) with the most
// dispatchable cells, or nil.
func (c *coordinator) longestQueue(w *workerState) *workerState {
	var victim *workerState
	best := 0
	for _, ws := range c.workers {
		if ws == w || ws.dead {
			continue
		}
		n := 0
		for _, u := range ws.queue {
			if !u.done && u.inflight == 0 {
				n++
			}
		}
		if n > best {
			best, victim = n, ws
		}
	}
	return victim
}

// dispatch sends one batch and records its streamed results.  The
// batch context is registered on the worker so the heartbeat can abort
// a wedged request, and its deadline propagates to the worker through
// the batch API's ?timeout= (see Client.Batch).
func (c *coordinator) dispatch(w *workerState, batch []*unit) error {
	ctx, cancel := context.WithTimeout(w.ctx, c.o.RequestTimeout)
	defer cancel()
	c.mu.Lock()
	w.dispatchCancel = cancel
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		w.dispatchCancel = nil
		c.mu.Unlock()
	}()
	_, sp := telemetry.StartSpan(c.ctx, telemetry.StageDispatch)
	sp.Attr("worker", w.name)
	sp.AttrInt("cells", int64(len(batch)))
	defer sp.End()

	cells := make([]server.CellRequest, len(batch))
	for i, u := range batch {
		cells[i] = u.req
	}
	c.mu.Lock()
	c.stats.Batches++
	c.mu.Unlock()
	return w.cli.Batch(ctx, cells, func(item server.BatchItem) {
		c.record(batch, item)
	})
}

// record folds one streamed result in, first-result-wins.  The batch
// slot is cleared so a subsequent requeue (the stream died later) only
// requeues cells whose answer never arrived.
func (c *coordinator) record(batch []*unit, item server.BatchItem) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if item.Index < 0 || item.Index >= len(batch) || batch[item.Index] == nil {
		return
	}
	u := batch[item.Index]
	batch[item.Index] = nil
	u.inflight--
	if u.done {
		c.stats.Duplicates++
		c.cond.Broadcast()
		return
	}
	switch {
	case item.Status == "ok" && item.Result != nil && item.Result.Key != u.key:
		// A key mismatch past the schema handshake means the worker
		// computed a different cell than asked — never merge it.
		u.res = harness.CellResult{
			Status: harness.StatusFailed,
			Err: fmt.Sprintf("worker answered key %.12s for cell %.12s: schema skew",
				item.Result.Key, u.key),
		}
		c.stats.FailedCells++
	case item.Status == "ok" && item.Result != nil:
		u.res = harness.CellResult{
			Detail: detailFromStats(item.Result.Stats),
			Cost:   item.Result.Cost,
			Status: harness.StatusOK,
		}
		u.traceHit = item.Result.TraceHit
		if u.traceHit {
			c.stats.CacheHits++
		}
		c.stats.Completed++
		if c.o.Journal != nil {
			c.o.Journal.Append(Record{
				Key: u.key, Status: harness.StatusOK,
				TraceHit: u.traceHit, Stats: item.Result.Stats,
			})
		}
	default:
		st := harness.StatusFailed
		if strings.Contains(item.Error, sched.ErrCellTimeout.Error()) {
			st = harness.StatusTimeout
		}
		u.res = harness.CellResult{Status: st, Err: item.Error}
		c.stats.FailedCells++
	}
	u.done = true
	c.undone--
	c.noteUndoneLocked()
	c.cond.Broadcast()
}

// noteUndoneLocked closes the done channel once every cell has an
// answer, waking runners asleep in breaker cooldowns.  Caller holds
// the lock.
func (c *coordinator) noteUndoneLocked() {
	if c.undone == 0 {
		c.doneOnce.Do(func() { close(c.done) })
	}
}

// requeue returns a failed dispatch's unanswered cells to the orphan
// queue (unless another worker still shadows them in flight).
func (c *coordinator) requeue(batch []*unit) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, u := range batch {
		if u == nil {
			continue
		}
		u.inflight--
		if !u.done && u.inflight == 0 {
			c.orphans = append(c.orphans, u)
		}
	}
	c.cond.Broadcast()
}

// workerLost declares w dead: its request context is cancelled (so an
// in-flight batch unblocks), its shard is orphaned to the survivors,
// and — when no workers remain — every undone cell degrades to failed.
func (c *coordinator) workerLost(w *workerState, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.dead {
		return
	}
	w.dead = true
	w.cancel()
	c.live--
	c.stats.WorkersLost++
	c.orphans = append(c.orphans, w.queue...)
	w.queue = nil
	if c.live == 0 {
		c.failUndone(fmt.Sprintf(
			"cluster: worker %s died (%v) with no live replacement", w.name, err))
	}
	c.cond.Broadcast()
}

// failUndone marks every not-yet-done cell failed with reason.  Caller
// holds the lock.
func (c *coordinator) failUndone(reason string) {
	for _, u := range c.units {
		if u.done {
			continue
		}
		u.done = true
		u.res = harness.CellResult{Status: harness.StatusFailed, Err: reason}
		c.stats.FailedCells++
		c.undone--
	}
	c.noteUndoneLocked()
}

// heartbeat probes every live worker's /readyz.  HeartbeatMisses
// consecutive failures trip the worker's circuit breaker and abort its
// in-flight batch, so a runner wedged mid-request on an unresponsive
// worker unblocks without waiting out the request timeout; the runner
// then owns recovery (cooldown, probe, half-open trial).  Workers
// whose breaker is already open are skipped — the runner is probing.
// A worker that quarantines from heartbeat trips is declared dead.
func (c *coordinator) heartbeat(ctx context.Context) {
	t := time.NewTicker(c.o.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, w := range c.workers {
			c.mu.Lock()
			dead := w.dead
			c.mu.Unlock()
			if dead || w.br.State() != BreakerClosed {
				continue
			}
			pctx, cancel := context.WithTimeout(ctx, c.o.HeartbeatEvery)
			err := w.cli.Ready(pctx)
			cancel()
			if err == nil {
				w.misses = 0
				continue
			}
			w.misses++
			if w.misses < c.o.HeartbeatMisses {
				continue
			}
			w.misses = 0
			state := w.br.Trip()
			c.mu.Lock()
			c.brOpened++
			c.stats.BreakerTrips++
			if state == BreakerQuarantined {
				c.brQuarantined++
				c.stats.Quarantined++
			}
			abort := w.dispatchCancel
			c.mu.Unlock()
			if abort != nil {
				abort()
			}
			if state == BreakerQuarantined {
				c.breakerSpan(w, "quarantined")
				c.workerLost(w, fmt.Errorf("quarantined after missed heartbeats: %w", err))
			} else {
				c.breakerSpan(w, "opened")
			}
		}
	}
}

// assemble folds the per-unit results back into plan order and builds
// the manifest through the same path RunSweep uses.  Coincident plan
// cells share one unit; the first bearer keeps the cell's cost and
// later ones report zero, matching local coalescing's exactly-once
// attribution.
func (c *coordinator) assemble() *harness.SweepManifest {
	_, sp := telemetry.StartSpan(c.ctx, telemetry.StageMerge)
	defer sp.End()
	c.mu.Lock()
	defer c.mu.Unlock()
	used := make(map[string]bool, len(c.units))
	collect := func(cells []harness.PlanCell) []harness.CellResult {
		out := make([]harness.CellResult, len(cells))
		for i, pc := range cells {
			r := c.units[pc.Key].res
			if used[pc.Key] {
				r.Cost = telemetry.StageCost{}
			}
			used[pc.Key] = true
			out[i] = r
		}
		return out
	}
	baselines := collect(c.plan.Baselines)
	points := collect(c.plan.Points)
	m := c.plan.Manifest(baselines, points)
	stats := c.stats
	stats.Retries = c.retries
	m.Cluster = &stats
	sp.AttrInt("cells", int64(stats.Cells))
	sp.AttrInt("failed", int64(stats.FailedCells))
	return m
}

// publish mirrors the final stats into the registry's cluster.*
// counters.
func (c *coordinator) publish() {
	reg := c.o.Registry
	if reg == nil {
		return
	}
	c.mu.Lock()
	s := c.stats
	s.Retries = c.retries
	c.mu.Unlock()
	reg.Counter("cluster.workers_lost").Add(s.WorkersLost)
	reg.Counter("cluster.dispatched").Add(s.Dispatched)
	reg.Counter("cluster.completed").Add(s.Completed)
	reg.Counter("cluster.failed").Add(s.FailedCells)
	reg.Counter("cluster.stolen").Add(s.Stolen)
	reg.Counter("cluster.redispatched").Add(s.Redispatched)
	reg.Counter("cluster.duplicates").Add(s.Duplicates)
	reg.Counter("cluster.resumed").Add(s.Resumed)
	reg.Counter("cluster.cache_hits").Add(s.CacheHits)
	reg.Counter("cluster.batches").Add(s.Batches)
	reg.Counter("cluster.http_retries").Add(s.Retries)
	c.mu.Lock()
	opened, reclosed, quarantined := c.brOpened, c.brReclosed, c.brQuarantined
	probes, probeFails := c.brProbes, c.brProbeFails
	c.mu.Unlock()
	reg.Counter("cluster.breaker.opened").Add(opened)
	reg.Counter("cluster.breaker.reclosed").Add(reclosed)
	reg.Counter("cluster.breaker.quarantined").Add(quarantined)
	reg.Counter("cluster.breaker.probes").Add(probes)
	reg.Counter("cluster.breaker.probe_failures").Add(probeFails)
	// The fleet's weakest link, in [0,1]: 1 = no breaker ever tripped.
	minHealth := 1.0
	for _, w := range c.workers {
		if h := w.br.Health(); h < minHealth {
			minHealth = h
		}
	}
	reg.Gauge("cluster.breaker.min_health").Set(minHealth)
}

// detailFromStats reconstructs the engine-side per-seed detail from
// the wire stats, the inverse of the server's packKernelStats.  Rates
// are derived fields and recomputed by the manifest assembly, so only
// counters and stall stacks need to survive the round trip.
func detailFromStats(ks harness.KernelStats) *core.Detail {
	det := &core.Detail{
		Aggregate: cpu.Report{
			Counters: ks.Aggregate.Counters,
			Stalls:   ks.Aggregate.Stalls,
		},
	}
	for _, s := range ks.Seeds {
		det.Seeds = append(det.Seeds, core.SeedReport{
			Seed: s.Seed, Counters: s.Counters, Stalls: s.Stalls,
		})
	}
	return det
}
