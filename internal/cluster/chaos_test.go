// Cluster chaos suite: the distributed sweep must converge to the
// byte-identical fault-free manifest while every wire fault the chaos
// transport can inject — refused dials, added latency, synthesized
// 5xx answers, mid-stream cuts, corrupted JSONL lines, duplicated
// batch items, and per-worker blackout windows — lands on the
// coordinator→worker path.
package cluster

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"bioperf5/internal/fault"
)

// chaosPlan arms every wire fault kind with a per-key budget of two
// injections, so the client's default retry budget (and the no-retry-
// after-stream-start rule, recovered by requeue) always converges.
func chaosPlan() *fault.Plan {
	return &fault.Plan{
		Seed:        42,
		RefuseRate:  0.2,
		LatencyRate: 0.2, LatencyDelay: time.Millisecond,
		HTTP5xxRate: 0.25,
		CutRate:     0.2, CorruptLineRate: 0.2, DupItemRate: 0.2,
		Times: 2,
	}
}

func TestClusterSweepUnderNetworkChaosIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ref := singleNode(t)
	w1, w2 := newWorker(t), newWorker(t)
	ct := &fault.ChaosTransport{Plan: chaosPlan()}
	m, err := Run(Options{
		Workers:         []string{w1.URL, w2.URL},
		Spec:            testSpec(nil),
		BatchSize:       2,
		RetryBackoff:    time.Millisecond,
		MaxRetryAfter:   5 * time.Millisecond,
		BreakerCooldown: time.Millisecond,
		HTTP:            &http.Client{Transport: ct},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ct.Injected() == 0 {
		t.Fatal("the chaos transport injected nothing; the run proved nothing")
	}
	if got, want := canonManifest(t, m), canonManifest(t, ref); got != want {
		t.Errorf("chaotic cluster manifest differs from fault-free single-node:\n--- chaos\n%s\n--- clean\n%s", got, want)
	}
	cs := m.Cluster
	if cs.FailedCells != 0 || cs.Completed != cs.Cells {
		t.Errorf("every cell must complete under chaos: %+v", cs)
	}
	// The per-key fault budget (Times: 2) is below the breaker
	// threshold, so workers wobble but none is lost.
	if cs.WorkersLost != 0 || cs.Quarantined != 0 {
		t.Errorf("bounded chaos should not cost a worker: %+v", cs)
	}
}

// TestClusterSweepChaosSameSeedSameManifest reruns the chaotic sweep
// against the same workers with the same plan seed: determinism end to
// end means the manifest — and the convergence — reproduce exactly.
func TestClusterSweepChaosSameSeedSameManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w1, w2 := newWorker(t), newWorker(t)
	run := func() (*fault.ChaosTransport, string) {
		ct := &fault.ChaosTransport{Plan: chaosPlan()}
		m, err := Run(Options{
			Workers:         []string{w1.URL, w2.URL},
			Spec:            testSpec(nil),
			BatchSize:       2,
			RetryBackoff:    time.Millisecond,
			MaxRetryAfter:   5 * time.Millisecond,
			BreakerCooldown: time.Millisecond,
			HTTP:            &http.Client{Transport: ct},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ct, canonManifest(t, m)
	}
	ct1, first := run()
	ct2, second := run()
	if first != second {
		t.Error("same seed, same workers: manifests diverge")
	}
	if ct1.Injected() == 0 || ct2.Injected() == 0 {
		t.Errorf("both runs must inject (got %d and %d)", ct1.Injected(), ct2.Injected())
	}
}

// TestClusterBlackoutPartitionTripsBreakerAndRecovers partitions one
// worker for a window of requests: its breaker must open and the
// shard redistribute, but a partition — unlike a flapping worker —
// must not quarantine; once the window passes, the /readyz probe
// recloses the breaker.
func TestClusterBlackoutPartitionTripsBreakerAndRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ref := singleNode(t)
	healthy, flaky := newWorker(t), newWorker(t)
	target := strings.TrimPrefix(flaky.URL, "http://")
	// Request 0 to the flaky host is the version handshake; the window
	// then swallows its first dispatch and the next few recovery probes.
	plan := &fault.Plan{Seed: 7, BlackoutTarget: target, BlackoutFrom: 1, BlackoutFor: 4}
	m, err := Run(Options{
		Workers:          []string{healthy.URL, flaky.URL},
		Spec:             testSpec(nil),
		BatchSize:        2,
		Retries:          -1, // fail the partitioned dispatch fast
		BreakerThreshold: 1,
		BreakerCooldown:  time.Millisecond,
		QuarantineTrips:  10,
		HTTP:             &http.Client{Transport: &fault.ChaosTransport{Plan: plan}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonManifest(t, m), canonManifest(t, ref); got != want {
		t.Errorf("post-partition manifest differs from single-node:\n--- partition\n%s\n--- clean\n%s", got, want)
	}
	cs := m.Cluster
	if cs.FailedCells != 0 || cs.Completed != cs.Cells {
		t.Errorf("every cell must complete despite the partition: %+v", cs)
	}
	if cs.BreakerTrips == 0 {
		t.Errorf("the partition should have tripped the flaky worker's breaker: %+v", cs)
	}
	if cs.WorkersLost != 0 || cs.Quarantined != 0 {
		t.Errorf("a transient partition must not quarantine: %+v", cs)
	}
}
