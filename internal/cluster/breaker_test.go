package cluster

import (
	"testing"
	"time"
)

// fakeClock drives a breaker without sleeping.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestBreaker(clk *fakeClock) *breaker {
	return newBreaker(breakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Second,
		QuarantineTrips:  3,
		Now:              clk.now,
	})
}

func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	if b.State() != BreakerClosed {
		t.Fatalf("initial state = %v", b.State())
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("opened below the threshold: %v", b.State())
	}
	// A success clears the consecutive count: two more failures must
	// not open it.
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("success did not reset the failure count: %v", b.State())
	}
	if st := b.Failure(); st != BreakerOpen {
		t.Fatalf("third consecutive failure gave %v, want open", st)
	}
	if b.Trips() != 1 {
		t.Errorf("Trips = %d, want 1", b.Trips())
	}
}

func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	// Cooldown not yet elapsed: no probe due, remaining wait returned.
	due, rem := b.ProbeDue()
	if due || rem != time.Second {
		t.Fatalf("ProbeDue = %v, %v; want false, 1s", due, rem)
	}
	clk.advance(time.Second)
	if due, _ := b.ProbeDue(); !due {
		t.Fatal("probe not due after the cooldown")
	}
	// A failed probe restarts the cooldown without a trip.
	if st := b.ProbeResult(false); st != BreakerOpen {
		t.Fatalf("failed probe gave %v, want still open", st)
	}
	if due, _ := b.ProbeDue(); due {
		t.Fatal("failed probe did not restart the cooldown")
	}
	if b.Trips() != 1 {
		t.Errorf("failed probe counted a trip: %d", b.Trips())
	}
	clk.advance(time.Second)
	if st := b.ProbeResult(true); st != BreakerHalfOpen {
		t.Fatalf("successful probe gave %v, want half-open", st)
	}
	// Half-open + success re-closes.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("half-open success gave %v, want closed", b.State())
	}
	if b.Trips() != 1 {
		t.Errorf("Trips = %d after recovery, want 1", b.Trips())
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.advance(time.Second)
	b.ProbeResult(true)
	if st := b.Failure(); st != BreakerOpen {
		t.Fatalf("half-open failure gave %v, want open", st)
	}
	if b.Trips() != 2 {
		t.Errorf("Trips = %d, want 2", b.Trips())
	}
}

func TestBreakerQuarantinesAfterEnoughTrips(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	trip := func() BreakerState {
		var st BreakerState
		for b.State() == BreakerClosed || b.State() == BreakerHalfOpen {
			st = b.Failure()
		}
		return st
	}
	trip() // 1
	clk.advance(time.Second)
	b.ProbeResult(true)
	trip() // 2
	clk.advance(time.Second)
	b.ProbeResult(true)
	if st := trip(); st != BreakerQuarantined {
		t.Fatalf("third trip gave %v, want quarantined", st)
	}
	if h := b.Health(); h != 0 {
		t.Errorf("quarantined health = %g, want 0", h)
	}
	// Quarantine is terminal.
	if st := b.Failure(); st != BreakerQuarantined {
		t.Errorf("failure after quarantine gave %v", st)
	}
	b.Success()
	if b.State() != BreakerQuarantined {
		t.Errorf("success after quarantine gave %v", b.State())
	}
}

func TestBreakerTripForcedByHeartbeat(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	if st := b.Trip(); st != BreakerOpen {
		t.Fatalf("forced trip gave %v, want open", st)
	}
	// Re-tripping while already open carries no new information.
	if st := b.Trip(); st != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("double trip: state %v, trips %d", st, b.Trips())
	}
}

func TestBreakerHealthDegradesPerTrip(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	if h := b.Health(); h != 1 {
		t.Fatalf("fresh health = %g, want 1", h)
	}
	b.Trip()
	if h := b.Health(); h <= 0 || h >= 1 {
		t.Errorf("one-trip health = %g, want in (0,1)", h)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := newBreaker(breakerConfig{})
	if b.failureThreshold != 3 || b.cooldown != 500*time.Millisecond || b.quarantineTrips != 3 {
		t.Errorf("defaults = %d, %v, %d", b.failureThreshold, b.cooldown, b.quarantineTrips)
	}
	if b.now == nil {
		t.Error("default clock missing")
	}
}
