package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"bioperf5/internal/server"
)

// Client speaks the bioperf5 serve API to one worker: readiness
// probes, the version handshake, and streamed cell batches.  Dispatch
// is retried on transport errors and on 429/503 — the worker's
// admission control saying "not now" — honoring the server's
// Retry-After hint with a cap, falling back to exponential backoff
// when no hint arrives.  Anything else (4xx validation errors, a
// mid-stream decode failure) is returned to the coordinator, which
// owns the decision to requeue or fail.
type Client struct {
	// Base is the worker's base URL, e.g. "http://host:8080".
	Base string
	// HTTP is the transport; nil means a client with no overall
	// timeout (batches are bounded by the request context instead, so
	// a long cold sweep is not cut off mid-stream).
	HTTP *http.Client
	// Retries bounds dispatch re-attempts after a transport error or
	// 429/503; values < 0 mean 0, the zero value means 4.
	Retries int
	// RetryBackoff is the base of the exponential backoff used when
	// the server sends no Retry-After hint; the zero value means
	// 250ms.
	RetryBackoff time.Duration
	// MaxRetryAfter caps every retry delay, hinted or computed, so a
	// confused server cannot park the fleet; the zero value means 15s.
	MaxRetryAfter time.Duration
	// OnRetry, when non-nil, observes every retry delay — the
	// coordinator counts them into cluster stats.
	OnRetry func(delay time.Duration)
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{}
}

func (c *Client) retries() int {
	if c.Retries < 0 {
		return 0
	}
	if c.Retries == 0 {
		return 4
	}
	return c.Retries
}

// Ready probes GET /readyz; nil means the worker is accepting work.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	// Bounded drain: a readiness probe has a tiny body, and a confused
	// or adversarial worker must not be able to stream forever.
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("worker %s not ready: %s", c.Base, resp.Status)
	}
	return nil
}

// Version fetches GET /v1/version — the schema handshake the
// coordinator requires before dispatching any work.
func (c *Client) Version(ctx context.Context) (server.VersionInfo, error) {
	var v server.VersionInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/version", nil)
	if err != nil {
		return v, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return v, fmt.Errorf("worker %s: GET /v1/version: %s", c.Base, resp.Status)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&v); err != nil {
		return v, fmt.Errorf("worker %s: bad version response: %w", c.Base, err)
	}
	return v, nil
}

// Batch POSTs cells to /v1/cells:batch and streams the JSONL response,
// calling onItem for every line as it arrives.  Retries happen only
// before the stream starts (transport failure, 429/503); once items
// are flowing, an error is returned as-is and the coordinator requeues
// whatever never arrived — re-delivered items are harmless under its
// first-result-wins dedup.
func (c *Client) Batch(ctx context.Context, cells []server.CellRequest, onItem func(server.BatchItem)) error {
	body, err := json.Marshal(server.BatchRequest{Cells: cells})
	if err != nil {
		return err
	}
	url := c.Base + "/v1/cells:batch"
	for attempt := 0; ; attempt++ {
		// Propagate the coordinator's deadline so a partitioned worker
		// cannot hold the shard past the sweep deadline: the server
		// parses ?timeout= into its own request context.
		u := url
		if dl, ok := ctx.Deadline(); ok {
			if rem := time.Until(dl); rem > 0 {
				u += "?timeout=" + rem.Round(time.Millisecond).String()
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			u, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.http().Do(req)
		if err != nil {
			if attempt >= c.retries() || ctx.Err() != nil {
				return fmt.Errorf("worker %s: %w", c.Base, err)
			}
			if err := c.sleep(ctx, c.retryDelay(attempt, nil)); err != nil {
				return err
			}
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			delay := c.retryDelay(attempt, resp)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if attempt >= c.retries() {
				return fmt.Errorf("worker %s: %s after %d attempts", c.Base, resp.Status, attempt+1)
			}
			if err := c.sleep(ctx, delay); err != nil {
				return err
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			msg := readError(resp.Body)
			resp.Body.Close()
			return fmt.Errorf("worker %s: POST /v1/cells:batch: %s: %s", c.Base, resp.Status, msg)
		}
		dec := json.NewDecoder(resp.Body)
		for {
			var item server.BatchItem
			if err := dec.Decode(&item); err == io.EOF {
				resp.Body.Close()
				return nil
			} else if err != nil {
				resp.Body.Close()
				return fmt.Errorf("worker %s: batch stream: %w", c.Base, err)
			}
			onItem(item)
		}
	}
}

// retryDelay picks the wait before the next dispatch attempt: the
// server's Retry-After hint when it sent one (it knows its own queue),
// else exponential backoff from RetryBackoff — both capped at
// MaxRetryAfter.  Retry-After accepts both RFC 9110 forms: delay
// seconds and an HTTP-date.
func (c *Client) retryDelay(attempt int, resp *http.Response) time.Duration {
	max := c.MaxRetryAfter
	if max <= 0 {
		max = 15 * time.Second
	}
	var d time.Duration
	if resp != nil {
		if v := strings.TrimSpace(resp.Header.Get("Retry-After")); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
				d = time.Duration(secs) * time.Second
			} else if at, err := http.ParseTime(v); err == nil {
				if until := time.Until(at); until > 0 {
					d = until
				}
			}
		}
	}
	if d == 0 {
		base := c.RetryBackoff
		if base <= 0 {
			base = 250 * time.Millisecond
		}
		if attempt > 6 {
			attempt = 6 // past here the cap decides anyway
		}
		d = base << uint(attempt)
	}
	if d > max {
		d = max
	}
	if c.OnRetry != nil {
		c.OnRetry(d)
	}
	return d
}

// sleep waits for d or the context, whichever ends first.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// readError extracts the message from an API error body, falling back
// to the raw bytes for non-JSON answers.
func readError(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(b))
}
