package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bioperf5/internal/harness"
	"bioperf5/internal/sched"
	"bioperf5/internal/server"
)

// testSpec is a small but non-trivial sweep: 8 grid points plus one
// baseline, where the baseline coincides with the branchy/2-FXU/no-BTAC
// point — exercising the cell dedup the local engine gets from
// coalescing.
func testSpec(eng *sched.Engine) harness.SweepSpec {
	return harness.SweepSpec{
		FXUs:        []int{2, 3},
		BTACEntries: []int{0, 8},
		Apps:        []string{"Blast"},
		Config: harness.Config{
			Scale: 1, Seeds: []int64{1, 2}, Engine: eng,
			Context: context.Background(),
		},
	}
}

// singleNode runs the reference sweep locally.
func singleNode(t *testing.T) *harness.SweepManifest {
	t.Helper()
	eng := sched.New(sched.Options{Workers: 2})
	defer eng.Close()
	m, err := harness.RunSweep(testSpec(eng))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// canonManifest strips the operational fields — wall time, scheduler
// and cluster counters, the stage profile — leaving exactly the bytes
// that must match between a local and a distributed run.
func canonManifest(t *testing.T, m *harness.SweepManifest) string {
	t.Helper()
	clone := *m
	clone.ElapsedMS = 0
	clone.Scheduler = sched.Stats{}
	clone.Cluster = nil
	clone.Profile = nil
	b, err := json.MarshalIndent(&clone, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// newWorker spins up one real bioperf5 serve worker.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	eng := sched.New(sched.Options{Workers: 2})
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(server.New(server.Options{Engine: eng}))
	t.Cleanup(ts.Close)
	return ts
}

func TestDistributedMatchesSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ref := singleNode(t)
	w1, w2 := newWorker(t), newWorker(t)
	m, err := Run(Options{
		Workers: []string{w1.URL, w2.URL},
		Spec:    testSpec(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonManifest(t, m), canonManifest(t, ref); got != want {
		t.Errorf("distributed manifest differs from single-node:\n--- distributed\n%s\n--- single-node\n%s", got, want)
	}
	cs := m.Cluster
	if cs == nil {
		t.Fatal("distributed manifest carries no cluster stats")
	}
	if cs.Workers != 2 || cs.Completed != cs.Cells || cs.FailedCells != 0 {
		t.Errorf("cluster stats: %+v", cs)
	}
	if cs.Cells >= uint64(len(m.Points)+1) {
		t.Errorf("expected the coincident baseline to dedup: %d cells for %d points", cs.Cells, len(m.Points))
	}
}

// killingHandler proxies to a real worker but aborts every batch after
// the first — the mid-sweep SIGKILL stand-in.
type killingHandler struct {
	h         http.Handler
	mu        sync.Mutex
	batches   int
	killAfter int
}

func (k *killingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "cells:batch") {
		k.mu.Lock()
		k.batches++
		n := k.batches
		k.mu.Unlock()
		if n > k.killAfter {
			panic(http.ErrAbortHandler)
		}
	}
	k.h.ServeHTTP(w, r)
}

func TestWorkerDeathMidSweepIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ref := singleNode(t)
	healthy := newWorker(t)
	eng := sched.New(sched.Options{Workers: 2})
	t.Cleanup(eng.Close)
	dying := httptest.NewServer(&killingHandler{
		h:         server.New(server.Options{Engine: eng}),
		killAfter: 1,
	})
	t.Cleanup(dying.Close)
	m, err := Run(Options{
		Workers:   []string{healthy.URL, dying.URL},
		Spec:      testSpec(nil),
		BatchSize: 2,
		Retries:   -1, // fail a dead worker fast instead of backing off
		// Quarantine the dying worker on its first failed dispatch.  A
		// second-trip quarantine would race the survivor: with warm
		// trace caches the survivor drains the requeued cells before the
		// dying worker's breaker half-opens for another attempt.
		BreakerThreshold: 1,
		BreakerCooldown:  time.Millisecond,
		QuarantineTrips:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonManifest(t, m), canonManifest(t, ref); got != want {
		t.Errorf("post-death manifest differs from single-node:\n--- distributed\n%s\n--- single-node\n%s", got, want)
	}
	cs := m.Cluster
	if cs.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1 (stats: %+v)", cs.WorkersLost, cs)
	}
	if cs.FailedCells != 0 || cs.Completed != cs.Cells {
		t.Errorf("survivor should finish every cell: %+v", cs)
	}
}

func TestAllWorkersDeadDegradesPerCell(t *testing.T) {
	eng := sched.New(sched.Options{Workers: 1})
	t.Cleanup(eng.Close)
	dying := httptest.NewServer(&killingHandler{
		h: server.New(server.Options{Engine: eng}), // killAfter 0: every batch aborts
	})
	t.Cleanup(dying.Close)
	m, err := Run(Options{
		Workers: []string{dying.URL},
		Spec:    testSpec(nil),
		Retries: -1,
		// Flap straight into quarantine: every batch aborts, so the
		// breaker trips until the fleet is gone.
		BreakerCooldown: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err) // degraded, not fatal: the manifest must still ship
	}
	if m.Degraded != len(m.Points) {
		t.Fatalf("Degraded = %d, want all %d points", m.Degraded, len(m.Points))
	}
	for _, p := range m.Points {
		if p.Status == harness.StatusOK {
			t.Fatalf("point %s unexpectedly ok", p.Key)
		}
		if p.Error == "" {
			t.Fatalf("degraded point %s carries no error", p.Key)
		}
	}
	// The baseline failed with it, so points degrade to skipped with
	// the no-replacement reason in the baseline error.
	if !strings.Contains(m.Points[0].Error, "no live replacement") {
		t.Errorf("error should name the cause, got %q", m.Points[0].Error)
	}
	if m.Cluster.WorkersLost != 1 || m.Cluster.Completed != 0 {
		t.Errorf("cluster stats: %+v", m.Cluster)
	}
}

func TestCoordinatorResume(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.jsonl")
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	w := newWorker(t)
	first, err := Run(Options{Workers: []string{w.URL}, Spec: testSpec(nil), Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if first.Cluster.Completed == 0 {
		t.Fatal("first run completed nothing")
	}

	// Second run: same journal, but a worker that can only handshake —
	// every batch would abort.  If resume works, none is sent.
	j2, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	eng := sched.New(sched.Options{Workers: 1})
	t.Cleanup(eng.Close)
	broken := httptest.NewServer(&killingHandler{h: server.New(server.Options{Engine: eng})})
	t.Cleanup(broken.Close)
	second, err := Run(Options{Workers: []string{broken.URL}, Spec: testSpec(nil), Journal: j2, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonManifest(t, second), canonManifest(t, first); got != want {
		t.Errorf("resumed manifest differs:\n--- resumed\n%s\n--- first\n%s", got, want)
	}
	cs := second.Cluster
	if cs.Resumed != cs.Cells || cs.Batches != 0 || cs.Dispatched != 0 {
		t.Errorf("resume should serve every cell from the journal: %+v", cs)
	}
}

func TestVersionGuardRefusesSchemaSkew(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"schema": "bioperf5/v999", "version": "unknown"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	_, err := Run(Options{Workers: []string{ts.URL}, Spec: testSpec(nil)})
	if err == nil || !strings.Contains(err.Error(), "refusing to mix") {
		t.Fatalf("want a schema-refusal error, got %v", err)
	}
	if !strings.Contains(err.Error(), "bioperf5/v999") {
		t.Errorf("error should name the worker's schema: %v", err)
	}
}

func TestVersionGuardRefusesUnreachableWorker(t *testing.T) {
	_, err := Run(Options{
		Workers: []string{"127.0.0.1:1"}, // nothing listens on port 1
		Spec:    testSpec(nil),
	})
	if err == nil || !strings.Contains(err.Error(), "handshake") {
		t.Fatalf("want a handshake error, got %v", err)
	}
}

func TestClientRetryDelay(t *testing.T) {
	cli := &Client{}
	resp := func(retryAfter string) *http.Response {
		h := http.Header{}
		if retryAfter != "" {
			h.Set("Retry-After", retryAfter)
		}
		return &http.Response{Header: h}
	}
	if d := cli.retryDelay(0, resp("7")); d != 7*time.Second {
		t.Errorf("hinted delay = %v, want 7s", d)
	}
	if d := cli.retryDelay(0, resp("120")); d != 15*time.Second {
		t.Errorf("hint should cap at MaxRetryAfter default 15s, got %v", d)
	}
	if d := cli.retryDelay(2, nil); d != time.Second {
		t.Errorf("backoff attempt 2 = %v, want 250ms<<2 = 1s", d)
	}
	if d := cli.retryDelay(30, nil); d != 15*time.Second {
		t.Errorf("deep backoff should cap, got %v", d)
	}
	capped := &Client{MaxRetryAfter: 10 * time.Millisecond}
	if d := capped.retryDelay(0, resp("7")); d != 10*time.Millisecond {
		t.Errorf("explicit cap should win over hint, got %v", d)
	}
}

func TestClientHonorsRetryAfterOn429(t *testing.T) {
	var mu sync.Mutex
	rejections := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cells:batch", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		rejections++
		first := rejections == 1
		mu.Unlock()
		if first {
			w.Header().Set("Retry-After", "30")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		json.NewEncoder(w).Encode(server.BatchItem{Schema: harness.SchemaVersion, Index: 0, Status: "error", Error: "stub"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	var delays []time.Duration
	cli := &Client{
		Base:          ts.URL,
		MaxRetryAfter: 20 * time.Millisecond, // keep the test fast: the 30s hint is capped
		OnRetry:       func(d time.Duration) { delays = append(delays, d) },
	}
	var items []server.BatchItem
	err := cli.Batch(context.Background(), []server.CellRequest{{App: "Blast"}},
		func(it server.BatchItem) { items = append(items, it) })
	if err != nil {
		t.Fatal(err)
	}
	if len(delays) != 1 || delays[0] != 20*time.Millisecond {
		t.Errorf("delays = %v, want one capped 20ms wait", delays)
	}
	if len(items) != 1 || items[0].Error != "stub" {
		t.Errorf("items = %+v", items)
	}
}

func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Key: "k1", Status: harness.StatusOK}
	if err := j.Append(rec); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Tear the tail: a half-written record from a crash.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"k2","sta`)
	f.Close()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, ok := j2.Lookup("k1"); !ok {
		t.Error("intact record lost")
	}
	if _, ok := j2.Lookup("k2"); ok {
		t.Error("torn record trusted")
	}
	if err := j2.Append(Record{Key: "k3", Status: harness.StatusOK}); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 2 {
		t.Errorf("Len = %d, want k1 + k3", j3.Len())
	}
}
